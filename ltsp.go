// Package ltsp is a library implementation of latency-tolerant software
// pipelining (Winkel, Krishnaiyer, Sampson — CGO 2008): an Itanium-class
// software pipeliner that schedules non-critical loads — loads with enough
// slack in the cyclic dependence graph that a longer scheduled latency
// cannot raise the initiation interval — for the typical latency of a
// deeper cache level, guided by latency hints from the software
// prefetcher. The package bundles the whole stack the paper's evaluation
// needs: loop IR, HLO prefetcher with hint heuristics, iterative modulo
// scheduler, rotating register allocator, kernel-only code generation, and
// a cycle-accurate in-order simulator with an OzQ memory queue.
//
// Quick start:
//
//	l := ltsp.NewLoop("copyadd")
//	v, b, c, k := l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR()
//	ld := ltsp.Ld(v, b, 4, 4)
//	ld.Mem.Stride, ld.Mem.StrideBytes = ltsp.StrideUnit, 4
//	l.Append(ld)
//	l.Append(ltsp.Add(v2, v, k))
//	...
//	compiled, err := ltsp.Compile(l, ltsp.Options{Mode: ltsp.ModeHLO, LatencyTolerant: true})
//	result, err := ltsp.Simulate(compiled, 1000, mem, nil)
package ltsp

import (
	"context"
	"errors"

	"ltsp/internal/cache"
	"ltsp/internal/core"
	"ltsp/internal/hlo"
	"ltsp/internal/ifconv"
	"ltsp/internal/interp"
	"ltsp/internal/ir"
	"ltsp/internal/machine"
	"ltsp/internal/obs"
	"ltsp/internal/regalloc"
	"ltsp/internal/sched"
	"ltsp/internal/sim"
	"ltsp/internal/verify"
)

// Core IR types, re-exported for library users.
type (
	// Loop is an innermost counted loop in if-converted form.
	Loop = ir.Loop
	// Instr is one IR instruction.
	Instr = ir.Instr
	// Reg is a register operand.
	Reg = ir.Reg
	// MemRef is the memory-access descriptor of loads/stores/prefetches.
	MemRef = ir.MemRef
	// RegInit seeds a register value on loop entry.
	RegInit = ir.RegInit
	// MemDep is an explicit memory ordering constraint between body
	// instructions.
	MemDep = ir.MemDep
	// WhileInfo marks a data-terminated (while) loop pipelined with
	// br.wtop on a software validity-predicate chain.
	WhileInfo = ir.WhileInfo
	// Hint is an HLO latency-hint token.
	Hint = ir.Hint
	// StrideKind classifies a memory reference's address stream.
	StrideKind = ir.StrideKind
	// Memory is the simulator's sparse byte-addressed memory.
	Memory = interp.Memory
	// Program is an executable compiled loop.
	Program = interp.Program
	// Machine describes the target processor.
	Machine = machine.Model
	// HintMode selects the hint policy of the HLO pass.
	HintMode = hlo.HintMode
	// LoadReport describes how one load was scheduled.
	LoadReport = core.LoadReport
	// RegStats summarizes register allocation of a pipelined loop.
	RegStats = regalloc.Stats
	// SimConfig parameterizes the timing simulator.
	SimConfig = sim.Config
	// SimResult reports one simulated loop execution.
	SimResult = sim.Result
	// Accounting decomposes simulated cycles into microarchitectural
	// states (the paper's Fig. 10 components).
	Accounting = sim.Accounting
)

// Hint tokens.
const (
	HintNone = ir.HintNone
	HintL2   = ir.HintL2
	HintL3   = ir.HintL3
)

// Stride classes.
const (
	StrideUnknown      = ir.StrideUnknown
	StrideUnit         = ir.StrideUnit
	StrideConst        = ir.StrideConst
	StrideSymbolic     = ir.StrideSymbolic
	StrideIndirect     = ir.StrideIndirect
	StridePointerChase = ir.StridePointerChase
	StrideInvariant    = ir.StrideInvariant
)

// Hint modes.
const (
	ModeNone    = hlo.ModeNone
	ModeAllL3   = hlo.ModeAllL3
	ModeAllFPL2 = hlo.ModeAllFPL2
	ModeHLO     = hlo.ModeHLO
)

// If-conversion front end (paper Sec. 3.3: loops are if-converted before
// pipelining). Build a structured body with Stmt/If/Merge and lower it
// with IfConvert; conditionals become predicated straight-line code with
// single-definition sel merges.
type (
	// Stmt is one statement of a structured loop body.
	Stmt = ifconv.Stmt
	// IfRegion is a structured two-armed conditional.
	IfRegion = ifconv.If
	// Merge declares a value produced on both arms of a conditional.
	Merge = ifconv.Merge
)

// StmtOf wraps an instruction as a structured statement.
func StmtOf(in *Instr) Stmt { return ifconv.I(in) }

// CondOf wraps a conditional region as a structured statement.
func CondOf(region *IfRegion) Stmt { return ifconv.Cond(region) }

// IfConvert lowers a structured body into the loop's predicated
// straight-line body.
func IfConvert(l *Loop, body []Stmt) error { return ifconv.Convert(l, body) }

// DataSpeculate breaks may-alias memory dependences ending at loads
// (advanced loads validated by chk.a), shortening recurrence cycles; it
// returns the number of dependences broken.
func DataSpeculate(l *Loop) int { return core.DataSpeculate(l) }

// NewLoop returns an empty loop with the given name.
func NewLoop(name string) *Loop { return ir.NewLoop(name) }

// NewMemory returns an empty memory image.
func NewMemory() *Memory { return interp.NewMemory() }

// Itanium2 returns the Dual-Core Itanium 2 machine model the paper
// evaluates on.
func Itanium2() *Machine { return machine.Itanium2() }

// IR instruction constructors (see package ir for the full set).
var (
	// Ld builds an integer load dst = [base] with post-increment.
	Ld = ir.Ld
	// LdF builds an FP load (bypasses L1 on Itanium 2).
	LdF = ir.LdF
	// St builds an integer store [base] = val.
	St = ir.St
	// StF builds an FP store.
	StF = ir.StF
	// Lfetch builds a software prefetch.
	Lfetch = ir.Lfetch
	// Add, Sub, AddI, MovI, Mov, Shladd, Mul are integer ALU builders.
	Add    = ir.Add
	Sub    = ir.Sub
	AddI   = ir.AddI
	MovI   = ir.MovI
	Mov    = ir.Mov
	Shladd = ir.Shladd
	Mul    = ir.Mul
	// FAdd, FMul, FMA are FP builders.
	FAdd = ir.FAdd
	FMul = ir.FMul
	FMA  = ir.FMA
	// CmpEqI, CmpLt build predicate-writing compares; Predicated attaches
	// a qualifying predicate.
	CmpEqI     = ir.CmpEqI
	CmpLt      = ir.CmpLt
	Predicated = ir.Predicated
)

// Options controls Compile.
type Options struct {
	// Mode selects the HLO hint policy (ModeNone = the paper's baseline).
	Mode HintMode
	// Prefetch enables the software prefetcher (default in the paper).
	Prefetch bool
	// LatencyTolerant enables latency-tolerant pipelining for the loop.
	LatencyTolerant bool
	// BoostDelinquent boosts HLO-flagged delinquent loads even when
	// LatencyTolerant is off (the trip-count-threshold override).
	BoostDelinquent bool
	// TripEstimate is the compile-time trip-count estimate (<= 0 unknown);
	// it clamps prefetch distances.
	TripEstimate float64
	// Pipeline forces the pipelining decision; when nil the loop is
	// pipelined if possible.
	Pipeline *bool
	// Model overrides the target processor (nil = Itanium2()).
	Model *Machine
	// Parallelism bounds how many candidate IIs the pipeliner's
	// speculative II search schedules concurrently; values <= 1 select
	// the sequential search. Results, traces, and fallback behavior are
	// bit-identical across settings. DefaultParallelism() returns the
	// GOMAXPROCS-derived width.
	Parallelism int
	// Backend selects the scheduling backend by name: BackendHeuristic
	// (or "", the default) for the production iterative modulo
	// scheduler, BackendExact for the branch-and-bound optimal pipeliner
	// (small loops; falls back to the heuristic per-II beyond its size
	// budget), or BackendOracle for the heuristic schedule plus an exact
	// optimality-gap probe recorded in the trace. Unknown names fail the
	// compilation. See SchedulerBackends.
	Backend string
	// Trace, when non-nil, collects the compiler's full decision trace
	// (classification, hint translation, II search, fallback ladder,
	// allocation); nil disables collection with zero overhead. See
	// package obs.
	Trace *Trace
	// Verify runs the independent verification layer (package verify) on
	// the compiled program before returning it: the structural schedule
	// checker plus the semantic differential oracle against the source
	// loop. A verification failure fails the compilation.
	Verify bool
}

// Trace is the compiler's structured decision trace (package obs).
type Trace = obs.Trace

// NewTrace returns an empty decision trace to pass in Options.Trace.
func NewTrace() *Trace { return obs.New() }

// DefaultParallelism returns the GOMAXPROCS-derived width for the
// pipeliner's speculative II search (Options.Parallelism).
func DefaultParallelism() int { return sched.DefaultParallelism() }

// Scheduler backend names for Options.Backend.
const (
	// BackendHeuristic is the production iterative modulo scheduler with
	// the speculative/sequential II search (the default).
	BackendHeuristic = sched.BackendHeuristic
	// BackendExact is the branch-and-bound optimal pipeliner for small
	// loops: it proves II-optimality and minimizes max register lifetime.
	BackendExact = sched.BackendExact
	// BackendOracle compiles with the heuristic and measures its
	// optimality gap against the exact solver.
	BackendOracle = sched.BackendOracle
)

// SchedulerBackends returns the names of every selectable scheduling
// backend, sorted.
func SchedulerBackends() []string { return sched.Backends() }

// Compiled is the result of compiling one loop.
type Compiled struct {
	// Program is the executable form (pipelined kernel or sequential
	// schedule).
	Program *Program
	// Pipelined reports whether software pipelining succeeded/was chosen.
	Pipelined bool
	// II and Stages describe the kernel (pipelined only).
	II, Stages int
	// ResII and RecII are the II lower bounds (pipelined only).
	ResII, RecII int
	// Loads reports per-load scheduling decisions (pipelined only).
	Loads []LoadReport
	// Reg is the register allocation footprint (pipelined only).
	Reg RegStats
	// HLO reports the prefetcher's decisions.
	HLO *hlo.Report
	// LatencyReduced reports that the fallback ladder dropped non-critical
	// latencies back to base; IIBumps counts IIs tried beyond MinII
	// (pipelined only).
	LatencyReduced bool
	IIBumps        int
	// Backend names the scheduling backend the compilation selected
	// ("heuristic", "exact", or "oracle") — stamped on sequential
	// fallbacks too, so telemetry can always attribute the outcome.
	Backend string
	// ProvenII reports that II is provably optimal: it meets the MinII
	// lower bound, or the exact backend refuted every lower II.
	ProvenII bool

	core  *core.Compiled
	loop  *ir.Loop // HLO-processed source loop, retained for verification
	model *Machine
}

// Outcome names the compilation outcome: obs.OutcomePipelined,
// obs.OutcomeReducedLatency, obs.OutcomeRaisedII, or obs.OutcomeSequential.
func (c *Compiled) Outcome() string {
	if !c.Pipelined || c.core == nil {
		return obs.OutcomeSequential
	}
	return c.core.Outcome()
}

// Diagram renders the conceptual pipeline view of the paper's Figs. 2/4
// for n source iterations (pipelined compilations only).
func (c *Compiled) Diagram(n int) string {
	if c.core == nil {
		return ""
	}
	return c.core.Diagram(n)
}

// Compile runs the HLO prefetcher and the (latency-tolerant) software
// pipeliner on the loop, falling back to an acyclic list schedule when
// pipelining is infeasible or disabled.
func Compile(l *Loop, opts Options) (*Compiled, error) {
	return CompileContext(context.Background(), l, opts)
}

// CompileContext is Compile with cooperative cancellation: the
// pipeliner's II search checks ctx between candidate IIs and abandons
// the compilation with an error wrapping ctx.Err() once the context is
// done, so callers that stop caring (a timed-out service request, a
// canceled batch) stop burning CPU. Cancellation never degrades the
// result: a canceled compilation returns the error rather than falling
// back to the sequential schedule.
func CompileContext(ctx context.Context, l *Loop, opts Options) (*Compiled, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Validate the backend up front: an unknown name is a caller error,
	// not "pipelining infeasible", so it must never degrade to the
	// sequential-schedule fallback.
	backend, err := sched.New(opts.Backend)
	if err != nil {
		return nil, err
	}
	m := opts.Model
	if m == nil {
		m = machine.Itanium2()
	}
	rep, err := hlo.Apply(l, hlo.Options{
		Model:        m,
		Mode:         opts.Mode,
		Prefetch:     opts.Prefetch,
		TripEstimate: opts.TripEstimate,
	})
	if err != nil {
		return nil, err
	}
	// The backend is stamped on every result — including sequential
	// fallbacks — so service telemetry can always attribute the outcome.
	out := &Compiled{HLO: rep, loop: l, model: m, Backend: backend.Name()}
	pipeline := opts.Pipeline == nil || *opts.Pipeline
	var pipeErr error
	if pipeline {
		c, err := core.PipelineCtx(ctx, l, core.Options{
			Model:           m,
			LatencyTolerant: opts.LatencyTolerant,
			BoostDelinquent: opts.BoostDelinquent,
			Parallelism:     opts.Parallelism,
			Backend:         opts.Backend,
			Trace:           opts.Trace,
		})
		if err == nil {
			out.Program = c.Program
			out.Pipelined = true
			out.II, out.Stages = c.FinalII, c.Stages
			out.ResII, out.RecII = c.ResII, c.BaseRecII
			out.Loads = c.Loads
			out.Reg = c.Assignment.Stats
			out.LatencyReduced = c.LatencyReduced
			out.IIBumps = c.IIBumps
			out.Backend = c.Backend
			out.ProvenII = c.ProvenII
			out.core = c
			if opts.Verify {
				if verr := out.Verify(); verr != nil {
					return nil, verr
				}
			}
			return out, nil
		}
		if opts.Pipeline != nil {
			return nil, err
		}
		// A canceled search is not "pipelining infeasible": surface the
		// cancellation instead of silently emitting a sequential schedule.
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, err
		}
		pipeErr = err
	}
	p, err := core.GenSequential(m, l)
	if err != nil {
		return nil, err
	}
	out.Program = p
	if opts.Trace.On() {
		ev := obs.OutcomeEvent{Result: obs.OutcomeSequential}
		if pipeErr != nil {
			ev.Err = pipeErr.Error()
		}
		opts.Trace.Emit(ev)
	}
	if opts.Verify {
		if verr := out.Verify(); verr != nil {
			return nil, verr
		}
	}
	return out, nil
}

// Verify re-checks the compilation with the independent verification
// layer: for pipelined programs the structural schedule verifier
// (dependences, resources, stage count and register lifetimes re-derived
// from scratch), then — for every compilation — the semantic differential
// oracle, which executes the source loop and the compiled program on
// identical seeded memory images across a battery of trip counts
// (including trips shorter than the pipeline's stage count) and compares
// final memory and live-out values. It returns the first discrepancy.
func (c *Compiled) Verify() error {
	if c.loop == nil || c.Program == nil {
		return errors.New("ltsp: compilation retains no source loop to verify against")
	}
	m := c.model
	if m == nil {
		m = machine.Itanium2()
	}
	if c.core != nil && c.core.Schedule != nil {
		if err := verify.Schedule(m, c.core.Loop(), c.core.Schedule, c.core.Assignment); err != nil {
			return err
		}
	}
	return verify.Kernel(c.loop, c.Program, verify.Config{Seed: 1})
}

// DefaultSimConfig returns the simulator configuration used throughout the
// paper reproduction: the Itanium 2 model with its cache hierarchy, bank
// conflicts on, and small fixed loop entry/exit overheads.
func DefaultSimConfig() SimConfig { return sim.DefaultConfig() }

// Simulate runs the compiled loop for the given trip count against mem
// (nil = fresh empty memory) and returns cycle counts with full Fig.-10
// style accounting. cfg nil means DefaultSimConfig.
func Simulate(c *Compiled, trip int64, mem *Memory, cfg *SimConfig) (*SimResult, error) {
	conf := sim.DefaultConfig()
	if cfg != nil {
		conf = *cfg
	}
	return sim.NewRunner(conf).Run(c.Program, trip, mem)
}

// NewRunner returns a reusable simulator whose cache hierarchy and clock
// persist across runs (for warm-cache measurement of repeated loop
// executions).
func NewRunner(cfg *SimConfig) *sim.Runner {
	conf := sim.DefaultConfig()
	if cfg != nil {
		conf = *cfg
	}
	return sim.NewRunner(conf)
}

// Run executes the compiled loop functionally (no timing) — useful for
// verifying results independently of the timing model.
func Run(c *Compiled, trip int64, mem *Memory) (*interp.State, error) {
	return interp.Run(c.Program, trip, mem)
}

// CacheConfig is the cache hierarchy geometry of the timing simulator
// (SimConfig.Cache).
type CacheConfig = cache.Config

// DefaultCacheConfig returns the Itanium 2 cache hierarchy geometry.
//
// Deprecated: use DefaultSimConfig().Cache, which names the same
// geometry through the simulator configuration that actually consumes
// it; this accessor remains only for existing callers.
func DefaultCacheConfig() CacheConfig { return cache.DefaultItanium2() }
