package ltspclient

// Fleet-aware routing: the client builds the same ring as the servers,
// sends each request to its hash's primary owner, rotates to the next
// replica on retry, and shards batches by owner.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"ltsp/internal/cluster"
	"ltsp/internal/ir"
	"ltsp/internal/wire"
)

// fleetNode records which compile hashes each fake peer received.
type fleetNode struct {
	ts *httptest.Server

	mu     sync.Mutex
	hashes []string
	fail   bool
}

func (n *fleetNode) seen() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]string(nil), n.hashes...)
}

func (n *fleetNode) setFail(v bool) {
	n.mu.Lock()
	n.fail = v
	n.mu.Unlock()
}

// newFleet builds n recording peers. Single compiles answer with the
// request's true hash; batches answer every item.
func newFleet(t *testing.T, n int) ([]*fleetNode, []cluster.Peer) {
	t.Helper()
	nodes := make([]*fleetNode, n)
	peers := make([]cluster.Peer, n)
	for i := range nodes {
		node := &fleetNode{}
		node.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			node.mu.Lock()
			failing := node.fail
			node.mu.Unlock()
			if failing {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusServiceUnavailable)
				_ = json.NewEncoder(w).Encode(wire.NewError(wire.CodeOverloaded, "down"))
				return
			}
			switch r.URL.Path {
			case "/v2/compile":
				var req wire.CompileRequest
				if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
					t.Errorf("decode: %v", err)
				}
				hash, err := req.Hash()
				if err != nil {
					t.Errorf("hash: %v", err)
				}
				node.mu.Lock()
				node.hashes = append(node.hashes, hash)
				node.mu.Unlock()
				_ = json.NewEncoder(w).Encode(&wire.CompileResponse{Hash: hash, Pipelined: true})
			case "/v2/compile-batch":
				var req wire.CompileBatchRequest
				if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
					t.Errorf("decode batch: %v", err)
				}
				out := wire.CompileBatchResponse{Items: make([]wire.BatchItemResult, len(req.Items))}
				for i := range req.Items {
					hash, err := req.Item(i).Hash()
					if err != nil {
						t.Errorf("item hash: %v", err)
					}
					node.mu.Lock()
					node.hashes = append(node.hashes, hash)
					node.mu.Unlock()
					out.Items[i] = wire.BatchItemResult{
						CompileResponse: &wire.CompileResponse{Hash: hash, Pipelined: true},
					}
				}
				_ = json.NewEncoder(w).Encode(&out)
			default:
				http.NotFound(w, r)
			}
		}))
		t.Cleanup(node.ts.Close)
		nodes[i] = node
		peers[i] = cluster.Peer{ID: fmt.Sprintf("n%d", i), Addr: node.ts.URL}
	}
	return nodes, peers
}

func newFleetClient(t *testing.T, peers []cluster.Peer, mut func(*Config)) *Client {
	t.Helper()
	cfg := Config{
		Peers:       peers,
		Replication: 2,
		Seed:        1,
		MaxRetries:  3,
		BackoffBase: time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
	}
	if mut != nil {
		mut(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// fleetRequest builds a compile request with a distinguishing constant.
func fleetRequest(t *testing.T, k int64) (*wire.CompileRequest, string) {
	t.Helper()
	l := ir.NewLoop("copyadd")
	v, bs, r, kr := l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR()
	l.Append(ir.Ld(v, bs, 4, 4))
	l.Append(ir.Add(r, v, kr))
	l.Init(bs, 0x100000)
	l.Init(kr, k)
	l.LiveOut = []ir.Reg{bs}
	data, err := ir.EncodeLoop(l)
	if err != nil {
		t.Fatal(err)
	}
	req := &wire.CompileRequest{Version: wire.Version, Loop: data}
	hash, err := req.Hash()
	if err != nil {
		t.Fatal(err)
	}
	return req, hash
}

// TestFleetRoutesToPrimaryOwner: each compile lands on the ring's
// primary owner for its hash, nowhere else.
func TestFleetRoutesToPrimaryOwner(t *testing.T) {
	nodes, peers := newFleet(t, 3)
	client := newFleetClient(t, peers, nil)
	ring := cluster.New(cluster.Static(peers), 0)

	for k := int64(0); k < 8; k++ {
		req, hash := fleetRequest(t, k)
		resp, err := client.Compile(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Hash != hash {
			t.Fatalf("response hash %s, want %s", resp.Hash, hash)
		}
		owner, ok := ring.Owner(hash)
		if !ok {
			t.Fatal("empty ring")
		}
		for i, n := range nodes {
			saw := false
			for _, h := range n.seen() {
				if h == hash {
					saw = true
				}
			}
			if want := peers[i].ID == owner.ID; saw != want {
				t.Fatalf("hash %s: node %s saw=%v, want %v (owner %s)",
					hash[:12], peers[i].ID, saw, want, owner.ID)
			}
		}
	}
}

// TestFleetFailsOverToReplica: a down primary pushes the retry to the
// next replica in the set; the request still succeeds.
func TestFleetFailsOverToReplica(t *testing.T) {
	nodes, peers := newFleet(t, 3)
	client := newFleetClient(t, peers, nil)
	ring := cluster.New(cluster.Static(peers), 0)

	req, hash := fleetRequest(t, 100)
	owners := ring.Owners(hash, 2)
	var primary, secondary *fleetNode
	for i := range peers {
		switch peers[i].ID {
		case owners[0].ID:
			primary = nodes[i]
		case owners[1].ID:
			secondary = nodes[i]
		}
	}
	primary.setFail(true)

	resp, err := client.Compile(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Hash != hash {
		t.Fatalf("response hash %s, want %s", resp.Hash, hash)
	}
	if len(secondary.seen()) == 0 {
		t.Fatal("secondary replica never saw the failed-over request")
	}
	if st := client.Stats(); st.Retries == 0 {
		t.Fatalf("stats = %+v, want at least one retry", st)
	}
}

// TestFleetBatchShardsByOwner: a batch splits into per-owner
// sub-batches — every node sees exactly the hashes it owns — and the
// reassembled response preserves request order.
func TestFleetBatchShardsByOwner(t *testing.T) {
	nodes, peers := newFleet(t, 3)
	client := newFleetClient(t, peers, nil)
	ring := cluster.New(cluster.Static(peers), 0)

	const total = 24
	items := make([]wire.CompileItem, total)
	hashes := make([]string, total)
	for k := range items {
		req, hash := fleetRequest(t, int64(200+k))
		items[k] = wire.CompileItem{Loop: req.Loop, Options: req.Options}
		hashes[k] = hash
	}

	resp, err := client.CompileBatch(context.Background(), items)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Items) != total {
		t.Fatalf("%d results, want %d", len(resp.Items), total)
	}
	for k, item := range resp.Items {
		if item.Error != "" || item.CompileResponse == nil || item.Hash != hashes[k] {
			t.Fatalf("item %d: %+v, want clean compile of %s (order must be preserved)",
				k, item, hashes[k])
		}
	}
	for i, n := range nodes {
		for _, h := range n.seen() {
			if owner, _ := ring.Owner(h); owner.ID != peers[i].ID {
				t.Fatalf("node %s received %s, owned by %s", peers[i].ID, h[:12], owner.ID)
			}
		}
	}
}
