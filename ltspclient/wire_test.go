package ltspclient

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"ltsp"
	"ltsp/internal/server"
	"ltsp/internal/wire"
	"ltsp/internal/wire/binary"
	"ltsp/internal/workload"
)

// newWireClients builds a real ltspd server plus one JSON-mode and one
// binary-mode client pointed at it.
func newWireClients(t *testing.T) (*Client, *Client) {
	t.Helper()
	ts := httptest.NewServer(server.New(server.Config{}))
	t.Cleanup(ts.Close)
	jc, err := New(Config{BaseURL: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	bc, err := New(Config{BaseURL: ts.URL, Wire: "binary"})
	if err != nil {
		t.Fatal(err)
	}
	return jc, bc
}

func wireTestLoop(t testing.TB) *ltsp.Loop {
	t.Helper()
	return workload.All()[0].Loops[0].Gen()
}

// TestBinaryWireAgainstServer: a binary-mode client gets the same
// compile, batch, and artifact answers as a JSON-mode client from a real
// server — same hash, same schedule, integrity intact.
func TestBinaryWireAgainstServer(t *testing.T) {
	jc, bc := newWireClients(t)
	ctx := context.Background()
	l := wireTestLoop(t)
	opts := ltsp.Options{}

	jresp, err := jc.CompileLoop(ctx, l, opts)
	if err != nil {
		t.Fatal(err)
	}
	bresp, err := bc.CompileLoop(ctx, l, opts)
	if err != nil {
		t.Fatal(err)
	}
	if jresp.Hash == "" || jresp.Hash != bresp.Hash {
		t.Fatalf("hash mismatch: json %q vs binary %q", jresp.Hash, bresp.Hash)
	}
	// The binary compile is served from the artifact the JSON compile
	// created, so Cached differs by design; everything else must match.
	bresp.Cached = jresp.Cached
	if !reflect.DeepEqual(jresp, bresp) {
		t.Fatalf("responses differ:\njson:   %+v\nbinary: %+v", jresp, bresp)
	}
	if bc.jsonFallback.Load() {
		t.Fatal("binary client fell back to JSON against a binary-capable server")
	}

	req, err := wire.NewCompileRequest(l, opts)
	if err != nil {
		t.Fatal(err)
	}
	items := []wire.CompileItem{{Loop: req.Loop, Options: req.Options}}
	jb, err := jc.CompileBatch(ctx, items)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := bc.CompileBatch(ctx, items)
	if err != nil {
		t.Fatal(err)
	}
	if len(bb.Items) != 1 || bb.Items[0].Hash != jb.Items[0].Hash {
		t.Fatalf("batch mismatch: json %+v vs binary %+v", jb.Items, bb.Items)
	}

	ja, err := jc.Artifact(ctx, jresp.Hash)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := bc.Artifact(ctx, jresp.Hash)
	if err != nil {
		t.Fatal(err)
	}
	if ja.Hash != ba.Hash || ja.Verify != ba.Verify {
		t.Fatalf("artifact mismatch: json %+v vs binary %+v", ja, ba)
	}
}

// TestBinary415FallsBackToJSON: a server predating the wire format
// answers a binary frame with 415; the client latches JSON mode, the
// in-flight call still succeeds, and later calls skip binary entirely.
func TestBinary415FallsBackToJSON(t *testing.T) {
	var binaryHits, jsonHits atomic.Int64
	handler := func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.Header.Get("Content-Type"), binary.ContentType) {
			binaryHits.Add(1)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusUnsupportedMediaType)
			_ = json.NewEncoder(w).Encode(wire.NewError(wire.CodeUnsupportedMedia, "unknown content type"))
			return
		}
		jsonHits.Add(1)
		var req wire.CompileRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("fallback body is not JSON: %v", err)
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(&wire.CompileResponse{Hash: "abc", Pipelined: true})
	}
	client, _ := newClient(t, handler, func(cfg *Config) { cfg.Wire = "binary" })

	l := wireTestLoop(t)
	resp, err := client.CompileLoop(context.Background(), l, ltsp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Hash != "abc" {
		t.Fatalf("hash = %q after fallback", resp.Hash)
	}
	if got := binaryHits.Load(); got != 1 {
		t.Fatalf("binary attempts = %d, want exactly 1", got)
	}
	if !client.jsonFallback.Load() {
		t.Fatal("jsonFallback not latched after 415")
	}

	// The latch is sticky: the next call goes straight to JSON.
	if _, err := client.CompileLoop(context.Background(), l, ltsp.Options{}); err != nil {
		t.Fatal(err)
	}
	if got := binaryHits.Load(); got != 1 {
		t.Fatalf("binary attempts after latch = %d, want still 1", got)
	}
	if got := jsonHits.Load(); got != 2 {
		t.Fatalf("json attempts = %d, want 2", got)
	}
}
