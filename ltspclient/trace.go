package ltspclient

import (
	"context"
	"net/http"

	"ltsp/internal/wire"
)

// Request tracing. A caller that wants a request's cross-process span
// timeline runs the call under a telemetry trace context (package
// ltsp/internal/telemetry; cmd/ltsp's -trace flag does this): every
// attempt, backoff and hedge leg then records a client-side span, and
// every attempt forwards the X-Trace-ID / X-Parent-Span-ID headers so
// the server hops — including peer cache-fill legs between nodes —
// record their spans under the same trace ID. RequestTrace fetches a
// server's slice back for stitching.

// RequestTrace fetches the span timeline a server retained for a trace
// ID (GET /v2/requests/{trace-id}). Servers record a trace after the
// response is written, so a fetch immediately after the traced call can
// race the recording and return ErrNotFound — retry briefly. A trace
// that was never sampled or has cycled out of the server's bounded ring
// also returns ErrNotFound.
func (c *Client) RequestTrace(ctx context.Context, traceID string) (*wire.RequestTraceResponse, error) {
	out := new(wire.RequestTraceResponse)
	if err := c.do(ctx, http.MethodGet, "/v2/requests/"+traceID, nil, c.cfg.RequestTimeout, out); err != nil {
		return nil, err
	}
	return out, nil
}

// RequestList fetches the server's retained-request listing
// (GET /debug/requests, z-pages style): recent requests plus pinned
// slow/error outliers, newest first.
func (c *Client) RequestList(ctx context.Context) (*wire.RequestListResponse, error) {
	out := new(wire.RequestListResponse)
	if err := c.do(ctx, http.MethodGet, "/debug/requests", nil, c.cfg.RequestTimeout, out); err != nil {
		return nil, err
	}
	return out, nil
}
