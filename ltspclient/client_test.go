package ltspclient

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"ltsp/internal/wire"
)

func newClient(t *testing.T, handler http.HandlerFunc, mut func(*Config)) (*Client, *httptest.Server) {
	t.Helper()
	ts := httptest.NewServer(handler)
	t.Cleanup(ts.Close)
	cfg := Config{
		BaseURL:     ts.URL,
		Seed:        1,
		MaxRetries:  3,
		BackoffBase: time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
	}
	if mut != nil {
		mut(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, ts
}

func writeEnvelope(w http.ResponseWriter, status int, code string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(wire.NewError(code, "test"))
}

func okCompile(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(&wire.CompileResponse{Hash: "abc", Pipelined: true})
}

// TestRetriesTransientThenSucceeds: retryable envelope codes are retried
// until the server recovers; the result and the retry accounting both
// come out right.
func TestRetriesTransientThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	client, _ := newClient(t, func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			writeEnvelope(w, http.StatusServiceUnavailable, wire.CodeOverloaded)
			return
		}
		okCompile(w)
	}, nil)

	resp, err := client.Compile(context.Background(), &wire.CompileRequest{Version: wire.Version})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Hash != "abc" {
		t.Fatalf("hash = %q", resp.Hash)
	}
	st := client.Stats()
	if st.Attempts != 3 || st.Retries != 2 {
		t.Fatalf("stats = %+v, want 3 attempts / 2 retries", st)
	}
}

// TestPermanentErrorNotRetried: a non-retryable code fails immediately
// as the matching typed sentinel.
func TestPermanentErrorNotRetried(t *testing.T) {
	client, _ := newClient(t, func(w http.ResponseWriter, r *http.Request) {
		writeEnvelope(w, http.StatusBadRequest, wire.CodeInvalidRequest)
	}, nil)

	_, err := client.Compile(context.Background(), &wire.CompileRequest{Version: wire.Version})
	if !errors.Is(err, ErrInvalidRequest) {
		t.Fatalf("err = %v, want ErrInvalidRequest", err)
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusBadRequest || ae.Retryable {
		t.Fatalf("APIError = %+v", ae)
	}
	if st := client.Stats(); st.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (no retry of a permanent error)", st.Attempts)
	}
}

// TestTypedErrorMapping: each envelope code round-trips to its sentinel.
func TestTypedErrorMapping(t *testing.T) {
	cases := []struct {
		status   int
		code     string
		sentinel *APIError
	}{
		{http.StatusNotFound, wire.CodeNotFound, ErrNotFound},
		{http.StatusBadRequest, wire.CodeUnsupportedVersion, ErrUnsupportedVersion},
		{http.StatusRequestEntityTooLarge, wire.CodeTooLarge, ErrTooLarge},
		{http.StatusGatewayTimeout, wire.CodeDeadlineExceeded, ErrDeadlineExceeded},
		{http.StatusServiceUnavailable, wire.CodeDraining, ErrDraining},
		{http.StatusServiceUnavailable, wire.CodeInjected, ErrInjected},
	}
	for _, tc := range cases {
		client, _ := newClient(t, func(w http.ResponseWriter, r *http.Request) {
			writeEnvelope(w, tc.status, tc.code)
		}, func(c *Config) { c.MaxRetries = -1 })
		_, err := client.Trace(context.Background(), "deadbeef")
		if !errors.Is(err, tc.sentinel) {
			t.Errorf("code %s: err %v does not match its sentinel", tc.code, err)
		}
	}
}

// TestRetryAfterFloorsBackoff: the server's Retry-After hint raises the
// sleep above the jittered exponential backoff.
func TestRetryAfterFloorsBackoff(t *testing.T) {
	if testing.Short() {
		t.Skip("sleeps a full Retry-After second")
	}
	var calls atomic.Int64
	client, _ := newClient(t, func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			writeEnvelope(w, http.StatusServiceUnavailable, wire.CodeOverloaded)
			return
		}
		okCompile(w)
	}, nil)

	start := time.Now()
	if _, err := client.Compile(context.Background(), &wire.CompileRequest{Version: wire.Version}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Fatalf("retried after %s, before the server's Retry-After of 1s", elapsed)
	}
	if st := client.Stats(); st.BackoffSlept < time.Second {
		t.Fatalf("BackoffSlept = %s, want >= 1s", st.BackoffSlept)
	}
}

// TestBackoffBudgetBounds: when every attempt fails retryably, the total
// sleep is bounded by BackoffBudget and the loop gives up early rather
// than sleeping past it.
func TestBackoffBudgetBounds(t *testing.T) {
	client, _ := newClient(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1") // 1s floor vs a 100ms budget
		writeEnvelope(w, http.StatusServiceUnavailable, wire.CodeOverloaded)
	}, func(c *Config) {
		c.MaxRetries = 50
		c.BackoffBudget = 100 * time.Millisecond
	})

	start := time.Now()
	_, err := client.Compile(context.Background(), &wire.CompileRequest{Version: wire.Version})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	st := client.Stats()
	if st.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1: the first 1s-floored sleep already exceeds the 100ms budget", st.Attempts)
	}
	if st.BackoffSlept != 0 {
		t.Fatalf("BackoffSlept = %s, want 0 (the over-budget sleep must not happen)", st.BackoffSlept)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("gave up after %s; the budget should have cut retries off immediately", elapsed)
	}
}

// TestDeadlineHeaderPropagates: each attempt advertises the remaining
// ctx budget via X-Request-Deadline-Ms so the server can shed and cancel.
func TestDeadlineHeaderPropagates(t *testing.T) {
	var gotMs atomic.Int64
	client, _ := newClient(t, func(w http.ResponseWriter, r *http.Request) {
		ms, _ := json.Number(r.Header.Get(wire.DeadlineHeader)).Int64()
		gotMs.Store(ms)
		okCompile(w)
	}, nil)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := client.Compile(ctx, &wire.CompileRequest{Version: wire.Version}); err != nil {
		t.Fatal(err)
	}
	ms := gotMs.Load()
	if ms <= 0 || ms > 5000 {
		t.Fatalf("%s = %dms, want in (0, 5000]", wire.DeadlineHeader, ms)
	}
}

// TestCallerContextStopsRetries: once the caller's own context is done,
// the retry loop stops — a canceled caller never generates more load.
func TestCallerContextStopsRetries(t *testing.T) {
	client, _ := newClient(t, func(w http.ResponseWriter, r *http.Request) {
		writeEnvelope(w, http.StatusServiceUnavailable, wire.CodeOverloaded)
	}, func(c *Config) {
		c.MaxRetries = 1000
		c.BackoffBase = 50 * time.Millisecond
		c.BackoffMax = 50 * time.Millisecond
		c.BackoffBudget = time.Hour
	})

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Millisecond)
	defer cancel()
	_, err := client.Compile(ctx, &wire.CompileRequest{Version: wire.Version})
	if err == nil {
		t.Fatal("expected failure")
	}
	if st := client.Stats(); st.Attempts > 5 {
		t.Fatalf("attempts = %d after ctx expiry, want a handful at most", st.Attempts)
	}
}

// TestHedgeSecondRequestWins: when the first attempt stalls past
// HedgeDelay, the hedge fires, wins, and the caller gets its answer
// without waiting out the stall.
func TestHedgeSecondRequestWins(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	client, _ := newClient(t, func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// First leg stalls until the test ends (or the client
			// cancels it after the hedge wins).
			select {
			case <-release:
			case <-r.Context().Done():
			}
			writeEnvelope(w, http.StatusServiceUnavailable, wire.CodeOverloaded)
			return
		}
		okCompile(w)
	}, func(c *Config) { c.HedgeDelay = 10 * time.Millisecond })
	defer close(release)

	start := time.Now()
	resp, err := client.Compile(context.Background(), &wire.CompileRequest{Version: wire.Version})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Hash != "abc" {
		t.Fatalf("hash = %q", resp.Hash)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("hedged call took %s; the hedge should have won quickly", elapsed)
	}
	st := client.Stats()
	if st.Hedges != 1 || st.HedgeWins != 1 {
		t.Fatalf("stats = %+v, want 1 hedge / 1 hedge win", st)
	}
}

// TestNonEnvelopeErrorDegrades: a non-JSON error body (a proxy page)
// still produces a usable APIError with retryability inferred from the
// status code.
func TestNonEnvelopeErrorDegrades(t *testing.T) {
	client, _ := newClient(t, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "<html>bad gateway</html>", http.StatusBadGateway)
	}, func(c *Config) { c.MaxRetries = -1 })

	_, err := client.Compile(context.Background(), &wire.CompileRequest{Version: wire.Version})
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v, want APIError", err)
	}
	if ae.Status != http.StatusBadGateway || ae.Code != wire.CodeInternal || !ae.Retryable {
		t.Fatalf("degraded APIError = %+v", ae)
	}
}

// TestHealthDoesNotRetry: the health probe reports what it sees, once.
func TestHealthDoesNotRetry(t *testing.T) {
	var calls atomic.Int64
	client, _ := newClient(t, func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]string{"status": "draining", "version": "test"})
	}, nil)

	status, version, err := client.Health(context.Background())
	if err != nil || status != "draining" || version != "test" {
		t.Fatalf("health = %q/%q/%v", status, version, err)
	}
	if calls.Load() != 1 {
		t.Fatalf("health probed %d times, want 1", calls.Load())
	}
}

// TestProvenanceFetch: the provenance document round-trips, and a
// response for the wrong hash is rejected.
func TestProvenanceFetch(t *testing.T) {
	hash := "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
	served := wire.ProvenanceResponse{
		Version: wire.Version, Hash: hash, Checksum: "deadbeef",
		Records: []wire.ProvenanceRecordJSON{{Seq: 1, Source: "compile", Checksum: "deadbeef", Sum: "s1"}},
		Present: true, Consistent: true, HeadSeq: 1, HeadSum: "s1",
	}
	client, _ := newClient(t, func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v2/provenance/"+hash {
			writeEnvelope(w, http.StatusNotFound, wire.CodeNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(&served)
	}, nil)
	pr, err := client.Provenance(context.Background(), hash)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Present || !pr.Consistent || pr.Checksum != "deadbeef" || len(pr.Records) != 1 {
		t.Fatalf("provenance = %+v", pr)
	}
	if pr.Records[0].Source != "compile" {
		t.Fatalf("record source = %q", pr.Records[0].Source)
	}

	// A lying server (wrong hash in the document) is rejected.
	lying, _ := newClient(t, func(w http.ResponseWriter, r *http.Request) {
		doc := served
		doc.Hash = "bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb"
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(&doc)
	}, nil)
	if _, err := lying.Provenance(context.Background(), hash); err == nil {
		t.Fatal("mismatched provenance hash not rejected")
	}
}
