// Package ltspclient is the Go client for the ltspd compile-and-simulate
// service's v2 API. It adds the resilience the raw HTTP surface expects
// from callers:
//
//   - Typed errors: every non-2xx response is decoded from the v2 error
//     envelope into an *APIError with a machine-readable code; match
//     codes with errors.Is against the Err* sentinels.
//   - Retries: transient failures (retryable envelope codes, transport
//     errors) are retried with exponential backoff and full jitter,
//     honoring the server's Retry-After hint as a floor and bounded by a
//     total backoff budget. The jitter source is seeded, so tests are
//     deterministic.
//   - Deadlines: every attempt carries the caller's remaining budget in
//     the X-Request-Deadline-Ms header, so the server can shed requests
//     it cannot serve in time and cancel work whose deadline expires.
//   - Hedging: Compile can launch a second identical request after
//     HedgeDelay to cut tail latency. This is safe — the server
//     deduplicates identical in-flight compiles by content hash, and an
//     in-flight compilation is canceled only when every request waiting
//     on it has given up, so the losing hedge never kills the winner's
//     work.
//   - Fleet awareness: with Config.Peers set, the client builds the same
//     consistent-hash ring as the servers and routes each call to the
//     replica set that owns its content hash — the nodes most likely to
//     already hold the artifact. Retries fail over to the next replica,
//     hedge legs start on different replicas, and batches are sharded by
//     owner, so a fleet shares compilation work instead of every node
//     compiling everything.
package ltspclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ltsp"
	"ltsp/internal/cluster"
	"ltsp/internal/ir"
	"ltsp/internal/telemetry"
	"ltsp/internal/wire"
	"ltsp/internal/wire/binary"
)

// Config parameterizes a Client. The zero value of every field except
// BaseURL is usable; New applies the documented defaults.
type Config struct {
	// BaseURL is the ltspd root, e.g. "http://localhost:8347" (required
	// unless Peers is set; with Peers it is the fallback target for calls
	// that have no content hash to route by, defaulting to the first
	// peer).
	BaseURL string
	// Peers enables fleet-aware mode: the cluster membership, in the same
	// form ltspd's -peers flag takes (see cluster.ParsePeers). The client
	// builds the servers' consistent-hash ring from it and routes each
	// call to the replica set owning the call's content hash, primary
	// first, failing over to the next replica on retry.
	Peers []cluster.Peer
	// Replication is the replica-set size; it must match the servers'
	// -replication for routing to land on owners (default 2).
	Replication int
	// VNodes is the ring's virtual-node count per peer; it must match the
	// servers' (default cluster.DefaultVNodes).
	VNodes int
	// HTTPClient is the underlying transport (default http.DefaultClient).
	HTTPClient *http.Client
	// MaxRetries bounds retry attempts after the first (default 3;
	// negative disables retries).
	MaxRetries int
	// BackoffBase and BackoffMax shape the exponential backoff between
	// retries: sleep k is a uniformly jittered fraction of
	// min(BackoffBase<<k, BackoffMax) — "full jitter" — raised to the
	// server's Retry-After hint when one was sent (defaults 50ms / 2s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BackoffBudget bounds the total time spent sleeping between retries
	// of one logical call (default 10s). A retry whose sleep would
	// exceed the remaining budget is not attempted.
	BackoffBudget time.Duration
	// RequestTimeout bounds each individual attempt (default 30s). The
	// caller's ctx bounds the logical call across all attempts.
	RequestTimeout time.Duration
	// BatchTimeout bounds a CompileBatch call (default 5m): batches are
	// long-running by design, so they get their own per-attempt bound.
	BatchTimeout time.Duration
	// HedgeDelay, when positive, makes Compile launch a second identical
	// request after this delay and take whichever answer arrives first
	// (default off).
	HedgeDelay time.Duration
	// Seed seeds the jitter source (0 = a fixed default seed). Equal
	// seeds give identical backoff sequences — tests rely on this.
	Seed int64
	// Wire selects the transfer encoding on the v2 endpoints: "json"
	// (the default) or "binary" (application/x-ltsp-bin). In binary mode
	// compile, batch, and artifact calls send binary frames and ask for
	// binary responses; content hashes — and therefore routing, caching,
	// and dedup — are identical in both modes. A server that answers 415
	// (one predating the binary format) flips this client back to JSON
	// permanently: one wasted request, then clean interop.
	Wire string
}

func (c Config) withDefaults() Config {
	if c.HTTPClient == nil {
		c.HTTPClient = http.DefaultClient
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 50 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 2 * time.Second
	}
	if c.BackoffBudget <= 0 {
		c.BackoffBudget = 10 * time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.BatchTimeout <= 0 {
		c.BatchTimeout = 5 * time.Minute
	}
	if c.Replication <= 0 {
		c.Replication = 2
	}
	return c
}

// Stats counts what the client's resilience machinery actually did;
// read it after a call (or a test) to assert on retry behavior.
type Stats struct {
	// Attempts is the number of HTTP requests sent (including hedges).
	Attempts int64
	// Retries is the number of attempts that were re-sends after a
	// retryable failure.
	Retries int64
	// Hedges is the number of hedge requests launched; HedgeWins counts
	// the hedged calls the second request won.
	Hedges    int64
	HedgeWins int64
	// BackoffSlept is the total time spent sleeping between retries.
	BackoffSlept time.Duration
}

// Client is a resilient ltspd v2 API client. It is safe for concurrent
// use.
type Client struct {
	cfg  Config
	base string
	ring *cluster.Ring // nil outside fleet-aware mode

	mu  sync.Mutex // guards rng
	rng *rand.Rand

	attempts  atomic.Int64
	retries   atomic.Int64
	hedges    atomic.Int64
	hedgeWins atomic.Int64
	sleptNs   atomic.Int64

	// jsonFallback latches when a binary request came back 415: the
	// server predates the wire format, so every later call goes as JSON.
	jsonFallback atomic.Bool
}

// useBinary reports whether the next request should go out binary.
func (c *Client) useBinary() bool {
	return c.cfg.Wire == "binary" && !c.jsonFallback.Load()
}

// isUnsupportedMedia matches the 415 a pre-binary server answers a
// binary frame with.
func isUnsupportedMedia(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) &&
		(ae.Code == wire.CodeUnsupportedMedia || ae.Status == http.StatusUnsupportedMediaType)
}

// New builds a Client. The only required field is Config.BaseURL
// (or Config.Peers for fleet-aware mode).
func New(cfg Config) (*Client, error) {
	if cfg.BaseURL == "" && len(cfg.Peers) == 0 {
		return nil, errors.New("ltspclient: Config.BaseURL or Config.Peers is required")
	}
	switch cfg.Wire {
	case "", "json", "binary":
	default:
		return nil, fmt.Errorf("ltspclient: unknown wire encoding %q (use \"json\" or \"binary\")", cfg.Wire)
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	base := cfg.BaseURL
	if base == "" {
		base = cfg.Peers[0].Addr
	}
	c := &Client{
		cfg:  cfg.withDefaults(),
		base: strings.TrimRight(base, "/"),
		rng:  rand.New(rand.NewSource(seed)),
	}
	if len(cfg.Peers) > 0 {
		c.ring = cluster.New(cluster.Static(cfg.Peers), cfg.VNodes)
	}
	return c, nil
}

// targetsFor returns the ordered base URLs a content-hashed call should
// try: in fleet-aware mode, the hash's replica set primary-first (the
// nodes that own — and so most likely already hold — the artifact);
// otherwise just the configured BaseURL. Retries and hedge legs walk
// this list.
func (c *Client) targetsFor(hash string) []string {
	if c.ring == nil || hash == "" {
		return []string{c.base}
	}
	owners := c.ring.Owners(hash, c.cfg.Replication)
	if len(owners) == 0 {
		return []string{c.base}
	}
	out := make([]string, len(owners))
	for i, p := range owners {
		out[i] = strings.TrimRight(p.Addr, "/")
	}
	return out
}

// Stats returns a snapshot of the client's resilience counters.
func (c *Client) Stats() Stats {
	return Stats{
		Attempts:     c.attempts.Load(),
		Retries:      c.retries.Load(),
		Hedges:       c.hedges.Load(),
		HedgeWins:    c.hedgeWins.Load(),
		BackoffSlept: time.Duration(c.sleptNs.Load()),
	}
}

// Compile submits one compile request. With Config.HedgeDelay set, a
// second identical request is hedged after the delay and the first
// answer wins; the loser's attempt is canceled.
func (c *Client) Compile(ctx context.Context, req *wire.CompileRequest) (*wire.CompileResponse, error) {
	targets := []string{c.base}
	if c.ring != nil {
		if hash, herr := req.Hash(); herr == nil {
			targets = c.targetsFor(hash)
		}
	}
	body, bin, err := c.encodeCompile(req)
	if err != nil {
		return nil, err
	}
	out := new(wire.CompileResponse)
	post := func(body []byte, bin bool) error {
		if c.cfg.HedgeDelay > 0 {
			return c.hedge(ctx, "/v2/compile", body, out, targets, bin)
		}
		return c.doOn(ctx, http.MethodPost, "/v2/compile", body, c.cfg.RequestTimeout, out, targets, bin)
	}
	err = post(body, bin)
	if err != nil && bin && isUnsupportedMedia(err) {
		c.jsonFallback.Store(true)
		if body, err = json.Marshal(req); err != nil {
			return nil, err
		}
		err = post(body, false)
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// encodeCompile renders the request in the client's wire encoding. Any
// hiccup on the binary side (an undecodable loop, an opcode with no wire
// name) silently degrades to JSON — the server gives such a request the
// same verdict either way.
func (c *Client) encodeCompile(req *wire.CompileRequest) (body []byte, bin bool, err error) {
	if c.useBinary() {
		if l, lerr := req.DecodeLoop(); lerr == nil {
			if frame, berr := binary.EncodeCompileRequest(nil, l, req.Options); berr == nil {
				return frame, true, nil
			}
		}
	}
	body, err = json.Marshal(req)
	return body, false, err
}

// CompileLoop builds the wire request for (loop, options) and submits it
// via Compile.
func (c *Client) CompileLoop(ctx context.Context, l *ltsp.Loop, opts ltsp.Options) (*wire.CompileResponse, error) {
	req, err := wire.NewCompileRequest(l, opts)
	if err != nil {
		return nil, err
	}
	return c.Compile(ctx, req)
}

// CompileBatch submits a batch of compile items. The batch as a whole
// retries like a single call (the server's response is 200 even when
// individual items fail; inspect each item's ErrorCode/Retryable to
// resubmit just the transient failures). In fleet-aware mode the batch
// is sharded by each item's owning node and the sub-batches run
// concurrently; results come back in the original item order, and a
// sub-batch whose call fails outright yields per-item errors rather than
// failing the whole batch.
func (c *Client) CompileBatch(ctx context.Context, items []wire.CompileItem) (*wire.CompileBatchResponse, error) {
	if c.ring == nil {
		out := new(wire.CompileBatchResponse)
		if err := c.postBatch(ctx, items, []string{c.base}, out); err != nil {
			return nil, err
		}
		return out, nil
	}

	type shard struct {
		targets []string
		idx     []int
		items   []wire.CompileItem
	}
	shards := make(map[string]*shard)
	var order []string
	for i, it := range items {
		creq := &wire.CompileRequest{Version: wire.Version, Loop: it.Loop, Options: it.Options}
		targets := []string{c.base}
		if h, err := creq.Hash(); err == nil {
			targets = c.targetsFor(h)
		}
		key := targets[0]
		sh := shards[key]
		if sh == nil {
			sh = &shard{targets: targets}
			shards[key] = sh
			order = append(order, key)
		}
		sh.idx = append(sh.idx, i)
		sh.items = append(sh.items, it)
	}

	results := make([]wire.BatchItemResult, len(items))
	var wg sync.WaitGroup
	for _, key := range order {
		sh := shards[key]
		wg.Add(1)
		go func() {
			defer wg.Done()
			var out wire.CompileBatchResponse
			err := c.postBatch(ctx, sh.items, sh.targets, &out)
			for k, i := range sh.idx {
				switch {
				case err != nil:
					results[i] = batchCallFailure(err)
				case k < len(out.Items):
					results[i] = out.Items[k]
				default:
					results[i] = wire.BatchItemResult{
						Error:     "server returned a short batch response",
						ErrorCode: wire.CodeInternal,
						Retryable: true,
					}
				}
			}
		}()
	}
	wg.Wait()
	return &wire.CompileBatchResponse{Items: results}, nil
}

// postBatch sends one batch (the whole batch, or one fleet shard) to its
// target list in the client's wire encoding, falling back to JSON when a
// pre-binary server answers 415.
func (c *Client) postBatch(ctx context.Context, items []wire.CompileItem, targets []string, out *wire.CompileBatchResponse) error {
	body, bin, err := c.encodeBatch(items)
	if err != nil {
		return err
	}
	err = c.doOn(ctx, http.MethodPost, "/v2/compile-batch", body, c.cfg.BatchTimeout, out, targets, bin)
	if err != nil && bin && isUnsupportedMedia(err) {
		c.jsonFallback.Store(true)
		if body, err = json.Marshal(&wire.CompileBatchRequest{Version: wire.Version, Items: items}); err != nil {
			return err
		}
		err = c.doOn(ctx, http.MethodPost, "/v2/compile-batch", body, c.cfg.BatchTimeout, out, targets, false)
	}
	return err
}

// encodeBatch renders a batch request in the client's wire encoding,
// degrading to JSON if any item resists binary encoding (the server
// judges such items identically in either form).
func (c *Client) encodeBatch(items []wire.CompileItem) (body []byte, bin bool, err error) {
	if c.useBinary() {
		loops := make([]*ir.Loop, 0, len(items))
		opts := make([]wire.Options, 0, len(items))
		ok := true
		for _, it := range items {
			creq := &wire.CompileRequest{Version: wire.Version, Loop: it.Loop, Options: it.Options}
			l, lerr := creq.DecodeLoop()
			if lerr != nil {
				ok = false
				break
			}
			loops = append(loops, l)
			opts = append(opts, it.Options)
		}
		if ok {
			if frame, berr := binary.EncodeCompileBatch(nil, loops, opts); berr == nil {
				return frame, true, nil
			}
		}
	}
	body, err = json.Marshal(&wire.CompileBatchRequest{Version: wire.Version, Items: items})
	return body, false, err
}

// batchCallFailure maps a failed sub-batch call onto its items.
func batchCallFailure(err error) wire.BatchItemResult {
	res := wire.BatchItemResult{
		Error:     err.Error(),
		ErrorCode: wire.CodeInternal,
		Retryable: IsRetryable(err),
	}
	var ae *APIError
	if errors.As(err, &ae) && ae.Code != "" {
		res.ErrorCode = ae.Code
	}
	return res
}

// Simulate runs (or compiles inline and runs) a simulation. Fleet-aware
// routing uses the artifact's content hash — given directly, or computed
// from the inline loop exactly as the server would — so the simulation
// lands on a node that already holds (or owns) the artifact.
func (c *Client) Simulate(ctx context.Context, req *wire.SimulateRequest) (*wire.SimulateResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hash := req.Hash
	if hash == "" && c.ring != nil && len(req.Loop) > 0 {
		creq := &wire.CompileRequest{Version: wire.Version, Loop: req.Loop, Options: req.Options}
		if h, herr := creq.Hash(); herr == nil {
			hash = h
		}
	}
	out := new(wire.SimulateResponse)
	if err := c.doOn(ctx, http.MethodPost, "/v2/simulate", body, c.cfg.RequestTimeout, out, c.targetsFor(hash), false); err != nil {
		return nil, err
	}
	return out, nil
}

// Trace fetches the decision trace of a cached artifact. The events are
// returned in their serialized form (an array of kinded decision-event
// objects), whichever layer — memory, disk, or a peer's fill — the
// server produced them from.
func (c *Client) Trace(ctx context.Context, hash string) (*wire.TraceRawResponse, error) {
	out := new(wire.TraceRawResponse)
	if err := c.doOn(ctx, http.MethodGet, "/v2/artifacts/"+hash+"/trace", nil, c.cfg.RequestTimeout, out, c.targetsFor(hash), false); err != nil {
		return nil, err
	}
	return out, nil
}

// Artifact fetches the complete transfer envelope of a cached artifact —
// canonical request, compile response, trace and verification metadata —
// verifying its content-address integrity before returning it. It is the
// same endpoint peers use for cache-fill.
func (c *Client) Artifact(ctx context.Context, hash string) (*wire.ArtifactResponse, error) {
	out := new(wire.ArtifactResponse)
	// A binary Accept on a GET needs no 415 fallback: servers that
	// predate the format ignore the header and answer JSON, and
	// decodeBody follows the response's Content-Type either way.
	if err := c.doOn(ctx, http.MethodGet, "/v2/artifacts/"+hash, nil, c.cfg.RequestTimeout, out, c.targetsFor(hash), c.useBinary()); err != nil {
		return nil, err
	}
	if out.Hash != hash {
		return nil, fmt.Errorf("ltspclient: server returned artifact %s for request %s", out.Hash, hash)
	}
	if err := out.Normalize(); err != nil {
		return nil, err
	}
	if err := out.CheckIntegrity(); err != nil {
		return nil, err
	}
	return out, nil
}

// Provenance fetches an artifact's tamper-evidence document: its recent
// provenance-chain records, the latest recorded entry checksum, whether
// the serving node's store copy still matches it, and the node's chain
// anchors (head and latest Merkle batch root). Fleet-aware clients are
// routed to the hash's owning replica, the node whose chain most likely
// holds the compile record.
func (c *Client) Provenance(ctx context.Context, hash string) (*wire.ProvenanceResponse, error) {
	out := new(wire.ProvenanceResponse)
	if err := c.doOn(ctx, http.MethodGet, "/v2/provenance/"+hash, nil, c.cfg.RequestTimeout, out, c.targetsFor(hash), false); err != nil {
		return nil, err
	}
	if out.Hash != hash {
		return nil, fmt.Errorf("ltspclient: server returned provenance for %s, not %s", out.Hash, hash)
	}
	return out, nil
}

// Health reports the server's /healthz status ("ok" or "draining") and
// build version. Health does not retry: it is itself the probe.
func (c *Client) Health(ctx context.Context) (status, version string, err error) {
	var out struct {
		Status  string `json:"status"`
		Version string `json:"version"`
	}
	if err := c.once(ctx, http.MethodGet, c.base, "/healthz", nil, c.cfg.RequestTimeout, &out, false); err != nil {
		return "", "", err
	}
	return out.Status, out.Version, nil
}

// do runs the retry loop around once: send, classify, back off, resend.
func (c *Client) do(ctx context.Context, method, path string, body []byte, attemptTO time.Duration, out any) error {
	return c.doOn(ctx, method, path, body, attemptTO, out, []string{c.base}, false)
}

// doOn is do with an explicit failover list: attempt k goes to
// targets[k mod len(targets)], so retries rotate through the replica set
// before coming back to the primary. bin marks the body (and the
// preferred response encoding) as the binary wire format.
func (c *Client) doOn(ctx context.Context, method, path string, body []byte, attemptTO time.Duration, out any, targets []string, bin bool) error {
	budget := c.cfg.BackoffBudget
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
		}
		lastErr = c.once(ctx, method, targets[attempt%len(targets)], path, body, attemptTO, out, bin)
		if lastErr == nil {
			return nil
		}
		if ctx.Err() != nil {
			// The caller's own deadline is gone; whatever the attempt
			// returned, retrying is pointless.
			return lastErr
		}
		if attempt >= c.cfg.MaxRetries || !IsRetryable(lastErr) {
			return lastErr
		}
		sleep := c.backoff(attempt, lastErr)
		if sleep > budget {
			return lastErr // budget exhausted: surface the last failure
		}
		budget -= sleep
		c.sleptNs.Add(int64(sleep))
		tr, parent := telemetry.FromContext(ctx)
		bspan := tr.Start("backoff", parent)
		select {
		case <-time.After(sleep):
		case <-ctx.Done():
			bspan.End()
			return lastErr
		}
		bspan.End()
	}
}

// backoff computes the sleep before retry number attempt (0-based):
// full-jittered exponential, floored at the server's Retry-After hint.
func (c *Client) backoff(attempt int, err error) time.Duration {
	max := c.cfg.BackoffBase << attempt
	if max > c.cfg.BackoffMax || max <= 0 {
		max = c.cfg.BackoffMax
	}
	c.mu.Lock()
	sleep := time.Duration(c.rng.Int63n(int64(max)) + 1)
	c.mu.Unlock()
	var ae *APIError
	if errors.As(err, &ae) && ae.RetryAfter > sleep {
		sleep = ae.RetryAfter
	}
	return sleep
}

// once sends a single HTTP attempt under its own timeout, propagating
// the caller's remaining deadline budget in the X-Request-Deadline-Ms
// header and decoding either the success body into out or the error
// envelope into an *APIError. When the caller's context carries a trace
// (WithTrace), the attempt records a client-side span and forwards the
// trace headers, so the server's spans stitch under this attempt.
func (c *Client) once(ctx context.Context, method, base, path string, body []byte, attemptTO time.Duration, out any, bin bool) error {
	c.attempts.Add(1)
	actx, cancel := context.WithTimeout(ctx, attemptTO)
	defer cancel()

	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		if bin {
			req.Header.Set("Content-Type", binary.ContentType)
		} else {
			req.Header.Set("Content-Type", "application/json")
		}
	}
	if bin {
		req.Header.Set("Accept", binary.ContentType)
	}
	if deadline, ok := actx.Deadline(); ok {
		if ms := time.Until(deadline).Milliseconds(); ms > 0 {
			req.Header.Set(wire.DeadlineHeader, strconv.FormatInt(ms, 10))
		}
	}
	tr, parent := telemetry.FromContext(ctx)
	span := tr.Start("attempt", parent)
	defer span.End()
	span.SetAttr("target", base)
	span.SetAttr("path", path)
	if tr.On() {
		req.Header.Set(wire.TraceHeader, tr.ID())
		if id := span.ID(); id != "" {
			req.Header.Set(wire.ParentSpanHeader, id)
		}
	}

	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		span.SetAttr("outcome", "transport_error")
		return err
	}
	defer resp.Body.Close()
	span.SetAttr("status", strconv.Itoa(resp.StatusCode))
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return apiError(resp, data)
	}
	if out != nil {
		if err := decodeBody(path, resp.Header.Get("Content-Type"), data, out); err != nil {
			return err
		}
	}
	return nil
}

// decodeBody unpacks a 2xx body into out by the server's declared
// Content-Type: a binary frame through the wire codec for the response
// types that have one, everything else as JSON. (Error envelopes are
// always JSON and never reach here.)
func decodeBody(path, contentType string, data []byte, out any) error {
	if strings.HasPrefix(contentType, binary.ContentType) {
		var err error
		switch v := out.(type) {
		case *wire.CompileResponse:
			var r *wire.CompileResponse
			if r, err = binary.DecodeCompileResponse(data); err == nil {
				*v = *r
			}
		case *wire.CompileBatchResponse:
			var r *wire.CompileBatchResponse
			if r, err = binary.DecodeCompileBatchResponse(data); err == nil {
				*v = *r
			}
		case *wire.ArtifactResponse:
			var r *wire.ArtifactResponse
			if r, err = binary.DecodeArtifact(data); err == nil {
				*v = *r
			}
		default:
			err = fmt.Errorf("no binary decoder for %T", out)
		}
		if err != nil {
			return fmt.Errorf("ltspclient: decoding %s response: %w", path, err)
		}
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("ltspclient: decoding %s response: %w", path, err)
	}
	return nil
}

// apiError decodes a non-2xx response into an *APIError. A body that is
// not the v2 envelope (a proxy's HTML error page, a truncated response)
// degrades to code "internal" with retryability inferred from the
// status, so the retry loop still behaves sensibly.
func apiError(resp *http.Response, body []byte) error {
	ae := &APIError{Status: resp.StatusCode}
	var env wire.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err == nil && env.Error.Code != "" {
		ae.Code = env.Error.Code
		ae.Message = env.Error.Message
		ae.Retryable = env.Error.Retryable
	} else {
		ae.Code = wire.CodeInternal
		ae.Message = strings.TrimSpace(string(body))
		ae.Retryable = resp.StatusCode == http.StatusServiceUnavailable ||
			resp.StatusCode == http.StatusGatewayTimeout ||
			resp.StatusCode >= 500
	}
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
			ae.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return ae
}

// hedge runs the hedged compile: a first leg immediately, a second
// identical one HedgeDelay later, first answer wins and the loser is
// canceled. In fleet-aware mode each leg starts on a different replica
// (leg n rotates targets by n), so a hedge escapes a slow node rather
// than re-queueing behind it. Errors don't win — a leg that fails simply
// leaves the race to the other; only when both legs have failed does
// hedge return the first leg's error.
func (c *Client) hedge(ctx context.Context, path string, body []byte, out *wire.CompileResponse, targets []string, bin bool) error {
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()

	tr, parent := telemetry.FromContext(ctx)
	type result struct {
		resp *wire.CompileResponse
		err  error
		leg  int
	}
	results := make(chan result, 2)
	leg := func(n int) {
		rotated := append(append([]string{}, targets[n%len(targets):]...), targets[:n%len(targets)]...)
		lspan := tr.Start("hedge_leg", parent)
		lspan.SetAttr("leg", strconv.Itoa(n))
		lspan.SetAttr("target", rotated[0])
		v := new(wire.CompileResponse)
		err := c.doOn(telemetry.WithSpan(hctx, tr, lspan), http.MethodPost, path, body, c.cfg.RequestTimeout, v, rotated, bin)
		if err == nil {
			lspan.SetAttr("outcome", "ok")
		} else {
			lspan.SetAttr("outcome", "error")
		}
		lspan.End()
		results <- result{v, err, n}
	}

	go leg(0)
	timer := time.NewTimer(c.cfg.HedgeDelay)
	defer timer.Stop()

	launched := 1
	var firstErr error
	for {
		select {
		case <-timer.C:
			if launched == 1 {
				launched = 2
				c.hedges.Add(1)
				go leg(1)
			}
		case r := <-results:
			if r.err == nil {
				if r.leg == 1 {
					c.hedgeWins.Add(1)
				}
				*out = *r.resp
				return nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			launched--
			if launched == 0 {
				// Every launched leg failed. If the hedge never fired
				// (first leg failed fast), don't wait for the timer.
				return firstErr
			}
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}
