package ltspclient

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"ltsp/internal/telemetry"
	"ltsp/internal/wire"
)

// TestClientSpansAndPropagation: a call under a telemetry context
// records attempt spans, forwards the trace headers on every attempt,
// and wraps retry sleeps in backoff spans.
func TestClientSpansAndPropagation(t *testing.T) {
	var calls atomic.Int64
	var gotTrace, gotParent atomic.Value
	client, _ := newClient(t, func(w http.ResponseWriter, r *http.Request) {
		gotTrace.Store(r.Header.Get(wire.TraceHeader))
		gotParent.Store(r.Header.Get(wire.ParentSpanHeader))
		if calls.Add(1) == 1 {
			writeEnvelope(w, http.StatusServiceUnavailable, wire.CodeOverloaded)
			return
		}
		okCompile(w)
	}, nil)

	tr := telemetry.New("client0000trace1")
	ctx := telemetry.WithSpan(context.Background(), tr, nil)
	if _, err := client.Compile(ctx, &wire.CompileRequest{Version: wire.Version}); err != nil {
		t.Fatal(err)
	}

	if got := gotTrace.Load(); got != tr.ID() {
		t.Errorf("server saw %s = %v, want %q", wire.TraceHeader, got, tr.ID())
	}
	spans := tr.Snapshot()
	var attempts, backoffs int
	var lastAttemptID string
	for _, s := range spans {
		switch s.Name {
		case "attempt":
			attempts++
			lastAttemptID = s.ID
			if s.Attrs["target"] == "" || s.Attrs["path"] != "/v2/compile" {
				t.Errorf("attempt attrs = %v", s.Attrs)
			}
		case "backoff":
			backoffs++
		}
		if s.DurNs <= 0 {
			t.Errorf("span %s still open", s.Name)
		}
	}
	if attempts != 2 {
		t.Errorf("recorded %d attempt spans, want 2 (one retry)", attempts)
	}
	if backoffs != 1 {
		t.Errorf("recorded %d backoff spans, want 1", backoffs)
	}
	// The server hop was parented under the (final) client attempt span.
	if got := gotParent.Load(); got != lastAttemptID {
		t.Errorf("server saw %s = %v, want final attempt span %q", wire.ParentSpanHeader, got, lastAttemptID)
	}
	// Attempt outcomes: first attempt got a 503 status, second a 200.
	var statuses []string
	for _, s := range spans {
		if s.Name == "attempt" {
			statuses = append(statuses, s.Attrs["status"])
		}
	}
	if len(statuses) != 2 || statuses[0] != "503" || statuses[1] != "200" {
		t.Errorf("attempt statuses = %v, want [503 200]", statuses)
	}
}

// TestUntracedClientSendsNoHeaders: without a telemetry context no trace
// headers leak and no spans are recorded anywhere.
func TestUntracedClientSendsNoHeaders(t *testing.T) {
	var gotTrace atomic.Value
	client, _ := newClient(t, func(w http.ResponseWriter, r *http.Request) {
		gotTrace.Store(r.Header.Get(wire.TraceHeader))
		okCompile(w)
	}, nil)
	if _, err := client.Compile(context.Background(), &wire.CompileRequest{Version: wire.Version}); err != nil {
		t.Fatal(err)
	}
	if got := gotTrace.Load(); got != "" {
		t.Errorf("untraced call sent %s = %v", wire.TraceHeader, got)
	}
}

// TestRequestTraceFetch: RequestTrace decodes the server's span
// timeline; a missing trace surfaces as the ErrNotFound sentinel.
func TestRequestTraceFetch(t *testing.T) {
	client, _ := newClient(t, func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v2/requests/feedface00000001" {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(&wire.RequestTraceResponse{
				TraceID: "feedface00000001",
				Name:    "POST /v2/compile",
				Status:  200,
				Spans: []wire.SpanJSON{
					{ID: "a.1", Name: "server POST /v2/compile"},
					{ID: "a.2", Parent: "a.1", Name: "compile", Attrs: map[string]string{"outcome": "pipelined"}},
				},
			})
			return
		}
		writeEnvelope(w, http.StatusNotFound, wire.CodeNotFound)
	}, nil)

	got, err := client.RequestTrace(context.Background(), "feedface00000001")
	if err != nil {
		t.Fatal(err)
	}
	if got.TraceID != "feedface00000001" || len(got.Spans) != 2 {
		t.Fatalf("trace = %+v", got)
	}
	if got.Spans[1].Attrs["outcome"] != "pipelined" {
		t.Errorf("span attrs lost in decode: %+v", got.Spans[1])
	}

	if _, err := client.RequestTrace(context.Background(), "absent0000000001"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing trace error = %v, want ErrNotFound", err)
	}
}

// TestHedgeLegSpans: a hedged compile records one hedge_leg span per
// launched leg, and the winning leg is marked ok.
func TestHedgeLegSpans(t *testing.T) {
	var calls atomic.Int64
	client, _ := newClient(t, func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			time.Sleep(150 * time.Millisecond) // first leg stalls; the hedge wins
		}
		okCompile(w)
	}, func(cfg *Config) {
		cfg.HedgeDelay = 2 * time.Millisecond
	})

	tr := telemetry.New("client0000hedge1")
	ctx := telemetry.WithSpan(context.Background(), tr, nil)
	if _, err := client.Compile(ctx, &wire.CompileRequest{Version: wire.Version}); err != nil {
		t.Fatal(err)
	}

	var legs, winners int
	for _, s := range tr.Snapshot() {
		if s.Name != "hedge_leg" {
			continue
		}
		legs++
		if s.Attrs["leg"] == "" || s.Attrs["target"] == "" {
			t.Errorf("hedge_leg attrs = %v", s.Attrs)
		}
		if s.Attrs["outcome"] == "ok" {
			winners++
		}
	}
	if legs != 2 {
		t.Errorf("recorded %d hedge_leg spans, want 2", legs)
	}
	if winners < 1 {
		t.Error("no hedge leg marked ok")
	}
}
