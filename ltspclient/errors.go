package ltspclient

import (
	"context"
	"errors"
	"fmt"
	"time"

	"ltsp/internal/wire"
)

// APIError is a non-2xx ltspd response decoded from the v2 error envelope
// {"error":{"code","message","retryable"}}. Match it structurally with
// errors.As, or match a specific code with errors.Is against one of the
// Err* sentinels:
//
//	if errors.Is(err, ltspclient.ErrOverloaded) { ... back off ... }
type APIError struct {
	// Status is the HTTP status code of the response.
	Status int
	// Code is the machine-readable envelope code ("overloaded",
	// "deadline_exceeded", "invalid_request", ...).
	Code string
	// Message is the human-readable envelope message.
	Message string
	// Retryable reports whether the server says resubmitting the
	// identical request may succeed. The client's retry loop obeys it.
	Retryable bool
	// RetryAfter is the server's Retry-After hint (zero when absent).
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("ltspd: %s (code %s, http %d)", e.Message, e.Code, e.Status)
}

// Is matches another *APIError by code alone, so the Err* sentinels work
// with errors.Is regardless of status, message, or Retry-After.
func (e *APIError) Is(target error) bool {
	var t *APIError
	if !errors.As(target, &t) {
		return false
	}
	return t.Code == e.Code
}

// Sentinel errors for errors.Is matching, one per envelope code.
var (
	ErrInvalidRequest     = &APIError{Code: wire.CodeInvalidRequest}
	ErrUnsupportedVersion = &APIError{Code: wire.CodeUnsupportedVersion}
	ErrNotFound           = &APIError{Code: wire.CodeNotFound}
	ErrTooLarge           = &APIError{Code: wire.CodeTooLarge}
	ErrDeadlineExceeded   = &APIError{Code: wire.CodeDeadlineExceeded}
	ErrOverloaded         = &APIError{Code: wire.CodeOverloaded}
	ErrDraining           = &APIError{Code: wire.CodeDraining}
	ErrInternal           = &APIError{Code: wire.CodeInternal}
	ErrInjected           = &APIError{Code: wire.CodeInjected}
)

// IsRetryable reports whether err describes a transient failure worth
// resubmitting: a retryable APIError, a transport error, or a
// client-side timeout of one attempt (but not of the caller's own
// context — the do loop never retries once ctx is done).
func IsRetryable(err error) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Retryable
	}
	// Transport-level failures (connection reset, EOF mid-body) are
	// retryable: the request may not have reached a healthy worker.
	return err != nil && !errors.Is(err, context.Canceled)
}
