package ltsp

// The benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation. Each benchmark regenerates its experiment and
// reports the headline quantities as custom metrics so that
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. The printed metric names carry the
// paper's reported value for side-by-side comparison; see EXPERIMENTS.md
// for the full tables.

import (
	"testing"

	"ltsp/internal/experiments"
)

// BenchmarkFig5StallReduction validates the stall-reduction law (paper
// Equ. 2 / Fig. 5): the simulated stall reduction for clustered
// non-critical loads must match 100*(1-(1-c)/k). The reported metric is
// the maximum absolute deviation between simulation and formula in
// percentage points.
func BenchmarkFig5StallReduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RunFig5Validation()
		if err != nil {
			b.Fatal(err)
		}
		maxDev := 0.0
		for _, p := range pts {
			d := p.Measured - p.Predicted
			if d < 0 {
				d = -d
			}
			if d > maxDev {
				maxDev = d
			}
		}
		b.ReportMetric(maxDev, "max-deviation-pp")
	}
}

// BenchmarkFig7Headroom regenerates the headroom experiment (all
// non-critical loads at the typical L3 latency, PGO trip counts, five
// trip-count thresholds). Paper geomeans: CPU2006 +0.5/+1.3/+2.4/+2.3/
// +2.1 %, CPU2000 -0.7/+0.8/+0.6/+0.6/+0.3 %.
func BenchmarkFig7Headroom(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig7()
		if err != nil {
			b.Fatal(err)
		}
		for ti, n := range experiments.Fig7Thresholds {
			b.ReportMetric(r.CPU2006.Geomean[ti], fmtMetric("cpu2006-n", int(n)))
			b.ReportMetric(r.CPU2000.Geomean[ti], fmtMetric("cpu2000-n", int(n)))
		}
		b.ReportMetric(r.PrefetchOffGain, "prefetch-off-%")
	}
}

// BenchmarkFig8PrefetcherHints regenerates the Fig. 8 experiment
// (all-FP-L2 hints and HLO-directed hints, PGO, n=32). Paper geomeans:
// CPU2006 +1.1/+2.0 %, CPU2000 +0.6/+1.3 %.
func BenchmarkFig8PrefetcherHints(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig8()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.CPU2006.Geomean[0], "cpu2006-fp-l2-%")
		b.ReportMetric(r.CPU2006.Geomean[1], "cpu2006-hlo-%")
		b.ReportMetric(r.CPU2000.Geomean[0], "cpu2000-fp-l2-%")
		b.ReportMetric(r.CPU2000.Geomean[1], "cpu2000-hlo-%")
	}
}

// BenchmarkFig9NoPGO regenerates the Fig. 9 experiment (static trip-count
// estimates, CPU2006). Paper geomeans: all-L3 -0.7 %, HLO +2.2 %.
func BenchmarkFig9NoPGO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig9()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.CPU2006.Geomean[0], "all-l3-%")
		b.ReportMetric(r.CPU2006.Geomean[1], "hlo-%")
	}
}

// BenchmarkFig10CycleAccounting regenerates the cycle-accounting
// comparison. Paper: BE_EXE_BUBBLE -12 %, BE_L1D_FPU_BUBBLE +8 %,
// BE_RSE_BUBBLE +14 %, unstalled +1.2 %.
func BenchmarkFig10CycleAccounting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig10()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ExeChange, "exe-bubble-%")
		b.ReportMetric(r.L1DFPUChange, "l1d-fpu-bubble-%")
		b.ReportMetric(r.RSEChange, "rse-bubble-%")
		b.ReportMetric(r.UnstalledChange, "unstalled-%")
	}
}

// BenchmarkMCFCaseStudy regenerates the Sec. 4.4 case study: the
// refresh_potential pointer chase at average trip 2.3. Paper: clustering
// k = 2, +40 % loop speedup.
func BenchmarkMCFCaseStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunCaseStudy()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.SpeedupPct, "loop-speedup-%")
		minK := 1 << 30
		for _, k := range r.ClusterK {
			if k < minK {
				minK = k
			}
		}
		b.ReportMetric(float64(minK), "min-cluster-k")
	}
}

// BenchmarkRegisterStats regenerates the Sec. 4.5 register statistics.
// Paper: GR +14 %, FR +20 %, PR +35 %, all under one fifth of the files.
func BenchmarkRegisterStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunRegStats()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.GRChange, "gr-%")
		b.ReportMetric(r.FRChange, "fr-%")
		b.ReportMetric(r.PRChange, "pr-%")
	}
}

// BenchmarkCompileTime regenerates the Sec. 3.3 compile-time measurement.
// Paper: ~+0.5 % whole-compiler time, "in the noise range".
func BenchmarkCompileTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunCompileTime()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.EstCompileTimeIncreasePct, "compile-time-%")
	}
}

// BenchmarkVersioning runs the trip-count versioning extension (the
// paper's Sec. 6 outlook): two kernels dispatched on the actual trip
// count, repairing the static-threshold failure modes.
func BenchmarkVersioning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunVersioning()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.CPU2006NoPGO.Geomean[0], "static-n32-%")
		b.ReportMetric(r.CPU2006NoPGO.Geomean[1], "versioned-%")
	}
}

// BenchmarkMissSampling runs the dynamic cache-miss sampling extension
// (the other Sec. 6 outlook item): hints from observed latencies.
func BenchmarkMissSampling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunMissSampling()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.CPU2006.Geomean[0], "static-heuristics-%")
		b.ReportMetric(r.CPU2006.Geomean[1], "sampled-hints-%")
	}
}

// BenchmarkAblationOzQ sweeps the OzQ capacity (design-space question from
// the paper's conclusion: "the benefit could be much higher if the queuing
// capacities in the cache hierarchy were increased"). Reports the HLO gain
// at the smallest and largest capacity.
func BenchmarkAblationOzQ(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RunOzQAblation()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[0].Gain, "gain-at-min-capacity-%")
		b.ReportMetric(pts[len(pts)-1].Gain, "gain-at-max-capacity-%")
	}
}

// BenchmarkAblationRotRegs sweeps the rotating-register supply (the paper
// credits Itanium's 96+96 rotating registers for making aggressive latency
// increases affordable).
func BenchmarkAblationRotRegs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RunRotRegAblation()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[0].Gain, "gain-at-12-regs-%")
		b.ReportMetric(pts[len(pts)-1].Gain, "gain-at-96-regs-%")
		b.ReportMetric(float64(pts[0].Reduced), "fallbacks-at-12-regs")
	}
}

// BenchmarkAblationRotVsUnroll compares rotating-register codegen against
// modulo-variable-expansion unrolling (the paper's related-work claim).
// Reports the largest unroll factor required.
func BenchmarkAblationRotVsUnroll(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunRotVsUnroll()
		if err != nil {
			b.Fatal(err)
		}
		maxU := 0
		for _, r := range rows {
			if r.Unroll > maxU {
				maxU = r.Unroll
			}
		}
		b.ReportMetric(float64(maxU), "max-unroll-factor")
	}
}

// BenchmarkCompileLoop measures raw compiler throughput on the running
// example (not a paper table; a library-health metric).
func BenchmarkCompileLoop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		l, _, _ := buildExample(HintL3)
		if _, err := Compile(l, Options{Mode: ModeNone, Prefetch: true, LatencyTolerant: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateKernel measures simulator throughput (cycles simulated
// per wall-clock second) on the running example.
func BenchmarkSimulateKernel(b *testing.B) {
	l, src, _ := buildExample(HintL2)
	c, err := Compile(l, Options{Mode: ModeHLO, Prefetch: true, LatencyTolerant: true})
	if err != nil {
		b.Fatal(err)
	}
	mem := NewMemory()
	for i := int64(0); i < 4096; i++ {
		mem.Store(src+4*i, 4, i)
	}
	runner := NewRunner(nil)
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		r, err := runner.Run(c.Program, 4096, mem)
		if err != nil {
			b.Fatal(err)
		}
		cycles += r.Cycles
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "cycles/run")
}

func fmtMetric(prefix string, n int) string {
	digits := ""
	if n == 0 {
		digits = "0"
	}
	for n > 0 {
		digits = string(rune('0'+n%10)) + digits
		n /= 10
	}
	return prefix + digits + "-%"
}
