package sim

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"ltsp/internal/core"
	"ltsp/internal/interp"
	"ltsp/internal/ir"
	"ltsp/internal/obs"
)

// fig5ValidationLoop rebuilds the Fig.-5 validation loop (one strided load
// per cache line feeding a store into a cache-hot cell), the subject of
// the observed-clustering-factor acceptance check.
func fig5ValidationLoop() *ir.Loop {
	l := ir.NewLoop("fig5")
	b, c, v := l.NewGR(), l.NewGR(), l.NewGR()
	ld := ir.Ld(v, b, 4, 128)
	ld.Mem.Stride, ld.Mem.StrideBytes = ir.StrideConst, 128
	l.Append(ld)
	l.Append(ir.St(c, v, 4, 0))
	l.Init(b, 0x0100_0000)
	l.Init(c, 0x0900_0000)
	return l
}

func compileFig5(t *testing.T, d int) *core.Compiled {
	t.Helper()
	opts := core.Options{}
	if d > 0 {
		opts.LatencyTolerant = true
		opts.ForceLoadLatency = d + 1 // base integer load latency is 1
	}
	c, err := core.Pipeline(fig5ValidationLoop(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestObservedClusteringFactor checks Equ. 3 end to end: schedule the
// validation loop with additional latency d = (k-1)*II, stream it cold so
// every load misses, and verify the per-site stall table's observed
// clustering factor (misses per stall episode) matches k = d/II + 1.
func TestObservedClusteringFactor(t *testing.T) {
	const trip = 4000
	base := compileFig5(t, 0)
	baseII := base.FinalII

	for _, k := range []int{1, 2, 4, 8} {
		d := (k - 1) * baseII
		c := compileFig5(t, d)
		if c.FinalII != baseII {
			t.Fatalf("k=%d: II changed %d -> %d", k, baseII, c.FinalII)
		}
		runner := NewRunner(DefaultConfig())
		res, err := runner.Run(c.Program, trip, interp.NewMemory())
		if err != nil {
			t.Fatal(err)
		}
		sites := res.SiteStalls()
		if len(sites) == 0 {
			t.Fatalf("k=%d: empty stall table", k)
		}
		// The load is body instruction 0; it must top the table.
		s := sites[0]
		if s.ID != 0 {
			t.Fatalf("k=%d: heaviest site = %d, want load site 0", k, s.ID)
		}
		if s.Misses < trip/2 {
			t.Fatalf("k=%d: only %d misses for %d cold strided loads", k, s.Misses, trip)
		}
		if s.StallEvents == 0 {
			t.Fatalf("k=%d: no stall episodes attributed", k)
		}
		if math.Abs(s.ObservedK-float64(k)) > 0.25*float64(k) {
			t.Errorf("k=%d: observed clustering factor %.2f, want ~%d (misses %d, episodes %d)",
				k, s.ObservedK, k, s.Misses, s.StallEvents)
		}
	}
}

// TestStallAttributionAccountsExeBubble checks that attributed stall
// cycles are consistent with the aggregate ExeBubble accounting.
func TestStallAttributionAccountsExeBubble(t *testing.T) {
	c := compileFig5(t, 0)
	runner := NewRunner(DefaultConfig())
	res, err := runner.Run(c.Program, 1000, interp.NewMemory())
	if err != nil {
		t.Fatal(err)
	}
	var attributed int64
	for _, n := range res.LoadSiteStalls {
		attributed += n
	}
	if attributed == 0 {
		t.Fatal("no stall cycles attributed")
	}
	if attributed > res.Acct.ExeBubble {
		t.Fatalf("attributed %d > ExeBubble %d", attributed, res.Acct.ExeBubble)
	}
	// The single-load loop's data stalls are all caused by that load.
	if frac := float64(attributed) / float64(res.Acct.ExeBubble); frac < 0.95 {
		t.Errorf("only %.0f%% of ExeBubble attributed to load sites", 100*frac)
	}
}

// TestTimelineExport checks the catapult exporter: events for issued
// instructions and stall intervals, all in the chrome://tracing schema.
func TestTimelineExport(t *testing.T) {
	c := compileFig5(t, 0)
	cfg := DefaultConfig()
	tl := obs.NewTimeline(0)
	cfg.Timeline = tl
	runner := NewRunner(cfg)
	res, err := runner.Run(c.Program, 64, interp.NewMemory())
	if err != nil {
		t.Fatal(err)
	}
	if tl.Len() == 0 {
		t.Fatal("timeline collected nothing")
	}

	var buf bytes.Buffer
	if err := tl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []struct {
		Name string `json:"name"`
		Ph   string `json:"ph"`
		TS   *int64 `json:"ts"`
		Dur  *int64 `json:"dur"`
		PID  *int   `json:"pid"`
		TID  *int   `json:"tid"`
	}
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("timeline is not valid catapult JSON: %v", err)
	}
	stalls, instrs := 0, 0
	for _, e := range evs {
		if e.Name == "" || e.Ph != "X" || e.TS == nil || e.Dur == nil || e.PID == nil || e.TID == nil {
			t.Fatalf("event missing required catapult fields: %+v", e)
		}
		if *e.TID < TIDLane0 {
			stalls++
		} else {
			instrs++
		}
	}
	if instrs == 0 {
		t.Error("no instruction events in the timeline")
	}
	if stalls == 0 && res.Acct.ExeBubble > 0 {
		t.Error("loop stalled but the timeline has no stall intervals")
	}
}
