package sim

import "sort"

// SiteStall is the per-load-site row of the stall attribution table: how
// many ExeBubble/OzQ cycles were blamed on the site, its miss-level
// histogram, and the observed clustering factor.
type SiteStall struct {
	// ID is the body instruction ID of the load site.
	ID int
	// StallCycles is the ExeBubble time attributed to the site.
	StallCycles int64
	// StallEvents counts distinct stall episodes.
	StallEvents int64
	// OzQStallCycles is L1DFPUBubble time attributed to the site.
	OzQStallCycles int64
	// Loads is the total demand loads issued from the site; Levels breaks
	// them down by serving hierarchy level (1-3 caches, 4 memory).
	Loads  int64
	Levels [5]int64
	// Misses counts loads served beyond L1 (levels 2..4).
	Misses int64
	// AvgLatency is the mean issue-to-data latency in cycles.
	AvgLatency float64
	// ObservedK is the realized clustering factor Misses/StallEvents: one
	// stall episode covers the whole cluster, shadowing its other k-1
	// misses, so this estimates k = d/II + 1 (paper Equ. 3). Zero when the
	// site never stalled the pipeline.
	ObservedK float64
}

// SiteStalls builds the per-site stall attribution table from the run's
// maps, sorted by attributed stall cycles (heaviest first), ties by ID.
func (res *Result) SiteStalls() []SiteStall {
	ids := map[int]bool{}
	for id := range res.LoadSiteLevels {
		ids[id] = true
	}
	for id := range res.LoadSiteStalls {
		ids[id] = true
	}
	for id := range res.LoadSiteOzQStalls {
		ids[id] = true
	}
	out := make([]SiteStall, 0, len(ids))
	for id := range ids {
		s := SiteStall{
			ID:             id,
			StallCycles:    res.LoadSiteStalls[id],
			StallEvents:    res.LoadSiteStallEvents[id],
			OzQStallCycles: res.LoadSiteOzQStalls[id],
		}
		if lv := res.LoadSiteLevels[id]; lv != nil {
			s.Levels = *lv
			for _, n := range lv {
				s.Loads += n
			}
			s.Misses = lv[2] + lv[3] + lv[4]
		}
		if s.Loads > 0 {
			s.AvgLatency = float64(res.LoadSiteLatency[id]) / float64(s.Loads)
		}
		if s.StallEvents > 0 {
			s.ObservedK = float64(s.Misses) / float64(s.StallEvents)
		}
		out = append(out, s)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].StallCycles != out[b].StallCycles {
			return out[a].StallCycles > out[b].StallCycles
		}
		return out[a].ID < out[b].ID
	})
	return out
}
