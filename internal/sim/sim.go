// Package sim is the cycle-accurate timing simulator for compiled loop
// programs on the in-order EPIC target: issue groups stall as a unit on
// unavailable source registers (stall-on-use scoreboarding over the
// physical, rotation-renamed register files), memory requests that pass the
// L1 occupy the OzQ and stall the pipeline when it is full, and optional
// L2 bank conflicts add latency to same-cycle same-bank accesses.
//
// Every simulated cycle is accounted to exactly one of the six
// microarchitectural states of the paper's Fig. 10: unstalled execution,
// BE_EXE_BUBBLE (data stalls), BE_L1D_FPU_BUBBLE (OzQ-full stalls),
// BE_RSE_BUBBLE (register-stack engine traffic, synthesized from the
// loop's stacked-register footprint), BE_FLUSH_BUBBLE (loop-exit branch
// flush) and BACK_END_BUBBLE.FE (front-end refill at loop entry).
package sim

import (
	"fmt"
	"io"

	"ltsp/internal/cache"
	"ltsp/internal/interp"
	"ltsp/internal/ir"
	"ltsp/internal/machine"
	"ltsp/internal/obs"
)

// Config parameterizes a simulation.
type Config struct {
	// Model is the processor model (ports, latencies, OzQ capacity).
	Model *machine.Model
	// Cache is the hierarchy geometry.
	Cache cache.Config
	// BankConflicts enables the L2 bank-conflict model.
	BankConflicts bool
	// FEOverhead is charged once per loop execution at entry (front-end
	// refill after the branch into the loop).
	FEOverhead int
	// FlushOverhead is charged once per loop execution at exit (the final
	// mispredicted back edge flushes the in-order pipeline).
	FlushOverhead int
	// RSECyclesPerExec is charged once per loop execution as register
	// stack engine traffic; callers derive it from the loop's allocated
	// stacked registers (see experiments).
	RSECyclesPerExec int64
	// Trace, when non-nil, receives a line per issue group: the absolute
	// cycle, any stall with its cause, and the instructions issued. It is
	// a debugging aid; tracing long runs is expensive.
	Trace io.Writer
	// Timeline, when non-nil, collects a Chrome trace-event (catapult)
	// timeline: one complete event per issued instruction (tid = issue
	// lane) and one per stall interval (the reserved stall lanes), with
	// one simulated cycle mapped to one microsecond. See obs.Timeline.
	Timeline *obs.Timeline
}

// Timeline lanes (catapult tid values): stalls occupy the two reserved
// lanes so chrome://tracing shows them as their own rows above the issue
// lanes, which start at TIDLane0.
const (
	// TIDDataStall carries ExeBubble (stall-on-use) intervals.
	TIDDataStall = 0
	// TIDOzQStall carries L1DFPUBubble (OzQ-full) intervals.
	TIDOzQStall = 1
	// TIDLane0 is the first instruction issue lane.
	TIDLane0 = 2
)

// DefaultConfig returns a simulation configuration for the paper's target.
func DefaultConfig() Config {
	return Config{
		Model:         machine.Itanium2(),
		Cache:         cache.DefaultItanium2(),
		BankConflicts: true,
		FEOverhead:    6,
		FlushOverhead: 6,
	}
}

// Accounting decomposes total cycles into the Fig. 10 states.
type Accounting struct {
	Total     int64
	Unstalled int64
	// ExeBubble is BE_EXE_BUBBLE.ALL: stall-on-use data stalls.
	ExeBubble int64
	// L1DFPUBubble is BE_L1D_FPU_BUBBLE.ALL: OzQ-full stalls.
	L1DFPUBubble int64
	// RSEBubble is BE_RSE_BUBBLE.ALL.
	RSEBubble int64
	// FlushBubble is BE_FLUSH_BUBBLE.ALL.
	FlushBubble int64
	// FEBubble is BACK_END_BUBBLE.FE.
	FEBubble int64
}

// Add accumulates another accounting into a.
func (a *Accounting) Add(b Accounting) {
	a.Total += b.Total
	a.Unstalled += b.Unstalled
	a.ExeBubble += b.ExeBubble
	a.L1DFPUBubble += b.L1DFPUBubble
	a.RSEBubble += b.RSEBubble
	a.FlushBubble += b.FlushBubble
	a.FEBubble += b.FEBubble
}

// Bubbles returns the sum of all stall components.
func (a *Accounting) Bubbles() int64 {
	return a.ExeBubble + a.L1DFPUBubble + a.RSEBubble + a.FlushBubble + a.FEBubble
}

// Result reports one loop execution.
type Result struct {
	Cycles      int64
	Acct        Accounting
	KernelIters int64
	// Cache is a snapshot of hierarchy statistics deltas for this run.
	Cache cache.Stats
	// OzQFullStalls counts cycles lost to a full OzQ (== L1DFPUBubble).
	OzQFullStalls int64
	// OzQPeak is the maximum OzQ occupancy observed.
	OzQPeak int
	// BankConflictCount counts penalized same-cycle same-bank accesses.
	BankConflictCount int64
	// LoadsByLevel[l] counts demand loads served at hierarchy level l
	// (1-3 caches, 4 memory).
	LoadsByLevel [5]int64
	// LoadSiteLevels breaks LoadsByLevel down per load site (body
	// instruction ID) — the raw material for dynamic cache-miss sampling
	// (the paper's Sec. 6 outlook).
	LoadSiteLevels map[int]*[5]int64
	// LoadSiteLatency accumulates per load site the actual issue-to-data
	// latency in cycles (including waits on in-flight lines), alongside
	// the counts in LoadSiteLevels.
	LoadSiteLatency map[int]int64
	// LoadSiteStalls attributes ExeBubble cycles to the load site (body
	// instruction ID) whose unready result the stalled issue group was
	// waiting on — the per-PC stall table of the paper's Fig.-10 analysis.
	LoadSiteStalls map[int]int64
	// LoadSiteStallEvents counts distinct stall episodes per load site.
	// With clustering factor k, one episode shadows the k-1 misses issued
	// in its shadow, so misses/episodes estimates the realized k (Equ. 3).
	LoadSiteStallEvents map[int]int64
	// LoadSiteOzQStalls attributes L1DFPUBubble (OzQ-full) cycles to the
	// memory operation that had to wait for a queue slot.
	LoadSiteOzQStalls map[int]int64
	// State is the final architectural state (for correctness checks).
	State *interp.State
}

// Runner simulates programs against a persistent cache hierarchy, so that
// successive executions of a loop (trip-count distributions) see warm
// caches exactly as repeated invocations in a real program would.
type Runner struct {
	cfg  Config
	hier *cache.Hierarchy
	ozq  []int64 // completion times of in-flight requests
	// clock is the absolute cycle counter, persistent across Run calls so
	// that cache fill timestamps from earlier executions stay meaningful.
	clock int64
}

// NewRunner creates a runner with a cold hierarchy.
func NewRunner(cfg Config) *Runner {
	if cfg.Model == nil {
		cfg.Model = machine.Itanium2()
	}
	return &Runner{cfg: cfg, hier: cache.New(cfg.Cache)}
}

// Hierarchy exposes the runner's cache hierarchy (tests warm or inspect it).
func (r *Runner) Hierarchy() *cache.Hierarchy { return r.hier }

// DropCaches empties the hierarchy (keeping the global clock), modeling
// the eviction a loop's data suffers from the rest of the program between
// two invocations.
func (r *Runner) DropCaches() {
	st := r.hier.Stats
	r.hier = cache.New(r.cfg.Cache)
	r.hier.Stats = st
}

// Run simulates one execution of the program with the given trip count
// against mem (which may be shared across runs for warm data).
func (r *Runner) Run(p *interp.Program, trip int64, mem *interp.Memory) (*Result, error) {
	if trip < 1 {
		return nil, fmt.Errorf("sim: trip count %d < 1", trip)
	}
	st := interp.NewState()
	if mem != nil {
		st.Mem = mem
	}
	st.ApplySetup(p.Setup)
	st.LC = trip - 1
	st.DataRotation = !p.NoDataRotation
	res := &Result{State: st}
	statsBefore := r.hier.Stats

	var readyGR [interp.NumGR]int64
	var readyFR [interp.NumFR]int64
	var readyPR [interp.NumPR]int64
	// srcXX[i] is the load site (body instruction ID) whose in-flight
	// result register i holds, or -1 when the register's last producer was
	// not a load. The arrays drive the per-site stall attribution: a stall
	// is blamed on the site that produced the latest-ready source.
	var srcGR [interp.NumGR]int
	var srcFR [interp.NumFR]int
	var srcPR [interp.NumPR]int
	for i := range srcGR {
		srcGR[i] = -1
	}
	for i := range srcFR {
		srcFR[i] = -1
	}
	for i := range srcPR {
		srcPR[i] = -1
	}
	tl := r.cfg.Timeline

	start := r.clock
	t := start + int64(r.cfg.FEOverhead)
	res.Acct.FEBubble = int64(r.cfg.FEOverhead)
	r.ozq = r.ozq[:0]

	model := r.cfg.Model
	banks := model.L2Banks
	var bankOf map[int64]bool
	if r.cfg.BankConflicts && banks > 0 {
		bankOf = make(map[int64]bool, 8)
	}

	if p.Pipelined {
		st.EC = int64(p.Stages)
		st.PR[interp.RotPRLo] = true
	}

	runGroup := func(group []*ir.Instr) error {
		// Stall-on-use: the whole issue group waits for every source of
		// every enabled instruction (and for all qualifying predicates).
		// stallSite tracks the load that produced the latest-ready source,
		// so the whole stall episode is attributed to one load site.
		maxReady := t
		stallSite := -1
		for _, in := range group {
			if !in.Pred.IsNone() {
				idx := st.PhysIndex(in.Pred)
				if v := readyPR[idx]; v > maxReady {
					maxReady = v
					stallSite = srcPR[idx]
				}
			}
			if !st.PredOn(in) {
				continue
			}
			for _, u := range in.AllUses() {
				if u.IsNone() {
					continue
				}
				var v int64
				site := -1
				idx := st.PhysIndex(u)
				switch u.Class {
				case ir.ClassGR:
					v, site = readyGR[idx], srcGR[idx]
				case ir.ClassFR:
					v, site = readyFR[idx], srcFR[idx]
				case ir.ClassPR:
					v, site = readyPR[idx], srcPR[idx]
				}
				if v > maxReady {
					maxReady = v
					stallSite = site
				}
			}
		}
		if maxReady > t {
			d := maxReady - t
			res.Acct.ExeBubble += d
			if stallSite >= 0 {
				if res.LoadSiteStalls == nil {
					res.LoadSiteStalls = map[int]int64{}
					res.LoadSiteStallEvents = map[int]int64{}
				}
				res.LoadSiteStalls[stallSite] += d
				res.LoadSiteStallEvents[stallSite]++
			}
			if tl.On() {
				tl.Complete("stall(data)", t, d, 0, TIDDataStall,
					map[string]any{"site": stallSite})
			}
			if r.cfg.Trace != nil {
				fmt.Fprintf(r.cfg.Trace, "%8d  stall %d cycles (data)\n", t, d)
			}
			t = maxReady
		}
		if r.cfg.Trace != nil {
			for _, in := range group {
				state := "  "
				if !st.PredOn(in) {
					state = "--"
				}
				fmt.Fprintf(r.cfg.Trace, "%8d  %s %s\n", t, state, in)
			}
		}
		if tl.On() {
			for lane, in := range group {
				name := in.String()
				if !st.PredOn(in) {
					name = "-- " + name
				}
				tl.Complete(name, t, 1, 0, TIDLane0+lane, nil)
			}
		}

		// Record physical destination indices before execution (rotation
		// does not occur within a group, but the state's values change).
		type defSite struct {
			idx   int
			reg   ir.Reg
			instr *ir.Instr
		}
		var defs []defSite
		for _, in := range group {
			if !st.PredOn(in) {
				// cmp.unc still clears its destinations; they become ready
				// next cycle.
				switch in.Op {
				case ir.OpCmpEq, ir.OpCmpLt, ir.OpCmpEqI, ir.OpCmpLtI, ir.OpFCmpLt:
					for _, d := range in.Dsts {
						if !d.IsNone() {
							defs = append(defs, defSite{st.PhysIndex(d), d, nil})
						}
					}
				}
				continue
			}
			for _, d := range in.AllDefs() {
				if d.IsNone() {
					continue
				}
				defs = append(defs, defSite{st.PhysIndex(d), d, in})
			}
		}

		effs, err := st.Group(group)
		if err != nil {
			return err
		}

		if bankOf != nil {
			for k := range bankOf {
				delete(bankOf, k)
			}
		}
		// Memory requests: OzQ admission, cache access, bank conflicts.
		loadReady := map[*ir.Instr]int64{}
		for i, in := range group {
			eff := effs[i]
			if !eff.Executed || !eff.IsMem {
				continue
			}
			// Drain completed OzQ entries.
			r.drainOzQ(t)
			if len(r.ozq) >= model.OzQCapacity {
				wait := r.minOzQ()
				if wait > t {
					res.Acct.L1DFPUBubble += wait - t
					res.OzQFullStalls += wait - t
					if res.LoadSiteOzQStalls == nil {
						res.LoadSiteOzQStalls = map[int]int64{}
					}
					res.LoadSiteOzQStalls[in.ID] += wait - t
					if tl.On() {
						tl.Complete("stall(ozq)", t, wait-t, 0, TIDOzQStall,
							map[string]any{"site": in.ID})
					}
					t = wait
				}
				r.drainOzQ(t)
			}
			kind := cache.Load
			switch {
			case eff.IsStore:
				kind = cache.Store
			case eff.IsPrefetch:
				if in.Mem.Hint == ir.HintL2 {
					kind = cache.PrefetchL2
				} else {
					kind = cache.PrefetchL1
				}
			}
			cres := r.hier.Access(t, eff.Addr, eff.FP, kind)
			if eff.IsLoad {
				res.LoadsByLevel[cres.Level]++
				if res.LoadSiteLevels == nil {
					res.LoadSiteLevels = map[int]*[5]int64{}
					res.LoadSiteLatency = map[int]int64{}
				}
				site := res.LoadSiteLevels[in.ID]
				if site == nil {
					site = new([5]int64)
					res.LoadSiteLevels[in.ID] = site
				}
				site[cres.Level]++
				res.LoadSiteLatency[in.ID] += cres.ReadyAt - t
			}
			if bankOf != nil && cres.MissedL1 {
				bank := (eff.Addr >> 4) & int64(banks-1)
				if bankOf[bank] {
					cres.ReadyAt += int64(model.BankConflictPenalty)
					res.BankConflictCount++
				}
				bankOf[bank] = true
			}
			if cres.MissedL1 && !cres.Merged {
				r.ozq = append(r.ozq, cres.ReadyAt)
				if len(r.ozq) > res.OzQPeak {
					res.OzQPeak = len(r.ozq)
				}
			}
			if eff.IsLoad {
				loadReady[in] = cres.ReadyAt
			}
		}

		// Publish destination ready times and record which load (if any)
		// produced each register, for the stall attribution.
		for _, d := range defs {
			var ready int64
			site := -1
			switch {
			case d.instr == nil:
				ready = t + 1 // cleared compare destinations
			case d.instr.Op.IsLoad() && d.reg == d.instr.Dsts[0]:
				ready = loadReady[d.instr] // load data result
				site = d.instr.ID
			case d.instr.Op.IsMem():
				ready = t + 1 // post-incremented base
			default:
				ready = t + int64(model.Latency(d.instr.Op))
			}
			switch d.reg.Class {
			case ir.ClassGR:
				if d.idx != 0 {
					readyGR[d.idx] = ready
					srcGR[d.idx] = site
				}
			case ir.ClassFR:
				readyFR[d.idx] = ready
				srcFR[d.idx] = site
			case ir.ClassPR:
				readyPR[d.idx] = ready
				srcPR[d.idx] = site
			}
		}
		t++
		return nil
	}

	maxIters := trip + int64(p.Stages) + 4 // runaway cap for while loops
	switch {
	case p.Pipelined && !p.WhileQP.IsNone():
		st.EC = int64(p.Stages)
		for res.KernelIters < maxIters {
			for _, g := range p.Groups {
				if err := runGroup(g); err != nil {
					return nil, err
				}
			}
			res.KernelIters++
			if !st.Wtop(p.WhileQP) {
				break
			}
		}
	case p.Pipelined:
		rotEvery := len(p.Groups)
		if p.RotateEvery > 0 {
			rotEvery = p.RotateEvery
		}
	kernel:
		for {
			for c, g := range p.Groups {
				if err := runGroup(g); err != nil {
					return nil, err
				}
				if (c+1)%rotEvery == 0 {
					res.KernelIters++
					if !st.Ctop() {
						break kernel
					}
				}
			}
		}
	case !p.WhileQP.IsNone():
		for res.KernelIters < maxIters {
			for _, g := range p.Groups {
				if err := runGroup(g); err != nil {
					return nil, err
				}
			}
			res.KernelIters++
			if !st.PR[st.PhysIndex(p.WhileQP)] {
				break
			}
		}
	default:
		for {
			for _, g := range p.Groups {
				if err := runGroup(g); err != nil {
					return nil, err
				}
			}
			res.KernelIters++
			if !st.Cloop() {
				break
			}
		}
	}

	res.Acct.FlushBubble = int64(r.cfg.FlushOverhead)
	t += int64(r.cfg.FlushOverhead)
	res.Acct.RSEBubble = r.cfg.RSECyclesPerExec
	t += r.cfg.RSECyclesPerExec

	r.clock = t
	res.Cycles = t - start
	res.Acct.Total = res.Cycles
	res.Acct.Unstalled = res.Cycles - res.Acct.Bubbles()
	res.Cache = diffStats(statsBefore, r.hier.Stats)
	return res, nil
}

func (r *Runner) drainOzQ(now int64) {
	w := 0
	for _, c := range r.ozq {
		if c > now {
			r.ozq[w] = c
			w++
		}
	}
	r.ozq = r.ozq[:w]
}

func (r *Runner) minOzQ() int64 {
	min := r.ozq[0]
	for _, c := range r.ozq[1:] {
		if c < min {
			min = c
		}
	}
	return min
}

func diffStats(a, b cache.Stats) cache.Stats {
	return cache.Stats{
		Accesses:   b.Accesses - a.Accesses,
		HitsL1:     b.HitsL1 - a.HitsL1,
		HitsL2:     b.HitsL2 - a.HitsL2,
		HitsL3:     b.HitsL3 - a.HitsL3,
		Memory:     b.Memory - a.Memory,
		Merges:     b.Merges - a.Merges,
		Prefetches: b.Prefetches - a.Prefetches,
	}
}
