package sim

import (
	"bytes"
	"strings"
	"testing"

	"ltsp/internal/cache"
	"ltsp/internal/interp"
	"ltsp/internal/ir"
	"ltsp/internal/machine"
)

// plainConfig returns a configuration without the fixed entry/exit
// overheads, for exact cycle arithmetic in tests.
func plainConfig() Config {
	return Config{
		Model: machine.Itanium2(),
		Cache: cache.DefaultItanium2(),
	}
}

// seqProgram wraps a body of issue groups as a sequential program.
func seqProgram(setup []ir.RegInit, groups ...[]*ir.Instr) *interp.Program {
	return &interp.Program{Name: "t", Groups: groups, Setup: setup}
}

func TestUnstalledALUProgram(t *testing.T) {
	p := seqProgram(
		[]ir.RegInit{{Reg: ir.GR(4), Val: 0}},
		[]*ir.Instr{ir.AddI(ir.GR(4), ir.GR(4), 1)},
	)
	r, err := NewRunner(plainConfig()).Run(p, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles != 10 {
		t.Errorf("cycles = %d, want 10 (one group per iteration, no stalls)", r.Cycles)
	}
	if r.Acct.ExeBubble != 0 || r.Acct.Unstalled != 10 {
		t.Errorf("acct = %+v", r.Acct)
	}
	if r.State.ReadReg(ir.GR(4)) != 10 {
		t.Error("semantics wrong")
	}
}

func TestStallOnUse(t *testing.T) {
	// Load from cold memory in cycle 0, use in cycle 1: the use must
	// stall until the fill (memory latency 200).
	p := seqProgram(
		[]ir.RegInit{{Reg: ir.GR(4), Val: 0x10000}},
		[]*ir.Instr{ir.Ld(ir.GR(5), ir.GR(4), 8, 128)},
		[]*ir.Instr{ir.AddI(ir.GR(6), ir.GR(5), 1)},
	)
	r, err := NewRunner(plainConfig()).Run(p, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Acct.ExeBubble < 190 {
		t.Errorf("EXE bubble = %d, want ~199 (stall-on-use)", r.Acct.ExeBubble)
	}
	if r.LoadsByLevel[4] != 1 {
		t.Errorf("memory loads = %d", r.LoadsByLevel[4])
	}
}

func TestStallOnlyOnUseNotOnMiss(t *testing.T) {
	// A load whose result is never used must not stall the pipeline
	// (stall-on-use policy, paper Sec. 2).
	p := seqProgram(
		[]ir.RegInit{{Reg: ir.GR(4), Val: 0x10000}, {Reg: ir.GR(7), Val: 0}},
		[]*ir.Instr{ir.Ld(ir.GR(5), ir.GR(4), 8, 128)},
		[]*ir.Instr{ir.AddI(ir.GR(7), ir.GR(7), 1)},
	)
	r, err := NewRunner(plainConfig()).Run(p, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Acct.ExeBubble != 0 {
		t.Errorf("EXE bubble = %d, want 0 (no use, no stall)", r.Acct.ExeBubble)
	}
}

func TestPredicatedOffConsumerDoesNotStall(t *testing.T) {
	p := seqProgram(
		[]ir.RegInit{{Reg: ir.GR(4), Val: 0x10000}},
		[]*ir.Instr{ir.Ld(ir.GR(5), ir.GR(4), 8, 128)},
		// p6 is false: the consumer is off and must not wait for r5.
		[]*ir.Instr{ir.Predicated(ir.PR(6), ir.AddI(ir.GR(6), ir.GR(5), 1))},
	)
	r, err := NewRunner(plainConfig()).Run(p, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Acct.ExeBubble != 0 {
		t.Errorf("EXE bubble = %d, want 0", r.Acct.ExeBubble)
	}
}

func TestLatencyCoverageRemovesStall(t *testing.T) {
	// Same loop, L2-resident line: consumer right after the load stalls
	// ~4 cycles; consumer 6 cycles later does not.
	mk := func(gap int) *interp.Program {
		groups := [][]*ir.Instr{{ir.Ld(ir.GR(5), ir.GR(4), 8, 0)}}
		for i := 0; i < gap; i++ {
			groups = append(groups, []*ir.Instr{ir.AddI(ir.GR(7), ir.GR(7), 1)})
		}
		groups = append(groups, []*ir.Instr{ir.AddI(ir.GR(6), ir.GR(5), 1)})
		return seqProgram([]ir.RegInit{{Reg: ir.GR(4), Val: 0x10000}}, groups...)
	}
	runner := NewRunner(plainConfig())
	mem := interp.NewMemory()
	// Warm the line into L2 but not L1 (store allocates L2 only).
	warm := seqProgram([]ir.RegInit{{Reg: ir.GR(4), Val: 0x10000}},
		[]*ir.Instr{ir.St(ir.GR(4), ir.GR(0), 8, 0)})
	if _, err := runner.Run(warm, 1, mem); err != nil {
		t.Fatal(err)
	}

	rShort, err := runner.Run(mk(0), 1, mem)
	if err != nil {
		t.Fatal(err)
	}
	rLong, err := runner.Run(mk(6), 1, mem)
	if err != nil {
		t.Fatal(err)
	}
	if rShort.Acct.ExeBubble == 0 {
		t.Error("uncovered L2 hit did not stall")
	}
	if rLong.Acct.ExeBubble != 0 {
		t.Errorf("covered L2 hit still stalls %d cycles", rLong.Acct.ExeBubble)
	}
}

func TestOzQFullStalls(t *testing.T) {
	// Saturate the OzQ: more than 48 outstanding memory misses.
	cfg := plainConfig()
	var group []*ir.Instr
	var setup []ir.RegInit
	for i := 0; i < 4; i++ {
		base := ir.GR(4 + i)
		setup = append(setup, ir.RegInit{Reg: base, Val: int64(0x100000 + i*0x100000)})
		group = append(group, ir.Ld(ir.GR(40+i), base, 8, 128))
	}
	p := seqProgram(setup, group)
	r, err := NewRunner(cfg).Run(p, 40, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.OzQPeak < cfg.Model.OzQCapacity {
		t.Errorf("OzQ peak = %d, never reached capacity", r.OzQPeak)
	}
	if r.Acct.L1DFPUBubble == 0 {
		t.Error("no OzQ-full stalls despite saturation")
	}
	if r.OzQFullStalls != r.Acct.L1DFPUBubble {
		t.Error("OzQ stall accounting inconsistent")
	}
}

func TestFixedOverheadsAccounted(t *testing.T) {
	cfg := plainConfig()
	cfg.FEOverhead = 6
	cfg.FlushOverhead = 7
	cfg.RSECyclesPerExec = 9
	p := seqProgram(
		[]ir.RegInit{{Reg: ir.GR(4), Val: 0}},
		[]*ir.Instr{ir.AddI(ir.GR(4), ir.GR(4), 1)},
	)
	r, err := NewRunner(cfg).Run(p, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Acct.FEBubble != 6 || r.Acct.FlushBubble != 7 || r.Acct.RSEBubble != 9 {
		t.Errorf("overheads = %+v", r.Acct)
	}
	if r.Cycles != 10+6+7+9 {
		t.Errorf("cycles = %d", r.Cycles)
	}
	if got := r.Acct.Unstalled + r.Acct.Bubbles(); got != r.Acct.Total {
		t.Errorf("accounting does not sum: %d != %d", got, r.Acct.Total)
	}
}

func TestPersistentClockAcrossRuns(t *testing.T) {
	// A second run against a warm hierarchy must not stall on stale fill
	// timestamps (regression test for the absolute-clock bug).
	p := seqProgram(
		[]ir.RegInit{{Reg: ir.GR(4), Val: 0x10000}},
		[]*ir.Instr{ir.Ld(ir.GR(5), ir.GR(4), 8, 8)},
		[]*ir.Instr{ir.AddI(ir.GR(6), ir.GR(5), 1)},
	)
	runner := NewRunner(plainConfig())
	mem := interp.NewMemory()
	if _, err := runner.Run(p, 8, mem); err != nil {
		t.Fatal(err)
	}
	r2, err := runner.Run(p, 8, mem)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Acct.ExeBubble != 0 {
		t.Errorf("warm run stalls %d cycles (stale fill timestamps?)", r2.Acct.ExeBubble)
	}
}

func TestDropCaches(t *testing.T) {
	p := seqProgram(
		[]ir.RegInit{{Reg: ir.GR(4), Val: 0x10000}},
		[]*ir.Instr{ir.Ld(ir.GR(5), ir.GR(4), 8, 8)},
		[]*ir.Instr{ir.AddI(ir.GR(6), ir.GR(5), 1)},
	)
	runner := NewRunner(plainConfig())
	mem := interp.NewMemory()
	if _, err := runner.Run(p, 8, mem); err != nil {
		t.Fatal(err)
	}
	runner.DropCaches()
	r, err := runner.Run(p, 8, mem)
	if err != nil {
		t.Fatal(err)
	}
	if r.Acct.ExeBubble == 0 {
		t.Error("cold run after DropCaches did not miss")
	}
}

func TestBankConflictPenalty(t *testing.T) {
	cfg := plainConfig()
	cfg.BankConflicts = true
	// Two same-cycle loads mapping to the same L2 bank (same addr bits
	// 4..7), both missing L1.
	setup := []ir.RegInit{
		{Reg: ir.GR(4), Val: 0x100000},
		{Reg: ir.GR(5), Val: 0x200000}, // same bank: bits [7:4] equal
	}
	group := []*ir.Instr{
		ir.Ld(ir.GR(6), ir.GR(4), 8, 0),
		ir.Ld(ir.GR(7), ir.GR(5), 8, 0),
	}
	p := seqProgram(setup, group)
	r, err := NewRunner(cfg).Run(p, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.BankConflictCount != 1 {
		t.Errorf("bank conflicts = %d, want 1", r.BankConflictCount)
	}
	cfg.BankConflicts = false
	r2, err := NewRunner(cfg).Run(p, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r2.BankConflictCount != 0 {
		t.Error("bank conflicts counted while disabled")
	}
}

func TestPipelinedProgramKernelIterations(t *testing.T) {
	// A 2-stage pipelined kernel: trip 5 -> 6 kernel iterations.
	p := &interp.Program{
		Name:      "k",
		Pipelined: true,
		Stages:    2,
		Groups: [][]*ir.Instr{
			{ir.Predicated(ir.PR(16), ir.AddI(ir.GR(4), ir.GR(4), 1))},
		},
		Setup: []ir.RegInit{{Reg: ir.GR(4), Val: 0}},
	}
	r, err := NewRunner(plainConfig()).Run(p, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.KernelIters != 6 {
		t.Errorf("kernel iterations = %d, want 6", r.KernelIters)
	}
	// The add ran once per active stage-0 iteration: 5 times.
	if got := r.State.ReadReg(ir.GR(4)); got != 5 {
		t.Errorf("r4 = %d, want 5", got)
	}
}

func TestSimMatchesFunctionalInterp(t *testing.T) {
	// Timing simulation must not change semantics: compare final state
	// against interp.Run.
	p := seqProgram(
		[]ir.RegInit{{Reg: ir.GR(4), Val: 0x10000}, {Reg: ir.GR(5), Val: 0x20000}},
		[]*ir.Instr{ir.Ld(ir.GR(6), ir.GR(4), 4, 4)},
		[]*ir.Instr{ir.AddI(ir.GR(7), ir.GR(6), 3)},
		[]*ir.Instr{ir.St(ir.GR(5), ir.GR(7), 4, 4)},
	)
	memA, memB := interp.NewMemory(), interp.NewMemory()
	for i := int64(0); i < 20; i++ {
		memA.Store(0x10000+4*i, 4, i*i)
		memB.Store(0x10000+4*i, 4, i*i)
	}
	stA, err := interp.Run(p, 20, memA)
	if err != nil {
		t.Fatal(err)
	}
	rB, err := NewRunner(plainConfig()).Run(p, 20, memB)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 20; i++ {
		a := stA.Mem.Load(0x20000+4*i, 4)
		b := rB.State.Mem.Load(0x20000+4*i, 4)
		if a != b {
			t.Fatalf("memory differs at %d: %d vs %d", i, a, b)
		}
	}
}

func TestRunRejectsBadTrip(t *testing.T) {
	p := seqProgram(nil, []*ir.Instr{ir.AddI(ir.GR(4), ir.GR(4), 1)})
	if _, err := NewRunner(plainConfig()).Run(p, 0, nil); err == nil {
		t.Error("trip 0 accepted")
	}
}

func TestAccountingAdd(t *testing.T) {
	a := Accounting{Total: 1, Unstalled: 1, ExeBubble: 1, L1DFPUBubble: 1, RSEBubble: 1, FlushBubble: 1, FEBubble: 1}
	b := a
	a.Add(b)
	if a.Total != 2 || a.Bubbles() != 10 {
		t.Errorf("Add/Bubbles wrong: %+v", a)
	}
}

func TestTraceOutput(t *testing.T) {
	var buf bytes.Buffer
	cfg := plainConfig()
	cfg.Trace = &buf
	p := seqProgram(
		[]ir.RegInit{{Reg: ir.GR(4), Val: 0x10000}},
		[]*ir.Instr{ir.Ld(ir.GR(5), ir.GR(4), 8, 8)},
		[]*ir.Instr{ir.AddI(ir.GR(6), ir.GR(5), 1)},
	)
	if _, err := NewRunner(cfg).Run(p, 2, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "ld8") || !strings.Contains(out, "stall") {
		t.Errorf("trace missing content:\n%s", out)
	}
}
