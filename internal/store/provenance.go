package store

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Provenance: a hash-chained, Merkle-batched append-only log of every
// artifact creation this node performed — local compiles, peer
// cache-fills, read-repair pushes received, anti-entropy pulls. Each
// record pins the store entry's section checksum at the moment the
// artifact was created, so a store entry later rewritten in place (even
// with a consistently restamped Checksum field, which the store's own
// integrity check cannot catch) diverges from its provenance record and
// is quarantined instead of served.
//
// The log itself is tamper-evident: every record carries the sha256 of
// its predecessor (a hash chain), and every BatchSize records are
// additionally summarized by a Merkle root appended to a second,
// root-chained file. Rewriting any past record breaks the chain and the
// batch root above it; truncating the tail is caught by the roots file
// extending past the records. Verify replays both files and checks
// every link.
//
// Appends are cheap by construction: the caller's hot path updates an
// in-memory index (the quarantine check reads only that) and enqueues
// the durable write to a single background writer that assigns
// sequence numbers, chains, and batches. The queue is bounded and
// non-blocking — under absurd pressure records are dropped from the
// durable log (counted, surfaced in metrics) rather than stalling a
// compile.

// Provenance record sources.
const (
	SourceCompile     = "compile"
	SourcePeerFill    = "peer_fill"
	SourceReadRepair  = "read_repair"
	SourceAntiEntropy = "anti_entropy"
)

// DefaultBatchSize is how many records one Merkle batch covers.
const DefaultBatchSize = 64

// Record is one provenance log entry.
type Record struct {
	Seq      uint64 `json:"seq"`
	TimeUnix int64  `json:"t"`
	Hash     string `json:"hash"`   // artifact hash
	Source   string `json:"source"` // compile | peer_fill | read_repair | anti_entropy
	Checksum string `json:"checksum"`
	Prev     string `json:"prev,omitempty"` // previous record's Sum ("" for the genesis record)
	Sum      string `json:"sum"`            // sha256 over this record's chained content
}

// sum computes the record's chained hash over every field except Sum
// itself. The fields are joined with NUL so boundaries cannot be
// confused; the version tag makes future format changes explicit.
func (r *Record) sum() string {
	h := sha256.New()
	h.Write([]byte("ltsp-prov-v1\x00" + strconv.FormatUint(r.Seq, 10) + "\x00" +
		strconv.FormatInt(r.TimeUnix, 10) + "\x00" + r.Hash + "\x00" +
		r.Source + "\x00" + r.Checksum + "\x00" + r.Prev))
	return hex.EncodeToString(h.Sum(nil))
}

// Root is one Merkle batch summary: the root over BatchSize consecutive
// record sums, chained to the previous root.
type Root struct {
	Batch    int    `json:"batch"` // 0-based batch index
	FirstSeq uint64 `json:"first_seq"`
	LastSeq  uint64 `json:"last_seq"`
	Root     string `json:"root"`
	Prev     string `json:"prev,omitempty"` // previous root's Sum
	Sum      string `json:"sum"`
}

func (r *Root) sum() string {
	h := sha256.New()
	h.Write([]byte("ltsp-prov-root-v1\x00" + strconv.Itoa(r.Batch) + "\x00" +
		strconv.FormatUint(r.FirstSeq, 10) + "\x00" + strconv.FormatUint(r.LastSeq, 10) + "\x00" +
		r.Root + "\x00" + r.Prev))
	return hex.EncodeToString(h.Sum(nil))
}

// merkleRoot folds a batch of record sums into one root: leaves are
// domain-separated hashes of each sum, interior nodes hash their
// ordered children, and an odd node is paired with itself.
func merkleRoot(sums []string) string {
	if len(sums) == 0 {
		return ""
	}
	level := make([]string, len(sums))
	for i, s := range sums {
		h := sha256.Sum256([]byte("leaf\x00" + s))
		level[i] = hex.EncodeToString(h[:])
	}
	for len(level) > 1 {
		next := level[: 0 : len(level)/2+1]
		for i := 0; i < len(level); i += 2 {
			l := level[i]
			r := l
			if i+1 < len(level) {
				r = level[i+1]
			}
			h := sha256.Sum256([]byte("node\x00" + l + "\x00" + r))
			next = append(next, hex.EncodeToString(h[:]))
		}
		level = next
	}
	return level[0]
}

// EntryChecksum computes an entry's section checksum without writing it
// anywhere — the value a provenance record pins, and what tests use to
// forge a consistently restamped (yet still detectable) entry.
func EntryChecksum(e *Entry) string { return e.checksum() }

// LogOptions parameterizes a provenance Log.
type LogOptions struct {
	// BatchSize is the Merkle batch width (default DefaultBatchSize).
	BatchSize int
	// Fsync makes each completed batch durable before continuing. Off by
	// default for the same reason as the store's writes.
	Fsync bool
	// QueueDepth bounds the append queue (default 1024).
	QueueDepth int
	// KeepPerHash bounds in-memory records retained per artifact for
	// Records (default 4; the full history stays on disk).
	KeepPerHash int
}

func (o LogOptions) withDefaults() LogOptions {
	if o.BatchSize <= 0 {
		o.BatchSize = DefaultBatchSize
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 1024
	}
	if o.KeepPerHash <= 0 {
		o.KeepPerHash = 4
	}
	return o
}

// Log is an open provenance log. All methods are safe for concurrent
// use; a nil *Log is valid everywhere and records nothing, so call
// sites need no provenance-enabled branches.
type Log struct {
	opts LogOptions
	dir  string

	mu      sync.RWMutex
	latest  map[string]string   // hash -> latest recorded entry checksum
	byHash  map[string][]Record // hash -> recent records (capped)
	headSeq uint64
	headSum string
	roots   []Root
	pending []string // record sums since the last completed batch

	records atomic.Uint64 // appended to the durable log
	dropped atomic.Uint64 // lost to queue overflow

	ops      chan provOp
	quit     chan struct{}
	stopOnce sync.Once
	done     sync.WaitGroup

	logF   *os.File
	rootsF *os.File
	logW   *bufio.Writer
	rootsW *bufio.Writer
}

type provOp struct {
	rec Record        // Seq/TimeUnix/Prev/Sum assigned by the writer
	ack chan struct{} // non-nil: a Barrier, no record
}

// LogPath returns the records file path for a store directory (the CI
// job uploads it as a build artifact).
func LogPath(dir string) string { return filepath.Join(dir, "provenance.log") }

// RootsPath returns the Merkle roots file path.
func RootsPath(dir string) string { return filepath.Join(dir, "provenance.roots") }

// OpenLog opens (creating if needed) the provenance log in dir,
// replaying and verifying the existing chain. A broken chain — a
// rewritten, reordered or truncated log — fails the open; the caller
// decides whether to quarantine the files and start fresh.
func OpenLog(dir string, opts LogOptions) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{
		opts:   opts,
		dir:    dir,
		latest: make(map[string]string),
		byHash: make(map[string][]Record),
		ops:    make(chan provOp, opts.QueueDepth),
		quit:   make(chan struct{}),
	}
	if err := l.replay(); err != nil {
		return nil, err
	}
	var err error
	l.logF, err = os.OpenFile(LogPath(dir), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	l.rootsF, err = os.OpenFile(RootsPath(dir), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		l.logF.Close()
		return nil, err
	}
	l.logW = bufio.NewWriter(l.logF)
	l.rootsW = bufio.NewWriter(l.rootsF)
	l.done.Add(1)
	go l.writer()
	return l, nil
}

// replay loads and verifies the on-disk chain into the in-memory state.
func (l *Log) replay() error {
	recs, roots, err := readChain(l.dir, l.opts.BatchSize)
	if err != nil {
		return err
	}
	for _, r := range recs {
		l.indexRecord(r)
		l.headSeq, l.headSum = r.Seq, r.Sum
		l.pending = append(l.pending, r.Sum)
		if len(l.pending) == l.opts.BatchSize {
			l.pending = l.pending[:0]
		}
	}
	l.records.Store(l.headSeq)
	l.roots = roots
	// pending currently holds the sums since the last batch boundary by
	// count; recompute precisely from the roots in case BatchSize changed
	// between runs.
	if n := len(roots); n > 0 {
		covered := roots[n-1].LastSeq
		l.pending = l.pending[:0]
		for _, r := range recs {
			if r.Seq > covered {
				l.pending = append(l.pending, r.Sum)
			}
		}
	}
	return nil
}

// indexRecord folds one record into the lookup maps. Caller owns mu or
// is single-threaded (replay).
func (l *Log) indexRecord(r Record) {
	l.latest[r.Hash] = r.Checksum
	recs := append(l.byHash[r.Hash], r)
	if len(recs) > l.opts.KeepPerHash {
		recs = recs[len(recs)-l.opts.KeepPerHash:]
	}
	l.byHash[r.Hash] = recs
}

// Append records an artifact creation. The in-memory index (which the
// serve-path quarantine check consults) is updated synchronously; the
// chained durable write happens on the background writer. Never
// blocks: queue overflow drops the durable record and counts it.
func (l *Log) Append(hash, source, checksum string) {
	if l == nil {
		return
	}
	select {
	case <-l.quit:
		l.dropped.Add(1)
		return
	default:
	}
	l.mu.Lock()
	l.latest[hash] = checksum
	l.mu.Unlock()
	select {
	case l.ops <- provOp{rec: Record{Hash: hash, Source: source, Checksum: checksum}}:
	default:
		l.dropped.Add(1)
	}
}

// Latest returns the most recently recorded entry checksum for an
// artifact hash. ok is false when the hash has no provenance record.
func (l *Log) Latest(hash string) (string, bool) {
	if l == nil {
		return "", false
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	c, ok := l.latest[hash]
	return c, ok
}

// Records returns the retained recent records for a hash, oldest first
// (the full history lives in the on-disk log).
func (l *Log) Records(hash string) []Record {
	if l == nil {
		return nil
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	return append([]Record(nil), l.byHash[hash]...)
}

// Head returns the chain head: the last durably written record's
// sequence number and sum.
func (l *Log) Head() (uint64, string) {
	if l == nil {
		return 0, ""
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.headSeq, l.headSum
}

// LatestRoot returns the newest completed Merkle batch root ("" before
// the first batch completes) and how many batches exist.
func (l *Log) LatestRoot() (string, int) {
	if l == nil {
		return "", 0
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	if len(l.roots) == 0 {
		return "", 0
	}
	return l.roots[len(l.roots)-1].Root, len(l.roots)
}

// LogStats is the provenance section of the metrics document.
type LogStats struct {
	Records uint64 // records durably appended (chain head seq)
	Batches int    // completed Merkle batches
	Dropped uint64 // records lost to queue overflow
}

// Stats returns the log's counters.
func (l *Log) Stats() LogStats {
	if l == nil {
		return LogStats{}
	}
	l.mu.RLock()
	batches := len(l.roots)
	head := l.headSeq
	l.mu.RUnlock()
	return LogStats{Records: head, Batches: batches, Dropped: l.dropped.Load()}
}

// Barrier blocks until every Append enqueued before it has been durably
// written (tests, and the pre-close flush).
func (l *Log) Barrier() {
	if l == nil {
		return
	}
	select {
	case <-l.quit:
		return
	default:
	}
	ack := make(chan struct{})
	select {
	case l.ops <- provOp{ack: ack}:
		<-ack
	case <-l.quit:
	}
}

// Close drains the queue, flushes, and closes the files. Safe to call
// more than once; a nil receiver is a no-op.
func (l *Log) Close() error {
	if l == nil {
		return nil
	}
	l.stopOnce.Do(func() { close(l.quit) })
	l.done.Wait()
	return nil
}

// writer is the single background goroutine that owns the files and
// the chain state.
func (l *Log) writer() {
	defer l.done.Done()
	for {
		select {
		case op := <-l.ops:
			l.process(op)
		case <-l.quit:
			for {
				select {
				case op := <-l.ops:
					l.process(op)
				default:
					l.logW.Flush()
					l.rootsW.Flush()
					if l.opts.Fsync {
						l.logF.Sync()
						l.rootsF.Sync()
					}
					l.logF.Close()
					l.rootsF.Close()
					return
				}
			}
		}
	}
}

func (l *Log) process(op provOp) {
	if op.ack != nil {
		l.logW.Flush()
		l.rootsW.Flush()
		close(op.ack)
		return
	}
	rec := op.rec
	l.mu.Lock()
	rec.Seq = l.headSeq + 1
	rec.TimeUnix = time.Now().Unix()
	rec.Prev = l.headSum
	rec.Sum = rec.sum()
	line, err := json.Marshal(&rec)
	if err != nil { // unreachable for this struct; keep the chain intact anyway
		l.mu.Unlock()
		return
	}
	l.headSeq, l.headSum = rec.Seq, rec.Sum
	l.pending = append(l.pending, rec.Sum)
	l.indexRecord(rec)
	var rootLine []byte
	if len(l.pending) >= l.opts.BatchSize {
		root := Root{
			Batch:    len(l.roots),
			FirstSeq: rec.Seq - uint64(l.opts.BatchSize) + 1,
			LastSeq:  rec.Seq,
			Root:     merkleRoot(l.pending),
		}
		if n := len(l.roots); n > 0 {
			root.Prev = l.roots[n-1].Sum
		}
		root.Sum = root.sum()
		l.roots = append(l.roots, root)
		l.pending = l.pending[:0]
		rootLine, _ = json.Marshal(&root)
	}
	l.mu.Unlock()
	l.records.Add(1)
	l.logW.Write(line)
	l.logW.WriteByte('\n')
	if rootLine != nil {
		l.logW.Flush()
		l.rootsW.Write(rootLine)
		l.rootsW.WriteByte('\n')
		l.rootsW.Flush()
		if l.opts.Fsync {
			l.logF.Sync()
			l.rootsF.Sync()
		}
	}
}

// Verify re-reads the on-disk chain and checks every record sum, every
// chain link, and every Merkle batch root. It is independent of the
// in-memory state, so it also verifies logs written by other processes
// (the CI job runs it over the uploaded artifact).
func (l *Log) Verify() error {
	if l == nil {
		return nil
	}
	l.Barrier()
	_, _, err := readChain(l.dir, l.opts.BatchSize)
	return err
}

// VerifyDir verifies a provenance chain on disk without opening it for
// writing.
func VerifyDir(dir string, batchSize int) error {
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	_, _, err := readChain(dir, batchSize)
	return err
}

// readChain loads and fully verifies the records and roots files.
func readChain(dir string, batchSize int) ([]Record, []Root, error) {
	recs, err := readRecords(LogPath(dir))
	if err != nil {
		return nil, nil, err
	}
	prev := ""
	var seq uint64
	for i := range recs {
		r := &recs[i]
		if r.Seq != seq+1 {
			return nil, nil, fmt.Errorf("provenance: record %d out of sequence (seq %d after %d)", i, r.Seq, seq)
		}
		if r.Prev != prev {
			return nil, nil, fmt.Errorf("provenance: record seq %d breaks the chain", r.Seq)
		}
		if got := r.sum(); got != r.Sum {
			return nil, nil, fmt.Errorf("provenance: record seq %d sum mismatch (rewritten?)", r.Seq)
		}
		prev, seq = r.Sum, r.Seq
	}
	roots, err := readRoots(RootsPath(dir))
	if err != nil {
		return nil, nil, err
	}
	prevRoot := ""
	for i, ro := range roots {
		if ro.Batch != i {
			return nil, nil, fmt.Errorf("provenance: root %d out of order (batch %d)", i, ro.Batch)
		}
		if ro.Prev != prevRoot {
			return nil, nil, fmt.Errorf("provenance: root %d breaks the root chain", i)
		}
		if got := ro.sum(); got != ro.Sum {
			return nil, nil, fmt.Errorf("provenance: root %d sum mismatch (rewritten?)", i)
		}
		first := uint64(i*batchSize) + 1
		last := first + uint64(batchSize) - 1
		if ro.FirstSeq != first || ro.LastSeq != last {
			return nil, nil, fmt.Errorf("provenance: root %d covers seq %d..%d, want %d..%d",
				i, ro.FirstSeq, ro.LastSeq, first, last)
		}
		if ro.LastSeq > seq {
			return nil, nil, fmt.Errorf("provenance: root %d covers seq %d but the log ends at %d (truncated?)",
				i, ro.LastSeq, seq)
		}
		sums := make([]string, 0, batchSize)
		for _, r := range recs[first-1 : last] {
			sums = append(sums, r.Sum)
		}
		if got := merkleRoot(sums); got != ro.Root {
			return nil, nil, fmt.Errorf("provenance: root %d Merkle mismatch (batch rewritten?)", i)
		}
		prevRoot = ro.Sum
	}
	if want := int(seq) / batchSize; len(roots) < want {
		return nil, nil, fmt.Errorf("provenance: %d complete batches but only %d roots (roots truncated?)", want, len(roots))
	}
	return recs, roots, nil
}

func readRecords(path string) ([]Record, error) {
	var recs []Record
	err := readLines(path, func(n int, line []byte) error {
		var r Record
		if err := json.Unmarshal(line, &r); err != nil {
			return fmt.Errorf("provenance: %s line %d: %v", filepath.Base(path), n, err)
		}
		recs = append(recs, r)
		return nil
	})
	return recs, err
}

func readRoots(path string) ([]Root, error) {
	var roots []Root
	err := readLines(path, func(n int, line []byte) error {
		var r Root
		if err := json.Unmarshal(line, &r); err != nil {
			return fmt.Errorf("provenance: %s line %d: %v", filepath.Base(path), n, err)
		}
		roots = append(roots, r)
		return nil
	})
	return roots, err
}

func readLines(path string, fn func(n int, line []byte) error) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	for n := 1; sc.Scan(); n++ {
		line := strings.TrimSpace(string(sc.Bytes()))
		if line == "" {
			continue
		}
		if err := fn(n, []byte(line)); err != nil {
			return err
		}
	}
	return sc.Err()
}
