package store

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func openTestLog(t *testing.T, dir string, opts LogOptions) *Log {
	t.Helper()
	l, err := OpenLog(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func TestProvenanceAppendChainAndRoots(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir, LogOptions{BatchSize: 4})
	for i := 0; i < 10; i++ {
		l.Append(testHash(byte(i)), SourceCompile, "sum-"+string(rune('a'+i)))
	}
	l.Barrier()
	if seq, sum := l.Head(); seq != 10 || sum == "" {
		t.Fatalf("head = %d/%q, want seq 10", seq, sum)
	}
	if root, n := l.LatestRoot(); n != 2 || root == "" {
		t.Fatalf("roots = %d (%q), want 2 completed batches of 4", n, root)
	}
	if got := l.Stats(); got.Records != 10 || got.Batches != 2 || got.Dropped != 0 {
		t.Fatalf("stats = %+v", got)
	}
	if err := l.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if c, ok := l.Latest(testHash(3)); !ok || c != "sum-d" {
		t.Fatalf("latest = %q/%v", c, ok)
	}
	recs := l.Records(testHash(3))
	if len(recs) != 1 || recs[0].Source != SourceCompile || recs[0].Seq != 4 {
		t.Fatalf("records = %+v", recs)
	}
}

func TestProvenanceLatestWinsAndRecordCap(t *testing.T) {
	l := openTestLog(t, t.TempDir(), LogOptions{BatchSize: 64, KeepPerHash: 2})
	h := testHash(9)
	l.Append(h, SourceCompile, "c1")
	l.Append(h, SourceReadRepair, "c2")
	l.Append(h, SourceAntiEntropy, "c3")
	l.Barrier()
	if c, _ := l.Latest(h); c != "c3" {
		t.Fatalf("latest = %q, want c3", c)
	}
	recs := l.Records(h)
	if len(recs) != 2 || recs[0].Checksum != "c2" || recs[1].Checksum != "c3" {
		t.Fatalf("capped records = %+v", recs)
	}
}

func TestProvenanceReopenContinuesChain(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir, LogOptions{BatchSize: 4})
	for i := 0; i < 6; i++ {
		l.Append(testHash(byte(i)), SourcePeerFill, "s")
	}
	l.Barrier()
	headSeq, headSum := l.Head()
	l.Close()

	l2 := openTestLog(t, dir, LogOptions{BatchSize: 4})
	if seq, sum := l2.Head(); seq != headSeq || sum != headSum {
		t.Fatalf("reopened head = %d/%q, want %d/%q", seq, sum, headSeq, headSum)
	}
	if c, ok := l2.Latest(testHash(2)); !ok || c != "s" {
		t.Fatalf("reopened index lost records: %q/%v", c, ok)
	}
	for i := 6; i < 9; i++ {
		l2.Append(testHash(byte(i)), SourceAntiEntropy, "s")
	}
	l2.Barrier()
	if seq, _ := l2.Head(); seq != 9 {
		t.Fatalf("continued head = %d, want 9", seq)
	}
	if _, n := l2.LatestRoot(); n != 2 {
		t.Fatalf("batches = %d, want 2 (8 records / 4)", n)
	}
	if err := l2.Verify(); err != nil {
		t.Fatalf("verify after reopen: %v", err)
	}
}

func TestProvenanceDetectsRewrittenRecord(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir, LogOptions{BatchSize: 4})
	for i := 0; i < 8; i++ {
		l.Append(testHash(byte(i)), SourceCompile, "honest")
	}
	l.Barrier()
	l.Close()

	// An attacker rewrites record 3's pinned checksum in place, keeping
	// the line well-formed.
	path := LogPath(dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	var rec Record
	if err := json.Unmarshal([]byte(lines[2]), &rec); err != nil {
		t.Fatal(err)
	}
	rec.Checksum = "poisoned"
	forged, _ := json.Marshal(&rec)
	lines[2] = string(forged)
	os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644)

	if _, err := OpenLog(dir, LogOptions{BatchSize: 4}); err == nil {
		t.Fatal("open must reject a rewritten record")
	} else if !strings.Contains(err.Error(), "sum mismatch") {
		t.Fatalf("unexpected error: %v", err)
	}

	// Restamping the record sum too still breaks the chain at the next
	// record (its prev no longer matches) — and the Merkle root.
	rec.Sum = rec.sum()
	forged, _ = json.Marshal(&rec)
	lines[2] = string(forged)
	os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644)
	if _, err := OpenLog(dir, LogOptions{BatchSize: 4}); err == nil {
		t.Fatal("open must reject a restamped record via the chain link")
	}
}

func TestProvenanceDetectsTruncation(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir, LogOptions{BatchSize: 2})
	for i := 0; i < 6; i++ {
		l.Append(testHash(byte(i)), SourceCompile, "x")
	}
	l.Barrier()
	l.Close()
	data, _ := os.ReadFile(LogPath(dir))
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	os.WriteFile(LogPath(dir), []byte(strings.Join(lines[:3], "\n")+"\n"), 0o644)
	if err := VerifyDir(dir, 2); err == nil {
		t.Fatal("truncating the records under existing roots must fail verification")
	}
}

func TestProvenanceNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Append("h", SourceCompile, "c")
	if _, ok := l.Latest("h"); ok {
		t.Fatal("nil log must report nothing")
	}
	l.Barrier()
	if err := l.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if s := l.Stats(); s != (LogStats{}) {
		t.Fatalf("stats = %+v", s)
	}
}

// testHash builds a distinct well-formed (64 hex chars) hash per tag.
func testHash(tag byte) string {
	const hexdig = "0123456789abcdef"
	b := make([]byte, 64)
	for i := range b {
		b[i] = hexdig[int(tag)%16]
	}
	b[0] = hexdig[(int(tag)/16)%16]
	return string(b)
}
