// Package store is the content-addressed persistent artifact store of
// the ltspd service: one JSON entry per compiled loop, keyed by the
// canonical content hash of its compile request (wire.CompileRequest.
// Hash) and holding everything a peer or a restarted process needs to
// serve the compilation without redoing it — the canonical request, the
// compile response, the decision trace, and the verification metadata.
//
// Durability and integrity:
//
//   - Writes are atomic: the entry is written to a temp file in the
//     destination shard directory and renamed into place, so a crash
//     mid-write never leaves a partial entry under a valid name. With
//     Options.Fsync the file (and its directory) are fsynced before the
//     rename is considered durable.
//   - Reads are corruption-checked: the store recomputes the content
//     hash of the stored canonical request (which must equal the entry's
//     key) and an entry checksum over all sections. A corrupt or
//     truncated entry is deleted and reported as ErrCorrupt — it can be
//     refilled from a peer or recompiled, never served.
//   - Disk usage is LRU-bounded: an in-memory recency index (rebuilt
//     from file mtimes on Open) evicts the least recently used entries
//     when the store exceeds Options.MaxBytes, inline on writes and from
//     a background eviction scanner that also reconciles the index with
//     entries added or removed behind the store's back.
//
// The store layers under the in-memory artifact cache: the service
// checks memory, then disk, then its cluster peers, then compiles.
package store

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// EntryVersion tags the on-disk entry format.
const EntryVersion = 1

// VerifyMeta records what the trust-but-verify layer knew about the
// artifact when it was stored, so a peer that fills its cache from this
// entry can tell a sampled-and-verified artifact from an unverified one.
type VerifyMeta struct {
	// Sampled reports whether the compilation went through independent
	// verification (the structural checker plus the differential oracle).
	Sampled bool `json:"sampled,omitempty"`
	// Passed reports the verdict; meaningful only when Sampled (a failed
	// verification never produces an artifact, so stored entries always
	// have Passed == Sampled — the field exists for forward compatibility
	// with advisory verification modes).
	Passed bool `json:"passed,omitempty"`
}

// Entry is one persisted artifact. Request is the canonical compile
// request whose sha256 is the entry's hash; Response and Trace are the
// service's wire-format compile response and decision trace.
type Entry struct {
	Version     int             `json:"v"`
	Hash        string          `json:"hash"`
	Request     json.RawMessage `json:"request"`
	Response    json.RawMessage `json:"response"`
	Trace       json.RawMessage `json:"trace,omitempty"`
	Verify      VerifyMeta      `json:"verify"`
	CreatedUnix int64           `json:"createdUnix"`
	// Checksum is the hex sha256 over the length-prefixed request,
	// response and trace sections; Get recomputes and compares it.
	Checksum string `json:"checksum"`
}

// checksum computes the entry checksum: sha256 over the three variable
// sections, each preceded by its length so section boundaries cannot be
// confused.
func (e *Entry) checksum() string {
	h := sha256.New()
	var n [8]byte
	for _, sec := range [][]byte{e.Request, e.Response, e.Trace} {
		binary.LittleEndian.PutUint64(n[:], uint64(len(sec)))
		h.Write(n[:])
		h.Write(sec)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Sentinel errors. Match with errors.Is.
var (
	// ErrNotFound: no entry under the hash.
	ErrNotFound = errors.New("store: artifact not found")
	// ErrCorrupt: the entry failed its integrity check and was removed.
	ErrCorrupt = errors.New("store: artifact corrupt")
)

// Options parameterizes a Store.
type Options struct {
	// MaxBytes bounds the store's total entry bytes; the least recently
	// used entries are evicted to stay under it. <= 0 means unbounded.
	MaxBytes int64
	// Fsync makes writes durable before they are visible: the entry file
	// is fsynced before the rename and the shard directory after it.
	// Off by default — an entry lost to a crash is re-fillable, and
	// fsync costs milliseconds per write on most filesystems.
	Fsync bool
	// ScanInterval is the period of the background eviction scanner,
	// which reconciles the index with the directory (entries added or
	// deleted behind the store's back) and re-enforces MaxBytes. <= 0
	// disables the scanner; eviction still happens inline on Put.
	ScanInterval time.Duration
}

// Stats counts store activity. Bytes/Entries describe current contents;
// the counters are cumulative since Open.
type Stats struct {
	Entries   int
	Bytes     int64
	Hits      int64
	Misses    int64
	Writes    int64
	Evictions int64
	Corrupt   int64
	Scans     int64
}

type indexEntry struct {
	hash string
	size int64
}

// Store is a content-addressed on-disk artifact store. It is safe for
// concurrent use by multiple goroutines within one process; it assumes
// it owns its directory (concurrent processes sharing a directory are
// tolerated by the scanner but not coordinated).
type Store struct {
	dir  string
	opts Options

	mu      sync.Mutex
	ll      *list.List // front = most recently used; values are *indexEntry
	entries map[string]*list.Element
	bytes   int64

	hits      atomic.Int64
	misses    atomic.Int64
	writes    atomic.Int64
	evictions atomic.Int64
	corrupt   atomic.Int64
	scans     atomic.Int64

	scanStop chan struct{}
	scanDone chan struct{}
}

// Open opens (creating if needed) a store rooted at dir, scans the
// existing entries into the recency index (ordered by file modification
// time, oldest least recent), removes stale temp files, enforces the
// byte budget, and starts the eviction scanner when configured.
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:     dir,
		opts:    opts,
		ll:      list.New(),
		entries: make(map[string]*list.Element),
	}
	if err := s.rebuild(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.enforceLocked()
	s.mu.Unlock()
	if opts.ScanInterval > 0 {
		s.scanStop = make(chan struct{})
		s.scanDone = make(chan struct{})
		go s.scanLoop()
	}
	return s, nil
}

// Close stops the background scanner (if running). The store remains
// usable; Close exists so tests and drains can assert no goroutine is
// left behind.
func (s *Store) Close() {
	if s.scanStop != nil {
		close(s.scanStop)
		<-s.scanDone
		s.scanStop, s.scanDone = nil, nil
	}
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// validHash reports whether h is a well-formed content hash (64 lowercase
// hex characters). Hashes arrive from URL paths, so this is also the
// path-traversal guard: anything else never touches the filesystem.
func validHash(h string) bool {
	if len(h) != 64 {
		return false
	}
	for i := 0; i < len(h); i++ {
		c := h[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// path returns the entry file for a hash, sharded by its first two hex
// characters to keep directory fan-out bounded.
func (s *Store) path(hash string) string {
	return filepath.Join(s.dir, hash[:2], hash+".json")
}

// Put persists an entry, atomically replacing any existing one, and
// enforces the byte budget. The entry's Hash must be the content hash of
// its canonical Request; Put recomputes and checks it, and stamps the
// section checksum.
func (s *Store) Put(e *Entry) error {
	if !validHash(e.Hash) {
		return fmt.Errorf("store: malformed hash %q", e.Hash)
	}
	sum := sha256.Sum256(e.Request)
	if got := hex.EncodeToString(sum[:]); got != e.Hash {
		return fmt.Errorf("store: request content hash %s does not match entry hash %s", got, e.Hash)
	}
	e.Version = EntryVersion
	e.Checksum = e.checksum()
	data, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("store: encoding entry: %w", err)
	}
	path := s.path(e.Hash)
	shard := filepath.Dir(path)
	if err := os.MkdirAll(shard, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	// Atomic publish: temp file in the destination directory (same
	// filesystem, so rename is atomic), then rename over the final name.
	tmp, err := os.CreateTemp(shard, e.Hash+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { _ = os.Remove(tmpName) }
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		cleanup()
		return fmt.Errorf("store: %w", err)
	}
	if s.opts.Fsync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			cleanup()
			return fmt.Errorf("store: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		cleanup()
		return fmt.Errorf("store: %w", err)
	}
	if s.opts.Fsync {
		if d, err := os.Open(shard); err == nil {
			_ = d.Sync()
			d.Close()
		}
	}
	s.writes.Add(1)

	s.mu.Lock()
	size := int64(len(data))
	if el, ok := s.entries[e.Hash]; ok {
		ie := el.Value.(*indexEntry)
		s.bytes += size - ie.size
		ie.size = size
		s.ll.MoveToFront(el)
	} else {
		s.entries[e.Hash] = s.ll.PushFront(&indexEntry{hash: e.Hash, size: size})
		s.bytes += size
	}
	s.enforceLocked()
	s.mu.Unlock()
	return nil
}

// EncodedSize returns the number of bytes the entry occupies (or would
// occupy) on disk: the length of exactly the encoding Put writes. It is
// the shared byte-accounting unit — the server's in-memory cache weighs
// artifacts with it, so the memory and disk layers report commensurable
// size metrics.
func EncodedSize(e *Entry) int64 {
	c := *e
	c.Version = EntryVersion
	c.Checksum = c.checksum()
	data, err := json.Marshal(&c)
	if err != nil {
		return 0
	}
	return int64(len(data))
}

// Get reads the entry for a hash, marking it recently used. A missing
// entry returns ErrNotFound; an entry that fails its integrity checks is
// deleted and returns ErrCorrupt.
func (s *Store) Get(hash string) (*Entry, error) {
	if !validHash(hash) {
		s.misses.Add(1)
		return nil, fmt.Errorf("%w: malformed hash %q", ErrNotFound, hash)
	}
	s.mu.Lock()
	el, ok := s.entries[hash]
	if ok {
		s.ll.MoveToFront(el)
	}
	s.mu.Unlock()
	if !ok {
		s.misses.Add(1)
		return nil, ErrNotFound
	}
	data, err := os.ReadFile(s.path(hash))
	if err != nil {
		// Evicted or externally removed between index lookup and read.
		s.drop(hash, false)
		s.misses.Add(1)
		return nil, ErrNotFound
	}
	e, err := decodeEntry(hash, data)
	if err != nil {
		// Corrupt on disk: remove so the slot can be refilled cleanly.
		s.drop(hash, true)
		s.corrupt.Add(1)
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	s.hits.Add(1)
	return e, nil
}

// decodeEntry parses and integrity-checks one stored entry.
func decodeEntry(hash string, data []byte) (*Entry, error) {
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("undecodable entry: %v", err)
	}
	if e.Version != EntryVersion {
		return nil, fmt.Errorf("unsupported entry version %d", e.Version)
	}
	if e.Hash != hash {
		return nil, fmt.Errorf("entry names hash %s, stored under %s", e.Hash, hash)
	}
	sum := sha256.Sum256(e.Request)
	if got := hex.EncodeToString(sum[:]); got != hash {
		return nil, fmt.Errorf("request content hash %s does not match key %s", got, hash)
	}
	if got := e.checksum(); got != e.Checksum {
		return nil, fmt.Errorf("section checksum mismatch")
	}
	return &e, nil
}

// Contains reports whether an entry is indexed (without reading or
// integrity-checking it, and without touching recency).
func (s *Store) Contains(hash string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[hash]
	return ok
}

// Delete removes an entry if present.
func (s *Store) Delete(hash string) {
	if !validHash(hash) {
		return
	}
	s.drop(hash, true)
}

// drop removes hash from the index (and, when removeFile, from
// disk). Safe to call whether or not the entry is indexed.
func (s *Store) drop(hash string, removeFile bool) {
	s.mu.Lock()
	if el, ok := s.entries[hash]; ok {
		s.bytes -= el.Value.(*indexEntry).size
		s.ll.Remove(el)
		delete(s.entries, hash)
	}
	s.mu.Unlock()
	if removeFile {
		_ = os.Remove(s.path(hash))
	}
}

// enforceLocked evicts least-recently-used entries until the store is
// within its byte budget. Caller holds s.mu.
func (s *Store) enforceLocked() {
	if s.opts.MaxBytes <= 0 {
		return
	}
	for s.bytes > s.opts.MaxBytes && s.ll.Len() > 0 {
		oldest := s.ll.Back()
		ie := oldest.Value.(*indexEntry)
		s.ll.Remove(oldest)
		delete(s.entries, ie.hash)
		s.bytes -= ie.size
		_ = os.Remove(s.path(ie.hash))
		s.evictions.Add(1)
	}
}

// Len returns the number of indexed entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

// Bytes returns the total indexed entry bytes.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Stats returns a snapshot of the store's counters and contents.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	entries, bytes := s.ll.Len(), s.bytes
	s.mu.Unlock()
	return Stats{
		Entries:   entries,
		Bytes:     bytes,
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Writes:    s.writes.Load(),
		Evictions: s.evictions.Load(),
		Corrupt:   s.corrupt.Load(),
		Scans:     s.scans.Load(),
	}
}

// Keys returns the indexed hashes, most recently used first.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, s.ll.Len())
	for el := s.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*indexEntry).hash)
	}
	return out
}

// rebuild scans the directory tree into a fresh index, ordering entries
// by file modification time (oldest = least recently used) and deleting
// temp files a crashed writer left behind.
func (s *Store) rebuild() error {
	type fileInfo struct {
		hash  string
		size  int64
		mtime time.Time
	}
	var files []fileInfo
	err := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		name := d.Name()
		if strings.Contains(name, ".tmp-") {
			_ = os.Remove(path) // crashed mid-write; the rename never happened
			return nil
		}
		hash, ok := strings.CutSuffix(name, ".json")
		if !ok || !validHash(hash) {
			return nil // not ours; leave it alone
		}
		info, err := d.Info()
		if err != nil {
			return nil // raced with an eviction elsewhere
		}
		files = append(files, fileInfo{hash: hash, size: info.Size(), mtime: info.ModTime()})
		return nil
	})
	if err != nil {
		return fmt.Errorf("store: scanning %s: %w", s.dir, err)
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime.Before(files[j].mtime) })
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ll.Init()
	clear(s.entries)
	s.bytes = 0
	for _, f := range files {
		// Oldest first + PushFront leaves the newest at the front (MRU).
		s.entries[f.hash] = s.ll.PushFront(&indexEntry{hash: f.hash, size: f.size})
		s.bytes += f.size
	}
	return nil
}

// Scan reconciles the index with the directory (picking up entries
// written or removed behind the store's back, preserving in-process
// recency for entries that survived) and re-enforces the byte budget.
func (s *Store) Scan() error {
	s.scans.Add(1)
	// Snapshot current recency so the rebuilt index can preserve it.
	recency := s.Keys()
	if err := s.rebuild(); err != nil {
		return err
	}
	s.mu.Lock()
	// rebuild ordered by mtime; replay the in-process recency on top,
	// oldest first so the most recently used ends up at the front.
	for i := len(recency) - 1; i >= 0; i-- {
		if el, ok := s.entries[recency[i]]; ok {
			s.ll.MoveToFront(el)
		}
	}
	s.enforceLocked()
	s.mu.Unlock()
	return nil
}

// scanLoop is the background eviction scanner.
func (s *Store) scanLoop() {
	defer close(s.scanDone)
	t := time.NewTicker(s.opts.ScanInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			_ = s.Scan()
		case <-s.scanStop:
			return
		}
	}
}
