package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// mkEntry builds a valid entry whose request body (and therefore hash)
// is derived from seed.
func mkEntry(seed int) *Entry {
	req := json.RawMessage(fmt.Sprintf(`{"v":1,"loop":{"name":"l%d"},"options":{}}`, seed))
	sum := sha256.Sum256(req)
	return &Entry{
		Hash:     hex.EncodeToString(sum[:]),
		Request:  req,
		Response: json.RawMessage(fmt.Sprintf(`{"hash":"x","pipelined":true,"ii":%d}`, seed)),
		Trace:    json.RawMessage(`[{"kind":"outcome","result":"pipelined"}]`),
		Verify:   VerifyMeta{Sampled: seed%2 == 0, Passed: seed%2 == 0},
	}
}

func open(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	e := mkEntry(1)
	if err := s.Put(e); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := s.Get(e.Hash)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if string(got.Request) != string(e.Request) ||
		string(got.Response) != string(e.Response) ||
		string(got.Trace) != string(e.Trace) ||
		got.Verify != e.Verify {
		t.Fatalf("round trip mismatch: got %+v want %+v", got, e)
	}
	st := s.Stats()
	if st.Entries != 1 || st.Hits != 1 || st.Writes != 1 || st.Bytes <= 0 {
		t.Fatalf("stats after put+get: %+v", st)
	}
}

func TestGetMissAndBadHash(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	if _, err := s.Get(strings.Repeat("ab", 32)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("miss: got %v, want ErrNotFound", err)
	}
	// Malformed hashes (including traversal attempts) must fail without
	// touching the filesystem.
	for _, h := range []string{"", "short", "../../etc/passwd", strings.Repeat("Z", 64)} {
		if _, err := s.Get(h); !errors.Is(err, ErrNotFound) {
			t.Fatalf("Get(%q): got %v, want ErrNotFound", h, err)
		}
	}
	if st := s.Stats(); st.Misses != 5 {
		t.Fatalf("misses = %d, want 5", st.Misses)
	}
}

func TestPutRejectsWrongHash(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	e := mkEntry(1)
	e.Hash = strings.Repeat("00", 32)
	if err := s.Put(e); err == nil {
		t.Fatal("Put accepted an entry whose hash does not match its request")
	}
	e.Hash = "nothex"
	if err := s.Put(e); err == nil {
		t.Fatal("Put accepted a malformed hash")
	}
}

// TestCorruptionDetected flips bytes in every section and in the file
// structure; each corruption must surface as ErrCorrupt and remove the
// entry so it can be refilled.
func TestCorruptionDetected(t *testing.T) {
	corruptions := []struct {
		name   string
		mangle func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"not json", func(b []byte) []byte { return []byte("}{") }},
		{"request flipped", func(b []byte) []byte {
			return []byte(strings.Replace(string(b), `"name":"l1"`, `"name":"l2"`, 1))
		}},
		{"response flipped", func(b []byte) []byte {
			return []byte(strings.Replace(string(b), `"ii":1`, `"ii":9`, 1))
		}},
		{"trace flipped", func(b []byte) []byte {
			return []byte(strings.Replace(string(b), `"result":"pipelined"`, `"result":"sequential"`, 1))
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s := open(t, dir, Options{})
			e := mkEntry(1)
			if err := s.Put(e); err != nil {
				t.Fatalf("Put: %v", err)
			}
			path := filepath.Join(dir, e.Hash[:2], e.Hash+".json")
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read back: %v", err)
			}
			if err := os.WriteFile(path, tc.mangle(data), 0o644); err != nil {
				t.Fatalf("mangle: %v", err)
			}
			if _, err := s.Get(e.Hash); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Get on %s entry: got %v, want ErrCorrupt", tc.name, err)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("corrupt entry not removed (stat err %v)", err)
			}
			if s.Contains(e.Hash) {
				t.Fatal("corrupt entry still indexed")
			}
			if st := s.Stats(); st.Corrupt != 1 {
				t.Fatalf("corrupt counter = %d, want 1", st.Corrupt)
			}
		})
	}
}

func TestLRUEviction(t *testing.T) {
	dir := t.TempDir()
	e1, e2, e3 := mkEntry(1), mkEntry(2), mkEntry(3)
	one := int64(len(mustMarshal(t, e1)))
	// Budget for two entries (entry sizes differ by a byte or two at
	// most; 2.5x one entry is comfortably "two but not three").
	s := open(t, dir, Options{MaxBytes: one*2 + one/2})
	for _, e := range []*Entry{e1, e2, e3} {
		if err := s.Put(e); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if s.Contains(e1.Hash) {
		t.Fatal("oldest entry survived eviction")
	}
	if !s.Contains(e2.Hash) || !s.Contains(e3.Hash) {
		t.Fatal("recent entries evicted")
	}
	if st := s.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats after eviction: %+v", st)
	}
	// A Get refreshes recency: touch e2, add e4, and e3 must go instead.
	if _, err := s.Get(e2.Hash); err != nil {
		t.Fatalf("Get: %v", err)
	}
	if err := s.Put(mkEntry(4)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if !s.Contains(e2.Hash) {
		t.Fatal("recently used entry evicted")
	}
	if s.Contains(e3.Hash) {
		t.Fatal("least recently used entry survived")
	}
}

func TestWarmReopen(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	var hashes []string
	for i := 0; i < 5; i++ {
		e := mkEntry(i)
		if err := s.Put(e); err != nil {
			t.Fatalf("Put: %v", err)
		}
		hashes = append(hashes, e.Hash)
	}
	wantBytes := s.Bytes()
	s.Close()

	// A fresh process over the same directory sees every entry intact.
	s2 := open(t, dir, Options{})
	if s2.Len() != 5 || s2.Bytes() != wantBytes {
		t.Fatalf("reopen: %d entries / %d bytes, want 5 / %d", s2.Len(), s2.Bytes(), wantBytes)
	}
	for _, h := range hashes {
		if _, err := s2.Get(h); err != nil {
			t.Fatalf("Get(%s) after reopen: %v", h[:8], err)
		}
	}
}

func TestReopenCleansTempFiles(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	e := mkEntry(1)
	if err := s.Put(e); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// Simulate a crash mid-write: a temp file next to a valid entry.
	shard := filepath.Join(dir, e.Hash[:2])
	stale := filepath.Join(shard, e.Hash+".tmp-123456")
	if err := os.WriteFile(stale, []byte("partial"), 0o644); err != nil {
		t.Fatalf("plant temp file: %v", err)
	}
	s.Close()
	s2 := open(t, dir, Options{})
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale temp file survived reopen (stat err %v)", err)
	}
	if s2.Len() != 1 {
		t.Fatalf("reopen found %d entries, want 1", s2.Len())
	}
}

func TestScanReconcilesExternalChanges(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	e1, e2 := mkEntry(1), mkEntry(2)
	for _, e := range []*Entry{e1, e2} {
		if err := s.Put(e); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	// Remove one entry behind the store's back; Scan must notice.
	if err := os.Remove(filepath.Join(dir, e1.Hash[:2], e1.Hash+".json")); err != nil {
		t.Fatalf("external remove: %v", err)
	}
	if err := s.Scan(); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if s.Contains(e1.Hash) || !s.Contains(e2.Hash) {
		t.Fatalf("scan reconciliation wrong: contains e1=%v e2=%v",
			s.Contains(e1.Hash), s.Contains(e2.Hash))
	}
}

func TestBackgroundScannerEnforcesBudget(t *testing.T) {
	dir := t.TempDir()
	one := int64(len(mustMarshal(t, mkEntry(1))))
	s := open(t, dir, Options{MaxBytes: one * 10, ScanInterval: 5 * time.Millisecond})
	for i := 0; i < 5; i++ {
		if err := s.Put(mkEntry(i)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	// Shrink the budget by mutating nothing — instead plant extra entries
	// externally so only the scanner can find them and push usage over.
	for i := 10; i < 30; i++ {
		e := mkEntry(i)
		data := mustMarshal(t, e)
		shard := filepath.Join(dir, e.Hash[:2])
		if err := os.MkdirAll(shard, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(shard, e.Hash+".json"), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := s.Stats(); st.Scans > 0 && st.Bytes <= one*10 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("scanner never enforced budget: %+v", s.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestFsyncOption(t *testing.T) {
	s := open(t, t.TempDir(), Options{Fsync: true})
	e := mkEntry(1)
	if err := s.Put(e); err != nil {
		t.Fatalf("Put with fsync: %v", err)
	}
	if _, err := s.Get(e.Hash); err != nil {
		t.Fatalf("Get after fsynced put: %v", err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := open(t, t.TempDir(), Options{MaxBytes: 1 << 16})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				e := mkEntry(g*100 + i%7)
				if err := s.Put(e); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if _, err := s.Get(e.Hash); err != nil && !errors.Is(err, ErrNotFound) {
					t.Errorf("Get: %v", err)
					return
				}
				s.Contains(e.Hash)
				s.Stats()
			}
		}(g)
	}
	wg.Wait()
}

func mustMarshal(t *testing.T, e *Entry) []byte {
	t.Helper()
	e.Version = EntryVersion
	e.Checksum = e.checksum()
	data, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
