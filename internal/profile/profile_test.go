package profile

import (
	"testing"
	"testing/quick"
)

func TestDistributionBasics(t *testing.T) {
	d := Distribution{{Trip: 10, Count: 3}, {Trip: 20, Count: 1}}
	if d.Executions() != 4 {
		t.Errorf("executions = %d", d.Executions())
	}
	if d.Iterations() != 50 {
		t.Errorf("iterations = %d", d.Iterations())
	}
	if d.Avg() != 12.5 {
		t.Errorf("avg = %f", d.Avg())
	}
	if (Distribution{}).Avg() != 0 {
		t.Error("empty distribution avg != 0")
	}
}

func TestUniform(t *testing.T) {
	d := Uniform(7, 100)
	if d.Avg() != 7 || d.Executions() != 100 {
		t.Errorf("uniform: %+v", d)
	}
}

func TestPGOEstimate(t *testing.T) {
	e := PGO(Uniform(154, 300))
	if !e.Known || e.Avg != 154 {
		t.Errorf("PGO = %+v", e)
	}
	if e.Source == "" {
		t.Error("no source")
	}
}

func TestStaticEstimate(t *testing.T) {
	// No facts: the default assumption.
	e := Static(StaticFacts{})
	if e.Known || e.Avg != DefaultAssumedTrip {
		t.Errorf("default static = %+v", e)
	}
	// A provable array bound caps the estimate.
	e = Static(StaticFacts{ArrayBound: 12})
	if !e.Known || e.Avg != 12 {
		t.Errorf("bounded static = %+v", e)
	}
	// A bound above the assumption does not raise it.
	e = Static(StaticFacts{ArrayBound: 5000})
	if e.Avg != DefaultAssumedTrip {
		t.Errorf("huge bound static = %+v", e)
	}
	// Custom assumption.
	e = Static(StaticFacts{AssumedTrip: 64})
	if e.Avg != 64 {
		t.Errorf("custom assumption = %+v", e)
	}
}

func TestQuickAvgBetweenMinMax(t *testing.T) {
	f := func(trips [4]uint16, counts [4]uint8) bool {
		var d Distribution
		min, max := int64(1<<30), int64(0)
		for i := range trips {
			trip := int64(trips[i]%1000) + 1
			count := int64(counts[i]%50) + 1
			d = append(d, TripSample{Trip: trip, Count: count})
			if trip < min {
				min = trip
			}
			if trip > max {
				max = trip
			}
		}
		avg := d.Avg()
		return avg >= float64(min) && avg <= float64(max)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
