// Package profile supplies trip-count information to the compiler driver:
// exact averages from PGO block-count profiles (computed on the *training*
// input, which is how the paper's 177.mesa train/reference divergence
// arises) and heuristic static estimates used when PGO is off, whose
// accuracy is deliberately low (paper Sec. 4.3: "the accuracy of this
// static profile, and in particular of the trip count estimates, is
// naturally low").
package profile

import "fmt"

// TripSample is one observed (or modeled) loop execution class: the loop
// ran Count times with trip-count Trip.
type TripSample struct {
	Trip  int64
	Count int64
}

// Distribution is a trip-count distribution over loop executions.
type Distribution []TripSample

// Executions returns the total number of loop executions.
func (d Distribution) Executions() int64 {
	var n int64
	for _, s := range d {
		n += s.Count
	}
	return n
}

// Iterations returns the total number of loop iterations.
func (d Distribution) Iterations() int64 {
	var n int64
	for _, s := range d {
		n += s.Trip * s.Count
	}
	return n
}

// Avg returns the average trip count over executions, the quantity a
// block-count profile yields (total iterations / total entries).
func (d Distribution) Avg() float64 {
	ex := d.Executions()
	if ex == 0 {
		return 0
	}
	return float64(d.Iterations()) / float64(ex)
}

// Uniform returns a distribution where every execution has the same trip.
func Uniform(trip, count int64) Distribution {
	return Distribution{{Trip: trip, Count: count}}
}

// Estimate is the compiler's belief about a loop's trip count.
type Estimate struct {
	// Avg is the estimated average trip count; 0 when nothing is known.
	Avg float64
	// Known reports whether the estimate is backed by a profile or a
	// provable bound (rather than a bare guess).
	Known bool
	// Source describes where the estimate came from.
	Source string
}

// StaticFacts are the compile-time facts static estimation can use
// (paper Sec. 3.2): provable array bounds and outer-loop contiguity.
type StaticFacts struct {
	// ArrayBound is a provable maximum trip count from static array
	// sizes; 0 when unknown.
	ArrayBound int64
	// AssumedTrip is the front end's default guess for loops with no
	// information (the usual compiler heuristic of "loops iterate ~100
	// times"). Zero means 100.
	AssumedTrip float64
}

// DefaultAssumedTrip is the static profile's guess for unknown loops.
const DefaultAssumedTrip = 100

// PGO returns the estimate a dynamic profile of the training input gives:
// the exact training average.
func PGO(train Distribution) Estimate {
	return Estimate{Avg: train.Avg(), Known: true, Source: "pgo(train)"}
}

// Static returns the heuristic estimate used without PGO.
func Static(f StaticFacts) Estimate {
	assumed := f.AssumedTrip
	if assumed <= 0 {
		assumed = DefaultAssumedTrip
	}
	if f.ArrayBound > 0 && float64(f.ArrayBound) < assumed {
		return Estimate{Avg: float64(f.ArrayBound), Known: true,
			Source: fmt.Sprintf("static(array-bound %d)", f.ArrayBound)}
	}
	return Estimate{Avg: assumed, Known: false, Source: "static(assumed)"}
}
