// Package sched defines the Scheduler interface the pipeliner's II
// search sits behind, plus the backend registry. The interface captures
// exactly what package core's pipeline needs from a scheduler: a
// fixed-II scheduling entry point and a full II search that runs the
// paper's fallback ladder (Sec. 3.3) at each candidate II.
//
// Two backends ship in-tree: the production `heuristic` backend (this
// package; iterative modulo scheduling + the speculative/sequential II
// search, byte-identical to the pre-interface pipeline) and the `exact`
// branch-and-bound backend in sched/exact, which proves II-optimality
// for small loops and doubles as the `oracle` backend measuring the
// heuristic's optimality gap.
package sched

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"ltsp/internal/ddg"
	"ltsp/internal/ir"
	"ltsp/internal/machine"
	"ltsp/internal/modsched"
	"ltsp/internal/obs"
)

// DefaultParallelism returns the speculative II-search width for callers
// that want the search as wide as the machine allows: the current
// GOMAXPROCS setting.
func DefaultParallelism() int { return runtime.GOMAXPROCS(0) }

// Request bundles the read-only inputs of one II search. Every field is
// immutable during the search, which is what makes speculative attempts
// safe: scheduling, register allocation, and code generation never
// mutate the loop, graph, machine model, or latency policies, and the
// graph's cycle memo is warmed (or left untouched) before the search
// starts.
type Request struct {
	// Loop is the (HLO-processed) source loop; Graph.Loop aliases it.
	Loop *ir.Loop
	// Model is the target processor.
	Model *machine.Model
	// Graph is the dependence graph over Loop.Body.
	Graph *ddg.Graph
	// PolLat is the policy (hint-derived) latency function; BaseLat the
	// base-latency function the reduced-latency fallback rung retries
	// with.
	PolLat, BaseLat ddg.LatencyFn
	// MinII and MaxII bound the II search (inclusive).
	MinII, MaxII int
	// BudgetRatio is passed to the modulo scheduler (placement budget).
	BudgetRatio int
	// Parallelism bounds how many candidate IIs a backend may attempt
	// concurrently; values <= 1 request the sequential search. Backends
	// that only implement a sequential search may ignore it.
	Parallelism int
	// HaveBoost arms the reduced-latency fallback rung: it is set when
	// the latency-tolerant policy (or delinquent-load boosting) actually
	// raised any latency above base, so there is something to roll back.
	HaveBoost bool
}

// Candidate is the caller's verdict on one schedule: the Finisher ran
// register allocation and code generation on it and reports whether the
// attempt completed, and if not, whether the failure was an
// allocation-class failure (which arms the reduced-latency rung).
type Candidate struct {
	// Done marks a completed attempt; Payload carries the caller's
	// compiled artifacts (opaque to the scheduler).
	Done    bool
	Payload any
	// AllocFailed marks a register-allocation-class failure: the
	// fallback ladder may retry the same II with reduced latencies.
	AllocFailed bool
	// Err is the failure, if any; the search reports the last one seen
	// when every II fails.
	Err error
}

// Finisher runs the caller's post-scheduling pipeline (register
// allocation + code generation) on a schedule produced at the given II.
// reduced marks the reduced-latency rung. Decision events go to tr —
// the main trace in a sequential search, a private buffer in a
// speculative attempt — exactly as the scheduler's own events do.
//
// A Finisher must be safe for concurrent calls and must depend only on
// its arguments and read-only state, so a speculative attempt at II k
// is bit-identical to a sequential attempt at II k.
type Finisher func(ii int, s *modsched.Schedule, reduced bool, tr *obs.Trace) Candidate

// Result is the outcome of a Search.
type Result struct {
	// Found reports whether any II in [MinII, MaxII] completed.
	Found bool
	// II is the winning initiation interval (when Found).
	II int
	// Sched is the winning schedule (when Found).
	Sched *modsched.Schedule
	// Payload is the winning Candidate's payload (when Found).
	Payload any
	// Reduced records that the winning attempt used the reduced-latency
	// rung.
	Reduced bool
	// Attempts counts individual placement operations across the whole
	// search (the paper's compile-time cost metric).
	Attempts int
	// Proven reports that II is *provably* optimal: either II == MinII
	// (it meets the lower bound) or the backend proved every lower II
	// infeasible. The heuristic backend can only prove the former.
	Proven bool
	// LastErr is the last allocation/codegen failure recorded when the
	// search fails (nil when Found, or when only scheduling failed).
	LastErr error
}

// Scheduler is a pluggable scheduling backend. Implementations must be
// deterministic: the same Request must always produce the same result,
// attempts, and trace events.
type Scheduler interface {
	// Name returns the backend's registered name.
	Name() string
	// ScheduleAtII tries to schedule the loop at a fixed II under the
	// latency policy latf, emitting its decision events to tr. It
	// returns nil, false when no schedule was found at this II. ctx is
	// advisory: a backend with long per-II solves must observe it and
	// give up (nil, false) once the context is done.
	ScheduleAtII(ctx context.Context, req *Request, ii int, latf ddg.LatencyFn, tr *obs.Trace) (*modsched.Schedule, bool)
	// Search runs the full II search with the fallback ladder, calling
	// finish on every schedule it produces and committing the lowest
	// feasible II. The search checks ctx between candidate IIs.
	Search(ctx context.Context, req *Request, tr *obs.Trace, finish Finisher) Result
}

// BackendHeuristic, BackendExact, and BackendOracle are the names of the
// in-tree backends. The empty string selects the heuristic.
const (
	BackendHeuristic = "heuristic"
	BackendExact     = "exact"
	BackendOracle    = "oracle"
)

var (
	regMu    sync.RWMutex
	registry = map[string]func() Scheduler{}
)

// Register installs a backend factory under name. Factories return a
// fresh Scheduler per compilation, so a backend may keep per-search
// state (the exact backend tracks whether any attempt fell back to the
// heuristic, which would void its optimality proof). Register panics on
// a duplicate name; it is intended for init-time use.
func Register(name string, factory func() Scheduler) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("sched: duplicate backend %q", name))
	}
	registry[name] = factory
}

// New returns a fresh Scheduler for the named backend. The empty string
// and "heuristic" select the production heuristic backend. Unknown
// names return an error listing the registered backends.
func New(name string) (Scheduler, error) {
	if name == "" || name == BackendHeuristic {
		return Heuristic(), nil
	}
	regMu.RLock()
	factory := registry[name]
	regMu.RUnlock()
	if factory == nil {
		return nil, fmt.Errorf("sched: unknown scheduler backend %q (have %v)", name, Backends())
	}
	return factory(), nil
}

// Backends returns the sorted names of every selectable backend.
func Backends() []string {
	regMu.RLock()
	names := make([]string, 0, len(registry)+1)
	names = append(names, BackendHeuristic)
	for n := range registry {
		names = append(names, n)
	}
	regMu.RUnlock()
	sort.Strings(names)
	return names
}
