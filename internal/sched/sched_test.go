package sched_test

import (
	"strings"
	"testing"

	"ltsp/internal/sched"

	// Register the exact and oracle backends for the registry tests.
	_ "ltsp/internal/sched/exact"
)

// TestNewResolvesBackends: the empty string and "heuristic" share the
// production backend; the registered names resolve to fresh instances;
// unknown names fail with the selectable set in the message.
func TestNewResolvesBackends(t *testing.T) {
	for _, name := range []string{"", sched.BackendHeuristic} {
		s, err := sched.New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if s.Name() != sched.BackendHeuristic {
			t.Fatalf("New(%q).Name() = %q, want %q", name, s.Name(), sched.BackendHeuristic)
		}
	}
	for _, name := range []string{sched.BackendExact, sched.BackendOracle} {
		s, err := sched.New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Fatalf("New(%q).Name() = %q", name, s.Name())
		}
		// Factories hand out fresh instances: per-search state (the exact
		// backend's fallback tracking) must not be shared across compiles.
		s2, _ := sched.New(name)
		if s == s2 {
			t.Fatalf("New(%q) returned a shared instance", name)
		}
	}
	_, err := sched.New("simplex")
	if err == nil {
		t.Fatal("New with an unknown backend succeeded")
	}
	for _, want := range []string{"simplex", sched.BackendHeuristic, sched.BackendExact, sched.BackendOracle} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("unknown-backend error %q does not mention %q", err, want)
		}
	}
}

// TestBackendsSorted: the selectable set is sorted and includes every
// in-tree backend exactly once.
func TestBackendsSorted(t *testing.T) {
	names := sched.Backends()
	seen := map[string]int{}
	for i, n := range names {
		seen[n]++
		if i > 0 && names[i-1] >= n {
			t.Fatalf("Backends() not sorted: %v", names)
		}
	}
	for _, want := range []string{sched.BackendHeuristic, sched.BackendExact, sched.BackendOracle} {
		if seen[want] != 1 {
			t.Fatalf("Backends() = %v, want %q exactly once", names, want)
		}
	}
}

// TestRegisterDuplicatePanics: backend names are claimed once, at init
// time; a second registration is a programming error.
func TestRegisterDuplicatePanics(t *testing.T) {
	factory := func() sched.Scheduler { s, _ := sched.New(""); return s }
	sched.Register("sched-test-dup", factory)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	sched.Register("sched-test-dup", factory)
}

// TestDefaultParallelism pins the GOMAXPROCS-derived width as positive.
func TestDefaultParallelism(t *testing.T) {
	if p := sched.DefaultParallelism(); p < 1 {
		t.Fatalf("DefaultParallelism() = %d", p)
	}
}
