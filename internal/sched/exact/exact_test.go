package exact_test

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"ltsp/internal/core"
	"ltsp/internal/ddg"
	"ltsp/internal/hlo"
	"ltsp/internal/ir"
	"ltsp/internal/machine"
	"ltsp/internal/modsched"
	"ltsp/internal/obs"
	"ltsp/internal/sched"
	"ltsp/internal/sched/exact"
	"ltsp/internal/verify"
	"ltsp/internal/workload"
)

// copyAddLoop is the paper's Fig. 1 running example: a resource-bound
// loop with no recurrence, schedulable at II = 1.
func copyAddLoop() *ir.Loop {
	l := ir.NewLoop("copy-add")
	v, src, dst, r, k := l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR()
	ld := ir.Ld(v, src, 4, 4)
	ld.Mem.Stride, ld.Mem.StrideBytes = ir.StrideUnit, 4
	l.Append(ld)
	l.Append(ir.Add(r, v, k))
	st := ir.St(dst, r, 4, 4)
	st.Mem.Stride, st.Mem.StrideBytes = ir.StrideUnit, 4
	l.Append(st)
	l.Init(src, 0x100000)
	l.Init(dst, 0x200000)
	l.Init(k, 1)
	l.LiveOut = []ir.Reg{src, dst}
	return l
}

// fpAccumLoop carries an FP accumulator through an FAdd whose latency
// dominates every resource bound: RecMII = FP latency > ResMII.
func fpAccumLoop() *ir.Loop {
	l := ir.NewLoop("fp-accum")
	src := l.NewGR()
	v, acc := l.NewFR(), l.NewFR()
	ld := ir.LdF(v, src, 8)
	ld.Mem.Stride, ld.Mem.StrideBytes = ir.StrideUnit, 8
	l.Append(ld)
	l.Append(ir.FAdd(acc, acc, v))
	l.Init(src, 0x100000)
	l.InitF(acc, 0)
	l.LiveOut = []ir.Reg{acc}
	return l
}

// buildReq assembles a sched.Request the way the pipeline does, with
// base latencies for both rungs (the ladder shape is irrelevant to
// these tests).
func buildReq(t *testing.T, l *ir.Loop) *sched.Request {
	t.Helper()
	if err := l.Verify(); err != nil {
		t.Fatal(err)
	}
	m := machine.Itanium2()
	g, err := ddg.Build(l)
	if err != nil {
		t.Fatal(err)
	}
	lat := core.BaseLatFn(m)
	minII := modsched.ResMII(m, l.Body)
	if rec := g.RecMII(lat); rec > minII {
		minII = rec
	}
	return &sched.Request{
		Loop: l, Model: m, Graph: g,
		PolLat: lat, BaseLat: lat,
		MinII: minII, MaxII: 2*minII + 16,
	}
}

// acceptAll is a Finisher that accepts every schedule, so the search's
// own behavior is observable without register allocation in the way.
func acceptAll(ii int, s *modsched.Schedule, reduced bool, tr *obs.Trace) sched.Candidate {
	return sched.Candidate{Done: true}
}

// traceEvents filters a trace down to one event kind.
func traceEvents(tr *obs.Trace, kind string) []obs.Event {
	var out []obs.Event
	for _, e := range tr.Events() {
		if e.Kind() == kind {
			out = append(out, e)
		}
	}
	return out
}

// TestExactNeverWorseOnWorkloads is the acceptance sweep: every loop of
// all 55 workload models compiles under the exact backend, achieves an
// II no worse than the heuristic's, produces a semantically equivalent
// kernel (cross-backend differential oracle), and — when the whole
// search stayed inside the solver's budget — carries an II-optimality
// proof that the heuristic's equal II corroborates.
func TestExactNeverWorseOnWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("exact sweep over 55 models is not short")
	}
	m := machine.Itanium2()
	benches := workload.All()
	if len(benches) != 55 {
		t.Fatalf("workload.All() = %d models, want 55", len(benches))
	}
	proven, swept := 0, 0
	for _, b := range benches {
		for i := range b.Loops {
			spec := &b.Loops[i]
			compile := func(backend string, tr *obs.Trace) (*core.Compiled, error) {
				l := spec.Gen()
				if _, err := hlo.Apply(l, hlo.Options{Model: m, Mode: hlo.ModeHLO, Prefetch: true}); err != nil {
					t.Fatalf("%s: hlo: %v", spec.Name, err)
				}
				return core.Pipeline(l, core.Options{
					Model:           m,
					LatencyTolerant: true,
					BoostDelinquent: true,
					Backend:         backend,
					Trace:           tr,
				})
			}
			heur, herr := compile(sched.BackendHeuristic, nil)
			tr := obs.New()
			ex, xerr := compile(sched.BackendExact, tr)
			if herr != nil {
				// The heuristic could not compile this loop at all; the
				// exact backend owes nothing here.
				continue
			}
			if xerr != nil {
				t.Errorf("%s: exact backend failed where heuristic succeeded: %v", spec.Name, xerr)
				continue
			}
			swept++
			if ex.FinalII > heur.FinalII {
				t.Errorf("%s: exact II %d worse than heuristic II %d", spec.Name, ex.FinalII, heur.FinalII)
			}
			if ex.Backend != sched.BackendExact {
				t.Errorf("%s: Compiled.Backend = %q, want %q", spec.Name, ex.Backend, sched.BackendExact)
			}
			if ex.ProvenII {
				proven++
				// A proof must never outlive a heuristic fallback unless
				// the winner trivially meets the MinII lower bound.
				if len(traceEvents(tr, "exact-fallback")) > 0 && ex.IIBumps > 0 {
					t.Errorf("%s: proof survived a fallback with %d II bumps", spec.Name, ex.IIBumps)
				}
			}
			if err := verify.Backends(heur.Loop(), heur.Program, ex.Program, verify.Config{Seed: 7}); err != nil {
				t.Errorf("%s: backend divergence: %v", spec.Name, err)
			}
		}
	}
	if swept == 0 {
		t.Fatal("no loops swept")
	}
	if proven == 0 {
		t.Error("exact backend proved optimality for zero loops across the whole workload")
	}
	t.Logf("swept %d loops, %d with proven-optimal II", swept, proven)
}

// TestExactIIOne: a resource-light, recurrence-free loop schedules at
// II = 1 and the result is provably optimal (II meets the lower bound).
func TestExactIIOne(t *testing.T) {
	c, err := core.Pipeline(copyAddLoop(), core.Options{Backend: sched.BackendExact})
	if err != nil {
		t.Fatal(err)
	}
	if c.FinalII != 1 {
		t.Fatalf("FinalII = %d, want 1", c.FinalII)
	}
	if !c.ProvenII {
		t.Fatal("II = 1 not marked proven")
	}
	if err := verify.Kernel(c.Loop(), c.Program, verify.Config{Seed: 3}); err != nil {
		t.Fatalf("kernel semantics: %v", err)
	}
}

// TestExactRecMIIDominated: an FP accumulator recurrence sets
// RecMII > ResMII; the exact backend lands exactly on the recurrence
// bound and proves it.
func TestExactRecMIIDominated(t *testing.T) {
	l := fpAccumLoop()
	m := machine.Itanium2()
	g, err := ddg.Build(l)
	if err != nil {
		t.Fatal(err)
	}
	lat := core.BaseLatFn(m)
	recII := g.RecMII(lat)
	resII := modsched.ResMII(m, l.Body)
	g.Release()
	if recII <= resII {
		t.Fatalf("test premise broken: RecMII %d <= ResMII %d", recII, resII)
	}
	c, err := core.Pipeline(fpAccumLoop(), core.Options{Backend: sched.BackendExact})
	if err != nil {
		t.Fatal(err)
	}
	if c.FinalII != recII {
		t.Fatalf("FinalII = %d, want RecMII %d", c.FinalII, recII)
	}
	if !c.ProvenII {
		t.Fatal("recurrence-bound II not marked proven")
	}
}

// TestExactOverBudgetFallsBack: loops or IIs beyond the solver's size
// budget are handed to the heuristic per-II with an exact-fallback
// trace event — never an error — and the optimality proof is withheld.
func TestExactOverBudgetFallsBack(t *testing.T) {
	cases := []struct {
		name   string
		lim    exact.Limits
		reason string
	}{
		{"body-size", exact.Limits{MaxBody: 1, MaxII: 64, MaxNodes: 400_000}, "body-size"},
		{"ii-budget", exact.Limits{MaxBody: 24, MaxII: 0, MaxNodes: 400_000}, "ii-budget"},
		{"node-budget", exact.Limits{MaxBody: 24, MaxII: 64, MaxNodes: 1}, "node-budget"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l := copyAddLoop()
			req := buildReq(t, l)
			defer req.Graph.Release()
			backend := exact.NewWithLimits(tc.lim)
			tr := obs.New()
			r := backend.Search(context.Background(), req, tr, acceptAll)
			if !r.Found {
				t.Fatalf("over-budget search failed outright (lastErr %v); want heuristic fallback", r.LastErr)
			}
			evs := traceEvents(tr, "exact-fallback")
			if len(evs) == 0 {
				t.Fatal("no exact-fallback event in trace")
			}
			fb := evs[0].(obs.ExactFallbackEvent)
			if fb.Reason != tc.reason {
				t.Fatalf("fallback reason = %q, want %q", fb.Reason, tc.reason)
			}
			// A fallback voids the optimality proof unless the winner
			// already meets the MinII lower bound.
			if r.Proven && r.II != req.MinII {
				t.Fatalf("proof survived a fallback at II %d > MinII %d", r.II, req.MinII)
			}
		})
	}
}

// TestExactInfeasibleBelowRecMII: the solver refutes IIs below the
// recurrence bound unconditionally (negative-cycle detection, not
// search exhaustion).
func TestExactInfeasibleBelowRecMII(t *testing.T) {
	l := fpAccumLoop()
	req := buildReq(t, l)
	defer req.Graph.Release()
	if req.MinII < 2 {
		t.Fatalf("test premise broken: MinII %d leaves no II to refute", req.MinII)
	}
	sol, st, stats := exact.SolveMin(context.Background(), req.Model, req.Graph, req.MinII-1, req.PolLat, exact.DefaultLimits())
	if st != exact.StatusInfeasible || sol != nil {
		t.Fatalf("II %d below RecMII: status %v, want infeasible", req.MinII-1, st)
	}
	if stats.Reason != "" {
		t.Fatalf("infeasible verdict carried an unknown-reason %q", stats.Reason)
	}
}

// TestExactLifetimeMinimized: SolveMin's schedule carries the lifetime
// it reports, and with an ample budget the minimum is proven.
func TestExactLifetimeMinimized(t *testing.T) {
	l := copyAddLoop()
	req := buildReq(t, l)
	defer req.Graph.Release()
	sol, st, stats := exact.SolveMin(context.Background(), req.Model, req.Graph, req.MinII, req.PolLat, exact.DefaultLimits())
	if st != exact.StatusFeasible {
		t.Fatalf("status %v, want feasible", st)
	}
	if got := exact.MaxLifetime(req.Graph, sol); got != stats.MaxLife {
		t.Fatalf("schedule lifetime %d != reported %d", got, stats.MaxLife)
	}
	if !stats.LifeProven {
		t.Fatalf("lifetime %d not proven minimal within a %d-node budget", stats.MaxLife, exact.DefaultLimits().MaxNodes)
	}
	if err := sol.Validate(req.Model, req.Graph, req.PolLat); err != nil {
		t.Fatalf("exact schedule fails the modulo-constraint validator: %v", err)
	}
}

// TestExactCancellation: a pre-canceled context turns a solve undecided
// ("deadline"), makes ScheduleAtII give up without falling back, fails
// the whole compilation with the context's error, and leaks no
// goroutines. Run with -race.
func TestExactCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	l := copyAddLoop()
	req := buildReq(t, l)
	defer req.Graph.Release()

	// Solver level: undecided with the deadline reason, not a bogus verdict.
	_, st, stats := exact.SolveMin(ctx, req.Model, req.Graph, req.MinII, req.PolLat, exact.DefaultLimits())
	if st != exact.StatusUnknown || stats.Reason != "deadline" {
		t.Fatalf("canceled solve: status %v reason %q, want unknown/deadline", st, stats.Reason)
	}

	// Backend level: no schedule, no heuristic fallback (the search loop
	// must observe ctx, not mask it).
	tr := obs.New()
	backend := exact.New()
	if s, ok := backend.ScheduleAtII(ctx, req, req.MinII, req.PolLat, tr); ok || s != nil {
		t.Fatal("canceled ScheduleAtII produced a schedule")
	}
	if evs := traceEvents(tr, "exact-fallback"); len(evs) != 0 {
		t.Fatalf("canceled ScheduleAtII fell back to the heuristic: %v", evs)
	}

	// Pipeline level: the compilation fails with the context's error.
	before := runtime.NumGoroutine()
	_, err := core.PipelineCtx(ctx, copyAddLoop(), core.Options{Backend: sched.BackendExact})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled exact compile: err = %v, want context.Canceled in the chain", err)
	}
	for i := 0; runtime.NumGoroutine() > before && i < 50; i++ {
		time.Sleep(2 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked across canceled exact compile: %d -> %d", before, after)
	}
}

// TestExactDeadlineMidSearch: a deadline that expires while the solver
// runs must surface as a cancellation error or a completed result —
// never a hang, panic, or leak.
func TestExactDeadlineMidSearch(t *testing.T) {
	spec := &workload.All()[0].Loops[0]
	for _, d := range []time.Duration{time.Microsecond, 50 * time.Microsecond, 5 * time.Millisecond} {
		ctx, cancel := context.WithTimeout(context.Background(), d)
		l := spec.Gen()
		if _, err := hlo.Apply(l, hlo.Options{Model: machine.Itanium2(), Mode: hlo.ModeHLO}); err != nil {
			t.Fatal(err)
		}
		c, err := core.PipelineCtx(ctx, l, core.Options{Backend: sched.BackendExact, LatencyTolerant: true})
		cancel()
		if err != nil && !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("deadline %v: unexpected error class: %v", d, err)
		}
		if err == nil && c.FinalII <= 0 {
			t.Fatalf("deadline %v: completed compile has II %d", d, c.FinalII)
		}
	}
}

// TestOracleMeasuresWithoutMeddling: the oracle backend returns the
// heuristic's artifact bit-identically and appends an oracle-gap event
// with a sane measurement.
func TestOracleMeasuresWithoutMeddling(t *testing.T) {
	spec := &workload.All()[0].Loops[0]
	m := machine.Itanium2()
	compile := func(backend string, tr *obs.Trace) *core.Compiled {
		l := spec.Gen()
		if _, err := hlo.Apply(l, hlo.Options{Model: m, Mode: hlo.ModeHLO, Prefetch: true}); err != nil {
			t.Fatal(err)
		}
		c, err := core.Pipeline(l, core.Options{
			Model: m, LatencyTolerant: true, Backend: backend, Trace: tr,
		})
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		return c
	}
	heur := compile(sched.BackendHeuristic, nil)
	tr := obs.New()
	oc := compile(sched.BackendOracle, tr)

	if oc.FinalII != heur.FinalII || oc.Stages != heur.Stages || oc.Attempts != heur.Attempts {
		t.Fatalf("oracle changed the artifact: II %d/%d stages %d/%d attempts %d/%d",
			oc.FinalII, heur.FinalII, oc.Stages, heur.Stages, oc.Attempts, heur.Attempts)
	}
	if !reflect.DeepEqual(oc.Schedule, heur.Schedule) {
		t.Fatal("oracle schedule differs from heuristic schedule")
	}
	if oc.Backend != sched.BackendOracle {
		t.Fatalf("Compiled.Backend = %q, want %q", oc.Backend, sched.BackendOracle)
	}
	evs := traceEvents(tr, "oracle-gap")
	if len(evs) != 1 {
		t.Fatalf("oracle trace has %d oracle-gap events, want 1", len(evs))
	}
	gap := evs[0].(obs.OracleGapEvent)
	if gap.HeurII != heur.FinalII {
		t.Fatalf("gap.HeurII = %d, want %d", gap.HeurII, heur.FinalII)
	}
	if gap.ExactII > gap.HeurII || gap.ExactII < 1 {
		t.Fatalf("gap.ExactII = %d out of range (HeurII %d)", gap.ExactII, gap.HeurII)
	}
	if gap.Proven && gap.ExactII == oc.FinalII && !oc.ProvenII {
		t.Fatal("proven zero-gap did not upgrade ProvenII")
	}
}

// TestBackendsDifferentialOracle: verify.Backends accepts heuristic and
// exact kernels of the same loop, and rejects kernels of different
// loops (memory divergence).
func TestBackendsDifferentialOracle(t *testing.T) {
	spec := &workload.All()[0].Loops[0]
	m := machine.Itanium2()
	compile := func(backend string) *core.Compiled {
		l := spec.Gen()
		if _, err := hlo.Apply(l, hlo.Options{Model: m, Mode: hlo.ModeHLO, Prefetch: true}); err != nil {
			t.Fatal(err)
		}
		c, err := core.Pipeline(l, core.Options{Model: m, LatencyTolerant: true, Backend: backend})
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		return c
	}
	heur, ex := compile(sched.BackendHeuristic), compile(sched.BackendExact)
	if err := verify.Backends(heur.Loop(), heur.Program, ex.Program, verify.Config{Seed: 11}); err != nil {
		t.Fatalf("equivalent backends flagged divergent: %v", err)
	}
	if err := verify.Backends(heur.Loop(), heur.Program, nil, verify.Config{}); err == nil {
		t.Fatal("nil program accepted by the cross-check")
	}
}
