// Package exact implements an exact modulo scheduler for small loops:
// a branch-and-bound search over schedule times at a fixed II with
// difference-constraint bounds propagation, proving feasibility or
// infeasibility of each candidate II and minimizing the maximum
// register lifetime as a tiebreak. It registers itself as the "exact"
// and "oracle" backends of package sched.
//
// The solver decides feasibility within the standard scheduling window
// of optimal modulo-scheduling formulations: each operation's start
// time is restricted to [est(i), est(i) + n·II], where est is the
// longest-path earliest start implied by the dependence difference
// constraints t[to] ≥ t[from] + latency − II·distance and n is the body
// size. An II whose constraint graph carries a positive-weight cycle is
// infeasible outright (the recurrence bound); otherwise "infeasible"
// means no schedule exists inside the window. Solves are bounded by a
// node budget and the caller's context deadline; exhausting either
// yields an undecided verdict, never a wrong proof.
package exact

import (
	"context"

	"ltsp/internal/ddg"
	"ltsp/internal/machine"
	"ltsp/internal/modsched"
)

// Status is the verdict of one fixed-II solve.
type Status int

const (
	// StatusInfeasible: no schedule exists at this II (within the
	// solver's scheduling window).
	StatusInfeasible Status = iota
	// StatusFeasible: a schedule was found.
	StatusFeasible
	// StatusUnknown: the node budget or deadline ran out undecided.
	StatusUnknown
)

// String names the status using the obs-event vocabulary.
func (s Status) String() string {
	switch s {
	case StatusFeasible:
		return "feasible"
	case StatusInfeasible:
		return "infeasible"
	default:
		return "unknown"
	}
}

// Limits bounds the exact solver. Loops or IIs beyond the size caps are
// handed to the heuristic backend; node/deadline exhaustion turns a
// solve undecided.
type Limits struct {
	// MaxBody caps the loop body size (instruction count).
	MaxBody int
	// MaxII caps the candidate II the solver will attempt.
	MaxII int
	// MaxNodes caps branch-and-bound node expansions across one SolveMin
	// call (the base solve plus all lifetime-tightening re-solves).
	MaxNodes int64
}

// DefaultLimits returns the production size budget of the exact backend.
func DefaultLimits() Limits {
	return Limits{MaxBody: 24, MaxII: 64, MaxNodes: 400_000}
}

// Stats reports what one SolveMin spent and proved.
type Stats struct {
	// Nodes is the number of branch-and-bound nodes expanded.
	Nodes int64
	// MaxLife is the maximum register lifetime of the returned schedule
	// (-1 when no schedule was found).
	MaxLife int
	// LifeProven reports that MaxLife is provably minimal at this II.
	LifeProven bool
	// Reason names why a solve came back StatusUnknown: "node-budget" or
	// "deadline".
	Reason string
}

// MaxLifetime returns the maximum register lifetime of the schedule:
// the longest def-to-use span t[to] + II·distance − t[from] over the
// graph's register flow dependences. Rotating allocation must dedicate
// roughly lifetime/II registers to a value, so this is the
// register-pressure objective the tiebreak minimizes.
func MaxLifetime(g *ddg.Graph, s *modsched.Schedule) int {
	life := 0
	for i := range g.Edges {
		e := &g.Edges[i]
		if e.Kind != ddg.DepFlow {
			continue
		}
		if v := s.Time[e.To] + s.II*e.Distance - s.Time[e.From]; v > life {
			life = v
		}
	}
	return life
}

// cons is one difference constraint t[to] >= t[from] + w.
type cons struct {
	from, to, w int
}

// trailEntry records a bounds change for backtracking.
type trailEntry struct {
	v      int
	lo, hi int
}

type rowUse struct {
	perPort [machine.NumPorts]int
	total   int
}

type solver struct {
	m  *machine.Model
	g  *ddg.Graph
	ii int
	n  int

	cons    []cons
	outCons [][]int // constraint indices by from
	inCons  [][]int // constraint indices by to

	lo, hi     []int
	time       []int
	port       []machine.Port
	assigned   []bool
	unassigned int
	rows       []rowUse
	trail      []trailEntry

	ctx      context.Context
	nodes    *int64
	maxNodes int64
	stopped  bool
	deadline bool
}

// pickCountCap bounds how many placement options pickVar counts per
// variable: the search only needs the most-constrained variable, so
// domains are "large enough" past this many options.
const pickCountCap = 8

// newSolver builds the constraint system at one II. maxLife >= 0 adds
// the lifetime-tightening constraints t[from] >= t[to] + II·d − maxLife
// for every register flow edge.
func newSolver(ctx context.Context, m *machine.Model, g *ddg.Graph, ii int, latf ddg.LatencyFn, maxLife int, nodes *int64, maxNodes int64) *solver {
	n := len(g.Loop.Body)
	s := &solver{
		m: m, g: g, ii: ii, n: n,
		lo:       make([]int, n),
		hi:       make([]int, n),
		time:     make([]int, n),
		port:     make([]machine.Port, n),
		assigned: make([]bool, n),
		rows:     make([]rowUse, ii),
		ctx:      ctx,
		nodes:    nodes,
		maxNodes: maxNodes,
	}
	s.unassigned = n
	for i := range g.Edges {
		e := &g.Edges[i]
		s.cons = append(s.cons, cons{from: e.From, to: e.To, w: g.Latency(e, latf) - ii*e.Distance})
		if maxLife >= 0 && e.Kind == ddg.DepFlow {
			// t[to] + ii·d − t[from] <= maxLife  ⇔  t[from] >= t[to] + ii·d − maxLife
			s.cons = append(s.cons, cons{from: e.To, to: e.From, w: ii*e.Distance - maxLife})
		}
	}
	s.outCons = make([][]int, n)
	s.inCons = make([][]int, n)
	for ci, c := range s.cons {
		s.outCons[c.from] = append(s.outCons[c.from], ci)
		s.inCons[c.to] = append(s.inCons[c.to], ci)
	}
	// Reserve the loop-closing branch in the last kernel row, exactly as
	// the heuristic's reservation table does.
	s.rows[ii-1].perPort[machine.PortB]++
	s.rows[ii-1].total++
	return s
}

// initBounds computes est by longest-path relaxation (Bellman-Ford over
// the difference constraints), widens each window to est + n·II, and
// tightens lst backward. It reports false when the constraint graph has
// a positive-weight cycle or a window empties — both proofs of
// infeasibility for this constraint system.
func (s *solver) initBounds() bool {
	for pass := 0; pass <= s.n; pass++ {
		changed := false
		for _, c := range s.cons {
			if v := s.lo[c.from] + c.w; v > s.lo[c.to] {
				s.lo[c.to] = v
				changed = true
			}
		}
		if !changed {
			break
		}
		if pass == s.n {
			return false // positive cycle: II (or lifetime cap) infeasible
		}
	}
	for i := 0; i < s.n; i++ {
		s.hi[i] = s.lo[i] + s.n*s.ii
	}
	for pass := 0; pass <= s.n; pass++ {
		changed := false
		for _, c := range s.cons {
			if v := s.hi[c.to] - c.w; v < s.hi[c.from] {
				s.hi[c.from] = v
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for i := 0; i < s.n; i++ {
		if s.lo[i] > s.hi[i] {
			return false
		}
	}
	return true
}

// portOptions writes the ports op v could occupy at time t into buf and
// returns how many there are, honoring current row occupancy. A-type
// operations prefer an I unit and fall back to M, matching the
// heuristic's preference so exact schedules look familiar.
func (s *solver) portOptions(v, t int, buf *[2]machine.Port) int {
	r := &s.rows[t%s.ii]
	if r.total >= s.m.IssueWidth {
		return 0
	}
	port, aType := s.m.PortOf(s.g.Loop.Body[v].Op)
	k := 0
	if aType {
		if r.perPort[machine.PortI] < s.m.Units[machine.PortI] {
			buf[k] = machine.PortI
			k++
		}
		if r.perPort[machine.PortM] < s.m.Units[machine.PortM] {
			buf[k] = machine.PortM
			k++
		}
		return k
	}
	if r.perPort[port] < s.m.Units[port] {
		buf[k] = port
		k++
	}
	return k
}

// pickVar returns the unassigned variable with the fewest feasible
// placements (first-fail ordering) and that count, capped at
// pickCountCap. count == 0 proves the current node is a dead end.
func (s *solver) pickVar() (v, count int) {
	v, count = -1, pickCountCap+1
	var buf [2]machine.Port
	for i := 0; i < s.n; i++ {
		if s.assigned[i] {
			continue
		}
		c := 0
		for t := s.lo[i]; t <= s.hi[i] && c < pickCountCap; t++ {
			if s.portOptions(i, t, &buf) > 0 {
				c++
			}
		}
		if c < count {
			v, count = i, c
			if count == 0 {
				return
			}
		}
	}
	return
}

func (s *solver) setLo(v, val int) {
	s.trail = append(s.trail, trailEntry{v: v, lo: s.lo[v], hi: s.hi[v]})
	s.lo[v] = val
}

func (s *solver) setHi(v, val int) {
	s.trail = append(s.trail, trailEntry{v: v, lo: s.lo[v], hi: s.hi[v]})
	s.hi[v] = val
}

func (s *solver) undoTo(mark int) {
	for i := len(s.trail) - 1; i >= mark; i-- {
		e := s.trail[i]
		s.lo[e.v] = e.lo
		s.hi[e.v] = e.hi
	}
	s.trail = s.trail[:mark]
}

// propagate restores bounds consistency after v's window changed,
// sweeping the difference constraints to a fixpoint. It reports false
// when some window empties.
func (s *solver) propagate(v int) bool {
	queue := []int{v}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, ci := range s.outCons[x] {
			c := s.cons[ci]
			if nv := s.lo[c.from] + c.w; nv > s.lo[c.to] {
				s.setLo(c.to, nv)
				if s.lo[c.to] > s.hi[c.to] {
					return false
				}
				queue = append(queue, c.to)
			}
		}
		for _, ci := range s.inCons[x] {
			c := s.cons[ci]
			if nv := s.hi[c.to] - c.w; nv < s.hi[c.from] {
				s.setHi(c.from, nv)
				if s.lo[c.from] > s.hi[c.from] {
					return false
				}
				queue = append(queue, c.from)
			}
		}
	}
	return true
}

// place assigns op v to (t, p): pins its window, occupies the row, and
// propagates. It reports false when propagation empties a window.
func (s *solver) place(v, t int, p machine.Port) bool {
	s.setLo(v, t)
	s.setHi(v, t)
	s.time[v] = t
	s.port[v] = p
	s.assigned[v] = true
	s.unassigned--
	r := &s.rows[t%s.ii]
	r.perPort[p]++
	r.total++
	return s.propagate(v)
}

// unplace reverts place.
func (s *solver) unplace(v, mark int) {
	r := &s.rows[s.time[v]%s.ii]
	r.perPort[s.port[v]]--
	r.total--
	s.assigned[v] = false
	s.unassigned++
	s.undoTo(mark)
}

// stop reports whether the node budget or deadline is exhausted; once
// true the whole solve unwinds as StatusUnknown.
func (s *solver) stop() bool {
	if s.stopped {
		return true
	}
	if *s.nodes >= s.maxNodes {
		s.stopped = true
		return true
	}
	if *s.nodes&0xff == 0 && s.ctx.Err() != nil {
		s.stopped, s.deadline = true, true
		return true
	}
	return false
}

// dfs is the branch-and-bound core: pick the most constrained op, try
// its feasible (time, port) placements in ascending time order, and
// recurse. On StatusFeasible the assignment is left in place for the
// caller to read out of s.time/s.port.
func (s *solver) dfs() Status {
	if s.unassigned == 0 {
		return StatusFeasible
	}
	if s.stop() {
		return StatusUnknown
	}
	v, count := s.pickVar()
	if count == 0 {
		return StatusInfeasible
	}
	var buf [2]machine.Port
	for t := s.lo[v]; t <= s.hi[v]; t++ {
		k := s.portOptions(v, t, &buf)
		for pi := 0; pi < k; pi++ {
			(*s.nodes)++
			mark := len(s.trail)
			if s.place(v, t, buf[pi]) {
				st := s.dfs()
				if st == StatusFeasible {
					return st
				}
				s.unplace(v, mark)
				if st == StatusUnknown {
					return st
				}
			} else {
				s.unplace(v, mark)
			}
			if s.stop() {
				return StatusUnknown
			}
		}
	}
	return StatusInfeasible
}

// solveOnce runs one constraint system to a verdict. On StatusFeasible
// it returns the schedule; nodes accumulates across calls.
func solveOnce(ctx context.Context, m *machine.Model, g *ddg.Graph, ii int, latf ddg.LatencyFn, maxLife int, nodes *int64, maxNodes int64) (*modsched.Schedule, Status, bool) {
	s := newSolver(ctx, m, g, ii, latf, maxLife, nodes, maxNodes)
	if !s.initBounds() {
		return nil, StatusInfeasible, false
	}
	st := s.dfs()
	if st != StatusFeasible {
		return nil, st, s.deadline
	}
	out := &modsched.Schedule{
		II:   ii,
		Time: append([]int(nil), s.time...),
		Port: append([]machine.Port(nil), s.port...),
	}
	for _, t := range out.Time {
		if stg := t/ii + 1; stg > out.Stages {
			out.Stages = stg
		}
	}
	return out, StatusFeasible, false
}

// SolveMin finds a schedule at the given II and then tightens the
// maximum register lifetime: it re-solves with the lifetime capped one
// below the best found until the cap is proven infeasible or the node
// budget runs out. The feasibility verdict always refers to the
// uncapped problem; only LifeProven weakens when tightening is cut
// short.
func SolveMin(ctx context.Context, m *machine.Model, g *ddg.Graph, ii int, latf ddg.LatencyFn, lim Limits) (*modsched.Schedule, Status, Stats) {
	var used int64
	stats := Stats{MaxLife: -1}
	best, st, deadline := solveOnce(ctx, m, g, ii, latf, -1, &used, lim.MaxNodes)
	stats.Nodes = used
	if st != StatusFeasible {
		if st == StatusUnknown {
			stats.Reason = "node-budget"
			if deadline {
				stats.Reason = "deadline"
			}
		}
		return nil, st, stats
	}
	life := MaxLifetime(g, best)
	stats.MaxLife = life
	for life > 0 && used < lim.MaxNodes && ctx.Err() == nil {
		s2, st2, _ := solveOnce(ctx, m, g, ii, latf, life-1, &used, lim.MaxNodes)
		if st2 != StatusFeasible {
			stats.LifeProven = st2 == StatusInfeasible
			break
		}
		best = s2
		life = MaxLifetime(g, s2)
		stats.MaxLife = life
	}
	if life == 0 {
		stats.LifeProven = true
	}
	stats.Nodes = used
	best.Attempts = int(used)
	return best, StatusFeasible, stats
}
