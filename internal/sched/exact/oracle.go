package exact

import (
	"context"

	"ltsp/internal/ddg"
	"ltsp/internal/modsched"
	"ltsp/internal/obs"
	"ltsp/internal/sched"
)

// oracle is the "oracle" backend: it produces exactly the heuristic's
// result (schedule, kernel, trace prefix), then probes the exact solver
// for the optimal II and minimal max register lifetime and records the
// heuristic's optimality gap as an obs.OracleGapEvent. The production
// artifact is untouched — the oracle is a measurement instrument.
type oracle struct {
	lim Limits
}

// NewOracle returns a fresh oracle backend with the default size budget.
func NewOracle() sched.Scheduler { return &oracle{lim: DefaultLimits()} }

// NewOracleWithLimits returns an oracle with a custom exact-probe budget.
func NewOracleWithLimits(lim Limits) sched.Scheduler { return &oracle{lim: lim} }

func (o *oracle) Name() string { return sched.BackendOracle }

// ScheduleAtII delegates to the production heuristic: the oracle never
// changes what gets compiled.
func (o *oracle) ScheduleAtII(ctx context.Context, req *sched.Request, ii int, latf ddg.LatencyFn, tr *obs.Trace) (*modsched.Schedule, bool) {
	return sched.Heuristic().ScheduleAtII(ctx, req, ii, latf, tr)
}

// Gap is the oracle's optimality-gap measurement for one compilation.
type Gap struct {
	// HeurII is the heuristic's achieved II; ExactII the best II the
	// exact probe established (equal to HeurII when every lower II was
	// refuted or the probe gave up).
	HeurII, ExactII int
	// Proven reports that ExactII is provably optimal.
	Proven bool
	// HeurLife / ExactLife are the maximum register lifetimes of the
	// heuristic schedule and the exact schedule at ExactII (ExactLife is
	// -1 when the probe never solved exactly, e.g. over-budget loops).
	HeurLife, ExactLife int
	// Skipped is set when the loop exceeded the probe's size budget.
	Skipped bool
}

// probe measures the heuristic's gap: it re-solves candidate IIs from
// MinII up to the heuristic's achieved II with the same policy
// latencies. Verdicts below the winner refine optimality; an undecided
// probe (or one beyond the size budget) leaves the gap unproven.
func (o *oracle) probe(ctx context.Context, req *sched.Request, heurII int, heurSched *modsched.Schedule) Gap {
	gap := Gap{HeurII: heurII, ExactII: heurII, HeurLife: MaxLifetime(req.Graph, heurSched), ExactLife: -1}
	if len(req.Loop.Body) > o.lim.MaxBody || heurII > o.lim.MaxII {
		gap.Skipped = true
		return gap
	}
	allRefuted := true
	for ii := req.MinII; ii <= heurII; ii++ {
		if ctx.Err() != nil {
			allRefuted = false
			break
		}
		sol, st, _ := SolveMin(ctx, req.Model, req.Graph, ii, req.PolLat, o.lim)
		if st == StatusFeasible {
			gap.ExactII = ii
			gap.ExactLife = MaxLifetime(req.Graph, sol)
			gap.Proven = allRefuted
			return gap
		}
		if st != StatusInfeasible {
			allRefuted = false
		}
	}
	// Nothing at or below the heuristic's II solved exactly. The
	// heuristic schedule itself witnesses feasibility at heurII, so the
	// gap is zero iff every lower II was refuted.
	gap.Proven = allRefuted
	return gap
}

// Search runs the heuristic search unchanged (including speculative
// parallelism), then measures the optimality gap and emits it to the
// trace. The heuristic's result — schedule, payload, attempts — is
// returned as-is; only Proven is upgraded when the probe proves the
// heuristic already optimal.
func (o *oracle) Search(ctx context.Context, req *sched.Request, tr *obs.Trace, finish sched.Finisher) sched.Result {
	r := sched.Heuristic().Search(ctx, req, tr, finish)
	if !r.Found {
		return r
	}
	gap := o.probe(ctx, req, r.II, r.Sched)
	if tr.On() {
		tr.Emit(obs.OracleGapEvent{
			HeurII: gap.HeurII, ExactII: gap.ExactII, Proven: gap.Proven,
			HeurLife: gap.HeurLife, ExactLife: gap.ExactLife,
		})
	}
	if gap.Proven && gap.ExactII == r.II {
		r.Proven = true
	}
	return r
}
