package exact

import (
	"context"

	"ltsp/internal/ddg"
	"ltsp/internal/modsched"
	"ltsp/internal/obs"
	"ltsp/internal/sched"
)

func init() {
	sched.Register(sched.BackendExact, New)
	sched.Register(sched.BackendOracle, NewOracle)
}

// scheduler is the "exact" backend: branch-and-bound per candidate II,
// handing individual attempts to the heuristic when the loop exceeds
// the size budget or a solve comes back undecided. It is created fresh
// per compilation so fellBack can void the optimality proof.
type scheduler struct {
	lim      Limits
	fellBack bool
	// minFeasible is the lowest II any attempt scheduled successfully
	// (-1 until one does). If the winner sits above it, a lower II was
	// schedulable but rejected downstream (register allocation), so the
	// winner is not schedule-II-optimal and the proof is withheld.
	minFeasible int
}

// New returns a fresh exact backend with the default size budget.
func New() sched.Scheduler { return &scheduler{lim: DefaultLimits(), minFeasible: -1} }

// NewWithLimits returns a fresh exact backend with a custom budget
// (tests and the experiments runner shrink it to force fallbacks or
// time-box probes).
func NewWithLimits(lim Limits) sched.Scheduler { return &scheduler{lim: lim, minFeasible: -1} }

func (s *scheduler) Name() string { return sched.BackendExact }

// heuristicAtII delegates one fixed-II attempt to the production
// scheduler, trace events and all.
func heuristicAtII(req *sched.Request, ii int, latf ddg.LatencyFn, tr *obs.Trace) (*modsched.Schedule, bool) {
	return modsched.ScheduleAtII(req.Model, req.Graph, ii, latf, modsched.Options{BudgetRatio: req.BudgetRatio, Trace: tr})
}

// ScheduleAtII solves the loop exactly at one II. Over-budget loops and
// undecided solves fall back to the heuristic (with a trace event) —
// a fallback is never an error, but it voids the II-optimality proof.
// A canceled context returns nil, false so the search loop can exit.
func (s *scheduler) ScheduleAtII(ctx context.Context, req *sched.Request, ii int, latf ddg.LatencyFn, tr *obs.Trace) (*modsched.Schedule, bool) {
	reason := ""
	switch {
	case len(req.Loop.Body) > s.lim.MaxBody:
		reason = "body-size"
	case ii > s.lim.MaxII:
		reason = "ii-budget"
	}
	if reason != "" {
		s.fellBack = true
		if tr.On() {
			tr.Emit(obs.ExactFallbackEvent{II: ii, Reason: reason})
		}
		sol, ok := heuristicAtII(req, ii, latf, tr)
		s.noteFeasible(ii, ok)
		return sol, ok
	}
	sol, st, stats := SolveMin(ctx, req.Model, req.Graph, ii, latf, s.lim)
	if tr.On() {
		tr.Emit(obs.ExactEvent{
			II: ii, Status: st.String(), Nodes: stats.Nodes,
			MaxLife: stats.MaxLife, LifeProven: stats.LifeProven,
		})
	}
	switch st {
	case StatusFeasible:
		s.noteFeasible(ii, true)
		return sol, true
	case StatusInfeasible:
		return nil, false
	default: // StatusUnknown
		s.fellBack = true
		if ctx.Err() != nil {
			return nil, false // canceled: let the search loop observe ctx
		}
		if tr.On() {
			tr.Emit(obs.ExactFallbackEvent{II: ii, Reason: stats.Reason})
		}
		sol, ok := heuristicAtII(req, ii, latf, tr)
		s.noteFeasible(ii, ok)
		return sol, ok
	}
}

func (s *scheduler) noteFeasible(ii int, ok bool) {
	if ok && (s.minFeasible < 0 || ii < s.minFeasible) {
		s.minFeasible = ii
	}
}

// Search runs the sequential II search (exact solves are not worth
// speculating on — each one is conclusive). The winner is proven
// II-optimal when no attempt at a lower II fell back to the heuristic
// (every lower II was then *proven* infeasible) and no lower II was
// schedulable-but-rejected by register allocation.
func (s *scheduler) Search(ctx context.Context, req *sched.Request, tr *obs.Trace, finish sched.Finisher) sched.Result {
	s.fellBack, s.minFeasible = false, -1
	r := sched.SequentialSearch(s, ctx, req, tr, finish)
	if r.Found && !s.fellBack && s.minFeasible == r.II {
		r.Proven = true
	}
	return r
}
