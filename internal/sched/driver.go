package sched

import (
	"context"
	"sync"
	"sync/atomic"

	"ltsp/internal/ddg"
	"ltsp/internal/modsched"
	"ltsp/internal/obs"
)

// attemptResult is the outcome of the full fallback ladder at one
// candidate II: the hint-latency attempt plus — when register allocation
// was the blocker — the reduced-latency retry at the same II.
type attemptResult struct {
	done     bool
	reduced  bool
	attempts int
	err      error // last failure recorded at this II
	sched    *modsched.Schedule
	payload  any
}

// tryAt schedules via the backend, then hands the schedule to the
// caller's Finisher (register allocation + code generation) at one
// (II, latency) point, accumulating placement counts and the failure
// (if any) in res.
func tryAt(s Scheduler, ctx context.Context, req *Request, res *attemptResult, ii int, lat ddg.LatencyFn, reduced bool, tr *obs.Trace, finish Finisher) (done, allocFailed bool) {
	sc, ok := s.ScheduleAtII(ctx, req, ii, lat, tr)
	if sc != nil {
		res.attempts += sc.Attempts
	}
	if !ok {
		return false, false
	}
	cand := finish(ii, sc, reduced, tr)
	if cand.Err != nil {
		res.err = cand.Err
	}
	if !cand.Done {
		return false, cand.AllocFailed
	}
	res.sched = sc
	res.payload = cand.Payload
	res.reduced = reduced
	return true, false
}

// attempt runs the fallback ladder at one II: schedule with the
// hint-derived latencies; when register allocation fails, retry the same
// II with all non-critical latencies reduced to base. Decision events go
// to tr — the main trace in the sequential search, a private buffer for a
// speculative attempt. The result depends only on (ii, shared inputs), so
// it is identical regardless of which search mode runs it.
func attempt(s Scheduler, ctx context.Context, req *Request, ii int, tr *obs.Trace, finish Finisher) attemptResult {
	var res attemptResult
	if ii > req.MinII && tr.On() {
		tr.Emit(obs.FallbackEvent{Rung: obs.RungRaiseII, II: ii})
	}
	done, allocFailed := tryAt(s, ctx, req, &res, ii, req.PolLat, false, tr, finish)
	if done {
		res.done = true
		return res
	}
	if allocFailed && req.HaveBoost {
		if tr.On() {
			tr.Emit(obs.FallbackEvent{Rung: obs.RungReduceLatency, II: ii})
		}
		if done, _ := tryAt(s, ctx, req, &res, ii, req.BaseLat, true, tr, finish); done {
			res.done = true
		}
	}
	return res
}

// commit installs the winning attempt into the search result.
func commit(out *Result, req *Request, ii int, res attemptResult) {
	out.Found = true
	out.II = ii
	out.Sched = res.sched
	out.Payload = res.payload
	out.Reduced = res.reduced
	out.Proven = ii == req.MinII // meets the lower bound
}

// SequentialSearch is the paper's search (Sec. 3.3): iterate the II
// upward from MinII, running the fallback ladder at each step, and stop
// at the first II the ladder satisfies. Backends whose per-II attempts
// are not independent (or not worth speculating on) use it directly.
func SequentialSearch(s Scheduler, ctx context.Context, req *Request, tr *obs.Trace, finish Finisher) Result {
	var out Result
	var lastErr error
	for ii := req.MinII; ii <= req.MaxII; ii++ {
		if ctx.Err() != nil {
			out.LastErr = lastErr
			return out
		}
		res := attempt(s, ctx, req, ii, tr, finish)
		out.Attempts += res.attempts
		if res.err != nil {
			lastErr = res.err
		}
		if res.done {
			commit(&out, req, ii, res)
			return out
		}
	}
	out.LastErr = lastErr
	return out
}

// ParallelSearch speculates on several candidate IIs concurrently and
// commits the lowest feasible one. It reproduces SequentialSearch
// bit-identically:
//
//   - Workers claim IIs from an atomic counter, so the claimed set is
//     always a dense prefix [minII, ...] in ascending order.
//   - Each attempt is independent and deterministic, so its schedule,
//     events, and failure are exactly what the sequential search would
//     compute at that II.
//   - Events are buffered per attempt and appended to the main trace in
//     II order up to the winner — the order the sequential search emits.
//   - A worker abandons a claimed II only when a strictly lower II has
//     already succeeded (the "cancel losers" rule), so every II at or
//     below the final winner is fully attempted and its attempts/events
//     are accounted, while IIs beyond the winner are discarded exactly as
//     the sequential search never reaches them.
//
// Placement-attempt totals, fallback rungs, and the final error on total
// failure (the last error the sequential search would have kept) are all
// reconstructed from the per-II results.
func ParallelSearch(s Scheduler, ctx context.Context, req *Request, tr *obs.Trace, finish Finisher, workers int) Result {
	n := req.MaxII - req.MinII + 1
	if workers > n {
		workers = n
	}
	results := make([]attemptResult, n)
	traces := make([]*obs.Trace, n)
	var next atomic.Int64
	var best atomic.Int64 // index of the lowest successful II; n = none yet
	best.Store(int64(n))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return // search canceled: stop claiming IIs
				}
				i := int(next.Add(1) - 1)
				if i >= n || int64(i) > best.Load() {
					return // out of range, or a lower II already won
				}
				var bt *obs.Trace
				if tr.On() {
					bt = obs.NewScratch()
				}
				res := attempt(s, ctx, req, req.MinII+i, bt, finish)
				results[i] = res
				traces[i] = bt
				if res.done {
					for {
						cur := best.Load()
						if int64(i) >= cur || best.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
				}
			}
		}()
	}
	wg.Wait()

	var out Result
	win := int(best.Load())
	last := win
	if win == n {
		last = n - 1 // total failure: every II was attempted
	}
	var lastErr error
	for i := 0; i <= last; i++ {
		out.Attempts += results[i].attempts
		tr.AppendFrom(traces[i])
		if results[i].err != nil {
			lastErr = results[i].err
		}
	}
	// All workers have joined and AppendFrom copied what was merged, so
	// every per-attempt buffer (merged or discarded) can be recycled.
	for _, bt := range traces {
		bt.Recycle()
	}
	if win == n {
		out.LastErr = lastErr
		return out
	}
	commit(&out, req, req.MinII+win, results[win])
	return out
}
