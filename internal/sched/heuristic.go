package sched

import (
	"context"

	"ltsp/internal/ddg"
	"ltsp/internal/modsched"
	"ltsp/internal/obs"
)

// heuristic is the production backend: iterative modulo scheduling
// (package modsched) under the sequential or speculative II search. It
// is stateless; Heuristic() returns a shared instance.
type heuristic struct{}

var heuristicInstance Scheduler = heuristic{}

// Heuristic returns the production scheduling backend. It reproduces the
// pre-interface pipeline byte-identically: same schedules, same decision
// traces, same placement-attempt totals.
func Heuristic() Scheduler { return heuristicInstance }

func (heuristic) Name() string { return BackendHeuristic }

// ScheduleAtII runs one iterative-modulo-scheduling attempt. A single
// attempt is never interrupted mid-flight — cancellation granularity is
// one (II, latency) attempt, enforced by the search loops — so ctx is
// intentionally unused here.
func (heuristic) ScheduleAtII(_ context.Context, req *Request, ii int, latf ddg.LatencyFn, tr *obs.Trace) (*modsched.Schedule, bool) {
	return modsched.ScheduleAtII(req.Model, req.Graph, ii, latf, modsched.Options{BudgetRatio: req.BudgetRatio, Trace: tr})
}

func (h heuristic) Search(ctx context.Context, req *Request, tr *obs.Trace, finish Finisher) Result {
	if req.Parallelism > 1 {
		return ParallelSearch(h, ctx, req, tr, finish, req.Parallelism)
	}
	return SequentialSearch(h, ctx, req, tr, finish)
}
