package cache

import (
	"testing"
	"testing/quick"
)

func TestDefaultGeometry(t *testing.T) {
	c := DefaultItanium2()
	if c.L1.SizeBytes() != 16*1024 {
		t.Errorf("L1 = %d bytes", c.L1.SizeBytes())
	}
	if c.L2.SizeBytes() != 256*1024 {
		t.Errorf("L2 = %d bytes", c.L2.SizeBytes())
	}
	if c.L3.SizeBytes() != 12*1024*1024 {
		t.Errorf("L3 = %d bytes", c.L3.SizeBytes())
	}
	if c.L1.LineSize() != 64 || c.L2.LineSize() != 128 {
		t.Error("line sizes wrong")
	}
}

func TestColdMissAndRefill(t *testing.T) {
	h := New(DefaultItanium2())
	r := h.Access(0, 0x10000, false, Load)
	if r.Level != 4 || r.ReadyAt != 200 || !r.MissedL1 {
		t.Errorf("cold miss = %+v", r)
	}
	// Second access to the same line after the fill: L1 hit.
	r = h.Access(300, 0x10008, false, Load)
	if r.Level != 1 || r.ReadyAt != 301 {
		t.Errorf("warm hit = %+v", r)
	}
	if h.Stats.Memory != 1 || h.Stats.HitsL1 != 1 {
		t.Errorf("stats = %+v", h.Stats)
	}
}

func TestInFlightMerge(t *testing.T) {
	h := New(DefaultItanium2())
	h.Access(0, 0x10000, false, Load) // miss, fills at 200
	r := h.Access(5, 0x10010, false, Load)
	if !r.Merged {
		t.Fatalf("overlapping access not merged: %+v", r)
	}
	if r.ReadyAt != 200 {
		t.Errorf("merged ready = %d, want the in-flight fill time 200", r.ReadyAt)
	}
	if h.Stats.Merges != 1 {
		t.Errorf("merges = %d", h.Stats.Merges)
	}
}

func TestFPLoadBypassesL1(t *testing.T) {
	h := New(DefaultItanium2())
	h.Access(0, 0x20000, false, Load)
	// Line now in L1 and L2; an FP load must be served by L2 with the
	// +1 conversion cycle: 5 + 1.
	r := h.Access(1000, 0x20000, true, Load)
	if r.Level != 2 || r.ReadyAt != 1006 || !r.MissedL1 {
		t.Errorf("fp load = %+v", r)
	}
}

func TestStoreWriteThrough(t *testing.T) {
	h := New(DefaultItanium2())
	r := h.Access(0, 0x30000, false, Store)
	if !r.MissedL1 {
		t.Error("store must pass the L1 (write-through)")
	}
	// Stores do not allocate into L1.
	if h.Contains(1, 0x30000) {
		t.Error("store allocated L1")
	}
	if !h.Contains(2, 0x30000) {
		t.Error("store did not allocate L2")
	}
}

func TestPrefetchL1FillsThrough(t *testing.T) {
	h := New(DefaultItanium2())
	h.Access(0, 0x40000, false, PrefetchL1)
	if !h.Contains(1, 0x40000) || !h.Contains(2, 0x40000) || !h.Contains(3, 0x40000) {
		t.Error("prefetch-L1 did not fill the hierarchy")
	}
	// A later demand load hits L1 once the fill lands.
	r := h.Access(300, 0x40000, false, Load)
	if r.Level != 1 {
		t.Errorf("post-prefetch load served at level %d", r.Level)
	}
}

func TestPrefetchL2Only(t *testing.T) {
	h := New(DefaultItanium2())
	h.Access(0, 0x50000, false, PrefetchL2)
	if h.Contains(1, 0x50000) {
		t.Error("L2-only prefetch filled L1")
	}
	if !h.Contains(2, 0x50000) {
		t.Error("L2-only prefetch missed L2")
	}
	// The demand load pays the L2 hit latency (heuristic 3's exposed
	// latency, which the L2 hint covers).
	r := h.Access(300, 0x50000, false, Load)
	if r.Level != 2 || r.ReadyAt != 305 {
		t.Errorf("demand after L2-only prefetch = %+v", r)
	}
	if h.Stats.Prefetches != 1 {
		t.Errorf("prefetch count = %d", h.Stats.Prefetches)
	}
}

func TestLRUEviction(t *testing.T) {
	cfg := DefaultItanium2()
	h := New(cfg)
	setStride := int64(cfg.L1.Sets) << cfg.L1.LineShift // same L1 set
	// Fill one set's 4 ways plus one more.
	for i := int64(0); i <= int64(cfg.L1.Ways); i++ {
		h.Access(i*1000, 0x100000+i*setStride, false, Load)
	}
	// The first line must have been evicted from L1 (LRU) ...
	if h.Contains(1, 0x100000) {
		t.Error("LRU victim still in L1")
	}
	// ... but stays in the much larger L2.
	if !h.Contains(2, 0x100000) {
		t.Error("line lost from L2")
	}
}

func TestL3HitLatency(t *testing.T) {
	cfg := DefaultItanium2()
	h := New(cfg)
	h.Access(0, 0x60000, false, Load)
	// Evict from L1+L2 by filling their sets, then re-access: L3 hit (14).
	l2SetStride := int64(cfg.L2.Sets) << cfg.L2.LineShift
	for i := int64(1); i <= int64(cfg.L2.Ways); i++ {
		h.Access(1000+i*1000, 0x60000+i*l2SetStride, false, Load)
	}
	r := h.Access(100000, 0x60000, false, Load)
	if r.Level != 3 || r.ReadyAt != 100014 {
		t.Errorf("L3 hit = %+v", r)
	}
}

func TestContainsFalseOnBadLevel(t *testing.T) {
	h := New(DefaultItanium2())
	for _, lvl := range []int{-1, 0, 4, 99} {
		if h.Contains(lvl, 0) {
			t.Errorf("Contains(%d, 0) = true for a level the hierarchy does not have", lvl)
		}
	}
}

// TestQuickMonotonicReady: the hierarchy never returns data before the
// request is issued, and hits are never slower than the memory latency
// plus conversion.
func TestQuickMonotonicReady(t *testing.T) {
	h := New(DefaultItanium2())
	now := int64(0)
	f := func(addrRaw int64, fp bool, kindRaw uint8) bool {
		addr := addrRaw & 0xff_ffff
		kind := AccessKind(kindRaw % 4)
		now += 3
		r := h.Access(now, addr, fp, kind)
		if r.ReadyAt < now {
			return false
		}
		return r.ReadyAt <= now+200+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
