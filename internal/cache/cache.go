// Package cache implements the simulator's memory hierarchy: three levels
// of set-associative, LRU, inclusive caches in front of a flat-latency
// memory. Lines carry fill timestamps so that overlapping misses to the
// same line merge (an access to an in-flight line waits for the fill
// instead of paying a full miss), which is what makes load clustering and
// software prefetching effective in the timing model.
//
// Itanium 2 specifics modeled: FP loads bypass the L1D and are serviced
// from L2 with one extra format-conversion cycle; stores are write-through
// to L2; lfetch can target either L1 or (for the paper's heuristic 3,
// OzQ-pressure relief) L2 only.
package cache

// LevelConfig describes one cache level.
type LevelConfig struct {
	Name      string
	Sets      int // power of two
	Ways      int
	LineShift uint // log2 of the line size in bytes
	HitLat    int  // load-to-use latency on a hit
}

// LineSize returns the line size in bytes.
func (c LevelConfig) LineSize() int64 { return 1 << c.LineShift }

// SizeBytes returns the level capacity.
func (c LevelConfig) SizeBytes() int64 { return int64(c.Sets*c.Ways) << c.LineShift }

// Config describes the whole hierarchy.
type Config struct {
	L1, L2, L3 LevelConfig
	// MemLat is the flat main-memory latency in cycles.
	MemLat int
	// FPExtra is added to FP load latencies (format conversion).
	FPExtra int
}

// DefaultItanium2 returns the hierarchy used in the paper's evaluation:
// 16 KB 4-way 64 B-line L1D (1-cycle), 256 KB 8-way 128 B-line L2
// (5-cycle), 12 MB 12-way 128 B-line L3 (14-cycle), ~200-cycle memory.
func DefaultItanium2() Config {
	return Config{
		L1:      LevelConfig{Name: "L1D", Sets: 64, Ways: 4, LineShift: 6, HitLat: 1},
		L2:      LevelConfig{Name: "L2", Sets: 256, Ways: 8, LineShift: 7, HitLat: 5},
		L3:      LevelConfig{Name: "L3", Sets: 8192, Ways: 12, LineShift: 7, HitLat: 14},
		MemLat:  200,
		FPExtra: 1,
	}
}

// AccessKind distinguishes the request types the hierarchy serves.
type AccessKind uint8

const (
	// Load is a demand data load.
	Load AccessKind = iota
	// Store is a data store (write-through to L2; no L1 allocation).
	Store
	// PrefetchL1 fills the line through to L1.
	PrefetchL1
	// PrefetchL2 fills the line into L2 only (paper heuristic 3).
	PrefetchL2
)

// Result describes how a request was served.
type Result struct {
	// ReadyAt is the absolute cycle the data (or line) is available.
	ReadyAt int64
	// Level is the hierarchy level that served the request: 1-3 for
	// caches, 4 for memory.
	Level int
	// MissedL1 is true when the request went past the L1 (and therefore
	// occupies the OzQ between L1 and L2 until ReadyAt).
	MissedL1 bool
	// Merged is true when the request hit a line already in flight.
	Merged bool
}

// Stats counts hierarchy activity.
type Stats struct {
	Accesses   int64
	HitsL1     int64
	HitsL2     int64
	HitsL3     int64
	Memory     int64
	Merges     int64
	Prefetches int64
}

type line struct {
	tag     int64
	valid   bool
	fill    int64 // absolute cycle the line arrives
	lastUse int64
}

type level struct {
	cfg  LevelConfig
	sets [][]line
	tick int64
}

func newLevel(cfg LevelConfig) *level {
	l := &level{cfg: cfg, sets: make([][]line, cfg.Sets)}
	for i := range l.sets {
		l.sets[i] = make([]line, cfg.Ways)
	}
	return l
}

// probe returns the line if present.
func (l *level) probe(addr int64) *line {
	tag := addr >> l.cfg.LineShift
	set := &l.sets[tag&int64(l.cfg.Sets-1)]
	for i := range *set {
		ln := &(*set)[i]
		if ln.valid && ln.tag == tag {
			l.tick++
			ln.lastUse = l.tick
			return ln
		}
	}
	return nil
}

// insert fills addr's line with the given fill time, evicting LRU.
func (l *level) insert(addr, fill int64) {
	tag := addr >> l.cfg.LineShift
	set := &l.sets[tag&int64(l.cfg.Sets-1)]
	victim := 0
	for i := range *set {
		ln := &(*set)[i]
		if !ln.valid {
			victim = i
			break
		}
		if ln.lastUse < (*set)[victim].lastUse {
			victim = i
		}
	}
	l.tick++
	(*set)[victim] = line{tag: tag, valid: true, fill: fill, lastUse: l.tick}
}

// Hierarchy is a three-level cache hierarchy with fill-time tracking.
type Hierarchy struct {
	cfg   Config
	l1    *level
	l2    *level
	l3    *level
	Stats Stats
}

// New builds a hierarchy from the configuration.
func New(cfg Config) *Hierarchy {
	return &Hierarchy{cfg: cfg, l1: newLevel(cfg.L1), l2: newLevel(cfg.L2), l3: newLevel(cfg.L3)}
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// Access serves one request issued at cycle now. fp marks FP loads (L1
// bypass plus the extra conversion cycle).
func (h *Hierarchy) Access(now, addr int64, fp bool, kind AccessKind) Result {
	h.Stats.Accesses++
	if kind == PrefetchL1 || kind == PrefetchL2 {
		h.Stats.Prefetches++
	}
	extra := int64(0)
	if fp && kind == Load {
		extra = int64(h.cfg.FPExtra)
	}
	useL1 := !fp && kind != Store && kind != PrefetchL2

	if useL1 {
		if ln := h.l1.probe(addr); ln != nil {
			ready := now + int64(h.cfg.L1.HitLat)
			merged := false
			if ln.fill > ready {
				ready = ln.fill
				merged = true
				h.Stats.Merges++
			} else {
				h.Stats.HitsL1++
			}
			return Result{ReadyAt: ready + extra, Level: 1, Merged: merged}
		}
	}
	// Past L1: the request occupies the OzQ.
	res := Result{MissedL1: true}
	if ln := h.l2.probe(addr); ln != nil {
		ready := now + int64(h.cfg.L2.HitLat)
		if ln.fill > ready {
			ready = ln.fill
			res.Merged = true
			h.Stats.Merges++
		} else {
			h.Stats.HitsL2++
		}
		res.ReadyAt, res.Level = ready+extra, 2
		h.fillUpper(addr, ready, useL1, kind)
		return res
	}
	if ln := h.l3.probe(addr); ln != nil {
		ready := now + int64(h.cfg.L3.HitLat)
		if ln.fill > ready {
			ready = ln.fill
			res.Merged = true
			h.Stats.Merges++
		} else {
			h.Stats.HitsL3++
		}
		res.ReadyAt, res.Level = ready+extra, 3
		h.l2.insert(addr, ready)
		h.fillUpper(addr, ready, useL1, kind)
		return res
	}
	h.Stats.Memory++
	ready := now + int64(h.cfg.MemLat)
	res.ReadyAt, res.Level = ready+extra, 4
	h.l3.insert(addr, ready)
	h.l2.insert(addr, ready)
	h.fillUpper(addr, ready, useL1, kind)
	return res
}

func (h *Hierarchy) fillUpper(addr, ready int64, useL1 bool, kind AccessKind) {
	if useL1 && kind != Store {
		h.l1.insert(addr, ready)
	}
}

// Contains reports whether addr's line is present (valid) at the given
// level (1-3), regardless of fill time. A level the hierarchy does not
// have contains nothing, so Contains reports false rather than panicking —
// the level number is caller data, not an internal invariant.
func (h *Hierarchy) Contains(levelN int, addr int64) bool {
	var l *level
	switch levelN {
	case 1:
		l = h.l1
	case 2:
		l = h.l2
	case 3:
		l = h.l3
	default:
		return false
	}
	tag := addr >> l.cfg.LineShift
	set := l.sets[tag&int64(l.cfg.Sets-1)]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}
