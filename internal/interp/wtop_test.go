package interp

import (
	"testing"

	"ltsp/internal/ir"
)

func TestWtopTakenWhileValid(t *testing.T) {
	s := NewState()
	s.EC = 3
	s.PR[20] = true // validity of the oldest in-flight iteration
	if !s.Wtop(ir.PR(20)) {
		t.Error("wtop not taken with qp set")
	}
	if s.EC != 3 {
		t.Error("EC consumed while qp was set")
	}
}

func TestWtopFillCountsEC(t *testing.T) {
	// During fill the oldest slot is empty (qp = 0): EC keeps the kernel
	// alive, exactly Stages-1 extra iterations.
	s := NewState()
	s.EC = 3
	taken := 0
	for s.Wtop(ir.PR(20)) {
		taken++
	}
	// EC path: EC 3 -> 2 (taken), 2 -> 1 (taken), then exit.
	if taken != 2 {
		t.Errorf("EC-driven iterations = %d, want 2", taken)
	}
	if s.EC != 0 {
		t.Errorf("EC = %d", s.EC)
	}
}

func TestWtopRotates(t *testing.T) {
	s := NewState()
	s.EC = 5
	s.Exec(ir.MovI(ir.GR(40), 7))
	s.Wtop(ir.PR(20))
	if got := s.ReadReg(ir.GR(41)); got != 7 {
		t.Error("wtop did not rotate the data registers")
	}
	// p16 receives a 0 (no hardware stage predicate for while loops).
	if s.PR[s.RenamePR(RotPRLo)] {
		t.Error("wtop injected a stage predicate")
	}
}

func TestWtopReadsBeforeRotation(t *testing.T) {
	// The qp read must observe the pre-rotation mapping (the branch reads
	// its predicate like any instruction of the same kernel iteration).
	s := NewState()
	s.EC = 1
	s.PR[s.RenamePR(20)] = true
	if !s.Wtop(ir.PR(20)) {
		t.Error("wtop missed the predicate written under the current rotation")
	}
}

func TestWhileProgramSequentialCap(t *testing.T) {
	// A while program whose condition never clears must stop at the
	// runaway cap instead of hanging.
	p := &Program{
		Name:    "spin",
		Groups:  [][]*ir.Instr{{ir.Predicated(ir.PR(5), ir.AddI(ir.GR(4), ir.GR(4), 1))}},
		Setup:   []ir.RegInit{{Reg: ir.PR(5), Val: 1}},
		WhileQP: ir.PR(5),
	}
	st, err := Run(p, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.ReadReg(ir.GR(4)); got > 20 {
		t.Errorf("runaway while loop executed %d iterations", got)
	}
}
