package interp

import (
	"errors"
	"fmt"
	"strings"

	"ltsp/internal/ir"
)

// Program is an executable loop after code generation: instructions use
// physical registers, arranged into issue groups (one group per cycle of
// the schedule). Five code shapes share this container:
//
//   - sequential counted: list-scheduled body closed by br.cloop
//     (LC = trip-1);
//   - sequential while: the same, repeating while WhileQP holds;
//   - rotating kernel: len(Groups) == II, closed by br.ctop with
//     LC = trip-1 and EC = Stages;
//   - MVE-unrolled kernel: len(Groups) == U*II with RotateEvery = II and
//     NoDataRotation (plain registers, predicate-only rotation);
//   - br.wtop while kernel: WhileQP set, EC counting the fill.
type Program struct {
	Name      string
	Pipelined bool
	Groups    [][]*ir.Instr
	// Stages is the number of software pipeline stages (pipelined only).
	Stages int
	// RotateEvery is the cycle period of br.ctop execution for pipelined
	// programs whose kernel holds several unrolled copies (modulo variable
	// expansion): the branch fires every RotateEvery cycles instead of
	// once per Groups pass. Zero means once per pass (rotating kernels).
	RotateEvery int
	// NoDataRotation marks kernels that use the r32+/f32+ regions as
	// plain registers (modulo variable expansion): br.ctop then rotates
	// only the predicate file (CFM with a zero-sized rotating data
	// region).
	NoDataRotation bool
	// WhileQP, when set, marks a data-terminated (while) loop: instead of
	// LC/EC counting, a sequential program repeats while this predicate
	// register holds, and a pipelined kernel closes with br.wtop on it
	// (the validity of the oldest in-flight iteration). The trip count
	// passed to Run/sim serves only as a runaway cap.
	WhileQP ir.Reg
	// Setup is applied to the architectural state before the loop starts
	// (before any rotation).
	Setup []ir.RegInit
	// LiveOut lists the physical registers whose final values are the
	// loop's observable results.
	LiveOut []ir.Reg
}

// Instrs returns all instructions of the program in group order.
func (p *Program) Instrs() []*ir.Instr {
	var out []*ir.Instr
	for _, g := range p.Groups {
		out = append(out, g...)
	}
	return out
}

// Listing renders the program as an annotated assembly listing in the
// style of the paper's Fig. 3/6: one block per cycle, the implicit
// loop-closing branch last.
func (p *Program) Listing() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:", p.Name)
	if p.Pipelined {
		fmt.Fprintf(&b, "  // pipelined kernel, II=%d, %d stages", len(p.Groups), p.Stages)
	} else {
		fmt.Fprintf(&b, "  // sequential schedule, %d cycles/iteration", len(p.Groups))
	}
	b.WriteByte('\n')
	for c, g := range p.Groups {
		for _, in := range g {
			fmt.Fprintf(&b, "  %-50s // cycle %d\n", in.String(), c)
		}
	}
	switch {
	case p.Pipelined && !p.WhileQP.IsNone():
		fmt.Fprintf(&b, "  %-50s // cycle %d\n", "("+p.WhileQP.String()+") br.wtop", len(p.Groups)-1)
	case p.Pipelined:
		fmt.Fprintf(&b, "  %-50s // cycle %d\n", "br.ctop", len(p.Groups)-1)
	case !p.WhileQP.IsNone():
		fmt.Fprintf(&b, "  %-50s // cycle %d\n", "("+p.WhileQP.String()+") br.cond", len(p.Groups)-1)
	default:
		fmt.Fprintf(&b, "  %-50s // cycle %d\n", "br.cloop", len(p.Groups)-1)
	}
	return b.String()
}

// KernelIterations returns how many kernel iterations a pipelined program
// executes for the given trip count: trip + Stages - 1 (the paper's "one
// extra kernel iteration per extra stage").
func (p *Program) KernelIterations(trip int64) int64 {
	if !p.Pipelined {
		return trip
	}
	return trip + int64(p.Stages) - 1
}

// Run executes the program functionally (no timing) for the given trip
// count against the provided memory, returning the final state. trip must
// be at least 1: Itanium counted loops test at the bottom and always run
// the body once.
func Run(p *Program, trip int64, mem *Memory) (*State, error) {
	if trip < 1 {
		return nil, fmt.Errorf("interp: trip count %d < 1", trip)
	}
	if len(p.Groups) == 0 {
		return nil, errors.New("interp: program has no groups")
	}
	s := NewState()
	if mem != nil {
		s.Mem = mem
	}
	s.ApplySetup(p.Setup)
	s.LC = trip - 1
	s.DataRotation = !p.NoDataRotation
	// Runaway cap for data-terminated loops (and malformed programs).
	maxIters := trip + int64(p.Stages) + 4
	switch {
	case p.Pipelined && !p.WhileQP.IsNone():
		s.EC = int64(p.Stages)
		for iters := int64(0); iters < maxIters; iters++ {
			for _, g := range p.Groups {
				if _, err := s.Group(g); err != nil {
					return nil, err
				}
			}
			if !s.Wtop(p.WhileQP) {
				break
			}
		}
	case p.Pipelined:
		s.EC = int64(p.Stages)
		s.PR[RotPRLo] = true // stage-0 predicate on for the first iteration
		rotEvery := len(p.Groups)
		if p.RotateEvery > 0 {
			rotEvery = p.RotateEvery
		}
	kernel:
		for {
			for c, g := range p.Groups {
				if _, err := s.Group(g); err != nil {
					return nil, err
				}
				if (c+1)%rotEvery == 0 {
					if !s.Ctop() {
						break kernel
					}
				}
			}
		}
	case !p.WhileQP.IsNone():
		for iters := int64(0); iters < maxIters; iters++ {
			for _, g := range p.Groups {
				if _, err := s.Group(g); err != nil {
					return nil, err
				}
			}
			if !s.PR[s.PhysIndex(p.WhileQP)] {
				break
			}
		}
	default:
		for {
			for _, g := range p.Groups {
				if _, err := s.Group(g); err != nil {
					return nil, err
				}
			}
			if !s.Cloop() {
				break
			}
		}
	}
	return s, nil
}
