package interp

import (
	"testing"

	"ltsp/internal/ir"
)

func TestSelSemantics(t *testing.T) {
	s := NewState()
	s.GR[4], s.GR[5] = 111, 222
	s.PR[6] = true
	s.Exec(ir.Sel(ir.GR(7), ir.PR(6), ir.GR(4), ir.GR(5)))
	if s.GR[7] != 111 {
		t.Errorf("sel true = %d", s.GR[7])
	}
	s.PR[6] = false
	s.Exec(ir.Sel(ir.GR(7), ir.PR(6), ir.GR(4), ir.GR(5)))
	if s.GR[7] != 222 {
		t.Errorf("sel false = %d", s.GR[7])
	}
}

func TestFSelSemantics(t *testing.T) {
	s := NewState()
	s.FR[4], s.FR[5] = 1.5, 2.5
	s.PR[6] = true
	s.Exec(ir.FSel(ir.FR(7), ir.PR(6), ir.FR(4), ir.FR(5)))
	if s.FR[7] != 1.5 {
		t.Errorf("fsel true = %v", s.FR[7])
	}
}

func TestSelPredicatedOff(t *testing.T) {
	// A sel under a false qualifying predicate must not write at all
	// (the if-converter relies on this for nested regions).
	s := NewState()
	s.GR[7] = 999
	s.PR[6] = true  // selector true
	off := ir.PR(5) // qualifying predicate false
	s.Exec(ir.Predicated(off, ir.Sel(ir.GR(7), ir.PR(6), ir.GR(4), ir.GR(5))))
	if s.GR[7] != 999 {
		t.Errorf("predicated-off sel wrote %d", s.GR[7])
	}
}

func TestSelRotating(t *testing.T) {
	// Sel reads rotating operands under renaming like any other op.
	s := NewState()
	s.Exec(ir.MovI(ir.GR(32), 5))
	s.rotate(false)
	s.PR[0] = true
	s.Exec(ir.Sel(ir.GR(10), ir.PR(0), ir.GR(33), ir.GR(0)))
	if s.GR[10] != 5 {
		t.Errorf("rotating sel = %d", s.GR[10])
	}
}

func TestChkIsNoOp(t *testing.T) {
	s := NewState()
	s.GR[4] = 42
	eff, _ := s.Exec(ir.Chk(ir.GR(4)))
	if !eff.Executed || eff.IsMem {
		t.Errorf("chk effect = %+v", eff)
	}
	if s.GR[4] != 42 {
		t.Error("chk modified state")
	}
}

func TestCtopDrainOnlyEC(t *testing.T) {
	// LC already zero: the kernel runs EC drain iterations only.
	s := NewState()
	s.LC, s.EC = 0, 3
	iters := 1
	for s.Ctop() {
		iters++
	}
	if iters != 3 {
		t.Errorf("drain iterations = %d, want 3", iters)
	}
}

func TestCtopECZero(t *testing.T) {
	s := NewState()
	s.LC, s.EC = 0, 0
	if s.Ctop() {
		t.Error("ctop taken with LC=EC=0")
	}
}

func TestRotationFRIndependent(t *testing.T) {
	// GR/FR/PR rename bases rotate together but index separate files.
	s := NewState()
	s.Exec(ir.FMovI(ir.FR(32), 7.5))
	s.Exec(ir.MovI(ir.GR(32), 9))
	s.rotate(true)
	if s.ReadRegF(ir.FR(33)) != 7.5 {
		t.Error("FR rotation broken")
	}
	if s.ReadReg(ir.GR(33)) != 9 {
		t.Error("GR rotation broken")
	}
	if !s.PR[s.RenamePR(16)] {
		t.Error("predicate injection lost")
	}
}

func TestPhysIndexPanicsOnNone(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("PhysIndex(None) did not panic")
		}
	}()
	NewState().PhysIndex(ir.None)
}
