package interp

import (
	"math"
	"testing"
	"testing/quick"

	"ltsp/internal/ir"
)

func TestMemoryLoadStore(t *testing.T) {
	m := NewMemory()
	m.Store(0x1000, 8, 0x1122334455667788)
	if got := m.Load(0x1000, 8); got != 0x1122334455667788 {
		t.Errorf("load8 = %#x", got)
	}
	// Little-endian partial reads.
	if got := m.Load(0x1000, 4); got != 0x55667788 {
		t.Errorf("load4 = %#x", got)
	}
	if got := m.Load(0x1000, 2); got != 0x7788 {
		t.Errorf("load2 = %#x", got)
	}
	if got := m.Load(0x1004, 1); got != 0x44 {
		t.Errorf("load1 = %#x", got)
	}
	// Uninitialized memory reads zero.
	if got := m.Load(0x999000, 8); got != 0 {
		t.Errorf("uninit = %#x", got)
	}
}

func TestMemoryCrossPage(t *testing.T) {
	m := NewMemory()
	addr := int64(4096 - 3) // straddles the page boundary
	m.Store(addr, 8, -1)
	if got := m.Load(addr, 8); got != -1 {
		t.Errorf("cross-page = %#x", got)
	}
}

func TestMemoryFloat(t *testing.T) {
	m := NewMemory()
	m.StoreF(0x2000, 3.14159)
	if got := m.LoadF(0x2000); got != 3.14159 {
		t.Errorf("loadF = %v", got)
	}
}

func TestQuickMemoryRoundTrip(t *testing.T) {
	m := NewMemory()
	f := func(addr int64, val int64) bool {
		addr &= 0xffff_ffff
		m.Store(addr, 8, val)
		return m.Load(addr, 8) == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStateConstants(t *testing.T) {
	s := NewState()
	if !s.PR[0] {
		t.Error("p0 must be true")
	}
	if s.FR[1] != 1.0 {
		t.Error("f1 must be 1.0")
	}
	// Writes to architectural constants are dropped.
	s.Exec(ir.MovI(ir.GR(0), 42))
	if s.GR[0] != 0 {
		t.Error("r0 written")
	}
}

func TestRotationRename(t *testing.T) {
	s := NewState()
	// Before any rotation, logical == physical.
	if s.RenameGR(40) != 40 || s.RenamePR(20) != 20 {
		t.Error("initial rename not identity")
	}
	// Write r32, rotate: the value must appear in r33.
	s.Exec(ir.MovI(ir.GR(32), 7))
	s.rotate(false)
	if got := s.ReadReg(ir.GR(33)); got != 7 {
		t.Errorf("after rotation r33 = %d, want 7", got)
	}
	// Static registers don't rotate.
	s.Exec(ir.MovI(ir.GR(5), 9))
	s.rotate(false)
	if got := s.ReadReg(ir.GR(5)); got != 9 {
		t.Errorf("static r5 rotated away: %d", got)
	}
}

func TestRotationWraps(t *testing.T) {
	s := NewState()
	s.Exec(ir.MovI(ir.GR(32), 1234))
	for i := 0; i < 96; i++ {
		s.rotate(false)
	}
	// After a full revolution the value is back in r32.
	if got := s.ReadReg(ir.GR(32)); got != 1234 {
		t.Errorf("after 96 rotations r32 = %d", got)
	}
}

func TestCtopSemantics(t *testing.T) {
	s := NewState()
	// trip = 3, 2 stages: LC = 2, EC = 2 -> 4 kernel iterations.
	s.LC, s.EC = 2, 2
	s.PR[RotPRLo] = true
	var injected []bool
	iters := 1
	for {
		taken := s.Ctop()
		injected = append(injected, s.PR[s.RenamePR(RotPRLo)])
		if !taken {
			break
		}
		iters++
	}
	if iters != 4 {
		t.Errorf("kernel iterations = %d, want trip+stages-1 = 4", iters)
	}
	// Injections: 1,1 while LC counts down, then 0s during drain.
	want := []bool{true, true, false, false}
	for i := range want {
		if injected[i] != want[i] {
			t.Errorf("injection %d = %v, want %v", i, injected[i], want[i])
		}
	}
	if s.LC != 0 || s.EC != 0 {
		t.Errorf("final LC=%d EC=%d", s.LC, s.EC)
	}
}

func TestCloopSemantics(t *testing.T) {
	s := NewState()
	s.LC = 4
	n := 1
	for s.Cloop() {
		n++
	}
	if n != 5 {
		t.Errorf("cloop iterations = %d, want 5", n)
	}
}

func TestCmpUncClearsWhenPredicatedOff(t *testing.T) {
	s := NewState()
	pOff := ir.PR(5) // false
	pt, pf := ir.PR(6), ir.PR(7)
	s.PR[6], s.PR[7] = true, true
	cmp := ir.Predicated(pOff, ir.CmpEqI(pt, pf, ir.GR(4), 0))
	s.Exec(cmp)
	if s.PR[6] || s.PR[7] {
		t.Error("cmp.unc under false predicate did not clear destinations")
	}
}

func TestPredicatedOffSkipsSideEffects(t *testing.T) {
	s := NewState()
	s.GR[4] = 0x1000
	off := ir.PR(5)
	ld := ir.Predicated(off, ir.Ld(ir.GR(6), ir.GR(4), 8, 8))
	eff, _ := s.Exec(ld)
	if eff.Executed {
		t.Error("predicated-off load executed")
	}
	if s.GR[4] != 0x1000 {
		t.Error("predicated-off post-increment applied")
	}
}

func TestGroupReadsBeforeWrites(t *testing.T) {
	// Swap in one issue group: both movs must read the old values.
	s := NewState()
	s.GR[4], s.GR[5] = 111, 222
	s.Group([]*ir.Instr{
		ir.Mov(ir.GR(4), ir.GR(5)),
		ir.Mov(ir.GR(5), ir.GR(4)),
	})
	if s.GR[4] != 222 || s.GR[5] != 111 {
		t.Errorf("swap failed: r4=%d r5=%d", s.GR[4], s.GR[5])
	}
}

func TestExecArithmetic(t *testing.T) {
	s := NewState()
	s.GR[4], s.GR[5] = 10, 3
	tests := []struct {
		in   *ir.Instr
		reg  ir.Reg
		want int64
	}{
		{ir.Add(ir.GR(6), ir.GR(4), ir.GR(5)), ir.GR(6), 13},
		{ir.Sub(ir.GR(6), ir.GR(4), ir.GR(5)), ir.GR(6), 7},
		{ir.AddI(ir.GR(6), ir.GR(4), -4), ir.GR(6), 6},
		{ir.Mul(ir.GR(6), ir.GR(4), ir.GR(5)), ir.GR(6), 30},
		{ir.Shladd(ir.GR(6), ir.GR(4), 2, ir.GR(5)), ir.GR(6), 43},
		{&ir.Instr{Op: ir.OpXor, Dsts: []ir.Reg{ir.GR(6)}, Srcs: []ir.Reg{ir.GR(4), ir.GR(5)}}, ir.GR(6), 9},
		{&ir.Instr{Op: ir.OpShlI, Dsts: []ir.Reg{ir.GR(6)}, Srcs: []ir.Reg{ir.GR(4)}, Imm: 3}, ir.GR(6), 80},
	}
	for _, tt := range tests {
		s.Exec(tt.in)
		if got := s.ReadReg(tt.reg); got != tt.want {
			t.Errorf("%v: got %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestExecFP(t *testing.T) {
	s := NewState()
	s.FR[4], s.FR[5], s.FR[6] = 2.0, 3.0, 4.0
	s.Exec(ir.FMA(ir.FR(7), ir.FR(4), ir.FR(5), ir.FR(6)))
	if s.FR[7] != 10.0 {
		t.Errorf("fma = %v", s.FR[7])
	}
	s.Exec(ir.FAdd(ir.FR(7), ir.FR(4), ir.FR(5)))
	if s.FR[7] != 5.0 {
		t.Errorf("fadd = %v", s.FR[7])
	}
	s.Exec(&ir.Instr{Op: ir.OpSetF, Dsts: []ir.Reg{ir.FR(7)}, Srcs: []ir.Reg{ir.GR(4)}})
	if s.FR[7] != float64(s.GR[4]) {
		t.Errorf("setf = %v", s.FR[7])
	}
}

func TestExecCompare(t *testing.T) {
	s := NewState()
	s.GR[4], s.GR[5] = 1, 2
	s.Exec(ir.CmpLt(ir.PR(6), ir.PR(7), ir.GR(4), ir.GR(5)))
	if !s.PR[6] || s.PR[7] {
		t.Error("cmp.lt results wrong")
	}
}

func TestExecMemOps(t *testing.T) {
	s := NewState()
	s.GR[4] = 0x3000
	s.Mem.Store(0x3000, 4, 77)
	eff, _ := s.Exec(ir.Ld(ir.GR(6), ir.GR(4), 4, 4))
	if !eff.Executed || !eff.IsLoad || eff.Addr != 0x3000 {
		t.Errorf("load effect = %+v", eff)
	}
	if s.GR[6] != 77 || s.GR[4] != 0x3004 {
		t.Errorf("load result %d, base %#x", s.GR[6], s.GR[4])
	}
	s.GR[7] = 55
	eff, _ = s.Exec(ir.St(ir.GR(4), ir.GR(7), 4, 4))
	if !eff.IsStore || eff.Addr != 0x3004 {
		t.Errorf("store effect = %+v", eff)
	}
	if s.Mem.Load(0x3004, 4) != 55 || s.GR[4] != 0x3008 {
		t.Error("store semantics wrong")
	}
	eff, _ = s.Exec(ir.Lfetch(ir.GR(4), 8, ir.HintL2))
	if !eff.IsPrefetch || eff.Addr != 0x3008 || s.GR[4] != 0x3010 {
		t.Errorf("lfetch effect = %+v base=%#x", eff, s.GR[4])
	}
}

func TestFPLoadEffect(t *testing.T) {
	s := NewState()
	s.GR[4] = 0x4000
	s.Mem.StoreF(0x4000, 2.5)
	eff, _ := s.Exec(ir.LdF(ir.FR(6), ir.GR(4), 8))
	if !eff.FP || !eff.IsLoad {
		t.Errorf("ldf effect = %+v", eff)
	}
	if s.FR[6] != 2.5 {
		t.Errorf("ldf = %v", s.FR[6])
	}
	if got := s.ReadRegF(ir.FR(6)); got != 2.5 {
		t.Errorf("ReadRegF = %v", got)
	}
}

func TestSnapshot(t *testing.T) {
	m := NewMemory()
	m.Store(0x1000, 8, 42)
	snap := m.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot pages = %d", len(snap))
	}
	pg := snap[1]
	if pg[0] != 42 {
		t.Error("snapshot content wrong")
	}
}

func TestRunSequentialProgram(t *testing.T) {
	// sum += 2 per iteration over 10 iterations.
	p := &Program{
		Name: "sum",
		Groups: [][]*ir.Instr{
			{ir.AddI(ir.GR(4), ir.GR(4), 2)},
		},
		Setup:   []ir.RegInit{{Reg: ir.GR(4), Val: 0}},
		LiveOut: []ir.Reg{ir.GR(4)},
	}
	s, err := Run(p, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.ReadReg(ir.GR(4)); got != 20 {
		t.Errorf("sum = %d, want 20", got)
	}
}

func TestRunRejectsBadTrip(t *testing.T) {
	p := &Program{Groups: [][]*ir.Instr{{ir.AddI(ir.GR(4), ir.GR(4), 1)}}}
	if _, err := Run(p, 0, nil); err == nil {
		t.Error("trip 0 accepted (counted loops run at least once)")
	}
	if _, err := Run(&Program{}, 5, nil); err == nil {
		t.Error("empty program accepted")
	}
}

func TestKernelIterations(t *testing.T) {
	p := &Program{Pipelined: true, Stages: 5}
	if got := p.KernelIterations(10); got != 14 {
		t.Errorf("kernel iterations = %d, want 14", got)
	}
	q := &Program{}
	if got := q.KernelIterations(10); got != 10 {
		t.Errorf("sequential iterations = %d", got)
	}
}

func TestListing(t *testing.T) {
	p := &Program{
		Name:      "k",
		Pipelined: true,
		Stages:    2,
		Groups:    [][]*ir.Instr{{ir.AddI(ir.GR(4), ir.GR(4), 1)}},
	}
	s := p.Listing()
	if s == "" || !contains(s, "br.ctop") || !contains(s, "II=1") {
		t.Errorf("listing = %q", s)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestGetFTruncates(t *testing.T) {
	s := NewState()
	s.FR[4] = 7.9
	s.Exec(&ir.Instr{Op: ir.OpGetF, Dsts: []ir.Reg{ir.GR(5)}, Srcs: []ir.Reg{ir.FR(4)}})
	if s.GR[5] != 7 {
		t.Errorf("getf = %d", s.GR[5])
	}
}

func TestFMovIAndNaN(t *testing.T) {
	s := NewState()
	s.Exec(ir.FMovI(ir.FR(4), math.Inf(1)))
	if !math.IsInf(s.FR[4], 1) {
		t.Error("fmovi inf lost")
	}
}

// TestUnknownOpIsError: an op outside the executable set — reachable from
// adversarial wire input — reports an error instead of panicking, both
// from a direct Exec and through Run.
func TestUnknownOpIsError(t *testing.T) {
	s := NewState()
	bad := &ir.Instr{Op: ir.Op(250)}
	if _, err := s.Exec(bad); err == nil {
		t.Fatal("Exec of unknown op: want error")
	}
	p := &Program{Name: "bad", Groups: [][]*ir.Instr{{bad}}}
	if _, err := Run(p, 1, nil); err == nil {
		t.Fatal("Run of unknown op: want error")
	}
}
