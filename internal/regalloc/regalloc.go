// Package regalloc performs rotating register allocation for modulo-
// scheduled loops in the style of Rau et al., "Register Allocation for
// Software Pipelined Loops" (PLDI 1992): every value produced per source
// iteration gets a *blade* of consecutive rotating registers whose width is
// the number of kernel iterations the value stays live, and blades are
// packed into the rotating region of each register file. Values updated in
// place (post-incremented address bases, accumulators) and loop invariants
// are assigned static registers instead.
//
// Allocation failure — the paper's trigger for the pipeliner's fallback
// ladder (reduce non-critical load latencies, then raise the II) — is
// reported as *OverflowError.
package regalloc

import (
	"fmt"
	"sort"

	"ltsp/internal/ddg"
	"ltsp/internal/ir"
	"ltsp/internal/machine"
	"ltsp/internal/modsched"
	"ltsp/internal/obs"
)

// Kind classifies how a virtual register was allocated.
type Kind uint8

const (
	// KindRotating: the value gets a blade in the rotating region.
	KindRotating Kind = iota
	// KindStatic: in-place updates and loop invariants.
	KindStatic
)

// Alloc is the physical placement of one virtual register.
type Alloc struct {
	Kind Kind
	// Base is the physical register number. For rotating allocations it is
	// the logical register the defining instruction writes; use sites read
	// Base + delta (see UseDelta).
	Base int
	// Width is the blade width in registers (rotating only).
	Width int
}

// Assignment is the result of allocating one scheduled loop.
type Assignment struct {
	// Phys maps each virtual register to its allocation.
	Phys map[ir.Reg]Alloc
	// StagePredBase is the first rotating predicate (p16); stage s is
	// guarded by PR StagePredBase+s.
	StagePredBase int
	// Stats summarizes register consumption for the paper's Sec. 4.5
	// statistics.
	Stats Stats
	// RotInits are initial values that must be placed into rotating
	// registers before loop entry (loop-carried live-in values).
	RotInits []ir.RegInit
}

// Stats counts allocated registers by file.
type Stats struct {
	RotGR, RotFR, RotPR          int // rotating registers consumed (blade widths summed)
	StaticGR, StaticFR, StaticPR int // static registers consumed
	// Spills is the number of prolog/epilog spill+fill pairs forced by
	// static-register pressure beyond the file size (cost paid once per
	// loop execution).
	Spills int
}

// TotalGR returns all general registers the loop consumes.
func (s Stats) TotalGR() int { return s.RotGR + s.StaticGR }

// TotalFR returns all FP registers the loop consumes.
func (s Stats) TotalFR() int { return s.RotFR + s.StaticFR }

// TotalPR returns all predicate registers the loop consumes.
func (s Stats) TotalPR() int { return s.RotPR + s.StaticPR }

// OverflowError reports that the rotating region of a register file cannot
// hold the blades the schedule requires.
type OverflowError struct {
	Class    ir.RegClass
	Need     int
	Capacity int
}

// Error implements error.
func (e *OverflowError) Error() string {
	return fmt.Sprintf("regalloc: rotating %s region overflow: need %d, have %d",
		e.Class, e.Need, e.Capacity)
}

// UseDelta returns the rotating-register offset a use site adds to the
// defining blade's base: stage(use) + distance - stage(def), where distance
// is 1 when the definition appears at or after the use in program order
// (the use consumes the previous source iteration's value).
func UseDelta(l *ir.Loop, s *modsched.Schedule, useID int, r ir.Reg) (int, bool) {
	defID, ok := defSite(l, r)
	if !ok {
		return 0, false
	}
	dist := 0
	if defID >= useID {
		dist = 1
	}
	return s.Stage(useID) + dist - s.Stage(defID), true
}

func defSite(l *ir.Loop, r ir.Reg) (int, bool) {
	for i, in := range l.Body {
		for _, d := range in.AllDefs() {
			if d == r {
				return i, true
			}
		}
	}
	return 0, false
}

// Allocate assigns physical registers for the scheduled loop. The graph g
// must be the DDG the schedule was produced from (it supplies the in-place
// classification).
func Allocate(m *machine.Model, g *ddg.Graph, s *modsched.Schedule) (*Assignment, error) {
	l := g.Loop
	asn := &Assignment{
		Phys:          map[ir.Reg]Alloc{},
		StagePredBase: 16,
	}
	inPlace := g.InPlaceRegs()

	// Gather virtual registers: defined-in-body vs invariant (setup-only).
	type vreg struct {
		r     ir.Reg
		defID int
	}
	var defined []vreg
	seen := map[ir.Reg]bool{}
	for i, in := range l.Body {
		for _, d := range in.AllDefs() {
			if !d.Virtual || seen[d] {
				continue
			}
			seen[d] = true
			defined = append(defined, vreg{d, i})
		}
	}
	var invariant []ir.Reg
	for _, in := range l.Body {
		for _, u := range in.AllUses() {
			if u.Virtual && !seen[u] {
				seen[u] = true
				invariant = append(invariant, u)
			}
		}
	}
	sort.Slice(invariant, func(a, b int) bool {
		if invariant[a].Class != invariant[b].Class {
			return invariant[a].Class < invariant[b].Class
		}
		return invariant[a].N < invariant[b].N
	})

	// Blade widths for rotating candidates.
	type blade struct {
		v     vreg
		width int
		// loExt extends the blade below the definition register so the
		// pre-loop initial value of a loop-carried live-in (placed at
		// def-1+... = base+1 of the extended blade) rotates into the right
		// place: the value a stage-s consumer reads at kernel iteration
		// s+1 must sit s registers below where it will be read.
		loExt   int
		hasInit bool
	}
	var blades []blade
	var statics []vreg
	for _, v := range defined {
		if _, ip := inPlace[v.r]; ip {
			statics = append(statics, v)
			continue
		}
		maxDelta := 0
		carried := false
		for i, in := range l.Body {
			for _, u := range in.AllUses() {
				if u != v.r {
					continue
				}
				d, _ := UseDelta(l, s, i, v.r)
				if d < 0 {
					return nil, fmt.Errorf("regalloc: %s: negative rotation delta %d for %s at body[%d]",
						l.Name, d, v.r, i)
				}
				if d > maxDelta {
					maxDelta = d
				}
				if v.defID >= i {
					carried = true
				}
			}
		}
		b := blade{v: v, width: maxDelta + 1}
		if _, hasInit := l.InitValue(v.r); hasInit && carried {
			b.hasInit = true
			b.loExt = s.Stage(v.defID)
		}
		blades = append(blades, b)
	}

	// Pack blades. Stage predicates occupy the first Stages slots of the
	// rotating PR region.
	next := map[ir.RegClass]int{
		ir.ClassGR: 32,
		ir.ClassFR: 32,
		ir.ClassPR: 16 + s.Stages,
	}
	capacity := map[ir.RegClass]int{
		ir.ClassGR: 32 + m.RotGR,
		ir.ClassFR: 32 + m.RotFR,
		ir.ClassPR: 16 + m.RotPR,
	}
	sort.SliceStable(blades, func(a, b int) bool { return blades[a].v.defID < blades[b].v.defID })
	for _, b := range blades {
		lo := next[b.v.r.Class]
		base := lo + b.loExt // the register the definition writes
		total := b.loExt + b.width
		if lo+total > capacity[b.v.r.Class] {
			return nil, &OverflowError{
				Class:    b.v.r.Class,
				Need:     lo + total - (capacity[b.v.r.Class] - rotSize(m, b.v.r.Class)),
				Capacity: rotSize(m, b.v.r.Class),
			}
		}
		asn.Phys[b.v.r] = Alloc{Kind: KindRotating, Base: base, Width: b.width}
		next[b.v.r.Class] = lo + total
		switch b.v.r.Class {
		case ir.ClassGR:
			asn.Stats.RotGR += total
		case ir.ClassFR:
			asn.Stats.RotFR += total
		case ir.ClassPR:
			asn.Stats.RotPR += total
		}
		// Loop-carried live-in: the pre-loop initial value is placed at
		// lo+1 == base+1-stage(def); after stage(def)+s rotations it is
		// read at base+delta by the stage-s consumer of source iteration
		// 0 (see the derivation in interp's package comment).
		if b.hasInit {
			init, _ := l.InitEntry(b.v.r)
			init.Reg = ir.Reg{Class: b.v.r.Class, N: lo + 1}
			asn.RotInits = append(asn.RotInits, init)
		}
	}
	asn.Stats.RotPR += s.Stages // stage predicates are rotating PRs too

	// Static assignment: in-place defs first, then invariants.
	staticNext := map[ir.RegClass]int{
		ir.ClassGR: 1, // r0 is hardwired zero
		ir.ClassFR: 2, // f0/f1 are constants
		ir.ClassPR: 1, // p0 is hardwired true
	}
	staticCap := map[ir.RegClass]int{
		ir.ClassGR: 1 + m.StaticGR,
		ir.ClassFR: 2 + m.StaticFR,
		ir.ClassPR: 1 + m.StaticPR,
	}
	assignStatic := func(r ir.Reg) error {
		n := staticNext[r.Class]
		if n >= staticCap[r.Class] {
			return fmt.Errorf("regalloc: %s: static %s register file exhausted (%d in use)",
				l.Name, r.Class, n)
		}
		asn.Phys[r] = Alloc{Kind: KindStatic, Base: n}
		staticNext[r.Class] = n + 1
		switch r.Class {
		case ir.ClassGR:
			asn.Stats.StaticGR++
		case ir.ClassFR:
			asn.Stats.StaticFR++
		case ir.ClassPR:
			asn.Stats.StaticPR++
		}
		return nil
	}
	sort.SliceStable(statics, func(a, b int) bool { return statics[a].defID < statics[b].defID })
	for _, v := range statics {
		if err := assignStatic(v.r); err != nil {
			return nil, err
		}
	}
	for _, r := range invariant {
		if err := assignStatic(r); err != nil {
			return nil, err
		}
	}
	return asn, nil
}

// AllocateTraced is Allocate plus decision-trace emission: one
// obs.RegallocEvent per attempt, tagged with the schedule's II and whether
// the pipeliner had already reduced latencies to base (the fallback
// ladder's first rung) when it asked for this allocation.
func AllocateTraced(m *machine.Model, g *ddg.Graph, s *modsched.Schedule, tr *obs.Trace, reduced bool) (*Assignment, error) {
	asn, err := Allocate(m, g, s)
	if tr.On() {
		ev := obs.RegallocEvent{II: s.II, Reduced: reduced, OK: err == nil}
		if err != nil {
			ev.Err = err.Error()
		} else {
			ev.RotGR, ev.RotFR, ev.RotPR = asn.Stats.RotGR, asn.Stats.RotFR, asn.Stats.RotPR
			ev.Static = asn.Stats.StaticGR + asn.Stats.StaticFR + asn.Stats.StaticPR
		}
		tr.Emit(ev)
	}
	return asn, err
}

func rotSize(m *machine.Model, c ir.RegClass) int {
	switch c {
	case ir.ClassGR:
		return m.RotGR
	case ir.ClassFR:
		return m.RotFR
	case ir.ClassPR:
		return m.RotPR
	}
	return 0
}
