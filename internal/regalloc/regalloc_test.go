package regalloc

import (
	"testing"

	"ltsp/internal/ddg"
	"ltsp/internal/ir"
	"ltsp/internal/machine"
	"ltsp/internal/modsched"
)

func compile(t *testing.T, l *ir.Loop, lat func(*ir.Instr) int, ii int) (*ddg.Graph, *modsched.Schedule) {
	t.Helper()
	g, err := ddg.Build(l)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.Itanium2()
	if lat == nil {
		lat = func(in *ir.Instr) int { return m.LoadLatency(in, false) }
	}
	s, ok := modsched.ScheduleAtII(m, g, ii, lat, modsched.Options{})
	if !ok {
		t.Fatalf("no schedule at II=%d", ii)
	}
	return g, s
}

func runningExample() *ir.Loop {
	l := ir.NewLoop("copyadd")
	r4, r5, r6, r7, r9 := l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR()
	l.Append(ir.Ld(r4, r5, 4, 4))
	l.Append(ir.Add(r7, r4, r9))
	l.Append(ir.St(r6, r7, 4, 4))
	l.Init(r5, 0x1000)
	l.Init(r6, 0x2000)
	l.Init(r9, 1)
	return l
}

func TestAllocateRunningExample(t *testing.T) {
	l := runningExample()
	g, s := compile(t, l, nil, 1)
	m := machine.Itanium2()
	asn, err := Allocate(m, g, s)
	if err != nil {
		t.Fatal(err)
	}
	// r4 (load result) and r7 (add result) rotate; the two post-inc bases
	// and the invariant r9 are static.
	var rot, static int
	for _, a := range asn.Phys {
		switch a.Kind {
		case KindRotating:
			rot++
			if a.Base < 32 {
				t.Errorf("rotating base %d below r32", a.Base)
			}
		case KindStatic:
			static++
			if a.Base >= 32 || a.Base < 1 {
				t.Errorf("static GR base %d outside r1-r31", a.Base)
			}
		}
	}
	if rot != 2 || static != 3 {
		t.Errorf("rot=%d static=%d, want 2/3", rot, static)
	}
	// Fig. 3: the value loaded in stage 0 is read one stage later -> each
	// blade spans 2 registers.
	ldDst := l.Body[0].Dsts[0]
	if a := asn.Phys[ldDst]; a.Width != 2 {
		t.Errorf("load blade width = %d, want 2", a.Width)
	}
	// Stage predicates count into rotating PR usage (3 stages).
	if asn.Stats.RotPR != s.Stages {
		t.Errorf("RotPR = %d, want %d stage predicates", asn.Stats.RotPR, s.Stages)
	}
}

func TestBladesDisjoint(t *testing.T) {
	l := runningExample()
	g, s := compile(t, l, func(in *ir.Instr) int {
		if in.Op.IsLoad() {
			return 21
		}
		return 1
	}, 1)
	m := machine.Itanium2()
	asn, err := Allocate(m, g, s)
	if err != nil {
		t.Fatal(err)
	}
	type span struct{ lo, hi int }
	var spans []span
	for _, a := range asn.Phys {
		if a.Kind == KindRotating {
			spans = append(spans, span{a.Base, a.Base + a.Width})
		}
	}
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			a, b := spans[i], spans[j]
			if a.lo < b.hi && b.lo < a.hi {
				t.Errorf("blades overlap: %v and %v", a, b)
			}
		}
	}
}

func TestUseDelta(t *testing.T) {
	l := runningExample()
	_, s := compile(t, l, nil, 1)
	// add (body 1) uses the load's destination one stage later.
	d, ok := UseDelta(l, s, 1, l.Body[0].Dsts[0])
	if !ok || d != 1 {
		t.Errorf("UseDelta = %d,%v want 1,true", d, ok)
	}
	// The store base is read by its own instruction: distance 1, same
	// stage -> delta 1.
	base := l.Body[2].BaseReg()
	d, ok = UseDelta(l, s, 2, base)
	if !ok || d != 1 {
		t.Errorf("self UseDelta = %d,%v want 1,true", d, ok)
	}
	if _, ok := UseDelta(l, s, 1, ir.VGR(99)); ok {
		t.Error("UseDelta found a definition for an unknown register")
	}
}

func TestRotatingOverflow(t *testing.T) {
	// Shrink the rotating region so the boosted schedule cannot be
	// allocated: the paper's fallback-ladder trigger.
	m := machine.Itanium2()
	m.RotGR = 8
	l := runningExample()
	g, s := compile(t, l, func(in *ir.Instr) int {
		if in.Op.IsLoad() {
			return 21 // blade width 22 > 8
		}
		return 1
	}, 1)
	_, err := Allocate(m, g, s)
	oe, ok := err.(*OverflowError)
	if !ok {
		t.Fatalf("want OverflowError, got %v", err)
	}
	if oe.Class != ir.ClassGR || oe.Capacity != 8 {
		t.Errorf("overflow detail: %+v", oe)
	}
	if oe.Error() == "" {
		t.Error("empty error text")
	}
}

func TestCarriedLiveInInitPlacement(t *testing.T) {
	// Pointer chase: pnext is loop-carried with an initial value. The
	// allocator must extend the blade below the definition register and
	// place the init at base+1-stage(def).
	l := ir.NewLoop("chase")
	pnext, pcur := l.NewGR(), l.NewGR()
	l.Append(ir.Mov(pcur, pnext))
	l.Append(ir.Ld(pnext, pcur, 8, 0))
	l.Init(pnext, 0xbeef)
	g, s := compile(t, l, nil, 2)
	m := machine.Itanium2()
	asn, err := Allocate(m, g, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(asn.RotInits) != 1 {
		t.Fatalf("RotInits = %v", asn.RotInits)
	}
	init := asn.RotInits[0]
	if init.Val != 0xbeef {
		t.Errorf("init value = %#x", init.Val)
	}
	a := asn.Phys[pnext]
	wantReg := a.Base + 1 - s.Stage(1)
	if init.Reg.N != wantReg {
		t.Errorf("init placed at %s, want r%d (base %d, def stage %d)",
			init.Reg, wantReg, a.Base, s.Stage(1))
	}
}

func TestInPlaceGoesStatic(t *testing.T) {
	l := ir.NewLoop("acc")
	acc, x, b := l.NewGR(), l.NewGR(), l.NewGR()
	l.Init(acc, 0)
	l.Init(b, 0x1000)
	l.Append(ir.Ld(x, b, 8, 8))
	l.Append(ir.Add(acc, acc, x))
	g, s := compile(t, l, nil, 1)
	asn, err := Allocate(machine.Itanium2(), g, s)
	if err != nil {
		t.Fatal(err)
	}
	if a := asn.Phys[acc]; a.Kind != KindStatic {
		t.Errorf("in-place accumulator allocated %v, want static", a.Kind)
	}
	if a := asn.Phys[b]; a.Kind != KindStatic {
		t.Errorf("post-inc base allocated %v, want static", a.Kind)
	}
	if a := asn.Phys[x]; a.Kind != KindRotating {
		t.Errorf("load result allocated %v, want rotating", a.Kind)
	}
}

func TestStatsTotals(t *testing.T) {
	s := Stats{RotGR: 10, StaticGR: 3, RotFR: 4, StaticFR: 1, RotPR: 5, StaticPR: 2}
	if s.TotalGR() != 13 || s.TotalFR() != 5 || s.TotalPR() != 7 {
		t.Error("totals wrong")
	}
}

func TestFPBladesAndStatics(t *testing.T) {
	l := ir.NewLoop("fp")
	x, a, acc := l.NewFR(), l.NewFR(), l.NewFR()
	bx := l.NewGR()
	l.Init(bx, 0x1000)
	l.InitF(a, 1.5)
	l.InitF(acc, 0)
	l.Append(ir.LdF(x, bx, 8))
	t1 := l.NewFR()
	l.Append(ir.FMul(t1, x, a))
	l.Append(ir.FAdd(acc, acc, t1))
	g, s := compile(t, l, nil, 4)
	asn, err := Allocate(machine.Itanium2(), g, s)
	if err != nil {
		t.Fatal(err)
	}
	if asn.Phys[x].Kind != KindRotating || asn.Phys[t1].Kind != KindRotating {
		t.Error("FP temporaries must rotate")
	}
	if asn.Phys[a].Kind != KindStatic || asn.Phys[acc].Kind != KindStatic {
		t.Error("FP invariant/accumulator must be static")
	}
	if asn.Phys[a].Base < 2 {
		t.Errorf("static FR %d collides with f0/f1", asn.Phys[a].Base)
	}
	if s.Stages < 1 {
		t.Error("bogus schedule")
	}
}
