// Package repro captures compiler failures as self-contained, replayable
// bundles. When the service recovers a panic out of the compile path, or
// sampled verification catches a miscompiled kernel, it writes a bundle
// holding the exact wire request plus the failure details; `ltsp -repro
// bundle.json` replays it offline. Before a bundle is written its loop is
// shrunk by a bounded delta-debugging pass, so the on-disk repro is the
// smallest body the minimizer could find that still fails.
package repro

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"ltsp"
	"ltsp/internal/ir"
	"ltsp/internal/wire"
)

// Version tags the bundle format.
const Version = 1

// Bundle kinds.
const (
	// KindPanic: the compiler panicked while building the artifact.
	KindPanic = "panic"
	// KindVerifyFailure: the compilation succeeded but independent
	// verification (structural checker or semantic oracle) rejected it.
	KindVerifyFailure = "verify_failure"
)

// Bundle is one captured failure: the request that triggered it and what
// went wrong. Request is a complete wire.CompileRequest, so a bundle can
// be replayed offline or resubmitted to a patched server unchanged.
type Bundle struct {
	Version    int             `json:"v"`
	Kind       string          `json:"kind"`
	Request    json.RawMessage `json:"request"`
	PanicValue string          `json:"panicValue,omitempty"`
	Error      string          `json:"error,omitempty"`
	Stack      string          `json:"stack,omitempty"`
	// Minimized reports whether the delta-debugging pass managed to
	// shrink the loop while preserving the failure; Orig/MinBodyLen
	// record how far it got.
	Minimized   bool `json:"minimized"`
	OrigBodyLen int  `json:"origBodyLen,omitempty"`
	MinBodyLen  int  `json:"minBodyLen,omitempty"`
}

// Capture builds a bundle from a failing compile request. panicVal and
// stack describe a recovered panic (nil/empty for verification
// failures); failure is the verification error (nil for panics).
func Capture(kind string, req *wire.CompileRequest, panicVal any, stack []byte, failure error) *Bundle {
	b := &Bundle{Version: Version, Kind: kind}
	if data, err := json.Marshal(req); err == nil {
		b.Request = data
	}
	if panicVal != nil {
		b.PanicValue = fmt.Sprint(panicVal)
	}
	if failure != nil {
		b.Error = failure.Error()
	}
	b.Stack = string(stack)
	return b
}

// request decodes the embedded wire request.
func (b *Bundle) request() (*wire.CompileRequest, error) {
	if len(b.Request) == 0 {
		return nil, fmt.Errorf("repro: bundle has no request")
	}
	var req wire.CompileRequest
	if err := json.Unmarshal(b.Request, &req); err != nil {
		return nil, fmt.Errorf("repro: bad request in bundle: %w", err)
	}
	return &req, nil
}

// compileOnce runs one compilation with full verification under panic
// containment and returns the failure, if any. It is the ground-truth
// "does this loop still fail?" predicate for minimization and replay.
func compileOnce(l *ir.Loop, opts ltsp.Options) (failure error) {
	defer func() {
		if r := recover(); r != nil {
			failure = fmt.Errorf("panic: %v", r)
		}
	}()
	opts.Verify = true
	_, err := ltsp.Compile(l, opts)
	return err
}

// Minimize shrinks the bundle's loop with a bounded delta-debugging pass:
// remove progressively smaller chunks of the body, keeping a removal only
// when the candidate still fails compileOnce. maxAttempts bounds the
// total number of candidate compilations (<= 0 uses a small default). If
// the original loop does not fail offline (e.g. the failure needed
// server-side state), the bundle is left untouched.
func (b *Bundle) Minimize(maxAttempts int) {
	req, err := b.request()
	if err != nil {
		return
	}
	l, err := req.DecodeLoop()
	if err != nil {
		return
	}
	opts, err := req.Options.ToOptions()
	if err != nil {
		return
	}
	fails := func(cand *ir.Loop) bool { return compileOnce(cand, opts) != nil }
	min, shrunk := MinimizeLoop(l, fails, maxAttempts)
	if !shrunk {
		return
	}
	// The minimized loop must survive a wire round trip, or the bundle
	// would no longer replay.
	data, err := ir.EncodeLoop(min)
	if err != nil {
		return
	}
	if _, err := ir.DecodeLoop(data); err != nil {
		return
	}
	req.Loop = data
	if enc, err := json.Marshal(req); err == nil {
		b.Request = enc
		b.Minimized = true
		b.OrigBodyLen = len(l.Body)
		b.MinBodyLen = len(min.Body)
	}
}

// MinimizeLoop shrinks l's body while fails(candidate) stays true,
// removing chunks ddmin-style (halves, then quarters, ...) and remapping
// memory dependences onto the surviving instructions. It returns the
// smallest failing loop found and whether any shrink succeeded. fails is
// called at most maxAttempts times beyond the initial confirmation
// (<= 0 uses a default of 48); l itself is never mutated.
func MinimizeLoop(l *ir.Loop, fails func(*ir.Loop) bool, maxAttempts int) (*ir.Loop, bool) {
	if maxAttempts <= 0 {
		maxAttempts = 48
	}
	if !fails(l) {
		return l, false
	}
	cur, shrunk := l, false
	attempts := 0
	for chunk := len(cur.Body) / 2; chunk >= 1; {
		removed := false
		for start := 0; start+chunk <= len(cur.Body); start += chunk {
			if attempts >= maxAttempts {
				return cur, shrunk
			}
			cand := removeChunk(cur, start, chunk)
			attempts++
			if fails(cand) {
				cur, shrunk, removed = cand, true, true
				break // body changed; restart the scan at this granularity
			}
		}
		if !removed {
			chunk /= 2
		} else if chunk > len(cur.Body) {
			chunk = len(cur.Body) / 2
		}
	}
	return cur, shrunk
}

// removeChunk returns a copy of l with body[start:start+n) dropped:
// instruction IDs are reassigned dense, and memory dependences are
// remapped (entries touching a removed instruction are dropped).
func removeChunk(l *ir.Loop, start, n int) *ir.Loop {
	c := l.Clone()
	body := append([]*ir.Instr{}, c.Body[:start]...)
	body = append(body, c.Body[start+n:]...)
	for i, in := range body {
		in.ID = i
	}
	c.Body = body
	remap := func(id int) int {
		switch {
		case id >= start+n:
			return id - n
		case id >= start:
			return -1
		default:
			return id
		}
	}
	deps := c.MemDeps[:0]
	for _, d := range c.MemDeps {
		f, t := remap(d.From), remap(d.To)
		if f < 0 || t < 0 {
			continue
		}
		d.From, d.To = f, t
		deps = append(deps, d)
	}
	c.MemDeps = deps
	return c
}

// Write persists the bundle under dir (created if missing). The file name
// is derived from the bundle's content hash, so repeated captures of the
// same failure coalesce onto one file. It returns the full path.
func (b *Bundle) Write(dir string) (string, error) {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	path := filepath.Join(dir, fmt.Sprintf("repro-%s-%s.json", b.Kind, hex.EncodeToString(sum[:8])))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// Load reads a bundle from disk.
func Load(path string) (*Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("repro: %s: %w", path, err)
	}
	if b.Version != Version {
		return nil, fmt.Errorf("repro: %s: unsupported bundle version %d (want %d)", path, b.Version, Version)
	}
	return &b, nil
}

// ReplayResult reports what happened when a bundle was re-run.
type ReplayResult struct {
	// Reproduced is true when the replay failed again (compile error,
	// panic, or verification failure).
	Reproduced bool
	// Detail describes the replay outcome for humans.
	Detail string
}

// Replay re-runs the bundled compilation offline with full verification
// and panic containment. The error return covers bundle-level problems
// (undecodable request); whether the original failure reproduced is in
// the result.
func (b *Bundle) Replay() (*ReplayResult, error) {
	req, err := b.request()
	if err != nil {
		return nil, err
	}
	l, err := req.DecodeLoop()
	if err != nil {
		return &ReplayResult{Reproduced: true,
			Detail: fmt.Sprintf("loop rejected at decode: %v", err)}, nil
	}
	opts, err := req.Options.ToOptions()
	if err != nil {
		return nil, err
	}
	if failure := compileOnce(l, opts); failure != nil {
		return &ReplayResult{Reproduced: true, Detail: failure.Error()}, nil
	}
	return &ReplayResult{Detail: "compilation and verification now succeed"}, nil
}
