package repro_test

import (
	"strings"
	"testing"

	"ltsp"
	"ltsp/internal/ir"
	"ltsp/internal/repro"
	"ltsp/internal/wire"
)

// chainLoop builds a loop whose body is a movi/add chain of n pairs
// feeding independent stores, so chunks of it can be removed without
// breaking the rest.
func chainLoop(n int) *ir.Loop {
	l := ir.NewLoop("chain")
	base := l.NewGR()
	l.Init(base, 0x100000)
	for i := 0; i < n; i++ {
		v := l.NewGR()
		l.Append(ir.MovI(v, int64(i)))
		st := ir.St(base, v, 8, 8)
		l.Append(st)
	}
	l.LiveOut = []ir.Reg{base}
	return l
}

// TestMinimizeLoopSynthetic shrinks a loop against a synthetic failure
// predicate ("the marker instruction is still present") and checks the
// minimizer converges on a smaller failing body.
func TestMinimizeLoopSynthetic(t *testing.T) {
	l := chainLoop(8)           // 16 instructions
	marker := l.Body[6].Dsts[0] // the MovI of the fourth pair
	fails := func(cand *ir.Loop) bool {
		for _, in := range cand.Body {
			if len(in.Dsts) > 0 && in.Dsts[0] == marker {
				return true
			}
		}
		return false
	}
	min, shrunk := repro.MinimizeLoop(l, fails, 200)
	if !shrunk {
		t.Fatal("minimizer failed to remove anything")
	}
	if !fails(min) {
		t.Fatal("minimized loop no longer fails")
	}
	if len(min.Body) >= len(l.Body) {
		t.Fatalf("minimized body = %d instructions, want < %d", len(min.Body), len(l.Body))
	}
	if len(l.Body) != 16 {
		t.Fatalf("original loop mutated: %d instructions", len(l.Body))
	}
	t.Logf("minimized %d -> %d instructions", len(l.Body), len(min.Body))
}

// TestMinimizeLoopNoFalseShrink: when the original does not fail, the
// loop is returned untouched.
func TestMinimizeLoopNoFalseShrink(t *testing.T) {
	l := chainLoop(4)
	min, shrunk := repro.MinimizeLoop(l, func(*ir.Loop) bool { return false }, 100)
	if shrunk || len(min.Body) != len(l.Body) {
		t.Fatalf("minimizer shrank a non-failing loop: %d -> %d", len(l.Body), len(min.Body))
	}
}

func validRequest(t *testing.T) *wire.CompileRequest {
	t.Helper()
	l := ir.NewLoop("ok")
	v, b := l.NewGR(), l.NewGR()
	ld := ir.Ld(v, b, 4, 4)
	ld.Mem.Stride, ld.Mem.StrideBytes = ir.StrideUnit, 4
	l.Append(ld)
	l.Init(b, 0x100000)
	l.LiveOut = []ir.Reg{b}
	req, err := wire.NewCompileRequest(l, ltsp.Options{LatencyTolerant: true, TripEstimate: 100})
	if err != nil {
		t.Fatal(err)
	}
	return req
}

// TestCaptureWriteLoadReplay round-trips a bundle through disk and
// replays it.
func TestCaptureWriteLoadReplay(t *testing.T) {
	req := validRequest(t)
	b := repro.Capture(repro.KindPanic, req, "boom", []byte("stack trace"), nil)
	if b.PanicValue != "boom" || b.Stack != "stack trace" || b.Kind != repro.KindPanic {
		t.Fatalf("capture = %+v", b)
	}

	dir := t.TempDir()
	path, err := b.Write(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Same content writes to the same file (content-addressed name).
	path2, err := b.Write(dir)
	if err != nil {
		t.Fatal(err)
	}
	if path != path2 {
		t.Errorf("re-write moved the bundle: %s vs %s", path, path2)
	}

	loaded, err := repro.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.PanicValue != "boom" {
		t.Fatalf("loaded bundle = %+v", loaded)
	}
	res, err := loaded.Replay()
	if err != nil {
		t.Fatal(err)
	}
	// The request compiles and verifies clean, so the recorded panic does
	// not reproduce offline.
	if res.Reproduced {
		t.Fatalf("healthy request reproduced a failure: %s", res.Detail)
	}
}

// TestReplayReproducesBadLoop: a bundle holding a semantically invalid
// loop reproduces at decode time.
func TestReplayReproducesBadLoop(t *testing.T) {
	l := ir.NewLoop("dup")
	r := l.NewGR()
	l.Append(ir.MovI(r, 1))
	l.Append(ir.MovI(r, 2))
	l.LiveOut = []ir.Reg{r}
	req, err := wire.NewCompileRequest(l, ltsp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := repro.Capture(repro.KindPanic, req, "decode-adjacent crash", nil, nil)
	res, err := b.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reproduced || !strings.Contains(res.Detail, "decode") {
		t.Fatalf("replay = %+v, want reproduced at decode", res)
	}
}

// TestLoadRejectsBadBundles covers the bundle-level error paths.
func TestLoadRejectsBadBundles(t *testing.T) {
	if _, err := repro.Load("/nonexistent/bundle.json"); err == nil {
		t.Error("Load of a missing file succeeded")
	}
	b := repro.Capture(repro.KindPanic, validRequest(t), "x", nil, nil)
	b.Version = 99
	path, err := b.Write(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repro.Load(path); err == nil {
		t.Error("Load accepted an unsupported bundle version")
	}
}
