package server

// Read-repair: after this node creates an artifact — a local compile, a
// peer cache-fill written through, an anti-entropy pull, or a disk serve
// of a hash it owns — it asynchronously replicates the entry to members
// of the hash's replica set that do not hold it yet. Repairs are
// fire-and-forget goroutines registered on the server's work group (so
// Shutdown drains them) and bounded by a token-bucket budget so a burst
// of cache misses cannot turn into a burst of cluster traffic.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"ltsp/internal/cluster"
	"ltsp/internal/store"
	"ltsp/internal/telemetry"
)

// DefaultRepairBudget is the default read-repair budget in repairs per
// second. A repair costs each probed peer one HEAD and at most one PUT
// of an artifact envelope, so 8/s keeps background replication traffic
// far below serving traffic while still reconverging a freshly restarted
// replica in seconds under ordinary load.
const DefaultRepairBudget = 8

// repairer is a lazy-refill token bucket: take() spends one token,
// tokens refill continuously at rate per second up to burst.
type repairer struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func newRepairer(rate float64) *repairer {
	burst := rate
	if burst < 1 {
		burst = 1
	}
	return &repairer{rate: rate, burst: burst, tokens: burst, last: time.Now()}
}

func (r *repairer) take() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now()
	r.tokens += now.Sub(r.last).Seconds() * r.rate
	r.last = now
	if r.tokens > r.burst {
		r.tokens = r.burst
	}
	if r.tokens < 1 {
		return false
	}
	r.tokens--
	return true
}

// scheduleRepair evaluates an artifact creation for read-repair and, when
// the replica set has members that might lack the entry, spends one
// budget token and launches the repair goroutine. It never blocks the
// caller: the hot path pays a ring read, a health filter and a token
// check.
func (s *Server) scheduleRepair(e *store.Entry) {
	if s.repair == nil {
		return
	}
	ring := s.ring()
	if ring == nil {
		return
	}
	owners := ring.Owners(e.Hash, s.cfg.Replication)
	targets := make([]cluster.Peer, 0, len(owners))
	for _, p := range owners {
		if p.ID != s.cfg.Self && s.health.Eligible(p.ID) {
			targets = append(targets, p)
		}
	}
	if len(targets) == 0 {
		return
	}
	if !s.repair.take() {
		s.metrics.RepairDropped.Add(1)
		return
	}
	s.metrics.RepairRuns.Add(1)
	s.work.Add(1)
	go func() {
		defer s.work.Done()
		s.repairRun(e, targets)
	}()
}

// repairRun probes each replica-set target and pushes the entry to the
// ones that lack it. Each run records a read_repair span timeline in the
// trace registry, so repair activity is observable next to request
// traces.
func (s *Server) repairRun(e *store.Entry, targets []cluster.Peer) {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.PeerTimeout)
	defer cancel()
	tr := telemetry.New("")
	root := tr.Start("read_repair", nil)
	root.SetAttr("hash", e.Hash[:min(12, len(e.Hash))])
	pushed, skipped, failed := 0, 0, 0
	for _, p := range targets {
		span := tr.Start("repair_peer", root)
		span.SetAttr("peer", p.ID)
		has, err := s.hasArtifact(ctx, p, e.Hash)
		switch {
		case err != nil:
			failed++
			s.metrics.RepairErrors.Add(1)
			if ctx.Err() == nil {
				s.health.ReportFailure(p.ID)
			}
			span.SetAttr("outcome", "probe_error")
		case has:
			skipped++
			s.metrics.RepairSkipped.Add(1)
			s.health.ReportSuccess(p.ID)
			span.SetAttr("outcome", "replicated")
		default:
			if err := s.putArtifact(ctx, p, e); err != nil {
				failed++
				s.metrics.RepairErrors.Add(1)
				if ctx.Err() == nil {
					s.health.ReportFailure(p.ID)
				}
				span.SetAttr("outcome", "push_error")
				s.logger.Debug("read-repair push failed", "hash", e.Hash[:12], "peer", p.ID, "err", err)
			} else {
				pushed++
				s.metrics.RepairPushes.Add(1)
				s.health.ReportSuccess(p.ID)
				span.SetAttr("outcome", "pushed")
			}
		}
		span.End()
	}
	root.SetAttr("pushed", fmt.Sprintf("%d", pushed))
	root.SetAttr("replicated", fmt.Sprintf("%d", skipped))
	root.End()
	tr.Finish("read_repair "+e.Hash[:min(12, len(e.Hash))], statusForRepair(failed))
	s.traces.Record(tr)
}

func statusForRepair(failed int) int {
	if failed > 0 {
		return http.StatusBadGateway
	}
	return http.StatusOK
}

// hasArtifact probes whether a peer already holds an artifact (HEAD on
// the artifact endpoint). A 404 is a definitive "no"; any other non-200
// answer is an error.
func (s *Server) hasArtifact(ctx context.Context, p cluster.Peer, hash string) (bool, error) {
	url := strings.TrimRight(p.Addr, "/") + "/v2/artifacts/" + hash
	req, err := http.NewRequestWithContext(ctx, http.MethodHead, url, nil)
	if err != nil {
		return false, err
	}
	resp, err := s.peerHTTP.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	switch resp.StatusCode {
	case http.StatusOK:
		return true, nil
	case http.StatusNotFound:
		return false, nil
	default:
		return false, fmt.Errorf("peer %s: HEAD status %d", p.ID, resp.StatusCode)
	}
}

// putArtifact pushes one artifact envelope to a peer (the read-repair
// transfer). The receiver re-verifies integrity and never overwrites an
// existing entry, so a push can only add a missing replica.
func (s *Server) putArtifact(ctx context.Context, p cluster.Peer, e *store.Entry) error {
	body, err := json.Marshal(wireFromEntry(e))
	if err != nil {
		return err
	}
	url := strings.TrimRight(p.Addr, "/") + "/v2/artifacts/" + e.Hash
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.peerHTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("peer %s: PUT status %d", p.ID, resp.StatusCode)
	}
	return nil
}
