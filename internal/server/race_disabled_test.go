//go:build !race

package server_test

// raceEnabled reports whether the race detector is instrumenting this
// test binary; timing assertions are skipped when it is.
const raceEnabled = false
