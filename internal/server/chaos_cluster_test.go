package server_test

// Cluster chaos: the persistence and peer-fill layers under seeded
// faults. A node dies and restarts mid-batch while a fleet-aware client
// keeps compiling; hung peers must never leak the hedged lookup
// goroutines; a restarted node must warm-start from its disk store.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"ltsp/internal/cluster"
	"ltsp/internal/faultinject"
	"ltsp/internal/server"
	"ltsp/internal/store"
	"ltsp/internal/wire"
	"ltsp/ltspclient"
)

// TestChaosPeerFillHungOwnersNoLeaks: every replica that owns the hash
// hangs without answering. The hedged lookup must fan out, hit the
// PeerTimeout budget, fall back to a local compile — and every fetch
// goroutine must exit once the hung peers finally see the cancellation.
func TestChaosPeerFillHungOwnersNoLeaks(t *testing.T) {
	checkGoroutineLeaks(t)

	// Two hung "peers": they accept the connection and then sit on it
	// until the client gives up.
	var hung atomic.Int64
	hang := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hung.Add(1)
		<-r.Context().Done()
	})
	tsA := httptest.NewServer(hang)
	t.Cleanup(tsA.Close)
	tsB := httptest.NewServer(hang)
	t.Cleanup(tsB.Close)

	realH := &swapHandler{}
	tsC := httptest.NewServer(realH)
	t.Cleanup(tsC.Close)

	peers := []cluster.Peer{
		{ID: "a", Addr: tsA.URL},
		{ID: "b", Addr: tsB.URL},
		{ID: "c", Addr: tsC.URL},
	}
	srv := server.New(server.Config{
		Peers:          peers,
		Self:           "c",
		Replication:    2,
		PeerTimeout:    200 * time.Millisecond,
		PeerHedgeDelay: 20 * time.Millisecond,
	})
	realH.Set(srv)

	// Find hashes whose whole replica set is the two hung nodes, so the
	// fill has no healthy replica to fall back to.
	ring := cluster.New(cluster.Static(peers), 0)
	var reqs []*wire.CompileRequest
	for k := int64(0); len(reqs) < 3 && k < 2048; k++ {
		req := compileRequest(t, copyAddLoop(5000+k))
		hash, err := req.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if !ring.IsOwner("c", hash, 2) {
			reqs = append(reqs, req)
		}
	}
	if len(reqs) < 3 {
		t.Fatal("no hashes owned exclusively by the hung peers")
	}

	for i, req := range reqs {
		resp, body := post(t, tsC.URL+"/v2/compile", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("compile %d with hung owners: %s: %s", i, resp.Status, body)
		}
	}

	var m clusterMetricsDoc
	get(t, tsC.URL+"/metrics", &m)
	if m.compiles() != int64(len(reqs)) {
		t.Fatalf("executed %d compilations, want %d local fallbacks", m.compiles(), len(reqs))
	}
	if m.Cluster == nil || m.Cluster.PeerMisses < int64(len(reqs)) {
		t.Fatalf("cluster metrics = %+v, want >= %d peer misses", m.Cluster, len(reqs))
	}
	if hung.Load() < int64(2*len(reqs)) {
		t.Fatalf("hung peers saw %d fetches, want %d (hedge must fan out to both replicas)",
			hung.Load(), 2*len(reqs))
	}
	// checkGoroutineLeaks (cleanup) now proves every hedged fetch exited.
}

// chaosNode is one restartable store-backed cluster member.
type chaosNode struct {
	t       *testing.T
	dir     string
	peers   []cluster.Peer
	self    string
	seed    int64
	handler *swapHandler
	ts      *httptest.Server
	srv     *server.Server
	store   *store.Store
}

func (n *chaosNode) start() {
	st, err := store.Open(n.dir, store.Options{})
	if err != nil {
		n.t.Fatal(err)
	}
	n.store = st
	n.srv = server.New(server.Config{
		PoolSize:       4,
		Store:          st,
		Peers:          n.peers,
		Self:           n.self,
		Replication:    2,
		PeerTimeout:    time.Second,
		PeerHedgeDelay: 10 * time.Millisecond,
	})
	n.handler.Set(faultinject.Wrap(n.srv, faultinject.Config{
		Seed:        n.seed,
		LatencyProb: 0.2, LatencyMin: time.Millisecond, LatencyMax: 5 * time.Millisecond,
		DropProb: 0.05,
	}))
}

// kill makes the node's address refuse work (503) and releases its
// store, like a crashed process whose port is still routed.
func (n *chaosNode) kill() {
	n.handler.Set(nil)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = n.srv.Shutdown(ctx)
	n.store.Close()
	n.srv, n.store = nil, nil
}

// TestChaosPeerKillRestartMidBatch is the cluster acceptance scenario:
// a fleet-aware client compiles a chunked workload across three
// store-backed nodes while one node is killed at a seeded chunk
// boundary and restarted two chunks later. Every item must still
// compile (failover to the surviving replicas), and the restarted node
// must come back warm: artifacts it compiled in its first life are
// served from disk, not recompiled.
func TestChaosPeerKillRestartMidBatch(t *testing.T) {
	checkGoroutineLeaks(t)
	seed := chaosSeed(t)
	rng := rand.New(rand.NewSource(seed))

	const nodes = 3
	handlers := make([]*swapHandler, nodes)
	peers := make([]cluster.Peer, nodes)
	nodeList := make([]*chaosNode, nodes)
	for i := 0; i < nodes; i++ {
		handlers[i] = &swapHandler{}
		ts := httptest.NewServer(handlers[i])
		t.Cleanup(ts.Close)
		peers[i] = cluster.Peer{ID: ts.URL, Addr: ts.URL}
		nodeList[i] = &chaosNode{
			t: t, dir: t.TempDir(), self: ts.URL,
			seed: seed + int64(i), handler: handlers[i], ts: ts,
		}
	}
	for _, n := range nodeList {
		n.peers = peers
		n.start()
		t.Cleanup(func() {
			if n.store != nil {
				n.store.Close()
			}
		})
	}

	client, err := ltspclient.New(ltspclient.Config{
		Peers:       peers,
		Replication: 2,
		Seed:        seed,
		MaxRetries:  6,
		BackoffBase: 2 * time.Millisecond, BackoffMax: 20 * time.Millisecond,
		BackoffBudget: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	const total, chunk = 60, 10
	items := make([]wire.CompileItem, total)
	hashes := make([]string, total)
	for i := range items {
		req := compileRequest(t, copyAddLoop(int64(3000+i)))
		items[i] = wire.CompileItem{Loop: req.Loop, Options: req.Options}
		h, err := req.Hash()
		if err != nil {
			t.Fatal(err)
		}
		hashes[i] = h
	}

	victim := nodeList[rng.Intn(nodes)]
	killAt := (2 + rng.Intn(2)) * chunk // after chunk 2 or 3 of 6
	restartAt := killAt + 2*chunk
	t.Logf("seed %d: killing %s after item %d, restarting after item %d",
		seed, victim.self, killAt, restartAt)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for base := 0; base < total; base += chunk {
		if base == killAt {
			victim.kill()
		}
		if base == restartAt {
			victim.start()
		}
		resp, err := client.CompileBatch(ctx, items[base:base+chunk])
		if err != nil {
			t.Fatalf("batch [%d,%d): %v (client stats %+v)", base, base+chunk, err, client.Stats())
		}
		for j, item := range resp.Items {
			if item.Error != "" || item.CompileResponse == nil || item.Hash != hashes[base+j] {
				t.Fatalf("item %d: %+v, want clean compile of %s", base+j, item, hashes[base+j])
			}
		}
	}

	// Warm-start proof: pick a pre-kill artifact the victim owns and ask
	// the restarted node for it. Its second-life memory started empty, so
	// a cached answer can only have come from its disk store.
	ring := cluster.New(cluster.Static(peers), 0)
	victimOwned := -1
	for i := 0; i < killAt; i++ {
		if owner, ok := ring.Owner(hashes[i]); ok && owner.ID == victim.self {
			victimOwned = i
			break
		}
	}
	if victimOwned < 0 {
		t.Fatalf("no pre-kill item owned by the victim (seed %d)", seed)
	}
	req := &wire.CompileRequest{Version: wire.Version, Loop: items[victimOwned].Loop, Options: items[victimOwned].Options}
	var cr server.CompileResponse
	if err := postFaulty(victim.self+"/v2/compile", req, &cr); err != nil {
		t.Fatalf("restarted node never answered: %v", err)
	}
	if !cr.Cached {
		t.Fatalf("restarted node recompiled %s instead of serving its disk store", hashes[victimOwned])
	}
	var m clusterMetricsDoc
	if err := postFaulty(victim.self+"/metrics", nil, &m); err != nil {
		t.Fatalf("restarted node metrics: %v", err)
	}
	if m.DiskHits == 0 {
		t.Fatal("restarted node reports zero disk hits after a warm-start serve")
	}
	if m.Disk == nil || m.Disk.Entries == 0 {
		t.Fatal("restarted node's store rebuilt empty despite first-life compiles")
	}
}

// postFaulty talks to a fault-injecting node directly: transport errors
// and non-200s (injected drops) are retried rather than fatal. A nil
// body issues a GET.
func postFaulty(url string, body, out any) error {
	var lastErr error
	for attempt := 0; attempt < 20; attempt++ {
		var resp *http.Response
		var err error
		if body == nil {
			resp, err = http.Get(url)
		} else {
			var payload []byte
			payload, err = json.Marshal(body)
			if err != nil {
				return err
			}
			resp, err = http.Post(url, "application/json", bytes.NewReader(payload))
		}
		if err != nil {
			lastErr = err
			time.Sleep(5 * time.Millisecond)
			continue
		}
		data, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil || resp.StatusCode != http.StatusOK {
			lastErr = fmt.Errorf("%s: %s (%v)", url, resp.Status, rerr)
			time.Sleep(5 * time.Millisecond)
			continue
		}
		return json.Unmarshal(data, out)
	}
	return lastErr
}
