package server_test

import (
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"ltsp"
	"ltsp/internal/ir"
	"ltsp/internal/repro"
	"ltsp/internal/server"
	"ltsp/internal/wire"
)

// decodeEnvelope parses the error envelope out of a response body.
func decodeEnvelope(t *testing.T, body []byte) wire.ErrorBody {
	t.Helper()
	var env wire.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("response is not an error envelope: %v\n%s", err, body)
	}
	return env.Error
}

// TestSeededPanicContained seeds a panic inside the compile flight and
// checks the full containment story: the request fails with a structured
// "internal" envelope, a replayable repro bundle lands on disk, the
// worker pool survives (a follow-up compile succeeds), and no goroutine
// leaks.
func TestSeededPanicContained(t *testing.T) {
	reproDir := t.TempDir()
	srv, ts := newTestServer(t, server.Config{VerifySample: -1, ReproDir: reproDir})
	server.SetTestCompileHook(func(l *ir.Loop) {
		if l.Name == "panicloop" {
			panic("seeded compiler panic")
		}
	})
	defer server.SetTestCompileHook(nil)

	// Warm up the HTTP client/server connection pool so keep-alive
	// goroutines don't read as leaks, then take the baseline.
	resp0, body0 := post(t, ts.URL+"/v2/compile", compileRequest(t, copyAddLoop(99)))
	if resp0.StatusCode != http.StatusOK {
		t.Fatalf("warm-up compile: %s\n%s", resp0.Status, body0)
	}
	before := runtime.NumGoroutine()

	bad := copyAddLoop(100)
	bad.Name = "panicloop"
	for round := 0; round < 2; round++ {
		// Round 2 re-sends the identical request: before the flight gained
		// panic containment this deadlocked every waiter on the key.
		resp, body := post(t, ts.URL+"/v2/compile", compileRequest(t, bad))
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("round %d: status = %s, want 500\n%s", round, resp.Status, body)
		}
		e := decodeEnvelope(t, body)
		if e.Code != wire.CodeInternal || !e.Retryable {
			t.Fatalf("round %d: envelope = %+v, want code %q retryable", round, e, wire.CodeInternal)
		}
	}
	if got := srv.Metrics().PanicsRecovered.Load(); got != 2 {
		t.Errorf("PanicsRecovered = %d, want 2", got)
	}

	// The pool and cache survived: a healthy compile still works.
	resp, body := post(t, ts.URL+"/v2/compile", compileRequest(t, copyAddLoop(101)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-panic compile: %s\n%s", resp.Status, body)
	}

	// A repro bundle was written and replays.
	entries, err := os.ReadDir(reproDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no repro bundle written")
	}
	b, err := repro.Load(filepath.Join(reproDir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if b.Kind != repro.KindPanic || b.PanicValue != "seeded compiler panic" || b.Stack == "" {
		t.Fatalf("bundle = kind %q panic %q stack %d bytes", b.Kind, b.PanicValue, len(b.Stack))
	}
	res, err := b.Replay()
	if err != nil {
		t.Fatal(err)
	}
	// The panic was seeded by the server-side hook, so the offline replay
	// compiles clean — what matters is that replay runs the bundled
	// request end to end.
	if res.Reproduced {
		t.Errorf("hook-seeded panic unexpectedly reproduced offline: %s", res.Detail)
	}

	// No goroutine leak: the flight, worker and waiter goroutines all
	// unwound. Drop idle client connections first and allow scheduling
	// time for the runtime to reap everything.
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines grew from %d to %d after contained panics", before, after)
	}
}

// TestVerifyFailureSurfaces forces the sampled verifier to reject a
// compilation and checks the failure is surfaced as an internal-error
// envelope, counted, and captured as a verify_failure bundle.
func TestVerifyFailureSurfaces(t *testing.T) {
	reproDir := t.TempDir()
	srv, ts := newTestServer(t, server.Config{VerifySample: 1, ReproDir: reproDir})
	server.SetTestVerifyHook(func(*ltsp.Compiled) error {
		return errors.New("injected: op moved by one row")
	})
	defer server.SetTestVerifyHook(nil)

	resp, body := post(t, ts.URL+"/v2/compile", compileRequest(t, copyAddLoop(110)))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %s, want 500\n%s", resp.Status, body)
	}
	e := decodeEnvelope(t, body)
	if e.Code != wire.CodeInternal {
		t.Fatalf("envelope code = %q, want %q", e.Code, wire.CodeInternal)
	}
	if srv.Metrics().VerifyRuns.Load() != 1 || srv.Metrics().VerifyFailures.Load() != 1 {
		t.Errorf("verify counters = %d runs / %d failures, want 1/1",
			srv.Metrics().VerifyRuns.Load(), srv.Metrics().VerifyFailures.Load())
	}
	entries, err := os.ReadDir(reproDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("repro dir has %d entries, want 1", len(entries))
	}
	b, err := repro.Load(filepath.Join(reproDir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if b.Kind != repro.KindVerifyFailure || b.Error == "" {
		t.Fatalf("bundle = kind %q error %q", b.Kind, b.Error)
	}

	// With the hook cleared, verification passes and the request succeeds.
	server.SetTestVerifyHook(nil)
	resp, body = post(t, ts.URL+"/v2/compile", compileRequest(t, copyAddLoop(111)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("clean compile after verify failure: %s\n%s", resp.Status, body)
	}
	if srv.Metrics().VerifyRuns.Load() != 2 || srv.Metrics().VerifyFailures.Load() != 1 {
		t.Errorf("verify counters after clean run = %d/%d, want 2/1",
			srv.Metrics().VerifyRuns.Load(), srv.Metrics().VerifyFailures.Load())
	}
}

// TestVerifySampling checks the sampling policy: rate 1 verifies every
// compilation, negative rates none, and fractional rates every ~1/rate-th.
func TestVerifySampling(t *testing.T) {
	srv, ts := newTestServer(t, server.Config{VerifySample: 0.5})
	for i := 0; i < 4; i++ {
		resp, body := post(t, ts.URL+"/v1/compile", compileRequest(t, copyAddLoop(int64(120+i))))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("compile %d: %s\n%s", i, resp.Status, body)
		}
	}
	if got := srv.Metrics().VerifyRuns.Load(); got != 2 {
		t.Errorf("VerifyRuns at rate 0.5 over 4 compiles = %d, want 2", got)
	}

	srvOff, tsOff := newTestServer(t, server.Config{VerifySample: -1})
	resp, body := post(t, tsOff.URL+"/v1/compile", compileRequest(t, copyAddLoop(130)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: %s\n%s", resp.Status, body)
	}
	if got := srvOff.Metrics().VerifyRuns.Load(); got != 0 {
		t.Errorf("VerifyRuns with sampling disabled = %d, want 0", got)
	}
}

// TestInvalidLoopEnvelope sends semantically broken loops (syntactically
// valid JSON) and checks each is rejected with the non-retryable
// invalid_loop code instead of reaching — and possibly panicking — the
// compiler.
func TestInvalidLoopEnvelope(t *testing.T) {
	_, ts := newTestServer(t, server.Config{VerifySample: -1})

	dup := ir.NewLoop("dupdef")
	r := dup.NewGR()
	dup.Append(ir.MovI(r, 1))
	dup.Append(ir.MovI(r, 2))
	dup.LiveOut = []ir.Reg{r}

	negDist := copyAddLoop(139)
	negDist.MemDeps = []ir.MemDep{{From: 2, To: 0, Distance: -1}}

	huge := copyAddLoop(140)
	huge.Body[1].Srcs[1] = ir.Reg{Class: ir.ClassGR, N: 100000}

	for _, tc := range []struct {
		name string
		l    *ir.Loop
	}{{"duplicate-def", dup}, {"negative-distance", negDist}, {"out-of-file-phys", huge}} {
		req, err := wire.NewCompileRequest(tc.l, ltsp.Options{})
		if err != nil {
			t.Fatalf("%s: encode: %v", tc.name, err)
		}
		resp, body := post(t, ts.URL+"/v2/compile", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %s, want 400\n%s", tc.name, resp.Status, body)
			continue
		}
		e := decodeEnvelope(t, body)
		if e.Code != wire.CodeInvalidLoop || e.Retryable {
			t.Errorf("%s: envelope = %+v, want non-retryable %q", tc.name, e, wire.CodeInvalidLoop)
		}
	}
}

// TestBatchItemPanicContained seeds a panic on one item of a batch and
// checks the other items still compile.
func TestBatchItemPanicContained(t *testing.T) {
	srv, ts := newTestServer(t, server.Config{VerifySample: -1})
	server.SetTestCompileHook(func(l *ir.Loop) {
		if l.Name == "panicloop" {
			panic("seeded batch panic")
		}
	})
	defer server.SetTestCompileHook(nil)

	bad := copyAddLoop(150)
	bad.Name = "panicloop"
	items := make([]wire.CompileItem, 3)
	for i, l := range []*ir.Loop{copyAddLoop(151), bad, copyAddLoop(152)} {
		req := compileRequest(t, l)
		items[i] = wire.CompileItem{Loop: req.Loop, Options: req.Options}
	}
	resp, body := post(t, ts.URL+"/v2/compile-batch",
		&wire.CompileBatchRequest{Version: wire.Version, Items: items})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %s\n%s", resp.Status, body)
	}
	var br server.CompileBatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Items) != 3 {
		t.Fatalf("batch returned %d items", len(br.Items))
	}
	if br.Items[0].Error != "" || br.Items[2].Error != "" {
		t.Errorf("healthy items failed: %+v / %+v", br.Items[0], br.Items[2])
	}
	if br.Items[1].ErrorCode != wire.CodeInternal {
		t.Errorf("panicking item = %+v, want code %q", br.Items[1], wire.CodeInternal)
	}
	if srv.Metrics().PanicsRecovered.Load() == 0 {
		t.Error("batch panic not counted")
	}
}
