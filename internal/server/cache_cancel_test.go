package server

// White-box tests of the singleflight flight lifecycle: the computation
// context must stay alive exactly as long as some waiter wants the
// artifact, and no longer. This is the property that makes both
// cooperative cancellation ("abandoned compiles stop burning CPU") and
// client-side hedging ("the losing hedge can't kill the winner's work")
// correct, so it is pinned deterministically here rather than by timing.

import (
	"context"
	"errors"
	"testing"
	"time"
)

// blockingFn returns a compute fn that signals `started`, then blocks
// until its flight context is canceled (returning errCanceledFlight) or
// `finish` is closed (returning a real artifact).
func blockingFn(started chan<- struct{}, finish <-chan struct{}) func(context.Context) (*Artifact, error) {
	return func(fctx context.Context) (*Artifact, error) {
		close(started)
		select {
		case <-fctx.Done():
			return nil, fctx.Err()
		case <-finish:
			return &Artifact{}, nil
		}
	}
}

// TestFlightCanceledWhenLastWaiterLeaves: with a single interested
// request, canceling its context cancels the in-flight computation and
// nothing is cached.
func TestFlightCanceledWhenLastWaiterLeaves(t *testing.T) {
	c := NewArtifactCache(16, &Metrics{})
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	finish := make(chan struct{})
	defer close(finish)

	go func() {
		<-started
		cancel()
	}()
	_, _, err := c.GetOrCompute(ctx, "k", blockingFn(started, finish))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled: the flight must observe the cancellation", err)
	}
	if c.Len() != 0 {
		t.Fatalf("canceled flight cached an artifact (len %d)", c.Len())
	}
}

// TestFlightSurvivesLosingWaiter: with two requests deduplicated onto
// one flight, the first one giving up must NOT cancel the computation —
// the second still gets the artifact. This is the hedging guarantee.
func TestFlightSurvivesLosingWaiter(t *testing.T) {
	c := NewArtifactCache(16, &Metrics{})
	started := make(chan struct{})
	finish := make(chan struct{})

	ctx1, cancel1 := context.WithCancel(context.Background())
	creatorDone := make(chan error, 1)
	go func() {
		_, _, err := c.GetOrCompute(ctx1, "k", blockingFn(started, finish))
		creatorDone <- err
	}()
	<-started

	// Second waiter joins the in-flight computation, then the FIRST
	// (creator) gives up. Wait until the dedup is registered before
	// canceling, so the refcount is provably 2 at cancellation time.
	ctx2 := context.Background()
	dedupJoined := make(chan struct{})
	waiterDone := make(chan error, 1)
	go func() {
		close(dedupJoined)
		art, cached, err := c.GetOrCompute(ctx2, "k", func(context.Context) (*Artifact, error) {
			t.Error("dedup waiter must not start its own computation")
			return nil, nil
		})
		if err == nil && (!cached || art == nil) {
			err = errors.New("dedup waiter: expected cached=true with an artifact")
		}
		waiterDone <- err
	}()
	<-dedupJoined
	// Give the waiter a moment to enter the select on call.done; the
	// refcount increment happens under the cache mutex before that, so
	// polling the dedup counter makes this deterministic.
	m := c.metrics
	deadline := time.Now().Add(2 * time.Second)
	for m.CacheDedups.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("dedup waiter never joined the flight")
		}
		time.Sleep(time.Millisecond)
	}

	cancel1() // the losing "hedge" gives up
	// The flight must keep running: fn would return context.Canceled
	// through creatorDone the instant its flight context were canceled.
	select {
	case err := <-creatorDone:
		t.Fatalf("flight died after the losing waiter left: %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(finish) // the computation completes for the surviving waiter
	// The creator goroutine executed fn to completion on behalf of the
	// surviving waiter, so its own call returns the artifact too.
	if err := <-creatorDone; err != nil {
		t.Fatalf("creator (executor) err = %v, want nil", err)
	}
	if err := <-waiterDone; err != nil {
		t.Fatalf("surviving waiter: %v", err)
	}
	if c.Len() != 1 {
		t.Fatalf("completed flight not cached (len %d)", c.Len())
	}
}

// TestFlightErrorNotCached: a failed computation is reported to every
// waiter and never cached.
func TestFlightErrorNotCached(t *testing.T) {
	c := NewArtifactCache(16, &Metrics{})
	boom := errors.New("boom")
	_, cached, err := c.GetOrCompute(context.Background(), "k", func(context.Context) (*Artifact, error) {
		return nil, boom
	})
	if !errors.Is(err, boom) || cached {
		t.Fatalf("got cached=%v err=%v", cached, err)
	}
	if c.Len() != 0 {
		t.Fatal("error was cached")
	}
}
