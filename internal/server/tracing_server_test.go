package server_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"ltsp/internal/cluster"
	"ltsp/internal/server"
	"ltsp/internal/wire"
)

// postTraced posts a JSON body carrying an explicit X-Trace-ID header —
// a request that asks to be traced is always traced, regardless of the
// server's sampling rate.
func postTraced(t testing.TB, url string, body any, traceID string) (*http.Response, []byte) {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(wire.TraceHeader, traceID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// fetchTrace gets /v2/requests/{id}, retrying briefly: the server
// records a trace after the response is written, so an immediate fetch
// can race the recording.
func fetchTrace(t testing.TB, base, traceID string) *wire.RequestTraceResponse {
	t.Helper()
	for i := 0; i < 40; i++ {
		resp, err := http.Get(base + "/v2/requests/" + traceID)
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			var tr wire.RequestTraceResponse
			if err := json.Unmarshal(data, &tr); err != nil {
				t.Fatal(err)
			}
			return &tr
		}
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET /v2/requests/%s: %s: %s", traceID, resp.Status, data)
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("trace %s never appeared in the registry", traceID)
	return nil
}

// spanByName returns the first span with the given name, or nil.
func spanByName(spans []wire.SpanJSON, name string) *wire.SpanJSON {
	for i := range spans {
		if spans[i].Name == name {
			return &spans[i]
		}
	}
	return nil
}

// TestTracedCompileSpans: a compile carrying X-Trace-ID is traced end to
// end — the response echoes the trace ID and the retained timeline has
// the per-stage spans with outcomes, a cold miss first, then a hit.
func TestTracedCompileSpans(t *testing.T) {
	_, ts := newTestServer(t, server.Config{TraceSample: -1}) // sampling off: only the header traces
	req := compileRequest(t, copyAddLoop(4001))

	const id = "trace00cold00001"
	resp, body := postTraced(t, ts.URL+"/v2/compile", req, id)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: %s: %s", resp.Status, body)
	}
	if got := resp.Header.Get(wire.TraceHeader); got != id {
		t.Errorf("response %s = %q, want %q echoed", wire.TraceHeader, got, id)
	}

	tr := fetchTrace(t, ts.URL, id)
	if tr.TraceID != id || tr.Status != http.StatusOK {
		t.Errorf("trace header = %+v", tr)
	}
	if tr.Name != "POST /v2/compile" {
		t.Errorf("trace name = %q", tr.Name)
	}

	root := spanByName(tr.Spans, "server POST /v2/compile")
	if root == nil {
		t.Fatalf("no server root span in %d spans", len(tr.Spans))
	}
	if root.Attrs["request_id"] == "" {
		t.Error("root span has no request_id attr")
	}
	for _, name := range []string{"queue_wait", "mem_lookup", "compile"} {
		s := spanByName(tr.Spans, name)
		if s == nil {
			t.Errorf("missing %s span", name)
			continue
		}
		if s.DurNs <= 0 {
			t.Errorf("%s span is still open", name)
		}
		if s.Parent == "" {
			t.Errorf("%s span has no parent", name)
		}
	}
	if got := spanByName(tr.Spans, "mem_lookup").Attrs["outcome"]; got != "miss" {
		t.Errorf("cold mem_lookup outcome = %q, want miss", got)
	}
	if s := spanByName(tr.Spans, "compile"); s != nil && s.Attrs["outcome"] == "" {
		t.Error("compile span has no outcome attr")
	}

	// Same loop again under a fresh trace: served from memory.
	const id2 = "trace00warm00001"
	resp, body = postTraced(t, ts.URL+"/v2/compile", req, id2)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm compile: %s: %s", resp.Status, body)
	}
	tr2 := fetchTrace(t, ts.URL, id2)
	mem := spanByName(tr2.Spans, "mem_lookup")
	if mem == nil {
		t.Fatal("warm request has no mem_lookup span")
	}
	if got := mem.Attrs["outcome"]; got != "hit" {
		t.Errorf("warm mem_lookup outcome = %q, want hit", got)
	}
	if s := spanByName(tr2.Spans, "compile"); s != nil {
		t.Error("warm request recorded a compile span")
	}
}

// TestTracedPeerFill is the issue's acceptance test in-process: a traced
// compile against a non-owner shows the owner lookup miss, the winning
// peer leg with the peer's ID, and the write-through — one timeline for
// a cross-node request.
func TestTracedPeerFill(t *testing.T) {
	checkGoroutineLeaks(t)
	_, tss, peers := clusterNodes(t, 2, func(i int, cfg *server.Config) {
		cfg.TraceSample = -1
	})
	ring := cluster.New(cluster.Static(peers), 0)
	req, _ := loopOwnedBy(t, ring, peers[0])

	// Warm the owner so the non-owner's peer fill hits.
	resp, body := post(t, tss[0].URL+"/v2/compile", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("owner compile: %s: %s", resp.Status, body)
	}

	const id = "trace0peerfill01"
	resp, body = postTraced(t, tss[1].URL+"/v2/compile", req, id)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("non-owner compile: %s: %s", resp.Status, body)
	}

	tr := fetchTrace(t, tss[1].URL, id)
	if s := spanByName(tr.Spans, "mem_lookup"); s == nil || s.Attrs["outcome"] != "miss" {
		t.Errorf("mem_lookup span = %+v, want outcome miss", s)
	}
	fill := spanByName(tr.Spans, "peer_fill")
	if fill == nil {
		t.Fatal("no peer_fill span")
	}
	if got := fill.Attrs["outcome"]; got != "hit" {
		t.Errorf("peer_fill outcome = %q, want hit", got)
	}
	leg := spanByName(tr.Spans, "peer_leg")
	if leg == nil {
		t.Fatal("no peer_leg span")
	}
	if got := leg.Attrs["peer"]; got != peers[0].ID {
		t.Errorf("peer_leg peer = %q, want owner %q", got, peers[0].ID)
	}
	if got := leg.Attrs["outcome"]; got != "hit" {
		t.Errorf("peer_leg outcome = %q, want hit", got)
	}
	if leg.Parent != fill.ID {
		t.Errorf("peer_leg parent = %q, want peer_fill %q", leg.Parent, fill.ID)
	}
	if spanByName(tr.Spans, "write_through") == nil {
		t.Error("no write_through span after a peer hit")
	}
	if spanByName(tr.Spans, "compile") != nil {
		t.Error("non-owner compiled despite the peer hit")
	}

	// The owner's artifact GET was also traced under the same ID: its
	// server hop nests under the non-owner's peer_leg span.
	otr := fetchTrace(t, tss[0].URL, id)
	var ownerRoot *wire.SpanJSON
	for i := range otr.Spans {
		if otr.Spans[i].Parent == leg.ID {
			ownerRoot = &otr.Spans[i]
		}
	}
	if ownerRoot == nil {
		t.Fatalf("owner recorded no span parented under peer_leg %s", leg.ID)
	}
}

// TestDebugRequestsListing: traced requests appear on /debug/requests.
func TestDebugRequestsListing(t *testing.T) {
	_, ts := newTestServer(t, server.Config{TraceSample: -1})
	const id = "trace000listing1"
	resp, body := postTraced(t, ts.URL+"/v2/compile", compileRequest(t, copyAddLoop(4003)), id)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: %s: %s", resp.Status, body)
	}
	fetchTrace(t, ts.URL, id) // wait for the record

	var list wire.RequestListResponse
	get(t, ts.URL+"/debug/requests", &list)
	found := false
	for _, r := range list.Requests {
		if r.TraceID == id {
			found = true
			if r.Name != "POST /v2/compile" || r.Status != http.StatusOK || r.Spans == 0 {
				t.Errorf("listing entry = %+v", r)
			}
		}
	}
	if !found {
		t.Fatalf("trace %s not in /debug/requests (%d entries)", id, len(list.Requests))
	}
}

// TestChromeTraceExport: ?format=chrome renders the span timeline as a
// catapult event array loadable in chrome://tracing.
func TestChromeTraceExport(t *testing.T) {
	_, ts := newTestServer(t, server.Config{TraceSample: -1})
	const id = "trace000chrome01"
	resp, body := postTraced(t, ts.URL+"/v2/compile", compileRequest(t, copyAddLoop(4004)), id)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: %s: %s", resp.Status, body)
	}
	fetchTrace(t, ts.URL, id)

	hresp, err := http.Get(ts.URL + "/v2/requests/" + id + "?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("chrome export: %s", hresp.Status)
	}
	var events []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		TS   int64          `json:"ts"`
		Dur  int64          `json:"dur"`
		Args map[string]any `json:"args"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&events); err != nil {
		t.Fatalf("chrome export is not a JSON event array: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("chrome export has no events")
	}
	names := make(map[string]bool)
	for _, e := range events {
		if e.Ph != "X" {
			t.Errorf("event %s phase %q, want X", e.Name, e.Ph)
		}
		names[e.Name] = true
	}
	if !names["compile"] || !names["mem_lookup"] {
		t.Errorf("chrome export missing stage events: %v", names)
	}
}

// TestRequestTraceErrors: invalid IDs are 400s, unknown IDs 404s with
// the structured error envelope.
func TestRequestTraceErrors(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	resp, err := http.Get(ts.URL + "/v2/requests/bad%20id%21")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid trace ID: %s, want 400", resp.Status)
	}

	resp, err = http.Get(ts.URL + "/v2/requests/nosuchtrace00001")
	if err != nil {
		t.Fatal(err)
	}
	var envelope struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	err = json.NewDecoder(resp.Body).Decode(&envelope)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace: %s, want 404", resp.Status)
	}
	if err != nil || envelope.Error.Code == "" {
		t.Errorf("404 body is not a structured error envelope: %v %+v", err, envelope)
	}
}

// TestUntracedRequestsNotRetained: with sampling off and no header, no
// trace is retained and no trace header is echoed.
func TestUntracedRequestsNotRetained(t *testing.T) {
	_, ts := newTestServer(t, server.Config{TraceSample: -1})
	resp, body := post(t, ts.URL+"/v2/compile", compileRequest(t, copyAddLoop(4005)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: %s: %s", resp.Status, body)
	}
	if got := resp.Header.Get(wire.TraceHeader); got != "" {
		t.Errorf("untraced response echoed trace ID %q", got)
	}
	var list wire.RequestListResponse
	get(t, ts.URL+"/debug/requests", &list)
	if len(list.Requests) != 0 {
		t.Errorf("untraced server retained %d traces", len(list.Requests))
	}
}
