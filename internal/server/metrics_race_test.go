package server

import (
	"sync"
	"testing"
	"time"
)

// TestHistogramConcurrentObserveSnapshot hammers Observe from many
// goroutines while snapshots are taken concurrently; run under -race in
// CI, it proves the histogram's lock-free counters are sound. Every
// snapshot must be internally consistent: cumulative buckets monotone,
// with le_+Inf equal to the count at some point in the interleaving (the
// count is loaded first, so it can only lag the buckets, never exceed
// them).
func TestHistogramConcurrentObserveSnapshot(t *testing.T) {
	const (
		writers      = 8
		perWriter    = 2000
		snapshotters = 4
	)
	var h Histogram
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for i := 0; i < snapshotters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := h.snapshot()
				var prev int64
				for _, label := range []string{"le_0.1", "le_1", "le_100", "le_+Inf"} {
					cum, ok := s.Buckets[label]
					if !ok {
						t.Errorf("snapshot missing bucket %s", label)
						return
					}
					if cum < prev {
						t.Errorf("buckets not cumulative: %s=%d < %d", label, cum, prev)
						return
					}
					prev = cum
				}
				if s.Buckets["le_+Inf"] < s.Count {
					t.Errorf("le_+Inf=%d < count=%d", s.Buckets["le_+Inf"], s.Count)
					return
				}
			}
		}()
	}

	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(time.Duration(w*perWriter+i) * 50 * time.Microsecond)
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	wg.Wait()

	s := h.snapshot()
	if want := int64(writers * perWriter); s.Count != want {
		t.Fatalf("final count = %d, want %d", s.Count, want)
	}
	if s.Buckets["le_+Inf"] != s.Count {
		t.Fatalf("final le_+Inf = %d, want %d", s.Buckets["le_+Inf"], s.Count)
	}
}
