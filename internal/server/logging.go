package server

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"

	"ltsp/internal/wire"
)

// statusWriter records the status code and body size a handler wrote so
// the request log can report them.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Status returns the written status, defaulting to 200 when the handler
// never called WriteHeader.
func (w *statusWriter) Status() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

// muxErrorWriter converts the ServeMux's own plain-text error responses
// (404 for unrouted paths, 405 for wrong methods) into the structured
// error envelope, so that EVERY error leaving the server carries it.
// Handler-written errors are untouched: they set an application/json
// content type before writing the status, which this writer respects.
type muxErrorWriter struct {
	*statusWriter
	intercepted bool
}

func (w *muxErrorWriter) WriteHeader(status int) {
	if (status == http.StatusNotFound || status == http.StatusMethodNotAllowed) &&
		strings.HasPrefix(w.Header().Get("Content-Type"), "text/plain") {
		w.intercepted = true
		code, msg := wire.CodeNotFound, "no such endpoint"
		if status == http.StatusMethodNotAllowed {
			code, msg = wire.CodeInvalidRequest, "method not allowed for this endpoint"
		}
		writeJSON(w.statusWriter, status, wire.NewError(code, msg))
		return
	}
	w.statusWriter.WriteHeader(status)
}

func (w *muxErrorWriter) Write(p []byte) (int, error) {
	if w.intercepted {
		// Swallow the mux's plain-text body; the envelope is already out.
		return len(p), nil
	}
	return w.statusWriter.Write(p)
}

// Request IDs are a per-process random prefix plus a sequence number:
// cheap, unique across restarts, and trivially greppable in logs.
var (
	requestIDPrefix = func() string {
		var b [4]byte
		_, _ = rand.Read(b[:])
		return hex.EncodeToString(b[:])
	}()
	requestIDSeq atomic.Int64
)

func nextRequestID() string {
	return fmt.Sprintf("%s-%06d", requestIDPrefix, requestIDSeq.Add(1))
}

// requestID returns the request's ID: a valid client-supplied
// X-Request-ID passes through, so one ID follows a request across hops
// (peer cache-fills forward it) and every node's log lines correlate
// even when the request is not traced. Anything invalid — absent, too
// long, or outside the log-safe charset — is replaced with a fresh ID.
func requestID(r *http.Request) string {
	if id := r.Header.Get(wire.RequestIDHeader); wire.ValidTraceID(id) {
		return id
	}
	return nextRequestID()
}
