package server

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"sync/atomic"
)

// statusWriter records the status code and body size a handler wrote so
// the request log can report them.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Status returns the written status, defaulting to 200 when the handler
// never called WriteHeader.
func (w *statusWriter) Status() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

// Request IDs are a per-process random prefix plus a sequence number:
// cheap, unique across restarts, and trivially greppable in logs.
var (
	requestIDPrefix = func() string {
		var b [4]byte
		_, _ = rand.Read(b[:])
		return hex.EncodeToString(b[:])
	}()
	requestIDSeq atomic.Int64
)

func nextRequestID() string {
	return fmt.Sprintf("%s-%06d", requestIDPrefix, requestIDSeq.Add(1))
}
