package server_test

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"ltsp/internal/server"
)

// promDoc is a parsed Prometheus text exposition: samples keyed by
// "name{labels}" plus the HELP/TYPE declarations per family.
type promDoc struct {
	samples map[string]float64
	types   map[string]string // family -> counter | gauge | histogram
	help    map[string]bool
	order   []string // sample keys in exposition order
}

// parseProm parses (and structurally validates) the text exposition
// format 0.0.4: every sample line is `name{labels} value`, every family
// has HELP and TYPE comments, and nothing else appears.
func parseProm(t *testing.T, body string) *promDoc {
	t.Helper()
	doc := &promDoc{
		samples: make(map[string]float64),
		types:   make(map[string]string),
		help:    make(map[string]bool),
	}
	for ln, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || parts[1] == "" {
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
			doc.help[parts[0]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# TYPE "), " ", 2)
			if len(parts) != 2 {
				t.Fatalf("line %d: bad TYPE: %q", ln+1, line)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown TYPE %q", ln+1, parts[1])
			}
			if doc.types[parts[0]] != "" {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, parts[0])
			}
			doc.types[parts[0]] = parts[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unexpected comment form: %q", ln+1, line)
		}
		// Sample line: name or name{labels}, one space, float value.
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value separator: %q", ln+1, line)
		}
		key, val := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, val, err)
		}
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			if !strings.HasSuffix(key, "}") {
				t.Fatalf("line %d: unterminated labels: %q", ln+1, line)
			}
			name = key[:i]
		}
		for _, r := range name {
			if !(r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9') {
				t.Fatalf("line %d: bad metric name %q", ln+1, name)
			}
		}
		family := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if f := strings.TrimSuffix(name, suf); f != name && doc.types[f] == "histogram" {
				family = f
			}
		}
		if doc.types[family] == "" {
			t.Fatalf("line %d: sample %s has no TYPE declaration", ln+1, name)
		}
		if !doc.help[family] {
			t.Fatalf("line %d: sample %s has no HELP", ln+1, name)
		}
		if _, dup := doc.samples[key]; dup {
			t.Fatalf("line %d: duplicate sample %q", ln+1, key)
		}
		doc.samples[key] = v
		doc.order = append(doc.order, key)
	}
	return doc
}

// scrapeProm fetches /metrics the way a Prometheus scraper does.
func scrapeProm(t *testing.T, base string) *promDoc {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/plain;version=0.0.4;q=0.5,*/*;q=0.1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape: %s: %s", resp.Status, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != server.PromContentType {
		t.Fatalf("scrape Content-Type = %q, want %q", ct, server.PromContentType)
	}
	return parseProm(t, string(body))
}

// checkHistogram validates one histogram instance: cumulative buckets
// are monotone and the +Inf bucket equals the count.
func checkHistogram(t *testing.T, doc *promDoc, name, labels string) {
	t.Helper()
	wrap := func(extra string) string {
		switch {
		case labels == "" && extra == "":
			return ""
		case labels == "":
			return "{" + extra + "}"
		case extra == "":
			return "{" + labels + "}"
		default:
			return "{" + labels + "," + extra + "}"
		}
	}
	bucketPrefix := name + `_bucket{le="`
	if labels != "" {
		bucketPrefix = name + "_bucket{" + labels + `,le="`
	}
	prev := -1.0
	var inf float64
	seen := 0
	for _, key := range doc.order {
		if !strings.HasPrefix(key, bucketPrefix) {
			continue
		}
		v := doc.samples[key]
		if v < prev {
			t.Errorf("%s: bucket %s = %v below previous %v (must be cumulative)", name, key, v, prev)
		}
		prev = v
		inf = v // exposition order ends at +Inf
		seen++
	}
	if seen == 0 {
		t.Fatalf("histogram %s%s has no buckets", name, wrap(""))
	}
	count, ok := doc.samples[name+"_count"+wrap("")]
	if !ok {
		t.Fatalf("histogram %s%s has no _count", name, wrap(""))
	}
	if inf != count {
		t.Errorf("%s%s: le=+Inf bucket %v != count %v", name, wrap(""), inf, count)
	}
	if _, ok := doc.samples[name+"_sum"+wrap("")]; !ok {
		t.Errorf("histogram %s%s has no _sum", name, wrap(""))
	}
}

// TestPrometheusExposition: a scraper's Accept header yields valid text
// exposition carrying the request and per-stage histograms.
func TestPrometheusExposition(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	for k := int64(0); k < 3; k++ {
		resp, body := post(t, ts.URL+"/v2/compile", compileRequest(t, copyAddLoop(4100+k)))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("compile: %s: %s", resp.Status, body)
		}
	}

	doc := scrapeProm(t, ts.URL)
	for _, name := range []string{
		"ltspd_compile_requests_total", "ltspd_cache_misses_total",
	} {
		if doc.samples[name] != 3 {
			t.Errorf("%s = %v, want 3", name, doc.samples[name])
		}
		if doc.types[name] != "counter" {
			t.Errorf("%s TYPE = %q, want counter", name, doc.types[name])
		}
	}
	if doc.samples["ltspd_uptime_seconds"] <= 0 {
		t.Error("uptime gauge not positive")
	}
	if v, ok := doc.samples[`ltspd_compile_outcomes_total{outcome="pipelined"}`]; !ok || v != 3 {
		t.Errorf("pipelined outcome = %v (present %v), want 3", v, ok)
	}

	checkHistogram(t, doc, "ltspd_compile_latency_ms", "")
	checkHistogram(t, doc, "ltspd_simulate_latency_ms", "")
	for _, stage := range []string{"queue_wait", "mem_lookup", "disk_read", "peer_leg", "compile", "verify"} {
		checkHistogram(t, doc, "ltspd_stage_latency_ms", fmt.Sprintf("stage=%q", stage))
	}
	// The stages actually exercised observed once per compile.
	for _, stage := range []string{"queue_wait", "mem_lookup", "compile"} {
		key := fmt.Sprintf(`ltspd_stage_latency_ms_count{stage=%q}`, stage)
		if doc.samples[key] != 3 {
			t.Errorf("%s = %v, want 3", key, doc.samples[key])
		}
	}
}

// TestPrometheusJSONConsistency is satellite coverage for the one-
// snapshot guarantee: the JSON document and the Prometheus exposition
// report byte-for-byte identical counts and sums.
func TestPrometheusJSONConsistency(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	for k := int64(0); k < 4; k++ {
		resp, body := post(t, ts.URL+"/v2/compile", compileRequest(t, copyAddLoop(4200+k)))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("compile: %s: %s", resp.Status, body)
		}
	}
	// Re-request one loop so hits and misses diverge.
	post(t, ts.URL+"/v2/compile", compileRequest(t, copyAddLoop(4200)))

	var js struct {
		CompileRequests int64     `json:"compile_requests"`
		CacheHits       int64     `json:"cache_hits"`
		CacheMisses     int64     `json:"cache_misses"`
		LatencyBounds   []float64 `json:"latency_bounds_ms"`
		CompileLatency  struct {
			Count   int64            `json:"count"`
			SumMs   float64          `json:"sum_ms"`
			Buckets map[string]int64 `json:"buckets"`
		} `json:"compile_latency"`
		Stages map[string]struct {
			Count int64   `json:"count"`
			SumMs float64 `json:"sum_ms"`
		} `json:"stage_latency"`
	}
	get(t, ts.URL+"/metrics", &js)
	doc := scrapeProm(t, ts.URL)

	if got := doc.samples["ltspd_compile_requests_total"]; got != float64(js.CompileRequests) {
		t.Errorf("compile_requests: prom %v, json %d", got, js.CompileRequests)
	}
	if got := doc.samples["ltspd_cache_hits_total"]; got != float64(js.CacheHits) {
		t.Errorf("cache_hits: prom %v, json %d", got, js.CacheHits)
	}
	if got := doc.samples["ltspd_cache_misses_total"]; got != float64(js.CacheMisses) {
		t.Errorf("cache_misses: prom %v, json %d", got, js.CacheMisses)
	}
	if got := doc.samples["ltspd_compile_latency_ms_count"]; got != float64(js.CompileLatency.Count) {
		t.Errorf("compile_latency count: prom %v, json %d", got, js.CompileLatency.Count)
	}
	if got := doc.samples["ltspd_compile_latency_ms_sum"]; got != js.CompileLatency.SumMs {
		t.Errorf("compile_latency sum: prom %v, json %v", got, js.CompileLatency.SumMs)
	}
	// Every shared bucket bound appears in both forms with the same
	// cumulative count; the bounds themselves are documented once, in the
	// JSON document's latency_bounds_ms.
	if len(js.LatencyBounds) == 0 {
		t.Fatal("JSON document has no latency_bounds_ms")
	}
	for _, ub := range js.LatencyBounds {
		b := strconv.FormatFloat(ub, 'g', -1, 64)
		jv, ok := js.CompileLatency.Buckets["le_"+b]
		if !ok {
			t.Fatalf("JSON compile_latency has no bucket le_%s", b)
		}
		pv := doc.samples[fmt.Sprintf("ltspd_compile_latency_ms_bucket{le=%q}", b)]
		if pv != float64(jv) {
			t.Errorf("bucket le=%s: prom %v, json %d", b, pv, jv)
		}
	}
	for stage, h := range js.Stages {
		ck := fmt.Sprintf("ltspd_stage_latency_ms_count{stage=%q}", stage)
		if got := doc.samples[ck]; got != float64(h.Count) {
			t.Errorf("%s: prom %v, json %d", ck, got, h.Count)
		}
		sk := fmt.Sprintf("ltspd_stage_latency_ms_sum{stage=%q}", stage)
		if got := doc.samples[sk]; got != h.SumMs {
			t.Errorf("%s: prom %v, json %v", sk, got, h.SumMs)
		}
	}
}

// TestMetricsContentNegotiation: JSON stays the default; only an Accept
// naming text/plain selects the Prometheus form.
func TestMetricsContentNegotiation(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	for _, tc := range []struct {
		accept   string
		wantProm bool
	}{
		{"", false},
		{"application/json", false},
		{"*/*", false},
		{"text/plain", true},
		{"text/plain;version=0.0.4", true},
		{"application/openmetrics-text;q=0.8, text/plain;q=0.5", true},
	} {
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
		if err != nil {
			t.Fatal(err)
		}
		if tc.accept != "" {
			req.Header.Set("Accept", tc.accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		ct := resp.Header.Get("Content-Type")
		isProm := ct == server.PromContentType
		if isProm != tc.wantProm {
			t.Errorf("Accept %q: Content-Type %q (prom=%v), want prom=%v", tc.accept, ct, isProm, tc.wantProm)
		}
	}
}
