package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ltsp/internal/wire"
)

// TestRequestIDPassthrough: a valid client-supplied X-Request-ID is
// used verbatim; anything invalid is replaced with a fresh unique ID.
func TestRequestIDPassthrough(t *testing.T) {
	mk := func(hdr string) *http.Request {
		r := httptest.NewRequest(http.MethodGet, "/healthz", nil)
		if hdr != "" {
			r.Header.Set(wire.RequestIDHeader, hdr)
		}
		return r
	}
	if got := requestID(mk("client-id_42.a")); got != "client-id_42.a" {
		t.Errorf("valid ID replaced: %q", got)
	}
	for _, bad := range []string{
		"", "has space", "has/slash", strings.Repeat("x", 65), "ütf8",
	} {
		got := requestID(mk(bad))
		if got == bad || got == "" || !wire.ValidTraceID(got) {
			t.Errorf("invalid header %q yielded %q", bad, got)
		}
	}
	// Generated IDs are unique.
	a, b := requestID(mk("")), requestID(mk(""))
	if a == b {
		t.Errorf("two generated IDs collide: %q", a)
	}
}

// TestRequestIDEchoed: the response always carries X-Request-ID —
// echoed when the caller sent a valid one, minted otherwise.
func TestRequestIDEchoed(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set(wire.RequestIDHeader, "my-request-001")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(wire.RequestIDHeader); got != "my-request-001" {
		t.Errorf("echoed ID = %q, want passthrough", got)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(wire.RequestIDHeader); !wire.ValidTraceID(got) {
		t.Errorf("minted ID %q is not valid", got)
	}
}

// TestStatusWriterCapture: the first WriteHeader wins; a bare Write
// defaults the captured status to 200 and byte counts accumulate.
func TestStatusWriterCapture(t *testing.T) {
	rec := httptest.NewRecorder()
	sw := &statusWriter{ResponseWriter: rec}
	if sw.Status() != http.StatusOK {
		t.Errorf("zero-value status = %d, want 200 default", sw.Status())
	}
	sw.WriteHeader(http.StatusTeapot)
	sw.WriteHeader(http.StatusOK) // late second header keeps the first
	sw.Write([]byte("hello "))
	sw.Write([]byte("world"))
	if sw.Status() != http.StatusTeapot {
		t.Errorf("status = %d, want first-written 418", sw.Status())
	}
	if sw.bytes != 11 {
		t.Errorf("bytes = %d, want 11", sw.bytes)
	}

	rec = httptest.NewRecorder()
	sw = &statusWriter{ResponseWriter: rec}
	sw.Write([]byte("ok"))
	if sw.Status() != http.StatusOK {
		t.Errorf("implicit status = %d, want 200", sw.Status())
	}
}

// TestLogStatusOnErrorEnvelope: the structured log line carries the
// real status even when the error response is the mux's own (404/405),
// rewritten into the JSON envelope by muxErrorWriter.
func TestLogStatusOnErrorEnvelope(t *testing.T) {
	var buf syncBuffer
	s := New(Config{Logger: slog.New(slog.NewJSONHandler(&buf, nil))})
	ts := httptest.NewServer(s)
	defer ts.Close()

	cases := []struct {
		method, path string
		wantStatus   int
	}{
		{http.MethodGet, "/no/such/endpoint", http.StatusNotFound},
		{http.MethodDelete, "/healthz", http.StatusMethodNotAllowed},
		{http.MethodGet, "/healthz", http.StatusOK},
	}
	for _, tc := range cases {
		req, _ := http.NewRequest(tc.method, ts.URL+tc.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.wantStatus {
			t.Fatalf("%s %s: %s, want %d", tc.method, tc.path, resp.Status, tc.wantStatus)
		}
		if tc.wantStatus >= 400 {
			var env struct {
				Error *wire.ErrorBody `json:"error"`
			}
			if err := json.Unmarshal(body, &env); err != nil || env.Error == nil {
				t.Errorf("%s %s: body %q is not the structured envelope", tc.method, tc.path, body)
			}
		}
	}

	// One "request" log line per call, each with the status the client saw.
	var statuses []int
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec struct {
			Msg    string `json:"msg"`
			Status int    `json:"status"`
			ID     string `json:"id"`
			Path   string `json:"path"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("unparseable log line %q: %v", line, err)
		}
		if rec.Msg != "request" {
			continue
		}
		if rec.ID == "" {
			t.Errorf("log line for %s has no request id", rec.Path)
		}
		statuses = append(statuses, rec.Status)
	}
	if len(statuses) != len(cases) {
		t.Fatalf("logged %d request lines, want %d", len(statuses), len(cases))
	}
	for i, tc := range cases {
		if statuses[i] != tc.wantStatus {
			t.Errorf("%s %s logged status %d, want %d", tc.method, tc.path, statuses[i], tc.wantStatus)
		}
	}
}

// syncBuffer is a bytes.Buffer safe for the handler's concurrent writes.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestLogRequestZeroAlloc: with no logger configured, the completion
// log call allocates nothing — the cache-hit fast path stays clean.
func TestLogRequestZeroAlloc(t *testing.T) {
	s := New(Config{}) // Logger nil -> logOn false
	r := httptest.NewRequest(http.MethodPost, "/v2/compile", nil)
	sw := &statusWriter{status: http.StatusOK, bytes: 128}
	ctx := context.Background()
	if n := testing.AllocsPerRun(100, func() {
		s.logRequest(ctx, "id-1", "", r, sw, time.Millisecond)
	}); n != 0 {
		t.Errorf("logRequest with logging off allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		s.logBatchItem(ctx, "id-1", 3, "hash", true, nil)
	}); n != 0 {
		t.Errorf("logBatchItem with logging off allocates %.1f/op, want 0", n)
	}
}
