package server_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"testing"

	"ltsp"
	"ltsp/internal/ir"
	"ltsp/internal/server"
	"ltsp/internal/wire"
	"ltsp/internal/wire/binary"
	"ltsp/internal/workload"
)

// binFrame encodes loop+options as a binary compile-request frame.
func binFrame(t testing.TB, l *ir.Loop, opts ltsp.Options) []byte {
	t.Helper()
	req, err := wire.NewCompileRequest(l, opts)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := binary.EncodeCompileRequest(nil, l, req.Options)
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

// postRaw sends body with explicit Content-Type and Accept headers and
// returns the response plus its full body.
func postRaw(t testing.TB, url, contentType, accept string, body []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func testLoop(t testing.TB) *ir.Loop {
	t.Helper()
	return workload.All()[0].Loops[0].Gen()
}

// TestV2UnknownContentType: a Content-Type the server does not speak is
// rejected up front with 415 and the v2 error envelope, on both compile
// endpoints.
func TestV2UnknownContentType(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	for _, path := range []string{"/v2/compile", "/v2/compile-batch"} {
		resp, data := postRaw(t, ts.URL+path, "application/xml", "", []byte(`<loop/>`))
		if resp.StatusCode != http.StatusUnsupportedMediaType {
			t.Fatalf("%s: status = %d, want 415", path, resp.StatusCode)
		}
		var env wire.ErrorEnvelope
		if err := json.Unmarshal(data, &env); err != nil {
			t.Fatalf("%s: 415 body is not the JSON envelope: %v", path, err)
		}
		if env.Error.Code != wire.CodeUnsupportedMedia {
			t.Fatalf("%s: code = %q, want %q", path, env.Error.Code, wire.CodeUnsupportedMedia)
		}
		if env.Error.Retryable {
			t.Fatalf("%s: unsupported media marked retryable", path)
		}
	}
}

// TestV1IgnoresContentType: the frozen v1 surface parses JSON whatever
// the Content-Type says, exactly as before negotiation existed.
func TestV1IgnoresContentType(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	req, err := wire.NewCompileRequest(testLoop(t), ltsp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := json.Marshal(req)
	resp, data := postRaw(t, ts.URL+"/v1/compile", "application/octet-stream", "", payload)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("v1 with odd Content-Type: status = %d, body %s", resp.StatusCode, data)
	}
}

// TestNegotiationMatrix: request and response encodings are independent.
// All four corners of the matrix must produce the same compile result.
func TestNegotiationMatrix(t *testing.T) {
	l := testLoop(t)
	jreq, err := wire.NewCompileRequest(l, ltsp.Options{LatencyTolerant: true})
	if err != nil {
		t.Fatal(err)
	}
	jsonBody, _ := json.Marshal(jreq)
	binBody := binFrame(t, l, ltsp.Options{LatencyTolerant: true})

	decode := func(t *testing.T, resp *http.Response, data []byte, wantBin bool) *wire.CompileResponse {
		t.Helper()
		ct := resp.Header.Get("Content-Type")
		out := new(wire.CompileResponse)
		if wantBin {
			if ct != binary.ContentType {
				t.Fatalf("Content-Type = %q, want %q", ct, binary.ContentType)
			}
			out, err = binary.DecodeCompileResponse(data)
			if err != nil {
				t.Fatal(err)
			}
		} else {
			if ct != "application/json" {
				t.Fatalf("Content-Type = %q, want application/json", ct)
			}
			if err := json.Unmarshal(data, out); err != nil {
				t.Fatal(err)
			}
		}
		return out
	}

	// Fresh server per corner so every compile is a cold one and the
	// four results are comparable field for field.
	var want *wire.CompileResponse
	for _, tc := range []struct {
		name        string
		contentType string
		accept      string
		body        []byte
		binResp     bool
	}{
		{"json-json", "application/json", "", jsonBody, false},
		{"json-binary", "application/json", binary.ContentType, jsonBody, true},
		{"binary-json", binary.ContentType, "application/json", binBody, false},
		{"binary-binary", binary.ContentType, binary.ContentType, binBody, true},
	} {
		_, ts := newTestServer(t, server.Config{})
		resp, data := postRaw(t, ts.URL+"/v2/compile", tc.contentType, tc.accept, tc.body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status = %d, body %s", tc.name, resp.StatusCode, data)
		}
		got := decode(t, resp, data, tc.binResp)
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("%s: compile result differs from json-json corner:\nwant %+v\ngot  %+v", tc.name, want, got)
		}
	}
}

// TestBinaryFrameRejection: malformed binary bodies map onto the same
// envelope codes the JSON path uses, with no allocation blowup for
// absurd length prefixes.
func TestBinaryFrameRejection(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	frame := binFrame(t, testLoop(t), ltsp.Options{})

	check := func(name string, body []byte, wantCode string) {
		t.Helper()
		resp, data := postRaw(t, ts.URL+"/v2/compile", binary.ContentType, "", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status = %d, want 400 (body %s)", name, resp.StatusCode, data)
		}
		var env wire.ErrorEnvelope
		if err := json.Unmarshal(data, &env); err != nil {
			t.Fatalf("%s: error body is not the JSON envelope: %v", name, err)
		}
		if env.Error.Code != wantCode {
			t.Fatalf("%s: code = %q, want %q", name, env.Error.Code, wantCode)
		}
	}

	check("truncated", frame[:len(frame)-3], wire.CodeInvalidRequest)
	check("trailing byte", append(bytes.Clone(frame), 0x00), wire.CodeInvalidRequest)
	check("bad magic", []byte("XYZ\x01\x01\x00"), wire.CodeInvalidRequest)
	// Length prefix claiming ~256MB with a 10-byte body: rejected from
	// the frame header alone.
	check("absurd length prefix", []byte{'L', 'T', 'B', 1, 1, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}, wire.CodeInvalidRequest)
	ver := bytes.Clone(frame)
	ver[3] = 99
	check("future version", ver, wire.CodeUnsupportedVersion)
}

// TestBinaryBatch: a binary batch request with a binary Accept round
// trips through /v2/compile-batch.
func TestBinaryBatch(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	var loops []*ir.Loop
	var opts []wire.Options
	for _, spec := range workload.All()[0].Loops {
		loops = append(loops, spec.Gen())
		opts = append(opts, wire.Options{})
		if len(loops) == 3 {
			break
		}
	}
	frame, err := binary.EncodeCompileBatch(nil, loops, opts)
	if err != nil {
		t.Fatal(err)
	}
	resp, data := postRaw(t, ts.URL+"/v2/compile-batch", binary.ContentType, binary.ContentType, frame)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != binary.ContentType {
		t.Fatalf("Content-Type = %q", ct)
	}
	batch, err := binary.DecodeCompileBatchResponse(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Items) != len(loops) {
		t.Fatalf("items = %d, want %d", len(batch.Items), len(loops))
	}
	for i, item := range batch.Items {
		if item.Error != "" || item.CompileResponse == nil {
			t.Fatalf("item[%d]: error %q", i, item.Error)
		}
	}
}

// TestBinaryArtifact: GET /v2/artifacts/{hash} honors Accept and the
// binary envelope carries the identical sections as the JSON one.
func TestBinaryArtifact(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	req, err := wire.NewCompileRequest(testLoop(t), ltsp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	resp, data := post(t, ts.URL+"/v2/compile", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: %d %s", resp.StatusCode, data)
	}
	var cr wire.CompileResponse
	if err := json.Unmarshal(data, &cr); err != nil {
		t.Fatal(err)
	}

	var jsonArt wire.ArtifactResponse
	get(t, ts.URL+"/v2/artifacts/"+cr.Hash, &jsonArt)

	areq, err := http.NewRequest(http.MethodGet, ts.URL+"/v2/artifacts/"+cr.Hash, nil)
	if err != nil {
		t.Fatal(err)
	}
	areq.Header.Set("Accept", binary.ContentType)
	aresp, err := http.DefaultClient.Do(areq)
	if err != nil {
		t.Fatal(err)
	}
	defer aresp.Body.Close()
	body, err := io.ReadAll(aresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if aresp.StatusCode != http.StatusOK {
		t.Fatalf("binary artifact GET: %d %s", aresp.StatusCode, body)
	}
	if ct := aresp.Header.Get("Content-Type"); ct != binary.ContentType {
		t.Fatalf("Content-Type = %q", ct)
	}
	binArt, err := binary.DecodeArtifact(body)
	if err != nil {
		t.Fatal(err)
	}
	if binArt.Hash != jsonArt.Hash || binArt.Verify != jsonArt.Verify || binArt.CreatedUnix != jsonArt.CreatedUnix {
		t.Fatalf("artifact metadata differs by transfer encoding:\njson %+v\nbin  %+v", &jsonArt, binArt)
	}
	// The JSON envelope is served pretty-printed (the encoder re-indents
	// embedded sections); binary carries the stored compact bytes.
	// Compare the sections whitespace-insensitively.
	sections := []struct {
		name        string
		jsonB, binB json.RawMessage
	}{
		{"request", jsonArt.Request, binArt.Request},
		{"response", jsonArt.Response, binArt.Response},
		{"trace", jsonArt.Trace, binArt.Trace},
	}
	for _, s := range sections {
		var a, b bytes.Buffer
		if err := json.Compact(&a, s.jsonB); err != nil {
			t.Fatalf("%s: %v", s.name, err)
		}
		if err := json.Compact(&b, s.binB); err != nil {
			t.Fatalf("%s: %v", s.name, err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("artifact %s section differs by transfer encoding:\njson %s\nbin  %s", s.name, a.Bytes(), b.Bytes())
		}
	}
}

// TestHotPathRepeat: a byte-identical repeat of a compile body is served
// from the prerendered hot map — Cached=true, and every subsequent
// repeat returns byte-identical bytes in both encodings.
func TestHotPathRepeat(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	req, err := wire.NewCompileRequest(testLoop(t), ltsp.Options{Prefetch: true})
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(req)

	resp1, data1 := postRaw(t, ts.URL+"/v2/compile", "application/json", "", body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first: %d %s", resp1.StatusCode, data1)
	}
	var first wire.CompileResponse
	if err := json.Unmarshal(data1, &first); err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first compile reported Cached=true")
	}

	_, data2 := postRaw(t, ts.URL+"/v2/compile", "application/json", "", body)
	_, data3 := postRaw(t, ts.URL+"/v2/compile", "application/json", "", body)
	var second wire.CompileResponse
	if err := json.Unmarshal(data2, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("repeat compile not served as cached")
	}
	if !bytes.Equal(data2, data3) {
		t.Fatal("two hot serves returned different bytes")
	}
	// Everything but the cached flag matches the cold compile.
	second.Cached = first.Cached
	if !reflect.DeepEqual(&first, &second) {
		t.Fatalf("hot serve altered the compile result:\ncold %+v\nhot  %+v", &first, &second)
	}

	// The same body with a binary Accept is served from the same entry,
	// prerendered in the binary encoding.
	respB, dataB := postRaw(t, ts.URL+"/v2/compile", "application/json", binary.ContentType, body)
	if ct := respB.Header.Get("Content-Type"); ct != binary.ContentType {
		t.Fatalf("hot binary serve Content-Type = %q", ct)
	}
	binResp, err := binary.DecodeCompileResponse(dataB)
	if err != nil {
		t.Fatal(err)
	}
	if !binResp.Cached {
		t.Fatal("hot binary serve not marked cached")
	}
}

// TestWireEquivalenceAllModels is the acceptance gate: for every loop of
// all 55 workload models, a JSON-fed and a binary-fed compile return
// byte-identical response bodies. Two fresh servers keep both compiles
// cold so the bodies are comparable bit for bit.
func TestWireEquivalenceAllModels(t *testing.T) {
	if testing.Short() {
		t.Skip("all-models equivalence is not a -short test")
	}
	_, tsJSON := newTestServer(t, server.Config{})
	_, tsBin := newTestServer(t, server.Config{})

	models := 0
	for _, b := range workload.All() {
		models++
		for _, spec := range b.Loops {
			name := b.Name + "/" + spec.Name
			l := spec.Gen()
			req, err := wire.NewCompileRequest(l, ltsp.Options{LatencyTolerant: true, Prefetch: true})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			jsonBody, _ := json.Marshal(req)
			frame, err := binary.EncodeCompileRequest(nil, l, req.Options)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}

			respJ, dataJ := postRaw(t, tsJSON.URL+"/v2/compile", "application/json", "", jsonBody)
			respB, dataB := postRaw(t, tsBin.URL+"/v2/compile", binary.ContentType, "", frame)
			if respJ.StatusCode != http.StatusOK || respB.StatusCode != http.StatusOK {
				t.Fatalf("%s: status json=%d binary=%d (json body %s) (binary body %s)",
					name, respJ.StatusCode, respB.StatusCode, dataJ, dataB)
			}
			if !bytes.Equal(dataJ, dataB) {
				t.Fatalf("%s: compile result depends on request encoding:\njson-fed   %s\nbinary-fed %s", name, dataJ, dataB)
			}
		}
	}
	if models != 55 {
		t.Fatalf("workload suite has %d models, expected 55", models)
	}
}
