package server_test

// The chaos suite: the resilience layer (deadline propagation, load
// shedding, cooperative cancellation, client retries/hedging) exercised
// against seeded fault injection. CI runs this file under -race with a
// pinned seed (LTSP_CHAOS_SEED); the seed makes every fault sequence —
// and therefore every assertion — deterministic.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"ltsp/internal/faultinject"
	"ltsp/internal/server"
	"ltsp/internal/wire"
	"ltsp/ltspclient"
)

// chaosSeed returns the suite's fault/jitter seed: LTSP_CHAOS_SEED when
// set (the CI chaos job pins it), a fixed default otherwise.
func chaosSeed(t testing.TB) int64 {
	if s := os.Getenv("LTSP_CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("LTSP_CHAOS_SEED=%q: %v", s, err)
		}
		return v
	}
	return 20080608 // CGO 2008, for the paper
}

// checkGoroutineLeaks registers a cleanup that fails the test if the
// goroutine count has not returned to (near) its starting level. It must
// run BEFORE the server/httptest cleanups register, so that — cleanups
// being LIFO — the server is fully shut down by the time it measures.
func checkGoroutineLeaks(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		if t.Failed() {
			return
		}
		deadline := time.Now().Add(5 * time.Second)
		for {
			runtime.GC() // nudge finalizer/timer goroutines to settle
			now := runtime.NumGoroutine()
			// A small tolerance absorbs runtime-internal goroutines
			// (GC workers, timer wheel) that come and go on their own.
			if now <= before+3 {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d before, %d after\n%s", before, now, buf[:n])
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

// newChaosServer wires a test server behind the fault injector and a
// client with deterministic backoff jitter pointed at it.
func newChaosServer(t *testing.T, cfg server.Config, fcfg faultinject.Config, ccfg ltspclient.Config) (*server.Server, *faultinject.Injector, *ltspclient.Client) {
	t.Helper()
	srv := server.New(cfg)
	inj := faultinject.Wrap(srv, fcfg)
	ts := httptest.NewServer(inj)
	t.Cleanup(ts.Close)
	ccfg.BaseURL = ts.URL
	client, err := ltspclient.New(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv, inj, client
}

// TestChaosBatchUnderFaults is the acceptance scenario: a 200-item
// workload — every 10th item broken — compiled through a server
// injecting 30% latency spikes and 10% connection drops. The client's
// retries must absorb every injected fault, the per-item errors must
// land exactly on the broken items, the healthy items must all compile,
// and nothing may leak.
func TestChaosBatchUnderFaults(t *testing.T) {
	checkGoroutineLeaks(t)
	seed := chaosSeed(t)
	_, inj, client := newChaosServer(t,
		server.Config{PoolSize: 4, CacheCapacity: 512, MaxBatchItems: 64},
		faultinject.Config{
			Seed:        seed,
			LatencyProb: 0.3, LatencyMin: time.Millisecond, LatencyMax: 10 * time.Millisecond,
			DropProb: 0.1,
		},
		ltspclient.Config{
			Seed:        seed,
			MaxRetries:  6,
			BackoffBase: 2 * time.Millisecond, BackoffMax: 20 * time.Millisecond,
			BackoffBudget: 5 * time.Second,
		})

	const total, chunk = 200, 20
	items := make([]wire.CompileItem, total)
	for i := range items {
		if (i+1)%10 == 0 {
			// Broken item: undecodable loop — a permanent per-item error.
			items[i] = wire.CompileItem{Loop: json.RawMessage(`{"not":"a loop"}`)}
			continue
		}
		req := compileRequest(t, copyAddLoop(int64(i)))
		items[i] = wire.CompileItem{Loop: req.Loop, Options: req.Options}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var ok, failed int
	for base := 0; base < total; base += chunk {
		resp, err := client.CompileBatch(ctx, items[base:base+chunk])
		if err != nil {
			t.Fatalf("batch [%d,%d): %v (stats %+v, faults %+v)", base, base+chunk, err, client.Stats(), inj.Stats())
		}
		if len(resp.Items) != chunk {
			t.Fatalf("batch [%d,%d): %d results, want %d", base, base+chunk, len(resp.Items), chunk)
		}
		for j, item := range resp.Items {
			i := base + j
			if (i+1)%10 == 0 {
				if item.Error == "" || item.ErrorCode != "invalid_request" || item.Retryable {
					t.Fatalf("item %d (broken): got %+v, want permanent invalid_request error", i, item)
				}
				failed++
				continue
			}
			if item.Error != "" {
				t.Fatalf("item %d (healthy): unexpected error %q (code %s)", i, item.Error, item.ErrorCode)
			}
			if item.CompileResponse == nil || item.Hash == "" {
				t.Fatalf("item %d (healthy): no compile response", i)
			}
			ok++
		}
	}
	if ok != total-total/10 || failed != total/10 {
		t.Fatalf("tally: %d ok, %d failed; want %d ok, %d failed", ok, failed, total-total/10, total/10)
	}

	// The injected drops must actually have happened and been absorbed:
	// every retry is accounted for, and the retry volume stays within
	// the configured bounds rather than spiraling.
	st, fst := client.Stats(), inj.Stats()
	if fst.Drops == 0 {
		t.Fatalf("fault injector never dropped a connection (faults %+v) — the chaos run exercised nothing", fst)
	}
	if st.Retries != fst.Drops {
		t.Errorf("client retries (%d) != injected drops (%d): a retry happened without a fault or a fault went unretried", st.Retries, fst.Drops)
	}
	calls := int64(total / chunk)
	if st.Attempts != calls+st.Retries {
		t.Errorf("attempts (%d) != calls (%d) + retries (%d)", st.Attempts, calls, st.Retries)
	}
	if maxAttempts := calls * 7; st.Attempts > maxAttempts {
		t.Errorf("attempts (%d) exceed the retry bound (%d)", st.Attempts, maxAttempts)
	}
	if st.BackoffSlept > 5*time.Second {
		t.Errorf("backoff slept %s, beyond the 5s budget", st.BackoffSlept)
	}
}

// TestChaosInjectedErrorsAreRetried: injected 503 envelopes (code
// "injected", retryable) are retried by the client and eventually
// succeed, and the typed error surfaces when retries are disabled.
func TestChaosInjectedErrorsAreRetried(t *testing.T) {
	checkGoroutineLeaks(t)
	seed := chaosSeed(t)
	_, inj, client := newChaosServer(t,
		server.Config{PoolSize: 2},
		faultinject.Config{Seed: seed, ErrProb: 0.5},
		ltspclient.Config{
			Seed:        seed,
			MaxRetries:  10,
			BackoffBase: time.Millisecond, BackoffMax: 5 * time.Millisecond,
		})

	ctx := context.Background()
	for k := int64(0); k < 8; k++ {
		if _, err := client.Compile(ctx, compileRequest(t, copyAddLoop(1000+k))); err != nil {
			t.Fatalf("compile %d: %v (faults %+v)", k, err, inj.Stats())
		}
	}
	if inj.Stats().Errors == 0 {
		t.Fatal("injector produced no errors; the test exercised nothing")
	}
	if client.Stats().Retries == 0 {
		t.Fatal("client never retried despite injected errors")
	}
}

// TestShedsImpossibleDeadline: a request whose declared deadline cannot
// be met — given the observed median compile time and the queue — is
// rejected with 503 + Retry-After and the "overloaded" envelope code
// before it consumes a worker slot.
func TestShedsImpossibleDeadline(t *testing.T) {
	checkGoroutineLeaks(t)
	srv, ts := newTestServer(t, server.Config{PoolSize: 1})
	// Teach the shedder that compiles take ~1s without running any: the
	// admission estimate for a fresh request is then (0+0+1)x1s/1 = 1s.
	srv.Shedder().Prime(time.Second)

	req := compileRequest(t, copyAddLoop(7))
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, ts.URL+"/v2/compile", strings.NewReader(string(payload)))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(wire.DeadlineHeader, "50") // 50ms budget vs 1s estimate
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed: got %s, want 503", resp.Status)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("shed response missing Retry-After")
	}
	var env wire.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != wire.CodeOverloaded || !env.Error.Retryable {
		t.Fatalf("shed envelope = %+v, want retryable overloaded", env.Error)
	}

	// Shed before work: the request must not have held a worker slot or
	// produced a compile, only the shed/rejected counters move.
	var m struct {
		Shed           int64 `json:"shed"`
		Rejected       int64 `json:"rejected"`
		CacheMisses    int64 `json:"cache_misses"`
		CompileLatency struct {
			Count int64 `json:"count"`
		} `json:"compile_latency"`
	}
	get(t, ts.URL+"/metrics", &m)
	if m.Shed != 1 || m.Rejected != 1 {
		t.Fatalf("metrics after shed: shed=%d rejected=%d, want 1/1", m.Shed, m.Rejected)
	}
	if m.CacheMisses != 0 {
		t.Fatalf("shed request still compiled (cache_misses=%d)", m.CacheMisses)
	}

	// The identical request WITH headroom sails through: shedding is
	// deadline-aware, not a blanket rejection.
	resp2, body := post(t, ts.URL+"/v2/compile", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("unshed compile: %s: %s", resp2.Status, body)
	}
}

// TestBatchCancellationNoLeaks: a batch whose deadline expires before
// its items reach a worker reports a per-item deadline error for every
// item — not a wholesale batch failure — and leaves no goroutines
// behind once the response is written. The 1ns compile timeout makes
// the batch context expire before any item can start, so the outcome
// is deterministic regardless of machine speed: items lose either at
// the worker-slot wait or at the pre-compile context check.
func TestBatchCancellationNoLeaks(t *testing.T) {
	checkGoroutineLeaks(t)
	_, ts := newTestServer(t, server.Config{PoolSize: 1, CompileTimeout: time.Nanosecond})

	items := make([]wire.CompileItem, 8)
	for i := range items {
		req := compileRequest(t, copyAddLoop(int64(2000+i)))
		items[i] = wire.CompileItem{Loop: req.Loop, Options: req.Options}
	}
	payload, err := json.Marshal(&wire.CompileBatchRequest{Version: wire.Version, Items: items})
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, ts.URL+"/v2/compile-batch", strings.NewReader(string(payload)))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: got %s, want 200 with per-item errors", resp.Status)
	}
	var br wire.CompileBatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	for i, item := range br.Items {
		if item.Error == "" {
			t.Fatalf("item %d compiled despite an already-expired batch deadline", i)
		}
		if item.ErrorCode != wire.CodeDeadlineExceeded || !item.Retryable {
			t.Fatalf("item %d: error %q code %q retryable %v, want retryable deadline_exceeded", i, item.Error, item.ErrorCode, item.Retryable)
		}
	}
}

// TestMuxErrorsUseEnvelope: even the router's own errors — unrouted
// path, wrong method — carry the structured envelope, so no error that
// leaves the server is opaque to a v2 client.
func TestMuxErrorsUseEnvelope(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	cases := []struct {
		method, path string
		status       int
		code         string
	}{
		{http.MethodPost, "/v2/nothing-here", http.StatusNotFound, wire.CodeNotFound},
		{http.MethodGet, "/v2/compile", http.StatusMethodNotAllowed, wire.CodeInvalidRequest},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var env wire.ErrorEnvelope
		decodeErr := json.NewDecoder(resp.Body).Decode(&env)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Fatalf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.status)
		}
		if decodeErr != nil {
			t.Fatalf("%s %s: response is not an envelope: %v", tc.method, tc.path, decodeErr)
		}
		if env.Error.Code != tc.code || env.Error.Retryable {
			t.Fatalf("%s %s: envelope %+v, want non-retryable %s", tc.method, tc.path, env.Error, tc.code)
		}
	}
}

// TestDrainEnvelope: while draining, both prefixes reject new work with
// the "draining" code and a Retry-After hint (clients fail over to
// another replica or wait it out).
func TestDrainEnvelope(t *testing.T) {
	srv, ts := newTestServer(t, server.Config{DrainRetryAfter: 7 * time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for _, path := range []string{"/v1/compile", "/v2/compile"} {
		resp, body := post(t, ts.URL+path, compileRequest(t, copyAddLoop(3)))
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s while draining: got %s, want 503", path, resp.Status)
		}
		if ra := resp.Header.Get("Retry-After"); ra != "7" {
			t.Fatalf("%s while draining: Retry-After = %q, want \"7\"", path, ra)
		}
		var env wire.ErrorEnvelope
		if err := json.Unmarshal(body, &env); err != nil {
			t.Fatalf("%s drain body is not the envelope: %v: %s", path, err, body)
		}
		if env.Error.Code != wire.CodeDraining || !env.Error.Retryable {
			t.Fatalf("%s drain envelope = %+v", path, env.Error)
		}
	}
}

// TestV2PrefixServes: the v2 surface is the same handler set as v1 —
// compile on one prefix, fetch the trace on the other, both see the same
// artifact.
func TestV2PrefixServes(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	resp, body := post(t, ts.URL+"/v2/compile", compileRequest(t, copyAddLoop(90)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("v2 compile: %s: %s", resp.Status, body)
	}
	var cr server.CompileResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	var tr traceDoc
	get(t, ts.URL+fmt.Sprintf("/v1/artifacts/%s/trace", cr.Hash), &tr)
	if tr.Hash != cr.Hash {
		t.Fatalf("v1 trace for v2 artifact: %q != %q", tr.Hash, cr.Hash)
	}
}
