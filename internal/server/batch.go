package server

import (
	"context"
	"net/http"
	"sync"
	"time"

	"ltsp/internal/wire"
)

// BatchItemResult is one element of a CompileBatchResponse: either the
// embedded compile response fields or a per-item error. Item order
// matches the request.
type BatchItemResult struct {
	*CompileResponse
	Error string `json:"error,omitempty"`
}

// CompileBatchResponse is the body of POST /v1/compile-batch. The batch
// succeeds as a whole (HTTP 200) even when individual items fail; each
// failed item carries its own error.
type CompileBatchResponse struct {
	Items []BatchItemResult `json:"items"`
}

// handleCompileBatch shards a batch of compile items over the server's
// bounded worker pool: every item competes for the same PoolSize slots
// as single compiles, goes through the same singleflight artifact cache
// (duplicate items within one batch compile once), and lands at its
// request index in the response.
func (s *Server) handleCompileBatch(w http.ResponseWriter, r *http.Request) {
	s.metrics.BatchRequests.Add(1)
	start := time.Now()
	var req wire.CompileBatchRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Version != wire.Version {
		writeError(w, http.StatusBadRequest, "unsupported request version %d (want %d)", req.Version, wire.Version)
		return
	}
	if len(req.Items) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Items) > s.cfg.MaxBatchItems {
		s.metrics.Rejected.Add(1)
		writeError(w, http.StatusRequestEntityTooLarge, "batch of %d items exceeds server limit %d", len(req.Items), s.cfg.MaxBatchItems)
		return
	}
	if s.draining.Load() {
		s.metrics.Rejected.Add(1)
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	s.metrics.BatchItems.Add(int64(len(req.Items)))

	// The deadline covers the whole batch: every item gets the single-
	// compile budget, amortized over the rounds the pool needs to drain
	// the batch.
	rounds := (len(req.Items) + s.cfg.PoolSize - 1) / s.cfg.PoolSize
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.CompileTimeout*time.Duration(rounds))
	defer cancel()

	results := make([]BatchItemResult, len(req.Items))
	var wg sync.WaitGroup
	for i := range req.Items {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			select {
			case s.sem <- struct{}{}:
			case <-ctx.Done():
				s.metrics.Timeouts.Add(1)
				s.metrics.BatchItemErrors.Add(1)
				results[i] = BatchItemResult{Error: "batch deadline exceeded waiting for a worker slot"}
				return
			}
			s.work.Add(1)
			s.metrics.InFlight.Add(1)
			defer func() {
				s.metrics.InFlight.Add(-1)
				s.work.Done()
				<-s.sem
			}()
			art, hash, cached, err := s.compileCached(req.Item(i))
			if err != nil {
				s.metrics.BatchItemErrors.Add(1)
				results[i] = BatchItemResult{Error: err.Error()}
				return
			}
			results[i] = BatchItemResult{CompileResponse: compileResponse(hash, cached, art.Compiled)}
		}(i)
	}
	wg.Wait()
	s.metrics.BatchLatency.Observe(time.Since(start))
	writeJSON(w, http.StatusOK, &CompileBatchResponse{Items: results})
}
