package server

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"

	"ltsp/internal/telemetry"
	"ltsp/internal/wire"
	"ltsp/internal/wire/binary"
)

// The batch response envelopes live in package wire (shared with
// ltspclient); the aliases keep existing embedders and tests compiling.
type (
	BatchItemResult      = wire.BatchItemResult
	CompileBatchResponse = wire.CompileBatchResponse
)

// batchItemError renders a per-item failure with its envelope code, so a
// batch client can tell retryable items (deadline, injected faults) from
// permanently broken ones without parsing message strings.
func batchItemError(err error) BatchItemResult {
	code := errCode(err, http.StatusBadRequest)
	return BatchItemResult{
		Error:     err.Error(),
		ErrorCode: code,
		Retryable: wire.Retryable(code),
	}
}

// handleCompileBatch shards a batch of compile items over the server's
// bounded worker pool: every item competes for the same PoolSize slots
// as single compiles, goes through the same singleflight artifact cache
// (duplicate items within one batch compile once), and lands at its
// request index in the response. Cancellation is per-item: when the
// batch deadline (or the client) gives up, items still queued fail with
// code deadline_exceeded while items already running are canceled
// cooperatively — unless an identical compile is still wanted by another
// request, in which case the flight continues for them.
func (s *Server) handleCompileBatch(w http.ResponseWriter, r *http.Request) {
	s.metrics.BatchRequests.Add(1)
	start := time.Now()
	enc := requestEncoding(r)
	if enc == encUnknown {
		rejectMedia(w, r)
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	defer putBody(body)
	var req wire.CompileBatchRequest
	if enc == encBinary {
		breq, err := binary.DecodeCompileBatch(body.Bytes())
		if err != nil {
			writeBinaryDecodeError(w, err)
			return
		}
		req = *breq
	} else if !decodeJSONBody(w, body.Bytes(), &req) {
		return
	}
	if req.Version != wire.Version {
		writeError(w, http.StatusBadRequest, wire.CodeUnsupportedVersion,
			"unsupported request version %d (want %d)", req.Version, wire.Version)
		return
	}
	if len(req.Items) == 0 {
		writeError(w, http.StatusBadRequest, wire.CodeInvalidRequest, "empty batch")
		return
	}
	if len(req.Items) > s.cfg.MaxBatchItems {
		s.metrics.Rejected.Add(1)
		writeError(w, http.StatusRequestEntityTooLarge, wire.CodeTooLarge,
			"batch of %d items exceeds server limit %d", len(req.Items), s.cfg.MaxBatchItems)
		return
	}
	if s.draining.Load() {
		s.metrics.Rejected.Add(1)
		writeUnavailable(w, wire.CodeDraining, s.cfg.DrainRetryAfter, "server is shutting down")
		return
	}
	s.metrics.BatchItems.Add(int64(len(req.Items)))

	// The deadline covers the whole batch: every item gets the single-
	// compile budget, amortized over the rounds the pool needs to drain
	// the batch. A client-supplied X-Request-Deadline-Ms tightens it.
	rounds := (len(req.Items) + s.cfg.PoolSize - 1) / s.cfg.PoolSize
	ctx, cancel := requestCtx(r, s.cfg.CompileTimeout*time.Duration(rounds))
	defer cancel()

	results := make([]BatchItemResult, len(req.Items))
	tr, parent := telemetry.FromContext(ctx)
	reqID := requestIDFrom(ctx)
	var wg sync.WaitGroup
	for i := range req.Items {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// The item span covers the item's whole life — waiting for a
			// worker slot included — and the item context parents the
			// cache/peer/compile spans recorded underneath it.
			ispan := tr.Start("batch_item", parent)
			ispan.SetAttr("index", strconv.Itoa(i))
			defer ispan.End()
			ictx := telemetry.WithSpan(ctx, tr, ispan)
			select {
			case s.sem <- struct{}{}:
			case <-ctx.Done():
				ispan.SetAttr("outcome", "timeout")
				s.metrics.Timeouts.Add(1)
				s.metrics.BatchItemErrors.Add(1)
				results[i] = BatchItemResult{
					Error:     "batch deadline exceeded waiting for a worker slot",
					ErrorCode: wire.CodeDeadlineExceeded,
					Retryable: true,
				}
				s.logBatchItem(ctx, reqID, i, "", false, ctx.Err())
				return
			}
			s.work.Add(1)
			s.metrics.InFlight.Add(1)
			slotStart := time.Now()
			defer func() {
				s.shed.Observe(time.Since(slotStart))
				s.metrics.InFlight.Add(-1)
				s.work.Done()
				<-s.sem
			}()
			// Outer panic safety net for the item goroutine (compile
			// panics are contained with repro capture in compileCached):
			// the item fails with code "internal", the rest of the batch
			// is unaffected, and the slot is still released.
			defer func() {
				if r := recover(); r != nil {
					s.metrics.PanicsRecovered.Add(1)
					s.metrics.BatchItemErrors.Add(1)
					results[i] = BatchItemResult{
						Error:     fmt.Sprintf("worker panic: %v", r),
						ErrorCode: wire.CodeInternal,
						Retryable: true,
					}
				}
			}()
			art, hash, cached, err := s.compileCached(ictx, req.Item(i))
			if err != nil {
				ispan.SetAttr("outcome", "error")
				s.metrics.BatchItemErrors.Add(1)
				results[i] = batchItemError(err)
				s.logBatchItem(ctx, reqID, i, hash, false, err)
				return
			}
			served := cached || art.Thin()
			ispan.SetAttr("outcome", "ok")
			results[i] = BatchItemResult{CompileResponse: respondCompile(hash, served, art)}
			s.logBatchItem(ctx, reqID, i, hash, served, nil)
		}(i)
	}
	wg.Wait()
	s.metrics.BatchLatency.Observe(time.Since(start))
	resp := &CompileBatchResponse{Items: results}
	if wantsBinary(r) {
		writeBinary(w, binary.EncodeCompileBatchResponse(nil, resp))
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// logBatchItem emits one log line per batch item carrying the batch's
// request ID, so per-item outcomes — including the peer-fill hops they
// caused on other nodes, which forward the same ID — correlate across
// the fleet's log streams.
func (s *Server) logBatchItem(ctx context.Context, id string, idx int, hash string, cached bool, err error) {
	if !s.logOn {
		return
	}
	if err != nil {
		s.logger.LogAttrs(ctx, slog.LevelWarn, "batch_item",
			slog.String("id", id),
			slog.Int("item", idx),
			slog.String("err", err.Error()),
		)
		return
	}
	s.logger.LogAttrs(ctx, slog.LevelInfo, "batch_item",
		slog.String("id", id),
		slog.Int("item", idx),
		slog.String("hash", hash[:min(12, len(hash))]),
		slog.Bool("cached", cached),
	)
}
