package server

import (
	"net/http"

	"ltsp/internal/telemetry"
	"ltsp/internal/wire"
)

// Request-trace endpoints (z-pages style):
//
//	GET /v2/requests/{trace-id}               span tree, JSON
//	GET /v2/requests/{trace-id}?format=chrome Chrome trace-event export
//	GET /debug/requests                       listing of retained traces
//
// Both are served from the bounded in-memory registry — recent requests
// plus pinned slow/error outliers — so they are safe to leave enabled.

func (s *Server) handleRequestTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("trace")
	if !wire.ValidTraceID(id) {
		writeError(w, http.StatusBadRequest, wire.CodeInvalidRequest, "invalid trace id")
		return
	}
	tr, kind := s.traces.Get(id)
	if tr == nil {
		writeError(w, http.StatusNotFound, wire.CodeNotFound,
			"trace not retained (never sampled, or cycled out of the ring)")
		return
	}
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_ = tr.Timeline().WriteJSON(w)
		return
	}
	sum := tr.SummaryOf()
	writeJSON(w, http.StatusOK, wire.RequestTraceResponse{
		TraceID: sum.TraceID,
		Name:    sum.Name,
		Status:  sum.Status,
		Start:   sum.Start.UnixNano(),
		DurNs:   int64(sum.Dur),
		Outlier: kind,
		Spans:   tr.Snapshot(),
	})
}

func (s *Server) handleDebugRequests(w http.ResponseWriter, _ *http.Request) {
	sums := s.traces.List()
	resp := wire.RequestListResponse{Requests: make([]wire.RequestSummary, 0, len(sums))}
	for _, sum := range sums {
		resp.Requests = append(resp.Requests, summaryJSON(sum))
	}
	writeJSON(w, http.StatusOK, resp)
}

func summaryJSON(sum telemetry.Summary) wire.RequestSummary {
	return wire.RequestSummary{
		TraceID: sum.TraceID,
		Name:    sum.Name,
		Status:  sum.Status,
		Start:   sum.Start.UnixNano(),
		DurNs:   int64(sum.Dur),
		Spans:   sum.Spans,
		Outlier: sum.Outlier,
	}
}
