package server_test

// Persistence and cluster-mode tests: the disk store layered under the
// in-memory cache (warm restarts, trace/simulate fall-through, byte
// accounting) and consistent-hash peer cache-fill between in-process
// nodes.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"ltsp/internal/cluster"
	"ltsp/internal/server"
	"ltsp/internal/store"
	"ltsp/internal/wire"
)

// clusterMetricsDoc picks the /metrics fields these tests assert on.
type clusterMetricsDoc struct {
	CacheEntries     int   `json:"cache_entries"`
	CacheBytes       int64 `json:"cache_bytes"`
	CacheMisses      int64 `json:"cache_misses"`
	DiskHits         int64 `json:"disk_hits"`
	ArtifactRequests int64 `json:"artifact_requests"`
	Materializations int64 `json:"materializations"`
	CompileOutcomes  struct {
		Pipelined      int64 `json:"pipelined"`
		ReducedLatency int64 `json:"fallback_reduced_latency"`
		RaisedII       int64 `json:"fallback_raised_ii"`
		Sequential     int64 `json:"sequential"`
	} `json:"compile_outcomes"`
	Disk *struct {
		Entries int   `json:"entries"`
		Bytes   int64 `json:"bytes"`
		Writes  int64 `json:"writes"`
	} `json:"disk,omitempty"`
	Cluster *struct {
		Self       string `json:"self"`
		Peers      int    `json:"peers"`
		PeerHits   int64  `json:"peer_hits"`
		PeerMisses int64  `json:"peer_misses"`
		PeerErrors int64  `json:"peer_errors"`
	} `json:"cluster,omitempty"`
}

func (m *clusterMetricsDoc) compiles() int64 {
	o := m.CompileOutcomes
	return o.Pipelined + o.ReducedLatency + o.RaisedII + o.Sequential
}

// newStoreServer wires a server over a persistent store in dir. Cleanups
// close the HTTP listener before the store (LIFO).
func newStoreServer(t testing.TB, dir string, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st.Close)
	cfg.Store = st
	srv := server.New(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

// TestWarmRestartFromDisk is the headline persistence property: a
// process restart (new server, new store handle, same directory) serves
// previously compiled artifacts — response, trace and simulation — from
// disk without recompiling anything.
func TestWarmRestartFromDisk(t *testing.T) {
	dir := t.TempDir()
	req := compileRequest(t, copyAddLoop(41))

	// First life: compile and simulate, remember the ground truth.
	st1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv1 := server.New(server.Config{Store: st1})
	ts1 := httptest.NewServer(srv1)
	resp, body := post(t, ts1.URL+"/v2/compile", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: %s: %s", resp.Status, body)
	}
	var first server.CompileResponse
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first compile reported cached")
	}
	var sim1 server.SimulateResponse
	resp, body = post(t, ts1.URL+"/v2/simulate", &wire.SimulateRequest{
		Version: wire.Version, Hash: first.Hash, Trip: 64,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate: %s: %s", resp.Status, body)
	}
	if err := json.Unmarshal(body, &sim1); err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	st1.Close()

	// Second life, same directory.
	_, ts2 := newStoreServer(t, dir, server.Config{})

	resp, body = post(t, ts2.URL+"/v2/compile", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm compile: %s: %s", resp.Status, body)
	}
	var warm server.CompileResponse
	if err := json.Unmarshal(body, &warm); err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Fatal("warm restart compile not served as cached")
	}
	if warm.Hash != first.Hash || warm.II != first.II || warm.Listing != first.Listing {
		t.Fatalf("disk-served response differs from the original:\n%+v\nvs\n%+v", warm, first)
	}

	// The trace survived too.
	var tr traceDoc
	get(t, ts2.URL+"/v2/artifacts/"+first.Hash+"/trace", &tr)
	if tr.Hash != first.Hash || tr.Outcome != first.Outcome || len(tr.Events) == 0 {
		t.Fatalf("disk-served trace = hash %q outcome %q %d events", tr.Hash, tr.Outcome, len(tr.Events))
	}

	// Simulating by hash materializes the thin artifact and reproduces
	// the original cycle count exactly (compilation is deterministic).
	var sim2 server.SimulateResponse
	resp, body = post(t, ts2.URL+"/v2/simulate", &wire.SimulateRequest{
		Version: wire.Version, Hash: first.Hash, Trip: 64,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm simulate: %s: %s", resp.Status, body)
	}
	if err := json.Unmarshal(body, &sim2); err != nil {
		t.Fatal(err)
	}
	if sim2.Cycles != sim1.Cycles || sim2.KernelIters != sim1.KernelIters {
		t.Fatalf("materialized simulation diverged: %d cycles vs %d", sim2.Cycles, sim1.Cycles)
	}

	// No compilation ran to serve any of the above: the outcome counters
	// (bumped once per executed compilation) stayed at zero, while the
	// disk layer counted the fills. The one materialization recompiled
	// for simulate without counting as a compilation decision.
	var m clusterMetricsDoc
	get(t, ts2.URL+"/metrics", &m)
	if m.compiles() != 0 {
		t.Fatalf("warm restart executed %d compilations, want 0", m.compiles())
	}
	if m.DiskHits == 0 {
		t.Fatal("warm restart recorded no disk hits")
	}
	if m.Materializations != 1 {
		t.Fatalf("materializations = %d, want 1", m.Materializations)
	}
}

// TestCacheStatsMatchDisk: the in-memory cache and the disk store weigh
// entries with the same accounting (store.EncodedSize), so after N
// compiles /metrics reports the same entries and bytes for both layers.
func TestCacheStatsMatchDisk(t *testing.T) {
	_, ts := newStoreServer(t, t.TempDir(), server.Config{})
	const n = 3
	for k := int64(0); k < n; k++ {
		resp, body := post(t, ts.URL+"/v2/compile", compileRequest(t, copyAddLoop(100+k)))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("compile %d: %s: %s", k, resp.Status, body)
		}
	}
	var m clusterMetricsDoc
	get(t, ts.URL+"/metrics", &m)
	if m.Disk == nil {
		t.Fatal("/metrics has no disk section despite a configured store")
	}
	if m.CacheEntries != n || m.Disk.Entries != n {
		t.Fatalf("entries: memory %d, disk %d, want %d in both", m.CacheEntries, m.Disk.Entries, n)
	}
	if m.CacheBytes == 0 || m.CacheBytes != m.Disk.Bytes {
		t.Fatalf("bytes: memory %d, disk %d — the layers disagree", m.CacheBytes, m.Disk.Bytes)
	}
}

// TestArtifactEndpoint: GET /v2/artifacts/{hash} serves the complete
// transfer envelope with a verifiable content address, and unknown
// hashes fail with the structured 404 envelope.
func TestArtifactEndpoint(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	resp, body := post(t, ts.URL+"/v2/compile", compileRequest(t, copyAddLoop(77)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: %s: %s", resp.Status, body)
	}
	var cr server.CompileResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}

	var ar wire.ArtifactResponse
	get(t, ts.URL+"/v2/artifacts/"+cr.Hash, &ar)
	if ar.Hash != cr.Hash {
		t.Fatalf("artifact hash %q, want %q", ar.Hash, cr.Hash)
	}
	if err := ar.Normalize(); err != nil {
		t.Fatal(err)
	}
	if err := ar.CheckIntegrity(); err != nil {
		t.Fatalf("artifact failed its own integrity check: %v", err)
	}
	var inner server.CompileResponse
	if err := json.Unmarshal(ar.Response, &inner); err != nil {
		t.Fatalf("artifact response section undecodable: %v", err)
	}
	if inner.Hash != cr.Hash || inner.Listing != cr.Listing {
		t.Fatal("artifact response section does not match the compile response")
	}
	if len(ar.Trace) == 0 {
		t.Fatal("artifact has no trace section")
	}

	hresp, err := http.Get(ts.URL + "/v2/artifacts/" + fmt.Sprintf("%064x", 0))
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown artifact: %s, want 404", hresp.Status)
	}
	var env wire.ErrorEnvelope
	if err := json.NewDecoder(hresp.Body).Decode(&env); err != nil || env.Error.Code != wire.CodeNotFound {
		t.Fatalf("unknown artifact envelope = %+v (%v)", env.Error, err)
	}
}

// TestTraceNotFoundEnvelope: the trace endpoint's miss — memory AND
// disk — is the structured 404 envelope.
func TestTraceNotFoundEnvelope(t *testing.T) {
	_, ts := newStoreServer(t, t.TempDir(), server.Config{})
	resp, err := http.Get(ts.URL + "/v2/artifacts/" + fmt.Sprintf("%064x", 7) + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("trace miss: %s, want 404", resp.Status)
	}
	var env wire.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error.Code != wire.CodeNotFound {
		t.Fatalf("trace miss envelope = %+v (%v)", env.Error, err)
	}
}

// swapHandler lets a fixed httptest URL change (or lose) its backing
// server mid-test: the peer-address indirection cluster tests need,
// since ring membership must be known before server.New.
type swapHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (s *swapHandler) Set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	if h == nil {
		http.Error(w, "node down", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// clusterNodes builds n in-process cluster nodes behind stable URLs.
// mutate (optional) adjusts each node's config before construction.
func clusterNodes(t testing.TB, n int, mutate func(i int, cfg *server.Config)) ([]*server.Server, []*httptest.Server, []cluster.Peer) {
	t.Helper()
	handlers := make([]*swapHandler, n)
	tss := make([]*httptest.Server, n)
	peers := make([]cluster.Peer, n)
	for i := range handlers {
		handlers[i] = &swapHandler{}
		tss[i] = httptest.NewServer(handlers[i])
		t.Cleanup(tss[i].Close)
		peers[i] = cluster.Peer{ID: tss[i].URL, Addr: tss[i].URL}
	}
	srvs := make([]*server.Server, n)
	for i := range srvs {
		cfg := server.Config{
			Peers:          peers,
			Self:           peers[i].ID,
			Replication:    1,
			PeerTimeout:    2 * time.Second,
			PeerHedgeDelay: 10 * time.Millisecond,
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		srvs[i] = server.New(cfg)
		handlers[i].Set(srvs[i])
	}
	return srvs, tss, peers
}

// loopOwnedBy finds a copyAdd variant whose artifact hash is owned by
// the given peer (replication 1), so tests can steer work at a node.
func loopOwnedBy(t testing.TB, ring *cluster.Ring, owner cluster.Peer) (*wire.CompileRequest, string) {
	t.Helper()
	for k := int64(0); k < 512; k++ {
		req := compileRequest(t, copyAddLoop(9000+k))
		hash, err := req.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if p, ok := ring.Owner(hash); ok && p.ID == owner.ID {
			return req, hash
		}
	}
	t.Fatalf("no loop variant hashed onto peer %s", owner.ID)
	return nil, ""
}

// TestPeerCacheFill: a node that does not own a hash asks the owner for
// the finished artifact instead of compiling — the response is served
// cached, the non-owner executes zero compilations, and the owner sees
// the artifact request.
func TestPeerCacheFill(t *testing.T) {
	checkGoroutineLeaks(t)
	_, tss, peers := clusterNodes(t, 2, nil)
	ring := cluster.New(cluster.Static(peers), 0)
	req, _ := loopOwnedBy(t, ring, peers[0])

	// Compile on the owner: a normal local compilation.
	resp, body := post(t, tss[0].URL+"/v2/compile", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("owner compile: %s: %s", resp.Status, body)
	}

	// The same request on the non-owner fills from the owner.
	resp, body = post(t, tss[1].URL+"/v2/compile", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("non-owner compile: %s: %s", resp.Status, body)
	}
	var cr server.CompileResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if !cr.Cached {
		t.Fatal("peer-filled compile not reported as cached")
	}

	var m clusterMetricsDoc
	get(t, tss[1].URL+"/metrics", &m)
	if m.Cluster == nil {
		t.Fatal("non-owner /metrics has no cluster section")
	}
	if m.Cluster.PeerHits != 1 {
		t.Fatalf("non-owner peer_hits = %d, want 1", m.Cluster.PeerHits)
	}
	if m.compiles() != 0 {
		t.Fatalf("non-owner executed %d compilations, want 0 (peer fill)", m.compiles())
	}
	get(t, tss[0].URL+"/metrics", &m)
	if m.ArtifactRequests == 0 {
		t.Fatal("owner served no artifact requests")
	}

	// Second request on the non-owner is a plain memory hit.
	resp, body = post(t, tss[1].URL+"/v2/compile", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("non-owner re-compile: %s: %s", resp.Status, body)
	}
	get(t, tss[1].URL+"/metrics", &m)
	if m.Cluster.PeerHits != 1 {
		t.Fatalf("memory hit went back to the peer (peer_hits = %d)", m.Cluster.PeerHits)
	}
}

// TestPeerFillFallsBackToLocalCompile: when every owning replica is
// down, the non-owner compiles locally — availability beats placement.
func TestPeerFillFallsBackToLocalCompile(t *testing.T) {
	checkGoroutineLeaks(t)
	_, tss, peers := clusterNodes(t, 2, func(i int, cfg *server.Config) {
		cfg.PeerTimeout = 300 * time.Millisecond
	})
	ring := cluster.New(cluster.Static(peers), 0)
	req, _ := loopOwnedBy(t, ring, peers[0])

	// Take the owner down. Closing the listener gives connection-refused,
	// the real failure mode of a dead process.
	tss[0].Close()

	resp, body := post(t, tss[1].URL+"/v2/compile", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile with owner down: %s: %s", resp.Status, body)
	}
	var cr server.CompileResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Cached {
		t.Fatal("local fallback compile claimed to be cached")
	}
	var m clusterMetricsDoc
	get(t, tss[1].URL+"/metrics", &m)
	if m.compiles() != 1 {
		t.Fatalf("fallback executed %d compilations, want 1", m.compiles())
	}
	if m.Cluster.PeerErrors == 0 && m.Cluster.PeerMisses == 0 {
		t.Fatal("owner-down fill recorded neither a peer error nor a miss")
	}
}

// TestPeerFillWritesThrough: a peer-filled artifact lands in the
// non-owner's disk store too, so it survives that node's restart.
func TestPeerFillWritesThrough(t *testing.T) {
	dirs := []string{t.TempDir(), t.TempDir()}
	stores := make([]*store.Store, 2)
	for i := range stores {
		st, err := store.Open(dirs[i], store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = st
		t.Cleanup(st.Close)
	}
	_, tss, peers := clusterNodes(t, 2, func(i int, cfg *server.Config) {
		cfg.Store = stores[i]
	})
	ring := cluster.New(cluster.Static(peers), 0)
	req, hash := loopOwnedBy(t, ring, peers[0])

	if resp, body := post(t, tss[0].URL+"/v2/compile", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("owner compile: %s: %s", resp.Status, body)
	}
	if resp, body := post(t, tss[1].URL+"/v2/compile", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("non-owner compile: %s: %s", resp.Status, body)
	}
	if !stores[1].Contains(hash) {
		t.Fatal("peer fill was not written through to the non-owner's store")
	}
	if e, err := stores[1].Get(hash); err != nil {
		t.Fatalf("written-through entry unreadable: %v", err)
	} else if e.Hash != hash {
		t.Fatalf("written-through entry hash %q, want %q", e.Hash, hash)
	}
}
