package server

import (
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"

	"ltsp/internal/buildinfo"
	"ltsp/internal/obs"
)

// latencyBucketsMs are the upper bounds (milliseconds) of the request
// latency histogram; the last bucket is +Inf.
var latencyBucketsMs = [numBounds]float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000}

const numBounds = 13

// Histogram is a fixed-bucket latency histogram safe for concurrent use.
type Histogram struct {
	count   atomic.Int64
	sumUs   atomic.Int64 // accumulated microseconds
	buckets [numBounds + 1]atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.count.Add(1)
	h.sumUs.Add(d.Microseconds())
	ms := float64(d) / float64(time.Millisecond)
	for i, ub := range latencyBucketsMs {
		if ms <= ub {
			h.buckets[i].Add(1)
			return
		}
	}
	h.buckets[len(latencyBucketsMs)].Add(1)
}

// histogramJSON is the /metrics rendering of a histogram. Every
// histogram shares the same bucket bounds, documented once in the
// document's top-level latency_bounds_ms field rather than repeated
// per histogram.
type histogramJSON struct {
	Count   int64            `json:"count"`
	SumMs   float64          `json:"sum_ms"`
	MeanMs  float64          `json:"mean_ms"`
	Buckets map[string]int64 `json:"buckets"`
}

func (h *Histogram) snapshot() histogramJSON {
	out := histogramJSON{
		Count:   h.count.Load(),
		SumMs:   float64(h.sumUs.Load()) / 1000,
		Buckets: make(map[string]int64, len(h.buckets)),
	}
	if out.Count > 0 {
		out.MeanMs = out.SumMs / float64(out.Count)
	}
	// Buckets are stored disjoint but rendered cumulative (the "le_"
	// convention): le_+Inf always equals count.
	var cum int64
	for i := range h.buckets {
		label := "+Inf"
		if i < len(latencyBucketsMs) {
			label = formatBound(latencyBucketsMs[i])
		}
		cum += h.buckets[i].Load()
		out.Buckets["le_"+label] = cum
	}
	return out
}

func formatBound(f float64) string {
	b, _ := json.Marshal(f)
	return string(b)
}

// Metrics aggregates the service counters exposed at GET /metrics
// (expvar-style JSON, no external dependencies).
type Metrics struct {
	CompileRequests  atomic.Int64
	CompileErrors    atomic.Int64
	SimulateRequests atomic.Int64
	SimulateErrors   atomic.Int64
	// BatchRequests counts POST /v1/compile-batch calls; BatchItems the
	// loops submitted through them; BatchItemErrors the items that failed
	// (the batch itself still returns 200 with per-item errors).
	BatchRequests   atomic.Int64
	BatchItems      atomic.Int64
	BatchItemErrors atomic.Int64
	// Rejected counts requests turned away before doing work: queue-full,
	// oversized body, shutdown in progress, load shedding.
	Rejected atomic.Int64
	// Shed counts requests rejected by deadline-aware admission control
	// (a subset of Rejected): the shedder predicted the remaining deadline
	// could not be met, so the request was refused before consuming a
	// worker slot.
	Shed atomic.Int64
	// Timeouts counts requests abandoned at their deadline.
	Timeouts atomic.Int64
	// InFlight is the number of requests currently holding a worker slot.
	InFlight atomic.Int64

	// CacheHits counts lookups served from a completed cached artifact;
	// CacheDedups counts requests that piggybacked on an identical
	// compilation already in flight (singleflight); CacheMisses counts
	// compilations actually executed; CacheEvictions counts LRU drops.
	CacheHits      atomic.Int64
	CacheDedups    atomic.Int64
	CacheMisses    atomic.Int64
	CacheEvictions atomic.Int64

	// Disk-store layer, counted at the server's lookup sites (the store
	// keeps its own internal counters, reported in the /metrics "disk"
	// section): DiskHits are artifacts served from the persistent store
	// without recompiling; DiskWriteErrors are failed write-throughs (the
	// artifact stayed memory-only).
	DiskHits        atomic.Int64
	DiskMisses      atomic.Int64
	DiskWriteErrors atomic.Int64
	// Peer cache-fill layer: PeerHits are artifacts obtained from a
	// cluster peer instead of compiling; PeerMisses are fills that came
	// back empty (every peer missed, errored or timed out); PeerErrors
	// counts individual failed peer fetches (several can contribute to
	// one miss).
	PeerHits   atomic.Int64
	PeerMisses atomic.Int64
	PeerErrors atomic.Int64
	// Read-repair layer: RepairRuns counts repair evaluations scheduled
	// after an artifact creation; RepairPushes counts entries actually
	// replicated to an under-replicated peer; RepairSkipped counts peers
	// skipped because they already held the entry (or were dead);
	// RepairDropped counts repairs the token budget refused; RepairErrors
	// counts failed pushes.
	RepairRuns    atomic.Int64
	RepairPushes  atomic.Int64
	RepairSkipped atomic.Int64
	RepairDropped atomic.Int64
	RepairErrors  atomic.Int64
	// Anti-entropy layer: SyncRuns counts sync rounds (whole-membership
	// digest exchanges); SyncPulls counts artifacts pulled because a
	// replica peer held an owned key this node lacked; SyncErrors counts
	// failed digest/key/pull requests.
	SyncRuns   atomic.Int64
	SyncPulls  atomic.Int64
	SyncErrors atomic.Int64
	// Provenance layer: ProvenanceFailures counts store entries that no
	// longer matched their provenance record and were quarantined (deleted,
	// never served); ProvenanceMismatches counts sync keys whose remote
	// checksum disagreed with this node's provenance record (config drift
	// or a poisoned peer — the entry is not pulled).
	ProvenanceFailures   atomic.Int64
	ProvenanceMismatches atomic.Int64
	// ArtifactRequests counts GET /v2/artifacts/{hash} serves (peer
	// cache-fill traffic arriving at this node). Materializations counts
	// thin artifacts recompiled on demand for the simulate path.
	ArtifactRequests atomic.Int64
	Materializations atomic.Int64
	// Transfer byte accounting by negotiated wire encoding: bytes of
	// artifact envelopes served by GET /v2/artifacts/{hash}, and bytes of
	// artifact envelopes received by this node's peer cache-fills. These
	// report the true size of whatever encoding actually crossed the wire
	// (binary frames are counted as binary bytes, never re-expressed as
	// their JSON equivalent); storage-layer accounting, by contrast, is
	// always JSON-based (store.EncodedSize) so memory and disk weights
	// stay comparable across mixed-encoding fleets.
	ArtifactBytesJSON   atomic.Int64
	ArtifactBytesBinary atomic.Int64
	PeerBytesJSON       atomic.Int64
	PeerBytesBinary     atomic.Int64

	// VerifyRuns counts compilations put through sampled independent
	// verification; VerifyFailures counts the ones the verifier rejected
	// (each also fails the request with code "internal" and, when a repro
	// directory is configured, leaves a bundle on disk).
	VerifyRuns     atomic.Int64
	VerifyFailures atomic.Int64
	// PanicsRecovered counts panics caught at the containment boundaries
	// (compile flight, worker goroutines, batch items) and converted into
	// error envelopes instead of crashing the process.
	PanicsRecovered atomic.Int64

	// Pipeliner outcomes, incremented once per compilation actually
	// executed (cache hits and singleflight piggybacks do not recount).
	OutcomePipelined      atomic.Int64
	OutcomeReducedLatency atomic.Int64
	OutcomeRaisedII       atomic.Int64
	OutcomeSequential     atomic.Int64
	// outcomesByBackend splits the outcome counters by scheduling backend
	// (heuristic/exact/oracle), lazily keyed by the backend label so a
	// newly registered backend needs no metrics change. The aggregate
	// counters above are authoritative; this map is the per-backend view.
	outcomesByBackend sync.Map // string -> *backendOutcomes

	CompileLatency  Histogram
	SimulateLatency Histogram
	BatchLatency    Histogram
	// PeerFillLatency observes successful peer cache-fills, first request
	// byte to verified artifact.
	PeerFillLatency Histogram

	// Per-stage latency histograms: where a request's wall clock goes
	// inside the serving pipeline. Observed on every request (traced or
	// not) at the stage sites themselves — queue wait in acquire, memory
	// lookup in the artifact cache, disk reads, each hedged peer-fill leg,
	// compile, and sampled verification.
	StageQueueWait Histogram
	StageMemLookup Histogram
	StageDiskRead  Histogram
	StagePeerLeg   Histogram
	StageCompile   Histogram
	StageVerify    Histogram
}

// backendOutcomes is one backend's slice of the outcome counters.
type backendOutcomes struct {
	Pipelined      atomic.Int64
	ReducedLatency atomic.Int64
	RaisedII       atomic.Int64
	Sequential     atomic.Int64
}

func (b *backendOutcomes) count(outcome string) {
	switch outcome {
	case obs.OutcomePipelined:
		b.Pipelined.Add(1)
	case obs.OutcomeReducedLatency:
		b.ReducedLatency.Add(1)
	case obs.OutcomeRaisedII:
		b.RaisedII.Add(1)
	case obs.OutcomeSequential:
		b.Sequential.Add(1)
	}
}

// CountOutcome bumps the counter matching an obs.Outcome* string, both
// in aggregate and under the scheduling backend's label ("" is
// normalized to "heuristic").
func (m *Metrics) CountOutcome(backend, outcome string) {
	switch outcome {
	case obs.OutcomePipelined:
		m.OutcomePipelined.Add(1)
	case obs.OutcomeReducedLatency:
		m.OutcomeReducedLatency.Add(1)
	case obs.OutcomeRaisedII:
		m.OutcomeRaisedII.Add(1)
	case obs.OutcomeSequential:
		m.OutcomeSequential.Add(1)
	}
	if backend == "" {
		backend = "heuristic"
	}
	bo, ok := m.outcomesByBackend.Load(backend)
	if !ok {
		bo, _ = m.outcomesByBackend.LoadOrStore(backend, &backendOutcomes{})
	}
	bo.(*backendOutcomes).count(outcome)
}

// snapshotByBackend renders the per-backend outcome split; map keys are
// the backend labels (encoding/json emits them sorted).
func (m *Metrics) snapshotByBackend() map[string]outcomesJSON {
	out := map[string]outcomesJSON{}
	m.outcomesByBackend.Range(func(k, v any) bool {
		bo := v.(*backendOutcomes)
		out[k.(string)] = outcomesJSON{
			Pipelined:      bo.Pipelined.Load(),
			ReducedLatency: bo.ReducedLatency.Load(),
			RaisedII:       bo.RaisedII.Load(),
			Sequential:     bo.Sequential.Load(),
		}
		return true
	})
	return out
}

// buildInfoJSON is the /metrics build_info block.
type buildInfoJSON struct {
	Version string `json:"version"`
	Go      string `json:"go"`
}

// outcomesJSON is the /metrics compile_outcomes block, keyed to match the
// obs.Outcome* strings.
type outcomesJSON struct {
	Pipelined      int64 `json:"pipelined"`
	ReducedLatency int64 `json:"fallback_reduced_latency"`
	RaisedII       int64 `json:"fallback_raised_ii"`
	Sequential     int64 `json:"sequential"`
}

// diskJSON is the /metrics "disk" section: the persistent artifact
// store's own accounting. Entries/bytes use the same byte accounting as
// the in-memory cache section, so the layers are directly comparable.
type diskJSON struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Writes    int64 `json:"writes"`
	Evictions int64 `json:"evictions"`
	Corrupt   int64 `json:"corrupt"`
	Scans     int64 `json:"scans"`
}

// clusterJSON is the /metrics "cluster" section.
type clusterJSON struct {
	Self        string `json:"self"`
	Peers       int    `json:"peers"` // ring size
	Replication int    `json:"replication"`
	// Health prober / membership accounting.
	PeersAlive    int           `json:"peers_alive"`
	PeersDead     int           `json:"peers_dead"`
	RingSwaps     int64         `json:"ring_swaps"`
	ResolveErrors int64         `json:"resolve_errors"`
	PeerHits      int64         `json:"peer_hits"`
	PeerMisses    int64         `json:"peer_misses"`
	PeerErrors    int64         `json:"peer_errors"`
	RepairRuns    int64         `json:"repair_runs"`
	RepairPushes  int64         `json:"repair_pushes"`
	RepairSkipped int64         `json:"repair_skipped"`
	RepairDropped int64         `json:"repair_dropped"`
	RepairErrors  int64         `json:"repair_errors"`
	SyncRuns      int64         `json:"sync_runs"`
	SyncPulls     int64         `json:"sync_pulls"`
	SyncErrors    int64         `json:"sync_errors"`
	FillLatency   histogramJSON `json:"fill_latency"`
}

// provenanceJSON is the /metrics "provenance" section: the tamper-evident
// creation log's own accounting plus the quarantine counters.
type provenanceJSON struct {
	Records        int64 `json:"records"`
	Batches        int   `json:"batches"`
	Dropped        int64 `json:"dropped"`
	Failures       int64 `json:"failures"`
	PeerMismatches int64 `json:"peer_mismatches"`
}

// stagesJSON is the /metrics "stage_latency" block: one histogram per
// pipeline stage, keyed by stage name.
type stagesJSON struct {
	QueueWait histogramJSON `json:"queue_wait"`
	MemLookup histogramJSON `json:"mem_lookup"`
	DiskRead  histogramJSON `json:"disk_read"`
	PeerLeg   histogramJSON `json:"peer_leg"`
	Compile   histogramJSON `json:"compile"`
	Verify    histogramJSON `json:"verify"`
}

// metricsJSON is the /metrics document. LatencyBounds documents the
// shared histogram bucket upper bounds exactly once; every histogram's
// buckets map uses these bounds cumulatively (le_ convention).
type metricsJSON struct {
	BuildInfo           buildInfoJSON `json:"build_info"`
	UptimeSeconds       float64       `json:"uptime_seconds"`
	LatencyBounds       []float64     `json:"latency_bounds_ms"`
	CompileRequests     int64         `json:"compile_requests"`
	CompileErrors       int64         `json:"compile_errors"`
	SimulateRequests    int64         `json:"simulate_requests"`
	SimulateErrors      int64         `json:"simulate_errors"`
	BatchRequests       int64         `json:"batch_requests"`
	BatchItems          int64         `json:"batch_items"`
	BatchItemErrors     int64         `json:"batch_item_errors"`
	Rejected            int64         `json:"rejected"`
	Shed                int64         `json:"shed"`
	Timeouts            int64         `json:"timeouts"`
	InFlight            int64         `json:"in_flight"`
	CacheHits           int64         `json:"cache_hits"`
	CacheDedups         int64         `json:"cache_dedups"`
	CacheMisses         int64         `json:"cache_misses"`
	CacheEvictions      int64         `json:"cache_evictions"`
	CacheEntries        int           `json:"cache_entries"`
	CacheBytes          int64         `json:"cache_bytes"`
	CacheCapacity       int           `json:"cache_capacity"`
	DiskHits            int64         `json:"disk_hits"`
	DiskMisses          int64         `json:"disk_misses"`
	DiskWriteErrors     int64         `json:"disk_write_errors"`
	ArtifactRequests    int64         `json:"artifact_requests"`
	Materializations    int64         `json:"materializations"`
	ArtifactBytesJSON   int64         `json:"artifact_bytes_json"`
	ArtifactBytesBinary int64         `json:"artifact_bytes_binary"`
	PeerBytesJSON       int64         `json:"peer_fill_bytes_json"`
	PeerBytesBinary     int64         `json:"peer_fill_bytes_binary"`
	VerifyRuns          int64         `json:"verify_runs"`
	VerifyFailures      int64         `json:"verify_failures"`
	PanicsRecovered     int64         `json:"panics_recovered"`
	CompileOutcomes     outcomesJSON  `json:"compile_outcomes"`
	// CompileOutcomesByBackend splits the same counters by scheduling
	// backend label; absent until the first compilation lands.
	CompileOutcomesByBackend map[string]outcomesJSON `json:"compile_outcomes_by_backend,omitempty"`
	CompileLatency           histogramJSON           `json:"compile_latency"`
	SimulateLatency          histogramJSON           `json:"simulate_latency"`
	BatchLatency             histogramJSON           `json:"batch_latency"`
	Stages                   stagesJSON              `json:"stage_latency"`
	Disk                     *diskJSON               `json:"disk,omitempty"`
	Cluster                  *clusterJSON            `json:"cluster,omitempty"`
	Provenance               *provenanceJSON         `json:"provenance,omitempty"`
}

func (m *Metrics) snapshot(cache CacheStats, disk *diskJSON, cluster *clusterJSON, prov *provenanceJSON, uptime time.Duration) metricsJSON {
	return metricsJSON{
		BuildInfo: buildInfoJSON{
			Version: buildinfo.Version,
			Go:      buildinfo.GoVersion(),
		},
		UptimeSeconds:       uptime.Seconds(),
		LatencyBounds:       latencyBucketsMs[:],
		CompileRequests:     m.CompileRequests.Load(),
		CompileErrors:       m.CompileErrors.Load(),
		SimulateRequests:    m.SimulateRequests.Load(),
		SimulateErrors:      m.SimulateErrors.Load(),
		BatchRequests:       m.BatchRequests.Load(),
		BatchItems:          m.BatchItems.Load(),
		BatchItemErrors:     m.BatchItemErrors.Load(),
		Rejected:            m.Rejected.Load(),
		Shed:                m.Shed.Load(),
		Timeouts:            m.Timeouts.Load(),
		InFlight:            m.InFlight.Load(),
		CacheHits:           m.CacheHits.Load(),
		CacheDedups:         m.CacheDedups.Load(),
		CacheMisses:         m.CacheMisses.Load(),
		CacheEvictions:      m.CacheEvictions.Load(),
		CacheEntries:        cache.Entries,
		CacheBytes:          cache.Bytes,
		CacheCapacity:       cache.Capacity,
		DiskHits:            m.DiskHits.Load(),
		DiskMisses:          m.DiskMisses.Load(),
		DiskWriteErrors:     m.DiskWriteErrors.Load(),
		ArtifactRequests:    m.ArtifactRequests.Load(),
		Materializations:    m.Materializations.Load(),
		ArtifactBytesJSON:   m.ArtifactBytesJSON.Load(),
		ArtifactBytesBinary: m.ArtifactBytesBinary.Load(),
		PeerBytesJSON:       m.PeerBytesJSON.Load(),
		PeerBytesBinary:     m.PeerBytesBinary.Load(),
		VerifyRuns:          m.VerifyRuns.Load(),
		VerifyFailures:      m.VerifyFailures.Load(),
		PanicsRecovered:     m.PanicsRecovered.Load(),
		CompileOutcomes: outcomesJSON{
			Pipelined:      m.OutcomePipelined.Load(),
			ReducedLatency: m.OutcomeReducedLatency.Load(),
			RaisedII:       m.OutcomeRaisedII.Load(),
			Sequential:     m.OutcomeSequential.Load(),
		},
		CompileOutcomesByBackend: m.snapshotByBackend(),
		CompileLatency:           m.CompileLatency.snapshot(),
		SimulateLatency:          m.SimulateLatency.snapshot(),
		BatchLatency:             m.BatchLatency.snapshot(),
		Stages: stagesJSON{
			QueueWait: m.StageQueueWait.snapshot(),
			MemLookup: m.StageMemLookup.snapshot(),
			DiskRead:  m.StageDiskRead.snapshot(),
			PeerLeg:   m.StagePeerLeg.snapshot(),
			Compile:   m.StageCompile.snapshot(),
			Verify:    m.StageVerify.snapshot(),
		},
		Disk:       disk,
		Cluster:    cluster,
		Provenance: prov,
	}
}
