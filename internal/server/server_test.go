package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"ltsp"
	"ltsp/internal/ir"
	"ltsp/internal/server"
	"ltsp/internal/wire"
	"ltsp/internal/workload"
)

func newTestServer(t testing.TB, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	srv := server.New(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func post(t testing.TB, url string, body any) (*http.Response, []byte) {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func get(t testing.TB, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// copyAddLoop builds the paper's running example with a distinguishing
// constant, so distinct k values are distinct cache keys.
func copyAddLoop(k int64) *ir.Loop {
	l := ir.NewLoop("copyadd")
	v, bs, bd, r, kr := l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR()
	ld := ir.Ld(v, bs, 4, 4)
	ld.Mem.Stride, ld.Mem.StrideBytes = ir.StrideUnit, 4
	l.Append(ld)
	l.Append(ir.Add(r, v, kr))
	st := ir.St(bd, r, 4, 4)
	st.Mem.Stride, st.Mem.StrideBytes = ir.StrideUnit, 4
	l.Append(st)
	l.Init(bs, 0x100000)
	l.Init(bd, 0x200000)
	l.Init(kr, k)
	l.LiveOut = []ir.Reg{bs, bd}
	return l
}

func compileRequest(t testing.TB, l *ir.Loop) *wire.CompileRequest {
	t.Helper()
	req, err := wire.NewCompileRequest(l, ltsp.Options{
		Mode: ltsp.ModeHLO, Prefetch: true, LatencyTolerant: true, TripEstimate: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return req
}

// TestCompileEndpoint drives one compile and checks the response shape.
func TestCompileEndpoint(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	resp, body := post(t, ts.URL+"/v1/compile", compileRequest(t, copyAddLoop(1)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: %s: %s", resp.Status, body)
	}
	var cr server.CompileResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Hash == "" || !cr.Pipelined || cr.II < 1 || cr.Stages < 1 || cr.Listing == "" {
		t.Fatalf("implausible compile response: %+v", cr)
	}
	if cr.Cached {
		t.Fatal("first compile reported cached")
	}
}

// TestSimulateByHashAndInline compiles, simulates by hash, then inline,
// and cross-checks the two cycle counts.
func TestSimulateByHashAndInline(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	req := compileRequest(t, copyAddLoop(2))

	resp, body := post(t, ts.URL+"/v1/compile", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: %s: %s", resp.Status, body)
	}
	var cr server.CompileResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}

	simByHash := wire.SimulateRequest{Version: wire.Version, Hash: cr.Hash, Trip: 500}
	resp, body = post(t, ts.URL+"/v1/simulate", simByHash)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate by hash: %s: %s", resp.Status, body)
	}
	var s1 server.SimulateResponse
	if err := json.Unmarshal(body, &s1); err != nil {
		t.Fatal(err)
	}
	if s1.Cycles < 500 {
		t.Fatalf("implausible cycle count %d for trip 500", s1.Cycles)
	}
	if s1.Acct.Total != s1.Cycles {
		t.Fatalf("accounting total %d != cycles %d", s1.Acct.Total, s1.Cycles)
	}

	simInline := wire.SimulateRequest{Version: wire.Version, Loop: req.Loop, Options: req.Options, Trip: 500}
	resp, body = post(t, ts.URL+"/v1/simulate", simInline)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate inline: %s: %s", resp.Status, body)
	}
	var s2 server.SimulateResponse
	if err := json.Unmarshal(body, &s2); err != nil {
		t.Fatal(err)
	}
	if s2.Hash != cr.Hash {
		t.Fatalf("inline simulate hashed to %s, compile to %s", s2.Hash, cr.Hash)
	}
	if !s2.Cached {
		t.Fatal("inline simulate of a compiled loop missed the artifact cache")
	}
	if s1.Cycles != s2.Cycles {
		t.Fatalf("hash vs inline cycles differ: %d vs %d", s1.Cycles, s2.Cycles)
	}

	// Unknown hashes are a clean 404.
	resp, _ = post(t, ts.URL+"/v1/simulate", wire.SimulateRequest{Version: wire.Version, Hash: "deadbeef", Trip: 10})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown hash: got %s, want 404", resp.Status)
	}
}

// TestSimulateWithMemory seeds memory and checks it affects the result
// deterministically.
func TestSimulateWithMemory(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	gen, _ := workload.PointerChase(256, 3)
	req, err := wire.NewCompileRequest(gen(), ltsp.Options{Mode: ltsp.ModeHLO, Prefetch: true, LatencyTolerant: true, TripEstimate: 1000})
	if err != nil {
		t.Fatal(err)
	}
	// A tiny two-node cycle at the chain head so the chase never hits
	// address zero.
	mem := []wire.MemInit{
		{Addr: 0x0200_0000, Size: 8, Val: 0x0200_0000 + 32},
		{Addr: 0x0200_0000 + 32, Size: 8, Val: 0x0200_0000},
	}
	sim := wire.SimulateRequest{Version: wire.Version, Loop: req.Loop, Options: req.Options, Trip: 64, Memory: mem}
	resp, body := post(t, ts.URL+"/v1/simulate", sim)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate: %s: %s", resp.Status, body)
	}
	var s1, s2 server.SimulateResponse
	if err := json.Unmarshal(body, &s1); err != nil {
		t.Fatal(err)
	}
	_, body = post(t, ts.URL+"/v1/simulate", sim)
	if err := json.Unmarshal(body, &s2); err != nil {
		t.Fatal(err)
	}
	if s1.Cycles != s2.Cycles {
		t.Fatalf("simulation not deterministic: %d vs %d cycles", s1.Cycles, s2.Cycles)
	}
}

// TestValidation exercises the request validation paths.
func TestValidation(t *testing.T) {
	_, ts := newTestServer(t, server.Config{MaxTrip: 1000})
	cases := []struct {
		name string
		url  string
		body string
		want int
	}{
		{"malformed json", "/v1/compile", "{", http.StatusBadRequest},
		{"wrong version", "/v1/compile", `{"v":9,"loop":{"v":1,"body":[]},"options":{}}`, http.StatusBadRequest},
		{"no loop", "/v1/compile", `{"v":1,"options":{}}`, http.StatusBadRequest},
		{"bad mode", "/v1/compile", `{"v":1,"loop":{"v":1,"body":[]},"options":{"mode":"warp"}}`, http.StatusBadRequest},
		{"zero trip", "/v1/simulate", `{"v":1,"hash":"x","trip":0}`, http.StatusBadRequest},
		{"trip too big", "/v1/simulate", `{"v":1,"hash":"x","trip":1000000}`, http.StatusBadRequest},
		{"hash and loop", "/v1/simulate", `{"v":1,"hash":"x","loop":{"v":1,"body":[]},"trip":5}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+tc.url, "application/json", bytes.NewReader([]byte(tc.body)))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("got %d, want %d", resp.StatusCode, tc.want)
			}
		})
	}
}

// metricsDoc is the subset of /metrics the tests assert on.
type metricsDoc struct {
	CompileRequests int64 `json:"compile_requests"`
	CompileErrors   int64 `json:"compile_errors"`
	CacheHits       int64 `json:"cache_hits"`
	CacheDedups     int64 `json:"cache_dedups"`
	CacheMisses     int64 `json:"cache_misses"`
	CacheEvictions  int64 `json:"cache_evictions"`
	CacheEntries    int   `json:"cache_entries"`
	InFlight        int64 `json:"in_flight"`
	CompileLatency  struct {
		Count int64 `json:"count"`
	} `json:"compile_latency"`
}

// TestConcurrentCompiles is the acceptance-criteria integration test: 96
// concurrent /v1/compile requests over a mix of duplicate and distinct
// loops (run under -race in CI). All must succeed; the duplicates must be
// served by the artifact cache or deduplicated in flight, and the counts
// must be visible in /metrics.
func TestConcurrentCompiles(t *testing.T) {
	const (
		distinct = 8
		workers  = 96
	)
	srv, ts := newTestServer(t, server.Config{PoolSize: 8, CacheCapacity: 64})

	// Pre-encode the request bodies (one per distinct loop).
	bodies := make([][]byte, distinct)
	hashes := make(map[string]bool)
	for i := range bodies {
		req := compileRequest(t, copyAddLoop(int64(i)))
		h, err := req.Hash()
		if err != nil {
			t.Fatal(err)
		}
		hashes[h] = true
		data, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		bodies[i] = data
	}
	if len(hashes) != distinct {
		t.Fatalf("expected %d distinct hashes, got %d", distinct, len(hashes))
	}

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		gotHash = make(map[int]string)
		errs    []string
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			idx := w % distinct
			resp, err := http.Post(ts.URL+"/v1/compile", "application/json", bytes.NewReader(bodies[idx]))
			if err != nil {
				mu.Lock()
				errs = append(errs, err.Error())
				mu.Unlock()
				return
			}
			defer resp.Body.Close()
			data, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				mu.Lock()
				errs = append(errs, fmt.Sprintf("worker %d: %s: %s", w, resp.Status, data))
				mu.Unlock()
				return
			}
			var cr server.CompileResponse
			if err := json.Unmarshal(data, &cr); err != nil {
				mu.Lock()
				errs = append(errs, err.Error())
				mu.Unlock()
				return
			}
			mu.Lock()
			if prev, ok := gotHash[idx]; ok && prev != cr.Hash {
				errs = append(errs, fmt.Sprintf("loop %d hashed to both %s and %s", idx, prev, cr.Hash))
			}
			gotHash[idx] = cr.Hash
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	if len(errs) > 0 {
		t.Fatalf("%d of %d requests failed; first: %s", len(errs), workers, errs[0])
	}
	for idx, h := range gotHash {
		if !hashes[h] {
			t.Fatalf("loop %d returned unknown hash %s", idx, h)
		}
	}

	var m metricsDoc
	get(t, ts.URL+"/metrics", &m)
	if m.CompileRequests != workers {
		t.Fatalf("metrics: compile_requests = %d, want %d", m.CompileRequests, workers)
	}
	if m.CompileErrors != 0 {
		t.Fatalf("metrics: compile_errors = %d", m.CompileErrors)
	}
	if m.CacheMisses != distinct {
		t.Fatalf("metrics: cache_misses = %d, want %d (one real compile per distinct loop)", m.CacheMisses, distinct)
	}
	if m.CacheHits+m.CacheDedups != workers-distinct {
		t.Fatalf("metrics: hits %d + dedups %d != %d duplicate requests", m.CacheHits, m.CacheDedups, workers-distinct)
	}
	if m.CacheEntries != distinct {
		t.Fatalf("metrics: cache_entries = %d, want %d", m.CacheEntries, distinct)
	}
	if m.CompileLatency.Count != workers {
		t.Fatalf("metrics: latency count = %d, want %d", m.CompileLatency.Count, workers)
	}
	if m.InFlight != 0 {
		t.Fatalf("metrics: in_flight = %d after drain", m.InFlight)
	}
	if got := srv.Cache().Len(); got != distinct {
		t.Fatalf("cache holds %d artifacts, want %d", got, distinct)
	}
}

// TestLRUEviction: a cache of capacity 2 keeps only the two most recent
// artifacts and counts evictions.
func TestLRUEviction(t *testing.T) {
	srv, ts := newTestServer(t, server.Config{CacheCapacity: 2})
	for i := 0; i < 4; i++ {
		resp, body := post(t, ts.URL+"/v1/compile", compileRequest(t, copyAddLoop(int64(100+i))))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("compile %d: %s: %s", i, resp.Status, body)
		}
	}
	if got := srv.Cache().Len(); got != 2 {
		t.Fatalf("cache holds %d, want 2", got)
	}
	var m metricsDoc
	get(t, ts.URL+"/metrics", &m)
	if m.CacheEvictions != 2 {
		t.Fatalf("cache_evictions = %d, want 2", m.CacheEvictions)
	}
}

// TestHealthzAndShutdown checks liveness and the drain path.
func TestHealthzAndShutdown(t *testing.T) {
	srv, ts := newTestServer(t, server.Config{})
	var h map[string]string
	get(t, ts.URL+"/healthz", &h)
	if h["status"] != "ok" {
		t.Fatalf("healthz: %v", h)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	get(t, ts.URL+"/healthz", &h)
	if h["status"] != "draining" {
		t.Fatalf("healthz after shutdown: %v", h)
	}
	resp, _ := post(t, ts.URL+"/v1/compile", compileRequest(t, copyAddLoop(55)))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("compile after shutdown: got %s, want 503", resp.Status)
	}
}

// TestCachedSpeedup asserts the acceptance criterion that a cached
// compile round-trip is at least an order of magnitude faster than a cold
// one, comparing mean HTTP round-trip times against the same server.
func TestCachedSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if raceEnabled {
		t.Skip("timing assertions are not meaningful under the race detector")
	}
	_, ts := newTestServer(t, server.Config{CacheCapacity: 1024})
	// The wide xor kernel is the most expensive archetype to schedule
	// (large body, big II search space), which makes it the representative
	// workload for the cold path: a cache hit skips all of that work.
	gen, _ := workload.MultiStreamXor(12, 64)
	base, err := wire.NewCompileRequest(gen(), ltsp.Options{Mode: ltsp.ModeHLO, Prefetch: true, LatencyTolerant: true, TripEstimate: 1000})
	if err != nil {
		t.Fatal(err)
	}

	doPost := func(body []byte) {
		resp, err := http.Post(ts.URL+"/v1/compile", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("compile: %s", resp.Status)
		}
	}

	const coldN = 12
	coldBodies := make([][]byte, coldN)
	for i := range coldBodies {
		// Each cold sample is the same heavy loop under a distinct name, so
		// every request is a genuine cache miss doing identical compile work.
		cp := *base
		cp.Loop = mutateName(t, base.Loop, fmt.Sprintf("xor%d", i))
		data, err := json.Marshal(&cp)
		if err != nil {
			t.Fatal(err)
		}
		coldBodies[i] = data
	}
	warmBody, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	doPost(warmBody) // populate the cache

	coldStart := time.Now()
	for _, b := range coldBodies {
		doPost(b)
	}
	coldMean := time.Since(coldStart) / coldN

	const warmN = 200
	warmStart := time.Now()
	for i := 0; i < warmN; i++ {
		doPost(warmBody)
	}
	warmMean := time.Since(warmStart) / warmN

	t.Logf("cold mean %v, cached mean %v (%.1fx)", coldMean, warmMean, float64(coldMean)/float64(warmMean))
	if coldMean < 10*warmMean {
		t.Fatalf("cached round-trip not >=10x faster: cold %v vs cached %v", coldMean, warmMean)
	}
}

// mutateName rewrites the loop name inside an encoded loop so the content
// hash changes while the compilation work stays identical.
func mutateName(t testing.TB, loop json.RawMessage, name string) json.RawMessage {
	t.Helper()
	l, err := ir.DecodeLoop(loop)
	if err != nil {
		t.Fatal(err)
	}
	l.Name = name
	data, err := ir.EncodeLoop(l)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
