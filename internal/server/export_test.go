package server

import (
	"ltsp"
	"ltsp/internal/ir"
)

// SetTestCompileHook installs (or, with nil, clears) the compile-flight
// hook tests use to seed panics behind the containment boundary.
func SetTestCompileHook(fn func(*ir.Loop)) { testCompileHook = fn }

// SetTestVerifyHook installs (or clears) the verification verdict
// override tests use to exercise the verify-failure path.
func SetTestVerifyHook(fn func(*ltsp.Compiled) error) { testVerifyHook = fn }
