package server

// Anti-entropy: the background convergence loop that makes the cluster
// self-healing. Read-repair fixes the replicas touched by live traffic;
// anti-entropy fixes everything else — a node that restarted empty, or
// whose arcs grew after a membership change, discovers what it is
// missing by exchanging compact range digests with its replica peers
// and pulls the artifacts through the ordinary (integrity-verified)
// artifact endpoint.
//
// The key space is partitioned into 256 buckets by the first hex byte
// of the artifact hash. A digest request names an owner; the responder
// answers with, per bucket, the count and a truncated sha256 over the
// sorted "hash checksum" lines of the entries it holds that the owner's
// ring arcs cover (checksums come from the responder's provenance
// chain, so the digests double as tamper-evidence anchors: a peer whose
// recorded checksum disagrees with ours is surfaced as a provenance
// mismatch and its copy is never pulled). Equal digests mean equal
// bucket contents — only mismatched buckets are enumerated key by key.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"ltsp/internal/cluster"
	"ltsp/internal/store"
	"ltsp/internal/telemetry"
	"ltsp/internal/wire"
	"ltsp/internal/wire/binary"
)

// pokeSync wakes the anti-entropy loop out of turn (startup, membership
// change). Non-blocking: a pending poke coalesces with the next.
func (s *Server) pokeSync() {
	select {
	case s.syncPoke <- struct{}{}:
	default:
	}
}

// startAntiEntropy launches the background sync loop: an immediate
// first round (a restarted node reconverges without waiting out the
// interval), then one round per interval or poke.
func (s *Server) startAntiEntropy(interval time.Duration) {
	s.pokeSync()
	s.bgWait.Add(1)
	go func() {
		defer s.bgWait.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-s.bgStop:
				return
			case <-ticker.C:
			case <-s.syncPoke:
			}
			ctx, cancel := context.WithTimeout(context.Background(), interval)
			rep := s.SyncOnce(ctx)
			cancel()
			if rep.Pulled > 0 || rep.Errors > 0 || rep.Mismatches > 0 {
				s.logger.Info("anti-entropy round",
					"peers", rep.Peers, "pulled", rep.Pulled,
					"mismatches", rep.Mismatches, "errors", rep.Errors)
			}
		}
	}()
}

// SyncReport summarizes one anti-entropy round.
type SyncReport struct {
	// Peers is how many replica peers were consulted.
	Peers int
	// Pulled counts artifacts fetched because a peer held an owned key
	// this node lacked.
	Pulled int
	// Mismatches counts keys whose remote provenance checksum disagreed
	// with this node's record (the remote copy is not pulled).
	Mismatches int
	// Errors counts failed digest/key/pull exchanges.
	Errors int
}

// SyncOnce runs one anti-entropy round synchronously: for every eligible
// peer, compare per-bucket digests of the keys this node owns, enumerate
// mismatched buckets, and pull missing artifacts. Embedders and tests
// call it directly; the background loop calls it on its schedule.
func (s *Server) SyncOnce(ctx context.Context) SyncReport {
	var rep SyncReport
	ring := s.ring()
	if ring == nil || s.store == nil {
		return rep
	}
	s.metrics.SyncRuns.Add(1)
	tr := telemetry.New("")
	root := tr.Start("anti_entropy", nil)
	local := s.syncBuckets(ring, s.cfg.Self)
	for _, p := range ring.Peers() {
		if p.ID == s.cfg.Self || !s.health.Eligible(p.ID) {
			continue
		}
		rep.Peers++
		pspan := tr.Start("sync_peer", root)
		pspan.SetAttr("peer", p.ID)
		pulled, mism, err := s.syncWithPeer(ctx, p, local, tr, pspan)
		rep.Pulled += pulled
		rep.Mismatches += mism
		if err != nil {
			rep.Errors++
			s.metrics.SyncErrors.Add(1)
			if ctx.Err() == nil {
				s.health.ReportFailure(p.ID)
			}
			pspan.SetAttr("outcome", "error")
			s.logger.Debug("anti-entropy exchange failed", "peer", p.ID, "err", err)
		} else {
			s.health.ReportSuccess(p.ID)
			pspan.SetAttr("outcome", "ok")
		}
		pspan.SetAttr("pulled", strconv.Itoa(pulled))
		pspan.End()
	}
	root.SetAttr("pulled", strconv.Itoa(rep.Pulled))
	root.End()
	status := http.StatusOK
	if rep.Errors > 0 {
		status = http.StatusBadGateway
	}
	tr.Finish("anti_entropy", status)
	s.traces.Record(tr)
	return rep
}

// syncWithPeer compares digests with one peer and pulls what is missing.
func (s *Server) syncWithPeer(ctx context.Context, p cluster.Peer, local map[int]wire.SyncBucket, tr *telemetry.Trace, parent *telemetry.Span) (pulled, mismatches int, err error) {
	remote, err := s.fetchSyncDigest(ctx, p, s.cfg.Self)
	if err != nil {
		return 0, 0, err
	}
	if remote.Replication != 0 && remote.Replication != s.cfg.Replication {
		s.logger.Warn("replication config drift", "peer", p.ID,
			"theirs", remote.Replication, "ours", s.cfg.Replication)
	}
	var firstErr error
	for _, rb := range remote.Buckets {
		if lb, ok := local[rb.Bucket]; ok && lb.Digest == rb.Digest {
			continue
		}
		keys, kerr := s.fetchSyncKeys(ctx, p, s.cfg.Self, rb.Bucket)
		if kerr != nil {
			if firstErr == nil {
				firstErr = kerr
			}
			continue
		}
		for _, k := range keys.Keys {
			if !wire.ValidHash(k.Hash) {
				continue
			}
			if s.store.Contains(k.Hash) {
				// Both sides hold the key; when both sides also pinned it
				// in their provenance chains and the pins disagree, one of
				// the copies has been rewritten — surface it, pull nothing.
				if ours, ok := s.prov.Latest(k.Hash); ok && k.Checksum != "" && ours != k.Checksum {
					mismatches++
					s.metrics.ProvenanceMismatches.Add(1)
					s.logger.Warn("provenance disagreement with peer",
						"hash", k.Hash[:12], "peer", p.ID,
						"ours", ours[:min(12, len(ours))], "theirs", k.Checksum[:min(12, len(k.Checksum))])
				}
				continue
			}
			e, ferr := s.fetchArtifact(ctx, p, k.Hash, tr, parent, "")
			if ferr != nil || e == nil {
				if ferr != nil && firstErr == nil {
					firstErr = ferr
				}
				continue
			}
			s.persist(e, store.SourceAntiEntropy)
			if a, aerr := thinArtifact(e); aerr == nil {
				s.cache.Add(k.Hash, a)
			}
			pulled++
			s.metrics.SyncPulls.Add(1)
		}
	}
	return pulled, mismatches, firstErr
}

// syncBuckets digests the keys owner's ring arcs cover, out of this
// node's persistent store, into the 256-bucket form the sync endpoints
// exchange. Only non-empty buckets appear.
func (s *Server) syncBuckets(ring *cluster.Ring, owner string) map[int]wire.SyncBucket {
	lines := make(map[int][]string)
	for _, hash := range s.store.Keys() {
		if !ring.IsOwner(owner, hash, s.cfg.Replication) {
			continue
		}
		b, ok := bucketOf(hash)
		if !ok {
			continue
		}
		sum, _ := s.prov.Latest(hash)
		lines[b] = append(lines[b], hash+" "+sum)
	}
	out := make(map[int]wire.SyncBucket, len(lines))
	for b, ls := range lines {
		sort.Strings(ls)
		h := sha256.New()
		for _, l := range ls {
			h.Write([]byte(l))
			h.Write([]byte{'\n'})
		}
		out[b] = wire.SyncBucket{
			Bucket: b,
			Count:  len(ls),
			Digest: hex.EncodeToString(h.Sum(nil)[:16]),
		}
	}
	return out
}

// bucketOf maps an artifact hash to its digest bucket (first hex byte).
func bucketOf(hash string) (int, bool) {
	if len(hash) < 2 {
		return 0, false
	}
	b, err := strconv.ParseUint(hash[:2], 16, 8)
	if err != nil {
		return 0, false
	}
	return int(b), true
}

// handleSyncDigest serves GET /v2/sync/digest?owner=ID: the per-bucket
// digests of the artifacts this node holds on the owner's arcs, plus
// this node's provenance chain anchors.
func (s *Server) handleSyncDigest(w http.ResponseWriter, r *http.Request) {
	ring := s.ring()
	if ring == nil || s.store == nil {
		writeError(w, http.StatusNotFound, wire.CodeNotFound, "sync: cluster mode or persistence disabled")
		return
	}
	owner := r.URL.Query().Get("owner")
	if owner == "" {
		owner = s.cfg.Self
	}
	buckets := s.syncBuckets(ring, owner)
	resp := &wire.SyncDigestResponse{
		Version:     wire.Version,
		Self:        s.cfg.Self,
		Owner:       owner,
		Replication: s.cfg.Replication,
	}
	for _, b := range buckets {
		resp.Buckets = append(resp.Buckets, b)
	}
	sort.Slice(resp.Buckets, func(i, j int) bool { return resp.Buckets[i].Bucket < resp.Buckets[j].Bucket })
	if s.prov != nil {
		resp.ProvenanceSeq, resp.ProvenanceHead = s.prov.Head()
		resp.ProvenanceRoot, resp.ProvenanceN = s.prov.LatestRoot()
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSyncKeys serves GET /v2/sync/keys?owner=ID&bucket=N: the keys
// behind one digest bucket, each with its provenance-pinned checksum.
func (s *Server) handleSyncKeys(w http.ResponseWriter, r *http.Request) {
	ring := s.ring()
	if ring == nil || s.store == nil {
		writeError(w, http.StatusNotFound, wire.CodeNotFound, "sync: cluster mode or persistence disabled")
		return
	}
	owner := r.URL.Query().Get("owner")
	if owner == "" {
		owner = s.cfg.Self
	}
	bucket, err := strconv.Atoi(r.URL.Query().Get("bucket"))
	if err != nil || bucket < 0 || bucket > 255 {
		writeError(w, http.StatusBadRequest, wire.CodeInvalidRequest, "sync: bucket must be 0..255")
		return
	}
	resp := &wire.SyncKeysResponse{
		Version: wire.Version,
		Self:    s.cfg.Self,
		Owner:   owner,
		Bucket:  bucket,
	}
	for _, hash := range s.store.Keys() {
		if b, ok := bucketOf(hash); !ok || b != bucket {
			continue
		}
		if !ring.IsOwner(owner, hash, s.cfg.Replication) {
			continue
		}
		sum, _ := s.prov.Latest(hash)
		resp.Keys = append(resp.Keys, wire.SyncKey{Hash: hash, Checksum: sum})
	}
	sort.Slice(resp.Keys, func(i, j int) bool { return resp.Keys[i].Hash < resp.Keys[j].Hash })
	writeJSON(w, http.StatusOK, resp)
}

// handleProvenance serves GET /v2/provenance/{hash}: the artifact's
// recorded creation history, the node's chain anchors, and whether the
// current store entry still matches its record. Asking actively
// quarantines a diverged entry (the check runs through storeGet).
func (s *Server) handleProvenance(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	if s.prov == nil {
		writeError(w, http.StatusNotFound, wire.CodeNotFound, "provenance: disabled on this node")
		return
	}
	checksum, ok := s.prov.Latest(hash)
	if !ok {
		writeError(w, http.StatusNotFound, wire.CodeNotFound, "provenance: no record for %s", hash)
		return
	}
	resp := &wire.ProvenanceResponse{
		Version:  wire.Version,
		Hash:     hash,
		Self:     s.cfg.Self,
		Checksum: checksum,
	}
	for _, rec := range s.prov.Records(hash) {
		resp.Records = append(resp.Records, wire.ProvenanceRecordJSON{
			Seq: rec.Seq, TimeUnix: rec.TimeUnix, Source: rec.Source,
			Checksum: rec.Checksum, Prev: rec.Prev, Sum: rec.Sum,
		})
	}
	if s.store != nil {
		switch _, err := s.storeGet(hash); {
		case err == nil:
			resp.Present, resp.Consistent = true, true
		case errors.Is(err, store.ErrCorrupt):
			// The entry existed but diverged from its record — this very
			// request quarantined it.
			resp.Present, resp.Consistent = true, false
		}
	}
	resp.HeadSeq, resp.HeadSum = s.prov.Head()
	resp.Root, resp.RootsLen = s.prov.LatestRoot()
	writeJSON(w, http.StatusOK, resp)
}

// handleArtifactPut receives a read-repair push: an artifact envelope
// for a hash this node should replicate. The envelope is re-verified
// end to end (the canonical request must hash to the key) and the write
// is create-only — an existing entry is never overwritten, so a push
// can add a missing replica but can never rewrite history.
func (s *Server) handleArtifactPut(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	if !wire.ValidHash(hash) {
		writeError(w, http.StatusBadRequest, wire.CodeInvalidRequest, "artifact: malformed hash")
		return
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, wire.CodeInvalidRequest, "artifact: %v", err)
		return
	}
	var ar wire.ArtifactResponse
	if strings.HasPrefix(r.Header.Get("Content-Type"), binary.ContentType) {
		bar, derr := binary.DecodeArtifact(data)
		if derr != nil {
			writeError(w, http.StatusBadRequest, wire.CodeInvalidRequest, "artifact: undecodable binary envelope: %v", derr)
			return
		}
		ar = *bar
	} else if derr := json.Unmarshal(data, &ar); derr != nil {
		writeError(w, http.StatusBadRequest, wire.CodeInvalidRequest, "artifact: undecodable envelope: %v", derr)
		return
	}
	if ar.Hash != hash {
		writeError(w, http.StatusBadRequest, wire.CodeInvalidRequest,
			"artifact: envelope is for %s, not %s", ar.Hash, hash)
		return
	}
	// Trust but verify, exactly like a pulled fill: the pushed canonical
	// request must really hash to the key, or the push is cache poisoning.
	if err := ar.Normalize(); err != nil {
		writeError(w, http.StatusBadRequest, wire.CodeInvalidRequest, "artifact: %v", err)
		return
	}
	if err := ar.CheckIntegrity(); err != nil {
		writeError(w, http.StatusBadRequest, wire.CodeInvalidRequest, "artifact: %v", err)
		return
	}
	if s.store != nil && s.store.Contains(hash) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "exists"})
		return
	}
	e := entryFromWire(&ar)
	if s.store != nil {
		if err := s.store.Put(e); err != nil {
			s.metrics.DiskWriteErrors.Add(1)
			writeError(w, http.StatusInternalServerError, wire.CodeInternal, "artifact: persist failed: %v", err)
			return
		}
		s.prov.Append(hash, store.SourceReadRepair, e.Checksum)
	}
	if a, aerr := thinArtifact(e); aerr == nil {
		s.cache.Add(hash, a)
	}
	writeJSON(w, http.StatusCreated, map[string]string{"status": "stored"})
}

// fetchSyncDigest asks one peer for its digest of the owner's keys.
func (s *Server) fetchSyncDigest(ctx context.Context, p cluster.Peer, owner string) (*wire.SyncDigestResponse, error) {
	url := strings.TrimRight(p.Addr, "/") + "/v2/sync/digest?owner=" + owner
	var resp wire.SyncDigestResponse
	if err := s.getJSON(ctx, p, url, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// fetchSyncKeys asks one peer for the keys behind one digest bucket.
func (s *Server) fetchSyncKeys(ctx context.Context, p cluster.Peer, owner string, bucket int) (*wire.SyncKeysResponse, error) {
	url := strings.TrimRight(p.Addr, "/") + "/v2/sync/keys?owner=" + owner + "&bucket=" + strconv.Itoa(bucket)
	var resp wire.SyncKeysResponse
	if err := s.getJSON(ctx, p, url, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// getJSON performs one peer GET and decodes the JSON document.
func (s *Server) getJSON(ctx context.Context, p cluster.Peer, url string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := s.peerHTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("peer %s: status %d", p.ID, resp.StatusCode)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}
