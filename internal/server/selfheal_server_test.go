package server_test

// Self-healing cluster tests: read-repair replication, the artifact PUT
// endpoint, anti-entropy reconvergence, dynamic membership swaps under
// in-flight hedged fills, and provenance-chain quarantine of tampered
// store entries.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"ltsp/internal/cluster"
	"ltsp/internal/faultinject"
	"ltsp/internal/server"
	"ltsp/internal/store"
	"ltsp/internal/wire"
)

// selfhealMetricsDoc picks the /metrics fields the self-healing tests
// assert on.
type selfhealMetricsDoc struct {
	CompileOutcomes struct {
		Pipelined      int64 `json:"pipelined"`
		ReducedLatency int64 `json:"fallback_reduced_latency"`
		RaisedII       int64 `json:"fallback_raised_ii"`
		Sequential     int64 `json:"sequential"`
	} `json:"compile_outcomes"`
	Cluster *struct {
		Self          string `json:"self"`
		Peers         int    `json:"peers"`
		PeersAlive    int    `json:"peers_alive"`
		PeersDead     int    `json:"peers_dead"`
		RingSwaps     int64  `json:"ring_swaps"`
		PeerHits      int64  `json:"peer_hits"`
		RepairRuns    int64  `json:"repair_runs"`
		RepairPushes  int64  `json:"repair_pushes"`
		RepairSkipped int64  `json:"repair_skipped"`
		RepairDropped int64  `json:"repair_dropped"`
		RepairErrors  int64  `json:"repair_errors"`
		SyncRuns      int64  `json:"sync_runs"`
		SyncPulls     int64  `json:"sync_pulls"`
		SyncErrors    int64  `json:"sync_errors"`
	} `json:"cluster,omitempty"`
	Provenance *struct {
		Records        int64 `json:"records"`
		Failures       int64 `json:"failures"`
		PeerMismatches int64 `json:"peer_mismatches"`
	} `json:"provenance,omitempty"`
}

func (m *selfhealMetricsDoc) compiles() int64 {
	o := m.CompileOutcomes
	return o.Pipelined + o.ReducedLatency + o.RaisedII + o.Sequential
}

// selfhealNodes builds n cluster nodes, each with its own persistent
// store and provenance log, replication n (every node owns every hash).
func selfhealNodes(t *testing.T, n int, mutate func(i int, cfg *server.Config)) ([]*server.Server, []*httptest.Server, []*store.Store) {
	t.Helper()
	handlers := make([]*swapHandler, n)
	tss := make([]*httptest.Server, n)
	peers := make([]cluster.Peer, n)
	for i := range handlers {
		handlers[i] = &swapHandler{}
		tss[i] = httptest.NewServer(handlers[i])
		t.Cleanup(tss[i].Close)
		peers[i] = cluster.Peer{ID: tss[i].URL, Addr: tss[i].URL}
	}
	srvs := make([]*server.Server, n)
	stores := make([]*store.Store, n)
	for i := range srvs {
		st, err := store.Open(t.TempDir(), store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(st.Close)
		stores[i] = st
		prov, err := store.OpenLog(t.TempDir(), store.LogOptions{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { prov.Close() })
		cfg := server.Config{
			Store:          st,
			Provenance:     prov,
			Peers:          peers,
			Self:           peers[i].ID,
			Replication:    n,
			PeerTimeout:    2 * time.Second,
			PeerHedgeDelay: 10 * time.Millisecond,
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		srvs[i] = server.New(cfg)
		t.Cleanup(srvs[i].Close)
		handlers[i].Set(srvs[i])
	}
	return srvs, tss, stores
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestReadRepairReplicatesToPeers: compiling on one node of a fully
// replicated pair pushes the artifact to the other node in the
// background — the replica converges without ever seeing the request,
// and both nodes' provenance chains pin the identical checksum.
func TestReadRepairReplicatesToPeers(t *testing.T) {
	checkGoroutineLeaks(t)
	_, tss, stores := selfhealNodes(t, 2, nil)
	req := compileRequest(t, copyAddLoop(4210))
	hash, err := req.Hash()
	if err != nil {
		t.Fatal(err)
	}

	resp, body := post(t, tss[0].URL+"/v2/compile", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: %s: %s", resp.Status, body)
	}
	waitFor(t, 5*time.Second, "read-repair to replicate the entry", func() bool {
		return stores[1].Contains(hash)
	})

	var m selfhealMetricsDoc
	get(t, tss[0].URL+"/metrics", &m)
	if m.Cluster == nil || m.Cluster.RepairRuns == 0 || m.Cluster.RepairPushes == 0 {
		t.Fatalf("pusher metrics: %+v", m.Cluster)
	}
	// The receiver recorded the replica in its own provenance chain, under
	// the same checksum the pusher pinned.
	var p0, p1 wire.ProvenanceResponse
	get(t, tss[0].URL+"/v2/provenance/"+hash, &p0)
	get(t, tss[1].URL+"/v2/provenance/"+hash, &p1)
	if p0.Checksum == "" || p0.Checksum != p1.Checksum {
		t.Fatalf("provenance checksums diverge: %q vs %q", p0.Checksum, p1.Checksum)
	}
	if !p1.Present || !p1.Consistent {
		t.Fatalf("replica provenance = present %v consistent %v", p1.Present, p1.Consistent)
	}
	if len(p1.Records) == 0 || p1.Records[len(p1.Records)-1].Source != store.SourceReadRepair {
		t.Fatalf("replica records = %+v, want a read_repair record", p1.Records)
	}

	// Compiling the same loop again on node 0 serves from memory and, at
	// most, schedules a repair that finds the replica present (skipped) —
	// it must not push again.
	if resp, body := post(t, tss[0].URL+"/v2/compile", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("re-compile: %s: %s", resp.Status, body)
	}
	get(t, tss[0].URL+"/metrics", &m)
	if m.Cluster.RepairPushes != 1 {
		t.Fatalf("repair_pushes = %d after a memory hit, want 1", m.Cluster.RepairPushes)
	}
}

// TestArtifactPutEndpoint: the read-repair receive endpoint verifies
// pushed envelopes end to end, records provenance, and never overwrites
// an existing entry.
func TestArtifactPutEndpoint(t *testing.T) {
	// A source node to mint a valid envelope from.
	_, src := newTestServer(t, server.Config{})
	req := compileRequest(t, copyAddLoop(4211))
	resp, body := post(t, src.URL+"/v2/compile", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: %s: %s", resp.Status, body)
	}
	var cr server.CompileResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	var ar wire.ArtifactResponse
	get(t, src.URL+"/v2/artifacts/"+cr.Hash, &ar)

	// The receiving node: store + provenance, no cluster needed.
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st.Close)
	prov, err := store.OpenLog(t.TempDir(), store.LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { prov.Close() })
	_, ts := newTestServer(t, server.Config{Store: st, Provenance: prov})

	put := func(hash string, env any) *http.Response {
		t.Helper()
		data, err := json.Marshal(env)
		if err != nil {
			t.Fatal(err)
		}
		preq, err := http.NewRequest(http.MethodPut, ts.URL+"/v2/artifacts/"+hash, bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		preq.Header.Set("Content-Type", "application/json")
		presp, err := http.DefaultClient.Do(preq)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { presp.Body.Close() })
		return presp
	}

	if presp := put(cr.Hash, &ar); presp.StatusCode != http.StatusCreated {
		t.Fatalf("valid push: %s, want 201", presp.Status)
	}
	if !st.Contains(cr.Hash) {
		t.Fatal("pushed entry not persisted")
	}
	var pr wire.ProvenanceResponse
	get(t, ts.URL+"/v2/provenance/"+cr.Hash, &pr)
	if len(pr.Records) != 1 || pr.Records[0].Source != store.SourceReadRepair {
		t.Fatalf("provenance after push = %+v", pr.Records)
	}

	// Re-push: create-only, reported as already existing.
	if presp := put(cr.Hash, &ar); presp.StatusCode != http.StatusOK {
		t.Fatalf("duplicate push: %s, want 200 (exists)", presp.Status)
	}
	get(t, ts.URL+"/v2/provenance/"+cr.Hash, &pr)
	if len(pr.Records) != 1 {
		t.Fatalf("duplicate push grew the chain: %d records", len(pr.Records))
	}

	// A poisoned envelope — a request section that does not hash to the
	// key — fails the integrity check and is rejected before touching the
	// store.
	forged := ar
	forged.Request = json.RawMessage(`{"forged":true}`)
	if presp := put(cr.Hash, &forged); presp.StatusCode != http.StatusBadRequest {
		t.Fatalf("forged push: %s, want 400", presp.Status)
	}
	// A push whose envelope names a different hash than the URL is
	// rejected too.
	if presp := put(otherHash(cr.Hash), &ar); presp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mismatched-hash push: %s, want 400", presp.Status)
	}
}

// otherHash flips the first character of a hex hash.
func otherHash(h string) string {
	c := byte('0')
	if h[0] == '0' {
		c = '1'
	}
	return string(c) + h[1:]
}

// TestAntiEntropyReconvergesEmptyNode: a node that joins (or restarts)
// empty pulls every owned artifact from its replica peers on the first
// anti-entropy round — driven here by the background loop's startup
// poke, no traffic required.
func TestAntiEntropyReconvergesEmptyNode(t *testing.T) {
	checkGoroutineLeaks(t)
	const loops = 3
	srvs, tss, stores := selfhealNodes(t, 2, func(i int, cfg *server.Config) {
		// Isolate anti-entropy: no read-repair, and only node 1 runs the
		// sync loop.
		cfg.RepairBudget = -1
		if i == 1 {
			cfg.AntiEntropyInterval = 30 * time.Millisecond
		}
	})
	hashes := make([]string, loops)
	for k := 0; k < loops; k++ {
		req := compileRequest(t, copyAddLoop(4300+int64(k)))
		h, err := req.Hash()
		if err != nil {
			t.Fatal(err)
		}
		hashes[k] = h
		if resp, body := post(t, tss[0].URL+"/v2/compile", req); resp.StatusCode != http.StatusOK {
			t.Fatalf("compile %d: %s: %s", k, resp.Status, body)
		}
	}
	waitFor(t, 5*time.Second, "anti-entropy to pull every artifact", func() bool {
		for _, h := range hashes {
			if !stores[1].Contains(h) {
				return false
			}
		}
		return true
	})
	var m selfhealMetricsDoc
	get(t, tss[1].URL+"/metrics", &m)
	if m.Cluster == nil || m.Cluster.SyncRuns == 0 || m.Cluster.SyncPulls < loops {
		t.Fatalf("sync metrics: %+v", m.Cluster)
	}
	// Pulled replicas are provenance-recorded as anti-entropy creations
	// and pin the same checksum as the origin.
	for _, h := range hashes {
		var p0, p1 wire.ProvenanceResponse
		get(t, tss[0].URL+"/v2/provenance/"+h, &p0)
		get(t, tss[1].URL+"/v2/provenance/"+h, &p1)
		if p0.Checksum != p1.Checksum {
			t.Fatalf("checksum diverged for %s: %q vs %q", h[:12], p0.Checksum, p1.Checksum)
		}
		if len(p1.Records) == 0 || p1.Records[len(p1.Records)-1].Source != store.SourceAntiEntropy {
			t.Fatalf("puller records for %s = %+v", h[:12], p1.Records)
		}
	}
	// The node that already had everything pulls nothing when it syncs.
	rep := srvs[0].SyncOnce(context.Background())
	if rep.Pulled != 0 || rep.Errors != 0 {
		t.Fatalf("converged node's sync = %+v, want no pulls, no errors", rep)
	}
}

// TestProvenanceQuarantineTamperedEntry is the headline tamper test: an
// attacker rewrites a stored artifact in place, consistently — response
// section swapped, entry checksum restamped — so the store's own
// integrity check passes. The provenance chain still pins the original
// checksum, so the entry is detected, quarantined, counted, and the
// request is served by an honest recompilation, never the tampered
// bytes.
func TestProvenanceQuarantineTamperedEntry(t *testing.T) {
	storeDir, provDir := t.TempDir(), t.TempDir()
	req := compileRequest(t, copyAddLoop(4400))

	// First life: compile, remember the truth, shut down cleanly.
	st1, err := store.Open(storeDir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prov1, err := store.OpenLog(provDir, store.LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	srv1 := server.New(server.Config{Store: st1, Provenance: prov1})
	ts1 := httptest.NewServer(srv1)
	resp, body := post(t, ts1.URL+"/v2/compile", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: %s: %s", resp.Status, body)
	}
	var original server.CompileResponse
	if err := json.Unmarshal(body, &original); err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	srv1.Close()
	if err := prov1.Close(); err != nil {
		t.Fatal(err)
	}
	st1.Close()

	// Tamper: rewrite the stored response and restamp the section
	// checksum so the entry is self-consistent. Only the provenance chain
	// still knows the original.
	path := filepath.Join(storeDir, original.Hash[:2], original.Hash+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var e store.Entry
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatal(err)
	}
	forged := original
	forged.Listing = "; poisoned kernel"
	forgedJSON, err := json.Marshal(&forged)
	if err != nil {
		t.Fatal(err)
	}
	e.Response = forgedJSON
	e.Checksum = store.EntryChecksum(&e)
	tampered, err := json.Marshal(&e)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, tampered, 0o644); err != nil {
		t.Fatal(err)
	}

	// Second life over the tampered store. The bare store check passes —
	// which is exactly the attack — so prove the chain catches it.
	st2, err := store.Open(storeDir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st2.Close)
	if _, err := st2.Get(original.Hash); err != nil {
		t.Fatalf("consistently restamped entry must pass the store's own check, got %v", err)
	}
	prov2, err := store.OpenLog(provDir, store.LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { prov2.Close() })
	srv2 := server.New(server.Config{Store: st2, Provenance: prov2})
	ts2 := httptest.NewServer(srv2)
	t.Cleanup(ts2.Close)

	// The provenance endpoint detects and quarantines the entry.
	var pr wire.ProvenanceResponse
	get(t, ts2.URL+"/v2/provenance/"+original.Hash, &pr)
	if !pr.Present || pr.Consistent {
		t.Fatalf("tampered entry reported present=%v consistent=%v, want present, inconsistent", pr.Present, pr.Consistent)
	}
	if st2.Contains(original.Hash) {
		t.Fatal("tampered entry still in the store after quarantine")
	}

	// Serving the request now recompiles honestly — the poisoned listing
	// is never served.
	resp, body = post(t, ts2.URL+"/v2/compile", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recompile: %s: %s", resp.Status, body)
	}
	var healed server.CompileResponse
	if err := json.Unmarshal(body, &healed); err != nil {
		t.Fatal(err)
	}
	if healed.Listing != original.Listing {
		t.Fatalf("healed listing diverges from the original:\n%s\nvs\n%s", healed.Listing, original.Listing)
	}
	if healed.Listing == forged.Listing {
		t.Fatal("the poisoned listing was served")
	}

	var m selfhealMetricsDoc
	get(t, ts2.URL+"/metrics", &m)
	if m.Provenance == nil || m.Provenance.Failures != 1 {
		t.Fatalf("provenance section = %+v, want failures 1", m.Provenance)
	}
	if m.compiles() != 1 {
		t.Fatalf("healing executed %d compilations, want 1", m.compiles())
	}
	// After the honest recompilation the chain and the store agree again.
	get(t, ts2.URL+"/v2/provenance/"+original.Hash, &pr)
	if !pr.Present || !pr.Consistent {
		t.Fatalf("healed entry reported present=%v consistent=%v", pr.Present, pr.Consistent)
	}
}

// TestChaosPartitionHealAntiEntropyReconverges cuts one node of a
// three-way replicated ring off mid-batch through the seeded fault
// fabric, keeps compiling on the survivors, heals the partition, and
// asserts anti-entropy brings the isolated node back to a full replica
// whose provenance checksums agree with the others — with zero
// goroutine leaks.
func TestChaosPartitionHealAntiEntropyReconverges(t *testing.T) {
	checkGoroutineLeaks(t)
	fabric := faultinject.NewNetwork(chaosSeed(t))
	_, tss, stores := selfhealNodes(t, 3, func(i int, cfg *server.Config) {
		// Convergence must be attributable to anti-entropy alone.
		cfg.RepairBudget = -1
		cfg.AntiEntropyInterval = 50 * time.Millisecond
		cfg.PeerTimeout = 500 * time.Millisecond
		fabric.Register(cfg.Self, cfg.Self)
		cfg.PeerHTTP = &http.Client{Transport: fabric.Transport(cfg.Self, nil)}
	})

	compileOn := func(node int, k int64) string {
		t.Helper()
		req := compileRequest(t, copyAddLoop(k))
		hash, err := req.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if resp, body := post(t, tss[node].URL+"/v2/compile", req); resp.StatusCode != http.StatusOK {
			t.Fatalf("compile %d on node %d: %s: %s", k, node, resp.Status, body)
		}
		return hash
	}
	allPresent := func(st *store.Store, hashes []string) bool {
		for _, h := range hashes {
			if !st.Contains(h) {
				return false
			}
		}
		return true
	}

	// First half of the batch lands while the ring is whole.
	var hashes []string
	hashes = append(hashes, compileOn(0, 4500), compileOn(1, 4501))

	// Partition node 2 from both survivors, mid-batch.
	fabric.Partition(tss[2].URL, tss[0].URL)
	fabric.Partition(tss[2].URL, tss[1].URL)
	hashes = append(hashes, compileOn(0, 4502), compileOn(1, 4503))

	// The survivors converge on the full batch; the isolated node cannot.
	waitFor(t, 10*time.Second, "survivors to converge", func() bool {
		return allPresent(stores[0], hashes) && allPresent(stores[1], hashes)
	})
	waitFor(t, 10*time.Second, "the isolated node to record sync errors", func() bool {
		var m selfhealMetricsDoc
		get(t, tss[2].URL+"/metrics", &m)
		return m.Cluster != nil && m.Cluster.SyncErrors > 0
	})
	if allPresent(stores[2], hashes[2:]) {
		t.Fatal("the partitioned node somehow received the mid-partition batch")
	}

	// Heal. Anti-entropy repopulates the isolated node.
	fabric.HealAll()
	waitFor(t, 10*time.Second, "anti-entropy to reconverge the healed node", func() bool {
		return allPresent(stores[2], hashes)
	})

	// Every node pins every artifact under the same provenance checksum.
	for _, h := range hashes {
		var want string
		for i := range tss {
			var pr wire.ProvenanceResponse
			get(t, tss[i].URL+"/v2/provenance/"+h, &pr)
			if pr.Checksum == "" || !pr.Present || !pr.Consistent {
				t.Fatalf("node %d, hash %s: checksum %q present %v consistent %v",
					i, h[:12], pr.Checksum, pr.Present, pr.Consistent)
			}
			if i == 0 {
				want = pr.Checksum
			} else if pr.Checksum != want {
				t.Fatalf("node %d disagrees on %s: %q vs %q", i, h[:12], pr.Checksum, want)
			}
		}
	}
}

// srcFunc adapts a function to cluster.Source.
type srcFunc func() ([]cluster.Peer, error)

func (f srcFunc) Resolve() ([]cluster.Peer, error) { return f() }

// loopsOwnedBy finds n distinct copyAdd variants whose artifact hashes
// the ring places on the given peer.
func loopsOwnedBy(t testing.TB, ring *cluster.Ring, owner cluster.Peer, n int) []*wire.CompileRequest {
	t.Helper()
	var reqs []*wire.CompileRequest
	for k := int64(0); k < 2048 && len(reqs) < n; k++ {
		req := compileRequest(t, copyAddLoop(9000+k))
		hash, err := req.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if p, ok := ring.Owner(hash); ok && p.ID == owner.ID {
			reqs = append(reqs, req)
		}
	}
	if len(reqs) < n {
		t.Fatalf("found only %d of %d loop variants hashed onto peer %s", len(reqs), n, owner.ID)
	}
	return reqs
}

// TestMembershipSwapMidHedgedFill: removing a peer from dynamic
// membership while a hedged fill against it is in flight neither drops
// the in-flight leg's result nor routes any later fill to the removed
// peer.
func TestMembershipSwapMidHedgedFill(t *testing.T) {
	checkGoroutineLeaks(t)

	// Peer B: a plain node that owns and has compiled the artifacts,
	// behind a middleware that delays artifact serves and counts them.
	srvB := server.New(server.Config{})
	t.Cleanup(srvB.Close)
	var artifactGets atomic.Int64
	tsB := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && len(r.URL.Path) > len("/v2/artifacts/") && r.URL.Path[:len("/v2/artifacts/")] == "/v2/artifacts/" {
			artifactGets.Add(1)
			time.Sleep(250 * time.Millisecond)
		}
		srvB.ServeHTTP(w, r)
	}))
	t.Cleanup(tsB.Close)

	handlerA := &swapHandler{}
	tsA := httptest.NewServer(handlerA)
	t.Cleanup(tsA.Close)

	peerA := cluster.Peer{ID: tsA.URL, Addr: tsA.URL}
	peerB := cluster.Peer{ID: tsB.URL, Addr: tsB.URL}
	var members atomic.Value
	members.Store([]cluster.Peer{peerA, peerB})
	srvA := server.New(server.Config{
		Resolver:        srcFunc(func() ([]cluster.Peer, error) { return members.Load().([]cluster.Peer), nil }),
		ResolveInterval: 15 * time.Millisecond,
		Self:            peerA.ID,
		Replication:     1,
		PeerTimeout:     2 * time.Second,
		PeerHedgeDelay:  10 * time.Millisecond,
	})
	t.Cleanup(srvA.Close)
	handlerA.Set(srvA)

	// Two distinct loops owned by B under the two-peer ring, compiled
	// there.
	ring := cluster.New(cluster.Static([]cluster.Peer{peerA, peerB}), 0)
	reqs := loopsOwnedBy(t, ring, peerB, 2)
	for i, req := range reqs {
		if resp, body := post(t, tsB.URL+"/v2/compile", req); resp.StatusCode != http.StatusOK {
			t.Fatalf("compile %d on B: %s: %s", i, resp.Status, body)
		}
	}

	// Fire the fill on A; while B's delayed artifact serve is in flight,
	// remove B from membership and wait for the ring swap.
	type out struct {
		status int
		cached bool
		err    error
	}
	done := make(chan out, 1)
	go func() {
		payload, err := json.Marshal(reqs[0])
		if err != nil {
			done <- out{err: err}
			return
		}
		resp, err := http.Post(tsA.URL+"/v2/compile", "application/json", bytes.NewReader(payload))
		if err != nil {
			done <- out{err: err}
			return
		}
		defer resp.Body.Close()
		var cr server.CompileResponse
		err = json.NewDecoder(resp.Body).Decode(&cr)
		done <- out{status: resp.StatusCode, cached: cr.Cached, err: err}
	}()
	waitFor(t, 2*time.Second, "the hedged leg to reach B", func() bool {
		return artifactGets.Load() >= 1
	})
	members.Store([]cluster.Peer{peerA})
	waitFor(t, 2*time.Second, "the ring swap", func() bool {
		var m selfhealMetricsDoc
		get(t, tsA.URL+"/metrics", &m)
		return m.Cluster != nil && m.Cluster.Peers == 1 && m.Cluster.RingSwaps >= 1
	})
	got := <-done
	if got.err != nil {
		t.Fatalf("in-flight fill: %v", got.err)
	}
	if got.status != http.StatusOK || !got.cached {
		t.Fatalf("in-flight fill after swap: status %d cached %v, want 200 cached (the leg's result must not be dropped)", got.status, got.cached)
	}

	// New fills never route to the removed peer: the second loop that the
	// old ring placed on B now belongs to A alone and compiles locally.
	gets := artifactGets.Load()
	if resp, body := post(t, tsA.URL+"/v2/compile", reqs[1]); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-swap compile: %s: %s", resp.Status, body)
	}
	if artifactGets.Load() != gets {
		t.Fatal("a fill after the swap still routed to the removed peer")
	}
	var m selfhealMetricsDoc
	get(t, tsA.URL+"/metrics", &m)
	if m.Cluster.PeerHits != 1 {
		t.Fatalf("peer_hits = %d, want exactly the in-flight leg's hit", m.Cluster.PeerHits)
	}
}
