package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"ltsp/internal/obs"
	"ltsp/internal/server"
)

// traceDoc is the subset of the trace endpoint body the tests assert on.
type traceDoc struct {
	Hash    string           `json:"hash"`
	Outcome string           `json:"outcome"`
	Events  []map[string]any `json:"events"`
}

// TestTraceEndpoint compiles a loop and retrieves its decision trace.
func TestTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	resp, body := post(t, ts.URL+"/v1/compile", compileRequest(t, copyAddLoop(31)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: %s: %s", resp.Status, body)
	}
	var cr server.CompileResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Outcome != obs.OutcomePipelined {
		t.Fatalf("compile response outcome = %q, want %q", cr.Outcome, obs.OutcomePipelined)
	}

	var m1 metricsDoc
	get(t, ts.URL+"/metrics", &m1)

	var tr traceDoc
	get(t, ts.URL+"/v1/artifacts/"+cr.Hash+"/trace", &tr)
	if tr.Hash != cr.Hash || tr.Outcome != obs.OutcomePipelined {
		t.Fatalf("trace header = %s/%s, want %s/%s", tr.Hash, tr.Outcome, cr.Hash, obs.OutcomePipelined)
	}
	if len(tr.Events) == 0 {
		t.Fatal("trace has no events")
	}
	kinds := map[string]int{}
	for _, e := range tr.Events {
		k, _ := e["kind"].(string)
		if k == "" {
			t.Fatalf("event without kind: %v", e)
		}
		kinds[k]++
	}
	for _, want := range []string{"load-class", "ii-bounds", "modsched", "regalloc", "load-sched", "outcome"} {
		if kinds[want] == 0 {
			t.Errorf("trace missing %q events; have %v", want, kinds)
		}
	}

	// Introspection must not perturb the cache-hit accounting.
	var m2 metricsDoc
	get(t, ts.URL+"/metrics", &m2)
	if m2.CacheHits != m1.CacheHits {
		t.Fatalf("trace read moved cache_hits %d -> %d", m1.CacheHits, m2.CacheHits)
	}

	// Unknown hashes are a clean 404.
	r, err := http.Get(ts.URL + "/v1/artifacts/deadbeef/trace")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown artifact trace: got %s, want 404", r.Status)
	}
}

// outcomeMetricsDoc is the /metrics compile_outcomes block.
type outcomeMetricsDoc struct {
	CompileOutcomes struct {
		Pipelined      int64 `json:"pipelined"`
		ReducedLatency int64 `json:"fallback_reduced_latency"`
		RaisedII       int64 `json:"fallback_raised_ii"`
		Sequential     int64 `json:"sequential"`
	} `json:"compile_outcomes"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	BuildInfo     struct {
		Version string `json:"version"`
		Go      string `json:"go"`
	} `json:"build_info"`
}

// TestOutcomeCountersCountCompilesNotRequests: duplicate requests served
// from the cache (or deduplicated in flight) must not recount outcomes.
func TestOutcomeCountersCountCompilesNotRequests(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	for i := 0; i < 3; i++ {
		resp, body := post(t, ts.URL+"/v1/compile", compileRequest(t, copyAddLoop(41)))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("compile %d: %s: %s", i, resp.Status, body)
		}
	}
	var m outcomeMetricsDoc
	get(t, ts.URL+"/metrics", &m)
	if m.CompileOutcomes.Pipelined != 1 {
		t.Fatalf("pipelined = %d after 3 identical requests, want 1", m.CompileOutcomes.Pipelined)
	}

	resp, body := post(t, ts.URL+"/v1/compile", compileRequest(t, copyAddLoop(42)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: %s: %s", resp.Status, body)
	}
	get(t, ts.URL+"/metrics", &m)
	if m.CompileOutcomes.Pipelined != 2 {
		t.Fatalf("pipelined = %d after a second distinct loop, want 2", m.CompileOutcomes.Pipelined)
	}
}

// TestMetricsBuildInfoAndHealthzVersion checks the uptime/build_info
// metrics block and the version echoed by /healthz.
func TestMetricsBuildInfoAndHealthzVersion(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	var m outcomeMetricsDoc
	get(t, ts.URL+"/metrics", &m)
	if m.BuildInfo.Version == "" {
		t.Fatal("metrics build_info.version is empty")
	}
	if !strings.HasPrefix(m.BuildInfo.Go, "go") {
		t.Fatalf("metrics build_info.go = %q", m.BuildInfo.Go)
	}
	if m.UptimeSeconds < 0 {
		t.Fatalf("uptime_seconds = %f", m.UptimeSeconds)
	}

	var h map[string]string
	get(t, ts.URL+"/healthz", &h)
	if h["version"] != m.BuildInfo.Version {
		t.Fatalf("healthz version %q != metrics version %q", h["version"], m.BuildInfo.Version)
	}
}

// syncBuffer serializes writes so the test can read log output racelessly.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRequestLoggingAndIDs checks the structured request log and the
// X-Request-ID response header.
func TestRequestLoggingAndIDs(t *testing.T) {
	var buf syncBuffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	_, ts := newTestServer(t, server.Config{Logger: logger})

	ids := map[string]bool{}
	for i := 0; i < 2; i++ {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		id := resp.Header.Get("X-Request-ID")
		if id == "" {
			t.Fatal("response missing X-Request-ID")
		}
		ids[id] = true
	}
	if len(ids) != 2 {
		t.Fatalf("request IDs not unique: %v", ids)
	}

	// The handler logs after writing the response; give it a beat.
	deadline := time.Now().Add(2 * time.Second)
	var lines []string
	for {
		lines = nil
		for _, ln := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
			if ln != "" {
				lines = append(lines, ln)
			}
		}
		if len(lines) >= 2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(lines) < 2 {
		t.Fatalf("expected 2 log lines, got %d: %q", len(lines), buf.String())
	}
	var entry struct {
		Msg    string `json:"msg"`
		ID     string `json:"id"`
		Method string `json:"method"`
		Path   string `json:"path"`
		Status int    `json:"status"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &entry); err != nil {
		t.Fatalf("log line is not JSON: %v: %s", err, lines[0])
	}
	if entry.Msg != "request" || entry.Method != "GET" || entry.Path != "/healthz" || entry.Status != 200 {
		t.Fatalf("unexpected log entry: %+v", entry)
	}
	if !ids[entry.ID] {
		t.Fatalf("logged id %q not among response headers %v", entry.ID, ids)
	}
}

// TestTimedOutCompileIsCanceled: a compile whose deadline expires returns
// 504 with the deadline_exceeded envelope code, and the abandoned
// compilation is canceled instead of finishing in the background — the
// cache stays empty and the trace endpoint keeps 404ing. (Before the
// resilience redesign the server let timed-out compiles run to completion
// and cache their artifact; cooperative cancellation deliberately changes
// that so abandoned work stops burning worker slots.)
func TestTimedOutCompileIsCanceled(t *testing.T) {
	srv, ts := newTestServer(t, server.Config{CompileTimeout: time.Nanosecond})
	req := compileRequest(t, copyAddLoop(77))
	hash, err := req.Hash()
	if err != nil {
		t.Fatal(err)
	}

	resp, body := post(t, ts.URL+"/v1/compile", req)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("compile under 1ns deadline: got %s (%s), want 504", resp.Status, body)
	}
	var env struct {
		Error struct {
			Code      string `json:"code"`
			Retryable bool   `json:"retryable"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("504 body is not the error envelope: %v: %s", err, body)
	}
	if env.Error.Code != "deadline_exceeded" || !env.Error.Retryable {
		t.Fatalf("504 envelope = %+v, want retryable deadline_exceeded", env.Error)
	}

	// The canceled compile must NOT land in the cache afterwards.
	deadline := time.Now().Add(100 * time.Millisecond)
	for time.Now().Before(deadline) {
		if n := srv.Cache().Len(); n != 0 {
			t.Fatalf("canceled compile populated the cache (%d entries)", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if resp, _ := http.Get(ts.URL + fmt.Sprintf("/v1/artifacts/%s/trace", hash)); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("trace for canceled compile: got %s, want 404", resp.Status)
	}
}
