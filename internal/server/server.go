// Package server implements ltspd, the HTTP compile-and-simulate service
// around the latency-tolerant software pipeliner.
//
// Endpoints:
//
//	POST /v1/compile  — wire.CompileRequest body; compiles the loop (or
//	                    serves it from the artifact cache) and returns the
//	                    II/stage structure, per-load reports, register
//	                    footprint, kernel listing and the artifact hash.
//	POST /v1/compile-batch — wire.CompileBatchRequest body; shards a list
//	                    of compile items over the bounded worker pool with
//	                    per-item singleflight cache hits, returning results
//	                    (or per-item errors) in request order.
//	POST /v1/simulate — wire.SimulateRequest body; simulates a compiled
//	                    artifact (by hash, or compiling inline through the
//	                    same cache) for a trip count and returns cycles
//	                    with full Fig.-10 stall accounting.
//	GET  /v1/artifacts/{hash}/trace — the pipeliner's decision trace for a
//	                    cached artifact: load classifications, II search,
//	                    fallback rungs, register allocation, outcome.
//	GET  /healthz     — liveness plus the build version.
//	GET  /metrics     — expvar-style JSON counters, latency histograms,
//	                    pipeliner outcome counters, uptime and build info.
//
// Every POST/trace endpoint is mounted under both /v1 and /v2. The two
// prefixes share handlers and semantics; /v2 names the redesigned
// resilient surface every error response of which is the JSON envelope
// {"error":{"code","message","retryable"}} (v1 paths keep their status
// codes but return the same body — see package wire). Resilience
// behaviors, on both prefixes:
//
//   - Deadline propagation: the effective deadline is the server's
//     per-endpoint timeout tightened by the client's X-Request-Deadline-Ms
//     header; it flows through the worker pool into the pipeliner's II
//     search, which cancels cooperatively — a timed-out or abandoned
//     request stops burning CPU instead of finishing in the background.
//   - Admission control: a load shedder predicts the queueing delay from
//     queue depth x observed median service time and rejects requests
//     whose remaining deadline cannot be met with 503 + Retry-After,
//     before they consume a worker slot.
//   - Graceful drain: after Shutdown begins, new work is rejected with
//     503 (code "draining") + Retry-After while in-flight work finishes.
//
// Identical compile requests are deduplicated in flight and their
// artifacts cached under the canonical content hash (see package wire);
// an in-flight compilation is canceled only when every request waiting
// on it has given up, which is what makes client-side hedging safe.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"runtime/debug"

	"ltsp"
	"ltsp/internal/buildinfo"
	"ltsp/internal/cluster"
	"ltsp/internal/ir"
	"ltsp/internal/obs"
	"ltsp/internal/repro"
	"ltsp/internal/sim"
	"ltsp/internal/store"
	"ltsp/internal/telemetry"
	"ltsp/internal/wire"
	"ltsp/internal/wire/binary"
)

// Config parameterizes a Server.
type Config struct {
	// PoolSize bounds concurrently executing compile/simulate work
	// (default 4).
	PoolSize int
	// CacheCapacity bounds the artifact cache (default 256 artifacts).
	CacheCapacity int
	// CompileTimeout / SimulateTimeout are per-request deadlines
	// (defaults 10s / 30s).
	CompileTimeout  time.Duration
	SimulateTimeout time.Duration
	// QueueTimeout bounds how long a request waits for a worker slot
	// before being rejected (default: the request's deadline).
	QueueTimeout time.Duration
	// MaxBodyBytes bounds request bodies (default 8 MiB).
	MaxBodyBytes int64
	// MaxBatchItems bounds the number of loops in one compile-batch
	// request (default 64).
	MaxBatchItems int
	// MaxTrip bounds simulated trip counts (default 10M iterations).
	MaxTrip int64
	// ShedDisabled turns off deadline-aware admission control (the load
	// shedder). Shedding is on by default; the uncontended admit check
	// costs a few nanoseconds (gated by cmd/benchguard).
	ShedDisabled bool
	// DrainRetryAfter is the Retry-After hint on 503 responses while the
	// server is draining (default 1s).
	DrainRetryAfter time.Duration
	// VerifySample is the fraction of executed compilations put through
	// independent verification (structural schedule checks plus the
	// semantic differential oracle; see package verify). 0 means
	// DefaultVerifySample; negative disables sampling; >= 1 verifies every
	// compilation. Sampling is deterministic (every ~1/rate-th compile),
	// not random, so tests and replay runs are reproducible.
	VerifySample float64
	// ReproDir, when non-empty, is where compiler panics and verification
	// failures are written as minimized replayable bundles (package
	// repro). Empty disables bundle capture.
	ReproDir string
	// Store, when non-nil, is the persistent content-addressed artifact
	// store layered under the in-memory cache: every executed compilation
	// is written through, and cache misses are served from disk without
	// recompiling, so the daemon warm-starts across restarts. The caller
	// (cmd/ltspd, tests) owns opening and closing it.
	Store *store.Store
	// Peers is the cluster membership, including this node; empty
	// disables cluster mode (unless Resolver is set). Self is this
	// node's peer ID (must match an entry in Peers to claim ownership
	// of its ring arcs).
	Peers []cluster.Peer
	Self  string
	// Resolver, when non-nil, supplies dynamic membership (file-watch,
	// DNS-SRV, or any cluster.Source); the server polls it every
	// ResolveInterval (default 3s) and swaps the hash ring atomically on
	// change. Peers may then be empty — Self still names this node, and
	// it is always part of the membership. Without a Resolver the static
	// Peers list is the membership, unpolled.
	Resolver        cluster.Source
	ResolveInterval time.Duration
	// PeerFailThreshold is the consecutive-failure count that ejects a
	// peer from hedged fill/repair/sync target sets (default 3); ejected
	// peers are retried on a jittered exponential backoff and re-admitted
	// through probation. PeerProbeInterval, when > 0, additionally runs
	// an active /healthz prober over dead peers so re-admission does not
	// spend a client request (cmd/ltspd defaults it on; embedders and
	// tests stay goroutine-free by default).
	PeerFailThreshold int
	PeerProbeInterval time.Duration
	// RepairBudget is the read-repair token budget in repairs/second:
	// after this node creates an artifact (compile, peer fill, disk
	// serve of an owned hash), it asynchronously replicates the entry to
	// replica-set members that lack it, spending one token per repair.
	// 0 means DefaultRepairBudget; negative disables read-repair.
	RepairBudget float64
	// AntiEntropyInterval, when > 0, runs the background anti-entropy
	// loop: every interval (and immediately after startup and after
	// every membership change) this node exchanges range digests of its
	// owned keys with replica peers and pulls whatever it is missing.
	// <= 0 disables the loop; SyncOnce remains available to embedders.
	AntiEntropyInterval time.Duration
	// Provenance, when non-nil, is the tamper-evident artifact creation
	// log: every compile, peer fill, read-repair receipt and anti-entropy
	// pull is appended, and every disk read is cross-checked against the
	// chain — an entry that no longer matches its provenance record is
	// quarantined, never served. The caller owns opening and closing it,
	// like Store.
	Provenance *store.Log
	// Replication is the replica-set size used for ownership decisions
	// and peer cache-fill fan-out (default 2, clamped to the peer count
	// by the ring).
	Replication int
	// VNodes is the virtual-node count per peer on the hash ring
	// (default cluster.DefaultVNodes). All nodes and fleet-aware clients
	// must agree on it.
	VNodes int
	// PeerTimeout bounds a whole peer cache-fill attempt (all hedged
	// legs; default 2s). PeerHedgeDelay is the stagger before asking the
	// next replica while the previous one is still pending (default 50ms).
	PeerTimeout    time.Duration
	PeerHedgeDelay time.Duration
	// PeerHTTP is the client used for peer fetches (default: a dedicated
	// http.Client; per-request deadlines come from PeerTimeout).
	PeerHTTP *http.Client
	// Logger receives structured request logs. Nil discards them (tests,
	// embedders that log elsewhere).
	Logger *slog.Logger
	// TraceSample is the fraction of requests span-traced when the caller
	// did not send an X-Trace-ID header (a request carrying a valid one is
	// always traced). 0 means DefaultTraceSample; negative disables
	// sampling; >= 1 traces every request. Sampling is deterministic
	// stride sampling, like VerifySample, so tests are reproducible.
	TraceSample float64
	// TraceRing bounds how many recent request traces are retained for
	// GET /debug/requests and GET /v2/requests/{trace-id}; slow and error
	// outliers are additionally pinned in a ring a quarter that size
	// (default telemetry.DefaultRegistryCapacity).
	TraceRing int
	// TraceSlow is the duration at which a traced request counts as a
	// slow outlier and is retained past the recent ring (default
	// telemetry.DefaultSlowThreshold).
	TraceSlow time.Duration
}

func (c Config) withDefaults() Config {
	if c.PoolSize <= 0 {
		c.PoolSize = 4
	}
	if c.CacheCapacity == 0 {
		c.CacheCapacity = 256
	}
	if c.CompileTimeout <= 0 {
		c.CompileTimeout = 10 * time.Second
	}
	if c.SimulateTimeout <= 0 {
		c.SimulateTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxBatchItems <= 0 {
		c.MaxBatchItems = 64
	}
	if c.MaxTrip <= 0 {
		c.MaxTrip = 10_000_000
	}
	if c.DrainRetryAfter <= 0 {
		c.DrainRetryAfter = time.Second
	}
	if c.Replication <= 0 {
		c.Replication = 2
	}
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = 2 * time.Second
	}
	if c.PeerHedgeDelay <= 0 {
		c.PeerHedgeDelay = 50 * time.Millisecond
	}
	if c.ResolveInterval <= 0 {
		c.ResolveInterval = 3 * time.Second
	}
	if c.PeerFailThreshold <= 0 {
		c.PeerFailThreshold = 3
	}
	if c.RepairBudget == 0 {
		c.RepairBudget = DefaultRepairBudget
	}
	if c.VerifySample == 0 {
		c.VerifySample = DefaultVerifySample
	}
	if c.TraceSample == 0 {
		c.TraceSample = DefaultTraceSample
	}
	return c
}

// DefaultVerifySample is the default verification sampling rate: one in
// every 500 executed compilations. A full pass (structural re-derivation
// plus the differential oracle's interpreter runs) costs several compile
// times, so the rate is set to keep the amortized overhead well under 5%
// of aggregate compile cost (gated by cmd/benchguard).
const DefaultVerifySample = 0.002

// DefaultTraceSample is the default span-tracing sampling rate for
// requests that do not ask to be traced: one in every 100. A sampled
// trace costs a handful of small allocations (the spans) on an
// otherwise allocation-light path, so the amortized overhead stays far
// below 1% of a compile (gated by cmd/benchguard); callers who want a
// specific request traced send wire.TraceHeader and are always sampled.
const DefaultTraceSample = 0.01

// Server is the ltspd HTTP service. It is an http.Handler; wrap it in an
// http.Server to serve traffic.
type Server struct {
	cfg      Config
	cache    *ArtifactCache
	store    *store.Store        // nil when persistence is disabled
	member   *cluster.Membership // nil when cluster mode is disabled
	health   *cluster.Health     // nil when cluster mode is disabled
	prov     *store.Log          // nil when provenance is disabled
	repair   *repairer           // nil when read-repair (or cluster mode) is disabled
	peerHTTP *http.Client
	metrics  *Metrics
	shed     *Shedder
	logger   *slog.Logger
	logOn    bool // request logging enabled (Config.Logger was non-nil)
	traces   *telemetry.Registry
	sampler  *telemetry.Sampler
	start    time.Time
	sem      chan struct{}
	mux      *http.ServeMux
	hot      hotCache
	draining atomic.Bool
	work     sync.WaitGroup
	// Background machinery (anti-entropy loop; the membership poller and
	// prober live inside member): syncPoke wakes the anti-entropy loop
	// out of turn (startup, membership change), bgStop stops it.
	syncPoke chan struct{}
	bgStop   chan struct{}
	bgOnce   sync.Once
	bgWait   sync.WaitGroup
	// verifyTick drives deterministic verification sampling: the first
	// compilation and every ~1/VerifySample-th after it are verified.
	verifyTick atomic.Uint64
}

// ring returns the current hash-ring snapshot (nil when cluster mode is
// disabled). Callers load it once per operation; membership changes swap
// the pointer atomically underneath.
func (s *Server) ring() *cluster.Ring {
	if s.member == nil {
		return nil
	}
	return s.member.Ring()
}

// testCompileHook, when non-nil, runs on the decoded loop inside the
// compile flight before the compiler proper. Tests use it to seed panics
// and exercise the containment boundary; it is never set in production.
var testCompileHook func(*ir.Loop)

// testVerifyHook, when non-nil, supplies the sampled-verification verdict
// instead of Compiled.Verify. Tests use it to exercise the
// verification-failure path without needing a real miscompile; it is
// never set in production.
var testVerifyHook func(*ltsp.Compiled) error

// shouldVerify applies the deterministic sampling policy.
func (s *Server) shouldVerify() bool {
	rate := s.cfg.VerifySample
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	stride := uint64(1 / rate)
	return s.verifyTick.Add(1)%stride == 1
}

// writeRepro minimizes and persists a failure bundle, best-effort: a
// capture that cannot be written is logged and dropped, never surfaced to
// the client. It returns the bundle path ("" when capture is disabled or
// failed).
func (s *Server) writeRepro(b *repro.Bundle) string {
	if s.cfg.ReproDir == "" {
		return ""
	}
	b.Minimize(48)
	path, err := b.Write(s.cfg.ReproDir)
	if err != nil {
		s.logger.Warn("repro bundle write failed", "kind", b.Kind, "err", err)
		return ""
	}
	s.logger.Warn("wrote repro bundle", "kind", b.Kind, "path", path, "minimized", b.Minimized)
	return path
}

// New creates a Server with the given configuration.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &Server{
		cfg:     cfg,
		metrics: &Metrics{},
		shed:    NewShedder(cfg.PoolSize),
		logger:  logger,
		logOn:   cfg.Logger != nil,
		traces:  telemetry.NewRegistry(cfg.TraceRing, cfg.TraceSlow),
		sampler: telemetry.NewSampler(cfg.TraceSample),
		start:   time.Now(),
		sem:     make(chan struct{}, cfg.PoolSize),
		mux:     http.NewServeMux(),
	}
	s.cache = NewArtifactCache(cfg.CacheCapacity, s.metrics)
	s.store = cfg.Store
	s.prov = cfg.Provenance
	s.peerHTTP = cfg.PeerHTTP
	if s.peerHTTP == nil {
		s.peerHTTP = &http.Client{}
	}
	s.syncPoke = make(chan struct{}, 1)
	s.bgStop = make(chan struct{})
	if len(cfg.Peers) > 0 || cfg.Resolver != nil {
		s.health = cluster.NewHealth(cluster.HealthConfig{
			FailThreshold: cfg.PeerFailThreshold,
		})
		src := cfg.Resolver
		if src == nil {
			src = cluster.StaticSource(cfg.Peers)
		}
		self := cluster.Peer{ID: cfg.Self}
		for _, p := range cfg.Peers {
			if p.ID == cfg.Self {
				self = p
			}
		}
		s.member = cluster.NewMembership(cluster.MembershipConfig{
			Source:   src,
			Self:     self,
			VNodes:   cfg.VNodes,
			Interval: cfg.ResolveInterval,
			Health:   s.health,
			Logger:   logger,
			// A membership change wakes the anti-entropy loop out of turn:
			// arcs this node just gained may have artifacts to pull.
			OnChange: func(*cluster.Ring) { s.pokeSync() },
		})
		if cfg.Resolver != nil {
			s.member.Start()
		}
		if cfg.PeerProbeInterval > 0 {
			s.member.StartProber(cfg.PeerProbeInterval, cfg.PeerTimeout, cluster.HTTPProbe(s.peerHTTP))
		}
		if cfg.RepairBudget > 0 {
			s.repair = newRepairer(cfg.RepairBudget)
		}
		if cfg.AntiEntropyInterval > 0 {
			s.startAntiEntropy(cfg.AntiEntropyInterval)
		}
	}
	// /v1 and /v2 share handlers: v2 is the documented resilient surface,
	// v1 stays wire-compatible for existing clients.
	for _, v := range []string{"/v1", "/v2"} {
		s.mux.HandleFunc("POST "+v+"/compile", s.handleCompile)
		s.mux.HandleFunc("POST "+v+"/compile-batch", s.handleCompileBatch)
		s.mux.HandleFunc("POST "+v+"/simulate", s.handleSimulate)
		s.mux.HandleFunc("GET "+v+"/artifacts/{hash}", s.handleArtifact)
		s.mux.HandleFunc("GET "+v+"/artifacts/{hash}/trace", s.handleTrace)
	}
	s.mux.HandleFunc("PUT /v2/artifacts/{hash}", s.handleArtifactPut)
	s.mux.HandleFunc("GET /v2/sync/digest", s.handleSyncDigest)
	s.mux.HandleFunc("GET /v2/sync/keys", s.handleSyncKeys)
	s.mux.HandleFunc("GET /v2/provenance/{hash}", s.handleProvenance)
	s.mux.HandleFunc("GET /v2/requests/{trace}", s.handleRequestTrace)
	s.mux.HandleFunc("GET /debug/requests", s.handleDebugRequests)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Metrics exposes the server's counters (tests and embedders).
func (s *Server) Metrics() *Metrics { return s.metrics }

// MetricsSnapshot returns the JSON document GET /metrics serves — the
// daemon logs it on drain so a terminated replica leaves its final
// counters in the log stream.
func (s *Server) MetricsSnapshot() any {
	return s.snapshotJSON()
}

// snapshotJSON assembles the /metrics document: request counters plus
// the per-layer cache sections (memory, disk, cluster) with consistent
// byte accounting.
func (s *Server) snapshotJSON() metricsJSON {
	var disk *diskJSON
	if s.store != nil {
		st := s.store.Stats()
		disk = &diskJSON{
			Entries: st.Entries, Bytes: st.Bytes,
			Hits: st.Hits, Misses: st.Misses,
			Writes: st.Writes, Evictions: st.Evictions,
			Corrupt: st.Corrupt, Scans: st.Scans,
		}
	}
	var clus *clusterJSON
	if ring := s.ring(); ring != nil {
		alive, dead := s.health.Counts()
		clus = &clusterJSON{
			Self:          s.cfg.Self,
			Peers:         ring.Len(),
			Replication:   s.cfg.Replication,
			PeersAlive:    alive,
			PeersDead:     dead,
			RingSwaps:     int64(s.member.Swaps()),
			ResolveErrors: int64(s.member.ResolveErrors()),
			PeerHits:      s.metrics.PeerHits.Load(),
			PeerMisses:    s.metrics.PeerMisses.Load(),
			PeerErrors:    s.metrics.PeerErrors.Load(),
			RepairRuns:    s.metrics.RepairRuns.Load(),
			RepairPushes:  s.metrics.RepairPushes.Load(),
			RepairSkipped: s.metrics.RepairSkipped.Load(),
			RepairDropped: s.metrics.RepairDropped.Load(),
			RepairErrors:  s.metrics.RepairErrors.Load(),
			SyncRuns:      s.metrics.SyncRuns.Load(),
			SyncPulls:     s.metrics.SyncPulls.Load(),
			SyncErrors:    s.metrics.SyncErrors.Load(),
			FillLatency:   s.metrics.PeerFillLatency.snapshot(),
		}
	}
	var prov *provenanceJSON
	if s.prov != nil {
		st := s.prov.Stats()
		prov = &provenanceJSON{
			Records:        int64(st.Records),
			Batches:        st.Batches,
			Dropped:        int64(st.Dropped),
			Failures:       s.metrics.ProvenanceFailures.Load(),
			PeerMismatches: s.metrics.ProvenanceMismatches.Load(),
		}
	}
	return s.metrics.snapshot(s.cache.Stats(), disk, clus, prov, time.Since(s.start))
}

// storeGet reads an entry from the persistent store and cross-checks it
// against the provenance chain. An entry whose section checksum no
// longer matches its latest provenance record has been rewritten in
// place behind the store's back (the store's own integrity check passes
// on a consistently restamped entry — the chain is what pins the
// original): it is quarantined — deleted, counted in
// provenance_failures — and reported corrupt so the caller refills or
// recompiles instead of serving it.
func (s *Server) storeGet(hash string) (*store.Entry, error) {
	e, err := s.store.Get(hash)
	if err != nil {
		return nil, err
	}
	if want, ok := s.prov.Latest(hash); ok && want != e.Checksum {
		s.store.Delete(hash)
		s.metrics.ProvenanceFailures.Add(1)
		s.logger.Warn("provenance mismatch: store entry quarantined",
			"hash", hash[:min(12, len(hash))], "recorded", want[:min(12, len(want))],
			"found", e.Checksum[:min(12, len(e.Checksum))])
		return nil, fmt.Errorf("%w: entry diverges from its provenance record", store.ErrCorrupt)
	}
	return e, nil
}

// Cache exposes the artifact cache (tests and embedders).
func (s *Server) Cache() *ArtifactCache { return s.cache }

// Shedder exposes the admission controller (tests prime it for
// deterministic decisions; embedders may inspect it).
func (s *Server) Shedder() *Shedder { return s.shed }

// reqIDKey carries the request ID through the context so the cache-fill
// layers (peer fetches, batch items) can stamp their logs and outbound
// requests with it.
type reqIDKey struct{}

// requestIDFrom returns the request ID stamped by ServeHTTP ("" outside
// a request).
func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(reqIDKey{}).(string)
	return id
}

// ServeHTTP implements http.Handler. Every request is tagged with a
// request ID (echoed in the X-Request-ID response header, passed
// through when the caller supplied a valid one) and logged structured
// on completion. Traced requests — callers sending wire.TraceHeader,
// plus a sampled slice of the rest — additionally record a span
// timeline retained for GET /v2/requests/{trace-id}.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	id := requestID(r)
	w.Header().Set(wire.RequestIDHeader, id)
	tr, root := s.startTrace(r, id)
	ctx := context.WithValue(r.Context(), reqIDKey{}, id)
	if tr.On() {
		w.Header().Set(wire.TraceHeader, tr.ID())
		ctx = telemetry.WithSpan(ctx, tr, root)
	}
	r = r.WithContext(ctx)
	sw := &statusWriter{ResponseWriter: w}
	start := time.Now()
	s.mux.ServeHTTP(&muxErrorWriter{statusWriter: sw}, r)
	if tr.On() {
		root.End()
		tr.Finish(r.Method+" "+r.URL.Path, sw.Status())
		s.traces.Record(tr)
	}
	s.logRequest(ctx, id, tr.ID(), r, sw, time.Since(start))
}

// startTrace decides whether this request is traced: a valid
// wire.TraceHeader always traces under the caller's ID, otherwise the
// deterministic sampler decides. The root span nests under the caller's
// own span when the request carries wire.ParentSpanHeader.
func (s *Server) startTrace(r *http.Request, reqID string) (*telemetry.Trace, *telemetry.Span) {
	var tr *telemetry.Trace
	if hdr := r.Header.Get(wire.TraceHeader); wire.ValidTraceID(hdr) {
		tr = telemetry.New(hdr)
	} else if s.sampler.Sample() {
		tr = telemetry.New("")
	} else {
		return nil, nil
	}
	parent := r.Header.Get(wire.ParentSpanHeader)
	if !wire.ValidTraceID(parent) {
		parent = ""
	}
	root := tr.StartRemote("server "+r.Method+" "+r.URL.Path, parent)
	root.SetAttr("request_id", reqID)
	return tr, root
}

// logRequest emits the structured completion log line. It is a no-op —
// and allocates nothing — when the server has no logger, which keeps
// the cache-hit path allocation-free.
func (s *Server) logRequest(ctx context.Context, id, traceID string, r *http.Request, sw *statusWriter, dur time.Duration) {
	if !s.logOn {
		return
	}
	attrs := []slog.Attr{
		slog.String("id", id),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", sw.Status()),
		slog.Int64("bytes", sw.bytes),
		slog.Duration("duration", dur),
		slog.String("remote", r.RemoteAddr),
	}
	if traceID != "" {
		attrs = append(attrs, slog.String("trace_id", traceID))
	}
	s.logger.LogAttrs(ctx, slog.LevelInfo, "request", attrs...)
}

// Shutdown stops accepting new work, stops the background machinery
// (anti-entropy loop, membership poller, health prober), and waits for
// in-flight work — including scheduled read-repair pushes — to finish
// or ctx to expire.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.stopBackground()
	done := make(chan struct{})
	go func() {
		s.work.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close stops the background machinery without draining requests —
// embedders and tests that never started serving call it instead of
// Shutdown. Safe to call multiple times, and alongside Shutdown.
func (s *Server) Close() {
	s.stopBackground()
}

func (s *Server) stopBackground() {
	s.bgOnce.Do(func() { close(s.bgStop) })
	if s.member != nil {
		s.member.Close()
	}
	s.bgWait.Wait()
}

// encBufPool recycles response-encode buffers: rendering a response
// reuses the buffer a previous response grew, so the steady-state serve
// path does not allocate a fresh encode buffer per request.
var encBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func writeJSON(w http.ResponseWriter, status int, v any) {
	writeJSONSized(w, status, v)
}

// writeJSONSized is writeJSON returning the number of body bytes
// written (transfer byte accounting wants the true on-the-wire size).
func writeJSONSized(w http.ResponseWriter, status int, v any) int {
	buf := encBufPool.Get().(*bytes.Buffer)
	enc := json.NewEncoder(buf)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	n, _ := w.Write(buf.Bytes())
	if buf.Cap() <= 1<<20 { // don't let one huge response pin memory
		buf.Reset()
		encBufPool.Put(buf)
	}
	return n
}

// writeError emits the v2 error envelope with an explicit code.
func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, wire.NewError(code, format, args...))
}

// writeUnavailable emits a 503 envelope with a Retry-After hint.
func writeUnavailable(w http.ResponseWriter, code string, retryAfter time.Duration, format string, args ...any) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(retryAfter)))
	writeError(w, http.StatusServiceUnavailable, code, format, args...)
}

// codeForStatus maps a handler-chosen HTTP status to the envelope code
// used when no more specific code applies.
func codeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return wire.CodeInvalidRequest
	case http.StatusNotFound:
		return wire.CodeNotFound
	case http.StatusRequestEntityTooLarge:
		return wire.CodeTooLarge
	case http.StatusServiceUnavailable:
		return wire.CodeOverloaded
	case http.StatusGatewayTimeout:
		return wire.CodeDeadlineExceeded
	default:
		return wire.CodeInternal
	}
}

// requestCtx derives the request's effective work deadline: the server's
// per-endpoint timeout, tightened by the client's remaining budget when
// the request carries an X-Request-Deadline-Ms header. The base context
// is the request's own, so a client disconnect cancels the work too.
func requestCtx(r *http.Request, serverTO time.Duration) (context.Context, context.CancelFunc) {
	to := serverTO
	if h := r.Header.Get(wire.DeadlineHeader); h != "" {
		if ms, err := strconv.ParseInt(h, 10, 64); err == nil && ms > 0 {
			if d := time.Duration(ms) * time.Millisecond; d < to {
				to = d
			}
		}
	}
	return context.WithTimeout(r.Context(), to)
}

// acquire takes a worker slot, respecting drain state, admission control
// and the queue timeout. ctx must carry the request's effective deadline
// (requestCtx). It returns false (with the response already written) on
// failure.
func (s *Server) acquire(w http.ResponseWriter, ctx context.Context) bool {
	if s.draining.Load() {
		s.metrics.Rejected.Add(1)
		writeUnavailable(w, wire.CodeDraining, s.cfg.DrainRetryAfter, "server is shutting down")
		return false
	}
	// Load shedding: reject early — before consuming a worker slot —
	// when the predicted queueing delay already exceeds the request's
	// remaining deadline. Only requests that declare a deadline can be
	// shed; the effective deadline from requestCtx always exists, so in
	// practice this covers every compile/simulate request.
	if !s.cfg.ShedDisabled {
		if deadline, ok := ctx.Deadline(); ok {
			if wait, admit := s.shed.Admit(time.Until(deadline), s.metrics.InFlight.Load()); !admit {
				s.metrics.Shed.Add(1)
				s.metrics.Rejected.Add(1)
				writeUnavailable(w, wire.CodeOverloaded,
					wait, "predicted queue wait %s exceeds the request deadline", wait.Round(time.Millisecond))
				return false
			}
		}
	}
	s.shed.Enqueue()
	defer s.shed.Dequeue()
	qctx := ctx
	if s.cfg.QueueTimeout > 0 {
		var cancel context.CancelFunc
		qctx, cancel = context.WithTimeout(ctx, s.cfg.QueueTimeout)
		defer cancel()
	}
	tr, parent := telemetry.FromContext(ctx)
	qspan := tr.Start("queue_wait", parent)
	qstart := time.Now()
	select {
	case s.sem <- struct{}{}:
		s.metrics.StageQueueWait.Observe(time.Since(qstart))
		qspan.End()
		return true
	case <-qctx.Done():
		qspan.SetAttr("outcome", "timeout")
		qspan.End()
		s.metrics.Rejected.Add(1)
		if ctx.Err() != nil {
			// The request's own deadline (or the client) gave up while
			// queued — that is a deadline failure, not back-pressure.
			s.metrics.Timeouts.Add(1)
			writeError(w, http.StatusGatewayTimeout, wire.CodeDeadlineExceeded,
				"request deadline expired while waiting for a worker slot")
			return false
		}
		wait := s.shed.MedianServiceTime()
		writeUnavailable(w, wire.CodeOverloaded, wait, "worker pool saturated")
		return false
	}
}

// runBounded executes fn on the calling goroutine's worker slot under
// ctx (the request's effective deadline). When ctx ends first the
// request fails with 504 and fn — which receives ctx — is expected to
// return promptly via cooperative cancellation, releasing the slot; the
// singleflight cache keeps the computation alive only while other
// requests still wait on it.
func (s *Server) runBounded(ctx context.Context, fn func(context.Context) (any, int, error)) (any, int, error) {
	type outcome struct {
		v      any
		status int
		err    error
	}
	ch := make(chan outcome, 1)
	s.work.Add(1)
	s.metrics.InFlight.Add(1)
	start := time.Now()
	go func() {
		defer func() {
			s.shed.Observe(time.Since(start))
			s.metrics.InFlight.Add(-1)
			s.work.Done()
			<-s.sem
		}()
		// A panic escaping the work function must not kill the process or
		// leak the worker slot: convert it to an internal-error outcome.
		// (Compile panics are already contained closer to the compiler,
		// with repro capture; this is the outer safety net.)
		defer func() {
			if r := recover(); r != nil {
				s.metrics.PanicsRecovered.Add(1)
				ch <- outcome{nil, http.StatusInternalServerError,
					&codedError{wire.CodeInternal, fmt.Errorf("worker panic: %v", r)}}
			}
		}()
		v, status, err := fn(ctx)
		ch <- outcome{v, status, err}
	}()
	select {
	case out := <-ch:
		return out.v, out.status, out.err
	case <-ctx.Done():
		s.metrics.Timeouts.Add(1)
		return nil, http.StatusGatewayTimeout, fmt.Errorf("request deadline exceeded: %w", ctx.Err())
	}
}

// statusForErr classifies a work-function error: cancellation and
// deadline errors become 504 (retryable), contained panics and
// verification failures (code "internal") become 500, everything else
// keeps the handler-chosen status.
func statusForErr(err error, status int) int {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout
	}
	var ce *codedError
	if errors.As(err, &ce) && ce.code == wire.CodeInternal {
		return http.StatusInternalServerError
	}
	return status
}

// codedError lets a work function pin a specific envelope code; handlers
// otherwise derive the code from the HTTP status via codeForStatus.
type codedError struct {
	code string
	err  error
}

func (e *codedError) Error() string { return e.err.Error() }
func (e *codedError) Unwrap() error { return e.err }

// errCode picks the envelope code for a work-function failure.
func errCode(err error, status int) string {
	var ce *codedError
	if errors.As(err, &ce) {
		return ce.code
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return wire.CodeDeadlineExceeded
	}
	return codeForStatus(status)
}

// The response envelopes now live in package wire, shared with
// ltspclient; the aliases keep existing embedders and tests compiling.
type (
	LoadReportJSON   = wire.LoadReportJSON
	RegStatsJSON     = wire.RegStatsJSON
	HLOJSON          = wire.HLOJSON
	CompileResponse  = wire.CompileResponse
	AcctJSON         = wire.AcctJSON
	SimulateResponse = wire.SimulateResponse
	TraceResponse    = wire.TraceResponse
)

func compileResponse(hash string, cached bool, c *ltsp.Compiled) *CompileResponse {
	resp := &CompileResponse{
		Hash: hash, Cached: cached,
		Pipelined: c.Pipelined,
		Outcome:   c.Outcome(),
		II:        c.II, Stages: c.Stages,
		ResII: c.ResII, RecII: c.RecII,
		Backend: c.Backend, ProvenII: c.ProvenII,
		Reg: RegStatsJSON{
			GR: c.Reg.TotalGR(), RotGR: c.Reg.RotGR,
			FR: c.Reg.TotalFR(), RotFR: c.Reg.RotFR,
			PR: c.Reg.TotalPR(), RotPR: c.Reg.RotPR,
			Spills: c.Reg.Spills,
		},
		Listing: c.Program.Listing(),
	}
	for _, lr := range c.Loads {
		resp.Loads = append(resp.Loads, LoadReportJSON{
			ID: lr.ID, Critical: lr.Critical,
			BaseLat: lr.BaseLat, SchedLat: lr.SchedLat,
			ExtraD: lr.ExtraD, ClusterK: lr.ClusterK,
			Hint: lr.Hint.String(),
		})
	}
	if c.HLO != nil {
		resp.HLO = &HLOJSON{
			IIEst:           c.HLO.IIEst,
			PrefetchesAdded: c.HLO.PrefetchesAdded,
			HintsSet:        c.HLO.HintsSet,
		}
	}
	if c.Pipelined && c.Stages <= 8 {
		resp.Diagram = c.Diagram(4)
	}
	return resp
}

// respondCompile renders an artifact as a compile response, whether it
// was compiled in this process or filled thin from disk or a peer. The
// shallow copy re-stamps only the Cached flag; the nested slices are
// shared and read-only.
func respondCompile(hash string, cached bool, art *Artifact) *CompileResponse {
	if art.Response != nil {
		r := *art.Response
		r.Cached = cached
		return &r
	}
	return compileResponse(hash, cached, art.Compiled)
}

// compileCached resolves the request through the layered artifact cache
// — memory, then disk store, then peer cache-fill (when another node
// owns the hash), then a local compilation — returning the artifact, its
// hash, and whether it was served from any cache layer rather than
// compiled by this call. ctx is this caller's interest in the result —
// the fill itself runs under the cache's flight context, which stays
// alive while any identical request still waits (see
// ArtifactCache.GetOrCompute). Each compilation actually executed
// records its decision trace in the artifact, bumps the matching outcome
// counter exactly once, and is written through to the disk store.
func (s *Server) compileCached(ctx context.Context, req *wire.CompileRequest) (*Artifact, string, bool, error) {
	if err := ctx.Err(); err != nil {
		// The deadline already expired (e.g. while queued): don't start a
		// compilation nobody will wait for.
		return nil, "", false, err
	}
	if req.Version != wire.Version {
		return nil, "", false, &codedError{wire.CodeUnsupportedVersion,
			fmt.Errorf("unsupported request version %d (want %d)", req.Version, wire.Version)}
	}
	canon, err := req.Canonical()
	if err != nil {
		return nil, "", false, mapLoopErr(err)
	}
	hash := wire.HashOf(canon)
	opts, err := req.Options.ToOptions()
	if err != nil {
		return nil, "", false, err
	}
	// The flight context is detached from this request (it lives while
	// any waiter remains), so the trace and request ID come from the
	// request context here, captured once and used inside the closure.
	tr, parent := telemetry.FromContext(ctx)
	reqID := requestIDFrom(ctx)
	memSpan := tr.Start("mem_lookup", parent)
	entered := false
	art, cached, err := s.cache.GetOrCompute(ctx, hash, func(fctx context.Context) (art *Artifact, err error) {
		// The closure runs inline on the calling goroutine (or not at
		// all), so entered needs no synchronization.
		entered = true
		memSpan.SetAttr("outcome", "miss")
		memSpan.End()
		// Layer 2: the persistent store. A disk hit yields a thin artifact
		// that serves compile and trace requests without recompiling.
		if s.store != nil {
			dspan := tr.Start("disk_read", parent)
			dstart := time.Now()
			var hit *Artifact
			if e, derr := s.storeGet(hash); derr == nil {
				if a, aerr := thinArtifact(e); aerr == nil {
					hit = a
					// Serving an owned hash from disk is a read-repair
					// opportunity: peers in the replica set that restarted
					// empty get the entry pushed.
					if ring := s.ring(); ring != nil && ring.IsOwner(s.cfg.Self, hash, s.cfg.Replication) {
						s.scheduleRepair(e)
					}
				} else {
					s.logger.Warn("disk artifact unusable", "hash", hash[:12], "err", aerr)
				}
			}
			s.metrics.StageDiskRead.Observe(time.Since(dstart))
			if hit != nil {
				s.metrics.DiskHits.Add(1)
				dspan.SetAttr("outcome", "hit")
				dspan.End()
				return hit, nil
			}
			s.metrics.DiskMisses.Add(1)
			dspan.SetAttr("outcome", "miss")
			dspan.End()
		}
		// Layer 3: peer cache-fill. When another replica set owns this
		// hash, its members have probably compiled (or will compile) it —
		// ask them before burning a local compile, and write a fill through
		// to disk so it survives restarts.
		if ring := s.ring(); ring != nil && !ring.IsOwner(s.cfg.Self, hash, s.cfg.Replication) {
			pspan := tr.Start("peer_fill", parent)
			e := s.peerFill(fctx, hash, tr, pspan, reqID)
			if e != nil {
				pspan.SetAttr("outcome", "hit")
			} else {
				pspan.SetAttr("outcome", "miss")
			}
			pspan.End()
			if e != nil {
				if a, aerr := thinArtifact(e); aerr == nil {
					wspan := tr.Start("write_through", parent)
					s.persist(e, store.SourcePeerFill)
					wspan.End()
					return a, nil
				} else {
					s.logger.Warn("peer artifact unusable", "hash", hash[:12], "err", aerr)
				}
			}
		}
		// Layer 4: compile locally.
		l, err := req.DecodeLoop()
		if err != nil {
			return nil, mapLoopErr(err)
		}
		// Panic containment: a panic anywhere in the compiler (or the
		// verifier) becomes a retryable "internal" error envelope plus a
		// replayable on-disk bundle — the process, the worker pool and the
		// other flights are unaffected.
		defer func() {
			if r := recover(); r != nil {
				s.metrics.PanicsRecovered.Add(1)
				s.writeRepro(repro.Capture(repro.KindPanic, req, r, debug.Stack(), nil))
				art, err = nil, &codedError{wire.CodeInternal, fmt.Errorf("compiler panic: %v", r)}
			}
		}()
		if hook := testCompileHook; hook != nil {
			hook(l)
		}
		cspan := tr.Start("compile", parent)
		cstart := time.Now()
		otr := obs.New()
		opts.Trace = otr
		c, err := ltsp.CompileContext(fctx, l, opts)
		s.metrics.StageCompile.Observe(time.Since(cstart))
		if err != nil {
			cspan.SetAttr("outcome", "error")
			cspan.End()
			return nil, err
		}
		cspan.SetAttr("outcome", c.Outcome())
		cspan.End()
		// Trust but verify: a sampled slice of successful compilations is
		// re-checked by the independent structural verifier and the
		// semantic differential oracle. A failure here means the compiler
		// produced a wrong kernel — fail the request rather than serve it.
		sampled := s.shouldVerify()
		if sampled {
			s.metrics.VerifyRuns.Add(1)
			check := (*ltsp.Compiled).Verify
			if hook := testVerifyHook; hook != nil {
				check = hook
			}
			vspan := tr.Start("verify", parent)
			vstart := time.Now()
			verr := check(c)
			s.metrics.StageVerify.Observe(time.Since(vstart))
			if verr != nil {
				vspan.SetAttr("outcome", "failed")
				vspan.End()
				s.metrics.VerifyFailures.Add(1)
				s.writeRepro(repro.Capture(repro.KindVerifyFailure, req, nil, nil, verr))
				return nil, &codedError{wire.CodeInternal, fmt.Errorf("kernel verification failed: %v", verr)}
			}
			vspan.SetAttr("outcome", "passed")
			vspan.End()
		}
		s.metrics.CountOutcome(c.Backend, c.Outcome())
		a := &Artifact{Compiled: c, Trace: otr, Request: canon,
			Verify: store.VerifyMeta{Sampled: sampled, Passed: sampled}}
		// Serialize the artifact once: the serialized sections weight the
		// in-memory LRU, feed the write-through below, and let repeated
		// serves and peer fills skip re-marshaling. A serialization failure
		// (never expected) leaves the artifact memory-only.
		resp := compileResponse(hash, false, c)
		respJSON, jerr := json.Marshal(resp)
		traceJSON, terr := json.Marshal(otr)
		if jerr == nil && terr == nil {
			entry := &store.Entry{
				Hash:        hash,
				Request:     canon,
				Response:    respJSON,
				Trace:       traceJSON,
				Verify:      a.Verify,
				CreatedUnix: time.Now().Unix(),
			}
			a.Response = resp
			a.TraceRaw = traceJSON
			a.CreatedUnix = entry.CreatedUnix
			a.Size = store.EncodedSize(entry)
			wspan := tr.Start("write_through", parent)
			s.persist(entry, store.SourceCompile)
			wspan.End()
		} else {
			s.logger.Warn("artifact serialization failed", "hash", hash[:12],
				"response_err", jerr, "trace_err", terr)
		}
		return a, nil
	})
	if !entered {
		// Served from memory (or coalesced onto another request's flight)
		// without this call ever entering the fill layers.
		memSpan.SetAttr("outcome", "hit")
		memSpan.End()
	}
	return art, hash, cached, err
}

// mapLoopErr pins the invalid_loop envelope code on semantic loop
// validation failures (ir.InvalidLoopError), which would otherwise render
// as generic invalid_request.
func mapLoopErr(err error) error {
	var inv *ir.InvalidLoopError
	if errors.As(err, &inv) {
		return &codedError{wire.CodeInvalidLoop, err}
	}
	return err
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	s.metrics.CompileRequests.Add(1)
	start := time.Now()
	enc := requestEncoding(r)
	if enc == encUnknown {
		s.metrics.CompileErrors.Add(1)
		rejectMedia(w, r)
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		s.metrics.CompileErrors.Add(1)
		return
	}
	defer putBody(body)
	bin := wantsBinary(r)
	// The prerendered hot path: a repeat of a byte-identical body is
	// answered from the hot map without decoding, hashing, a worker slot
	// or response encoding. Traced requests take the full path so their
	// span timelines stay truthful, and a draining server takes it so
	// repeats are rejected like any other new work.
	tr, _ := telemetry.FromContext(r.Context())
	useHot := body.Len() <= hotMaxBody && !tr.On() && !s.draining.Load()
	var hotKey [32]byte
	if useHot {
		hotKey = hotKeyOf(enc, body.Bytes())
		if s.serveHot(w, hotKey, bin) {
			s.metrics.CacheHits.Add(1)
			s.metrics.CompileLatency.Observe(time.Since(start))
			return
		}
	}
	var req *wire.CompileRequest
	if enc == encBinary {
		var err error
		req, err = binary.DecodeCompileRequest(body.Bytes())
		if err != nil {
			s.metrics.CompileErrors.Add(1)
			writeBinaryDecodeError(w, err)
			return
		}
	} else {
		req = new(wire.CompileRequest)
		if !decodeJSONBody(w, body.Bytes(), req) {
			s.metrics.CompileErrors.Add(1)
			return
		}
	}
	ctx, cancel := requestCtx(r, s.cfg.CompileTimeout)
	defer cancel()
	if !s.acquire(w, ctx) {
		return
	}
	v, status, err := s.runBounded(ctx, func(ctx context.Context) (any, int, error) {
		art, hash, cached, err := s.compileCached(ctx, req)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		// A thin artifact is by definition a cache serve (disk or peer),
		// even on the flight that filled it.
		return respondCompile(hash, cached || art.Thin(), art), http.StatusOK, nil
	})
	s.metrics.CompileLatency.Observe(time.Since(start))
	if err != nil {
		s.metrics.CompileErrors.Add(1)
		status = statusForErr(err, status)
		writeError(w, status, errCode(err, status), "compile: %v", err)
		return
	}
	resp := v.(*CompileResponse)
	writeCompileResponse(w, bin, status, resp)
	if useHot && status == http.StatusOK {
		s.storeHot(hotKey, resp)
	}
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	s.metrics.SimulateRequests.Add(1)
	start := time.Now()
	var req wire.SimulateRequest
	if !s.decodeBody(w, r, &req) {
		s.metrics.SimulateErrors.Add(1)
		return
	}
	ctx, cancel := requestCtx(r, s.cfg.SimulateTimeout)
	defer cancel()
	if !s.acquire(w, ctx) {
		return
	}
	v, status, err := s.runBounded(ctx, func(ctx context.Context) (any, int, error) {
		return s.simulate(ctx, &req)
	})
	s.metrics.SimulateLatency.Observe(time.Since(start))
	if err != nil {
		s.metrics.SimulateErrors.Add(1)
		status = statusForErr(err, status)
		writeError(w, status, errCode(err, status), "simulate: %v", err)
		return
	}
	writeJSON(w, status, v)
}

var errUnknownArtifact = errors.New("unknown artifact hash (compile first, or send the loop inline)")

func (s *Server) simulate(ctx context.Context, req *wire.SimulateRequest) (any, int, error) {
	if req.Version != wire.Version {
		return nil, http.StatusBadRequest, &codedError{wire.CodeUnsupportedVersion,
			fmt.Errorf("unsupported request version %d (want %d)", req.Version, wire.Version)}
	}
	if req.Trip < 1 {
		return nil, http.StatusBadRequest, fmt.Errorf("trip count %d < 1", req.Trip)
	}
	if req.Trip > s.cfg.MaxTrip {
		return nil, http.StatusBadRequest, fmt.Errorf("trip count %d exceeds server limit %d", req.Trip, s.cfg.MaxTrip)
	}

	var (
		c      *ltsp.Compiled
		hash   string
		cached bool
		err    error
	)
	switch {
	case req.Hash != "" && len(req.Loop) > 0:
		return nil, http.StatusBadRequest, fmt.Errorf("set either hash or loop, not both")
	case req.Hash != "":
		art, ok := s.cache.Get(req.Hash)
		if !ok && s.store != nil {
			// Memory miss: fall through to the persistent store and warm
			// the memory cache with the thin artifact.
			if e, derr := s.storeGet(req.Hash); derr == nil {
				if a, aerr := thinArtifact(e); aerr == nil {
					s.metrics.DiskHits.Add(1)
					s.cache.Add(req.Hash, a)
					art, ok = a, true
				}
			} else {
				s.metrics.DiskMisses.Add(1)
			}
		}
		if !ok {
			return nil, http.StatusNotFound, errUnknownArtifact
		}
		c, hash, cached = art.Compiled, req.Hash, true
		if art.Thin() {
			// Simulation needs the executable program: recompile the stored
			// canonical request, upgrading the cache entry in place.
			c, err = s.materialize(ctx, req.Hash, art)
			if err != nil {
				return nil, http.StatusBadRequest, err
			}
		}
	default:
		creq := &wire.CompileRequest{Version: wire.Version, Loop: req.Loop, Options: req.Options}
		var art *Artifact
		art, hash, cached, err = s.compileCached(ctx, creq)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		c = art.Compiled
	}

	mem := ltsp.NewMemory()
	for _, mi := range req.Memory {
		if mi.Float {
			mem.StoreF(mi.Addr, mi.FVal)
			continue
		}
		size := mi.Size
		if size == 0 {
			size = 8
		}
		mem.Store(mi.Addr, size, mi.Val)
	}
	cfg := req.Sim.ToConfig()
	res, err := sim.NewRunner(cfg).Run(c.Program, req.Trip, mem)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	return &SimulateResponse{
		Hash: hash, Cached: cached,
		Cycles:      res.Cycles,
		KernelIters: res.KernelIters,
		Acct: AcctJSON{
			Total: res.Acct.Total, Unstalled: res.Acct.Unstalled,
			ExeBubble: res.Acct.ExeBubble, L1DFPUBubble: res.Acct.L1DFPUBubble,
			RSEBubble: res.Acct.RSEBubble, FlushBubble: res.Acct.FlushBubble,
			FEBubble: res.Acct.FEBubble,
		},
		LoadsByLevel:  res.LoadsByLevel,
		OzQPeak:       res.OzQPeak,
		BankConflicts: res.BankConflictCount,
	}, http.StatusOK, nil
}

func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.metrics.Rejected.Add(1)
			writeError(w, http.StatusRequestEntityTooLarge, wire.CodeTooLarge,
				"body exceeds %d bytes", s.cfg.MaxBodyBytes)
			return false
		}
		writeError(w, http.StatusBadRequest, wire.CodeInvalidRequest, "malformed request body: %v", err)
		return false
	}
	return true
}

// handleTrace serves the decision trace stored with a cached artifact,
// falling through to the persistent store when the artifact is not in
// memory (a warm restart serves traces straight from disk, and the disk
// hit re-warms the memory cache). It reads through Peek so introspection
// neither reorders the LRU list nor inflates the cache-hit counters.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	art, ok := s.cache.Peek(hash)
	if !ok && s.store != nil {
		if e, err := s.storeGet(hash); err == nil {
			if a, aerr := thinArtifact(e); aerr == nil {
				s.metrics.DiskHits.Add(1)
				s.cache.Add(hash, a)
				art, ok = a, true
			}
		} else {
			s.metrics.DiskMisses.Add(1)
		}
	}
	if !ok {
		writeError(w, http.StatusNotFound, wire.CodeNotFound, "trace: %v", errUnknownArtifact)
		return
	}
	if art.Trace != nil {
		writeJSON(w, http.StatusOK, &TraceResponse{
			Hash:    hash,
			Outcome: art.Compiled.Outcome(),
			Events:  art.Trace,
		})
		return
	}
	// Thin artifact: the trace exists only in its serialized form, and
	// the outcome comes from the stored response.
	events := art.TraceRaw
	if events == nil {
		events = json.RawMessage("[]")
	}
	writeJSON(w, http.StatusOK, &wire.TraceRawResponse{
		Hash:    hash,
		Outcome: art.Response.Outcome,
		Events:  events,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]string{
		"status":  status,
		"version": buildinfo.Version,
	})
}

// handleMetrics serves the counters document. Both forms — JSON (the
// default) and Prometheus text exposition (negotiated via Accept:
// text/plain) — render from one snapshot, so a scrape and a JSON read
// of the same instant report byte-for-byte consistent numbers.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.snapshotJSON()
	if wantsPromText(r.Header.Get("Accept")) {
		w.Header().Set("Content-Type", PromContentType)
		w.WriteHeader(http.StatusOK)
		_ = writePrometheus(w, &m)
		return
	}
	writeJSON(w, http.StatusOK, m)
}
