// Package server implements ltspd, the HTTP compile-and-simulate service
// around the latency-tolerant software pipeliner.
//
// Endpoints:
//
//	POST /v1/compile  — wire.CompileRequest body; compiles the loop (or
//	                    serves it from the artifact cache) and returns the
//	                    II/stage structure, per-load reports, register
//	                    footprint, kernel listing and the artifact hash.
//	POST /v1/compile-batch — wire.CompileBatchRequest body; shards a list
//	                    of compile items over the bounded worker pool with
//	                    per-item singleflight cache hits, returning results
//	                    (or per-item errors) in request order.
//	POST /v1/simulate — wire.SimulateRequest body; simulates a compiled
//	                    artifact (by hash, or compiling inline through the
//	                    same cache) for a trip count and returns cycles
//	                    with full Fig.-10 stall accounting.
//	GET  /v1/artifacts/{hash}/trace — the pipeliner's decision trace for a
//	                    cached artifact: load classifications, II search,
//	                    fallback rungs, register allocation, outcome.
//	GET  /healthz     — liveness plus the build version.
//	GET  /metrics     — expvar-style JSON counters, latency histograms,
//	                    pipeliner outcome counters, uptime and build info.
//
// Requests are executed on a bounded worker pool with per-request
// deadlines; identical compile requests are deduplicated in flight and
// their artifacts cached under the canonical content hash (see package
// wire). The server drains gracefully: after Shutdown begins, new work is
// rejected with 503 while in-flight requests finish.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"ltsp"
	"ltsp/internal/buildinfo"
	"ltsp/internal/obs"
	"ltsp/internal/sim"
	"ltsp/internal/wire"
)

// Config parameterizes a Server.
type Config struct {
	// PoolSize bounds concurrently executing compile/simulate work
	// (default 4).
	PoolSize int
	// CacheCapacity bounds the artifact cache (default 256 artifacts).
	CacheCapacity int
	// CompileTimeout / SimulateTimeout are per-request deadlines
	// (defaults 10s / 30s).
	CompileTimeout  time.Duration
	SimulateTimeout time.Duration
	// QueueTimeout bounds how long a request waits for a worker slot
	// before being rejected (default: the request's deadline).
	QueueTimeout time.Duration
	// MaxBodyBytes bounds request bodies (default 8 MiB).
	MaxBodyBytes int64
	// MaxBatchItems bounds the number of loops in one compile-batch
	// request (default 64).
	MaxBatchItems int
	// MaxTrip bounds simulated trip counts (default 10M iterations).
	MaxTrip int64
	// Logger receives structured request logs. Nil discards them (tests,
	// embedders that log elsewhere).
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.PoolSize <= 0 {
		c.PoolSize = 4
	}
	if c.CacheCapacity == 0 {
		c.CacheCapacity = 256
	}
	if c.CompileTimeout <= 0 {
		c.CompileTimeout = 10 * time.Second
	}
	if c.SimulateTimeout <= 0 {
		c.SimulateTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxBatchItems <= 0 {
		c.MaxBatchItems = 64
	}
	if c.MaxTrip <= 0 {
		c.MaxTrip = 10_000_000
	}
	return c
}

// Server is the ltspd HTTP service. It is an http.Handler; wrap it in an
// http.Server to serve traffic.
type Server struct {
	cfg      Config
	cache    *ArtifactCache
	metrics  *Metrics
	logger   *slog.Logger
	start    time.Time
	sem      chan struct{}
	mux      *http.ServeMux
	draining atomic.Bool
	work     sync.WaitGroup
}

// New creates a Server with the given configuration.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &Server{
		cfg:     cfg,
		metrics: &Metrics{},
		logger:  logger,
		start:   time.Now(),
		sem:     make(chan struct{}, cfg.PoolSize),
		mux:     http.NewServeMux(),
	}
	s.cache = NewArtifactCache(cfg.CacheCapacity, s.metrics)
	s.mux.HandleFunc("POST /v1/compile", s.handleCompile)
	s.mux.HandleFunc("POST /v1/compile-batch", s.handleCompileBatch)
	s.mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	s.mux.HandleFunc("GET /v1/artifacts/{hash}/trace", s.handleTrace)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Metrics exposes the server's counters (tests and embedders).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Cache exposes the artifact cache (tests and embedders).
func (s *Server) Cache() *ArtifactCache { return s.cache }

// ServeHTTP implements http.Handler. Every request is tagged with a
// request ID (echoed in the X-Request-ID response header) and logged
// structured on completion.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	id := nextRequestID()
	w.Header().Set("X-Request-ID", id)
	sw := &statusWriter{ResponseWriter: w}
	start := time.Now()
	s.mux.ServeHTTP(sw, r)
	s.logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
		slog.String("id", id),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", sw.Status()),
		slog.Int64("bytes", sw.bytes),
		slog.Duration("duration", time.Since(start)),
		slog.String("remote", r.RemoteAddr),
	)
}

// Shutdown stops accepting new work and waits for in-flight work to
// finish or ctx to expire.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.work.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// errorJSON is the error response body.
type errorJSON struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorJSON{Error: fmt.Sprintf(format, args...)})
}

// acquire takes a worker slot, respecting the queue timeout and drain
// state. It returns false (with the response already written) on failure.
func (s *Server) acquire(w http.ResponseWriter, r *http.Request) bool {
	if s.draining.Load() {
		s.metrics.Rejected.Add(1)
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return false
	}
	ctx := r.Context()
	if s.cfg.QueueTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.QueueTimeout)
		defer cancel()
	}
	select {
	case s.sem <- struct{}{}:
		return true
	case <-ctx.Done():
		s.metrics.Rejected.Add(1)
		writeError(w, http.StatusServiceUnavailable, "worker pool saturated")
		return false
	}
}

// runBounded executes fn on the calling goroutine's worker slot with the
// given deadline. On timeout the request fails but fn runs to completion
// in the background (a compilation result still lands in the cache).
func (s *Server) runBounded(r *http.Request, timeout time.Duration, fn func() (any, int, error)) (any, int, error) {
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	type outcome struct {
		v      any
		status int
		err    error
	}
	ch := make(chan outcome, 1)
	s.work.Add(1)
	s.metrics.InFlight.Add(1)
	go func() {
		defer func() {
			s.metrics.InFlight.Add(-1)
			s.work.Done()
			<-s.sem
		}()
		v, status, err := fn()
		ch <- outcome{v, status, err}
	}()
	select {
	case out := <-ch:
		return out.v, out.status, out.err
	case <-ctx.Done():
		s.metrics.Timeouts.Add(1)
		return nil, http.StatusGatewayTimeout, fmt.Errorf("request deadline exceeded (%s)", timeout)
	}
}

// LoadReportJSON mirrors core.LoadReport on the wire.
type LoadReportJSON struct {
	ID       int    `json:"id"`
	Critical bool   `json:"critical"`
	BaseLat  int    `json:"baseLat"`
	SchedLat int    `json:"schedLat"`
	ExtraD   int    `json:"extraD"`
	ClusterK int    `json:"clusterK"`
	Hint     string `json:"hint"`
}

// RegStatsJSON mirrors regalloc.Stats on the wire.
type RegStatsJSON struct {
	GR     int `json:"gr"`
	RotGR  int `json:"rotGR"`
	FR     int `json:"fr"`
	RotFR  int `json:"rotFR"`
	PR     int `json:"pr"`
	RotPR  int `json:"rotPR"`
	Spills int `json:"spills"`
}

// HLOJSON summarizes the prefetcher's decisions on the wire.
type HLOJSON struct {
	IIEst           int `json:"iiEst"`
	PrefetchesAdded int `json:"prefetchesAdded"`
	HintsSet        int `json:"hintsSet"`
}

// CompileResponse is the body of a successful POST /v1/compile.
type CompileResponse struct {
	// Hash is the content-addressed artifact key; POST /v1/simulate
	// accepts it in place of an inline loop.
	Hash string `json:"hash"`
	// Cached reports whether the artifact came from the cache (including
	// piggybacking on an identical in-flight compilation).
	Cached    bool             `json:"cached"`
	Pipelined bool             `json:"pipelined"`
	II        int              `json:"ii,omitempty"`
	Stages    int              `json:"stages,omitempty"`
	ResII     int              `json:"resII,omitempty"`
	RecII     int              `json:"recII,omitempty"`
	Reg       RegStatsJSON     `json:"reg"`
	Loads     []LoadReportJSON `json:"loads,omitempty"`
	HLO       *HLOJSON         `json:"hlo,omitempty"`
	// Outcome is the pipeliner result class (obs.Outcome*); the full
	// decision trace is at GET /v1/artifacts/{hash}/trace.
	Outcome string `json:"outcome"`
	Listing string `json:"listing"`
	Diagram string `json:"diagram,omitempty"`
}

func compileResponse(hash string, cached bool, c *ltsp.Compiled) *CompileResponse {
	resp := &CompileResponse{
		Hash: hash, Cached: cached,
		Pipelined: c.Pipelined,
		Outcome:   c.Outcome(),
		II:        c.II, Stages: c.Stages,
		ResII: c.ResII, RecII: c.RecII,
		Reg: RegStatsJSON{
			GR: c.Reg.TotalGR(), RotGR: c.Reg.RotGR,
			FR: c.Reg.TotalFR(), RotFR: c.Reg.RotFR,
			PR: c.Reg.TotalPR(), RotPR: c.Reg.RotPR,
			Spills: c.Reg.Spills,
		},
		Listing: c.Program.Listing(),
	}
	for _, lr := range c.Loads {
		resp.Loads = append(resp.Loads, LoadReportJSON{
			ID: lr.ID, Critical: lr.Critical,
			BaseLat: lr.BaseLat, SchedLat: lr.SchedLat,
			ExtraD: lr.ExtraD, ClusterK: lr.ClusterK,
			Hint: lr.Hint.String(),
		})
	}
	if c.HLO != nil {
		resp.HLO = &HLOJSON{
			IIEst:           c.HLO.IIEst,
			PrefetchesAdded: c.HLO.PrefetchesAdded,
			HintsSet:        c.HLO.HintsSet,
		}
	}
	if c.Pipelined && c.Stages <= 8 {
		resp.Diagram = c.Diagram(4)
	}
	return resp
}

// compileCached compiles the request through the singleflight artifact
// cache, returning the artifact, its hash, and whether it was served from
// cache. Each compilation actually executed records its decision trace in
// the artifact and bumps the matching outcome counter exactly once.
func (s *Server) compileCached(req *wire.CompileRequest) (*Artifact, string, bool, error) {
	hash, err := req.Hash()
	if err != nil {
		return nil, "", false, err
	}
	opts, err := req.Options.ToOptions()
	if err != nil {
		return nil, "", false, err
	}
	art, cached, err := s.cache.GetOrCompute(hash, func() (*Artifact, error) {
		l, err := req.DecodeLoop()
		if err != nil {
			return nil, err
		}
		tr := obs.New()
		opts.Trace = tr
		c, err := ltsp.Compile(l, opts)
		if err != nil {
			return nil, err
		}
		s.metrics.CountOutcome(c.Outcome())
		return &Artifact{Compiled: c, Trace: tr}, nil
	})
	return art, hash, cached, err
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	s.metrics.CompileRequests.Add(1)
	start := time.Now()
	var req wire.CompileRequest
	if !s.decodeBody(w, r, &req) {
		s.metrics.CompileErrors.Add(1)
		return
	}
	if !s.acquire(w, r) {
		return
	}
	v, status, err := s.runBounded(r, s.cfg.CompileTimeout, func() (any, int, error) {
		art, hash, cached, err := s.compileCached(&req)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		return compileResponse(hash, cached, art.Compiled), http.StatusOK, nil
	})
	s.metrics.CompileLatency.Observe(time.Since(start))
	if err != nil {
		s.metrics.CompileErrors.Add(1)
		writeError(w, status, "compile: %v", err)
		return
	}
	writeJSON(w, status, v)
}

// AcctJSON mirrors sim.Accounting on the wire.
type AcctJSON struct {
	Total        int64 `json:"total"`
	Unstalled    int64 `json:"unstalled"`
	ExeBubble    int64 `json:"exeBubble"`
	L1DFPUBubble int64 `json:"l1dFpuBubble"`
	RSEBubble    int64 `json:"rseBubble"`
	FlushBubble  int64 `json:"flushBubble"`
	FEBubble     int64 `json:"feBubble"`
}

// SimulateResponse is the body of a successful POST /v1/simulate.
type SimulateResponse struct {
	Hash          string   `json:"hash"`
	Cached        bool     `json:"cached"`
	Cycles        int64    `json:"cycles"`
	KernelIters   int64    `json:"kernelIters"`
	Acct          AcctJSON `json:"acct"`
	LoadsByLevel  [5]int64 `json:"loadsByLevel"`
	OzQPeak       int      `json:"ozqPeak"`
	BankConflicts int64    `json:"bankConflicts"`
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	s.metrics.SimulateRequests.Add(1)
	start := time.Now()
	var req wire.SimulateRequest
	if !s.decodeBody(w, r, &req) {
		s.metrics.SimulateErrors.Add(1)
		return
	}
	if !s.acquire(w, r) {
		return
	}
	v, status, err := s.runBounded(r, s.cfg.SimulateTimeout, func() (any, int, error) {
		return s.simulate(&req)
	})
	s.metrics.SimulateLatency.Observe(time.Since(start))
	if err != nil {
		s.metrics.SimulateErrors.Add(1)
		writeError(w, status, "simulate: %v", err)
		return
	}
	writeJSON(w, status, v)
}

var errUnknownArtifact = errors.New("unknown artifact hash (compile first, or send the loop inline)")

func (s *Server) simulate(req *wire.SimulateRequest) (any, int, error) {
	if req.Version != wire.Version {
		return nil, http.StatusBadRequest, fmt.Errorf("unsupported request version %d (want %d)", req.Version, wire.Version)
	}
	if req.Trip < 1 {
		return nil, http.StatusBadRequest, fmt.Errorf("trip count %d < 1", req.Trip)
	}
	if req.Trip > s.cfg.MaxTrip {
		return nil, http.StatusBadRequest, fmt.Errorf("trip count %d exceeds server limit %d", req.Trip, s.cfg.MaxTrip)
	}

	var (
		c      *ltsp.Compiled
		hash   string
		cached bool
		err    error
	)
	switch {
	case req.Hash != "" && len(req.Loop) > 0:
		return nil, http.StatusBadRequest, fmt.Errorf("set either hash or loop, not both")
	case req.Hash != "":
		art, ok := s.cache.Get(req.Hash)
		if !ok {
			return nil, http.StatusNotFound, errUnknownArtifact
		}
		c, hash, cached = art.Compiled, req.Hash, true
	default:
		creq := &wire.CompileRequest{Version: wire.Version, Loop: req.Loop, Options: req.Options}
		var art *Artifact
		art, hash, cached, err = s.compileCached(creq)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		c = art.Compiled
	}

	mem := ltsp.NewMemory()
	for _, mi := range req.Memory {
		if mi.Float {
			mem.StoreF(mi.Addr, mi.FVal)
			continue
		}
		size := mi.Size
		if size == 0 {
			size = 8
		}
		mem.Store(mi.Addr, size, mi.Val)
	}
	cfg := req.Sim.ToConfig()
	res, err := sim.NewRunner(cfg).Run(c.Program, req.Trip, mem)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	return &SimulateResponse{
		Hash: hash, Cached: cached,
		Cycles:      res.Cycles,
		KernelIters: res.KernelIters,
		Acct: AcctJSON{
			Total: res.Acct.Total, Unstalled: res.Acct.Unstalled,
			ExeBubble: res.Acct.ExeBubble, L1DFPUBubble: res.Acct.L1DFPUBubble,
			RSEBubble: res.Acct.RSEBubble, FlushBubble: res.Acct.FlushBubble,
			FEBubble: res.Acct.FEBubble,
		},
		LoadsByLevel:  res.LoadsByLevel,
		OzQPeak:       res.OzQPeak,
		BankConflicts: res.BankConflictCount,
	}, http.StatusOK, nil
}

func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.metrics.Rejected.Add(1)
			writeError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", s.cfg.MaxBodyBytes)
			return false
		}
		writeError(w, http.StatusBadRequest, "malformed request body: %v", err)
		return false
	}
	return true
}

// TraceResponse is the body of GET /v1/artifacts/{hash}/trace. Events is
// the trace's JSON form: an array of kinded decision events.
type TraceResponse struct {
	Hash    string     `json:"hash"`
	Outcome string     `json:"outcome"`
	Events  *obs.Trace `json:"events"`
}

// handleTrace serves the decision trace stored with a cached artifact. It
// reads through Peek so introspection neither reorders the LRU list nor
// inflates the cache-hit counters.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	art, ok := s.cache.Peek(hash)
	if !ok {
		writeError(w, http.StatusNotFound, "trace: %v", errUnknownArtifact)
		return
	}
	writeJSON(w, http.StatusOK, &TraceResponse{
		Hash:    hash,
		Outcome: art.Compiled.Outcome(),
		Events:  art.Trace,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]string{
		"status":  status,
		"version": buildinfo.Version,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.metrics.snapshot(s.cache.Len(), time.Since(s.start)))
}
