package server

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// shedRingSize is how many recent slot-hold durations the shedder keeps;
// shedRecompute is how many new observations accumulate between median
// recomputations. The admit path itself never sorts: it reads one cached
// atomic, so admission control costs a few nanoseconds per request (the
// benchguard gate pins it under 1% of a single compile).
const (
	shedRingSize  = 128
	shedRecompute = 16
)

// Shedder is the deadline-aware admission controller: it predicts the
// queueing delay a new request would see from the current queue depth and
// the observed median service time, and rejects requests whose remaining
// deadline the prediction already exceeds — before they consume a worker
// slot. Rejections carry the predicted wait so clients can Retry-After
// it (paper §5's discipline of containing worst-case cost, applied at
// the service layer).
type Shedder struct {
	pool     int64
	queued   atomic.Int64 // requests currently waiting for a worker slot
	medianNs atomic.Int64 // cached median of recent slot-hold durations

	mu      sync.Mutex
	ring    [shedRingSize]int64
	n       int // valid entries in ring
	idx     int // next write position
	pending int // observations since the last median recompute
}

// NewShedder returns a shedder for a worker pool of the given width.
func NewShedder(pool int) *Shedder {
	if pool < 1 {
		pool = 1
	}
	return &Shedder{pool: int64(pool)}
}

// Observe records how long one request held a worker slot. The cached
// median refreshes every shedRecompute observations.
func (s *Shedder) Observe(d time.Duration) {
	s.mu.Lock()
	s.ring[s.idx] = int64(d)
	s.idx = (s.idx + 1) % shedRingSize
	if s.n < shedRingSize {
		s.n++
	}
	s.pending++
	if s.pending >= shedRecompute || s.n <= shedRecompute {
		s.pending = 0
		tmp := make([]int64, s.n)
		copy(tmp, s.ring[:s.n])
		sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
		s.medianNs.Store(tmp[len(tmp)/2])
	}
	s.mu.Unlock()
}

// Prime seeds the shedder with a known median service time (tests and
// embedders that want deterministic admission decisions before traffic
// has produced observations).
func (s *Shedder) Prime(d time.Duration) {
	for i := 0; i < shedRecompute; i++ {
		s.Observe(d)
	}
}

// Enqueue/Dequeue bracket a request's wait for a worker slot, so the
// queue depth the estimate uses includes requests not yet holding a slot.
func (s *Shedder) Enqueue() { s.queued.Add(1) }
func (s *Shedder) Dequeue() { s.queued.Add(-1) }

// MedianServiceTime returns the cached median slot-hold duration (zero
// until enough observations exist).
func (s *Shedder) MedianServiceTime() time.Duration {
	return time.Duration(s.medianNs.Load())
}

// Admit decides whether a request with the given remaining deadline can
// plausibly be served: the predicted completion time is
//
//	(queued + inFlight + 1) x median / pool
//
// — the requests ahead of it plus its own service, drained pool-wide.
// It returns ok=true to admit. On rejection the returned duration is the
// predicted wait to a free slot, i.e. the Retry-After hint. With no
// observations yet (median zero) everything is admitted: the shedder
// only acts once it has evidence.
func (s *Shedder) Admit(remaining time.Duration, inFlight int64) (time.Duration, bool) {
	med := s.medianNs.Load()
	if med == 0 {
		return 0, true
	}
	depth := s.queued.Load() + inFlight
	estNs := (depth + 1) * med / s.pool
	if int64(remaining) >= estNs {
		return 0, true
	}
	return time.Duration(depth * med / s.pool), false
}

// retryAfterSeconds renders a wait as a whole-second Retry-After value,
// at least 1 (the header has no sub-second form).
func retryAfterSeconds(wait time.Duration) int {
	secs := int((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}
