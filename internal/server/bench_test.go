package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"ltsp"
	"ltsp/internal/server"
	"ltsp/internal/wire"
	"ltsp/internal/workload"
)

// benchPost posts one pre-encoded compile request and discards the body.
func benchPost(b *testing.B, url string, body []byte) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("compile: %s", resp.Status)
	}
}

// heavyCompileRequest builds a compile request for the wide xor kernel,
// the most expensive archetype to schedule, so the cold/cached benchmarks
// measure a representative compile rather than HTTP overhead.
func heavyCompileRequest(b *testing.B) *wire.CompileRequest {
	b.Helper()
	gen, _ := workload.MultiStreamXor(12, 64)
	req, err := wire.NewCompileRequest(gen(), ltsp.Options{
		Mode: ltsp.ModeHLO, Prefetch: true, LatencyTolerant: true, TripEstimate: 1000,
	})
	if err != nil {
		b.Fatal(err)
	}
	return req
}

// BenchmarkCompileCold measures the full compile round-trip with a cache
// miss on every iteration (the same heavy loop under a distinct name, so
// each request repeats identical compile work).
func BenchmarkCompileCold(b *testing.B) {
	ts := httptest.NewServer(server.New(server.Config{CacheCapacity: 1 << 20}))
	defer ts.Close()
	base := heavyCompileRequest(b)
	bodies := make([][]byte, b.N)
	for i := range bodies {
		cp := *base
		cp.Loop = mutateName(b, base.Loop, fmt.Sprintf("xor%d", i))
		data, err := json.Marshal(&cp)
		if err != nil {
			b.Fatal(err)
		}
		bodies[i] = data
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, ts.URL+"/v1/compile", bodies[i])
	}
}

// BenchmarkCompileCached measures the same round-trip when every request
// hits the artifact cache. The acceptance bar for the service is that
// this is >= 10x faster than BenchmarkCompileCold (also asserted by
// TestCachedSpeedup):
//
//	go test -bench 'CompileCold|CompileCached' ./internal/server/
func BenchmarkCompileCached(b *testing.B) {
	ts := httptest.NewServer(server.New(server.Config{CacheCapacity: 16}))
	defer ts.Close()
	body, err := json.Marshal(heavyCompileRequest(b))
	if err != nil {
		b.Fatal(err)
	}
	benchPost(b, ts.URL+"/v1/compile", body) // warm the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, ts.URL+"/v1/compile", body)
	}
}
