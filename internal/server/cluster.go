package server

// Cluster mode: consistent-hash ownership of loop hashes across ltspd
// peers, with peer cache-fill over the wire protocol.
//
// Every peer (and every fleet-aware client) builds the same hash ring
// from the shared peer list, so each loop hash has a deterministic
// replica set. A node that receives a compile request for a hash it does
// not own asks the owners for the finished artifact — GET
// /v2/artifacts/{hash} — before compiling locally. The lookup is hedged
// across the replica set (staggered by PeerHedgeDelay, failing over
// immediately on error) and bounded by PeerTimeout; it runs inside the
// refcounted singleflight flight, so concurrent identical requests share
// one lookup, a slow peer never blocks past the budget (the node just
// compiles locally), and an abandoned flight cancels the lookup.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"ltsp"
	"ltsp/internal/cluster"
	"ltsp/internal/obs"
	"ltsp/internal/store"
	"ltsp/internal/telemetry"
	"ltsp/internal/wire"
	"ltsp/internal/wire/binary"
)

// peerFill asks the replica set that owns hash for the finished
// artifact, hedged and bounded. It returns nil when no peer had it (or
// none answered in time) — the caller then compiles locally. ctx is the
// flight context: it ends when every waiter has given up. tr/parent
// come from the originating request (nil when untraced): each hedged
// leg records a peer_leg span — peer ID, hedge index, outcome — and
// forwards reqID plus the trace headers so the peer's logs and spans
// stitch to this request.
func (s *Server) peerFill(ctx context.Context, hash string, tr *telemetry.Trace, parent *telemetry.Span, reqID string) *store.Entry {
	ring := s.ring()
	if ring == nil {
		return nil
	}
	owners := ring.Owners(hash, s.cfg.Replication)
	targets := make([]cluster.Peer, 0, len(owners))
	for _, p := range owners {
		// Known-dead replicas are skipped outright — a hedged leg against
		// a peer that failed its last FailThreshold requests only burns the
		// hedge budget. Eligible grants a dead peer one trial request once
		// its backoff expires, which is how it earns probation back.
		if p.ID != s.cfg.Self && s.health.Eligible(p.ID) {
			targets = append(targets, p)
		}
	}
	if len(targets) == 0 {
		// Every replica is dead (or this node is the set): count the miss
		// so fill accounting still adds up per request.
		s.metrics.PeerMisses.Add(1)
		return nil
	}
	ctx, cancel := context.WithTimeout(ctx, s.cfg.PeerTimeout)
	defer cancel()
	start := time.Now()

	type result struct {
		e   *store.Entry
		err error
	}
	// Buffered to the fan-out width so a late responder never blocks:
	// every launched goroutine can complete its send and exit even after
	// peerFill has returned.
	results := make(chan result, len(targets))
	launched := 0
	launch := func() {
		p := targets[launched]
		leg := launched
		launched++
		go func() {
			lspan := tr.Start("peer_leg", parent)
			lspan.SetAttr("peer", p.ID)
			lspan.SetAttr("hedge", strconv.Itoa(leg))
			lstart := time.Now()
			e, err := s.fetchArtifact(ctx, p, hash, tr, lspan, reqID)
			s.metrics.StagePeerLeg.Observe(time.Since(lstart))
			// Health accounting: a completed exchange (hit or clean miss)
			// is a success; a transport/status failure counts toward
			// ejection — unless the flight context ended, which says
			// nothing about the peer.
			if err != nil {
				if ctx.Err() == nil {
					s.health.ReportFailure(p.ID)
				}
			} else {
				s.health.ReportSuccess(p.ID)
			}
			switch {
			case err != nil:
				lspan.SetAttr("outcome", "error")
			case e != nil:
				lspan.SetAttr("outcome", "hit")
			default:
				lspan.SetAttr("outcome", "miss")
			}
			lspan.End()
			results <- result{e, err}
		}()
	}
	launch()
	hedge := time.NewTimer(s.cfg.PeerHedgeDelay)
	defer hedge.Stop()

	for pending := 1; pending > 0; {
		select {
		case <-hedge.C:
			// The current leader is slow: hedge to the next replica.
			if launched < len(targets) {
				pending++
				launch()
				hedge.Reset(s.cfg.PeerHedgeDelay)
			}
		case r := <-results:
			pending--
			if r.err == nil && r.e != nil {
				s.metrics.PeerHits.Add(1)
				s.metrics.PeerFillLatency.Observe(time.Since(start))
				return r.e
			}
			if r.err != nil {
				s.metrics.PeerErrors.Add(1)
				s.logger.Debug("peer artifact fetch failed", "hash", hash[:12], "err", r.err)
			}
			// A definitive miss or error fails over immediately — no
			// point waiting out the hedge stagger.
			if launched < len(targets) {
				pending++
				launch()
			}
		case <-ctx.Done():
			// Budget exhausted (or every waiter gave up): compile locally.
			s.metrics.PeerMisses.Add(1)
			return nil
		}
	}
	s.metrics.PeerMisses.Add(1)
	return nil
}

// fetchArtifact retrieves one artifact from one peer. A clean 404
// (the peer does not have it) returns (nil, nil); anything else that
// isn't a valid artifact is an error. The originating request's ID and
// trace context (when present) ride along as headers, so the peer's
// log lines carry the same ID and its spans nest under this leg.
func (s *Server) fetchArtifact(ctx context.Context, p cluster.Peer, hash string, tr *telemetry.Trace, leg *telemetry.Span, reqID string) (*store.Entry, error) {
	url := strings.TrimRight(p.Addr, "/") + "/v2/artifacts/" + hash
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	if deadline, ok := ctx.Deadline(); ok {
		if ms := time.Until(deadline).Milliseconds(); ms > 0 {
			req.Header.Set(wire.DeadlineHeader, strconv.FormatInt(ms, 10))
		}
	}
	if reqID != "" {
		req.Header.Set(wire.RequestIDHeader, reqID)
	}
	if tr.On() {
		req.Header.Set(wire.TraceHeader, tr.ID())
		if id := leg.ID(); id != "" {
			req.Header.Set(wire.ParentSpanHeader, id)
		}
	}
	// Ask for the binary transfer encoding; peers that predate it (or
	// choose not to speak it) ignore Accept and answer JSON, which stays
	// fully supported — the Content-Type of the reply decides the decode.
	req.Header.Set("Accept", binary.ContentType)
	resp, err := s.peerHTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("peer %s: status %d", p.ID, resp.StatusCode)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	var ar wire.ArtifactResponse
	if strings.HasPrefix(resp.Header.Get("Content-Type"), binary.ContentType) {
		bar, err := binary.DecodeArtifact(data)
		if err != nil {
			return nil, fmt.Errorf("peer %s: undecodable binary artifact: %v", p.ID, err)
		}
		ar = *bar
		s.metrics.PeerBytesBinary.Add(int64(len(data)))
	} else {
		if err := json.Unmarshal(data, &ar); err != nil {
			return nil, fmt.Errorf("peer %s: undecodable artifact: %v", p.ID, err)
		}
		s.metrics.PeerBytesJSON.Add(int64(len(data)))
	}
	if ar.Hash != hash {
		return nil, fmt.Errorf("peer %s: sent artifact %s for request %s", p.ID, ar.Hash, hash)
	}
	// Trust but verify the transfer: normalize away the transfer
	// formatting, then the canonical request must really hash to the key
	// we asked for, or the fill is poisoning the cache.
	if err := ar.Normalize(); err != nil {
		return nil, fmt.Errorf("peer %s: %v", p.ID, err)
	}
	if err := ar.CheckIntegrity(); err != nil {
		return nil, fmt.Errorf("peer %s: %v", p.ID, err)
	}
	return entryFromWire(&ar), nil
}

// entryFromWire converts a received artifact envelope to a store entry.
func entryFromWire(ar *wire.ArtifactResponse) *store.Entry {
	return &store.Entry{
		Hash:        ar.Hash,
		Request:     ar.Request,
		Response:    ar.Response,
		Trace:       ar.Trace,
		Verify:      store.VerifyMeta{Sampled: ar.Verify.Sampled, Passed: ar.Verify.Passed},
		CreatedUnix: ar.CreatedUnix,
	}
}

// wireFromEntry converts a store entry to the artifact envelope.
func wireFromEntry(e *store.Entry) *wire.ArtifactResponse {
	return &wire.ArtifactResponse{
		Hash:        e.Hash,
		Request:     e.Request,
		Response:    e.Response,
		Trace:       e.Trace,
		Verify:      wire.ArtifactVerify{Sampled: e.Verify.Sampled, Passed: e.Verify.Passed},
		CreatedUnix: e.CreatedUnix,
	}
}

// thinArtifact builds a cache artifact from a persisted or transferred
// entry: servable for compile and trace requests, materialized on demand
// for simulate.
func thinArtifact(e *store.Entry) (*Artifact, error) {
	resp := new(wire.CompileResponse)
	if err := json.Unmarshal(e.Response, resp); err != nil {
		return nil, fmt.Errorf("stored response undecodable: %v", err)
	}
	return &Artifact{
		Request:     e.Request,
		Response:    resp,
		TraceRaw:    e.Trace,
		Verify:      e.Verify,
		CreatedUnix: e.CreatedUnix,
		Size:        store.EncodedSize(e),
	}, nil
}

// persist writes an entry through to the disk store, best-effort: a
// failed write is logged and the artifact stays memory-only. source
// names how the entry came to exist (store.SourceCompile, peer fill,
// read-repair, anti-entropy); every successful write is recorded in the
// provenance chain under it, pinning the entry's checksum, and then
// offered to the read-repair scheduler so under-replicated peers catch
// up.
func (s *Server) persist(e *store.Entry, source string) {
	if s.store == nil {
		return
	}
	if err := s.store.Put(e); err != nil {
		s.metrics.DiskWriteErrors.Add(1)
		s.logger.Warn("artifact persist failed", "hash", e.Hash[:12], "err", err)
		return
	}
	// Put stamped e.Checksum; the provenance record pins it.
	s.prov.Append(e.Hash, source, e.Checksum)
	s.scheduleRepair(e)
}

// artifactWire renders a cached artifact as the transfer envelope,
// serializing the response and trace when the artifact holds only their
// live forms.
func artifactWire(hash string, art *Artifact) (*wire.ArtifactResponse, error) {
	respJSON, traceJSON, err := artifactSections(hash, art)
	if err != nil {
		return nil, err
	}
	return &wire.ArtifactResponse{
		Hash:        hash,
		Request:     art.Request,
		Response:    respJSON,
		Trace:       traceJSON,
		Verify:      wire.ArtifactVerify{Sampled: art.Verify.Sampled, Passed: art.Verify.Passed},
		CreatedUnix: art.CreatedUnix,
	}, nil
}

// artifactSections returns the serialized response and trace of an
// artifact, marshaling from the live forms when needed.
func artifactSections(hash string, art *Artifact) (respJSON, traceJSON json.RawMessage, err error) {
	switch {
	case art.Response != nil:
		respJSON, err = json.Marshal(art.Response)
	case art.Compiled != nil:
		respJSON, err = json.Marshal(compileResponse(hash, false, art.Compiled))
	default:
		err = fmt.Errorf("artifact has neither response nor compilation")
	}
	if err != nil {
		return nil, nil, err
	}
	switch {
	case art.TraceRaw != nil:
		traceJSON = art.TraceRaw
	case art.Trace != nil:
		traceJSON, err = json.Marshal(art.Trace)
		if err != nil {
			return nil, nil, err
		}
	default:
		traceJSON = json.RawMessage("[]")
	}
	return respJSON, traceJSON, nil
}

// handleArtifact serves the artifact-transfer envelope for a hash: the
// peer cache-fill endpoint (and a useful introspection surface). Reads
// go through Peek/store without perturbing LRU order of the compile
// path's metrics.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	if r.Method == http.MethodHead {
		// Existence probe (the read-repair scheduler uses it to decide
		// whether a replica needs a push) — no envelope, no counters.
		if _, ok := s.cache.Peek(hash); ok || (s.store != nil && s.store.Contains(hash)) {
			w.WriteHeader(http.StatusOK)
		} else {
			w.WriteHeader(http.StatusNotFound)
		}
		return
	}
	s.metrics.ArtifactRequests.Add(1)
	if art, ok := s.cache.Peek(hash); ok && len(art.Request) > 0 {
		ar, err := artifactWire(hash, art)
		if err == nil {
			s.writeArtifact(w, r, ar)
			return
		}
		s.logger.Warn("artifact render failed", "hash", hash[:min(12, len(hash))], "err", err)
	}
	if s.store != nil {
		if e, err := s.storeGet(hash); err == nil {
			s.writeArtifact(w, r, wireFromEntry(e))
			return
		}
	}
	writeError(w, http.StatusNotFound, wire.CodeNotFound, "artifact: %v", errUnknownArtifact)
}

// writeArtifact serves an artifact envelope in the negotiated encoding,
// crediting the transfer byte counters with the true on-the-wire size
// of whichever encoding was sent (store.EncodedSize deliberately stays
// JSON-based — it weights storage layers, not transfers).
func (s *Server) writeArtifact(w http.ResponseWriter, r *http.Request, ar *wire.ArtifactResponse) {
	if wantsBinary(r) {
		frame := binary.EncodeArtifact(nil, ar)
		s.metrics.ArtifactBytesBinary.Add(int64(len(frame)))
		writeBinary(w, frame)
		return
	}
	n := writeJSONSized(w, http.StatusOK, ar)
	s.metrics.ArtifactBytesJSON.Add(int64(n))
}

// materialize recompiles a thin artifact's canonical request so the
// executable program exists in this process (the simulate path needs
// it), upgrading the cache entry in place. The recompilation is not a
// new compilation decision — the artifact's stored response stays
// authoritative — so it does not bump the compile outcome counters.
// Concurrent materializations of the same hash waste at most one
// compile each; they converge on identical programs (compilation is
// deterministic).
func (s *Server) materialize(ctx context.Context, hash string, art *Artifact) (*ltsp.Compiled, error) {
	var creq wire.CompileRequest
	if err := json.Unmarshal(art.Request, &creq); err != nil {
		return nil, &codedError{wire.CodeInternal, fmt.Errorf("stored request undecodable: %v", err)}
	}
	l, err := creq.DecodeLoop()
	if err != nil {
		return nil, &codedError{wire.CodeInternal, fmt.Errorf("stored loop undecodable: %v", err)}
	}
	opts, err := creq.Options.ToOptions()
	if err != nil {
		return nil, &codedError{wire.CodeInternal, fmt.Errorf("stored options invalid: %v", err)}
	}
	tr := obs.New()
	opts.Trace = tr
	c, err := ltsp.CompileContext(ctx, l, opts)
	if err != nil {
		return nil, err
	}
	full := *art
	full.Compiled = c
	full.Trace = tr
	s.cache.Replace(hash, &full)
	s.metrics.Materializations.Add(1)
	return c, nil
}
