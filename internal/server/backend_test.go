package server_test

import (
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"ltsp"
	"ltsp/internal/server"
	"ltsp/internal/wire"
	"ltsp/internal/wire/binary"
)

// TestBackendNegotiationMatrix: a backend-bearing request must produce
// the identical compile result through all four corners of the
// encoding matrix, and the response must name the backend.
func TestBackendNegotiationMatrix(t *testing.T) {
	l := testLoop(t)
	opts := ltsp.Options{LatencyTolerant: true, Backend: ltsp.BackendExact}
	jreq, err := wire.NewCompileRequest(l, opts)
	if err != nil {
		t.Fatal(err)
	}
	jsonBody, _ := json.Marshal(jreq)
	binBody := binFrame(t, testLoop(t), opts)

	var want *wire.CompileResponse
	for _, tc := range []struct {
		name        string
		contentType string
		accept      string
		body        []byte
		binResp     bool
	}{
		{"json-json", "application/json", "", jsonBody, false},
		{"json-binary", "application/json", binary.ContentType, jsonBody, true},
		{"binary-json", binary.ContentType, "application/json", binBody, false},
		{"binary-binary", binary.ContentType, binary.ContentType, binBody, true},
	} {
		_, ts := newTestServer(t, server.Config{})
		resp, data := postRaw(t, ts.URL+"/v2/compile", tc.contentType, tc.accept, tc.body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status = %d, body %s", tc.name, resp.StatusCode, data)
		}
		got := new(wire.CompileResponse)
		if tc.binResp {
			got, err = binary.DecodeCompileResponse(data)
			if err != nil {
				t.Fatal(err)
			}
		} else if err := json.Unmarshal(data, got); err != nil {
			t.Fatal(err)
		}
		if got.Backend != "exact" {
			t.Fatalf("%s: response backend = %q, want exact", tc.name, got.Backend)
		}
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("%s: result differs from json-json corner:\nwant %+v\ngot  %+v", tc.name, want, got)
		}
	}
}

// TestUnknownBackendRejected: an unknown backend is an invalid request —
// 400, the v2 envelope, non-retryable — on both request encodings, and
// nothing is cached under a hash that could never compile.
func TestUnknownBackendRejected(t *testing.T) {
	l := testLoop(t)
	jreq, err := wire.NewCompileRequest(l, ltsp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	jreq.Options.Backend = "simplex"
	jsonBody, _ := json.Marshal(jreq)
	binBody, err := binary.EncodeCompileRequest(nil, testLoop(t), wire.Options{Backend: "simplex"})
	if err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, server.Config{})
	for _, tc := range []struct {
		name, contentType string
		body              []byte
	}{
		{"json", "application/json", jsonBody},
		{"binary", binary.ContentType, binBody},
	} {
		resp, data := postRaw(t, ts.URL+"/v2/compile", tc.contentType, "", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status = %d, want 400; body %s", tc.name, resp.StatusCode, data)
		}
		var env wire.ErrorEnvelope
		if err := json.Unmarshal(data, &env); err != nil {
			t.Fatalf("%s: 400 body is not the JSON envelope: %v", tc.name, err)
		}
		if env.Error.Code != wire.CodeInvalidRequest {
			t.Fatalf("%s: code = %q, want %q", tc.name, env.Error.Code, wire.CodeInvalidRequest)
		}
		if env.Error.Retryable {
			t.Fatalf("%s: unknown backend marked retryable", tc.name)
		}
		if !strings.Contains(env.Error.Message, "simplex") {
			t.Fatalf("%s: error does not name the offending backend: %q", tc.name, env.Error.Message)
		}
	}
}

// TestMetricsBackendSplit: compile_outcomes stays aggregate (the frozen
// surface) while compile_outcomes_by_backend splits the same counts per
// backend, in both the JSON document and the Prometheus exposition.
func TestMetricsBackendSplit(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	compile := func(opts ltsp.Options) {
		t.Helper()
		req, err := wire.NewCompileRequest(testLoop(t), opts)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := json.Marshal(req)
		resp, data := postRaw(t, ts.URL+"/v2/compile", "application/json", "", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("compile: status = %d, body %s", resp.StatusCode, data)
		}
	}
	compile(ltsp.Options{LatencyTolerant: true})
	compile(ltsp.Options{LatencyTolerant: true, Backend: ltsp.BackendExact})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		CompileOutcomes struct {
			Pipelined int64 `json:"pipelined"`
		} `json:"compile_outcomes"`
		ByBackend map[string]struct {
			Pipelined int64 `json:"pipelined"`
		} `json:"compile_outcomes_by_backend"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if m.CompileOutcomes.Pipelined != 2 {
		t.Fatalf("aggregate pipelined = %d, want 2", m.CompileOutcomes.Pipelined)
	}
	if m.ByBackend["heuristic"].Pipelined != 1 || m.ByBackend["exact"].Pipelined != 1 {
		t.Fatalf("per-backend split = %+v, want heuristic/exact 1 each", m.ByBackend)
	}
	var total int64
	for _, v := range m.ByBackend {
		total += v.Pipelined
	}
	if total != m.CompileOutcomes.Pipelined {
		t.Fatalf("per-backend counts (%d) do not sum to the aggregate (%d)", total, m.CompileOutcomes.Pipelined)
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	presp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer presp.Body.Close()
	raw, err := io.ReadAll(presp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		`ltspd_compile_outcomes_total{outcome="pipelined"} 2`,
		`ltspd_compile_outcomes_by_backend_total{backend="exact",outcome="pipelined"} 1`,
		`ltspd_compile_outcomes_by_backend_total{backend="heuristic",outcome="pipelined"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus exposition missing %q:\n%s", want, text)
		}
	}
}
