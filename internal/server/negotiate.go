package server

// Wire-encoding negotiation and the prerendered hot path.
//
// JSON is the default encoding everywhere. On the /v2 endpoints a client
// may send its compile (or batch) request as a binary frame by setting
// Content-Type: application/x-ltsp-bin, and may ask for a binary
// response body by listing the same media type in Accept. The two are
// independent: a binary request may ask for a JSON response and vice
// versa. v1 paths are frozen wire-compatible — bodies are parsed as
// JSON whatever the Content-Type says, exactly as before the binary
// format existed. Error responses are always the JSON envelope,
// regardless of Accept: a client that cannot parse its own error is
// debugging blind, and every client already speaks JSON.
//
// The artifact content hash is defined over canonical JSON bytes no
// matter how the request traveled (see wire.CompileRequest.Canonical),
// so a binary-fed compile and a JSON-fed compile of the same loop land
// on the same artifact, cache entry, and ring owner.

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"sync"

	"ltsp/internal/ir"
	"ltsp/internal/wire"
	"ltsp/internal/wire/binary"
)

// encoding classifies a request body or response preference.
type encoding byte

const (
	encJSON encoding = iota
	encBinary
	encUnknown
)

// requestEncoding classifies the request body from its Content-Type.
// Only /v2 paths negotiate: an unknown Content-Type there is rejected
// with 415 rather than misparsed.
func requestEncoding(r *http.Request) encoding {
	if !strings.HasPrefix(r.URL.Path, "/v2/") {
		return encJSON
	}
	ct := r.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	switch strings.TrimSpace(ct) {
	case "", "application/json", "text/json":
		return encJSON
	case binary.ContentType:
		return encBinary
	}
	return encUnknown
}

// wantsBinary reports whether the client asked for a binary response
// body. Successful /v2 responses honor it; errors stay JSON.
func wantsBinary(r *http.Request) bool {
	return strings.HasPrefix(r.URL.Path, "/v2/") &&
		strings.Contains(r.Header.Get("Accept"), binary.ContentType)
}

// rejectMedia emits the 415 envelope for a Content-Type the server does
// not speak.
func rejectMedia(w http.ResponseWriter, r *http.Request) {
	writeError(w, http.StatusUnsupportedMediaType, wire.CodeUnsupportedMedia,
		"unsupported Content-Type %q (use application/json or %s)",
		r.Header.Get("Content-Type"), binary.ContentType)
}

// bodyPool recycles request-body buffers across requests; readBody and
// putBody are the only producers/consumers.
var bodyPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func putBody(b *bytes.Buffer) {
	if b == nil || b.Cap() > 1<<20 {
		return // don't let one huge body pin memory in the pool forever
	}
	b.Reset()
	bodyPool.Put(b)
}

// readBody slurps the request body through MaxBytesReader into a pooled
// buffer. On failure the error response has already been written.
// Callers must putBody the buffer when done with its bytes.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) (*bytes.Buffer, bool) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	buf := bodyPool.Get().(*bytes.Buffer)
	if _, err := buf.ReadFrom(body); err != nil {
		putBody(buf)
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.metrics.Rejected.Add(1)
			writeError(w, http.StatusRequestEntityTooLarge, wire.CodeTooLarge,
				"body exceeds %d bytes", s.cfg.MaxBodyBytes)
			return nil, false
		}
		writeError(w, http.StatusBadRequest, wire.CodeInvalidRequest,
			"unreadable request body: %v", err)
		return nil, false
	}
	return buf, true
}

// decodeJSONBody parses a JSON body with the same tolerance the
// streaming decoder had (a single top-level value is consumed; the
// error wording matches encoding/json).
func decodeJSONBody(w http.ResponseWriter, body []byte, v any) bool {
	if err := json.NewDecoder(bytes.NewReader(body)).Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, wire.CodeInvalidRequest,
			"malformed request body: %v", err)
		return false
	}
	return true
}

// writeBinaryDecodeError maps a binary-frame decode failure onto the
// same envelope codes the JSON decode path produces for the equivalent
// failure: version skew → unsupported_version, a loop that decoded but
// failed semantic validation → invalid_loop, anything else (bad magic,
// truncated or oversized frame, malformed payload) → invalid_request.
func writeBinaryDecodeError(w http.ResponseWriter, err error) {
	var inv *ir.InvalidLoopError
	switch {
	case errors.Is(err, binary.ErrVersion):
		writeError(w, http.StatusBadRequest, wire.CodeUnsupportedVersion, "binary request: %v", err)
	case errors.As(err, &inv):
		writeError(w, http.StatusBadRequest, wire.CodeInvalidLoop, "binary request: %v", err)
	default:
		writeError(w, http.StatusBadRequest, wire.CodeInvalidRequest, "binary request: %v", err)
	}
}

// writeBinary emits a 200 response with a binary frame body.
func writeBinary(w http.ResponseWriter, frame []byte) int {
	w.Header().Set("Content-Type", binary.ContentType)
	w.WriteHeader(http.StatusOK)
	n, _ := w.Write(frame)
	return n
}

// writeCompileResponse writes a compile response in the negotiated
// encoding. Only successful responses can be binary; callers route
// errors through writeError, which always emits the JSON envelope.
func writeCompileResponse(w http.ResponseWriter, bin bool, status int, resp *CompileResponse) {
	if bin && status == http.StatusOK {
		writeBinary(w, binary.EncodeCompileResponse(nil, resp))
		return
	}
	writeJSON(w, status, resp)
}

// The hot map: prerendered responses keyed by the SHA-256 of the raw
// request bytes. A repeat of a byte-identical /v2/compile body skips
// body decoding, canonicalization, hashing, the worker pool and
// response encoding entirely — the bytes already rendered for the
// previous identical request are written back out. Entries are rendered
// with Cached=true (a hot serve is by definition a cache serve) in both
// encodings, so either Accept preference is a plain byte copy.
//
// The map is content-addressed by request bytes and compilation is
// deterministic, so entries never go stale; the bound below only caps
// memory. Traced requests bypass the hot path so their span timelines
// keep showing the real cache layers.
const (
	hotMaxEntries  = 256
	hotMaxBody     = 64 << 10 // largest request body eligible for the hot map
	hotMaxRendered = 1 << 20  // largest rendered response retained
)

type hotEntry struct {
	json []byte // exactly what writeJSON(200, resp) would write
	bin  []byte // binary.EncodeCompileResponse of the same response
}

type hotCache struct {
	mu sync.RWMutex
	m  map[[sha256.Size]byte]*hotEntry
}

func (h *hotCache) get(key [sha256.Size]byte) *hotEntry {
	h.mu.RLock()
	e := h.m[key]
	h.mu.RUnlock()
	return e
}

func (h *hotCache) put(key [sha256.Size]byte, e *hotEntry) {
	h.mu.Lock()
	if h.m == nil {
		h.m = make(map[[sha256.Size]byte]*hotEntry, hotMaxEntries)
	}
	if _, ok := h.m[key]; !ok && len(h.m) >= hotMaxEntries {
		for k := range h.m { // cap memory: drop an arbitrary entry
			delete(h.m, k)
			break
		}
	}
	h.m[key] = e
	h.mu.Unlock()
}

// hotKeyOf derives the hot-map key: the body hash, domain-separated by
// the body encoding (the same bytes mean different requests under
// different Content-Types).
func hotKeyOf(enc encoding, body []byte) [sha256.Size]byte {
	key := sha256.Sum256(body)
	key[sha256.Size-1] ^= byte(enc)
	return key
}

// serveHot writes the prerendered response for key, if present, in the
// requested encoding. It reports whether the request was served.
func (s *Server) serveHot(w http.ResponseWriter, key [sha256.Size]byte, bin bool) bool {
	e := s.hot.get(key)
	if e == nil {
		return false
	}
	body, ct := e.json, "application/json"
	if bin {
		body, ct = e.bin, binary.ContentType
	}
	w.Header().Set("Content-Type", ct)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
	return true
}

// storeHot renders resp in both encodings (stamped Cached=true: any
// future serve of this entry is a cache serve) and installs it under
// key.
func (s *Server) storeHot(key [sha256.Size]byte, resp *CompileResponse) {
	r := *resp
	r.Cached = true
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if enc.Encode(&r) != nil || buf.Len() > hotMaxRendered {
		return
	}
	s.hot.put(key, &hotEntry{
		json: bytes.Clone(buf.Bytes()),
		bin:  binary.EncodeCompileResponse(nil, &r),
	})
}
