package server

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Prometheus text exposition (format version 0.0.4), hand-rendered from
// the same metricsJSON snapshot the JSON form serves — both forms are
// built from one snapshot per scrape, so their counts and sums agree
// exactly. GET /metrics negotiates it on Accept: text/plain (which a
// Prometheus scraper always sends); JSON stays the default.

// PromContentType is the Content-Type of the Prometheus text form.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// wantsPromText reports whether an Accept header negotiates the
// Prometheus text form. Anything naming text/plain (a Prometheus
// scraper's Accept always does) selects it; absent, */* or JSON keep
// the default JSON document.
func wantsPromText(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mt, _, _ := strings.Cut(strings.TrimSpace(part), ";")
		if mt == "text/plain" {
			return true
		}
	}
	return false
}

// promWriter accumulates exposition lines, remembering the first write
// error so call sites stay linear.
type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// counter emits one counter family.
func (p *promWriter) counter(name, help string, v int64) {
	p.printf("# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

// gauge emits one gauge family.
func (p *promWriter) gauge(name, help string, v float64) {
	p.printf("# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, formatBound(v))
}

// histogram emits one histogram family, optionally with a fixed label
// pair on every sample (the per-stage family keys its histograms by a
// stage label). The cumulative bucket counts come straight from the
// snapshot's le_ map — the very numbers the JSON form reports.
func (p *promWriter) histogram(name, help, labelKey, labelVal string, h histogramJSON, first bool) {
	if first {
		p.printf("# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	}
	label := func(extra string) string {
		switch {
		case labelKey == "" && extra == "":
			return ""
		case labelKey == "":
			return "{" + extra + "}"
		case extra == "":
			return fmt.Sprintf("{%s=%q}", labelKey, labelVal)
		default:
			return fmt.Sprintf("{%s=%q,%s}", labelKey, labelVal, extra)
		}
	}
	for _, ub := range latencyBucketsMs {
		b := formatBound(ub)
		p.printf("%s_bucket%s %d\n", name, label(`le="`+b+`"`), h.Buckets["le_"+b])
	}
	p.printf("%s_bucket%s %d\n", name, label(`le="+Inf"`), h.Buckets["le_+Inf"])
	p.printf("%s_sum%s %s\n", name, label(""), formatBound(h.SumMs))
	p.printf("%s_count%s %d\n", name, label(""), h.Count)
}

// writePrometheus renders the full snapshot. Histogram bounds (and so
// the le labels, sums and means) are in milliseconds, matching the
// JSON document's latency_bounds_ms; the _ms suffix on every family
// makes the unit explicit.
func writePrometheus(w io.Writer, m *metricsJSON) error {
	p := &promWriter{w: w}

	p.gauge("ltspd_uptime_seconds", "Seconds since the server started.", m.UptimeSeconds)
	p.printf("# HELP ltspd_build_info Build metadata (value is always 1).\n"+
		"# TYPE ltspd_build_info gauge\nltspd_build_info{version=%q,go=%q} 1\n",
		m.BuildInfo.Version, m.BuildInfo.Go)

	p.counter("ltspd_compile_requests_total", "Compile requests received.", m.CompileRequests)
	p.counter("ltspd_compile_errors_total", "Compile requests that failed.", m.CompileErrors)
	p.counter("ltspd_simulate_requests_total", "Simulate requests received.", m.SimulateRequests)
	p.counter("ltspd_simulate_errors_total", "Simulate requests that failed.", m.SimulateErrors)
	p.counter("ltspd_batch_requests_total", "Compile-batch requests received.", m.BatchRequests)
	p.counter("ltspd_batch_items_total", "Loops submitted through compile batches.", m.BatchItems)
	p.counter("ltspd_batch_item_errors_total", "Batch items that failed.", m.BatchItemErrors)
	p.counter("ltspd_rejected_total", "Requests rejected before doing work.", m.Rejected)
	p.counter("ltspd_shed_total", "Requests rejected by deadline-aware admission control.", m.Shed)
	p.counter("ltspd_timeouts_total", "Requests abandoned at their deadline.", m.Timeouts)
	p.gauge("ltspd_in_flight", "Requests currently holding a worker slot.", float64(m.InFlight))

	p.counter("ltspd_cache_hits_total", "Artifact-cache hits.", m.CacheHits)
	p.counter("ltspd_cache_dedups_total", "Requests coalesced onto an in-flight compile.", m.CacheDedups)
	p.counter("ltspd_cache_misses_total", "Compilations actually executed.", m.CacheMisses)
	p.counter("ltspd_cache_evictions_total", "Artifacts evicted from the memory cache.", m.CacheEvictions)
	p.gauge("ltspd_cache_entries", "Artifacts in the memory cache.", float64(m.CacheEntries))
	p.gauge("ltspd_cache_bytes", "Serialized bytes in the memory cache.", float64(m.CacheBytes))
	p.counter("ltspd_disk_hits_total", "Artifacts served from the persistent store.", m.DiskHits)
	p.counter("ltspd_disk_misses_total", "Persistent-store lookups that missed.", m.DiskMisses)
	p.counter("ltspd_disk_write_errors_total", "Failed artifact write-throughs.", m.DiskWriteErrors)
	p.counter("ltspd_artifact_requests_total", "GET /v2/artifacts serves (peer cache-fill traffic).", m.ArtifactRequests)
	p.counter("ltspd_materializations_total", "Thin artifacts recompiled on demand.", m.Materializations)
	p.printf("# HELP ltspd_artifact_bytes_total Artifact envelope bytes served, by negotiated wire encoding.\n" +
		"# TYPE ltspd_artifact_bytes_total counter\n")
	p.printf("ltspd_artifact_bytes_total{encoding=\"json\"} %d\n", m.ArtifactBytesJSON)
	p.printf("ltspd_artifact_bytes_total{encoding=\"binary\"} %d\n", m.ArtifactBytesBinary)
	p.printf("# HELP ltspd_peer_fill_bytes_total Artifact envelope bytes received by peer cache-fills, by wire encoding.\n" +
		"# TYPE ltspd_peer_fill_bytes_total counter\n")
	p.printf("ltspd_peer_fill_bytes_total{encoding=\"json\"} %d\n", m.PeerBytesJSON)
	p.printf("ltspd_peer_fill_bytes_total{encoding=\"binary\"} %d\n", m.PeerBytesBinary)
	p.counter("ltspd_verify_runs_total", "Compilations independently verified.", m.VerifyRuns)
	p.counter("ltspd_verify_failures_total", "Verifications that rejected a compilation.", m.VerifyFailures)
	p.counter("ltspd_panics_recovered_total", "Panics contained at a recovery boundary.", m.PanicsRecovered)

	p.printf("# HELP ltspd_compile_outcomes_total Compilations by pipeliner outcome.\n" +
		"# TYPE ltspd_compile_outcomes_total counter\n")
	for _, oc := range []struct {
		k string
		v int64
	}{
		{"pipelined", m.CompileOutcomes.Pipelined},
		{"fallback_reduced_latency", m.CompileOutcomes.ReducedLatency},
		{"fallback_raised_ii", m.CompileOutcomes.RaisedII},
		{"sequential", m.CompileOutcomes.Sequential},
	} {
		p.printf("ltspd_compile_outcomes_total{outcome=%q} %d\n", oc.k, oc.v)
	}
	if len(m.CompileOutcomesByBackend) > 0 {
		p.printf("# HELP ltspd_compile_outcomes_by_backend_total Compilations by scheduling backend and pipeliner outcome.\n" +
			"# TYPE ltspd_compile_outcomes_by_backend_total counter\n")
		backends := make([]string, 0, len(m.CompileOutcomesByBackend))
		for b := range m.CompileOutcomesByBackend {
			backends = append(backends, b)
		}
		sort.Strings(backends)
		for _, b := range backends {
			oc := m.CompileOutcomesByBackend[b]
			for _, kv := range []struct {
				k string
				v int64
			}{
				{"pipelined", oc.Pipelined},
				{"fallback_reduced_latency", oc.ReducedLatency},
				{"fallback_raised_ii", oc.RaisedII},
				{"sequential", oc.Sequential},
			} {
				p.printf("ltspd_compile_outcomes_by_backend_total{backend=%q,outcome=%q} %d\n", b, kv.k, kv.v)
			}
		}
	}

	p.histogram("ltspd_compile_latency_ms", "Compile request latency (milliseconds).", "", "", m.CompileLatency, true)
	p.histogram("ltspd_simulate_latency_ms", "Simulate request latency (milliseconds).", "", "", m.SimulateLatency, true)
	p.histogram("ltspd_batch_latency_ms", "Compile-batch request latency (milliseconds).", "", "", m.BatchLatency, true)

	for i, st := range []struct {
		name string
		h    histogramJSON
	}{
		{"queue_wait", m.Stages.QueueWait},
		{"mem_lookup", m.Stages.MemLookup},
		{"disk_read", m.Stages.DiskRead},
		{"peer_leg", m.Stages.PeerLeg},
		{"compile", m.Stages.Compile},
		{"verify", m.Stages.Verify},
	} {
		p.histogram("ltspd_stage_latency_ms", "Per-stage request latency (milliseconds), by pipeline stage.",
			"stage", st.name, st.h, i == 0)
	}

	if m.Cluster != nil {
		p.counter("ltspd_peer_hits_total", "Artifacts obtained from a cluster peer.", m.Cluster.PeerHits)
		p.counter("ltspd_peer_misses_total", "Peer cache-fills that came back empty.", m.Cluster.PeerMisses)
		p.counter("ltspd_peer_errors_total", "Individual failed peer fetches.", m.Cluster.PeerErrors)
		p.histogram("ltspd_peer_fill_latency_ms", "Successful peer cache-fill latency (milliseconds).",
			"", "", m.Cluster.FillLatency, true)
		p.gauge("ltspd_cluster_peers", "Peers in the consistent-hash ring.", float64(m.Cluster.Peers))
		p.gauge("ltspd_cluster_peers_alive", "Ring peers currently considered alive.", float64(m.Cluster.PeersAlive))
		p.gauge("ltspd_cluster_peers_dead", "Ring peers ejected by health tracking.", float64(m.Cluster.PeersDead))
		p.counter("ltspd_cluster_ring_swaps_total", "Atomic ring replacements from membership changes.", m.Cluster.RingSwaps)
		p.counter("ltspd_cluster_resolve_errors_total", "Membership source resolutions that failed.", m.Cluster.ResolveErrors)
		p.counter("ltspd_cluster_repair_runs_total", "Read-repair rounds launched.", m.Cluster.RepairRuns)
		p.counter("ltspd_cluster_repair_pushes_total", "Artifacts pushed to under-replicated peers.", m.Cluster.RepairPushes)
		p.counter("ltspd_cluster_repair_skipped_total", "Read-repair probes that found the replica already present.", m.Cluster.RepairSkipped)
		p.counter("ltspd_cluster_repair_dropped_total", "Read-repair rounds dropped by the token budget.", m.Cluster.RepairDropped)
		p.counter("ltspd_cluster_repair_errors_total", "Failed read-repair probes or pushes.", m.Cluster.RepairErrors)
		p.counter("ltspd_cluster_sync_runs_total", "Anti-entropy rounds run.", m.Cluster.SyncRuns)
		p.counter("ltspd_cluster_sync_pulls_total", "Artifacts pulled by anti-entropy.", m.Cluster.SyncPulls)
		p.counter("ltspd_cluster_sync_errors_total", "Failed anti-entropy exchanges.", m.Cluster.SyncErrors)
	}
	if m.Provenance != nil {
		p.counter("ltspd_provenance_records_total", "Records appended to the provenance chain.", m.Provenance.Records)
		p.gauge("ltspd_provenance_batches", "Completed Merkle batches in the provenance chain.", float64(m.Provenance.Batches))
		p.counter("ltspd_provenance_dropped_total", "Provenance records lost to queue overflow.", m.Provenance.Dropped)
		p.counter("ltspd_provenance_failures_total", "Store entries quarantined for diverging from their provenance record.", m.Provenance.Failures)
		p.counter("ltspd_provenance_peer_mismatches_total", "Anti-entropy checksum disagreements with peers.", m.Provenance.PeerMismatches)
	}
	if m.Disk != nil {
		p.gauge("ltspd_store_entries", "Artifacts in the persistent store.", float64(m.Disk.Entries))
		p.gauge("ltspd_store_bytes", "Bytes in the persistent store.", float64(m.Disk.Bytes))
		p.counter("ltspd_store_hits_total", "Persistent-store reads that hit.", m.Disk.Hits)
		p.counter("ltspd_store_misses_total", "Persistent-store reads that missed.", m.Disk.Misses)
		p.counter("ltspd_store_writes_total", "Persistent-store writes.", m.Disk.Writes)
		p.counter("ltspd_store_evictions_total", "Persistent-store budget evictions.", m.Disk.Evictions)
		p.counter("ltspd_store_corrupt_total", "Corrupt store files detected and deleted.", m.Disk.Corrupt)
	}
	return p.err
}
