package server

import (
	"container/list"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ltsp"
	"ltsp/internal/obs"
	"ltsp/internal/store"
	"ltsp/internal/wire"
)

// Artifact is one cached compilation. A "full" artifact was compiled in
// this process and carries the executable program plus the live decision
// trace; a "thin" artifact was filled from the disk store or a cluster
// peer and carries the serialized compile response and trace instead —
// enough to answer compile and trace requests without recompiling. A
// thin artifact is materialized (recompiled from its canonical request)
// lazily, only when something needs the executable program (simulate).
type Artifact struct {
	// Compiled is the executable compilation; nil for thin artifacts.
	Compiled *ltsp.Compiled
	// Trace is the live decision trace (full artifacts).
	Trace *obs.Trace

	// Request is the canonical compile request the artifact answers —
	// the preimage of the content hash. Always retained: it is what peer
	// cache-fill serves and what materialization recompiles.
	Request json.RawMessage
	// Response is the serialized compile response (thin artifacts; also
	// set on full artifacts once persisted, so repeated serves and peer
	// fills skip re-marshaling).
	Response *wire.CompileResponse
	// TraceRaw is the serialized decision trace (thin artifacts).
	TraceRaw json.RawMessage
	// Verify is the verification metadata recorded at compile time.
	Verify store.VerifyMeta
	// CreatedUnix is when the artifact was first compiled (Unix
	// seconds). Retained so an artifact served to a peer carries the
	// same metadata — and encodes to the same bytes — whether it comes
	// from memory or from the disk store.
	CreatedUnix int64
	// Size is the artifact's byte-accounting weight: the total size of
	// its serialized sections, identical to what the entry occupies (or
	// would occupy) in the disk store, so the in-memory LRU and the disk
	// store report commensurable size metrics.
	Size int64
}

// Thin reports whether the artifact lacks an executable program (it was
// filled from disk or a peer and has not been materialized).
func (a *Artifact) Thin() bool { return a.Compiled == nil }

// ArtifactCache is a content-addressed, LRU-evicting cache of compiled
// loop artifacts keyed by the canonical request hash (wire.CompileRequest.
// Hash). Concurrent requests for the same key are deduplicated: one
// compilation runs, the rest wait for its result (singleflight).
//
// Cached *Artifact values are shared across requests; they are read-only
// after compilation (simulation keeps all mutable state in its own
// interp.State), so no copy is made on lookup.
type ArtifactCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	entries  map[string]*list.Element
	inflight map[string]*flightCall
	bytes    int64 // sum of cached artifacts' Size
	metrics  *Metrics
}

type cacheEntry struct {
	key  string
	val  *Artifact
	size int64
}

// flightCall is one in-flight computation. Its context (the one fn
// receives) is detached from any single request and canceled only when
// every interested waiter has given up — the refcount covers the creator
// plus each deduplicated waiter. That is what makes hedged requests safe
// to cancel: the losing hedge releases its reference, but the flight
// keeps running as long as anyone still wants the artifact.
type flightCall struct {
	done   chan struct{}
	val    *Artifact
	err    error
	refs   atomic.Int64
	cancel context.CancelFunc
}

// release drops one waiter reference, canceling the computation when the
// last interested waiter is gone.
func (f *flightCall) release() {
	if f.refs.Add(-1) == 0 {
		f.cancel()
	}
}

// NewArtifactCache creates a cache holding at most capacity artifacts
// (capacity <= 0 disables storage but keeps singleflight deduplication).
func NewArtifactCache(capacity int, m *Metrics) *ArtifactCache {
	return &ArtifactCache{
		capacity: capacity,
		ll:       list.New(),
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*flightCall),
		metrics:  m,
	}
}

// Len returns the number of cached artifacts.
func (c *ArtifactCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// CacheStats describes the cache's current contents. Bytes uses the same
// accounting as the disk store (the serialized entry size), so /metrics
// reports commensurable size/entries numbers for both layers.
type CacheStats struct {
	Entries  int   `json:"entries"`
	Bytes    int64 `json:"bytes"`
	Capacity int   `json:"capacity"`
}

// Stats returns a snapshot of the cache's contents accounting.
func (c *ArtifactCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Entries: c.ll.Len(), Bytes: c.bytes, Capacity: c.capacity}
}

// Add inserts an artifact under key (most recently used), evicting LRU
// entries beyond capacity. It is the cache-fill path for artifacts that
// arrived outside a compile flight (a disk hit on the simulate or trace
// path); an existing entry is replaced in place.
func (c *ArtifactCache) Add(key string, val *Artifact) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.insertLocked(key, val)
}

// Replace swaps the artifact stored under key (preserving its LRU
// position) if the key is present — the materialization path upgrades a
// thin artifact to its compiled form in place. It does not touch hit or
// miss counters.
func (c *ArtifactCache) Replace(key string, val *Artifact) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		ce := el.Value.(*cacheEntry)
		c.bytes += val.Size - ce.size
		ce.val, ce.size = val, val.Size
	}
}

// insertLocked pushes a new entry (replacing in place if the key landed
// in the cache through another path meanwhile) and enforces capacity.
// Caller holds c.mu and has checked capacity > 0.
func (c *ArtifactCache) insertLocked(key string, val *Artifact) {
	if el, ok := c.entries[key]; ok {
		ce := el.Value.(*cacheEntry)
		c.bytes += val.Size - ce.size
		ce.val, ce.size = val, val.Size
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&cacheEntry{key: key, val: val, size: val.Size})
	c.entries[key] = el
	c.bytes += val.Size
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		ce := oldest.Value.(*cacheEntry)
		c.ll.Remove(oldest)
		delete(c.entries, ce.key)
		c.bytes -= ce.size
		c.metrics.CacheEvictions.Add(1)
	}
}

// Get returns the cached artifact for key, if present, marking it
// recently used.
func (c *ArtifactCache) Get(key string) (*Artifact, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.metrics.CacheHits.Add(1)
		return el.Value.(*cacheEntry).val, true
	}
	return nil, false
}

// Peek returns the cached artifact for key without touching the LRU order
// or the hit counters — introspection reads (the trace endpoint) must not
// perturb eviction behaviour or the cache metrics the compile path
// reports.
func (c *ArtifactCache) Peek(key string) (*Artifact, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		return el.Value.(*cacheEntry).val, true
	}
	return nil, false
}

// runFlight invokes fn with panic containment. Without it, a panicking
// computation would escape GetOrCompute with the in-flight entry still
// registered and its done channel never closed — every current and future
// waiter on the key would block forever. The panic becomes an error
// delivered to all waiters instead.
func runFlight(fctx context.Context, fn func(context.Context) (*Artifact, error)) (art *Artifact, err error) {
	defer func() {
		if r := recover(); r != nil {
			art, err = nil, fmt.Errorf("in-flight computation panicked: %v", r)
		}
	}()
	return fn(fctx)
}

// GetOrCompute returns the artifact for key, computing it with fn on a
// miss. The bool result reports whether the artifact came from the cache
// (a completed entry or an in-flight computation started by another
// request) rather than from this call's own fn. Errors are returned to
// every waiter and never cached.
//
// ctx is the caller's interest in the result, not the computation's
// lifetime: fn receives a flight context that stays alive while ANY
// waiter (creator or deduplicated) still wants the artifact and is
// canceled once the last one gives up, so abandoned compilations stop
// cooperatively instead of burning a worker. A waiter whose own ctx ends
// while an identical computation is in flight returns ctx.Err()
// immediately without dooming the flight for the others.
func (c *ArtifactCache) GetOrCompute(ctx context.Context, key string, fn func(context.Context) (*Artifact, error)) (*Artifact, bool, error) {
	// The mem_lookup stage histogram is observed at the three lookup-exit
	// points below — hit, joined an in-flight computation, registered a
	// new flight — never across a dedup wait, so it measures the lookup
	// itself, not the coalesced computation.
	lookupStart := time.Now()
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.metrics.CacheHits.Add(1)
		v := el.Value.(*cacheEntry).val
		c.mu.Unlock()
		c.metrics.StageMemLookup.Observe(time.Since(lookupStart))
		return v, true, nil
	}
	if call, ok := c.inflight[key]; ok {
		c.metrics.CacheDedups.Add(1)
		call.refs.Add(1)
		c.mu.Unlock()
		c.metrics.StageMemLookup.Observe(time.Since(lookupStart))
		select {
		case <-call.done:
			call.release()
			return call.val, true, call.err
		case <-ctx.Done():
			call.release()
			return nil, false, ctx.Err()
		}
	}
	fctx, cancel := context.WithCancel(context.Background())
	call := &flightCall{done: make(chan struct{}), cancel: cancel}
	call.refs.Store(1)
	c.inflight[key] = call
	c.metrics.CacheMisses.Add(1)
	c.mu.Unlock()
	c.metrics.StageMemLookup.Observe(time.Since(lookupStart))

	// The creator's own reference is released when its ctx ends (freeing
	// the flight to stop if nobody else is waiting) or, at the latest,
	// when fn returns.
	stop := context.AfterFunc(ctx, call.release)
	call.val, call.err = runFlight(fctx, fn)
	if stop() {
		call.release()
	}
	cancel() // flight over either way; free the context's resources

	c.mu.Lock()
	delete(c.inflight, key)
	if call.err == nil && c.capacity > 0 {
		c.insertLocked(key, call.val)
	}
	c.mu.Unlock()
	close(call.done)
	return call.val, false, call.err
}
