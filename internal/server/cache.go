package server

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"ltsp"
	"ltsp/internal/obs"
)

// Artifact is one cached compilation: the compiled program plus the
// decision trace the compiler emitted while producing it. The trace is
// retained with the artifact so GET /v1/artifacts/{hash}/trace can answer
// "why did the pipeliner do that?" for anything the cache still holds.
type Artifact struct {
	Compiled *ltsp.Compiled
	Trace    *obs.Trace
}

// ArtifactCache is a content-addressed, LRU-evicting cache of compiled
// loop artifacts keyed by the canonical request hash (wire.CompileRequest.
// Hash). Concurrent requests for the same key are deduplicated: one
// compilation runs, the rest wait for its result (singleflight).
//
// Cached *Artifact values are shared across requests; they are read-only
// after compilation (simulation keeps all mutable state in its own
// interp.State), so no copy is made on lookup.
type ArtifactCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	entries  map[string]*list.Element
	inflight map[string]*flightCall
	metrics  *Metrics
}

type cacheEntry struct {
	key string
	val *Artifact
}

// flightCall is one in-flight computation. Its context (the one fn
// receives) is detached from any single request and canceled only when
// every interested waiter has given up — the refcount covers the creator
// plus each deduplicated waiter. That is what makes hedged requests safe
// to cancel: the losing hedge releases its reference, but the flight
// keeps running as long as anyone still wants the artifact.
type flightCall struct {
	done   chan struct{}
	val    *Artifact
	err    error
	refs   atomic.Int64
	cancel context.CancelFunc
}

// release drops one waiter reference, canceling the computation when the
// last interested waiter is gone.
func (f *flightCall) release() {
	if f.refs.Add(-1) == 0 {
		f.cancel()
	}
}

// NewArtifactCache creates a cache holding at most capacity artifacts
// (capacity <= 0 disables storage but keeps singleflight deduplication).
func NewArtifactCache(capacity int, m *Metrics) *ArtifactCache {
	return &ArtifactCache{
		capacity: capacity,
		ll:       list.New(),
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*flightCall),
		metrics:  m,
	}
}

// Len returns the number of cached artifacts.
func (c *ArtifactCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Get returns the cached artifact for key, if present, marking it
// recently used.
func (c *ArtifactCache) Get(key string) (*Artifact, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.metrics.CacheHits.Add(1)
		return el.Value.(*cacheEntry).val, true
	}
	return nil, false
}

// Peek returns the cached artifact for key without touching the LRU order
// or the hit counters — introspection reads (the trace endpoint) must not
// perturb eviction behaviour or the cache metrics the compile path
// reports.
func (c *ArtifactCache) Peek(key string) (*Artifact, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		return el.Value.(*cacheEntry).val, true
	}
	return nil, false
}

// runFlight invokes fn with panic containment. Without it, a panicking
// computation would escape GetOrCompute with the in-flight entry still
// registered and its done channel never closed — every current and future
// waiter on the key would block forever. The panic becomes an error
// delivered to all waiters instead.
func runFlight(fctx context.Context, fn func(context.Context) (*Artifact, error)) (art *Artifact, err error) {
	defer func() {
		if r := recover(); r != nil {
			art, err = nil, fmt.Errorf("in-flight computation panicked: %v", r)
		}
	}()
	return fn(fctx)
}

// GetOrCompute returns the artifact for key, computing it with fn on a
// miss. The bool result reports whether the artifact came from the cache
// (a completed entry or an in-flight computation started by another
// request) rather than from this call's own fn. Errors are returned to
// every waiter and never cached.
//
// ctx is the caller's interest in the result, not the computation's
// lifetime: fn receives a flight context that stays alive while ANY
// waiter (creator or deduplicated) still wants the artifact and is
// canceled once the last one gives up, so abandoned compilations stop
// cooperatively instead of burning a worker. A waiter whose own ctx ends
// while an identical computation is in flight returns ctx.Err()
// immediately without dooming the flight for the others.
func (c *ArtifactCache) GetOrCompute(ctx context.Context, key string, fn func(context.Context) (*Artifact, error)) (*Artifact, bool, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.metrics.CacheHits.Add(1)
		v := el.Value.(*cacheEntry).val
		c.mu.Unlock()
		return v, true, nil
	}
	if call, ok := c.inflight[key]; ok {
		c.metrics.CacheDedups.Add(1)
		call.refs.Add(1)
		c.mu.Unlock()
		select {
		case <-call.done:
			call.release()
			return call.val, true, call.err
		case <-ctx.Done():
			call.release()
			return nil, false, ctx.Err()
		}
	}
	fctx, cancel := context.WithCancel(context.Background())
	call := &flightCall{done: make(chan struct{}), cancel: cancel}
	call.refs.Store(1)
	c.inflight[key] = call
	c.metrics.CacheMisses.Add(1)
	c.mu.Unlock()

	// The creator's own reference is released when its ctx ends (freeing
	// the flight to stop if nobody else is waiting) or, at the latest,
	// when fn returns.
	stop := context.AfterFunc(ctx, call.release)
	call.val, call.err = runFlight(fctx, fn)
	if stop() {
		call.release()
	}
	cancel() // flight over either way; free the context's resources

	c.mu.Lock()
	delete(c.inflight, key)
	if call.err == nil && c.capacity > 0 {
		el := c.ll.PushFront(&cacheEntry{key: key, val: call.val})
		c.entries[key] = el
		for c.ll.Len() > c.capacity {
			oldest := c.ll.Back()
			c.ll.Remove(oldest)
			delete(c.entries, oldest.Value.(*cacheEntry).key)
			c.metrics.CacheEvictions.Add(1)
		}
	}
	c.mu.Unlock()
	close(call.done)
	return call.val, false, call.err
}
