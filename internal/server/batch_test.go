package server_test

import (
	"encoding/json"
	"net/http"
	"testing"

	"ltsp/internal/server"
	"ltsp/internal/wire"
)

// TestCompileBatch shards a mixed batch — distinct loops, an exact
// duplicate, and a broken item — and checks per-item results come back
// in request order with per-item errors, shared artifact hashes, and
// singleflight dedup between the duplicates.
func TestCompileBatch(t *testing.T) {
	srv, ts := newTestServer(t, server.Config{PoolSize: 3})

	mk := func(k int64) wire.CompileItem {
		req := compileRequest(t, copyAddLoop(k))
		return wire.CompileItem{Loop: req.Loop, Options: req.Options}
	}
	batch := wire.CompileBatchRequest{
		Version: wire.Version,
		Items: []wire.CompileItem{
			mk(101), mk(102),
			mk(103), mk(103), // identical pair: singleflight or cache hit
			{}, // no loop: per-item error
			mk(104),
		},
	}
	resp, body := post(t, ts.URL+"/v1/compile-batch", &batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %s: %s", resp.Status, body)
	}
	var br server.CompileBatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Items) != len(batch.Items) {
		t.Fatalf("batch returned %d items, want %d", len(br.Items), len(batch.Items))
	}
	for i, it := range br.Items {
		if i == 4 {
			if it.Error == "" || it.CompileResponse != nil {
				t.Fatalf("item 4: want per-item error, got %+v", it)
			}
			continue
		}
		if it.Error != "" || it.CompileResponse == nil {
			t.Fatalf("item %d failed: %q", i, it.Error)
		}
		if !it.Pipelined || it.Hash == "" {
			t.Fatalf("item %d: implausible result %+v", i, it)
		}
	}
	if br.Items[2].Hash != br.Items[3].Hash {
		t.Fatalf("identical items hashed differently: %s vs %s", br.Items[2].Hash, br.Items[3].Hash)
	}
	if br.Items[2].Cached == br.Items[3].Cached {
		t.Fatalf("identical pair: want exactly one compile and one dedup/cache hit, got cached=%v/%v",
			br.Items[2].Cached, br.Items[3].Cached)
	}
	if br.Items[0].Hash == br.Items[1].Hash {
		t.Fatal("distinct loops share a hash")
	}

	// Batch items share the artifact cache with single compiles.
	single, sbody := post(t, ts.URL+"/v1/compile", compileRequest(t, copyAddLoop(101)))
	if single.StatusCode != http.StatusOK {
		t.Fatalf("single compile after batch: %s", single.Status)
	}
	var cr server.CompileResponse
	if err := json.Unmarshal(sbody, &cr); err != nil {
		t.Fatal(err)
	}
	if !cr.Cached || cr.Hash != br.Items[0].Hash {
		t.Fatalf("single compile did not hit the batch's artifact: cached=%v hash=%s want %s",
			cr.Cached, cr.Hash, br.Items[0].Hash)
	}

	m := srv.Metrics()
	if got := m.BatchRequests.Load(); got != 1 {
		t.Errorf("batch_requests = %d, want 1", got)
	}
	if got := m.BatchItems.Load(); got != int64(len(batch.Items)) {
		t.Errorf("batch_items = %d, want %d", got, len(batch.Items))
	}
	if got := m.BatchItemErrors.Load(); got != 1 {
		t.Errorf("batch_item_errors = %d, want 1", got)
	}
	if got := m.InFlight.Load(); got != 0 {
		t.Errorf("in_flight after batch = %d, want 0", got)
	}
}

// TestCompileBatchValidation covers the batch-level rejections.
func TestCompileBatchValidation(t *testing.T) {
	_, ts := newTestServer(t, server.Config{MaxBatchItems: 2})

	item := func(k int64) wire.CompileItem {
		req := compileRequest(t, copyAddLoop(k))
		return wire.CompileItem{Loop: req.Loop, Options: req.Options}
	}
	cases := []struct {
		name string
		req  wire.CompileBatchRequest
		code int
	}{
		{"empty", wire.CompileBatchRequest{Version: wire.Version}, http.StatusBadRequest},
		{"bad version", wire.CompileBatchRequest{Version: 99, Items: []wire.CompileItem{item(1)}}, http.StatusBadRequest},
		{"too many", wire.CompileBatchRequest{Version: wire.Version, Items: []wire.CompileItem{item(1), item(2), item(3)}}, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		resp, body := post(t, ts.URL+"/v1/compile-batch", &tc.req)
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.code, body)
		}
	}
}

// TestCompileBatchLargerThanPool checks a batch wider than the worker
// pool drains fully through the bounded slots.
func TestCompileBatchLargerThanPool(t *testing.T) {
	_, ts := newTestServer(t, server.Config{PoolSize: 2})
	var items []wire.CompileItem
	for k := int64(0); k < 9; k++ {
		req := compileRequest(t, copyAddLoop(200+k))
		items = append(items, wire.CompileItem{Loop: req.Loop, Options: req.Options})
	}
	resp, body := post(t, ts.URL+"/v1/compile-batch", &wire.CompileBatchRequest{Version: wire.Version, Items: items})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %s: %s", resp.Status, body)
	}
	var br server.CompileBatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Items) != len(items) {
		t.Fatalf("returned %d items, want %d", len(br.Items), len(items))
	}
	for i, it := range br.Items {
		if it.Error != "" || it.CompileResponse == nil || it.Hash == "" {
			t.Fatalf("item %d: %+v", i, it)
		}
	}
}
