package core

import (
	"testing"

	"ltsp/internal/interp"
	"ltsp/internal/ir"
	"ltsp/internal/machine"
)

func TestGenSequentialRunningExample(t *testing.T) {
	// Fig. 1: under base latencies the source loop takes three cycles
	// (ld ; add ; st with two stops).
	l, _, _ := exampleLoop(ir.HintNone)
	p, err := GenSequential(machine.Itanium2(), l)
	if err != nil {
		t.Fatal(err)
	}
	if p.Pipelined {
		t.Error("sequential program marked pipelined")
	}
	if len(p.Groups) != 3 {
		t.Errorf("schedule length = %d cycles, want 3 (paper Fig. 1)", len(p.Groups))
	}
}

func TestGenSequentialRAWSpacing(t *testing.T) {
	// A 4-cycle FP producer must be 4 cycles from its consumer.
	l := ir.NewLoop("fp")
	a, b, c := l.NewFR(), l.NewFR(), l.NewFR()
	l.InitF(a, 1)
	l.Append(ir.FMul(b, a, a))
	l.Append(ir.FAdd(c, b, a))
	p, err := GenSequential(machine.Itanium2(), l)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Groups) != 5 {
		t.Errorf("schedule length = %d, want 5 (fmul at 0, fadd at 4)", len(p.Groups))
	}
	if len(p.Groups[0]) != 1 || len(p.Groups[4]) != 1 {
		t.Error("producers/consumers misplaced")
	}
}

func TestGenSequentialWAROrdering(t *testing.T) {
	// A use of a loop-carried value must not be scheduled after this
	// iteration's redefinition writes over it.
	l := ir.NewLoop("war")
	v, w, b := l.NewGR(), l.NewGR(), l.NewGR()
	l.Init(v, 5)
	l.Init(b, 0x1000)
	l.Append(ir.AddI(w, v, 1))  // reads previous v
	l.Append(ir.AddI(v, v, 10)) // in-place update
	l.Append(ir.St(b, w, 8, 8))
	p, err := GenSequential(machine.Itanium2(), l)
	if err != nil {
		t.Fatal(err)
	}
	st, err := interp.Run(p, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Iteration i stores v_i + 1 where v_i = 5 + 10i.
	for i := int64(0); i < 3; i++ {
		want := 5 + 10*i + 1
		if got := st.Mem.Load(0x1000+8*i, 8); got != want {
			t.Errorf("store[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestGenSequentialResourceRows(t *testing.T) {
	// Nine memory ops cannot issue in fewer than three cycles (4 M units).
	l := ir.NewLoop("mem")
	for i := 0; i < 9; i++ {
		b := l.NewGR()
		l.Init(b, int64(0x1000*i+0x100000))
		l.Append(ir.Ld(l.NewGR(), b, 8, 8))
	}
	m := machine.Itanium2()
	p, err := GenSequential(m, l)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Groups) < 3 {
		t.Errorf("schedule length = %d, want >= 3", len(p.Groups))
	}
	for c, g := range p.Groups {
		if len(g) > m.IssueWidth {
			t.Errorf("cycle %d issues %d ops", c, len(g))
		}
		mem := 0
		for _, in := range g {
			if in.Op.IsMem() {
				mem++
			}
		}
		if mem > m.Units[machine.PortM] {
			t.Errorf("cycle %d has %d memory ops", c, mem)
		}
	}
}

func TestGenSequentialRegisterMapping(t *testing.T) {
	l, _, _ := exampleLoop(ir.HintNone)
	p, err := GenSequential(machine.Itanium2(), l)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range p.Instrs() {
		for _, r := range append(in.AllDefs(), in.AllUses()...) {
			if r.Virtual {
				t.Fatalf("virtual register %v leaked into codegen", r)
			}
		}
	}
	if len(p.Setup) != 3 {
		t.Errorf("setup entries = %d, want 3", len(p.Setup))
	}
	if len(p.LiveOut) != 2 {
		t.Errorf("live-out entries = %d, want 2", len(p.LiveOut))
	}
}

func TestGenSequentialUnreferencedLiveOut(t *testing.T) {
	l, _, _ := exampleLoop(ir.HintNone)
	l.LiveOut = append(l.LiveOut, ir.VGR(77))
	if _, err := GenSequential(machine.Itanium2(), l); err == nil {
		t.Error("live-out of an unreferenced register accepted")
	}
}

func TestGenSequentialMemDepOrdering(t *testing.T) {
	// A same-iteration memory dependence with latency forces separation.
	l := ir.NewLoop("md")
	v, bs, bl := l.NewGR(), l.NewGR(), l.NewGR()
	l.Init(bs, 0x1000)
	l.Init(bl, 0x2000)
	l.Init(v, 9)
	l.Append(ir.St(bs, v, 8, 8))
	l.Append(ir.Ld(l.NewGR(), bl, 8, 8))
	l.MemDeps = []ir.MemDep{{From: 0, To: 1, Distance: 0, Latency: 3}}
	p, err := GenSequential(machine.Itanium2(), l)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Groups) < 4 {
		t.Errorf("schedule length = %d, want >= 4 (store at 0, load at 3)", len(p.Groups))
	}
}
