package core

import (
	"context"
	"errors"
	"testing"

	"ltsp/internal/ddg"
	"ltsp/internal/ir"
	"ltsp/internal/machine"
	"ltsp/internal/modsched"
	"ltsp/internal/sched"
)

// cancelLoop is a small pipelinable loop for the cancellation tests.
func cancelLoop() *ir.Loop {
	l := ir.NewLoop("cancel")
	v, bs, bd, r, k := l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR()
	ld := ir.Ld(v, bs, 4, 4)
	ld.Mem.Stride, ld.Mem.StrideBytes = ir.StrideUnit, 4
	l.Append(ld)
	l.Append(ir.Add(r, v, k))
	st := ir.St(bd, r, 4, 4)
	st.Mem.Stride, st.Mem.StrideBytes = ir.StrideUnit, 4
	l.Append(st)
	l.Init(bs, 0x100000)
	l.Init(bd, 0x200000)
	l.Init(k, 1)
	l.LiveOut = []ir.Reg{bs, bd}
	return l
}

// TestPipelineCtxPreCanceled: a context that is already done fails the
// compilation with the context's error before any II is attempted —
// both in the sequential search and the speculative-parallel one.
func TestPipelineCtxPreCanceled(t *testing.T) {
	for _, par := range []int{0, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := PipelineCtx(ctx, cancelLoop(), Options{LatencyTolerant: true, Parallelism: par})
		if err == nil {
			t.Fatalf("parallelism %d: pre-canceled compile succeeded", par)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("parallelism %d: err = %v, want context.Canceled in the chain", par, err)
		}
	}
}

// TestPipelineCtxNilAndBackground: PipelineCtx with a nil or background
// context behaves exactly like Pipeline — cancellation is opt-in.
func TestPipelineCtxNilAndBackground(t *testing.T) {
	want, err := Pipeline(cancelLoop(), Options{LatencyTolerant: true})
	if err != nil {
		t.Fatal(err)
	}
	for name, ctx := range map[string]context.Context{
		"nil":        nil,
		"background": context.Background(),
	} {
		got, err := PipelineCtx(ctx, cancelLoop(), Options{LatencyTolerant: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.FinalII != want.FinalII || got.Stages != want.Stages {
			t.Fatalf("%s: II/stages = %d/%d, want %d/%d", name, got.FinalII, got.Stages, want.FinalII, want.Stages)
		}
	}
}

// TestSearchCancellationStopsClaiming: a cancellation observed by the
// search stops both modes from claiming candidate IIs. The searcher is
// driven directly so the cancellation point is deterministic: the
// context is canceled before the search starts, and the searches must
// return not-done without attempting anything.
func TestSearchCancellationStopsClaiming(t *testing.T) {
	l := cancelLoop()
	m := machine.Itanium2()
	g, err := ddg.Build(l)
	if err != nil {
		t.Fatal(err)
	}
	resII := modsched.ResMII(m, l.Body)
	baseLat := BaseLatFn(m)
	policy := Classify(m, g, resII, g.RecMII(baseLat), true, false)
	polLat := policy.LatFn()
	minII := resII
	if rec := g.RecMII(polLat); rec > minII {
		minII = rec
	}
	maxII := 2*minII + 16

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := &sched.Request{
		Loop: l, Model: m, Graph: g,
		PolLat: polLat, BaseLat: baseLat,
		MinII: minII, MaxII: maxII,
		HaveBoost: true,
	}
	fin := &finisher{l: l, m: m, g: g, policy: policy, polLat: polLat, baseLat: baseLat}
	backend := sched.Heuristic()

	r := sched.SequentialSearch(backend, ctx, req, nil, fin.finish)
	if r.Found || r.LastErr != nil {
		t.Fatalf("sequential under canceled ctx: found=%v err=%v, want not-done with no attempt error", r.Found, r.LastErr)
	}
	if r.Attempts != 0 {
		t.Fatalf("sequential claimed %d attempts after cancellation", r.Attempts)
	}

	r = sched.ParallelSearch(backend, ctx, req, nil, fin.finish, 4)
	if r.Found || r.LastErr != nil {
		t.Fatalf("parallel under canceled ctx: found=%v err=%v", r.Found, r.LastErr)
	}
	if r.Attempts != 0 {
		t.Fatalf("parallel claimed %d attempts after cancellation", r.Attempts)
	}
}
