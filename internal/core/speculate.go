package core

import "ltsp/internal/ir"

// DataSpeculate breaks may-alias memory dependences that end at loads,
// turning the loads into advanced loads (ld.a) validated by a chk.a —
// one of the Recurrence-II-reducing transformations the paper lists in
// Sec. 3.3 ("predicate promotion, riffling, and data speculation are done
// to reduce the recurrence cycle lengths"). Recovery code is not modeled:
// the check always succeeds, which is exact for workloads whose
// "may-alias" references never actually overlap, and optimistic (like the
// hardware fast path) otherwise.
//
// It returns the number of dependences broken. Each affected load gets
// one chk.a appended; the check reads the load's destination, so it
// naturally schedules after the data returns and charges the issue
// bandwidth chk.a costs on real hardware.
func DataSpeculate(l *ir.Loop) int {
	kept := l.MemDeps[:0]
	checked := map[int]bool{}
	broken := 0
	for _, d := range l.MemDeps {
		to := l.Body[d.To]
		if !d.MayAlias || !to.Op.IsLoad() {
			kept = append(kept, d)
			continue
		}
		broken++
		if !checked[d.To] {
			checked[d.To] = true
			chk := ir.Chk(to.Dsts[0])
			chk.Pred = to.Pred
			chk.Comment = "validate advanced load"
			l.Append(chk)
		}
	}
	l.MemDeps = kept
	return broken
}
