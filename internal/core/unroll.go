package core

import (
	"fmt"

	"ltsp/internal/ddg"
	"ltsp/internal/interp"
	"ltsp/internal/ir"
	"ltsp/internal/machine"
	"ltsp/internal/modsched"
	"ltsp/internal/regalloc"
)

// genKernelUnrolled produces a pipelined kernel for a machine *without*
// register rotation, using modulo variable expansion: the kernel holds U
// unrolled copies of the schedule, where U is the longest value lifetime
// in kernel iterations, and every cross-iteration value gets U plain
// registers cycled by copy index. Stage predicates still rotate (the
// predicate file's rotation is cheap and orthogonal); compare-produced
// predicates are expanded into the static predicate area.
//
// This is the paper's related-work observation made executable: "rotating
// registers easily enable clustering of load instances from successive
// iterations ... Without rotating registers, this effect could only be
// achieved with unrolling" — at the cost of U-fold code size and a much
// larger plain-register footprint (see the stats it returns).
func genKernelUnrolled(m *machine.Model, g *ddg.Graph, s *modsched.Schedule) (*interp.Program, int, regalloc.Stats, error) {
	l := g.Loop
	var stats regalloc.Stats
	inPlace := g.InPlaceRegs()

	// Classify virtual registers exactly like the rotating allocator.
	type mveReg struct {
		base  int // first plain register of the U-set
		width int // lifetime in kernel iterations (for stats/diagnostics)
	}
	mve := map[ir.Reg]mveReg{}
	static := map[ir.Reg]int{}

	defID := map[ir.Reg]int{}
	var order []ir.Reg
	for i, in := range l.Body {
		for _, d := range in.AllDefs() {
			if d.Virtual {
				if _, seen := defID[d]; !seen {
					defID[d] = i
					order = append(order, d)
				}
			}
		}
	}
	var invariants []ir.Reg
	seen := map[ir.Reg]bool{}
	for _, in := range l.Body {
		for _, u := range in.AllUses() {
			if u.Virtual && !seen[u] {
				seen[u] = true
				if _, defined := defID[u]; !defined {
					invariants = append(invariants, u)
				}
			}
		}
	}

	// Cross-stage in-place reads are as illegal here as under rotation.
	for i, in := range l.Body {
		for _, u := range in.AllUses() {
			if d, ok := inPlace[u]; ok && d != i && s.Stage(d) != s.Stage(i) {
				return nil, 0, stats, fmt.Errorf("core: %s: body[%d] reads in-place register %s across stages",
					l.Name, i, u)
			}
		}
	}

	// Widths and the unroll factor.
	unroll := 1
	widths := map[ir.Reg]int{}
	for _, v := range order {
		if _, ip := inPlace[v]; ip {
			continue
		}
		maxDelta := 0
		for i := range l.Body {
			for _, u := range l.Body[i].AllUses() {
				if u != v {
					continue
				}
				d, _ := regalloc.UseDelta(l, s, i, v)
				if d < 0 {
					return nil, 0, stats, fmt.Errorf("core: %s: negative delta for %s", l.Name, v)
				}
				if d > maxDelta {
					maxDelta = d
				}
			}
		}
		widths[v] = maxDelta + 1
		if maxDelta+1 > unroll {
			unroll = maxDelta + 1
		}
	}

	// Register assignment over the *whole* plain files (no rotation means
	// the r32+/f32+ regions are ordinary registers).
	next := map[ir.RegClass]int{ir.ClassGR: 1, ir.ClassFR: 2, ir.ClassPR: 1}
	limit := map[ir.RegClass]int{
		ir.ClassGR: interp.NumGR,
		ir.ClassFR: interp.NumFR,
		ir.ClassPR: interp.RotPRLo, // p1-p15: p16+ hold the rotating stage predicates
	}
	take := func(class ir.RegClass, n int) (int, error) {
		base := next[class]
		if base+n > limit[class] {
			return 0, &regalloc.OverflowError{Class: class, Need: base + n - limit[class], Capacity: limit[class]}
		}
		next[class] = base + n
		switch class {
		case ir.ClassGR:
			stats.StaticGR += n
		case ir.ClassFR:
			stats.StaticFR += n
		case ir.ClassPR:
			stats.StaticPR += n
		}
		return base, nil
	}

	for _, v := range order {
		if _, ip := inPlace[v]; ip {
			base, err := take(v.Class, 1)
			if err != nil {
				return nil, 0, stats, err
			}
			static[v] = base
			continue
		}
		base, err := take(v.Class, unroll)
		if err != nil {
			return nil, 0, stats, err
		}
		mve[v] = mveReg{base: base, width: widths[v]}
	}
	for _, v := range invariants {
		base, err := take(v.Class, 1)
		if err != nil {
			return nil, 0, stats, err
		}
		static[v] = base
	}
	stats.RotPR += s.Stages // the stage predicates still rotate

	physDef := func(c int, r ir.Reg) ir.Reg {
		if !r.Virtual {
			return r
		}
		if b, ok := static[r]; ok {
			return ir.Reg{Class: r.Class, N: b}
		}
		mr := mve[r]
		return ir.Reg{Class: r.Class, N: mr.base + c%unroll}
	}
	physUse := func(c, useID int, r ir.Reg) (ir.Reg, error) {
		if !r.Virtual {
			return r, nil
		}
		if b, ok := static[r]; ok {
			return ir.Reg{Class: r.Class, N: b}, nil
		}
		mr, ok := mve[r]
		if !ok {
			return ir.None, fmt.Errorf("core: %s: no MVE set for %s", l.Name, r)
		}
		delta, ok := regalloc.UseDelta(l, s, useID, r)
		if !ok {
			return ir.None, fmt.Errorf("core: %s: %s has no definition", l.Name, r)
		}
		slot := ((c-delta)%unroll + unroll) % unroll
		return ir.Reg{Class: r.Class, N: mr.base + slot}, nil
	}

	ii := s.II
	groups := make([][]*ir.Instr, unroll*ii)
	for c := 0; c < unroll; c++ {
		for i, in := range l.Body {
			k := in.Clone()
			if k.Pred.IsNone() {
				k.Pred = ir.PR(16 + s.Stage(i))
			} else {
				p, err := physUse(c, i, k.Pred)
				if err != nil {
					return nil, 0, stats, err
				}
				k.Pred = p
			}
			for di, d := range k.Dsts {
				if !d.IsNone() {
					k.Dsts[di] = physDef(c, d)
				}
			}
			for si, src := range k.Srcs {
				pu, err := physUse(c, i, src)
				if err != nil {
					return nil, 0, stats, err
				}
				k.Srcs[si] = pu
			}
			slot := c*ii + s.Slot(i)
			groups[slot] = append(groups[slot], k)
		}
	}

	prog := &interp.Program{
		Name:           l.Name,
		Pipelined:      true,
		Groups:         groups,
		Stages:         s.Stages,
		RotateEvery:    ii,
		NoDataRotation: true,
	}
	for _, init := range l.Setup {
		if !init.Reg.Virtual {
			prog.Setup = append(prog.Setup, init)
			continue
		}
		if b, ok := static[init.Reg]; ok {
			e := init
			e.Reg = ir.Reg{Class: init.Reg.Class, N: b}
			prog.Setup = append(prog.Setup, e)
			continue
		}
		mr, ok := mve[init.Reg]
		if !ok {
			continue // initialized but never referenced
		}
		// Loop-carried live-in: the first consumer of source iteration 0
		// reads set slot (stage(def)-1) mod U.
		d := defID[init.Reg]
		carried := false
		for i := range l.Body {
			for _, u := range l.Body[i].AllUses() {
				if u == init.Reg && d >= i {
					carried = true
				}
			}
		}
		if carried {
			slot := ((s.Stage(d)-1)%unroll + unroll) % unroll
			e := init
			e.Reg = ir.Reg{Class: init.Reg.Class, N: mr.base + slot}
			prog.Setup = append(prog.Setup, e)
		}
	}
	for _, r := range l.LiveOut {
		if !r.Virtual {
			prog.LiveOut = append(prog.LiveOut, r)
			continue
		}
		b, ok := static[r]
		if !ok {
			return nil, 0, stats, fmt.Errorf("core: %s: live-out %s is not in a static register", l.Name, r)
		}
		prog.LiveOut = append(prog.LiveOut, ir.Reg{Class: r.Class, N: b})
	}
	return prog, unroll, stats, nil
}
