package core

import (
	"fmt"

	"ltsp/internal/interp"
	"ltsp/internal/ir"
	"ltsp/internal/machine"
)

// GenSequential compiles the loop without pipelining: an acyclic list
// schedule of the body (base latencies, full dispersal constraints) closed
// by br.cloop. All virtual registers receive distinct static physical
// registers — without rotation the rotating regions are ordinary
// registers. This is how loops below the pipelining profitability
// threshold execute, and it reproduces the source-loop timing of the
// paper's Fig. 1.
func GenSequential(m *machine.Model, l *ir.Loop) (*interp.Program, error) {
	if err := l.Verify(); err != nil {
		return nil, err
	}
	// Static assignment: dense per class.
	phys := map[ir.Reg]ir.Reg{}
	next := map[ir.RegClass]int{ir.ClassGR: 1, ir.ClassFR: 2, ir.ClassPR: 1}
	limit := map[ir.RegClass]int{ir.ClassGR: interp.NumGR, ir.ClassFR: interp.NumFR, ir.ClassPR: interp.NumPR}
	assign := func(r ir.Reg) (ir.Reg, error) {
		if !r.Virtual {
			return r, nil
		}
		if p, ok := phys[r]; ok {
			return p, nil
		}
		n := next[r.Class]
		if n >= limit[r.Class] {
			return ir.None, fmt.Errorf("core: %s: out of %s registers in sequential codegen", l.Name, r.Class)
		}
		next[r.Class] = n + 1
		p := ir.Reg{Class: r.Class, N: n}
		phys[r] = p
		return p, nil
	}

	// List scheduling with intra-iteration dependences:
	//   RAW (def before use in program order): t_use >= t_def + latency
	//   WAR (use before def, loop-carried value): t_def >= t_use
	// (reads happen before writes within an issue group).
	n := len(l.Body)
	timeOf := make([]int, n)
	defAt := map[ir.Reg]int{}
	for i, in := range l.Body {
		for _, d := range in.AllDefs() {
			if !d.IsNone() {
				defAt[d] = i
			}
		}
	}
	base := BaseLatFn(m)
	resLat := func(in *ir.Instr, r ir.Reg) int {
		if in.Op.IsLoad() && r == in.Dsts[0] {
			return base(in)
		}
		if in.Op.IsMem() && r == in.BaseReg() {
			return 1
		}
		return m.Latency(in.Op)
	}

	type rowUse struct {
		perPort [machine.NumPorts]int
		total   int
	}
	var rows []rowUse
	rowFits := func(t int, op ir.Op) (machine.Port, bool) {
		for len(rows) <= t {
			rows = append(rows, rowUse{})
		}
		u := &rows[t]
		if u.total >= m.IssueWidth {
			return 0, false
		}
		port, aType := m.PortOf(op)
		if aType {
			if u.perPort[machine.PortI] < m.Units[machine.PortI] {
				return machine.PortI, true
			}
			if u.perPort[machine.PortM] < m.Units[machine.PortM] {
				return machine.PortM, true
			}
			return 0, false
		}
		if u.perPort[port] < m.Units[port] {
			return port, true
		}
		return 0, false
	}

	for i, in := range l.Body {
		earliest := 0
		for _, u := range in.AllUses() {
			if u.IsNone() {
				continue
			}
			d, ok := defAt[u]
			if !ok {
				continue
			}
			if d < i {
				// RAW within iteration.
				if v := timeOf[d] + resLat(l.Body[d], u); v > earliest {
					earliest = v
				}
			}
			// d >= i: loop-carried; the runtime stalls if needed, and the
			// WAR constraint below keeps this iteration's def late enough.
		}
		for _, d := range in.AllDefs() {
			if d.IsNone() {
				continue
			}
			// WAR: every earlier use of d must read before we write.
			for j := 0; j < i; j++ {
				for _, u := range l.Body[j].AllUses() {
					if u == d && timeOf[j] > earliest {
						earliest = timeOf[j]
					}
				}
			}
		}
		// Explicit memory ordering.
		for _, dep := range l.MemDeps {
			if dep.To == i && dep.Distance == 0 {
				if v := timeOf[dep.From] + dep.Latency; v > earliest {
					earliest = v
				}
			}
		}
		t := earliest
		for {
			if port, ok := rowFits(t, in.Op); ok {
				u := &rows[t]
				u.perPort[port]++
				u.total++
				break
			}
			t++
		}
		timeOf[i] = t
	}

	length := 0
	for i := range timeOf {
		if timeOf[i]+1 > length {
			length = timeOf[i] + 1
		}
	}
	groups := make([][]*ir.Instr, length)
	for i, in := range l.Body {
		k := in.Clone()
		if !k.Pred.IsNone() {
			p, err := assign(k.Pred)
			if err != nil {
				return nil, err
			}
			k.Pred = p
		}
		for di, d := range k.Dsts {
			if d.IsNone() {
				continue
			}
			p, err := assign(d)
			if err != nil {
				return nil, err
			}
			k.Dsts[di] = p
		}
		for si, s := range k.Srcs {
			p, err := assign(s)
			if err != nil {
				return nil, err
			}
			k.Srcs[si] = p
		}
		groups[timeOf[i]] = append(groups[timeOf[i]], k)
	}

	prog := &interp.Program{Name: l.Name, Pipelined: false, Groups: groups}
	if l.While != nil {
		qp, err := assign(l.While.Cond)
		if err != nil {
			return nil, err
		}
		prog.WhileQP = qp
	}
	for _, init := range l.Setup {
		if init.Reg.Virtual {
			p, used := phys[init.Reg]
			if !used {
				continue // initialized but never referenced
			}
			prog.Setup = append(prog.Setup, ir.RegInit{Reg: p, Val: init.Val, FVal: init.FVal})
			continue
		}
		prog.Setup = append(prog.Setup, init)
	}
	for _, r := range l.LiveOut {
		if r.Virtual {
			p, used := phys[r]
			if !used {
				return nil, fmt.Errorf("core: %s: live-out %s never referenced by the body", l.Name, r)
			}
			prog.LiveOut = append(prog.LiveOut, p)
			continue
		}
		prog.LiveOut = append(prog.LiveOut, r)
	}
	return prog, nil
}
