package core

import (
	"testing"

	"ltsp/internal/ir"
	"ltsp/internal/machine"
)

// TestKernelOperandRewriting inspects the Fig. 3 kernel instruction by
// instruction: the load writes the blade base, the consumer reads one
// register up, the bases stay static, and the stage predicates count up
// from p16.
func TestKernelOperandRewriting(t *testing.T) {
	l, _, _ := exampleLoop(ir.HintNone)
	c, err := Pipeline(l, Options{})
	if err != nil {
		t.Fatal(err)
	}
	kernel := c.Program.Instrs()
	var ld, add, st *ir.Instr
	for _, in := range kernel {
		switch in.Op {
		case ir.OpLd:
			ld = in
		case ir.OpAdd:
			add = in
		case ir.OpSt:
			st = in
		}
	}
	if ld == nil || add == nil || st == nil {
		t.Fatalf("kernel incomplete:\n%s", c.Program.Listing())
	}
	// Fig. 3 structure: (p16) ld4 rB = [static],4 ; (p17) add rB+2 = rB+1,inv ;
	// (p18) st4 [static] = rB+3,4 — consumers read the producer's register
	// shifted by the stage distance.
	if ld.Pred != ir.PR(16) || add.Pred != ir.PR(17) || st.Pred != ir.PR(18) {
		t.Errorf("stage predicates: %v/%v/%v", ld.Pred, add.Pred, st.Pred)
	}
	if ld.Dsts[0].N < 32 {
		t.Errorf("load destination %v not rotating", ld.Dsts[0])
	}
	if add.Srcs[0].N != ld.Dsts[0].N+1 {
		t.Errorf("add reads %v, want the load's blade + 1 (%d)", add.Srcs[0], ld.Dsts[0].N+1)
	}
	if st.Srcs[0].N != add.Dsts[0].N+1 {
		t.Errorf("store reads %v, want the add's blade + 1", st.Srcs[0])
	}
	if ld.BaseReg().N >= 32 || st.BaseReg().N >= 32 {
		t.Error("post-incremented bases must stay in static registers")
	}
	// The invariant addend is static too.
	if add.Srcs[1].N >= 32 {
		t.Errorf("invariant operand %v in the rotating region", add.Srcs[1])
	}
}

func TestKernelSlotAssignment(t *testing.T) {
	// Instructions land in the group of their scheduled slot.
	l, _, _ := exampleLoop(ir.HintL2)
	c, err := Pipeline(l, Options{LatencyTolerant: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Program.Groups) != c.FinalII {
		t.Errorf("groups = %d, want II = %d", len(c.Program.Groups), c.FinalII)
	}
	n := 0
	for _, g := range c.Program.Groups {
		n += len(g)
	}
	if n != len(l.Body) {
		t.Errorf("kernel has %d instructions, body has %d", n, len(l.Body))
	}
}

func TestKernelCrossStageInPlaceRejected(t *testing.T) {
	// An in-place register read by an instruction that can only land in a
	// different stage must be rejected by codegen (and pipelining then
	// fails since no II fixes it).
	l := ir.NewLoop("xstage")
	acc, x, b, bs := l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR()
	l.Init(acc, 0)
	l.Init(b, 0x1000)
	l.Init(bs, 0x2000)
	ld := ir.Ld(x, b, 8, 8)
	ld.Mem.Hint = ir.HintL3
	l.Append(ld)
	l.Append(ir.Add(acc, acc, x)) // in-place, waits 21 cycles for x
	// A reader of acc forced early by nothing — the scheduler may place it
	// in a different stage than the add. With the long boost the add sits
	// ~21 cycles in, while the store could go anywhere in its window.
	l.Append(ir.St(bs, acc, 8, 8))
	_, err := Pipeline(l, Options{LatencyTolerant: true, MaxII: 4})
	if err == nil {
		// If it compiled, the codegen invariant must hold: reader and
		// definer in the same stage. Verify by recompiling and checking.
		c, _ := Pipeline(l, Options{LatencyTolerant: true, MaxII: 4})
		sd, su := -1, -1
		for i, in := range l.Body {
			if in.Op == ir.OpAdd {
				sd = c.Schedule.Stage(i)
			}
			if in.Op == ir.OpSt {
				su = c.Schedule.Stage(i)
			}
		}
		if sd != su {
			t.Errorf("compiled with in-place reader across stages: %d vs %d", sd, su)
		}
	}
}

func TestKernelSetupMapping(t *testing.T) {
	l, src, dst := exampleLoop(ir.HintNone)
	c, err := Pipeline(l, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The two base inits and the invariant land on static registers.
	vals := map[int64]bool{}
	for _, s := range c.Program.Setup {
		if s.Reg.Class == ir.ClassGR && s.Reg.N >= 32 {
			t.Errorf("setup writes rotating register %v", s.Reg)
		}
		vals[s.Val] = true
	}
	if !vals[src] || !vals[dst] || !vals[1000] {
		t.Errorf("setup values lost: %+v", c.Program.Setup)
	}
}

func TestKernelDroppedUnusedInit(t *testing.T) {
	l, _, _ := exampleLoop(ir.HintNone)
	l.Init(l.NewGR(), 424242) // never referenced
	c, err := Pipeline(l, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range c.Program.Setup {
		if s.Val == 424242 {
			t.Error("unused init survived into the kernel setup")
		}
	}
}

func TestPipelineMaxIIRespected(t *testing.T) {
	// Force an impossible window: RecMII is 2, cap the search below it.
	l := ir.NewLoop("chase")
	pnext, pcur := l.NewGR(), l.NewGR()
	l.Append(ir.Mov(pcur, pnext))
	l.Append(ir.Ld(pnext, pcur, 8, 0))
	l.Init(pnext, 0x1000)
	_ = machine.Itanium2()
	c, err := Pipeline(l, Options{MaxII: 2})
	if err != nil {
		t.Fatalf("RecMII=2 loop must compile at II=2: %v", err)
	}
	if c.FinalII != 2 {
		t.Errorf("II = %d", c.FinalII)
	}
}
