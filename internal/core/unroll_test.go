package core

import (
	"testing"
	"testing/quick"

	"ltsp/internal/interp"
	"ltsp/internal/ir"
	"ltsp/internal/machine"
)

func TestUnrolledRunningExample(t *testing.T) {
	l, src, dst := exampleLoop(ir.HintL3)
	c, err := Pipeline(l, Options{LatencyTolerant: true, NoRotation: true})
	if err != nil {
		t.Fatal(err)
	}
	if c.FinalII != 1 {
		t.Errorf("II = %d", c.FinalII)
	}
	// The load's value lives 22 kernel iterations: the kernel must unroll
	// 22x and the program carries one copy per cycle.
	if c.UnrollFactor < 22 {
		t.Errorf("unroll factor = %d, want >= 22", c.UnrollFactor)
	}
	if len(c.Program.Groups) != c.UnrollFactor*c.FinalII {
		t.Errorf("groups = %d, want U*II = %d", len(c.Program.Groups), c.UnrollFactor*c.FinalII)
	}
	if c.Program.RotateEvery != c.FinalII {
		t.Errorf("RotateEvery = %d, want II", c.Program.RotateEvery)
	}

	// Semantics: identical to the sequential loop at several trips.
	for _, trip := range []int64{1, 3, 10, 50} {
		l2, _, _ := exampleLoop(ir.HintL3)
		seq, err := GenSequential(machine.Itanium2(), l2)
		if err != nil {
			t.Fatal(err)
		}
		memA, memB := interp.NewMemory(), interp.NewMemory()
		seedMemory(memA, src, int(trip))
		seedMemory(memB, src, int(trip))
		stA, err := interp.Run(seq, trip, memA)
		if err != nil {
			t.Fatal(err)
		}
		stB, err := interp.Run(c.Program, trip, memB)
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < trip; i++ {
			a := stA.Mem.Load(dst+4*i, 4)
			b := stB.Mem.Load(dst+4*i, 4)
			if a != b {
				t.Fatalf("trip %d: dst[%d] = %d vs %d (U=%d)", trip, i, a, b, c.UnrollFactor)
			}
		}
	}
}

func TestUnrolledUsesNoGRRotation(t *testing.T) {
	l, _, _ := exampleLoop(ir.HintL2)
	c, err := Pipeline(l, Options{LatencyTolerant: true, NoRotation: true})
	if err != nil {
		t.Fatal(err)
	}
	// No GR/FR operand may sit in a register the hardware would rotate —
	// everything is plain (the r32+ region is used as ordinary registers,
	// but correctness must not depend on rotation). Verify by checking the
	// kernel never *reads* a GR written under a different rotation offset:
	// operationally, all copies' registers are distinct per slot.
	if c.UnrollFactor < 2 {
		t.Fatalf("expected a multi-copy kernel, got U=%d", c.UnrollFactor)
	}
	// Stage predicates are the only rotating state.
	for _, in := range c.Program.Instrs() {
		for _, r := range append(in.AllDefs(), in.AllUses()...) {
			if r.Class == ir.ClassPR && r.N >= 16 {
				continue // rotating stage predicate: allowed
			}
		}
	}
}

func TestUnrolledCodeSizeAndRegisterCost(t *testing.T) {
	// The related-work trade-off: the unrolled kernel replicates the body
	// U times and consumes U plain registers per cross-iteration value,
	// where the rotating kernel holds one copy.
	l1, _, _ := exampleLoop(ir.HintL3)
	rot, err := Pipeline(l1, Options{LatencyTolerant: true})
	if err != nil {
		t.Fatal(err)
	}
	l2, _, _ := exampleLoop(ir.HintL3)
	unr, err := Pipeline(l2, Options{LatencyTolerant: true, NoRotation: true})
	if err != nil {
		t.Fatal(err)
	}
	rotSize := len(rot.Program.Instrs())
	unrSize := len(unr.Program.Instrs())
	if unrSize != rotSize*unr.UnrollFactor {
		t.Errorf("code size: unrolled %d vs rotating %d x U=%d", unrSize, rotSize, unr.UnrollFactor)
	}
	if unr.Assignment.Stats.StaticGR <= rot.Assignment.Stats.StaticGR {
		t.Error("unrolled kernel did not pay a plain-register cost")
	}
}

// TestQuickUnrolledEquivalence extends the keystone property to the
// rotation-free code generator.
func TestQuickUnrolledEquivalence(t *testing.T) {
	f := func(seed int64, sz, tripRaw uint8) bool {
		g := newGenLoop(seed, int(sz%10)+2)
		trip := int64(tripRaw%30) + 1
		opts := Options{LatencyTolerant: true, BoostDelinquent: true, NoRotation: true}
		if err := runBoth(t, g, opts, trip); err != nil {
			t.Errorf("seed=%d trip=%d: %v", seed, trip, err)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 80}
	if testing.Short() {
		cfg.MaxCount = 15
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
