package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"ltsp/internal/ddg"
	"ltsp/internal/interp"
	"ltsp/internal/ir"
	"ltsp/internal/machine"
	"ltsp/internal/modsched"
	"ltsp/internal/obs"
	"ltsp/internal/regalloc"
)

// DefaultParallelism returns the speculative II-search width for callers
// that want the search as wide as the machine allows: the current
// GOMAXPROCS setting.
func DefaultParallelism() int { return runtime.GOMAXPROCS(0) }

// attemptResult is the outcome of the full fallback ladder at one
// candidate II: the hint-latency attempt plus — when register allocation
// was the blocker — the reduced-latency retry at the same II.
type attemptResult struct {
	done     bool
	reduced  bool
	attempts int
	err      error // last failure recorded at this II
	prog     *interp.Program
	sched    *modsched.Schedule
	asn      *regalloc.Assignment
	unroll   int
	loads    []LoadReport
}

// iiSearcher carries the shared inputs of the II search. Every field is
// read-only during the search, which is what makes speculative attempts
// safe: scheduling, register allocation, and code generation never mutate
// the loop, graph, machine model, or policy, and the graph's cycle memo
// is warmed (or left untouched) before the search starts.
type iiSearcher struct {
	// ctx cancels the search cooperatively: both search modes check it
	// before claiming another candidate II. A single scheduling attempt
	// is never interrupted mid-flight, so cancellation granularity is one
	// (II, latency) attempt.
	ctx         context.Context
	l           *ir.Loop
	m           *machine.Model
	g           *ddg.Graph
	policy      *Policy
	polLat      ddg.LatencyFn
	baseLat     ddg.LatencyFn
	minII       int
	budgetRatio int
	haveBoost   bool
	noRotation  bool
}

// tryAt schedules + allocates + generates code at one (II, latency)
// point, accumulating placement counts and the failure (if any) in res.
func (se *iiSearcher) tryAt(res *attemptResult, ii int, lat ddg.LatencyFn, reduced bool, tr *obs.Trace) (done, allocFailed bool) {
	s, ok := modsched.ScheduleAtII(se.m, se.g, ii, lat, modsched.Options{BudgetRatio: se.budgetRatio, Trace: tr})
	if s != nil {
		res.attempts += s.Attempts
	}
	if !ok {
		return false, false
	}
	var prog *interp.Program
	var asn *regalloc.Assignment
	unroll := 1
	if se.noRotation {
		p, u, st, err := genKernelUnrolled(se.m, se.g, s)
		if err != nil {
			if tr.On() {
				tr.Emit(obs.CodegenEvent{II: ii, Err: err.Error()})
			}
			res.err = err
			return false, true
		}
		prog, unroll = p, u
		asn = &regalloc.Assignment{Stats: st, StagePredBase: 16}
	} else {
		a, err := regalloc.AllocateTraced(se.m, se.g, s, tr, reduced)
		if err != nil {
			res.err = err
			if _, overflow := err.(*regalloc.OverflowError); overflow {
				return false, true
			}
			return false, false
		}
		p, err := GenKernel(se.l, s, a)
		if err != nil {
			// Cross-stage in-place reads and similar structural issues:
			// treat like an allocation failure and keep searching.
			if tr.On() {
				tr.Emit(obs.CodegenEvent{II: ii, Err: err.Error()})
			}
			res.err = err
			return false, true
		}
		prog, asn = p, a
	}
	res.prog, res.sched, res.asn = prog, s, asn
	res.unroll = unroll
	res.reduced = reduced
	res.loads = loadReports(se.m, se.g, s, se.policy, lat)
	return true, false
}

// attempt runs the fallback ladder at one II: schedule with the
// hint-derived latencies; when register allocation fails, retry the same
// II with all non-critical latencies reduced to base. Decision events go
// to tr — the main trace in the sequential search, a private buffer for a
// speculative attempt. The result depends only on (ii, shared inputs), so
// it is identical regardless of which search mode runs it.
func (se *iiSearcher) attempt(ii int, tr *obs.Trace) attemptResult {
	res := attemptResult{unroll: 1}
	if ii > se.minII && tr.On() {
		tr.Emit(obs.FallbackEvent{Rung: obs.RungRaiseII, II: ii})
	}
	done, allocFailed := se.tryAt(&res, ii, se.polLat, false, tr)
	if done {
		res.done = true
		return res
	}
	if allocFailed && se.haveBoost {
		if tr.On() {
			tr.Emit(obs.FallbackEvent{Rung: obs.RungReduceLatency, II: ii})
		}
		if done, _ := se.tryAt(&res, ii, se.baseLat, true, tr); done {
			res.done = true
		}
	}
	return res
}

// commit installs the winning attempt into the compilation result.
func (se *iiSearcher) commit(c *Compiled, ii int, res attemptResult) {
	c.Program = res.prog
	c.Schedule = res.sched
	c.Assignment = res.asn
	c.loop = se.l
	c.FinalII = ii
	c.Stages = res.sched.Stages
	c.LatencyReduced = res.reduced
	c.IIBumps = ii - se.minII
	c.UnrollFactor = res.unroll
	c.Loads = res.loads
}

// searchSequential is the paper's search (Sec. 3.3): iterate the II
// upward from MinII, running the fallback ladder at each step, and stop
// at the first II the ladder satisfies.
func (se *iiSearcher) searchSequential(c *Compiled, tr *obs.Trace, maxII int) (bool, error) {
	var lastErr error
	for ii := se.minII; ii <= maxII; ii++ {
		if se.ctx.Err() != nil {
			return false, lastErr
		}
		res := se.attempt(ii, tr)
		c.Attempts += res.attempts
		if res.err != nil {
			lastErr = res.err
		}
		if res.done {
			se.commit(c, ii, res)
			return true, nil
		}
	}
	return false, lastErr
}

// searchParallel speculates on several candidate IIs concurrently and
// commits the lowest feasible one. It reproduces searchSequential
// bit-identically:
//
//   - Workers claim IIs from an atomic counter, so the claimed set is
//     always a dense prefix [minII, ...] in ascending order.
//   - Each attempt is independent and deterministic, so its schedule,
//     events, and failure are exactly what the sequential search would
//     compute at that II.
//   - Events are buffered per attempt and appended to the main trace in
//     II order up to the winner — the order the sequential search emits.
//   - A worker abandons a claimed II only when a strictly lower II has
//     already succeeded (the "cancel losers" rule), so every II at or
//     below the final winner is fully attempted and its attempts/events
//     are accounted, while IIs beyond the winner are discarded exactly as
//     the sequential search never reaches them.
//
// Placement-attempt totals, fallback rungs, and the final error on total
// failure (the last error the sequential search would have kept) are all
// reconstructed from the per-II results.
func (se *iiSearcher) searchParallel(c *Compiled, tr *obs.Trace, maxII, workers int) (bool, error) {
	n := maxII - se.minII + 1
	if workers > n {
		workers = n
	}
	results := make([]attemptResult, n)
	traces := make([]*obs.Trace, n)
	var next atomic.Int64
	var best atomic.Int64 // index of the lowest successful II; n = none yet
	best.Store(int64(n))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if se.ctx.Err() != nil {
					return // search canceled: stop claiming IIs
				}
				i := int(next.Add(1) - 1)
				if i >= n || int64(i) > best.Load() {
					return // out of range, or a lower II already won
				}
				var bt *obs.Trace
				if tr.On() {
					bt = obs.NewScratch()
				}
				res := se.attempt(se.minII+i, bt)
				results[i] = res
				traces[i] = bt
				if res.done {
					for {
						cur := best.Load()
						if int64(i) >= cur || best.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
				}
			}
		}()
	}
	wg.Wait()

	win := int(best.Load())
	last := win
	if win == n {
		last = n - 1 // total failure: every II was attempted
	}
	var lastErr error
	for i := 0; i <= last; i++ {
		c.Attempts += results[i].attempts
		tr.AppendFrom(traces[i])
		if results[i].err != nil {
			lastErr = results[i].err
		}
	}
	// All workers have joined and AppendFrom copied what was merged, so
	// every per-attempt buffer (merged or discarded) can be recycled.
	for _, bt := range traces {
		bt.Recycle()
	}
	if win == n {
		return false, lastErr
	}
	se.commit(c, se.minII+win, results[win])
	return true, nil
}
