package core

import (
	"ltsp/internal/ddg"
	"ltsp/internal/interp"
	"ltsp/internal/ir"
	"ltsp/internal/machine"
	"ltsp/internal/modsched"
	"ltsp/internal/obs"
	"ltsp/internal/regalloc"
	"ltsp/internal/sched"
)

// DefaultParallelism returns the speculative II-search width for callers
// that want the search as wide as the machine allows.
//
// Deprecated: the II search moved behind the sched.Scheduler interface;
// use sched.DefaultParallelism. This alias shim delegates and will be
// removed once external callers migrate.
func DefaultParallelism() int { return sched.DefaultParallelism() }

// kernelPayload carries the compiled artifacts of one completed attempt
// through the scheduler-agnostic search as sched.Candidate.Payload.
type kernelPayload struct {
	prog   *interp.Program
	asn    *regalloc.Assignment
	unroll int
	loads  []LoadReport
}

// finisher runs the post-scheduling pipeline — register allocation and
// kernel generation — on a schedule the backend produced. Every field is
// read-only during the search, which is what makes speculative attempts
// safe: allocation and code generation never mutate the loop, graph,
// machine model, or policy.
type finisher struct {
	l          *ir.Loop
	m          *machine.Model
	g          *ddg.Graph
	policy     *Policy
	polLat     ddg.LatencyFn
	baseLat    ddg.LatencyFn
	noRotation bool
}

// finish allocates registers and generates the kernel at one (II,
// latency) point. It reports allocation-class failures (register
// overflow, structural codegen issues) as AllocFailed so the fallback
// ladder can retry the same II with reduced latencies.
func (f *finisher) finish(ii int, s *modsched.Schedule, reduced bool, tr *obs.Trace) sched.Candidate {
	lat := f.polLat
	if reduced {
		lat = f.baseLat
	}
	var prog *interp.Program
	var asn *regalloc.Assignment
	unroll := 1
	if f.noRotation {
		p, u, st, err := genKernelUnrolled(f.m, f.g, s)
		if err != nil {
			if tr.On() {
				tr.Emit(obs.CodegenEvent{II: ii, Err: err.Error()})
			}
			return sched.Candidate{Err: err, AllocFailed: true}
		}
		prog, unroll = p, u
		asn = &regalloc.Assignment{Stats: st, StagePredBase: 16}
	} else {
		a, err := regalloc.AllocateTraced(f.m, f.g, s, tr, reduced)
		if err != nil {
			_, overflow := err.(*regalloc.OverflowError)
			return sched.Candidate{Err: err, AllocFailed: overflow}
		}
		p, err := GenKernel(f.l, s, a)
		if err != nil {
			// Cross-stage in-place reads and similar structural issues:
			// treat like an allocation failure and keep searching.
			if tr.On() {
				tr.Emit(obs.CodegenEvent{II: ii, Err: err.Error()})
			}
			return sched.Candidate{Err: err, AllocFailed: true}
		}
		prog, asn = p, a
	}
	return sched.Candidate{
		Done: true,
		Payload: &kernelPayload{
			prog:   prog,
			asn:    asn,
			unroll: unroll,
			loads:  loadReports(f.m, f.g, s, f.policy, lat),
		},
	}
}

// commit installs the winning search result into the compilation result.
func (c *Compiled) commit(l *ir.Loop, minII int, r sched.Result) {
	p := r.Payload.(*kernelPayload)
	c.Program = p.prog
	c.Schedule = r.Sched
	c.Assignment = p.asn
	c.loop = l
	c.FinalII = r.II
	c.Stages = r.Sched.Stages
	c.LatencyReduced = r.Reduced
	c.IIBumps = r.II - minII
	c.UnrollFactor = p.unroll
	c.Loads = p.loads
	c.ProvenII = r.Proven
}
