package core

import (
	"strings"
	"testing"

	"ltsp/internal/ir"
)

func TestDiagramRunningExample(t *testing.T) {
	// Paper Fig. 2: II=1, three stages; iteration j's ld at cycle j-1,
	// add at j, st at j+1.
	l, _, _ := exampleLoop(ir.HintNone)
	c, err := Pipeline(l, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := c.Diagram(5)
	if d == "" {
		t.Fatal("empty diagram")
	}
	lines := strings.Split(strings.TrimRight(d, "\n"), "\n")
	// Title + column header + separator + cycles 0..6 (Fig. 2 spans 7
	// cycles for 5 iterations).
	if len(lines) != 3+7 {
		t.Fatalf("diagram rows = %d:\n%s", len(lines), d)
	}
	// Cycle 2 is the first steady-state row: st4 (iter 1), add (iter 2), ld4 (iter 3).
	row := lines[3+2]
	for _, want := range []string{"st4", "add", "ld4"} {
		if !strings.Contains(row, want) {
			t.Errorf("steady-state row missing %q: %s", want, row)
		}
	}
}

func TestDiagramLatencyBuffer(t *testing.T) {
	// Fig. 4: with d=2 the adds trail the loads by three cycles.
	l, _, _ := exampleLoop(ir.HintNone)
	c, err := Pipeline(l, Options{LatencyTolerant: true, ForceLoadLatency: 3})
	if err != nil {
		t.Fatal(err)
	}
	d := c.Diagram(4)
	lines := strings.Split(d, "\n")
	// Row for cycle 3 must contain the first add (iteration 1).
	if !strings.Contains(lines[3+3], "add") {
		t.Errorf("add not at cycle 3 with d=2:\n%s", d)
	}
	if strings.Contains(lines[3+1], "add") || strings.Contains(lines[3+2], "add") {
		t.Errorf("add appears before its buffered latency:\n%s", d)
	}
}

func TestDiagramEmptyForSequential(t *testing.T) {
	c := &Compiled{}
	if c.Diagram(3) != "" {
		t.Error("diagram for nil schedule")
	}
}
