package core

import (
	"testing"

	"ltsp/internal/ddg"
	"ltsp/internal/ir"
	"ltsp/internal/machine"
	"ltsp/internal/modsched"
)

// chaseWithPayload builds a pointer chase (load on the recurrence) plus a
// payload load off the recurrence, both hinted.
func chaseWithPayload(hint ir.Hint) *ir.Loop {
	l := ir.NewLoop("chase")
	pnext, pcur, t1, v := l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR()
	l.Append(ir.Mov(pcur, pnext))
	chase := ir.Ld(pnext, pcur, 8, 0)
	chase.Mem.Hint = hint
	l.Append(chase)
	l.Append(ir.AddI(t1, pcur, 8))
	payload := ir.Ld(v, t1, 8, 0)
	payload.Mem.Hint = hint
	l.Append(payload)
	st := ir.St(l.NewGR(), v, 8, 0)
	l.Append(st)
	l.Init(pnext, 0x10000)
	l.Init(st.BaseReg(), 0x20000)
	return l
}

func TestClassifyChaseLoadCritical(t *testing.T) {
	m := machine.Itanium2()
	l := chaseWithPayload(ir.HintL2)
	g, err := ddg.Build(l)
	if err != nil {
		t.Fatal(err)
	}
	resII := modsched.ResMII(m, l.Body)
	baseRecII := g.RecMII(BaseLatFn(m))
	p := Classify(m, g, resII, baseRecII, true, false)
	// The chase load (body 1) sits on the mov->ld recurrence: boosting it
	// to 11 would push the cycle to 12 >> ResII, so it must be critical.
	if !p.Critical[1] {
		t.Error("chase load not classified critical")
	}
	// The payload load (body 3) has slack: non-critical.
	if p.Critical[3] {
		t.Error("payload load classified critical")
	}
	lat := p.LatFn()
	if got := lat(l.Body[1]); got != 1 {
		t.Errorf("critical load latency = %d, want base 1", got)
	}
	if got := lat(l.Body[3]); got != 11 {
		t.Errorf("non-critical load latency = %d, want 11", got)
	}
}

func TestClassifyDisabled(t *testing.T) {
	m := machine.Itanium2()
	l := chaseWithPayload(ir.HintL3)
	g, _ := ddg.Build(l)
	p := Classify(m, g, 2, 2, false, false)
	lat := p.LatFn()
	for _, in := range l.Loads() {
		if got := lat(in); got != 1 {
			t.Errorf("disabled policy latency = %d", got)
		}
	}
	if len(p.BoostedLoads(g)) != 0 {
		t.Error("disabled policy boosts loads")
	}
}

func TestDelinquentOverride(t *testing.T) {
	m := machine.Itanium2()
	l := chaseWithPayload(ir.HintL2)
	// Only the payload is marked delinquent (as HLO heuristic 1 would).
	l.Body[3].Mem.Delinquent = true
	g, _ := ddg.Build(l)
	resII := modsched.ResMII(m, l.Body)
	baseRecII := g.RecMII(BaseLatFn(m))
	// Loop below the trip threshold: LoopEnabled false, override true.
	p := Classify(m, g, resII, baseRecII, false, true)
	lat := p.LatFn()
	if got := lat(l.Body[3]); got != 11 {
		t.Errorf("delinquent payload latency = %d, want 11 (threshold override)", got)
	}
	if got := lat(l.Body[1]); got != 1 {
		t.Errorf("non-delinquent chase latency = %d, want base", got)
	}
	boosted := p.BoostedLoads(g)
	if len(boosted) != 1 || boosted[0] != 3 {
		t.Errorf("boosted = %v, want [3]", boosted)
	}
}

func TestClassifyRecurrenceFloorUsesBaseRecII(t *testing.T) {
	// A loop whose base RecII already exceeds ResII: a load on the cycle
	// may still be boosted as long as the cycle stays within the floor.
	m := machine.Itanium2()
	l := ir.NewLoop("slackcycle")
	acc, x, bx := l.NewFR(), l.NewFR(), l.NewGR()
	l.InitF(acc, 0)
	l.Init(bx, 0x1000)
	ld := ir.LdF(x, bx, 8)
	ld.Mem.Hint = ir.HintL2 // 12 vs base 6
	l.Append(ld)
	l.Append(ir.FAdd(acc, acc, x)) // RecII = 4 (fadd in-place)
	g, _ := ddg.Build(l)
	resII := modsched.ResMII(m, l.Body) // 1
	baseRecII := g.RecMII(BaseLatFn(m)) // 4
	p := Classify(m, g, resII, baseRecII, true, false)
	// The load is not on the fadd cycle, so it stays non-critical.
	if p.Critical[0] {
		t.Error("off-cycle load classified critical")
	}
}

func TestPipelineFallbackLadder(t *testing.T) {
	// Shrink the rotating GR file so boosting overflows it: the pipeliner
	// must retry at the same II with base latencies (paper Sec. 3.3).
	m := machine.Itanium2()
	m.RotGR = 12
	l := ir.NewLoop("tight")
	v, bs, bd, r, k := l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR()
	ld := ir.Ld(v, bs, 4, 4)
	ld.Mem.Hint = ir.HintL3
	l.Append(ld)
	l.Append(ir.Add(r, v, k))
	l.Append(ir.St(bd, r, 4, 4))
	l.Init(bs, 0x1000)
	l.Init(bd, 0x2000)
	l.Init(k, 1)
	c, err := Pipeline(l, Options{Model: m, LatencyTolerant: true})
	if err != nil {
		t.Fatal(err)
	}
	if !c.LatencyReduced {
		t.Error("fallback ladder did not fire despite rotating overflow")
	}
	if c.FinalII != 1 {
		t.Errorf("II = %d, want the original 1 after latency reduction", c.FinalII)
	}
	if c.Stages > 4 {
		t.Errorf("stages = %d after reduction, want small", c.Stages)
	}
}

func TestPipelineForcedLatency(t *testing.T) {
	l, _, _ := exampleLoop(ir.HintNone)
	c, err := Pipeline(l, Options{LatencyTolerant: true, ForceLoadLatency: 9})
	if err != nil {
		t.Fatal(err)
	}
	if c.Loads[0].SchedLat != 9 {
		t.Errorf("forced latency = %d, want 9", c.Loads[0].SchedLat)
	}
	if c.Loads[0].ExtraD != 8 {
		t.Errorf("d = %d, want 8", c.Loads[0].ExtraD)
	}
}

func TestPipelineAttemptsAndReports(t *testing.T) {
	l, _, _ := exampleLoop(ir.HintL3)
	c, err := Pipeline(l, Options{LatencyTolerant: true})
	if err != nil {
		t.Fatal(err)
	}
	if c.Attempts <= 0 {
		t.Error("no scheduling attempts recorded")
	}
	if len(c.Loads) != 1 || c.Loads[0].Hint != ir.HintL3 {
		t.Errorf("load reports = %+v", c.Loads)
	}
}

func TestPipelineRejectsInvalidLoop(t *testing.T) {
	l := ir.NewLoop("bad")
	a := l.NewGR()
	l.Append(&ir.Instr{Op: ir.OpAdd, Dsts: []ir.Reg{a}, Srcs: []ir.Reg{a}})
	if _, err := Pipeline(l, Options{}); err == nil {
		t.Error("invalid loop accepted")
	}
}
