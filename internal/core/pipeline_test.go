package core

import (
	"testing"

	"ltsp/internal/interp"
	"ltsp/internal/ir"
	"ltsp/internal/machine"
)

// exampleLoop builds the paper's running example (Fig. 1):
//
//	ld4  r4 = [r5],4
//	add  r7 = r4,r9
//	st4  [r6] = r7,4
//
// with the load's hint settable by the caller.
func exampleLoop(hint ir.Hint) (*ir.Loop, int64, int64) {
	const src, dst = 0x10000, 0x20000
	l := ir.NewLoop("copyadd")
	r4, r5, r6, r7, r9 := l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR()
	ld := ir.Ld(r4, r5, 4, 4)
	ld.Mem.Hint = hint
	ld.Mem.Stride = ir.StrideUnit
	ld.Mem.StrideBytes = 4
	l.Append(ld)
	l.Append(ir.Add(r7, r4, r9))
	l.Append(ir.St(r6, r7, 4, 4))
	l.Init(r5, src)
	l.Init(r6, dst)
	l.Init(r9, 1000)
	l.LiveOut = []ir.Reg{r5, r6}
	return l, src, dst
}

func seedMemory(mem *interp.Memory, src int64, n int) {
	for i := 0; i < n; i++ {
		mem.Store(src+int64(4*i), 4, int64(10*i+3))
	}
}

func TestPipelineRunningExampleBaseline(t *testing.T) {
	l, _, _ := exampleLoop(ir.HintNone)
	c, err := Pipeline(l, Options{})
	if err != nil {
		t.Fatalf("Pipeline: %v", err)
	}
	if c.FinalII != 1 {
		t.Errorf("II = %d, want 1 (paper Fig. 3)", c.FinalII)
	}
	if c.Stages != 3 {
		t.Errorf("stages = %d, want 3 (paper Fig. 2)", c.Stages)
	}
	if c.ResII != 1 || c.BaseRecII != 1 {
		t.Errorf("ResII=%d BaseRecII=%d, want 1/1", c.ResII, c.BaseRecII)
	}
}

func TestPipelineRunningExampleLatencyTolerant(t *testing.T) {
	l, _, _ := exampleLoop(ir.HintL3)
	c, err := Pipeline(l, Options{LatencyTolerant: true})
	if err != nil {
		t.Fatalf("Pipeline: %v", err)
	}
	m := machine.Itanium2()
	if c.FinalII != 1 {
		t.Errorf("II = %d, want 1 (latency tolerance must not raise the II)", c.FinalII)
	}
	wantStages := m.Lat.L3Typ + 2 // load at L3Typ, add, store
	if c.Stages != wantStages {
		t.Errorf("stages = %d, want %d", c.Stages, wantStages)
	}
	if len(c.Loads) != 1 {
		t.Fatalf("load reports: %d", len(c.Loads))
	}
	lr := c.Loads[0]
	if lr.Critical {
		t.Errorf("load classified critical; it has slack")
	}
	if lr.SchedLat != m.Lat.L3Typ {
		t.Errorf("scheduled latency = %d, want %d", lr.SchedLat, m.Lat.L3Typ)
	}
	// Equ. 3: k = d/II + 1.
	wantD := m.Lat.L3Typ - m.Lat.L1Best
	if lr.ExtraD != wantD {
		t.Errorf("d = %d, want %d", lr.ExtraD, wantD)
	}
	if lr.ClusterK != wantD/c.FinalII+1 {
		t.Errorf("k = %d, want %d", lr.ClusterK, wantD/c.FinalII+1)
	}
}

// TestPipelinedMatchesSequential is the keystone correctness check: the
// pipelined kernel must compute exactly the same memory state and live-out
// registers as the sequential loop, for several trip counts and hint
// settings.
func TestPipelinedMatchesSequential(t *testing.T) {
	for _, hint := range []ir.Hint{ir.HintNone, ir.HintL2, ir.HintL3} {
		for _, trip := range []int64{1, 2, 3, 5, 17, 100} {
			l, src, dst := exampleLoop(hint)
			seq, err := GenSequential(machine.Itanium2(), l)
			if err != nil {
				t.Fatalf("GenSequential: %v", err)
			}
			c, err := Pipeline(l, Options{LatencyTolerant: true})
			if err != nil {
				t.Fatalf("Pipeline: %v", err)
			}

			memA := interp.NewMemory()
			seedMemory(memA, src, int(trip))
			memB := interp.NewMemory()
			seedMemory(memB, src, int(trip))

			stA, err := interp.Run(seq, trip, memA)
			if err != nil {
				t.Fatalf("run seq: %v", err)
			}
			stB, err := interp.Run(c.Program, trip, memB)
			if err != nil {
				t.Fatalf("run pipelined: %v", err)
			}

			for i := int64(0); i < trip; i++ {
				a := stA.Mem.Load(dst+4*i, 4)
				b := stB.Mem.Load(dst+4*i, 4)
				want := int64(10*i + 3 + 1000)
				if a != want {
					t.Fatalf("hint=%v trip=%d: seq dst[%d]=%d want %d", hint, trip, i, a, want)
				}
				if b != want {
					t.Fatalf("hint=%v trip=%d: pipelined dst[%d]=%d want %d (II=%d stages=%d)",
						hint, trip, i, b, want, c.FinalII, c.Stages)
				}
			}
			for k := range seq.LiveOut {
				va := stA.ReadReg(seq.LiveOut[k])
				vb := stB.ReadReg(c.Program.LiveOut[k])
				if va != vb {
					t.Fatalf("hint=%v trip=%d: live-out %d: seq=%d pipelined=%d", hint, trip, k, va, vb)
				}
			}
		}
	}
}

func TestKernelIterationCost(t *testing.T) {
	// The pipelined loop needs exactly (stages - 1) extra kernel
	// iterations per execution (paper Sec. 1.1).
	l, src, _ := exampleLoop(ir.HintL3)
	c, err := Pipeline(l, Options{LatencyTolerant: true})
	if err != nil {
		t.Fatalf("Pipeline: %v", err)
	}
	trip := int64(10)
	mem := interp.NewMemory()
	seedMemory(mem, src, int(trip))
	if got, want := c.Program.KernelIterations(trip), trip+int64(c.Stages)-1; got != want {
		t.Errorf("kernel iterations = %d, want %d", got, want)
	}
}
