// Package core implements the paper's contribution: latency-tolerant
// software pipelining. It classifies loads as critical or non-critical by
// walking the recurrence cycles of the dependence graph (Sec. 3.3),
// schedules non-critical loads at the hint-derived typical latency of the
// next cache level, falls back (reduce latencies at the same II, then raise
// the II) when rotating register allocation fails, and generates
// kernel-only pipelined code with rotating registers and stage predicates.
package core

import (
	"ltsp/internal/ddg"
	"ltsp/internal/ir"
	"ltsp/internal/machine"
)

// Policy is the latency policy for one loop's loads: which loads are
// eligible for boosting (per-load gating) and which were classified
// critical (scheduled at base latency regardless).
type Policy struct {
	model *machine.Model
	// Critical[id] marks body instruction id a critical load.
	Critical map[int]bool
	// LoopEnabled applies latency tolerance to every load in the loop (the
	// loop passed the trip-count threshold).
	LoopEnabled bool
	// DelinquentOverride boosts HLO-flagged delinquent loads even when the
	// loop did not pass the threshold (paper Sec. 3.1: long expected
	// latencies can justify the cost at low trip counts).
	DelinquentOverride bool
	// Floor is the II floor the classification compared elevated cycle
	// bounds against: max(Resource II, base Recurrence II).
	Floor int
	// Binding records, for each critical load, the recurrence cycle that
	// bound it — the first cycle whose II bound under elevated latencies
	// exceeded Floor.
	Binding map[int]BindingCycle
}

// BindingCycle identifies the recurrence cycle that made a load critical.
type BindingCycle struct {
	// Nodes are the instruction IDs on the cycle in traversal order.
	Nodes []int
	// II is the cycle's II bound with all eligible loads on it elevated to
	// their expected latencies.
	II int
}

// eligible reports whether the policy would boost this load at all
// (ignoring criticality).
func (p *Policy) eligible(in *ir.Instr) bool {
	if !in.Op.IsLoad() {
		return false
	}
	if p.LoopEnabled {
		return true
	}
	return p.DelinquentOverride && in.Mem != nil && in.Mem.Delinquent
}

// LatFn returns the ddg.LatencyFn implementing the policy: base latencies
// for critical and ineligible loads, hint-derived expected latencies for
// eligible non-critical loads.
func (p *Policy) LatFn() ddg.LatencyFn {
	return func(in *ir.Instr) int {
		if !p.eligible(in) || p.Critical[in.ID] {
			return p.model.LoadLatency(in, false)
		}
		return p.model.LoadLatency(in, true)
	}
}

// BaseLatFn returns the all-base-latency policy used for Recurrence-II
// computation and for the fallback ladder.
func BaseLatFn(m *machine.Model) ddg.LatencyFn {
	return func(in *ir.Instr) int { return m.LoadLatency(in, false) }
}

// Classify performs the paper's critical/non-critical load classification:
// initially every load is non-critical; then every recurrence cycle is
// checked — if raising the latencies of all eligible loads on the cycle to
// their expected (hint-derived) values would push the cycle's II bound
// beyond the loop's II floor (the larger of Resource II and the base
// Recurrence II), all loads on that cycle are marked critical.
func Classify(m *machine.Model, g *ddg.Graph, resII, baseRecII int, loopEnabled, delinquentOverride bool) *Policy {
	p := &Policy{
		model:              m,
		Critical:           map[int]bool{},
		Binding:            map[int]BindingCycle{},
		LoopEnabled:        loopEnabled,
		DelinquentOverride: delinquentOverride,
	}
	floor := resII
	if baseRecII > floor {
		floor = baseRecII
	}
	p.Floor = floor
	if !loopEnabled && !delinquentOverride {
		return p
	}
	base := BaseLatFn(m)
	for _, c := range g.Cycles() {
		loads := c.Loads(g)
		if len(loads) == 0 {
			continue
		}
		onCycle := map[int]bool{}
		for _, ld := range loads {
			onCycle[ld.ID] = true
		}
		elevated := func(in *ir.Instr) int {
			if onCycle[in.ID] && p.eligible(in) {
				return m.LoadLatency(in, true)
			}
			return base(in)
		}
		if cycII := c.MinII(g, elevated); cycII > floor {
			for _, ld := range loads {
				p.Critical[ld.ID] = true
				if _, bound := p.Binding[ld.ID]; !bound {
					p.Binding[ld.ID] = BindingCycle{Nodes: c.Nodes, II: cycII}
				}
			}
		}
	}
	return p
}

// BoostedLoads returns the IDs of loads that the policy schedules above
// their base latency: eligible non-critical loads whose hint requests more
// cycles.
func (p *Policy) BoostedLoads(g *ddg.Graph) []int {
	var out []int
	for _, in := range g.Loop.Body {
		if !in.Op.IsLoad() || p.Critical[in.ID] || !p.eligible(in) {
			continue
		}
		if p.model.LoadLatency(in, true) > p.model.LoadLatency(in, false) {
			out = append(out, in.ID)
		}
	}
	return out
}
