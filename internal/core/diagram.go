package core

import (
	"fmt"
	"strings"
)

// Diagram renders the conceptual view of the software pipeline in the
// style of the paper's Figs. 2 and 4: rows are cycles, columns are source
// iterations, and each cell shows the operations of that iteration issued
// in that cycle (ignoring dynamic stalls). n selects how many source
// iterations to draw.
func (c *Compiled) Diagram(n int) string {
	if c.Schedule == nil || n < 1 {
		return ""
	}
	s := c.Schedule

	// Mnemonics per body instruction, in schedule-time order.
	type slotOp struct {
		time int
		name string
	}
	var ops []slotOp
	loop := c.loop
	for i, in := range loop.Body {
		name := in.Op.String()
		if in.Op.IsLoad() || in.Op.IsStore() {
			name = fmt.Sprintf("%s%d", in.Op, in.Mem.Size)
		}
		ops = append(ops, slotOp{s.Time[i], name})
	}

	maxTime := 0
	for _, o := range ops {
		if o.time > maxTime {
			maxTime = o.time
		}
	}
	lastCycle := (n-1)*s.II + maxTime

	colW := 9
	var b strings.Builder
	fmt.Fprintf(&b, "Cycle | From Source Iteration ->\n")
	fmt.Fprintf(&b, "%5s |", "")
	for j := 1; j <= n; j++ {
		fmt.Fprintf(&b, " %-*d", colW, j)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 7+n*(colW+1)))
	for cyc := 0; cyc <= lastCycle; cyc++ {
		fmt.Fprintf(&b, "%5d |", cyc)
		for j := 0; j < n; j++ {
			var cell []string
			for _, o := range ops {
				if o.time+j*s.II == cyc {
					cell = append(cell, o.name)
				}
			}
			text := strings.Join(cell, ",")
			if len(text) > colW {
				text = text[:colW-1] + "…"
			}
			fmt.Fprintf(&b, " %-*s", colW, text)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
