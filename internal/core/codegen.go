package core

import (
	"fmt"

	"ltsp/internal/interp"
	"ltsp/internal/ir"
	"ltsp/internal/modsched"
	"ltsp/internal/regalloc"
)

// GenKernel produces the executable kernel-only pipelined program:
// instructions grouped by kernel slot, virtual registers rewritten to
// physical ones (rotating uses read base+delta), stage predicates attached
// to unpredicated instructions, and setup values mapped to their physical
// homes. It is exported so the verification layer can regenerate code for
// deliberately corrupted schedules in its mutation tests.
func GenKernel(l *ir.Loop, s *modsched.Schedule, asn *regalloc.Assignment) (*interp.Program, error) {
	groups := make([][]*ir.Instr, s.II)

	physDef := func(r ir.Reg) (ir.Reg, error) {
		if !r.Virtual {
			return r, nil
		}
		a, ok := asn.Phys[r]
		if !ok {
			return ir.None, fmt.Errorf("core: %s: no allocation for %s", l.Name, r)
		}
		return ir.Reg{Class: r.Class, N: a.Base}, nil
	}
	physUse := func(useID int, r ir.Reg) (ir.Reg, error) {
		if !r.Virtual {
			return r, nil
		}
		a, ok := asn.Phys[r]
		if !ok {
			return ir.None, fmt.Errorf("core: %s: no allocation for %s", l.Name, r)
		}
		if a.Kind == regalloc.KindStatic {
			return ir.Reg{Class: r.Class, N: a.Base}, nil
		}
		delta, ok := regalloc.UseDelta(l, s, useID, r)
		if !ok {
			return ir.None, fmt.Errorf("core: %s: rotating %s has no definition", l.Name, r)
		}
		if delta < 0 || delta >= a.Width {
			return ir.None, fmt.Errorf("core: %s: use of %s at body[%d] has delta %d outside blade width %d",
				l.Name, r, useID, delta, a.Width)
		}
		return ir.Reg{Class: r.Class, N: a.Base + delta}, nil
	}

	// In-place (static) registers read by another instruction must be read
	// in the defining instruction's stage: a different stage would observe
	// a different source iteration's value. (Data self-uses only; a
	// qualifying-predicate self-reference rotates.)
	inPlaceDef := map[ir.Reg]int{}
	for i, in := range l.Body {
		for _, d := range in.AllDefs() {
			for _, u := range in.Srcs {
				if u == d {
					inPlaceDef[d] = i
				}
			}
		}
	}
	for i, in := range l.Body {
		for _, u := range in.AllUses() {
			if d, ok := inPlaceDef[u]; ok && d != i && s.Stage(d) != s.Stage(i) {
				return nil, fmt.Errorf("core: %s: body[%d] reads in-place register %s across stages (def stage %d, use stage %d)",
					l.Name, i, u, s.Stage(d), s.Stage(i))
			}
		}
	}

	for i, in := range l.Body {
		k := in.Clone()
		// Qualifying predicate: the instruction's own (rewritten) predicate
		// if it has one — its producing compare runs under a stage
		// predicate with .unc semantics, so it turns off during fill and
		// drain — otherwise the stage predicate itself.
		if k.Pred.IsNone() {
			k.Pred = ir.PR(asn.StagePredBase + s.Stage(i))
		} else {
			p, err := physUse(i, k.Pred)
			if err != nil {
				return nil, err
			}
			k.Pred = p
		}
		for di, d := range k.Dsts {
			if d.IsNone() {
				continue
			}
			pd, err := physDef(d)
			if err != nil {
				return nil, err
			}
			k.Dsts[di] = pd
		}
		for si, src := range k.Srcs {
			// The base register of a post-incrementing memory op is both
			// read and written; it is in-place static, so physUse and
			// physDef agree.
			pu, err := physUse(i, src)
			if err != nil {
				return nil, err
			}
			k.Srcs[si] = pu
		}
		slot := s.Slot(i)
		groups[slot] = append(groups[slot], k)
	}

	prog := &interp.Program{
		Name:      l.Name,
		Pipelined: true,
		Groups:    groups,
		Stages:    s.Stages,
	}
	// While loops close with br.wtop on the validity of the oldest
	// in-flight iteration: the condition blade's highest-delta register.
	if l.While != nil {
		a, ok := asn.Phys[l.While.Cond]
		if !ok || a.Kind != regalloc.KindRotating {
			return nil, fmt.Errorf("core: %s: while condition %s not allocated rotating", l.Name, l.While.Cond)
		}
		prog.WhileQP = ir.PR(a.Base + a.Width - 1)
	}

	// Setup: map virtual targets to their physical homes. Rotating
	// loop-carried live-ins were already converted by the allocator.
	for _, init := range l.Setup {
		if !init.Reg.Virtual {
			prog.Setup = append(prog.Setup, init)
			continue
		}
		a, ok := asn.Phys[init.Reg]
		if !ok {
			// Initialized but unused register: drop.
			continue
		}
		if a.Kind == regalloc.KindStatic {
			prog.Setup = append(prog.Setup, ir.RegInit{
				Reg: ir.Reg{Class: init.Reg.Class, N: a.Base}, Val: init.Val, FVal: init.FVal,
			})
		}
	}
	prog.Setup = append(prog.Setup, asn.RotInits...)

	for _, r := range l.LiveOut {
		if !r.Virtual {
			prog.LiveOut = append(prog.LiveOut, r)
			continue
		}
		a, ok := asn.Phys[r]
		if !ok || a.Kind != regalloc.KindStatic {
			return nil, fmt.Errorf("core: %s: live-out %s is not in a static register", l.Name, r)
		}
		prog.LiveOut = append(prog.LiveOut, ir.Reg{Class: r.Class, N: a.Base})
	}
	return prog, nil
}
