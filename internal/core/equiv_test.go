package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"ltsp/internal/interp"
	"ltsp/internal/ir"
	"ltsp/internal/machine"
)

// genLoop builds a random well-formed loop together with a memory
// initializer. The generator covers loads (integer and FP), ALU chains,
// predicated updates, in-place accumulators, loop-carried values (the
// mov/load chase idiom) and observable stores, while respecting the
// pipeliner's structural rules (single definitions, in-place registers
// read only by their definer).
type genLoop struct {
	l       *ir.Loop
	memInit func(*interp.Memory)
	rng     *rand.Rand
	intVals []ir.Reg // rotating integer values available as operands
	fpVals  []ir.Reg
	arrays  int64
	inits   []func(*interp.Memory)
}

func newGenLoop(seed int64, size int) *genLoop {
	g := &genLoop{l: ir.NewLoop(fmt.Sprintf("rand%d", seed)), rng: rand.New(rand.NewSource(seed))}
	// Seed values: a couple of invariants.
	inv := g.l.NewGR()
	g.l.Init(inv, 37)
	g.intVals = append(g.intVals, inv)
	finv := g.l.NewFR()
	g.l.InitF(finv, 1.25)
	g.fpVals = append(g.fpVals, finv)

	for i := 0; i < size; i++ {
		switch g.rng.Intn(10) {
		case 0, 1:
			g.addIntLoad()
		case 2:
			g.addFPLoad()
		case 3, 4:
			g.addALU()
		case 5:
			g.addFPALU()
		case 6:
			g.addStore()
		case 7:
			g.addAccumulator()
		case 8:
			g.addPredicated()
		default:
			g.addCarriedChain()
		}
	}
	// Guarantee at least one observable effect.
	g.addStore()
	g.addAccumulator()
	g.memInit = func(m *interp.Memory) {
		for _, f := range g.inits {
			f(m)
		}
	}
	return g
}

func (g *genLoop) newArrayBase(elemSize int64) (ir.Reg, int64) {
	base := 0x0100_0000 + g.arrays*0x0010_0000
	g.arrays++
	r := g.l.NewGR()
	g.l.Init(r, base)
	return r, base
}

func (g *genLoop) pickInt() ir.Reg { return g.intVals[g.rng.Intn(len(g.intVals))] }
func (g *genLoop) pickFP() ir.Reg  { return g.fpVals[g.rng.Intn(len(g.fpVals))] }

func (g *genLoop) addIntLoad() {
	b, addr := g.newArrayBase(8)
	d := g.l.NewGR()
	ld := ir.Ld(d, b, 8, 8)
	if g.rng.Intn(2) == 0 {
		ld.Mem.Hint = ir.Hint(g.rng.Intn(3))
	}
	g.l.Append(ld)
	g.intVals = append(g.intVals, d)
	seed := g.rng.Int63n(1 << 30)
	g.inits = append(g.inits, func(m *interp.Memory) {
		for i := int64(0); i < 64; i++ {
			m.Store(addr+8*i, 8, seed+i*13)
		}
	})
}

func (g *genLoop) addFPLoad() {
	b, addr := g.newArrayBase(8)
	d := g.l.NewFR()
	ld := ir.LdF(d, b, 8)
	if g.rng.Intn(2) == 0 {
		ld.Mem.Hint = ir.Hint(g.rng.Intn(3))
	}
	g.l.Append(ld)
	g.fpVals = append(g.fpVals, d)
	seed := float64(g.rng.Intn(100))
	g.inits = append(g.inits, func(m *interp.Memory) {
		for i := int64(0); i < 64; i++ {
			m.StoreF(addr+8*i, seed+float64(i)*0.5)
		}
	})
}

func (g *genLoop) addALU() {
	d := g.l.NewGR()
	switch g.rng.Intn(4) {
	case 0:
		g.l.Append(ir.Add(d, g.pickInt(), g.pickInt()))
	case 1:
		g.l.Append(ir.Sub(d, g.pickInt(), g.pickInt()))
	case 2:
		g.l.Append(ir.Shladd(d, g.pickInt(), int64(g.rng.Intn(4)+1), g.pickInt()))
	default:
		g.l.Append(ir.AddI(d, g.pickInt(), int64(g.rng.Intn(1000))))
	}
	g.intVals = append(g.intVals, d)
}

func (g *genLoop) addFPALU() {
	d := g.l.NewFR()
	switch g.rng.Intn(3) {
	case 0:
		g.l.Append(ir.FAdd(d, g.pickFP(), g.pickFP()))
	case 1:
		g.l.Append(ir.FMul(d, g.pickFP(), g.pickFP()))
	default:
		g.l.Append(ir.FMA(d, g.pickFP(), g.pickFP(), g.pickFP()))
	}
	g.fpVals = append(g.fpVals, d)
}

func (g *genLoop) addStore() {
	b, _ := g.newArrayBase(8)
	g.l.Append(ir.St(b, g.pickInt(), 8, 8))
}

func (g *genLoop) addAccumulator() {
	acc := g.l.NewGR()
	g.l.Init(acc, int64(g.rng.Intn(50)))
	g.l.Append(ir.Add(acc, acc, g.pickInt()))
	g.l.LiveOut = append(g.l.LiveOut, acc)
	// In-place: never added to intVals (only its definer may read it).
}

func (g *genLoop) addPredicated() {
	p := g.l.NewPR()
	g.l.Append(ir.CmpLt(p, ir.None, g.pickInt(), g.pickInt()))
	b, _ := g.newArrayBase(8)
	st := ir.Predicated(p, ir.St(b, g.pickInt(), 8, 0))
	g.l.Append(st)
}

func (g *genLoop) addCarriedChain() {
	// next = f(cur): a loop-carried rotating value with an initial value.
	cur, next := g.l.NewGR(), g.l.NewGR()
	g.l.Append(ir.Mov(cur, next))
	g.l.Append(ir.AddI(next, cur, int64(g.rng.Intn(16)+1)))
	g.l.Init(next, int64(g.rng.Intn(100)))
	g.intVals = append(g.intVals, cur)
	// Make it observable.
	b, _ := g.newArrayBase(8)
	g.l.Append(ir.St(b, cur, 8, 8))
}

// runBoth compiles the loop both ways and compares final memory and
// live-outs for the given trip count.
func runBoth(t *testing.T, g *genLoop, opts Options, trip int64) error {
	t.Helper()
	m := machine.Itanium2()
	seqLoop := g.l.Clone()
	seq, err := GenSequential(m, seqLoop)
	if err != nil {
		return fmt.Errorf("seq: %w", err)
	}
	pipeLoop := g.l.Clone()
	c, err := Pipeline(pipeLoop, opts)
	if err != nil {
		return fmt.Errorf("pipeline: %w", err)
	}

	memA, memB := interp.NewMemory(), interp.NewMemory()
	g.memInit(memA)
	g.memInit(memB)
	stA, err := interp.Run(seq, trip, memA)
	if err != nil {
		return fmt.Errorf("run seq: %w", err)
	}
	stB, err := interp.Run(c.Program, trip, memB)
	if err != nil {
		return fmt.Errorf("run pipelined: %w", err)
	}

	snapA, snapB := stA.Mem.Snapshot(), stB.Mem.Snapshot()
	if len(snapA) != len(snapB) {
		return fmt.Errorf("page counts differ: %d vs %d", len(snapA), len(snapB))
	}
	for pn, pa := range snapA {
		pb, ok := snapB[pn]
		if !ok {
			return fmt.Errorf("page %#x missing in pipelined run", pn)
		}
		if pa != pb {
			return fmt.Errorf("page %#x differs (II=%d stages=%d trip=%d)", pn, c.FinalII, c.Stages, trip)
		}
	}
	for i := range seq.LiveOut {
		va := stA.ReadReg(seq.LiveOut[i])
		vb := stB.ReadReg(c.Program.LiveOut[i])
		if va != vb {
			return fmt.Errorf("live-out %d: seq=%d pipelined=%d (II=%d stages=%d trip=%d)",
				i, va, vb, c.FinalII, c.Stages, trip)
		}
	}
	return nil
}

// TestQuickPipelinedEquivalentToSequential is the strongest correctness
// property in the repository: for random loops, hint settings and trip
// counts, the software-pipelined kernel (modulo scheduling + rotating
// register allocation + stage-predicated code generation) computes exactly
// the same memory state and live-out values as the sequential loop.
func TestQuickPipelinedEquivalentToSequential(t *testing.T) {
	f := func(seed int64, sz, tripRaw uint8, tolerant bool) bool {
		g := newGenLoop(seed, int(sz%12)+2)
		if err := g.l.Verify(); err != nil {
			t.Fatalf("seed %d: generator produced invalid loop: %v", seed, err)
		}
		trip := int64(tripRaw%40) + 1
		opts := Options{LatencyTolerant: tolerant, BoostDelinquent: tolerant}
		if err := runBoth(t, g, opts, trip); err != nil {
			t.Errorf("seed=%d size=%d trip=%d tolerant=%v: %v", seed, int(sz%12)+2, trip, tolerant, err)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 120}
	if testing.Short() {
		cfg.MaxCount = 20
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickForcedLatencyEquivalence stresses the deep-pipeline path:
// arbitrary forced scheduling latencies must never change semantics.
func TestQuickForcedLatencyEquivalence(t *testing.T) {
	f := func(seed int64, latRaw uint8) bool {
		g := newGenLoop(seed, 6)
		opts := Options{LatencyTolerant: true, ForceLoadLatency: int(latRaw%25) + 1}
		if err := runBoth(t, g, opts, 9); err != nil {
			t.Errorf("seed=%d lat=%d: %v", seed, int(latRaw%25)+1, err)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if testing.Short() {
		cfg.MaxCount = 10
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
