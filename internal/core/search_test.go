package core_test

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"ltsp/internal/core"
	"ltsp/internal/hlo"
	"ltsp/internal/machine"
	"ltsp/internal/obs"
	"ltsp/internal/workload"
)

// TestParallelSearchEquivalence pins the tentpole determinism guarantee:
// for every loop of all 55 workload models, under both latency policies,
// the speculative parallel II search must produce a Schedule identical to
// the sequential search (II, Time, Port, Stages, chosen fallback rung)
// and a byte-identical decision trace. Run with -race to exercise the
// speculation machinery's synchronization.
func TestParallelSearchEquivalence(t *testing.T) {
	m := machine.Itanium2() // shared across modes and goroutines on purpose
	benches := workload.All()
	if len(benches) != 55 {
		t.Fatalf("workload.All() = %d models, want 55", len(benches))
	}

	type outcome struct {
		c   *core.Compiled
		tr  []byte
		err error
	}
	compile := func(t *testing.T, spec *workload.LoopSpec, tolerant bool, par int) outcome {
		t.Helper()
		l := spec.Gen()
		if _, err := hlo.Apply(l, hlo.Options{Model: m, Mode: hlo.ModeHLO, Prefetch: true}); err != nil {
			t.Fatalf("hlo: %v", err)
		}
		tr := obs.New()
		c, err := core.Pipeline(l, core.Options{
			Model:           m,
			LatencyTolerant: tolerant,
			BoostDelinquent: tolerant,
			Parallelism:     par,
			Trace:           tr,
		})
		js, jerr := json.Marshal(tr)
		if jerr != nil {
			t.Fatalf("trace marshal: %v", jerr)
		}
		return outcome{c: c, tr: js, err: err}
	}

	for _, b := range benches {
		for i := range b.Loops {
			spec := &b.Loops[i]
			for _, tolerant := range []bool{false, true} {
				seq := compile(t, spec, tolerant, 1)
				for _, par := range []int{2, 4} {
					got := compile(t, spec, tolerant, par)
					name := spec.Name
					if (seq.err == nil) != (got.err == nil) ||
						(seq.err != nil && seq.err.Error() != got.err.Error()) {
						t.Fatalf("%s tol=%v par=%d: err %v, sequential err %v",
							name, tolerant, par, got.err, seq.err)
					}
					if seq.err != nil {
						if !bytes.Equal(seq.tr, got.tr) {
							t.Fatalf("%s tol=%v par=%d: failure traces differ", name, tolerant, par)
						}
						continue
					}
					sc, pc := seq.c, got.c
					if sc.FinalII != pc.FinalII || sc.Stages != pc.Stages ||
						sc.LatencyReduced != pc.LatencyReduced || sc.IIBumps != pc.IIBumps ||
						sc.Attempts != pc.Attempts || sc.UnrollFactor != pc.UnrollFactor {
						t.Fatalf("%s tol=%v par=%d: result header differs: seq II=%d st=%d red=%v bumps=%d att=%d, par II=%d st=%d red=%v bumps=%d att=%d",
							name, tolerant, par,
							sc.FinalII, sc.Stages, sc.LatencyReduced, sc.IIBumps, sc.Attempts,
							pc.FinalII, pc.Stages, pc.LatencyReduced, pc.IIBumps, pc.Attempts)
					}
					if !reflect.DeepEqual(sc.Schedule, pc.Schedule) {
						t.Fatalf("%s tol=%v par=%d: schedules differ:\nseq %+v\npar %+v",
							name, tolerant, par, sc.Schedule, pc.Schedule)
					}
					if !reflect.DeepEqual(sc.Loads, pc.Loads) {
						t.Fatalf("%s tol=%v par=%d: load reports differ", name, tolerant, par)
					}
					if !bytes.Equal(seq.tr, got.tr) {
						t.Fatalf("%s tol=%v par=%d: decision traces differ:\nseq %s\npar %s",
							name, tolerant, par, seq.tr, got.tr)
					}
				}
			}
		}
	}
}

// TestParallelSearchUntraced covers the Trace==nil fast path of the
// speculative search (no buffered traces allocated) and checks the
// schedule still matches the sequential result.
func TestParallelSearchUntraced(t *testing.T) {
	m := machine.Itanium2()
	spec := workload.All()[0].Loops[0]
	run := func(par int) *core.Compiled {
		l := spec.Gen()
		if _, err := hlo.Apply(l, hlo.Options{Model: m, Mode: hlo.ModeHLO, Prefetch: true}); err != nil {
			t.Fatal(err)
		}
		c, err := core.Pipeline(l, core.Options{Model: m, LatencyTolerant: true, Parallelism: par})
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		return c
	}
	seq, parc := run(1), run(core.DefaultParallelism()+3)
	if !reflect.DeepEqual(seq.Schedule, parc.Schedule) || seq.FinalII != parc.FinalII {
		t.Fatalf("untraced parallel schedule differs: seq II=%d par II=%d", seq.FinalII, parc.FinalII)
	}
}
