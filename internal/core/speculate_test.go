package core

import (
	"testing"

	"ltsp/internal/ddg"
	"ltsp/internal/interp"
	"ltsp/internal/ir"
	"ltsp/internal/machine"
)

// aliasedLoop builds a loop where a conservative (may-alias) store->load
// dependence sits on a recurrence cycle: the compiler cannot prove the
// stored and loaded locations are distinct, so without data speculation
// the cycle's length is the load-use-store chain.
func aliasedLoop() *ir.Loop {
	l := ir.NewLoop("alias")
	v, t := l.NewGR(), l.NewGR()
	bl, bs := l.NewGR(), l.NewGR()
	ld := ir.Ld(v, bl, 8, 8)
	l.Append(ld)                 // 0: load
	l.Append(ir.AddI(t, v, 3))   // 1
	l.Append(ir.St(bs, t, 8, 8)) // 2: store that may alias next iteration's load
	l.MemDeps = []ir.MemDep{{From: 2, To: 0, Distance: 1, Latency: 2, MayAlias: true}}
	l.Init(bl, 0x10000)
	l.Init(bs, 0x20000)
	return l
}

func TestDataSpeculateReducesRecII(t *testing.T) {
	m := machine.Itanium2()
	l := aliasedLoop()
	g, err := ddg.Build(l)
	if err != nil {
		t.Fatal(err)
	}
	before := g.RecMII(BaseLatFn(m))
	if before < 4 {
		t.Fatalf("conservative RecII = %d, expected the ld-add-st cycle to bind", before)
	}

	broken := DataSpeculate(l)
	if broken != 1 {
		t.Fatalf("broke %d deps, want 1", broken)
	}
	if err := l.Verify(); err != nil {
		t.Fatalf("loop invalid after speculation: %v", err)
	}
	// A chk.a now validates the advanced load.
	last := l.Body[len(l.Body)-1]
	if last.Op != ir.OpChk || last.Srcs[0] != l.Body[0].Dsts[0] {
		t.Errorf("expected chk.a on the load target, got %v", last)
	}
	g2, err := ddg.Build(l)
	if err != nil {
		t.Fatal(err)
	}
	after := g2.RecMII(BaseLatFn(m))
	if after >= before {
		t.Errorf("RecII %d -> %d: speculation did not shorten the recurrence", before, after)
	}
}

func TestDataSpeculateKeepsProvenDeps(t *testing.T) {
	l := aliasedLoop()
	l.MemDeps[0].MayAlias = false
	if n := DataSpeculate(l); n != 0 {
		t.Errorf("broke %d proven dependences", n)
	}
	if len(l.MemDeps) != 1 {
		t.Error("proven dependence dropped")
	}
}

func TestDataSpeculateOnlyLoads(t *testing.T) {
	// A may-alias dependence ending at a store is not speculable.
	l := aliasedLoop()
	l.MemDeps = []ir.MemDep{{From: 0, To: 2, Distance: 1, MayAlias: true}}
	if n := DataSpeculate(l); n != 0 {
		t.Errorf("speculated a store-target dependence")
	}
}

func TestDataSpeculatedLoopPipelinesAndMatches(t *testing.T) {
	// End to end: speculate, pipeline with boosting, compare against the
	// unspeculated sequential loop (the may-alias locations are disjoint,
	// so results must be identical).
	m := machine.Itanium2()
	ref := aliasedLoop()
	seq, err := GenSequential(m, ref)
	if err != nil {
		t.Fatal(err)
	}

	spec := aliasedLoop()
	spec.Body[0].Mem.Hint = ir.HintL2
	DataSpeculate(spec)
	c, err := Pipeline(spec, Options{LatencyTolerant: true})
	if err != nil {
		t.Fatal(err)
	}
	// With the recurrence broken and the load boosted, the kernel must
	// schedule the load well ahead of its use.
	boosted := false
	for _, lr := range c.Loads {
		if lr.ExtraD > 0 {
			boosted = true
		}
	}
	if !boosted {
		t.Error("speculated load not boosted")
	}

	const trip = 25
	memA, memB := interp.NewMemory(), interp.NewMemory()
	for i := int64(0); i < trip; i++ {
		memA.Store(0x10000+8*i, 8, 100+i)
		memB.Store(0x10000+8*i, 8, 100+i)
	}
	stA, err := interp.Run(seq, trip, memA)
	if err != nil {
		t.Fatal(err)
	}
	stB, err := interp.Run(c.Program, trip, memB)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < trip; i++ {
		a := stA.Mem.Load(0x20000+8*i, 8)
		b := stB.Mem.Load(0x20000+8*i, 8)
		if a != b || a != 103+i {
			t.Fatalf("result[%d]: seq=%d speculated=%d want %d", i, a, b, 103+i)
		}
	}
}
