package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Errorf("geomean(2,8) = %f", g)
	}
	if g := Geomean([]float64{1, 1, 1}); g != 1 {
		t.Errorf("geomean(1,1,1) = %f", g)
	}
	if g := Geomean(nil); g != 0 {
		t.Errorf("geomean(nil) = %f", g)
	}
	// Non-positive entries are skipped.
	if g := Geomean([]float64{-1, 0, 4}); g != 4 {
		t.Errorf("geomean with junk = %f", g)
	}
}

func TestGainPct(t *testing.T) {
	if g := GainPct(110, 100); math.Abs(g-10) > 1e-9 {
		t.Errorf("gain = %f", g)
	}
	if g := GainPct(90, 100); math.Abs(g+10) > 1e-9 {
		t.Errorf("loss = %f", g)
	}
	if GainPct(1, 0) != 0 {
		t.Error("division by zero not guarded")
	}
}

func TestRatioRoundTrip(t *testing.T) {
	f := func(gRaw int16) bool {
		g := float64(gRaw % 80) // -79..79 percent
		r := RatioFromGain(g)
		return math.Abs(GainFromRatios([]float64{r})-g) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPctChange(t *testing.T) {
	if c := PctChange(100, 114); math.Abs(c-14) > 1e-9 {
		t.Errorf("change = %f", c)
	}
	if PctChange(0, 5) != 0 {
		t.Error("zero base not guarded")
	}
	if c := PctChangeF(2.0, 1.0); math.Abs(c+50) > 1e-9 {
		t.Errorf("changeF = %f", c)
	}
}

func TestRegCounts(t *testing.T) {
	var r RegCounts
	r.Add(10, 5, 3, 1, 20)
	r.Add(4, 2, 1, 0, 10)
	if r.GR != 14 || r.FR != 7 || r.PR != 4 || r.Spills != 1 || r.Instrs != 30 || r.Loops != 2 {
		t.Errorf("counts = %+v", r)
	}
}

func TestPct(t *testing.T) {
	if Pct(2.25) != "+2.2%" && Pct(2.25) != "+2.3%" {
		t.Errorf("Pct = %q", Pct(2.25))
	}
}

func TestQuickGeomeanBounds(t *testing.T) {
	f := func(vals [5]uint16) bool {
		var vs []float64
		min, max := math.Inf(1), 0.0
		for _, v := range vals {
			x := float64(v%100)/50 + 0.1
			vs = append(vs, x)
			min = math.Min(min, x)
			max = math.Max(max, x)
		}
		g := Geomean(vs)
		return g >= min-1e-9 && g <= max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
