// Package stats provides the small numeric helpers the experiment harness
// uses: geometric means of performance ratios, percentage-gain formatting,
// and aggregate register statistics.
package stats

import (
	"fmt"
	"math"
)

// Geomean returns the geometric mean of the values; zero or negative
// entries are skipped (they would be meaningless performance ratios).
func Geomean(vals []float64) float64 {
	sum, n := 0.0, 0
	for _, v := range vals {
		if v <= 0 {
			continue
		}
		sum += math.Log(v)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// GainPct converts a base/variant cycle pair into the paper's "% gain over
// baseline": positive when the variant is faster.
func GainPct(baseCycles, variantCycles float64) float64 {
	if variantCycles <= 0 {
		return 0
	}
	return (baseCycles/variantCycles - 1) * 100
}

// RatioFromGain converts a percentage gain back into a speedup ratio.
func RatioFromGain(gainPct float64) float64 { return 1 + gainPct/100 }

// GainFromRatios returns the percentage gain corresponding to the geomean
// of the given speedup ratios (how the paper aggregates per-benchmark
// gains).
func GainFromRatios(ratios []float64) float64 {
	return (Geomean(ratios) - 1) * 100
}

// Pct formats a fraction as a percentage string.
func Pct(x float64) string { return fmt.Sprintf("%+.1f%%", x) }

// RegCounts aggregates register allocation statistics across loops
// (paper Sec. 4.5).
type RegCounts struct {
	GR, FR, PR int64
	Loops      int64
	Spills     int64
	Instrs     int64
}

// Add accumulates another loop's counts.
func (r *RegCounts) Add(gr, fr, pr, spills, instrs int) {
	r.GR += int64(gr)
	r.FR += int64(fr)
	r.PR += int64(pr)
	r.Spills += int64(spills)
	r.Instrs += int64(instrs)
	r.Loops++
}

// PctChange returns the percentage change from a to b.
func PctChange(a, b int64) float64 {
	if a == 0 {
		return 0
	}
	return (float64(b)/float64(a) - 1) * 100
}

// PctChangeF returns the percentage change from a to b for floats.
func PctChangeF(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return (b/a - 1) * 100
}
