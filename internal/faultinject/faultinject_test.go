package faultinject

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func faultSequence(t *testing.T, seed int64, n int) []string {
	t.Helper()
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, "ok")
	})
	inj := Wrap(inner, Config{
		Seed:     seed,
		DropProb: 0.2, ErrProb: 0.3,
		LatencyProb: 0.3, LatencyMin: time.Microsecond, LatencyMax: 10 * time.Microsecond,
	})
	ts := httptest.NewServer(inj)
	defer ts.Close()

	seq := make([]string, 0, n)
	for i := 0; i < n; i++ {
		resp, err := http.Get(ts.URL + "/x")
		switch {
		case err != nil:
			seq = append(seq, "drop")
		case resp.StatusCode == http.StatusServiceUnavailable:
			resp.Body.Close()
			seq = append(seq, "err")
		default:
			resp.Body.Close()
			seq = append(seq, "ok")
		}
	}
	return seq
}

// TestDeterministicFaultSequence: equal seeds replay the identical fault
// sequence; a different seed diverges. This is what lets the chaos CI
// job pin a seed and assert exact outcomes.
func TestDeterministicFaultSequence(t *testing.T) {
	const n = 64
	a := faultSequence(t, 42, n)
	b := faultSequence(t, 42, n)
	c := faultSequence(t, 43, n)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d: %s vs %s", i, a[i], b[i])
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced the identical fault sequence")
	}
	var faults int
	for _, s := range a {
		if s != "ok" {
			faults++
		}
	}
	if faults == 0 || faults == n {
		t.Fatalf("degenerate fault mix: %d/%d faulted", faults, n)
	}
}

// TestExemptPassesThrough: exempted paths see no faults at all.
func TestExemptPassesThrough(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, "ok")
	})
	inj := Wrap(inner, Config{
		Seed: 7, DropProb: 1.0,
		Exempt: func(r *http.Request) bool { return r.URL.Path == "/healthz" },
	})
	ts := httptest.NewServer(inj)
	defer ts.Close()

	for i := 0; i < 8; i++ {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("exempt request %d faulted: %v", i, err)
		}
		resp.Body.Close()
	}
	if _, err := http.Get(ts.URL + "/compile"); err == nil {
		t.Fatal("non-exempt request survived DropProb=1")
	}
	if st := inj.Stats(); st.Requests != 1 || st.Drops != 1 {
		t.Fatalf("stats = %+v: exempt requests must not be counted", st)
	}
}
