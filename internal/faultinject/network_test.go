package faultinject

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func okServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, "ok")
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestNetworkPartitionAndHeal(t *testing.T) {
	tsB := okServer(t)
	tsC := okServer(t)
	net := NewNetwork(7)
	net.Register("b", tsB.URL)
	net.Register("c", tsC.URL)
	client := &http.Client{Transport: net.Transport("a", nil)}

	get := func(url string) error {
		resp, err := client.Get(url + "/x")
		if err == nil {
			resp.Body.Close()
		}
		return err
	}

	if err := get(tsB.URL); err != nil {
		t.Fatalf("unpartitioned request failed: %v", err)
	}
	net.Partition("a", "b")
	err := get(tsB.URL)
	var pe *PartitionError
	if !errors.As(err, &pe) {
		t.Fatalf("partitioned request got %v, want *PartitionError", err)
	}
	// The cut is per-pair: a→c still works.
	if err := get(tsC.URL); err != nil {
		t.Fatalf("a→c should be unaffected by the a–b cut: %v", err)
	}
	// Symmetric: b→a's view of the same pair is cut too.
	clientB := &http.Client{Transport: net.Transport("b", nil)}
	// b has no registered URL for a, so simulate by checking route directly:
	// a request from b to b's own URL passes (self), to an unregistered
	// URL passes.
	if resp, err := clientB.Get(tsC.URL + "/y"); err != nil {
		t.Fatalf("b→c: %v", err)
	} else {
		resp.Body.Close()
	}
	net.Heal("a", "b")
	if err := get(tsB.URL); err != nil {
		t.Fatalf("healed request failed: %v", err)
	}
}

func TestNetworkSlowPairDeterministicAndContextAware(t *testing.T) {
	ts := okServer(t)
	// Two fabrics with equal seeds must plan identical delays.
	n1 := NewNetwork(42)
	n2 := NewNetwork(42)
	for _, n := range []*Network{n1, n2} {
		n.Register("b", ts.URL)
		n.SlowPair("a", "b", 20*time.Millisecond)
	}
	for i := 0; i < 5; i++ {
		_, d1 := n1.route("a", ts.URL+"/x")
		_, d2 := n2.route("a", ts.URL+"/x")
		if d1 != d2 {
			t.Fatalf("request %d: delays diverged under equal seeds: %v vs %v", i, d1, d2)
		}
		if d1 < 20*time.Millisecond || d1 > 30*time.Millisecond {
			t.Fatalf("delay %v outside [d, 1.5d]", d1)
		}
	}
	// A deadline shorter than the injected delay fails fast with the
	// context error instead of sleeping out the full delay.
	client := &http.Client{Transport: n1.Transport("a", nil), Timeout: 5 * time.Millisecond}
	start := time.Now()
	if _, err := client.Get(ts.URL + "/x"); err == nil {
		t.Fatal("expected a deadline error through the slow link")
	}
	if waited := time.Since(start); waited > 15*time.Millisecond {
		t.Fatalf("slow link ignored the request deadline (waited %v)", waited)
	}
	// HealAll clears the slow link.
	n1.HealAll()
	if cut, d := n1.route("a", ts.URL+"/x"); cut || d != 0 {
		t.Fatalf("HealAll left faults behind: cut=%v delay=%v", cut, d)
	}
}

func TestNetworkUnregisteredPassthrough(t *testing.T) {
	ts := okServer(t)
	net := NewNetwork(1)
	net.Partition("a", "b") // no peers registered — nothing to attribute
	client := &http.Client{Transport: net.Transport("a", nil)}
	resp, err := client.Get(ts.URL + "/x")
	if err != nil {
		t.Fatalf("unregistered destination must pass through: %v", err)
	}
	resp.Body.Close()
}
