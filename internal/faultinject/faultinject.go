// Package faultinject wraps an http.Handler with deterministic,
// seeded fault injection — latency spikes, injected error responses,
// connection drops — so the resilience machinery (client retries,
// hedging, per-item batch errors, goroutine hygiene) can be exercised in
// ordinary Go tests without flaky sleeps or real network failures.
//
// Faults are drawn per request from a seeded PRNG, so a fixed seed
// replays the identical fault sequence; the chaos CI job pins one.
package faultinject

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ltsp/internal/wire"
)

// Config selects which faults to inject and how often. Probabilities are
// in [0, 1] and evaluated independently per request, in the order drop,
// error, latency (at most one of drop/error fires; latency can combine
// with a normal response).
type Config struct {
	// Seed seeds the fault source (0 = fixed default). Equal seeds give
	// identical fault sequences over the same request order.
	Seed int64

	// DropProb aborts the connection mid-response without writing
	// anything — the client sees a transport error, not an HTTP status.
	DropProb float64

	// ErrProb replaces the response with an injected v2 error envelope
	// (status ErrStatus, code "injected", retryable).
	ErrProb float64
	// ErrStatus is the status of injected errors (default 503).
	ErrStatus int
	// ErrRetryAfterSecs, when positive, stamps injected errors with a
	// Retry-After header of that many seconds — for exercising clients
	// that floor their backoff at the server's hint. Zero omits the
	// header (whole-second floors make tests crawl).
	ErrRetryAfterSecs int

	// LatencyProb delays handling by a uniform duration in
	// [LatencyMin, LatencyMax] (default 1–10ms when only the probability
	// is set).
	LatencyProb float64
	LatencyMin  time.Duration
	LatencyMax  time.Duration

	// Exempt returns true for requests the injector must pass through
	// untouched (e.g. /healthz probes). Nil exempts nothing.
	Exempt func(*http.Request) bool
}

// Stats counts the faults actually injected.
type Stats struct {
	Requests  int64
	Drops     int64
	Errors    int64
	Latencies int64
}

// Injector is the fault-injecting middleware. Wrap the real handler and
// serve the Injector instead.
type Injector struct {
	cfg  Config
	next http.Handler

	mu  sync.Mutex // rand.Rand is not concurrency-safe
	rng *rand.Rand

	requests  atomic.Int64
	drops     atomic.Int64
	errors    atomic.Int64
	latencies atomic.Int64
}

// Wrap builds an Injector around next.
func Wrap(next http.Handler, cfg Config) *Injector {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	if cfg.ErrStatus == 0 {
		cfg.ErrStatus = http.StatusServiceUnavailable
	}
	if cfg.LatencyProb > 0 && cfg.LatencyMax <= 0 {
		cfg.LatencyMin, cfg.LatencyMax = time.Millisecond, 10*time.Millisecond
	}
	return &Injector{cfg: cfg, next: next, rng: rand.New(rand.NewSource(seed))}
}

// Stats returns a snapshot of the injected-fault counters.
func (in *Injector) Stats() Stats {
	return Stats{
		Requests:  in.requests.Load(),
		Drops:     in.drops.Load(),
		Errors:    in.errors.Load(),
		Latencies: in.latencies.Load(),
	}
}

// plan draws this request's faults in one locked section so the fault
// sequence is a deterministic function of (seed, request order).
func (in *Injector) plan() (drop, injErr bool, delay time.Duration) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.cfg.DropProb > 0 && in.rng.Float64() < in.cfg.DropProb {
		return true, false, 0
	}
	if in.cfg.ErrProb > 0 && in.rng.Float64() < in.cfg.ErrProb {
		injErr = true
	}
	if in.cfg.LatencyProb > 0 && in.rng.Float64() < in.cfg.LatencyProb {
		span := int64(in.cfg.LatencyMax - in.cfg.LatencyMin)
		delay = in.cfg.LatencyMin
		if span > 0 {
			delay += time.Duration(in.rng.Int63n(span + 1))
		}
	}
	return drop, injErr, delay
}

// ServeHTTP implements http.Handler.
func (in *Injector) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if in.cfg.Exempt != nil && in.cfg.Exempt(r) {
		in.next.ServeHTTP(w, r)
		return
	}
	in.requests.Add(1)
	drop, injErr, delay := in.plan()
	if delay > 0 {
		in.latencies.Add(1)
		timer := time.NewTimer(delay)
		select {
		case <-timer.C:
		case <-r.Context().Done():
			timer.Stop()
		}
	}
	if drop {
		in.drops.Add(1)
		// The canonical way to sever the connection from inside a
		// handler: the http server recovers this sentinel, closes the
		// socket, and does not log a stack trace.
		panic(http.ErrAbortHandler)
	}
	if injErr {
		in.errors.Add(1)
		w.Header().Set("Content-Type", "application/json")
		if in.cfg.ErrRetryAfterSecs > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(in.cfg.ErrRetryAfterSecs))
		}
		w.WriteHeader(in.cfg.ErrStatus)
		data, _ := json.Marshal(wire.NewError(wire.CodeInjected, "fault injected by test harness"))
		_, _ = w.Write(data)
		return
	}
	in.next.ServeHTTP(w, r)
}
