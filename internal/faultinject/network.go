package faultinject

// Network-level fault injection: partitions and slow links between
// named peers, applied at the http.RoundTripper layer. Where Injector
// perturbs a single server's responses, Network models the fabric
// between a set of ltspd nodes — a partitioned pair sees
// connection-refused-style transport errors in both directions, a slow
// pair sees a deterministic per-pair delay — so cluster tests can cut a
// three-node ring in half mid-batch, heal it, and assert anti-entropy
// reconverges, all without real sockets misbehaving.

import (
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Network is a registry of peers and the injected faults between them.
// It is safe for concurrent use; fault changes (Partition, Heal,
// SlowPair) take effect on the next request through any Transport.
type Network struct {
	mu    sync.Mutex
	rng   *rand.Rand
	peers map[string]string // peer ID -> base URL (scheme://host:port)
	cut   map[pair]bool
	slow  map[pair]time.Duration
}

type pair struct{ a, b string }

// pairOf normalizes an unordered peer pair (faults are symmetric).
func pairOf(a, b string) pair {
	if a > b {
		a, b = b, a
	}
	return pair{a, b}
}

// NewNetwork creates a fault fabric. seed drives the deterministic
// jitter SlowPair adds around its base delay (0 = fixed default seed).
func NewNetwork(seed int64) *Network {
	if seed == 0 {
		seed = 1
	}
	return &Network{
		rng:   rand.New(rand.NewSource(seed)),
		peers: make(map[string]string),
		cut:   make(map[pair]bool),
		slow:  make(map[pair]time.Duration),
	}
}

// Register maps a peer ID to its base URL so Transports can attribute
// outbound requests to a destination peer.
func (n *Network) Register(id, baseURL string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers[id] = strings.TrimRight(baseURL, "/")
}

// Partition cuts the link between two peers, both directions.
func (n *Network) Partition(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cut[pairOf(a, b)] = true
}

// Heal restores the link between two peers.
func (n *Network) Heal(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.cut, pairOf(a, b))
}

// HealAll restores every cut link and clears every slow link.
func (n *Network) HealAll() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cut = make(map[pair]bool)
	n.slow = make(map[pair]time.Duration)
}

// SlowPair makes the link between two peers slow: every request over it
// is delayed by d plus deterministic seeded jitter in [0, d/2].
func (n *Network) SlowPair(a, b string, d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.slow[pairOf(a, b)] = d
}

// route classifies one request from self to the peer owning url,
// returning whether the link is cut and how long to delay. Requests to
// unregistered destinations pass through untouched.
func (n *Network) route(self, url string) (cut bool, delay time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	var dest string
	for id, base := range n.peers {
		if strings.HasPrefix(url, base+"/") || url == base {
			dest = id
			break
		}
	}
	if dest == "" || dest == self {
		return false, 0
	}
	p := pairOf(self, dest)
	if n.cut[p] {
		return true, 0
	}
	if d := n.slow[p]; d > 0 {
		jitter := time.Duration(0)
		if half := int64(d / 2); half > 0 {
			jitter = time.Duration(n.rng.Int63n(half + 1))
		}
		return false, d + jitter
	}
	return false, 0
}

// PartitionError is the transport error a cut link produces — the
// moral equivalent of connection refused, distinguishable in test
// assertions.
type PartitionError struct{ From, URL string }

func (e *PartitionError) Error() string {
	return fmt.Sprintf("faultinject: network partition: %s cannot reach %s", e.From, e.URL)
}

// transport applies the fabric's faults to requests sent by one peer.
type transport struct {
	net  *Network
	self string
	base http.RoundTripper
}

// Transport wraps base (nil = http.DefaultTransport) with the fabric's
// view from self: requests over cut links fail with *PartitionError
// before touching the wire, requests over slow links are delayed
// (respecting the request context). Give each node's peer http.Client
// one of these.
func (n *Network) Transport(self string, base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &transport{net: n, self: self, base: base}
}

func (t *transport) RoundTrip(r *http.Request) (*http.Response, error) {
	cut, delay := t.net.route(t.self, r.URL.String())
	if cut {
		return nil, &PartitionError{From: t.self, URL: r.URL.String()}
	}
	if delay > 0 {
		timer := time.NewTimer(delay)
		select {
		case <-timer.C:
		case <-r.Context().Done():
			timer.Stop()
			return nil, r.Context().Err()
		}
	}
	return t.base.RoundTrip(r)
}
