package machine

import (
	"testing"

	"ltsp/internal/ir"
)

func TestItanium2Geometry(t *testing.T) {
	m := Itanium2()
	if m.IssueWidth != 6 {
		t.Errorf("issue width = %d", m.IssueWidth)
	}
	if m.Units[PortM] != 4 || m.Units[PortI] != 2 || m.Units[PortF] != 2 || m.Units[PortB] != 3 {
		t.Errorf("units = %v", m.Units)
	}
	if m.RotGR != 96 || m.RotFR != 96 || m.RotPR != 48 {
		t.Errorf("rotating regions = %d/%d/%d", m.RotGR, m.RotFR, m.RotPR)
	}
	if m.OzQCapacity != 48 {
		t.Errorf("OzQ capacity = %d, want 48 (paper Sec. 2)", m.OzQCapacity)
	}
	// The paper's latency table (Sec. 2 / 3.3).
	if m.Lat.L1Best != 1 || m.Lat.L2Best != 5 || m.Lat.L3Best != 14 {
		t.Errorf("best-case latencies = %+v", m.Lat)
	}
	if m.Lat.L2Typ != 11 || m.Lat.L3Typ != 21 {
		t.Errorf("typical latencies = %+v, want 11/21 (paper Sec. 3.3)", m.Lat)
	}
}

func TestPortOf(t *testing.T) {
	m := Itanium2()
	tests := []struct {
		op    ir.Op
		port  Port
		aType bool
	}{
		{ir.OpLd, PortM, false},
		{ir.OpStF, PortM, false},
		{ir.OpLfetch, PortM, false},
		{ir.OpAdd, PortI, true},
		{ir.OpCmpEq, PortI, true},
		{ir.OpFMA, PortF, false},
		{ir.OpMul, PortF, false},
		{ir.OpBrCtop, PortB, false},
	}
	for _, tt := range tests {
		port, aType := m.PortOf(tt.op)
		if port != tt.port || aType != tt.aType {
			t.Errorf("PortOf(%v) = %v,%v want %v,%v", tt.op, port, aType, tt.port, tt.aType)
		}
	}
}

func TestLatencyTable(t *testing.T) {
	m := Itanium2()
	if m.Latency(ir.OpAdd) != 1 || m.Latency(ir.OpFMA) != 4 || m.Latency(ir.OpMul) != 4 {
		t.Error("ALU/FP latencies wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("Latency(OpLd) did not panic")
		}
	}()
	m.Latency(ir.OpLd)
}

func TestBaseLoadLatency(t *testing.T) {
	m := Itanium2()
	if m.BaseLoadLatency(false) != 1 {
		t.Error("integer base load latency != L1 best")
	}
	// FP loads bypass L1: L2 best + 1 format-conversion cycle.
	if m.BaseLoadLatency(true) != 6 {
		t.Errorf("FP base load latency = %d, want 6", m.BaseLoadLatency(true))
	}
}

func TestHintLatency(t *testing.T) {
	m := Itanium2()
	tests := []struct {
		hint ir.Hint
		fp   bool
		want int
	}{
		{ir.HintNone, false, 1},
		{ir.HintL2, false, 11},
		{ir.HintL3, false, 21},
		{ir.HintNone, true, 6},
		{ir.HintL2, true, 12},
		{ir.HintL3, true, 22},
	}
	for _, tt := range tests {
		if got := m.HintLatency(tt.hint, tt.fp); got != tt.want {
			t.Errorf("HintLatency(%v, fp=%v) = %d, want %d", tt.hint, tt.fp, got, tt.want)
		}
	}
}

func TestLoadLatencyQuery(t *testing.T) {
	m := Itanium2()
	ld := ir.Ld(ir.VGR(0), ir.VGR(1), 4, 0)
	ld.Mem.Hint = ir.HintL3
	// The critical/non-critical protocol of Sec. 3.3: base when expected is
	// false, hint-derived typical value when true.
	if got := m.LoadLatency(ld, false); got != 1 {
		t.Errorf("base query = %d", got)
	}
	if got := m.LoadLatency(ld, true); got != 21 {
		t.Errorf("expected query = %d", got)
	}
	ldf := ir.LdF(ir.VFR(0), ir.VGR(1), 0)
	ldf.Mem.Hint = ir.HintL2
	if got := m.LoadLatency(ldf, true); got != 12 {
		t.Errorf("FP expected query = %d", got)
	}
	// Unhinted loads return base latency even when expected is requested.
	plain := ir.Ld(ir.VGR(0), ir.VGR(1), 4, 0)
	if got := m.LoadLatency(plain, true); got != 1 {
		t.Errorf("unhinted expected query = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("LoadLatency on non-load did not panic")
		}
	}()
	m.LoadLatency(ir.Add(ir.VGR(0), ir.VGR(1), ir.VGR(2)), true)
}

func TestResultLatency(t *testing.T) {
	m := Itanium2()
	ld := ir.Ld(ir.VGR(0), ir.VGR(1), 4, 0)
	ld.Mem.Hint = ir.HintL2
	expected := func(in *ir.Instr) int { return m.LoadLatency(in, true) }
	if got := m.ResultLatency(ld, expected); got != 11 {
		t.Errorf("ResultLatency(load) = %d", got)
	}
	if got := m.ResultLatency(ir.FMA(ir.VFR(0), ir.VFR(1), ir.VFR(2), ir.VFR(3)), expected); got != 4 {
		t.Errorf("ResultLatency(fma) = %d", got)
	}
}

func TestPortString(t *testing.T) {
	for p, want := range map[Port]string{PortM: "M", PortI: "I", PortF: "F", PortB: "B"} {
		if p.String() != want {
			t.Errorf("Port(%d).String() = %q", p, p.String())
		}
	}
}

func TestPortOfNewOps(t *testing.T) {
	m := Itanium2()
	// sel is an A-type integer op; fsel runs on the FP units; chk.a
	// occupies an integer slot.
	if p, a := m.PortOf(ir.OpSel); p != PortI || !a {
		t.Errorf("sel port = %v,%v", p, a)
	}
	if p, a := m.PortOf(ir.OpFSel); p != PortF || a {
		t.Errorf("fsel port = %v,%v", p, a)
	}
	if p, a := m.PortOf(ir.OpChk); p != PortI || !a {
		t.Errorf("chk port = %v,%v", p, a)
	}
	if m.Latency(ir.OpSel) != 1 || m.Latency(ir.OpChk) != 1 {
		t.Error("sel/chk latency wrong")
	}
}
