// Package machine models an Itanium-2-class in-order EPIC target for the
// software pipeliner and the timing simulator: dispersal ports, instruction
// latencies, the cache hierarchy's best-case and typical load latencies,
// register-file geometry (including the rotating regions), and the OzQ
// memory-request queue capacity.
//
// The central API for the paper's technique is LoadLatency: the pipeliner
// queries it with the load's HLO hint token and a flag saying whether the
// load was classified critical. Critical loads (and Recurrence-II
// computation) use base latencies; non-critical loads are scheduled at the
// hint-derived typical latency of the next cache level (paper Sec. 3.3).
package machine

import (
	"fmt"

	"ltsp/internal/ir"
)

// Port is a dispersal port class of the processor.
type Port uint8

const (
	// PortM executes memory operations (and can absorb A-type integer ALU
	// operations).
	PortM Port = iota
	// PortI executes integer operations.
	PortI
	// PortF executes floating-point operations (including integer multiply,
	// which runs as xma on the FP unit).
	PortF
	// PortB executes branches.
	PortB
	// NumPorts is the number of port classes.
	NumPorts
)

// String names the port class.
func (p Port) String() string {
	switch p {
	case PortM:
		return "M"
	case PortI:
		return "I"
	case PortF:
		return "F"
	case PortB:
		return "B"
	}
	return "?"
}

// CacheLatencies lists load-to-use latencies of the memory hierarchy. Best
// values are the manual's best-case latencies; Typ values are the "typical"
// latencies the hint translation uses, which leave headroom for dynamic
// hazards such as bank conflicts (paper Sec. 3.3: L2 5 -> 11, L3 14 -> 21).
type CacheLatencies struct {
	L1Best int
	L2Best int
	L2Typ  int
	L3Best int
	L3Typ  int
	Memory int
}

// Model describes the target processor.
type Model struct {
	// Name of the model for diagnostics.
	Name string
	// IssueWidth is the maximum instructions issued per cycle.
	IssueWidth int
	// Units[p] is the number of functional units behind port class p.
	Units [NumPorts]int
	// Lat holds the cache-hierarchy latencies.
	Lat CacheLatencies
	// FPLoadExtra is added to FP load latencies (format conversion;
	// paper Sec. 3.3: "FP loads require one additional cycle").
	FPLoadExtra int
	// RotGR / RotFR are the sizes of the rotating general and FP register
	// regions (r32.., f32..). RotPR is the rotating predicate region size
	// (p16-p63).
	RotGR, RotFR, RotPR int
	// StaticGR / StaticFR / StaticPR are registers available outside the
	// rotating regions for loop-invariant values.
	StaticGR, StaticFR, StaticPR int
	// OzQCapacity is the number of outstanding memory requests the OzQ
	// (the queue between L1 and L2) sustains before the execution pipeline
	// stalls on the next memory operation.
	OzQCapacity int
	// L2Banks is the number of L2 cache banks, for the optional
	// bank-conflict model. Zero disables it.
	L2Banks int
	// BankConflictPenalty is the extra latency a conflicting access pays.
	BankConflictPenalty int
}

// Itanium2 returns the Dual-Core Itanium 2 ("Montecito"-class) model used
// throughout the paper's evaluation: 6-wide issue; 4 M, 2 I, 2 F, 3 B
// units; L1D/L2/L3 best-case integer-load latencies 1/5/14 with typical
// values 11/21; 96 rotating GRs and FRs; 48 rotating predicates; a 48-entry
// OzQ.
func Itanium2() *Model {
	return &Model{
		Name:       "itanium2",
		IssueWidth: 6,
		Units:      [NumPorts]int{PortM: 4, PortI: 2, PortF: 2, PortB: 3},
		Lat: CacheLatencies{
			L1Best: 1, L2Best: 5, L2Typ: 11, L3Best: 14, L3Typ: 21,
			Memory: 200,
		},
		FPLoadExtra:         1,
		RotGR:               96,
		RotFR:               96,
		RotPR:               48,
		StaticGR:            31, // r1-r31 (r0 is hardwired zero)
		StaticFR:            30, // f2-f31 (f0=0.0, f1=1.0 are constants)
		StaticPR:            14, // p1-p15 (p0 is hardwired true)
		OzQCapacity:         48,
		L2Banks:             16,
		BankConflictPenalty: 2,
	}
}

// PortOf returns the dispersal port class of the opcode and whether the
// instruction is A-type (integer ALU that may issue on either an M or an I
// unit).
func (m *Model) PortOf(op ir.Op) (port Port, aType bool) {
	switch {
	case op.IsMem():
		return PortM, false
	case op.IsBranch():
		return PortB, false
	case op.IsFP():
		return PortF, false
	case op == ir.OpNop:
		return PortI, true
	default:
		// Integer ALU, moves, compares: A-type.
		return PortI, true
	}
}

// Latency returns the def-to-use latency of a non-load instruction's
// results. Loads must use LoadLatency. Stores, prefetches and branches
// produce no register results; their post-incremented base register is
// available after one cycle, which is the value returned for them.
func (m *Model) Latency(op ir.Op) int {
	switch op {
	case ir.OpLd, ir.OpLdF:
		panic("machine: use LoadLatency for loads")
	case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFMA, ir.OpMul, ir.OpSetF:
		return 4
	case ir.OpGetF:
		return 2
	case ir.OpFMovI, ir.OpFMov, ir.OpFCmpLt:
		return 1
	default:
		return 1
	}
}

// BaseLoadLatency returns the best-case (minimum) latency of a load: L1
// best case for integer loads, L2 best case plus the FP extra cycle for FP
// loads (FP loads bypass L1 on Itanium 2).
func (m *Model) BaseLoadLatency(fp bool) int {
	if fp {
		return m.Lat.L2Best + m.FPLoadExtra
	}
	return m.Lat.L1Best
}

// HintLatency returns the scheduled latency the given hint token requests:
// the typical (not best-case) latency of the hinted cache level, plus the
// FP extra cycle. HintNone returns the base latency.
func (m *Model) HintLatency(hint ir.Hint, fp bool) int {
	extra := 0
	if fp {
		extra = m.FPLoadExtra
	}
	switch hint {
	case ir.HintL2:
		return m.Lat.L2Typ + extra
	case ir.HintL3:
		return m.Lat.L3Typ + extra
	default:
		return m.BaseLoadLatency(fp)
	}
}

// LoadLatency is the machine-model query the pipeliner issues while
// scheduling (paper Sec. 3.3): when expected is false (the load is critical
// or Recurrence-II is being computed) the base latency is returned; when
// expected is true the hint-derived typical latency is returned.
func (m *Model) LoadLatency(in *ir.Instr, expected bool) int {
	if !in.Op.IsLoad() {
		panic(fmt.Sprintf("machine: LoadLatency on non-load %v", in.Op))
	}
	fp := in.Op == ir.OpLdF
	if !expected || in.Mem == nil {
		return m.BaseLoadLatency(fp)
	}
	lat := m.HintLatency(in.Mem.Hint, fp)
	if base := m.BaseLoadLatency(fp); lat < base {
		return base
	}
	return lat
}

// ResultLatency returns the scheduling latency of any instruction given a
// load-latency policy function; non-loads use the fixed table.
func (m *Model) ResultLatency(in *ir.Instr, loadLat func(*ir.Instr) int) int {
	if in.Op.IsLoad() {
		return loadLat(in)
	}
	return m.Latency(in.Op)
}
