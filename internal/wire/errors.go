package wire

import "fmt"

// The v2 error envelope. Every non-2xx ltspd response (on v1 and v2
// paths alike) carries this JSON body, so clients branch on a stable
// machine-readable code instead of parsing message strings. The
// Retryable flag is authoritative: it tells clients whether resubmitting
// the identical request can ever succeed (after the Retry-After delay,
// when the response carries one).

// Error codes of the v2 error envelope.
const (
	// CodeInvalidRequest: the request is malformed or semantically
	// invalid (bad JSON, unknown hint mode, undecodable loop, trip count
	// out of range). Resubmitting the same bytes cannot succeed.
	CodeInvalidRequest = "invalid_request"
	// CodeInvalidLoop: the embedded loop decoded but failed semantic
	// validation (duplicate register definitions, non-finite constants,
	// registers outside the machine files, malformed memory dependences).
	// Resubmitting the same loop cannot succeed.
	CodeInvalidLoop = "invalid_loop"
	// CodeUnsupportedVersion: the request envelope version is not
	// supported by this server.
	CodeUnsupportedVersion = "unsupported_version"
	// CodeNotFound: the referenced artifact hash is not in the cache.
	CodeNotFound = "not_found"
	// CodeTooLarge: the body or batch exceeds a server limit.
	CodeTooLarge = "too_large"
	// CodeDeadlineExceeded: the request's deadline expired before the
	// work finished; the work was canceled cooperatively.
	CodeDeadlineExceeded = "deadline_exceeded"
	// CodeOverloaded: admission control predicted the request cannot
	// meet its deadline (or the worker-pool queue timed out). The
	// response carries a Retry-After header.
	CodeOverloaded = "overloaded"
	// CodeDraining: the server is shutting down and no longer accepts
	// new work. Retry against another replica, or after Retry-After.
	CodeDraining = "draining"
	// CodeUnsupportedMedia: the request's Content-Type names an encoding
	// this server does not speak (neither JSON nor the binary wire
	// format). Resubmitting the same bytes cannot succeed; re-encode as
	// application/json, which every server accepts.
	CodeUnsupportedMedia = "unsupported_media"
	// CodeInternal: an unexpected server-side failure.
	CodeInternal = "internal"
	// CodeInjected: a fault injected by the test harness (package
	// faultinject); never emitted in production.
	CodeInjected = "injected"
)

// Retryable reports whether a code describes a transient condition where
// resubmitting the identical request may succeed.
func Retryable(code string) bool {
	switch code {
	case CodeDeadlineExceeded, CodeOverloaded, CodeDraining, CodeInternal, CodeInjected:
		return true
	}
	return false
}

// ErrorBody is the inner object of the error envelope.
type ErrorBody struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	Retryable bool   `json:"retryable"`
}

// ErrorEnvelope is the body of every non-2xx ltspd response:
//
//	{"error":{"code":"overloaded","message":"...","retryable":true}}
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// NewError builds an envelope with Retryable derived from the code.
func NewError(code, format string, args ...any) ErrorEnvelope {
	return ErrorEnvelope{Error: ErrorBody{
		Code:      code,
		Message:   fmt.Sprintf(format, args...),
		Retryable: Retryable(code),
	}}
}

// DeadlineHeader carries the client's remaining deadline budget in whole
// milliseconds. The server tightens its own per-endpoint timeout to the
// smaller of the two, so a client that has 200ms left never occupies a
// worker for 10s, and the load shedder can reject requests whose budget
// cannot be met before they consume a worker slot.
const DeadlineHeader = "X-Request-Deadline-Ms"
