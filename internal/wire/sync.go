package wire

// Anti-entropy and provenance wire types (cluster-internal surface).
//
// GET /v2/sync/digest?owner=ID returns SyncDigestResponse: a compact
// per-bucket digest of the artifacts this node holds that the named
// owner's ring position makes it responsible for. Buckets partition the
// key space by the first hex byte of the artifact hash (256 buckets);
// a requester compares bucket digests against its own and lists only
// the mismatched buckets via GET /v2/sync/keys?owner=ID&bucket=XX,
// then pulls whatever it is missing through the ordinary artifact
// endpoint. The response also carries the responder's provenance chain
// head and latest Merkle batch root, so peers exchange tamper-evidence
// anchors with every sync round.

// SyncBucket is one non-empty digest bucket.
type SyncBucket struct {
	// Bucket is the first hex byte of the hashes it covers (0..255).
	Bucket int `json:"bucket"`
	// Count is how many owned artifacts fall in the bucket.
	Count int `json:"count"`
	// Digest is a truncated sha256 over the sorted "hash checksum"
	// lines of the bucket — equal digests mean equal bucket contents.
	Digest string `json:"digest"`
}

// SyncDigestResponse is the GET /v2/sync/digest document.
type SyncDigestResponse struct {
	Version int    `json:"v"`
	Self    string `json:"self"`  // responder's peer ID
	Owner   string `json:"owner"` // the owner the digest was computed for
	// Replication echoes the responder's replica-set size; a mismatch
	// with the requester's is a config drift worth logging.
	Replication int          `json:"replication"`
	Buckets     []SyncBucket `json:"buckets,omitempty"`
	// Provenance chain anchors.
	ProvenanceSeq  uint64 `json:"provenance_seq,omitempty"`
	ProvenanceHead string `json:"provenance_head,omitempty"`
	ProvenanceRoot string `json:"provenance_root,omitempty"` // latest Merkle batch root
	ProvenanceN    int    `json:"provenance_batches,omitempty"`
}

// SyncKey is one artifact the responder holds for the requested owner.
type SyncKey struct {
	Hash string `json:"hash"`
	// Checksum is the store entry's section checksum as recorded in the
	// responder's provenance log ("" when the responder has no record,
	// e.g. entries created before provenance was enabled).
	Checksum string `json:"checksum,omitempty"`
}

// SyncKeysResponse is the GET /v2/sync/keys document.
type SyncKeysResponse struct {
	Version int       `json:"v"`
	Self    string    `json:"self"`
	Owner   string    `json:"owner"`
	Bucket  int       `json:"bucket"`
	Keys    []SyncKey `json:"keys,omitempty"`
}

// ProvenanceRecordJSON is one provenance chain record as served by
// GET /v2/provenance/{hash}.
type ProvenanceRecordJSON struct {
	Seq      uint64 `json:"seq"`
	TimeUnix int64  `json:"t"`
	Source   string `json:"source"`
	Checksum string `json:"checksum"`
	Prev     string `json:"prev,omitempty"`
	Sum      string `json:"sum"`
}

// ProvenanceResponse is the GET /v2/provenance/{hash} document: the
// artifact's recent provenance records plus the node's chain anchors,
// and whether the artifact's current store entry still matches its
// latest record (present reports whether the entry exists at all).
type ProvenanceResponse struct {
	Version int    `json:"v"`
	Hash    string `json:"hash"`
	Self    string `json:"self,omitempty"`
	// Checksum is the latest recorded entry checksum for the hash.
	Checksum string                 `json:"checksum"`
	Records  []ProvenanceRecordJSON `json:"records,omitempty"`
	// Present / Consistent: whether the store currently holds the entry
	// and whether it matches the provenance record (a false Consistent
	// means the entry was quarantined by this very request).
	Present    bool `json:"present"`
	Consistent bool `json:"consistent"`
	// Chain anchors (same values the sync digest carries).
	HeadSeq  uint64 `json:"head_seq"`
	HeadSum  string `json:"head_sum,omitempty"`
	Root     string `json:"root,omitempty"`
	RootsLen int    `json:"batches,omitempty"`
}
