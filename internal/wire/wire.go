// Package wire defines the versioned JSON request envelopes of the ltspd
// compile-and-simulate service and the content-addressed artifact key.
//
// A compile request is (loop, compile options); its Hash — the hex sha256
// of the canonical envelope encoding — is the service's artifact-cache
// key. Canonicalization re-encodes the embedded loop through the ir codec
// and normalizes the option spellings, so two requests that mean the same
// compilation hash identically regardless of how the client formatted its
// JSON.
package wire

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"

	"ltsp"
	"ltsp/internal/hlo"
	"ltsp/internal/ir"
	"ltsp/internal/sched"
	"ltsp/internal/sim"
)

// Version tags the request envelope format.
const Version = 1

// Options is the wire form of ltsp.Options. The machine model is not part
// of the wire format: the service compiles for its configured target
// (today always the paper's Dual-Core Itanium 2).
type Options struct {
	// Mode is the HLO hint policy: "" or "none", "all-l3", "all-fp-l2",
	// "hlo".
	Mode string `json:"mode,omitempty"`
	// Prefetch enables the software prefetcher.
	Prefetch bool `json:"prefetch,omitempty"`
	// LatencyTolerant enables latency-tolerant pipelining.
	LatencyTolerant bool `json:"latencyTolerant,omitempty"`
	// BoostDelinquent boosts HLO-flagged delinquent loads even when
	// LatencyTolerant is off.
	BoostDelinquent bool `json:"boostDelinquent,omitempty"`
	// TripEstimate is the compile-time trip-count estimate (<= 0 unknown).
	TripEstimate float64 `json:"tripEstimate,omitempty"`
	// Pipeline forces the pipelining decision; nil = pipeline if possible.
	Pipeline *bool `json:"pipeline,omitempty"`
	// Backend selects the scheduling backend: "" or "heuristic" (the
	// production modulo scheduler), "exact", or "oracle". The canonical
	// spelling of the heuristic is "" — it vanishes from canonical
	// encodings, so pre-backend artifact hashes are unchanged — while
	// exact and oracle requests hash distinctly and cached artifacts
	// never cross backends.
	Backend string `json:"backend,omitempty"`
}

// ModeName returns the canonical wire spelling of an HLO hint mode
// (ModeNone is spelled "" so it vanishes from canonical encodings).
func ModeName(m hlo.HintMode) string {
	switch m {
	case hlo.ModeAllL3:
		return "all-l3"
	case hlo.ModeAllFPL2:
		return "all-fp-l2"
	case hlo.ModeHLO:
		return "hlo"
	default:
		return ""
	}
}

// ParseMode parses a wire hint-mode spelling.
func ParseMode(s string) (hlo.HintMode, error) {
	switch s {
	case "", "none":
		return hlo.ModeNone, nil
	case "all-l3":
		return hlo.ModeAllL3, nil
	case "all-fp-l2":
		return hlo.ModeAllFPL2, nil
	case "hlo":
		return hlo.ModeHLO, nil
	}
	return 0, fmt.Errorf("wire: unknown hint mode %q", s)
}

// BackendName returns the canonical wire spelling of a scheduler backend
// (the heuristic is spelled "" so it vanishes from canonical encodings).
func BackendName(s string) string {
	if s == sched.BackendHeuristic {
		return ""
	}
	return s
}

// ParseBackend parses a wire backend spelling into its canonical form.
// Names must be registered with the scheduler registry; resubmitting an
// unknown name cannot succeed, so the error is non-retryable.
func ParseBackend(s string) (string, error) {
	if s == "" || s == sched.BackendHeuristic {
		return "", nil
	}
	if _, err := sched.New(s); err != nil {
		return "", fmt.Errorf("wire: unknown scheduler backend %q (have %v)", s, sched.Backends())
	}
	return s, nil
}

// OptionsFrom converts library compile options to their wire form.
func OptionsFrom(o ltsp.Options) Options {
	return Options{
		Mode:            ModeName(o.Mode),
		Prefetch:        o.Prefetch,
		LatencyTolerant: o.LatencyTolerant,
		BoostDelinquent: o.BoostDelinquent,
		TripEstimate:    o.TripEstimate,
		Pipeline:        o.Pipeline,
		Backend:         BackendName(o.Backend),
	}
}

// ToOptions converts wire options to library compile options.
func (w Options) ToOptions() (ltsp.Options, error) {
	mode, err := ParseMode(w.Mode)
	if err != nil {
		return ltsp.Options{}, err
	}
	backend, err := ParseBackend(w.Backend)
	if err != nil {
		return ltsp.Options{}, err
	}
	if math.IsNaN(w.TripEstimate) || math.IsInf(w.TripEstimate, 0) {
		return ltsp.Options{}, fmt.Errorf("wire: non-finite trip estimate %v", w.TripEstimate)
	}
	// No real loop runs 10^12 iterations per invocation; beyond that the
	// estimate is adversarial and risks float->int overflow downstream.
	if w.TripEstimate > 1e12 {
		return ltsp.Options{}, fmt.Errorf("wire: absurd trip estimate %v", w.TripEstimate)
	}
	return ltsp.Options{
		Mode:            mode,
		Prefetch:        w.Prefetch,
		LatencyTolerant: w.LatencyTolerant,
		BoostDelinquent: w.BoostDelinquent,
		TripEstimate:    w.TripEstimate,
		Pipeline:        w.Pipeline,
		Backend:         backend,
	}, nil
}

// canonical normalizes the wire options (mode spelling, pipeline pointer
// identity) so that envelope hashing sees one representation per meaning.
func (w Options) canonical() (Options, error) {
	o, err := w.ToOptions()
	if err != nil {
		return Options{}, err
	}
	return OptionsFrom(o), nil
}

// SimOptions is the serializable subset of sim.Config. Nil fields take the
// paper-reproduction defaults (sim.DefaultConfig); the machine model and
// cache geometry are the service's own.
type SimOptions struct {
	BankConflicts    *bool `json:"bankConflicts,omitempty"`
	FEOverhead       *int  `json:"feOverhead,omitempty"`
	FlushOverhead    *int  `json:"flushOverhead,omitempty"`
	RSECyclesPerExec int64 `json:"rseCyclesPerExec,omitempty"`
}

// ToConfig overlays the wire fields on the default simulator config.
func (w SimOptions) ToConfig() sim.Config {
	cfg := sim.DefaultConfig()
	if w.BankConflicts != nil {
		cfg.BankConflicts = *w.BankConflicts
	}
	if w.FEOverhead != nil {
		cfg.FEOverhead = *w.FEOverhead
	}
	if w.FlushOverhead != nil {
		cfg.FlushOverhead = *w.FlushOverhead
	}
	cfg.RSECyclesPerExec = w.RSECyclesPerExec
	return cfg
}

// MemInit seeds one memory word before simulation. Float selects the
// floating-point store form (8-byte IEEE754); otherwise Size/Val describe
// an integer store.
type MemInit struct {
	Addr  int64   `json:"addr"`
	Size  int     `json:"size,omitempty"`
	Val   int64   `json:"val,omitempty"`
	FVal  float64 `json:"fval,omitempty"`
	Float bool    `json:"float,omitempty"`
}

// CompileRequest is the body of POST /v1/compile.
type CompileRequest struct {
	Version int `json:"v"`
	// Loop is the ir wire-format loop (see ir.EncodeLoop).
	Loop    json.RawMessage `json:"loop"`
	Options Options         `json:"options"`

	// decoded and canonical memoize work a decoder has already done, so
	// the serving path never re-parses JSON it has in hand. decoded is
	// single-use: DecodeLoop steals it, because the compiler (HLO pass)
	// mutates the loop it is given. Both fields are invisible to
	// encoding/json; a request built by plain JSON unmarshaling starts
	// with neither and behaves exactly as before.
	//
	// memoLoop and memoOpts record the public field values the memos were
	// computed from. A caller that copies a request and then changes Loop
	// or Options (tests do) silently invalidates the memos instead of
	// observing stale results: decoded is trusted only while Loop is the
	// very slice it was parsed from, canonical only while Options is also
	// unchanged.
	decoded   *ir.Loop
	canonical []byte
	memoLoop  json.RawMessage
	memoOpts  Options
}

// sameBytes reports slice identity (not content equality): same length
// and same backing array start. O(1), which is the point — it guards
// memo reuse on every Canonical/DecodeLoop call.
func sameBytes(a, b json.RawMessage) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

// loopMemoValid reports whether r.decoded still corresponds to r.Loop.
func (r *CompileRequest) loopMemoValid() bool {
	return r.decoded != nil && sameBytes(r.Loop, r.memoLoop)
}

// canonMemoValid reports whether r.canonical still corresponds to
// (r.Loop, r.Options).
func (r *CompileRequest) canonMemoValid() bool {
	return r.canonical != nil && r.Options == r.memoOpts && sameBytes(r.Loop, r.memoLoop)
}

// NewDecodedRequest builds a request directly from an already-decoded,
// already-validated loop, memoizing it. The binary wire codec uses it so
// a binary-fed request reaches the compiler without any JSON decode —
// while Canonical()/Hash() still produce exactly the canonical JSON
// bytes a JSON-fed request produces, keeping binary and JSON peers in
// one content-addressed ring.
func NewDecodedRequest(l *ir.Loop, opts Options) (*CompileRequest, error) {
	canonOpts, err := opts.canonical()
	if err != nil {
		return nil, err
	}
	return &CompileRequest{Version: Version, Options: canonOpts, decoded: l}, nil
}

// NewCompileRequest builds a request from an in-memory loop and options.
func NewCompileRequest(l *ir.Loop, o ltsp.Options) (*CompileRequest, error) {
	data, err := ir.EncodeLoop(l)
	if err != nil {
		return nil, err
	}
	return &CompileRequest{Version: Version, Loop: data, Options: OptionsFrom(o)}, nil
}

// DecodeLoop parses the embedded loop. When a decoder memoized the loop
// (binary requests, or a prior Canonical call), the memo is returned
// directly and consumed: the caller is about to hand the loop to the
// compiler, which mutates it, so the memo can be used at most once.
// Before releasing a memoized loop the canonical bytes are pinned, so a
// later Canonical/Hash can never observe compiler mutations.
func (r *CompileRequest) DecodeLoop() (*ir.Loop, error) {
	if r.loopMemoValid() {
		l := r.decoded
		if len(r.Loop) == 0 && !r.canonMemoValid() {
			// The memoized loop is the only loop representation this
			// request has (binary decode): pin the canonical bytes before
			// releasing it to the (mutating) compiler.
			if _, err := r.Canonical(); err != nil {
				return nil, err
			}
		}
		r.decoded = nil
		return l, nil
	}
	if len(r.Loop) == 0 {
		return nil, fmt.Errorf("wire: compile request has no loop")
	}
	return ir.DecodeLoop(r.Loop)
}

// Canonical returns the canonical encoding of the request: version pinned,
// loop re-encoded through the ir codec, options normalized. The result is
// memoized, as is the decoded loop when this call had to parse it — the
// serving path calls Canonical (for the artifact key) and then
// DecodeLoop (to compile), and the pair now costs one loop decode, not
// two.
func (r *CompileRequest) Canonical() ([]byte, error) {
	if r.canonMemoValid() {
		return r.canonical, nil
	}
	if r.Version != Version {
		return nil, fmt.Errorf("wire: unsupported request version %d (want %d)", r.Version, Version)
	}
	l := r.decoded
	if !r.loopMemoValid() {
		if len(r.Loop) == 0 {
			return nil, fmt.Errorf("wire: compile request has no loop")
		}
		var err error
		if l, err = ir.DecodeLoop(r.Loop); err != nil {
			return nil, err
		}
		r.decoded = l
		r.memoLoop = r.Loop
	}
	loopData, err := ir.EncodeLoop(l)
	if err != nil {
		return nil, err
	}
	opts, err := r.Options.canonical()
	if err != nil {
		return nil, err
	}
	canon, err := json.Marshal(CompileRequest{Version: Version, Loop: loopData, Options: opts})
	if err != nil {
		return nil, err
	}
	r.canonical = canon
	r.memoOpts = r.Options
	r.memoLoop = r.Loop
	return canon, nil
}

// Hash returns the content-addressed artifact key of the request: the hex
// sha256 of its canonical encoding.
func (r *CompileRequest) Hash() (string, error) {
	data, err := r.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// CompileItem is one loop of a batch compile: an independent
// (loop, options) pair, exactly the payload of a single CompileRequest.
type CompileItem struct {
	Loop    json.RawMessage `json:"loop"`
	Options Options         `json:"options,omitempty"`

	// decoded memoizes a loop an alternate decoder already produced;
	// Item forwards it into the standalone CompileRequest.
	decoded *ir.Loop
}

// NewDecodedItem builds a batch item from an already-decoded loop,
// memoizing it exactly as NewDecodedRequest does for a single request.
func NewDecodedItem(l *ir.Loop, opts Options) (CompileItem, error) {
	canonOpts, err := opts.canonical()
	if err != nil {
		return CompileItem{}, err
	}
	return CompileItem{Options: canonOpts, decoded: l}, nil
}

// CompileBatchRequest is the body of POST /v1/compile-batch: a list of
// compile items the server shards over its bounded worker pool.
// Responses preserve item order. Each item hashes exactly like the
// equivalent single CompileRequest, so batch compiles share artifacts
// (and in-flight singleflight dedup) with single compiles.
type CompileBatchRequest struct {
	Version int           `json:"v"`
	Items   []CompileItem `json:"items"`
}

// Item returns the i-th element as a standalone CompileRequest,
// forwarding any memoized decode the batch decoder already did.
func (r *CompileBatchRequest) Item(i int) *CompileRequest {
	return &CompileRequest{
		Version: r.Version,
		Loop:    r.Items[i].Loop,
		Options: r.Items[i].Options,
		decoded: r.Items[i].decoded,
	}
}

// SimulateRequest is the body of POST /v1/simulate. Exactly one of Hash
// (a previously compiled artifact) or Loop (compiled inline, through the
// same cache) must be set.
type SimulateRequest struct {
	Version int `json:"v"`
	// Hash references an artifact from an earlier /v1/compile response.
	Hash string `json:"hash,omitempty"`
	// Loop + Options compile inline when Hash is empty.
	Loop    json.RawMessage `json:"loop,omitempty"`
	Options Options         `json:"options,omitempty"`
	// Trip is the trip count to simulate (>= 1).
	Trip int64 `json:"trip"`
	// Sim overrides simulator parameters.
	Sim SimOptions `json:"sim,omitempty"`
	// Memory seeds the initial memory image (empty = all-zero memory).
	Memory []MemInit `json:"memory,omitempty"`
}
