// Package wire defines the versioned JSON request envelopes of the ltspd
// compile-and-simulate service and the content-addressed artifact key.
//
// A compile request is (loop, compile options); its Hash — the hex sha256
// of the canonical envelope encoding — is the service's artifact-cache
// key. Canonicalization re-encodes the embedded loop through the ir codec
// and normalizes the option spellings, so two requests that mean the same
// compilation hash identically regardless of how the client formatted its
// JSON.
package wire

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"

	"ltsp"
	"ltsp/internal/hlo"
	"ltsp/internal/ir"
	"ltsp/internal/sim"
)

// Version tags the request envelope format.
const Version = 1

// Options is the wire form of ltsp.Options. The machine model is not part
// of the wire format: the service compiles for its configured target
// (today always the paper's Dual-Core Itanium 2).
type Options struct {
	// Mode is the HLO hint policy: "" or "none", "all-l3", "all-fp-l2",
	// "hlo".
	Mode string `json:"mode,omitempty"`
	// Prefetch enables the software prefetcher.
	Prefetch bool `json:"prefetch,omitempty"`
	// LatencyTolerant enables latency-tolerant pipelining.
	LatencyTolerant bool `json:"latencyTolerant,omitempty"`
	// BoostDelinquent boosts HLO-flagged delinquent loads even when
	// LatencyTolerant is off.
	BoostDelinquent bool `json:"boostDelinquent,omitempty"`
	// TripEstimate is the compile-time trip-count estimate (<= 0 unknown).
	TripEstimate float64 `json:"tripEstimate,omitempty"`
	// Pipeline forces the pipelining decision; nil = pipeline if possible.
	Pipeline *bool `json:"pipeline,omitempty"`
}

// ModeName returns the canonical wire spelling of an HLO hint mode
// (ModeNone is spelled "" so it vanishes from canonical encodings).
func ModeName(m hlo.HintMode) string {
	switch m {
	case hlo.ModeAllL3:
		return "all-l3"
	case hlo.ModeAllFPL2:
		return "all-fp-l2"
	case hlo.ModeHLO:
		return "hlo"
	default:
		return ""
	}
}

// ParseMode parses a wire hint-mode spelling.
func ParseMode(s string) (hlo.HintMode, error) {
	switch s {
	case "", "none":
		return hlo.ModeNone, nil
	case "all-l3":
		return hlo.ModeAllL3, nil
	case "all-fp-l2":
		return hlo.ModeAllFPL2, nil
	case "hlo":
		return hlo.ModeHLO, nil
	}
	return 0, fmt.Errorf("wire: unknown hint mode %q", s)
}

// OptionsFrom converts library compile options to their wire form.
func OptionsFrom(o ltsp.Options) Options {
	return Options{
		Mode:            ModeName(o.Mode),
		Prefetch:        o.Prefetch,
		LatencyTolerant: o.LatencyTolerant,
		BoostDelinquent: o.BoostDelinquent,
		TripEstimate:    o.TripEstimate,
		Pipeline:        o.Pipeline,
	}
}

// ToOptions converts wire options to library compile options.
func (w Options) ToOptions() (ltsp.Options, error) {
	mode, err := ParseMode(w.Mode)
	if err != nil {
		return ltsp.Options{}, err
	}
	if math.IsNaN(w.TripEstimate) || math.IsInf(w.TripEstimate, 0) {
		return ltsp.Options{}, fmt.Errorf("wire: non-finite trip estimate %v", w.TripEstimate)
	}
	// No real loop runs 10^12 iterations per invocation; beyond that the
	// estimate is adversarial and risks float->int overflow downstream.
	if w.TripEstimate > 1e12 {
		return ltsp.Options{}, fmt.Errorf("wire: absurd trip estimate %v", w.TripEstimate)
	}
	return ltsp.Options{
		Mode:            mode,
		Prefetch:        w.Prefetch,
		LatencyTolerant: w.LatencyTolerant,
		BoostDelinquent: w.BoostDelinquent,
		TripEstimate:    w.TripEstimate,
		Pipeline:        w.Pipeline,
	}, nil
}

// canonical normalizes the wire options (mode spelling, pipeline pointer
// identity) so that envelope hashing sees one representation per meaning.
func (w Options) canonical() (Options, error) {
	o, err := w.ToOptions()
	if err != nil {
		return Options{}, err
	}
	return OptionsFrom(o), nil
}

// SimOptions is the serializable subset of sim.Config. Nil fields take the
// paper-reproduction defaults (sim.DefaultConfig); the machine model and
// cache geometry are the service's own.
type SimOptions struct {
	BankConflicts    *bool `json:"bankConflicts,omitempty"`
	FEOverhead       *int  `json:"feOverhead,omitempty"`
	FlushOverhead    *int  `json:"flushOverhead,omitempty"`
	RSECyclesPerExec int64 `json:"rseCyclesPerExec,omitempty"`
}

// ToConfig overlays the wire fields on the default simulator config.
func (w SimOptions) ToConfig() sim.Config {
	cfg := sim.DefaultConfig()
	if w.BankConflicts != nil {
		cfg.BankConflicts = *w.BankConflicts
	}
	if w.FEOverhead != nil {
		cfg.FEOverhead = *w.FEOverhead
	}
	if w.FlushOverhead != nil {
		cfg.FlushOverhead = *w.FlushOverhead
	}
	cfg.RSECyclesPerExec = w.RSECyclesPerExec
	return cfg
}

// MemInit seeds one memory word before simulation. Float selects the
// floating-point store form (8-byte IEEE754); otherwise Size/Val describe
// an integer store.
type MemInit struct {
	Addr  int64   `json:"addr"`
	Size  int     `json:"size,omitempty"`
	Val   int64   `json:"val,omitempty"`
	FVal  float64 `json:"fval,omitempty"`
	Float bool    `json:"float,omitempty"`
}

// CompileRequest is the body of POST /v1/compile.
type CompileRequest struct {
	Version int `json:"v"`
	// Loop is the ir wire-format loop (see ir.EncodeLoop).
	Loop    json.RawMessage `json:"loop"`
	Options Options         `json:"options"`
}

// NewCompileRequest builds a request from an in-memory loop and options.
func NewCompileRequest(l *ir.Loop, o ltsp.Options) (*CompileRequest, error) {
	data, err := ir.EncodeLoop(l)
	if err != nil {
		return nil, err
	}
	return &CompileRequest{Version: Version, Loop: data, Options: OptionsFrom(o)}, nil
}

// DecodeLoop parses the embedded loop.
func (r *CompileRequest) DecodeLoop() (*ir.Loop, error) {
	if len(r.Loop) == 0 {
		return nil, fmt.Errorf("wire: compile request has no loop")
	}
	return ir.DecodeLoop(r.Loop)
}

// Canonical returns the canonical encoding of the request: version pinned,
// loop re-encoded through the ir codec, options normalized.
func (r *CompileRequest) Canonical() ([]byte, error) {
	if r.Version != Version {
		return nil, fmt.Errorf("wire: unsupported request version %d (want %d)", r.Version, Version)
	}
	l, err := r.DecodeLoop()
	if err != nil {
		return nil, err
	}
	loopData, err := ir.EncodeLoop(l)
	if err != nil {
		return nil, err
	}
	opts, err := r.Options.canonical()
	if err != nil {
		return nil, err
	}
	return json.Marshal(CompileRequest{Version: Version, Loop: loopData, Options: opts})
}

// Hash returns the content-addressed artifact key of the request: the hex
// sha256 of its canonical encoding.
func (r *CompileRequest) Hash() (string, error) {
	data, err := r.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// CompileItem is one loop of a batch compile: an independent
// (loop, options) pair, exactly the payload of a single CompileRequest.
type CompileItem struct {
	Loop    json.RawMessage `json:"loop"`
	Options Options         `json:"options,omitempty"`
}

// CompileBatchRequest is the body of POST /v1/compile-batch: a list of
// compile items the server shards over its bounded worker pool.
// Responses preserve item order. Each item hashes exactly like the
// equivalent single CompileRequest, so batch compiles share artifacts
// (and in-flight singleflight dedup) with single compiles.
type CompileBatchRequest struct {
	Version int           `json:"v"`
	Items   []CompileItem `json:"items"`
}

// Item returns the i-th element as a standalone CompileRequest.
func (r *CompileBatchRequest) Item(i int) *CompileRequest {
	return &CompileRequest{Version: r.Version, Loop: r.Items[i].Loop, Options: r.Items[i].Options}
}

// SimulateRequest is the body of POST /v1/simulate. Exactly one of Hash
// (a previously compiled artifact) or Loop (compiled inline, through the
// same cache) must be set.
type SimulateRequest struct {
	Version int `json:"v"`
	// Hash references an artifact from an earlier /v1/compile response.
	Hash string `json:"hash,omitempty"`
	// Loop + Options compile inline when Hash is empty.
	Loop    json.RawMessage `json:"loop,omitempty"`
	Options Options         `json:"options,omitempty"`
	// Trip is the trip count to simulate (>= 1).
	Trip int64 `json:"trip"`
	// Sim overrides simulator parameters.
	Sim SimOptions `json:"sim,omitempty"`
	// Memory seeds the initial memory image (empty = all-zero memory).
	Memory []MemInit `json:"memory,omitempty"`
}
