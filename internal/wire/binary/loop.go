package binary

import (
	"ltsp/internal/ir"
)

// The loop payload mirrors the canonical JSON loop encoding field for
// field, including its presence rules: a field travels exactly when the
// JSON form would emit it (Go zero values are omitted), so a loop
// round-tripped through either codec lands on the identical struct.
//
// Registers are packed numerically instead of interning their assembly
// spellings: None is 0, any other register is 1+((N<<3)|(class<<1)|virt)
// in one uvarint — 1 byte for every real machine register. Opcode
// mnemonics, stride kinds and cache hints travel as interned strings
// resolved through the ir name tables (ir.OpByName & co.), the same
// tables the JSON decoder uses.

// Instruction presence flags.
const (
	insPred byte = 1 << iota
	insDsts
	insSrcs
	insImm
	insFImm
	insMem
	insComment
)

// MemRef presence mask bits, in field order.
const (
	memSize = 1 << iota
	memPostInc
	memStride
	memStrideBytes
	memHint
	memDelinquent
	memPrefetched
	memPrefetchDistance
	memGroup
	memLineLeader
	memIndexInit
	memIndexStride
	memIndexSize
	memScaleShift
	memArrayBase
)

// RegInit presence flags.
const (
	setupVal byte = 1 << iota
	setupFVal
)

func encodeReg(w *writer, r ir.Reg) {
	if r.IsNone() {
		w.u64(0)
		return
	}
	w.u64(1 + (uint64(r.N)<<3 | uint64(r.Class)<<1 | b2u(r.Virtual)))
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func decodeReg(r *reader) ir.Reg {
	v := r.u64()
	if v == 0 || r.err != nil {
		return ir.None
	}
	v--
	reg := ir.Reg{
		Class:   ir.RegClass(v >> 1 & 3),
		N:       int(v >> 3),
		Virtual: v&1 != 0,
	}
	if reg.Class == ir.ClassNone {
		r.fail("malformed register encoding %d", v+1)
		return ir.None
	}
	return reg
}

func encodeMem(w *writer, m *ir.MemRef) error {
	mask := 0
	set := func(cond bool, bit int) {
		if cond {
			mask |= bit
		}
	}
	set(m.Size != 0, memSize)
	set(m.PostInc != 0, memPostInc)
	set(m.Stride != ir.StrideUnknown, memStride)
	set(m.StrideBytes != 0, memStrideBytes)
	set(m.Hint != ir.HintNone, memHint)
	set(m.Delinquent, memDelinquent)
	set(m.Prefetched, memPrefetched)
	set(m.PrefetchDistance != 0, memPrefetchDistance)
	set(m.Group != 0, memGroup)
	set(m.LineLeader, memLineLeader)
	set(m.IndexInit != 0, memIndexInit)
	set(m.IndexStride != 0, memIndexStride)
	set(m.IndexSize != 0, memIndexSize)
	set(m.ScaleShift != 0, memScaleShift)
	set(!m.ArrayBase.IsNone(), memArrayBase)
	w.u64(uint64(mask))
	if mask&memSize != 0 {
		w.i64(int64(m.Size))
	}
	if mask&memPostInc != 0 {
		w.i64(m.PostInc)
	}
	if mask&memStride != 0 {
		name := m.Stride.String()
		if _, ok := ir.StrideKindByName(name); !ok {
			return fmtErr("stride kind %v has no wire name", m.Stride)
		}
		w.str(name)
	}
	if mask&memStrideBytes != 0 {
		w.i64(m.StrideBytes)
	}
	if mask&memHint != 0 {
		name := m.Hint.String()
		if _, ok := ir.HintByName(name); !ok {
			return fmtErr("hint %v has no wire name", m.Hint)
		}
		w.str(name)
	}
	if mask&memPrefetchDistance != 0 {
		w.i64(int64(m.PrefetchDistance))
	}
	if mask&memGroup != 0 {
		w.i64(int64(m.Group))
	}
	if mask&memIndexInit != 0 {
		w.i64(m.IndexInit)
	}
	if mask&memIndexStride != 0 {
		w.i64(m.IndexStride)
	}
	if mask&memIndexSize != 0 {
		w.i64(int64(m.IndexSize))
	}
	if mask&memScaleShift != 0 {
		w.i64(m.ScaleShift)
	}
	if mask&memArrayBase != 0 {
		encodeReg(w, m.ArrayBase)
	}
	return nil
}

func decodeMem(r *reader) *ir.MemRef {
	mask := int(r.u64())
	if r.err != nil {
		return nil
	}
	m := &ir.MemRef{}
	if mask&memSize != 0 {
		m.Size = int(r.i64())
	}
	if mask&memPostInc != 0 {
		m.PostInc = r.i64()
	}
	if mask&memStride != 0 {
		s, ok := ir.StrideKindByName(r.str())
		if !ok && r.err == nil {
			r.fail("unknown stride kind")
		}
		m.Stride = s
	}
	if mask&memStrideBytes != 0 {
		m.StrideBytes = r.i64()
	}
	if mask&memHint != 0 {
		h, ok := ir.HintByName(r.str())
		if !ok && r.err == nil {
			r.fail("unknown hint")
		}
		m.Hint = h
	}
	m.Delinquent = mask&memDelinquent != 0
	m.Prefetched = mask&memPrefetched != 0
	if mask&memPrefetchDistance != 0 {
		m.PrefetchDistance = int(r.i64())
	}
	if mask&memGroup != 0 {
		m.Group = int(r.i64())
	}
	m.LineLeader = mask&memLineLeader != 0
	if mask&memIndexInit != 0 {
		m.IndexInit = r.i64()
	}
	if mask&memIndexStride != 0 {
		m.IndexStride = r.i64()
	}
	if mask&memIndexSize != 0 {
		m.IndexSize = int(r.i64())
	}
	if mask&memScaleShift != 0 {
		m.ScaleShift = r.i64()
	}
	if mask&memArrayBase != 0 {
		m.ArrayBase = decodeReg(r)
	}
	return m
}

// encodeLoop writes the loop payload. Like ir.EncodeLoop, it errors on
// opcodes with no wire name; everything else encodes unconditionally.
func encodeLoop(w *writer, l *ir.Loop) error {
	w.u64(uint64(ir.WireVersion))
	w.str(l.Name)
	w.u64(uint64(len(l.Body)))
	for i, in := range l.Body {
		name := in.Op.String()
		if _, ok := ir.OpByName(name); !ok {
			return fmtErr("body[%d]: opcode %v has no wire name", i, in.Op)
		}
		w.str(name)
		var flags byte
		if !in.Pred.IsNone() {
			flags |= insPred
		}
		if len(in.Dsts) > 0 {
			flags |= insDsts
		}
		if len(in.Srcs) > 0 {
			flags |= insSrcs
		}
		if in.Imm != 0 {
			flags |= insImm
		}
		if in.FImm != 0 {
			flags |= insFImm
		}
		if in.Mem != nil {
			flags |= insMem
		}
		if in.Comment != "" {
			flags |= insComment
		}
		w.byte(flags)
		if flags&insPred != 0 {
			encodeReg(w, in.Pred)
		}
		if flags&insDsts != 0 {
			w.u64(uint64(len(in.Dsts)))
			for _, reg := range in.Dsts {
				encodeReg(w, reg)
			}
		}
		if flags&insSrcs != 0 {
			w.u64(uint64(len(in.Srcs)))
			for _, reg := range in.Srcs {
				encodeReg(w, reg)
			}
		}
		if flags&insImm != 0 {
			w.i64(in.Imm)
		}
		if flags&insFImm != 0 {
			w.f64(in.FImm)
		}
		if flags&insMem != 0 {
			if err := encodeMem(w, in.Mem); err != nil {
				return err
			}
		}
		if flags&insComment != 0 {
			w.str(in.Comment)
		}
	}
	w.u64(uint64(len(l.Setup)))
	for _, s := range l.Setup {
		encodeReg(w, s.Reg)
		var flags byte
		if s.Val != 0 {
			flags |= setupVal
		}
		if s.FVal != 0 {
			flags |= setupFVal
		}
		w.byte(flags)
		if flags&setupVal != 0 {
			w.i64(s.Val)
		}
		if flags&setupFVal != 0 {
			w.f64(s.FVal)
		}
	}
	w.u64(uint64(len(l.LiveOut)))
	for _, reg := range l.LiveOut {
		encodeReg(w, reg)
	}
	w.u64(uint64(len(l.MemDeps)))
	for _, d := range l.MemDeps {
		w.i64(int64(d.From))
		w.i64(int64(d.To))
		w.i64(int64(d.Distance))
		w.i64(int64(d.Latency))
		w.byte(byte(b2u(d.MayAlias)))
	}
	if l.While != nil {
		w.byte(1)
		encodeReg(w, l.While.Cond)
	} else {
		w.byte(0)
	}
	return nil
}

// decodeLoop parses a loop payload and runs it through the exact same
// validation epilogue as the JSON decoder (ir.FinishDecodedLoop).
func decodeLoop(r *reader) (*ir.Loop, error) {
	if v := r.u64(); r.err == nil && v != ir.WireVersion {
		return nil, fmtErr("%w: loop wire version %d (want %d)", ErrVersion, v, ir.WireVersion)
	}
	l := ir.NewLoop(r.str())
	nBody := r.count()
	for i := 0; i < nBody && r.err == nil; i++ {
		op, ok := ir.OpByName(r.str())
		if !ok && r.err == nil {
			r.fail("body[%d]: unknown opcode", i)
			break
		}
		in := &ir.Instr{Op: op}
		flags := r.byte()
		if flags&insPred != 0 {
			in.Pred = decodeReg(r)
		}
		if flags&insDsts != 0 {
			n := r.count()
			if n > 0 && r.err == nil {
				in.Dsts = make([]ir.Reg, n)
				for j := range in.Dsts {
					in.Dsts[j] = decodeReg(r)
				}
			}
		}
		if flags&insSrcs != 0 {
			n := r.count()
			if n > 0 && r.err == nil {
				in.Srcs = make([]ir.Reg, n)
				for j := range in.Srcs {
					in.Srcs[j] = decodeReg(r)
				}
			}
		}
		if flags&insImm != 0 {
			in.Imm = r.i64()
		}
		if flags&insFImm != 0 {
			in.FImm = r.f64()
		}
		if flags&insMem != 0 {
			in.Mem = decodeMem(r)
		}
		if flags&insComment != 0 {
			in.Comment = r.str()
		}
		if r.err != nil {
			break
		}
		l.Append(in)
	}
	nSetup := r.count()
	for i := 0; i < nSetup && r.err == nil; i++ {
		s := ir.RegInit{Reg: decodeReg(r)}
		flags := r.byte()
		if flags&setupVal != 0 {
			s.Val = r.i64()
		}
		if flags&setupFVal != 0 {
			s.FVal = r.f64()
		}
		if r.err == nil {
			l.Setup = append(l.Setup, s)
		}
	}
	nLive := r.count()
	for i := 0; i < nLive && r.err == nil; i++ {
		l.LiveOut = append(l.LiveOut, decodeReg(r))
	}
	nDeps := r.count()
	for i := 0; i < nDeps && r.err == nil; i++ {
		d := ir.MemDep{
			From:     int(r.i64()),
			To:       int(r.i64()),
			Distance: int(r.i64()),
			Latency:  int(r.i64()),
			MayAlias: r.byte() != 0,
		}
		if r.err == nil {
			l.MemDeps = append(l.MemDeps, d)
		}
	}
	if r.byte() != 0 && r.err == nil {
		l.While = &ir.WhileInfo{Cond: decodeReg(r)}
	}
	if r.err != nil {
		return nil, r.err
	}
	if err := ir.FinishDecodedLoop(l); err != nil {
		return nil, err
	}
	return l, nil
}
