package binary_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"ltsp"
	"ltsp/internal/ir"
	"ltsp/internal/wire"
	"ltsp/internal/wire/binary"
	"ltsp/internal/workload"
)

// allLoops yields one freshly generated loop per workload loop spec,
// labeled benchmark/loop.
func allLoops() map[string]*ir.Loop {
	out := make(map[string]*ir.Loop)
	for _, b := range workload.All() {
		for _, spec := range b.Loops {
			out[b.Name+"/"+spec.Name] = spec.Gen()
		}
	}
	return out
}

var testOptions = []wire.Options{
	{},
	{Mode: "hlo", Prefetch: true, LatencyTolerant: true, BoostDelinquent: true, TripEstimate: 1000},
	{Mode: "all-l3", TripEstimate: 0.5},
	{Pipeline: func() *bool { b := true; return &b }()},
	{Pipeline: func() *bool { b := false; return &b }(), Mode: "all-fp-l2"},
	{Backend: "exact", LatencyTolerant: true},
	{Backend: "oracle", Mode: "hlo", Prefetch: true},
}

// TestRequestRoundTrip: every workload loop survives loop → binary →
// loop with the identical struct, the identical artifact hash as the
// JSON encoding of the same request, and identical canonical bytes.
func TestRequestRoundTrip(t *testing.T) {
	for name, l := range allLoops() {
		opts := testOptions[len(name)%len(testOptions)]
		frame, err := binary.EncodeCompileRequest(nil, l, opts)
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		breq, err := binary.DecodeCompileRequest(frame)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}

		jreq, err := wire.NewCompileRequest(l, mustOpts(t, opts))
		if err != nil {
			t.Fatalf("%s: json request: %v", name, err)
		}
		jhash, err := jreq.Hash()
		if err != nil {
			t.Fatalf("%s: json hash: %v", name, err)
		}
		bhash, err := breq.Hash()
		if err != nil {
			t.Fatalf("%s: binary hash: %v", name, err)
		}
		if jhash != bhash {
			t.Fatalf("%s: hash differs by transfer encoding: json %s binary %s", name, jhash, bhash)
		}

		jl, err := jreq.DecodeLoop()
		if err != nil {
			t.Fatalf("%s: json loop: %v", name, err)
		}
		bl, err := breq.DecodeLoop()
		if err != nil {
			t.Fatalf("%s: binary loop: %v", name, err)
		}
		if !reflect.DeepEqual(jl, bl) {
			t.Fatalf("%s: loop differs by transfer encoding", name)
		}
	}
}

func mustOpts(t *testing.T, o wire.Options) ltsp.Options {
	t.Helper()
	lo, err := o.ToOptions()
	if err != nil {
		t.Fatal(err)
	}
	return lo
}

// TestRequestSmallerThanJSON: the point of the format — a sanity bound,
// not a gate (cmd/benchguard gates decode speed).
func TestRequestSmallerThanJSON(t *testing.T) {
	var jsonBytes, binBytes int
	for _, l := range allLoops() {
		req, err := wire.NewCompileRequest(l, ltsp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		j, _ := json.Marshal(req)
		frame, err := binary.EncodeCompileRequest(nil, l, wire.Options{})
		if err != nil {
			t.Fatal(err)
		}
		jsonBytes += len(j)
		binBytes += len(frame)
	}
	if binBytes*2 > jsonBytes {
		t.Fatalf("binary requests not at least 2x smaller: %d binary vs %d JSON bytes", binBytes, jsonBytes)
	}
}

func TestBatchRoundTrip(t *testing.T) {
	var loops []*ir.Loop
	var opts []wire.Options
	i := 0
	for _, l := range allLoops() {
		loops = append(loops, l)
		opts = append(opts, testOptions[i%len(testOptions)])
		i++
		if len(loops) == 8 {
			break
		}
	}
	frame, err := binary.EncodeCompileBatch(nil, loops, opts)
	if err != nil {
		t.Fatal(err)
	}
	req, err := binary.DecodeCompileBatch(frame)
	if err != nil {
		t.Fatal(err)
	}
	if req.Version != wire.Version {
		t.Fatalf("version = %d", req.Version)
	}
	if len(req.Items) != len(loops) {
		t.Fatalf("items = %d, want %d", len(req.Items), len(loops))
	}
	for i := range loops {
		item := req.Item(i)
		bl, err := item.DecodeLoop()
		if err != nil {
			t.Fatalf("item[%d]: %v", i, err)
		}
		jreq, err := wire.NewCompileRequest(loops[i], mustOpts(t, opts[i]))
		if err != nil {
			t.Fatal(err)
		}
		jl, _ := jreq.DecodeLoop()
		if !reflect.DeepEqual(jl, bl) {
			t.Fatalf("item[%d]: loop differs", i)
		}
		jh, _ := jreq.Hash()
		bh, _ := req.Item(i).Hash()
		if jh != bh {
			t.Fatalf("item[%d]: hash differs: %s vs %s", i, jh, bh)
		}
	}

	if _, err := binary.EncodeCompileBatch(nil, loops, opts[:1]); err == nil {
		t.Fatal("mismatched loops/options lengths not rejected")
	}
}

func TestResponseRoundTrip(t *testing.T) {
	tru := true
	_ = tru
	resp := &wire.CompileResponse{
		Hash: "abc123", Cached: true, Pipelined: true,
		Outcome: "pipelined", II: 4, Stages: 5, ResII: 3, RecII: 2,
		Backend: "exact", ProvenII: true,
		Reg: wire.RegStatsJSON{GR: 12, RotGR: 8, FR: 6, RotFR: 4, PR: 2, RotPR: 1, Spills: 0},
		Loads: []wire.LoadReportJSON{
			{ID: 1, Critical: true, BaseLat: 13, SchedLat: 200, ExtraD: 23, ClusterK: 4, Hint: "nt2"},
			{ID: 2, BaseLat: 5, SchedLat: 5, Hint: ""},
		},
		HLO:     &wire.HLOJSON{IIEst: 7, PrefetchesAdded: 2, HintsSet: 3},
		Listing: "L0:\n  ld8 r1 = [r2]\n", Diagram: "| S0 |",
	}
	got, err := binary.DecodeCompileResponse(binary.EncodeCompileResponse(nil, resp))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp, got) {
		t.Fatalf("response round trip mismatch:\n%+v\n%+v", resp, got)
	}

	// Minimal response: zero-valued optionals stay zero-valued.
	minimal := &wire.CompileResponse{Hash: "h", Outcome: "sequential", II: 1, Stages: 1}
	got, err = binary.DecodeCompileResponse(binary.EncodeCompileResponse(nil, minimal))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(minimal, got) {
		t.Fatalf("minimal response round trip mismatch:\n%+v\n%+v", minimal, got)
	}
}

func TestBatchResponseRoundTrip(t *testing.T) {
	resp := &wire.CompileBatchResponse{Items: []wire.BatchItemResult{
		{CompileResponse: &wire.CompileResponse{Hash: "h1", Outcome: "pipelined", II: 2, Stages: 3}},
		{Error: "compile: boom", ErrorCode: "internal", Retryable: true},
		{Error: "invalid loop", ErrorCode: "invalid_loop"},
	}}
	got, err := binary.DecodeCompileBatchResponse(binary.EncodeCompileBatchResponse(nil, resp))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp, got) {
		t.Fatalf("batch response round trip mismatch:\n%+v\n%+v", resp, got)
	}
}

func TestArtifactRoundTrip(t *testing.T) {
	a := &wire.ArtifactResponse{
		Hash:        "deadbeef",
		Request:     json.RawMessage(`{"v":1,"loop":{}}`),
		Response:    json.RawMessage(`{"hash":"deadbeef"}`),
		Trace:       json.RawMessage(`[]`),
		Verify:      wire.ArtifactVerify{Sampled: true, Passed: true},
		CreatedUnix: 1754700000,
	}
	got, err := binary.DecodeArtifact(binary.EncodeArtifact(nil, a))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, got) {
		t.Fatalf("artifact round trip mismatch:\n%+v\n%+v", a, got)
	}
}

// TestFrameValidation: adversarial frames are rejected before any
// payload-sized allocation — truncation, surplus bytes, bad magic,
// unknown version, wrong kind, and absurd length prefixes.
func TestFrameValidation(t *testing.T) {
	l := workload.All()[0].Loops[0].Gen()
	frame, err := binary.EncodeCompileRequest(nil, l, wire.Options{})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := binary.DecodeCompileRequest(frame[:len(frame)-3]); err == nil {
		t.Fatal("truncated frame accepted")
	}
	if _, err := binary.DecodeCompileRequest(append(bytes.Clone(frame), 0xAB)); err == nil {
		t.Fatal("oversized frame (trailing byte) accepted")
	}
	bad := bytes.Clone(frame)
	bad[0] = 'X'
	if _, err := binary.DecodeCompileRequest(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	ver := bytes.Clone(frame)
	ver[3] = 99
	if _, err := binary.DecodeCompileRequest(ver); !errors.Is(err, binary.ErrVersion) {
		t.Fatalf("future format version: got %v, want ErrVersion", err)
	}
	if _, err := binary.DecodeCompileBatch(frame); err == nil {
		t.Fatal("compile-request frame accepted as a batch frame")
	}
	if _, err := binary.DecodeCompileRequest(nil); err == nil {
		t.Fatal("empty input accepted")
	}

	// A length prefix claiming far more than the body carries must be
	// rejected cheaply: the declared payload length is checked against
	// the actual remaining bytes before anything is allocated.
	huge := []byte{'L', 'T', 'B', 1, 1, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := binary.DecodeCompileRequest(huge); err == nil {
			t.Fatal("absurd length prefix accepted")
		}
	})
	if allocs > 4 {
		t.Fatalf("rejecting an absurd length prefix allocated %.0f times", allocs)
	}

	if !binary.IsBinary(frame) {
		t.Fatal("IsBinary(frame) = false")
	}
	if binary.IsBinary([]byte(`{"v":1}`)) {
		t.Fatal("IsBinary(json) = true")
	}
}

// TestInternedStrings: repeated strings cost one table entry; a
// back-reference beyond the table is rejected.
func TestInternedStrings(t *testing.T) {
	resp := &wire.CompileResponse{
		Hash: "h", Outcome: "pipelined", II: 1, Stages: 1,
		Loads: []wire.LoadReportJSON{
			{ID: 1, Hint: "nt2"}, {ID: 2, Hint: "nt2"}, {ID: 3, Hint: "nt2"},
		},
	}
	frame := binary.EncodeCompileResponse(nil, resp)
	got, err := binary.DecodeCompileResponse(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp, got) {
		t.Fatal("interned round trip mismatch")
	}
	if n := bytes.Count(frame, []byte("nt2")); n != 1 {
		t.Fatalf("string %q appears %d times in the frame, want 1 (interning broken)", "nt2", n)
	}
}

// TestBackendFrameStability: the heuristic backend's canonical binary
// spelling is flag-absent, so frames from clients that predate the
// backend field are byte-identical to frames that spell it out — and
// both hash like a JSON request with no backend.
func TestBackendFrameStability(t *testing.T) {
	gen, _ := workload.IntCopyAdd(16)
	l := gen()
	bare, err := binary.EncodeCompileRequest(nil, l, wire.Options{LatencyTolerant: true})
	if err != nil {
		t.Fatal(err)
	}
	spelled, err := binary.EncodeCompileRequest(nil, gen(), wire.Options{LatencyTolerant: true, Backend: "heuristic"})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bare, spelled) {
		t.Fatal("spelling out the heuristic backend changed the binary frame")
	}

	exact, err := binary.EncodeCompileRequest(nil, gen(), wire.Options{LatencyTolerant: true, Backend: "exact"})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(bare, exact) {
		t.Fatal("exact backend not encoded in the binary frame")
	}
	req, err := binary.DecodeCompileRequest(exact)
	if err != nil {
		t.Fatal(err)
	}
	if req.Options.Backend != "exact" {
		t.Fatalf("backend lost in binary round trip: %q", req.Options.Backend)
	}
}
