// Package binary implements the compact binary wire format of the ltspd
// service: a length-prefixed, versioned frame around varint-packed
// encodings of the compile request/response and artifact-transfer
// envelopes, negotiated on Content-Type/Accept "application/x-ltsp-bin".
//
// JSON remains the default and the canonical encoding: the artifact
// content hash is defined over compact canonical JSON bytes (see
// wire.CompileRequest.Canonical), never over binary frames, so binary
// and JSON peers interoperate in one content-addressed ring. The binary
// decoder produces the very same structures the JSON decoder produces —
// a property enforced by the differential fuzz target
// FuzzWireCodecEquivalence — and runs every loop through the same
// semantic validation (ir.FinishDecodedLoop), so no byte sequence is
// accepted here that the JSON path would reject.
//
// Frame layout (all multi-byte integers are varints unless noted):
//
//	offset 0: magic "LTB" (3 bytes)
//	offset 3: format version (1 byte, currently 1)
//	offset 4: payload kind (1 byte)
//	offset 5: payload length (uvarint) — must equal exactly the number
//	          of bytes that follow; short or surplus bytes reject the
//	          frame before any payload allocation happens
//	then:     payload
//
// Payload primitives: unsigned varints (encoding/binary uvarint),
// zigzag-encoded signed varints, IEEE-754 float64 bits in little-endian
// byte order, and interned strings — the first occurrence of a string is
// written inline (tag 0, length, bytes) and every later occurrence is a
// 1-based back-reference into the table built so far. Opcode mnemonics,
// stride kinds, cache hints and mode names all travel as interned
// strings resolved through the ir package's own name tables, so the
// binary format can never drift from the JSON format on enum numbering.
package binary

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
)

// ContentType is the negotiated media type of the binary wire format.
const ContentType = "application/x-ltsp-bin"

// FormatVersion tags the frame layout; decoders reject other versions.
const FormatVersion = 1

var magic = [3]byte{'L', 'T', 'B'}

// Payload kinds.
const (
	kindCompileRequest byte = iota + 1
	kindCompileBatchRequest
	kindCompileResponse
	kindCompileBatchResponse
	kindArtifactResponse
)

// ErrVersion reports a frame (or embedded envelope) version this decoder
// does not speak. Servers map it to the unsupported_version error code.
var ErrVersion = errors.New("binary: unsupported version")

// errTruncated covers every "the frame claims more than it carries"
// condition: declared lengths and element counts are always validated
// against the bytes actually present before anything is allocated, so an
// adversarial length prefix cannot cause an allocation blowup.
var errTruncated = errors.New("binary: truncated or corrupt frame")

func fmtErr(format string, args ...any) error {
	return fmt.Errorf("binary: "+format, args...)
}

// writer accumulates one frame payload. Writers are pooled: encoding a
// response on the serving hot path reuses the previous request's buffer
// and intern table.
type writer struct {
	buf  []byte
	strs map[string]uint64
}

var writerPool = sync.Pool{New: func() any {
	return &writer{buf: make([]byte, 0, 1024), strs: make(map[string]uint64, 16)}
}}

func getWriter() *writer { return writerPool.Get().(*writer) }

func putWriter(w *writer) {
	if cap(w.buf) > 1<<20 { // don't let one huge frame pin memory forever
		return
	}
	w.buf = w.buf[:0]
	clear(w.strs)
	writerPool.Put(w)
}

func (w *writer) u64(v uint64)  { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *writer) i64(v int64)   { w.buf = binary.AppendVarint(w.buf, v) }
func (w *writer) byte(b byte)   { w.buf = append(w.buf, b) }
func (w *writer) f64(v float64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v)) }

// str writes an interned string: a back-reference when the string was
// seen before in this frame, its bytes otherwise.
func (w *writer) str(s string) {
	if ref, ok := w.strs[s]; ok {
		w.u64(ref)
		return
	}
	w.byte(0)
	w.u64(uint64(len(s)))
	w.buf = append(w.buf, s...)
	w.strs[s] = uint64(len(w.strs)) + 1
}

// bytes writes a length-prefixed opaque byte section.
func (w *writer) bytes(b []byte) {
	w.u64(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// frame appends the finished frame (header + payload) to dst.
func frame(dst []byte, kind byte, payload []byte) []byte {
	dst = append(dst, magic[0], magic[1], magic[2], FormatVersion, kind)
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	return append(dst, payload...)
}

// reader consumes one frame payload, remembering the first error so call
// sites stay linear; every length and count is validated against the
// bytes remaining before any allocation is sized from it.
type reader struct {
	b    []byte
	off  int
	strs []string
	err  error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("binary: "+format, args...)
	}
}

func (r *reader) rem() int { return len(r.b) - r.off }

func (r *reader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.err = errTruncated
		return 0
	}
	r.off += n
	return v
}

func (r *reader) i64() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.err = errTruncated
		return 0
	}
	r.off += n
	return v
}

func (r *reader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.rem() < 1 {
		r.err = errTruncated
		return 0
	}
	b := r.b[r.off]
	r.off++
	return b
}

func (r *reader) f64() float64 {
	if r.err != nil {
		return 0
	}
	if r.rem() < 8 {
		r.err = errTruncated
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v
}

// count reads an element count and bounds it by the bytes remaining
// (every element costs at least one byte), so a fuzzed count can never
// size an allocation beyond the frame itself.
func (r *reader) count() int {
	n := r.u64()
	if r.err != nil {
		return 0
	}
	if n > uint64(r.rem()) {
		r.err = errTruncated
		return 0
	}
	return int(n)
}

// str reads an interned string.
func (r *reader) str() string {
	tag := r.u64()
	if r.err != nil {
		return ""
	}
	if tag != 0 {
		if tag > uint64(len(r.strs)) {
			r.fail("string back-reference %d beyond table of %d", tag, len(r.strs))
			return ""
		}
		return r.strs[tag-1]
	}
	n := r.u64()
	if r.err != nil {
		return ""
	}
	if n > uint64(r.rem()) {
		r.err = errTruncated
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	r.strs = append(r.strs, s)
	return s
}

// bytes reads a length-prefixed opaque section, copying it out of the
// frame buffer (which may be pooled by the transport).
func (r *reader) bytes() []byte {
	n := r.u64()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.rem()) {
		r.err = errTruncated
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, r.b[r.off:])
	r.off += int(n)
	return out
}

// decodeFrame validates the frame header and returns a reader positioned
// at the payload. The declared payload length must match the bytes
// present exactly: a truncated body and a surplus-bytes body both fail
// here, before any payload parsing.
func decodeFrame(data []byte, wantKind byte) (*reader, error) {
	if len(data) < 6 {
		return nil, errTruncated
	}
	if data[0] != magic[0] || data[1] != magic[1] || data[2] != magic[2] {
		return nil, errors.New("binary: bad magic")
	}
	if data[3] != FormatVersion {
		return nil, fmt.Errorf("%w: frame format %d (want %d)", ErrVersion, data[3], FormatVersion)
	}
	kind := data[4]
	plen, n := binary.Uvarint(data[5:])
	if n <= 0 {
		return nil, errTruncated
	}
	payload := data[5+n:]
	if uint64(len(payload)) != plen {
		return nil, fmt.Errorf("%w: declared payload %d bytes, got %d", errTruncated, plen, len(payload))
	}
	if kind != wantKind {
		return nil, fmt.Errorf("binary: frame kind %d (want %d)", kind, wantKind)
	}
	return &reader{b: payload}, nil
}

// IsBinary reports whether data begins with the binary frame magic —
// a cheap sniff used in error paths and tests.
func IsBinary(data []byte) bool {
	return len(data) >= 4 && data[0] == magic[0] && data[1] == magic[1] && data[2] == magic[2]
}
