package binary

import (
	"ltsp/internal/wire"
)

// CompileResponse flags.
const (
	respCached byte = 1 << iota
	respPipelined
	respHLO
	respProvenII
	respBackend
)

// BatchItemResult flags.
const (
	itemResponse byte = 1 << iota
	itemRetryable
)

// ArtifactVerify flags.
const (
	artSampled byte = 1 << iota
	artPassed
)

func encodeCompileResponse(w *writer, resp *wire.CompileResponse) {
	w.str(resp.Hash)
	var flags byte
	if resp.Cached {
		flags |= respCached
	}
	if resp.Pipelined {
		flags |= respPipelined
	}
	if resp.HLO != nil {
		flags |= respHLO
	}
	if resp.ProvenII {
		flags |= respProvenII
	}
	if resp.Backend != "" {
		flags |= respBackend
	}
	w.byte(flags)
	w.i64(int64(resp.II))
	w.i64(int64(resp.Stages))
	w.i64(int64(resp.ResII))
	w.i64(int64(resp.RecII))
	w.i64(int64(resp.Reg.GR))
	w.i64(int64(resp.Reg.RotGR))
	w.i64(int64(resp.Reg.FR))
	w.i64(int64(resp.Reg.RotFR))
	w.i64(int64(resp.Reg.PR))
	w.i64(int64(resp.Reg.RotPR))
	w.i64(int64(resp.Reg.Spills))
	w.u64(uint64(len(resp.Loads)))
	for _, l := range resp.Loads {
		w.i64(int64(l.ID))
		w.byte(byte(b2u(l.Critical)))
		w.i64(int64(l.BaseLat))
		w.i64(int64(l.SchedLat))
		w.i64(int64(l.ExtraD))
		w.i64(int64(l.ClusterK))
		w.str(l.Hint)
	}
	if flags&respHLO != 0 {
		w.i64(int64(resp.HLO.IIEst))
		w.i64(int64(resp.HLO.PrefetchesAdded))
		w.i64(int64(resp.HLO.HintsSet))
	}
	if flags&respBackend != 0 {
		w.str(resp.Backend)
	}
	w.str(resp.Outcome)
	w.str(resp.Listing)
	w.str(resp.Diagram)
}

func decodeCompileResponse(r *reader) *wire.CompileResponse {
	resp := &wire.CompileResponse{Hash: r.str()}
	flags := r.byte()
	resp.Cached = flags&respCached != 0
	resp.Pipelined = flags&respPipelined != 0
	resp.II = int(r.i64())
	resp.Stages = int(r.i64())
	resp.ResII = int(r.i64())
	resp.RecII = int(r.i64())
	resp.Reg.GR = int(r.i64())
	resp.Reg.RotGR = int(r.i64())
	resp.Reg.FR = int(r.i64())
	resp.Reg.RotFR = int(r.i64())
	resp.Reg.PR = int(r.i64())
	resp.Reg.RotPR = int(r.i64())
	resp.Reg.Spills = int(r.i64())
	n := r.count()
	if n > 0 && r.err == nil {
		resp.Loads = make([]wire.LoadReportJSON, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			l := wire.LoadReportJSON{ID: int(r.i64())}
			l.Critical = r.byte() != 0
			l.BaseLat = int(r.i64())
			l.SchedLat = int(r.i64())
			l.ExtraD = int(r.i64())
			l.ClusterK = int(r.i64())
			l.Hint = r.str()
			if r.err == nil {
				resp.Loads = append(resp.Loads, l)
			}
		}
	}
	if flags&respHLO != 0 {
		resp.HLO = &wire.HLOJSON{
			IIEst:           int(r.i64()),
			PrefetchesAdded: int(r.i64()),
			HintsSet:        int(r.i64()),
		}
	}
	resp.ProvenII = flags&respProvenII != 0
	if flags&respBackend != 0 {
		resp.Backend = r.str()
	}
	resp.Outcome = r.str()
	resp.Listing = r.str()
	resp.Diagram = r.str()
	return resp
}

// EncodeCompileResponse appends a compile-response frame.
func EncodeCompileResponse(dst []byte, resp *wire.CompileResponse) []byte {
	w := getWriter()
	defer putWriter(w)
	encodeCompileResponse(w, resp)
	return frame(dst, kindCompileResponse, w.buf)
}

// DecodeCompileResponse parses a compile-response frame.
func DecodeCompileResponse(data []byte) (*wire.CompileResponse, error) {
	r, err := decodeFrame(data, kindCompileResponse)
	if err != nil {
		return nil, err
	}
	resp := decodeCompileResponse(r)
	if r.err != nil {
		return nil, r.err
	}
	return resp, nil
}

// EncodeCompileBatchResponse appends a compile-batch-response frame.
func EncodeCompileBatchResponse(dst []byte, resp *wire.CompileBatchResponse) []byte {
	w := getWriter()
	defer putWriter(w)
	w.u64(uint64(len(resp.Items)))
	for _, item := range resp.Items {
		var flags byte
		if item.CompileResponse != nil {
			flags |= itemResponse
		}
		if item.Retryable {
			flags |= itemRetryable
		}
		w.byte(flags)
		if item.CompileResponse != nil {
			encodeCompileResponse(w, item.CompileResponse)
		}
		w.str(item.Error)
		w.str(item.ErrorCode)
	}
	return frame(dst, kindCompileBatchResponse, w.buf)
}

// DecodeCompileBatchResponse parses a compile-batch-response frame.
func DecodeCompileBatchResponse(data []byte) (*wire.CompileBatchResponse, error) {
	r, err := decodeFrame(data, kindCompileBatchResponse)
	if err != nil {
		return nil, err
	}
	n := r.count()
	resp := &wire.CompileBatchResponse{}
	if n > 0 && r.err == nil {
		resp.Items = make([]wire.BatchItemResult, 0, n)
	}
	for i := 0; i < n && r.err == nil; i++ {
		var item wire.BatchItemResult
		flags := r.byte()
		if flags&itemResponse != 0 {
			item.CompileResponse = decodeCompileResponse(r)
		}
		item.Retryable = flags&itemRetryable != 0
		item.Error = r.str()
		item.ErrorCode = r.str()
		if r.err == nil {
			resp.Items = append(resp.Items, item)
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	return resp, nil
}

// EncodeArtifact appends an artifact-transfer frame. The artifact's
// request/response/trace sections stay exactly the JSON bytes the
// compiling node persisted — the content hash is defined over the
// compact canonical request encoding regardless of transfer encoding —
// but they travel length-prefixed instead of being rescanned by a JSON
// tokenizer, which is where the artifact decode speedup comes from.
func EncodeArtifact(dst []byte, a *wire.ArtifactResponse) []byte {
	w := getWriter()
	defer putWriter(w)
	w.str(a.Hash)
	w.bytes(a.Request)
	w.bytes(a.Response)
	w.bytes(a.Trace)
	var flags byte
	if a.Verify.Sampled {
		flags |= artSampled
	}
	if a.Verify.Passed {
		flags |= artPassed
	}
	w.byte(flags)
	w.i64(a.CreatedUnix)
	return frame(dst, kindArtifactResponse, w.buf)
}

// DecodeArtifact parses an artifact-transfer frame. Sections are copied
// out of the frame buffer, so the caller may recycle data.
func DecodeArtifact(data []byte) (*wire.ArtifactResponse, error) {
	r, err := decodeFrame(data, kindArtifactResponse)
	if err != nil {
		return nil, err
	}
	a := &wire.ArtifactResponse{Hash: r.str()}
	a.Request = r.bytes()
	a.Response = r.bytes()
	a.Trace = r.bytes()
	flags := r.byte()
	a.Verify.Sampled = flags&artSampled != 0
	a.Verify.Passed = flags&artPassed != 0
	a.CreatedUnix = r.i64()
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(r.b) {
		return nil, fmtErr("%d trailing bytes after artifact payload", len(r.b)-r.off)
	}
	return a, nil
}
