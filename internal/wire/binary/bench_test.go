package binary_test

import (
	"encoding/json"
	"strings"
	"testing"

	"ltsp"
	"ltsp/internal/ir"
	"ltsp/internal/wire"
	"ltsp/internal/wire/binary"
	"ltsp/internal/workload"
)

// The decode suite measures bytes → validated request (envelope parsed,
// loop decoded and semantically validated, options checked) over every
// loop of the 55 workload models — the exact work the serving path does
// before a cache lookup can even be keyed. cmd/benchguard gates the
// JSON/binary ratio (≥5x) using the same definitions.

type decodeCorpus struct {
	jsonBodies [][]byte
	binBodies  [][]byte
	jsonBytes  int64
	binBytes   int64
}

func buildCorpus(tb testing.TB) *decodeCorpus {
	c := &decodeCorpus{}
	for _, b := range workload.All() {
		for _, spec := range b.Loops {
			l := spec.Gen()
			req, err := wire.NewCompileRequest(l, ltsp.Options{Prefetch: true, LatencyTolerant: true})
			if err != nil {
				tb.Fatal(err)
			}
			j, err := json.Marshal(req)
			if err != nil {
				tb.Fatal(err)
			}
			frame, err := binary.EncodeCompileRequest(nil, l, req.Options)
			if err != nil {
				tb.Fatal(err)
			}
			c.jsonBodies = append(c.jsonBodies, j)
			c.binBodies = append(c.binBodies, frame)
			c.jsonBytes += int64(len(j))
			c.binBytes += int64(len(frame))
		}
	}
	return c
}

func BenchmarkDecodeJSON(b *testing.B) {
	c := buildCorpus(b)
	b.ReportAllocs()
	b.SetBytes(c.jsonBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, body := range c.jsonBodies {
			var req wire.CompileRequest
			if err := json.Unmarshal(body, &req); err != nil {
				b.Fatal(err)
			}
			l, err := ir.DecodeLoop(req.Loop)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := req.Options.ToOptions(); err != nil {
				b.Fatal(err)
			}
			benchSink = l
		}
	}
}

func BenchmarkDecodeBinary(b *testing.B) {
	c := buildCorpus(b)
	b.ReportAllocs()
	b.SetBytes(c.binBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, body := range c.binBodies {
			req, err := binary.DecodeCompileRequest(body)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := req.Options.ToOptions(); err != nil {
				b.Fatal(err)
			}
			benchSink = req
		}
	}
}

var benchSink any

// benchArtifact fabricates a transfer envelope with realistically sized
// sections: the canonical request of a workload loop, a compile
// response with a multi-KB kernel listing, and a decision trace.
func benchArtifact(tb testing.TB) *wire.ArtifactResponse {
	l := workload.All()[0].Loops[0].Gen()
	req, err := wire.NewCompileRequest(l, ltsp.Options{LatencyTolerant: true})
	if err != nil {
		tb.Fatal(err)
	}
	canon, err := req.Canonical()
	if err != nil {
		tb.Fatal(err)
	}
	resp, err := json.Marshal(&wire.CompileResponse{
		Hash: strings.Repeat("ab", 32), Pipelined: true, Outcome: "pipelined",
		II: 4, Stages: 6, ResII: 4, RecII: 2,
		Listing: strings.Repeat("  (p16) ld8 r32 = [r5], 8\n", 200),
	})
	if err != nil {
		tb.Fatal(err)
	}
	trace, err := json.Marshal([]map[string]any{
		{"stage": "classify", "loads": 4}, {"stage": "ii_search", "ii": 4},
	})
	if err != nil {
		tb.Fatal(err)
	}
	return &wire.ArtifactResponse{
		Hash:        strings.Repeat("ab", 32),
		Request:     canon,
		Response:    resp,
		Trace:       trace,
		Verify:      wire.ArtifactVerify{Sampled: true, Passed: true},
		CreatedUnix: 1754700000,
	}
}

func BenchmarkDecodeArtifactJSON(b *testing.B) {
	body, err := json.Marshal(benchArtifact(b))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(body)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var ar wire.ArtifactResponse
		if err := json.Unmarshal(body, &ar); err != nil {
			b.Fatal(err)
		}
		benchSink = &ar
	}
}

func BenchmarkDecodeArtifactBinary(b *testing.B) {
	body := binary.EncodeArtifact(nil, benchArtifact(b))
	b.ReportAllocs()
	b.SetBytes(int64(len(body)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ar, err := binary.DecodeArtifact(body)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = ar
	}
}

func BenchmarkEncodeBinary(b *testing.B) {
	c := buildCorpus(b)
	loops := make([]*ir.Loop, 0, len(c.binBodies))
	for _, bm := range workload.All() {
		for _, spec := range bm.Loops {
			loops = append(loops, spec.Gen())
		}
	}
	b.ReportAllocs()
	b.SetBytes(c.binBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, l := range loops {
			frame, err := binary.EncodeCompileRequest(nil, l, wire.Options{})
			if err != nil {
				b.Fatal(err)
			}
			benchSink = frame
		}
	}
}
