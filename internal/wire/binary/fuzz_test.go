package binary_test

import (
	"encoding/json"
	"reflect"
	"testing"

	"ltsp"
	"ltsp/internal/wire"
	"ltsp/internal/wire/binary"
	"ltsp/internal/workload"
)

// FuzzWireCodecEquivalence is the differential oracle between the two
// wire codecs: any compile request the JSON path accepts must survive
// JSON → struct → binary → struct with a deeply equal loop, identical
// canonicalized options, and the identical artifact hash. The seed
// corpus is every loop of all 55 workload models plus adversarial
// envelopes; the fuzzer then mutates the JSON freely.
func FuzzWireCodecEquivalence(f *testing.F) {
	for _, b := range workload.All() {
		for i, spec := range b.Loops {
			opts := ltsp.Options{}
			switch i % 3 {
			case 0:
				opts = ltsp.Options{Prefetch: true, LatencyTolerant: true, TripEstimate: 100}
			case 1:
				opts = ltsp.Options{Backend: ltsp.BackendExact, LatencyTolerant: true}
			}
			req, err := wire.NewCompileRequest(spec.Gen(), opts)
			if err != nil {
				continue
			}
			data, err := json.Marshal(req)
			if err != nil {
				continue
			}
			f.Add(data)
		}
	}
	f.Add([]byte(`{"v":1,"loop":{"v":1,"name":"x","body":[{"op":"fma","dsts":["vf0"],"srcs":["vf0","vf1","vf2"]}]},"options":{"mode":"hlo"}}`))
	f.Add([]byte(`{"v":1,"loop":{"v":1,"name":"","body":[]},"options":{"pipeline":false,"tripEstimate":-0.0}}`))
	f.Add([]byte(`{"v":2,"loop":{}}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"v":1,"loop":{"v":1,"name":"b","body":[{"op":"add","dsts":["vr0"],"srcs":["vr0","vr1"]}]},"options":{"backend":"oracle"}}`))
	f.Add([]byte(`{"v":1,"loop":{"v":1,"name":"b","body":[{"op":"add","dsts":["vr0"],"srcs":["vr0","vr1"]}]},"options":{"backend":"heuristic"}}`))
	f.Add([]byte(`{"v":1,"loop":{"v":1,"name":"b","body":[]},"options":{"backend":"simplex"}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		var req wire.CompileRequest
		if err := json.Unmarshal(data, &req); err != nil {
			return
		}
		jhash, err := req.Hash()
		if err != nil {
			// The JSON path rejects this request (bad version, invalid
			// loop, invalid options) — nothing to compare.
			return
		}
		jl, err := req.DecodeLoop()
		if err != nil {
			t.Fatalf("request hashed but its loop does not decode: %v", err)
		}
		frame, err := binary.EncodeCompileRequest(nil, jl, req.Options)
		if err != nil {
			t.Fatalf("JSON-accepted request rejected by the binary encoder: %v", err)
		}
		breq, err := binary.DecodeCompileRequest(frame)
		if err != nil {
			t.Fatalf("binary round trip rejected its own encoding: %v", err)
		}
		bhash, err := breq.Hash()
		if err != nil {
			t.Fatalf("binary-decoded request does not hash: %v", err)
		}
		if bhash != jhash {
			t.Fatalf("artifact hash depends on transfer encoding: json %s binary %s", jhash, bhash)
		}
		bl, err := breq.DecodeLoop()
		if err != nil {
			t.Fatalf("binary-decoded request lost its loop: %v", err)
		}
		if !reflect.DeepEqual(jl, bl) {
			t.Fatalf("loop differs after binary round trip:\njson: %+v\nbin:  %+v", jl, bl)
		}
	})
}
