package binary

import (
	"ltsp/internal/ir"
	"ltsp/internal/wire"
)

// Option presence flags.
const (
	optPrefetch byte = 1 << iota
	optLatencyTolerant
	optBoostDelinquent
	optTrip
	optPipeline
	optPipelineTrue
	optBackend
)

func encodeOptions(w *writer, o wire.Options) {
	var flags byte
	if o.Prefetch {
		flags |= optPrefetch
	}
	if o.LatencyTolerant {
		flags |= optLatencyTolerant
	}
	if o.BoostDelinquent {
		flags |= optBoostDelinquent
	}
	if o.TripEstimate != 0 {
		flags |= optTrip
	}
	if o.Pipeline != nil {
		flags |= optPipeline
		if *o.Pipeline {
			flags |= optPipelineTrue
		}
	}
	// The backend string is carried in its canonical spelling ("" for the
	// heuristic), and only when non-empty, so heuristic frames are
	// byte-identical to pre-backend frames.
	backend := wire.BackendName(o.Backend)
	if backend != "" {
		flags |= optBackend
	}
	w.byte(flags)
	w.str(o.Mode)
	if flags&optTrip != 0 {
		w.f64(o.TripEstimate)
	}
	if flags&optBackend != 0 {
		w.str(backend)
	}
}

func decodeOptions(r *reader) wire.Options {
	flags := r.byte()
	o := wire.Options{
		Mode:            r.str(),
		Prefetch:        flags&optPrefetch != 0,
		LatencyTolerant: flags&optLatencyTolerant != 0,
		BoostDelinquent: flags&optBoostDelinquent != 0,
	}
	if flags&optTrip != 0 {
		o.TripEstimate = r.f64()
	}
	if flags&optPipeline != 0 {
		v := flags&optPipelineTrue != 0
		o.Pipeline = &v
	}
	if flags&optBackend != 0 {
		o.Backend = r.str()
	}
	return o
}

// EncodeCompileRequest appends a compile-request frame built from an
// in-memory loop and wire options — the binary analogue of
// wire.NewCompileRequest + json.Marshal.
func EncodeCompileRequest(dst []byte, l *ir.Loop, o wire.Options) ([]byte, error) {
	w := getWriter()
	defer putWriter(w)
	w.u64(uint64(wire.Version))
	encodeOptions(w, o)
	if err := encodeLoop(w, l); err != nil {
		return nil, err
	}
	return frame(dst, kindCompileRequest, w.buf), nil
}

// DecodeCompileRequest parses a compile-request frame into a
// wire.CompileRequest with the decoded (and semantically validated) loop
// memoized: the serving path's Canonical/Hash/DecodeLoop calls on the
// result never touch JSON until the canonical bytes are actually needed
// for the artifact key.
func DecodeCompileRequest(data []byte) (*wire.CompileRequest, error) {
	r, err := decodeFrame(data, kindCompileRequest)
	if err != nil {
		return nil, err
	}
	if v := r.u64(); r.err == nil && v != wire.Version {
		return nil, fmtErr("%w: request envelope %d (want %d)", ErrVersion, v, wire.Version)
	}
	opts := decodeOptions(r)
	if r.err != nil {
		return nil, r.err
	}
	l, err := decodeLoop(r)
	if err != nil {
		return nil, err
	}
	if r.off != len(r.b) {
		return nil, fmtErr("%d trailing bytes after request payload", len(r.b)-r.off)
	}
	return wire.NewDecodedRequest(l, opts)
}

// EncodeCompileBatch appends a compile-batch frame. Items are
// (loop, options) pairs in request order.
func EncodeCompileBatch(dst []byte, loops []*ir.Loop, opts []wire.Options) ([]byte, error) {
	if len(loops) != len(opts) {
		return nil, fmtErr("batch has %d loops but %d option sets", len(loops), len(opts))
	}
	w := getWriter()
	defer putWriter(w)
	w.u64(uint64(wire.Version))
	w.u64(uint64(len(loops)))
	for i := range loops {
		encodeOptions(w, opts[i])
		if err := encodeLoop(w, loops[i]); err != nil {
			return nil, err
		}
	}
	return frame(dst, kindCompileBatchRequest, w.buf), nil
}

// DecodeCompileBatch parses a compile-batch frame; every item's loop is
// decoded, validated and memoized exactly as in DecodeCompileRequest.
func DecodeCompileBatch(data []byte) (*wire.CompileBatchRequest, error) {
	r, err := decodeFrame(data, kindCompileBatchRequest)
	if err != nil {
		return nil, err
	}
	version := r.u64()
	if r.err == nil && version != wire.Version {
		return nil, fmtErr("%w: request envelope %d (want %d)", ErrVersion, version, wire.Version)
	}
	n := r.count()
	if r.err != nil {
		return nil, r.err
	}
	req := &wire.CompileBatchRequest{Version: int(version), Items: make([]wire.CompileItem, 0, n)}
	for i := 0; i < n; i++ {
		opts := decodeOptions(r)
		if r.err != nil {
			return nil, r.err
		}
		l, err := decodeLoop(r)
		if err != nil {
			return nil, fmtErr("item[%d]: %w", i, err)
		}
		item, err := wire.NewDecodedItem(l, opts)
		if err != nil {
			return nil, fmtErr("item[%d]: %w", i, err)
		}
		req.Items = append(req.Items, item)
	}
	if r.off != len(r.b) {
		return nil, fmtErr("%d trailing bytes after batch payload", len(r.b)-r.off)
	}
	return req, nil
}
