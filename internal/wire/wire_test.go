package wire_test

import (
	"encoding/json"
	"testing"

	"ltsp"
	"ltsp/internal/wire"
	"ltsp/internal/workload"
)

// TestHashStability: the content hash must be invariant under client
// formatting (whitespace, field order, non-canonical option spellings)
// and must change when the compilation inputs change.
func TestHashStability(t *testing.T) {
	gen, _ := workload.IntCopyAdd(64)
	opts := ltsp.Options{Mode: ltsp.ModeHLO, Prefetch: true, LatencyTolerant: true, TripEstimate: 100}
	req, err := wire.NewCompileRequest(gen(), opts)
	if err != nil {
		t.Fatal(err)
	}
	h1, err := req.Hash()
	if err != nil {
		t.Fatal(err)
	}

	// Re-marshal the request with indentation and parse it back: the hash
	// must not change.
	pretty, err := json.MarshalIndent(req, "", "    ")
	if err != nil {
		t.Fatal(err)
	}
	var req2 wire.CompileRequest
	if err := json.Unmarshal(pretty, &req2); err != nil {
		t.Fatal(err)
	}
	h2, err := req2.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("hash not format-invariant: %s vs %s", h1, h2)
	}

	// "none" and "" are the same mode; the hash must agree.
	req3 := *req
	req3.Options.Mode = "none"
	req4 := *req
	req4.Options.Mode = ""
	h3, _ := req3.Hash()
	h4, _ := req4.Hash()
	if h3 != h4 {
		t.Fatalf("mode spelling leaks into hash: %s vs %s", h3, h4)
	}

	// Different options must hash differently.
	req5 := *req
	req5.Options.LatencyTolerant = !req5.Options.LatencyTolerant
	h5, _ := req5.Hash()
	if h5 == h1 {
		t.Fatal("hash ignores compile options")
	}

	// A different loop must hash differently.
	gen2, _ := workload.FPDaxpy(64)
	req6, err := wire.NewCompileRequest(gen2(), opts)
	if err != nil {
		t.Fatal(err)
	}
	h6, err := req6.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h6 == h1 {
		t.Fatal("hash ignores the loop")
	}
}

// TestOptionsRoundTrip converts options wire → library → wire.
func TestOptionsRoundTrip(t *testing.T) {
	pipeline := true
	in := ltsp.Options{
		Mode:            ltsp.ModeAllFPL2,
		Prefetch:        true,
		LatencyTolerant: true,
		BoostDelinquent: true,
		TripEstimate:    42.5,
		Pipeline:        &pipeline,
	}
	w := wire.OptionsFrom(in)
	out, err := w.ToOptions()
	if err != nil {
		t.Fatal(err)
	}
	if out.Mode != in.Mode || out.Prefetch != in.Prefetch ||
		out.LatencyTolerant != in.LatencyTolerant || out.BoostDelinquent != in.BoostDelinquent ||
		out.TripEstimate != in.TripEstimate || *out.Pipeline != *in.Pipeline {
		t.Fatalf("options round trip lost data: %+v -> %+v -> %+v", in, w, out)
	}
	if _, err := (wire.Options{Mode: "bogus"}).ToOptions(); err == nil {
		t.Fatal("bogus mode accepted")
	}
}

// TestSimOptionsDefaults: nil fields take sim defaults, set fields
// override.
func TestSimOptionsDefaults(t *testing.T) {
	cfg := wire.SimOptions{}.ToConfig()
	if !cfg.BankConflicts || cfg.FEOverhead != 6 || cfg.FlushOverhead != 6 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	off := false
	fe := 9
	cfg = wire.SimOptions{BankConflicts: &off, FEOverhead: &fe, RSECyclesPerExec: 5}.ToConfig()
	if cfg.BankConflicts || cfg.FEOverhead != 9 || cfg.RSECyclesPerExec != 5 {
		t.Fatalf("overrides not applied: %+v", cfg)
	}
}

// TestBackendHashCanonicalization: the canonical wire spelling of the
// heuristic backend is the empty string, so requests that predate the
// backend field keep their artifact hashes; exact and oracle hash
// distinctly so cached artifacts never cross backends; unknown names
// fail before anything is cached.
func TestBackendHashCanonicalization(t *testing.T) {
	gen, _ := workload.IntCopyAdd(64)
	base, err := wire.NewCompileRequest(gen(), ltsp.Options{LatencyTolerant: true})
	if err != nil {
		t.Fatal(err)
	}
	hash := func(backend string) string {
		r := *base
		r.Options.Backend = backend
		h, err := r.Hash()
		if err != nil {
			t.Fatalf("backend %q: %v", backend, err)
		}
		return h
	}
	if hash("") != hash("heuristic") {
		t.Fatal("heuristic spelling leaks into the artifact hash")
	}
	he, ex, or := hash(""), hash("exact"), hash("oracle")
	if he == ex || he == or || ex == or {
		t.Fatalf("backends must hash distinctly: heuristic %s exact %s oracle %s", he, ex, or)
	}
	bad := *base
	bad.Options.Backend = "simplex"
	if _, err := bad.Hash(); err == nil {
		t.Fatal("unknown backend hashed — it would poison the artifact cache")
	}
	if _, err := bad.Options.ToOptions(); err == nil {
		t.Fatal("unknown backend accepted by ToOptions")
	}

	// OptionsFrom canonicalizes the spelling on the way out.
	if w := wire.OptionsFrom(ltsp.Options{Backend: ltsp.BackendHeuristic}); w.Backend != "" {
		t.Fatalf("OptionsFrom kept non-canonical heuristic spelling %q", w.Backend)
	}
	if w := wire.OptionsFrom(ltsp.Options{Backend: ltsp.BackendExact}); w.Backend != "exact" {
		t.Fatalf("OptionsFrom lost the exact backend: %q", w.Backend)
	}
	out, err := wire.Options{Backend: "exact"}.ToOptions()
	if err != nil || out.Backend != ltsp.BackendExact {
		t.Fatalf("backend round trip: %+v, %v", out, err)
	}
}
