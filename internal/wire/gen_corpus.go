//go:build ignore

// gen_corpus regenerates the committed seed corpus for FuzzCompileLoop
// from real marshaled compile requests:
//
//	go run gen_corpus.go
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"

	"ltsp"
	"ltsp/internal/wire"
	"ltsp/internal/workload"
)

func main() {
	dir := filepath.Join("testdata", "fuzz", "FuzzCompileLoop")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	seeds := []struct {
		name string
		size int64
		opts ltsp.Options
	}{
		{"seed-hlo", 16, ltsp.Options{Mode: ltsp.ModeHLO, Prefetch: true, LatencyTolerant: true, TripEstimate: 100}},
		{"seed-latency-tolerant", 64, ltsp.Options{LatencyTolerant: true}},
		{"seed-defaults", 4, ltsp.Options{}},
	}
	for _, s := range seeds {
		gen, _ := workload.IntCopyAdd(s.size)
		req, err := wire.NewCompileRequest(gen(), s.opts)
		if err != nil {
			log.Fatal(err)
		}
		data, err := json.Marshal(req)
		if err != nil {
			log.Fatal(err)
		}
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
		if err := os.WriteFile(filepath.Join(dir, s.name), []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
	}
}
