package wire

import "ltsp/internal/obs"

// This file defines the response envelopes of the v2 API surface. They
// are shared verbatim by internal/server (which writes them) and
// ltspclient (which decodes them), so the two sides cannot drift.

// LoadReportJSON mirrors core.LoadReport on the wire.
type LoadReportJSON struct {
	ID       int    `json:"id"`
	Critical bool   `json:"critical"`
	BaseLat  int    `json:"baseLat"`
	SchedLat int    `json:"schedLat"`
	ExtraD   int    `json:"extraD"`
	ClusterK int    `json:"clusterK"`
	Hint     string `json:"hint"`
}

// RegStatsJSON mirrors regalloc.Stats on the wire.
type RegStatsJSON struct {
	GR     int `json:"gr"`
	RotGR  int `json:"rotGR"`
	FR     int `json:"fr"`
	RotFR  int `json:"rotFR"`
	PR     int `json:"pr"`
	RotPR  int `json:"rotPR"`
	Spills int `json:"spills"`
}

// HLOJSON summarizes the prefetcher's decisions on the wire.
type HLOJSON struct {
	IIEst           int `json:"iiEst"`
	PrefetchesAdded int `json:"prefetchesAdded"`
	HintsSet        int `json:"hintsSet"`
}

// CompileResponse is the body of a successful POST /v2/compile (and the
// compatible /v1/compile).
type CompileResponse struct {
	// Hash is the content-addressed artifact key; POST /v2/simulate
	// accepts it in place of an inline loop.
	Hash string `json:"hash"`
	// Cached reports whether the artifact came from the cache (including
	// piggybacking on an identical in-flight compilation).
	Cached    bool `json:"cached"`
	Pipelined bool `json:"pipelined"`
	II        int  `json:"ii,omitempty"`
	Stages    int  `json:"stages,omitempty"`
	ResII     int  `json:"resII,omitempty"`
	RecII     int  `json:"recII,omitempty"`
	// Backend names the scheduling backend that produced the kernel;
	// ProvenII reports a provably optimal II (exact backend, or the
	// MinII lower bound).
	Backend  string           `json:"backend,omitempty"`
	ProvenII bool             `json:"provenII,omitempty"`
	Reg      RegStatsJSON     `json:"reg"`
	Loads    []LoadReportJSON `json:"loads,omitempty"`
	HLO      *HLOJSON         `json:"hlo,omitempty"`
	// Outcome is the pipeliner result class (obs.Outcome*); the full
	// decision trace is at GET /v2/artifacts/{hash}/trace.
	Outcome string `json:"outcome"`
	Listing string `json:"listing"`
	Diagram string `json:"diagram,omitempty"`
}

// BatchItemResult is one element of a CompileBatchResponse: either the
// embedded compile response fields or a per-item error. Item order
// matches the request.
type BatchItemResult struct {
	*CompileResponse
	// Error and ErrorCode describe a per-item failure; Retryable reports
	// whether resubmitting just this item could succeed.
	Error     string `json:"error,omitempty"`
	ErrorCode string `json:"errorCode,omitempty"`
	Retryable bool   `json:"retryable,omitempty"`
}

// CompileBatchResponse is the body of POST /v2/compile-batch. The batch
// succeeds as a whole (HTTP 200) even when individual items fail; each
// failed item carries its own error.
type CompileBatchResponse struct {
	Items []BatchItemResult `json:"items"`
}

// AcctJSON mirrors sim.Accounting on the wire.
type AcctJSON struct {
	Total        int64 `json:"total"`
	Unstalled    int64 `json:"unstalled"`
	ExeBubble    int64 `json:"exeBubble"`
	L1DFPUBubble int64 `json:"l1dFpuBubble"`
	RSEBubble    int64 `json:"rseBubble"`
	FlushBubble  int64 `json:"flushBubble"`
	FEBubble     int64 `json:"feBubble"`
}

// SimulateResponse is the body of a successful POST /v2/simulate.
type SimulateResponse struct {
	Hash          string   `json:"hash"`
	Cached        bool     `json:"cached"`
	Cycles        int64    `json:"cycles"`
	KernelIters   int64    `json:"kernelIters"`
	Acct          AcctJSON `json:"acct"`
	LoadsByLevel  [5]int64 `json:"loadsByLevel"`
	OzQPeak       int      `json:"ozqPeak"`
	BankConflicts int64    `json:"bankConflicts"`
}

// TraceResponse is the body of GET /v2/artifacts/{hash}/trace. Events is
// the trace's JSON form: an array of kinded decision events.
type TraceResponse struct {
	Hash    string     `json:"hash"`
	Outcome string     `json:"outcome"`
	Events  *obs.Trace `json:"events"`
}
