package wire

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// This file defines the artifact-transfer envelope of the cluster mode:
// GET /v2/artifacts/{hash} returns the complete persisted artifact —
// canonical request, compile response, decision trace, verification
// metadata — so a peer can fill its own cache (memory and disk) without
// recompiling. The same envelope is what a fleet-aware client sees when
// it asks a replica for an artifact directly.

// ArtifactVerify mirrors the store's verification metadata on the wire.
type ArtifactVerify struct {
	// Sampled reports whether the compilation went through independent
	// verification on the node that compiled it; Passed is the verdict.
	Sampled bool `json:"sampled,omitempty"`
	Passed  bool `json:"passed,omitempty"`
}

// ArtifactResponse is the body of a successful GET /v2/artifacts/{hash}.
type ArtifactResponse struct {
	// Hash is the content-addressed key: the hex sha256 of Request.
	Hash string `json:"hash"`
	// Request is the canonical compile request the artifact answers.
	Request json.RawMessage `json:"request"`
	// Response is the wire CompileResponse of the compilation.
	Response json.RawMessage `json:"response"`
	// Trace is the compiler's decision trace (JSON event array).
	Trace json.RawMessage `json:"trace,omitempty"`
	// Verify carries the verification metadata recorded at compile time.
	Verify ArtifactVerify `json:"verify"`
	// CreatedUnix is when the artifact was first compiled (Unix seconds).
	CreatedUnix int64 `json:"createdUnix,omitempty"`
}

// Normalize rewrites the envelope's JSON sections to their compact
// forms. The content address is defined over the compact canonical
// request encoding, but the transfer encoding is free to reformat
// (ltspd pretty-prints every response body), so a receiver must
// normalize before hashing — and before persisting, so its stored copy
// is byte-identical to the sender's.
func (a *ArtifactResponse) Normalize() error {
	for _, s := range []*json.RawMessage{&a.Request, &a.Response, &a.Trace} {
		if len(*s) == 0 {
			continue
		}
		var buf bytes.Buffer
		if err := json.Compact(&buf, *s); err != nil {
			return fmt.Errorf("wire: artifact section is not valid JSON: %v", err)
		}
		*s = append(json.RawMessage(nil), buf.Bytes()...)
	}
	return nil
}

// CheckIntegrity verifies that the envelope's Request really hashes to
// its Hash — the receiving peer's defense against a corrupt or lying
// sender: a filled cache entry must be exactly as content-addressed as a
// locally compiled one. Call Normalize first: the hash is defined over
// the compact encoding.
func (a *ArtifactResponse) CheckIntegrity() error {
	sum := sha256.Sum256(a.Request)
	if got := hex.EncodeToString(sum[:]); got != a.Hash {
		return fmt.Errorf("wire: artifact request hashes to %s, envelope says %s", got, a.Hash)
	}
	return nil
}

// TraceRawResponse is wire-identical to TraceResponse but carries the
// trace in its serialized form — what a node serves when the artifact
// was filled from the disk store or a peer, where the trace exists only
// as the JSON recorded by the node that compiled it.
type TraceRawResponse struct {
	Hash    string          `json:"hash"`
	Outcome string          `json:"outcome"`
	Events  json.RawMessage `json:"events"`
}

// HashOf returns the content-addressed artifact key of an
// already-canonical request encoding (see CompileRequest.Canonical):
// the hex sha256 of the bytes. Callers that need both the canonical
// bytes and the hash use Canonical + HashOf instead of Canonical + Hash
// to avoid canonicalizing twice.
func HashOf(canonical []byte) string {
	sum := sha256.Sum256(canonical)
	return hex.EncodeToString(sum[:])
}

// ValidHash reports whether s has the shape of an artifact key: exactly
// 64 lowercase hex characters. Cluster endpoints validate pushed and
// synced hashes with it before touching the store.
func ValidHash(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
