package wire

// Request-tracing wire surface. A trace follows one logical request
// across processes: the client stamps every attempt with the trace's ID
// (TraceHeader) and its own current span (ParentSpanHeader); each server
// hop adopts the ID, records its spans under it, and forwards both
// headers into peer cache-fill fetches. The spans recorded on either
// side are stitched back together by the shared trace ID — GET
// /v2/requests/{trace-id} returns a server's slice of them as
// RequestTraceResponse.

const (
	// RequestIDHeader carries the per-hop request ID. The server echoes
	// it on every response; a valid incoming value is passed through
	// (and forwarded into peer cache-fill fetches) so slog lines from
	// every node a request touches correlate on one ID, even when the
	// request is not traced.
	RequestIDHeader = "X-Request-ID"
	// TraceHeader carries the trace ID. A request that arrives with it is
	// always traced (the caller asked); requests without it are traced at
	// the server's sampling rate under a freshly generated ID, echoed in
	// the response so the caller can fetch the timeline.
	TraceHeader = "X-Trace-ID"
	// ParentSpanHeader carries the sender's current span ID, so the
	// receiver's root span nests under the attempt that caused it.
	ParentSpanHeader = "X-Parent-Span-ID"
)

// ValidTraceID bounds what the server accepts from the wire: 1-64
// characters of [0-9A-Za-z._-]. Anything else (header injection, log
// garbage) is ignored and replaced with a generated ID.
func ValidTraceID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// SpanJSON is one recorded span of a request trace. Start is absolute
// (Unix nanoseconds) so spans from different processes order on a shared
// axis; Dur is 0 while (or if) the span never ended.
type SpanJSON struct {
	ID     string            `json:"id"`
	Parent string            `json:"parent,omitempty"`
	Name   string            `json:"name"`
	Start  int64             `json:"start_unix_ns"`
	DurNs  int64             `json:"dur_ns"`
	Attrs  map[string]string `json:"attrs,omitempty"`
}

// RequestTraceResponse is the GET /v2/requests/{trace-id} body: every
// span this server recorded under the trace, in start order.
type RequestTraceResponse struct {
	TraceID string     `json:"trace_id"`
	Name    string     `json:"name"`
	Status  int        `json:"status"`
	Start   int64      `json:"start_unix_ns"`
	DurNs   int64      `json:"dur_ns"`
	Outlier string     `json:"outlier,omitempty"` // "slow" | "error" | ""
	Spans   []SpanJSON `json:"spans"`
}

// RequestSummary is one row of the GET /debug/requests listing (z-pages
// style): enough to spot the slow or failed request and fetch its full
// timeline by trace ID.
type RequestSummary struct {
	TraceID string `json:"trace_id"`
	Name    string `json:"name"`
	Status  int    `json:"status"`
	Start   int64  `json:"start_unix_ns"`
	DurNs   int64  `json:"dur_ns"`
	Spans   int    `json:"spans"`
	Outlier string `json:"outlier,omitempty"`
}

// RequestListResponse is the GET /debug/requests body.
type RequestListResponse struct {
	Requests []RequestSummary `json:"requests"`
}
