package wire_test

import (
	"encoding/json"
	"testing"

	"ltsp"
	"ltsp/internal/wire"
	"ltsp/internal/workload"
)

// FuzzCompileLoop throws arbitrary bytes at the full wire path — JSON
// decode, loop decode with semantic validation, option parsing, and the
// compiler itself with verification enabled. Malformed input must come
// back as an error; any panic is a finding. This is the service's actual
// attack surface: every byte here is reachable from an HTTP body.
func FuzzCompileLoop(f *testing.F) {
	for _, s := range []struct {
		size int64
		opts ltsp.Options
	}{
		{16, ltsp.Options{Mode: ltsp.ModeHLO, Prefetch: true, LatencyTolerant: true, TripEstimate: 100}},
		{64, ltsp.Options{LatencyTolerant: true}},
		{4, ltsp.Options{}},
		{8, ltsp.Options{Backend: ltsp.BackendExact}},
		{8, ltsp.Options{Backend: ltsp.BackendOracle, LatencyTolerant: true}},
	} {
		gen, _ := workload.IntCopyAdd(s.size)
		req, err := wire.NewCompileRequest(gen(), s.opts)
		if err != nil {
			f.Fatal(err)
		}
		data, err := json.Marshal(req)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"version":1,"loop":{}}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"v":1,"loop":{"v":1,"name":"b","body":[{"op":"add","dsts":["vr0"],"srcs":["vr0","vr1"]}]},"options":{"backend":"simplex"}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var req wire.CompileRequest
		if err := json.Unmarshal(data, &req); err != nil {
			t.Skip()
		}
		l, err := req.DecodeLoop()
		if err != nil {
			return
		}
		opts, err := req.Options.ToOptions()
		if err != nil {
			return
		}
		opts.Verify = true
		_, _ = ltsp.Compile(l, opts) // errors are fine; panics are crashes
	})
}
