package ddg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ltsp/internal/ir"
)

// runningExample builds the paper's Fig. 1 loop.
func runningExample() *ir.Loop {
	l := ir.NewLoop("copyadd")
	r4, r5, r6, r7, r9 := l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR()
	l.Append(ir.Ld(r4, r5, 4, 4))
	l.Append(ir.Add(r7, r4, r9))
	l.Append(ir.St(r6, r7, 4, 4))
	l.Init(r5, 0x1000)
	l.Init(r6, 0x2000)
	l.Init(r9, 1)
	return l
}

func baseLat(in *ir.Instr) int {
	if in.Op.IsLoad() {
		return 1
	}
	return 1
}

func TestBuildRunningExample(t *testing.T) {
	g, err := Build(runningExample())
	if err != nil {
		t.Fatal(err)
	}
	// Expected edges: ld->add (data), add->st (data), ld->ld (post-inc
	// self, dist 1), st->st (post-inc self, dist 1).
	var self, flow int
	for _, e := range g.Edges {
		if e.From == e.To {
			self++
			if e.Distance != 1 {
				t.Errorf("self edge with distance %d", e.Distance)
			}
		} else {
			flow++
			if e.Distance != 0 {
				t.Errorf("intra-iteration edge %d->%d with distance %d", e.From, e.To, e.Distance)
			}
		}
	}
	if self != 2 || flow != 2 {
		t.Errorf("edges: self=%d flow=%d, want 2/2", self, flow)
	}
}

func TestBuildLoadDataEdge(t *testing.T) {
	g, err := Build(runningExample())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for i := range g.Edges {
		e := &g.Edges[i]
		if e.From == 0 && e.To == 1 {
			if !e.LoadData {
				t.Error("ld->add edge not marked LoadData")
			}
			found = true
			// Latency must come from the LatencyFn, not the fixed field.
			if got := g.Latency(e, func(*ir.Instr) int { return 21 }); got != 21 {
				t.Errorf("LoadData latency = %d, want 21", got)
			}
		}
	}
	if !found {
		t.Fatal("no ld->add edge")
	}
}

func TestBuildRejectsDoubleDef(t *testing.T) {
	l := ir.NewLoop("dd")
	a, b := l.NewGR(), l.NewGR()
	l.Init(b, 0)
	l.Append(ir.Mov(a, b))
	l.Append(ir.Mov(a, b))
	if _, err := Build(l); err == nil {
		t.Error("double definition accepted (rotation renaming requires single defs)")
	}
}

func TestBuildRejectsUndefinedVirtual(t *testing.T) {
	l := ir.NewLoop("ud")
	a, b := l.NewGR(), l.NewGR()
	l.Append(ir.Mov(a, b)) // b never defined, never initialized
	if _, err := Build(l); err == nil {
		t.Error("undefined virtual accepted")
	}
}

func TestBuildLoopCarriedDistance(t *testing.T) {
	// mov pcur = pnext ; ld pnext = [pcur]: the mov reads the previous
	// iteration's load result.
	l := ir.NewLoop("chase")
	pnext, pcur := l.NewGR(), l.NewGR()
	l.Append(ir.Mov(pcur, pnext))
	ld := ir.Ld(pnext, pcur, 8, 0)
	l.Append(ld)
	l.Init(pnext, 0x1000)
	g, err := Build(l)
	if err != nil {
		t.Fatal(err)
	}
	for i := range g.Edges {
		e := &g.Edges[i]
		if e.From == 1 && e.To == 0 {
			if e.Distance != 1 || !e.LoadData {
				t.Errorf("carried edge: dist=%d loadData=%v", e.Distance, e.LoadData)
			}
			return
		}
	}
	t.Fatal("no ld->mov carried edge")
}

func TestInPlaceAntiDeps(t *testing.T) {
	// acc updated in place, read by a store: the store must get an
	// anti-edge to the update.
	l := ir.NewLoop("acc")
	acc, x, b := l.NewGR(), l.NewGR(), l.NewGR()
	l.Init(acc, 0)
	l.Init(b, 0x1000)
	l.Append(ir.Ld(x, b, 4, 4))
	l.Append(ir.Add(acc, acc, x))         // in-place
	l.Append(ir.St(l.NewGR(), acc, 8, 0)) // reader of acc
	l.Setup = append(l.Setup, ir.RegInit{Reg: l.Body[2].BaseReg()})
	g, err := Build(l)
	if err != nil {
		t.Fatal(err)
	}
	ip := g.InPlaceRegs()
	if got, ok := ip[acc]; !ok || got != 1 {
		t.Fatalf("InPlaceRegs = %v", ip)
	}
	found := false
	for i := range g.Edges {
		e := &g.Edges[i]
		if e.From == 2 && e.To == 1 && e.Distance == 1 && e.FixedLatency == 0 {
			found = true
		}
	}
	if !found {
		t.Error("missing anti-dependence store->add for in-place register")
	}
}

func TestMemDepEdges(t *testing.T) {
	l := runningExample()
	l.MemDeps = []ir.MemDep{{From: 0, To: 2, Distance: 1, Latency: 2}}
	g, err := Build(l)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for i := range g.Edges {
		e := &g.Edges[i]
		if e.Kind == DepMem {
			found = true
			if e.Distance != 1 || g.Latency(e, baseLat) != 2 {
				t.Errorf("mem edge wrong: %+v", e)
			}
		}
	}
	if !found {
		t.Error("declared memory dependence missing")
	}
}

func TestCyclesRunningExample(t *testing.T) {
	g, _ := Build(runningExample())
	cycles := g.Cycles()
	// Two self-loops (the post-incremented bases).
	if len(cycles) != 2 {
		t.Fatalf("cycles = %d, want 2", len(cycles))
	}
	for _, c := range cycles {
		if c.DistSum != 1 || len(c.Nodes) != 1 {
			t.Errorf("cycle %+v, want 1-node distance-1 self loop", c)
		}
		if c.MinII(g, baseLat) != 1 {
			t.Errorf("self-loop MinII = %d", c.MinII(g, baseLat))
		}
	}
}

func TestCyclesLoads(t *testing.T) {
	l := ir.NewLoop("chase")
	pnext, pcur := l.NewGR(), l.NewGR()
	l.Append(ir.Mov(pcur, pnext))
	l.Append(ir.Ld(pnext, pcur, 8, 0))
	l.Init(pnext, 0x1000)
	g, _ := Build(l)
	cycles := g.Cycles()
	if len(cycles) != 1 {
		t.Fatalf("cycles = %d", len(cycles))
	}
	loads := cycles[0].Loads(g)
	if len(loads) != 1 || loads[0].ID != 1 {
		t.Errorf("cycle loads = %v", loads)
	}
	// Recurrence: mov(1) + ld(1) over distance 1 -> RecMII 2.
	if got := g.RecMII(baseLat); got != 2 {
		t.Errorf("RecMII = %d, want 2", got)
	}
	// With the load at 21 cycles the same cycle forces RecMII 22.
	lat21 := func(in *ir.Instr) int {
		if in.Op.IsLoad() {
			return 21
		}
		return 1
	}
	if got := g.RecMII(lat21); got != 22 {
		t.Errorf("RecMII(21) = %d, want 22", got)
	}
}

func TestRecMIINoCycles(t *testing.T) {
	l := ir.NewLoop("straight")
	a, b := l.NewGR(), l.NewGR()
	l.Init(a, 1)
	l.Append(ir.AddI(b, a, 2))
	g, _ := Build(l)
	if got := g.RecMII(baseLat); got != 1 {
		t.Errorf("RecMII of acyclic graph = %d, want 1", got)
	}
	if len(g.Cycles()) != 0 {
		t.Error("acyclic graph has cycles")
	}
}

func TestSlackRunningExample(t *testing.T) {
	g, _ := Build(runningExample())
	slack := g.Slack(1, baseLat)
	// At II=1 the ld->add->st chain is the critical path; all three have
	// zero slack relative to it.
	for i, s := range slack {
		if s != 0 {
			t.Errorf("slack[%d] = %d, want 0 on the critical chain", i, s)
		}
	}
}

func TestHeightsOrdering(t *testing.T) {
	g, _ := Build(runningExample())
	h := g.Heights(1, baseLat)
	// ld feeds add feeds st: heights must strictly decrease.
	if !(h[0] > h[1] && h[1] > h[2]) {
		t.Errorf("heights = %v, want strictly decreasing along the chain", h)
	}
}

// randomLoop builds a random but well-formed loop: a mix of loads, ALU ops
// and stores with randomly chosen operands from previously defined or
// initialized registers.
func randomLoop(rng *rand.Rand, n int) *ir.Loop {
	l := ir.NewLoop("rand")
	var defined []ir.Reg
	newSrc := func() ir.Reg {
		if len(defined) == 0 || rng.Intn(3) == 0 {
			r := l.NewGR()
			l.Init(r, int64(rng.Intn(1<<16))*8+0x10000)
			defined = append(defined, r)
			return r
		}
		return defined[rng.Intn(len(defined))]
	}
	for i := 0; i < n; i++ {
		switch rng.Intn(4) {
		case 0:
			d := l.NewGR()
			base := l.NewGR()
			l.Init(base, int64(0x100000+i*0x1000))
			l.Append(ir.Ld(d, base, 8, 8))
			defined = append(defined, d)
		case 1:
			d := l.NewGR()
			l.Append(ir.Add(d, newSrc(), newSrc()))
			defined = append(defined, d)
		case 2:
			d := l.NewGR()
			l.Append(ir.AddI(d, newSrc(), int64(rng.Intn(100))))
			defined = append(defined, d)
		default:
			base := l.NewGR()
			l.Init(base, int64(0x800000+i*0x1000))
			l.Append(ir.St(base, newSrc(), 8, 8))
		}
	}
	return l
}

// TestQuickRecMIIMatchesCycleEnumeration cross-checks the binary-search
// RecMII against the maximum per-cycle bound from Johnson enumeration on
// random loops.
func TestQuickRecMIIMatchesCycleEnumeration(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		l := randomLoop(rng, int(sz%12)+2)
		if err := l.Verify(); err != nil {
			t.Fatalf("random loop invalid: %v", err)
		}
		g, err := Build(l)
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		lat := func(in *ir.Instr) int {
			if in.Op.IsLoad() {
				return 1 + int(seed%7)
			}
			return 1
		}
		want := 1
		for _, c := range g.Cycles() {
			if v := c.MinII(g, lat); v > want {
				want = v
			}
		}
		// The cycle-based fast path, the Bellman-Ford oracle, and a direct
		// max over the enumeration must all agree.
		return g.RecMII(lat) == want && g.recMIIBellmanFord(lat) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestCyclesMemoized pins that enumeration runs once per graph and that the
// cached fixed-latency sums reproduce the edge-walk latency sum under
// arbitrary policies.
func TestCyclesMemoized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l := randomLoop(rng, 10)
	g, err := Build(l)
	if err != nil {
		t.Fatal(err)
	}
	first := g.Cycles()
	second := g.Cycles()
	if len(first) != len(second) {
		t.Fatalf("memoized Cycles changed length: %d vs %d", len(first), len(second))
	}
	if len(first) > 0 && &first[0] != &second[0] {
		t.Error("Cycles re-enumerated instead of returning the memo")
	}
	lat := func(in *ir.Instr) int {
		if in.Op.IsLoad() {
			return 13
		}
		return 1
	}
	for i := range first {
		c := &first[i]
		if !c.sumsCached {
			t.Fatalf("cycle %d has no cached sums", i)
		}
		walked := 0
		for _, ei := range c.EdgeIdx {
			walked += g.Latency(&g.Edges[ei], lat)
		}
		if got := c.LatencySum(g, lat); got != walked {
			t.Errorf("cycle %d cached LatencySum = %d, edge walk = %d", i, got, walked)
		}
	}
	// A hand-built Cycle (no cache) must still answer via the edge walk.
	if len(first) > 0 {
		bare := Cycle{EdgeIdx: first[0].EdgeIdx, Nodes: first[0].Nodes, DistSum: first[0].DistSum}
		if bare.LatencySum(g, lat) != first[0].LatencySum(g, lat) {
			t.Error("uncached Cycle literal disagrees with cached LatencySum")
		}
	}
}

// TestQuickSlackNonNegative checks slack is always non-negative and zero
// somewhere (the critical path exists).
func TestQuickSlackNonNegative(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		l := randomLoop(rng, int(sz%10)+2)
		g, err := Build(l)
		if err != nil {
			return false
		}
		ii := g.RecMII(func(*ir.Instr) int { return 1 })
		slack := g.Slack(ii, func(*ir.Instr) int { return 1 })
		sawZero := false
		for _, s := range slack {
			if s < 0 {
				return false
			}
			if s == 0 {
				sawZero = true
			}
		}
		return sawZero
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPredicateSelfUseRotates(t *testing.T) {
	// A compare qualified by its own destination predicate (the while-loop
	// validity chain) is NOT in-place: it must rotate.
	l := ir.NewLoop("chain")
	pv := l.NewPR()
	x := l.NewGR()
	l.Init(pv, 1)
	l.Init(x, 5)
	cmp := ir.Predicated(pv, ir.CmpEqI(ir.None, pv, x, 0))
	l.Append(cmp)
	g, err := Build(l)
	if err != nil {
		t.Fatal(err)
	}
	if _, ip := g.InPlaceRegs()[pv]; ip {
		t.Error("validity-chain predicate classified in-place")
	}
	// But a data self-use still is.
	l2 := ir.NewLoop("acc")
	acc := l2.NewGR()
	l2.Init(acc, 0)
	l2.Append(ir.AddI(acc, acc, 1))
	g2, err := Build(l2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ip := g2.InPlaceRegs()[acc]; !ip {
		t.Error("accumulator not classified in-place")
	}
}
