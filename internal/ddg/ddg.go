// Package ddg builds the cyclic data-dependence graph of an if-converted
// loop body and provides the analyses modulo scheduling needs: recurrence
// cycle enumeration, Recurrence-MII computation, and per-node height/slack.
//
// Because pipelined loops use rotating registers, a value that crosses
// kernel iterations is renamed by hardware rotation; cross-iteration
// register anti- and output-dependences therefore do not constrain the
// schedule and are not represented. Each virtual register must have exactly
// one definition in the body (the builder enforces this), which the
// rotating-register code generator relies on.
package ddg

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"ltsp/internal/ir"
)

// DepKind classifies a dependence edge.
type DepKind uint8

const (
	// DepFlow is a register read-after-write dependence.
	DepFlow DepKind = iota
	// DepMem is a memory ordering dependence declared by the front end.
	DepMem
)

// String names the dependence kind.
func (k DepKind) String() string {
	if k == DepMem {
		return "mem"
	}
	return "flow"
}

// Edge is a dependence from instruction From to instruction To. Distance is
// the iteration distance (omega): 0 for intra-iteration dependences, >= 1
// for loop-carried ones. Latency gives the minimum separation in cycles for
// a fixed-latency producer; for loads the effective latency is obtained
// through a LatencyFn at query time, so the same graph serves both the
// base-latency Recurrence-II computation and expected-latency scheduling.
type Edge struct {
	From, To int
	Distance int
	Kind     DepKind
	// FixedLatency is the latency for non-load producers and memory edges.
	// For edges whose producer result is a load's data destination,
	// LoadData is true and the latency comes from the LatencyFn.
	FixedLatency int
	// LoadData marks edges carrying a load's data result.
	LoadData bool
}

// LatencyFn returns the scheduling latency of a load's data result.
// Package core supplies functions that answer per the critical/non-critical
// classification and HLO hints.
type LatencyFn func(load *ir.Instr) int

// Graph is the dependence graph over a loop body; node i is Body[i].
//
// Recurrence-cycle enumeration is memoized: the first Cycles (or RecMII)
// call enumerates once and every later query — including the per-latency-
// policy re-evaluations of the II search and the load classification —
// reuses the cached cycles with their precomputed distance and fixed-
// latency sums. The memoization is guarded by a sync.Once, so concurrent
// speculative II-search workers share one enumeration safely. The graph
// must not be mutated after the first analysis call.
type Graph struct {
	Loop  *ir.Loop
	Edges []Edge
	// Succ[i] / Pred[i] list edge indices leaving / entering node i.
	Succ, Pred [][]int

	cyclesOnce      sync.Once
	cyclesDone      atomic.Bool
	cycles          []Cycle
	cyclesTruncated bool
}

// Latency returns the effective latency of edge e under loads' latency
// policy latf.
func (g *Graph) Latency(e *Edge, latf LatencyFn) int {
	if e.LoadData {
		return latf(g.Loop.Body[e.From])
	}
	return e.FixedLatency
}

// nonLoadLatency is the result latency table for non-load producers.
// It mirrors machine.Latency but lives here so ddg does not import machine
// (the machine model depends only on ir).
func nonLoadLatency(op ir.Op) int {
	switch op {
	case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFMA, ir.OpMul, ir.OpSetF:
		return 4
	case ir.OpGetF:
		return 2
	default:
		return 1
	}
}

// graphPool recycles Graph structs with their edge list and adjacency
// arenas between compiles. A graph is only returned to the pool through
// Release, which its owner calls after the last analysis that reads it.
var graphPool = sync.Pool{New: func() any { return new(Graph) }}

// newGraph takes a Graph from the pool and resizes its arenas for n
// nodes, truncating (not freeing) the per-node adjacency lists so their
// backing arrays are reused by the upcoming Build.
func newGraph(l *ir.Loop, n int) *Graph {
	g := graphPool.Get().(*Graph)
	g.Loop = l
	g.Edges = g.Edges[:0]
	if cap(g.Succ) >= n && cap(g.Pred) >= n {
		g.Succ = g.Succ[:n]
		g.Pred = g.Pred[:n]
		for i := 0; i < n; i++ {
			g.Succ[i] = g.Succ[i][:0]
			g.Pred[i] = g.Pred[i][:0]
		}
	} else {
		g.Succ = make([][]int, n)
		g.Pred = make([][]int, n)
	}
	g.cyclesOnce = sync.Once{}
	g.cyclesDone.Store(false)
	g.cycles = nil
	g.cyclesTruncated = false
	return g
}

// Release hands the graph's arenas back to the build pool. Only the
// graph's owner may call it, strictly after the last analysis touching g
// has finished (the speculative II search joins all its workers first).
// The memoized cycles are dropped, not recycled: emitted decision traces
// may alias their node lists. Nil-safe; g must not be used afterwards.
func (g *Graph) Release() {
	if g == nil {
		return
	}
	g.Loop = nil
	g.cycles = nil
	graphPool.Put(g)
}

// Build constructs the dependence graph of the loop. It returns an error if
// a virtual register has more than one definition in the body (rotation
// renaming requires single definitions) or if an instruction reads a
// virtual register that is never defined and never initialized.
//
// The returned graph draws its arenas from an internal pool; callers that
// compile at high rate should Release it when done (leaking it to the GC
// is safe, just slower).
func Build(l *ir.Loop) (*Graph, error) {
	n := len(l.Body)
	g := newGraph(l, n)

	defOf := map[ir.Reg]int{}
	for i, in := range l.Body {
		for _, d := range in.AllDefs() {
			if d.IsNone() {
				continue
			}
			if prev, dup := defOf[d]; dup {
				g.Release()
				return nil, fmt.Errorf("ddg: %s: register %s defined by both body[%d] and body[%d]",
					l.Name, d, prev, i)
			}
			defOf[d] = i
		}
	}
	inits := map[ir.Reg]bool{}
	for _, s := range l.Setup {
		inits[s.Reg] = true
	}

	addEdge := func(e Edge) {
		idx := len(g.Edges)
		g.Edges = append(g.Edges, e)
		g.Succ[e.From] = append(g.Succ[e.From], idx)
		g.Pred[e.To] = append(g.Pred[e.To], idx)
	}

	for i, in := range l.Body {
		for _, u := range in.AllUses() {
			if u.IsNone() {
				continue
			}
			// A physical register used without a def in the body is a
			// loop-invariant input (e.g. r0); skip.
			d, ok := defOf[u]
			if !ok {
				if u.Virtual && !inits[u] {
					g.Release()
					return nil, fmt.Errorf("ddg: %s: body[%d] reads %s which is never defined or initialized",
						l.Name, i, u)
				}
				continue
			}
			dist := 0
			if d >= i {
				// Def appears at or after the use in program order: the use
				// reads the previous iteration's value. d == i happens for
				// post-incremented base registers (the instruction both
				// reads and writes the base).
				dist = 1
			}
			def := l.Body[d]
			e := Edge{From: d, To: i, Distance: dist, Kind: DepFlow}
			if def.Op.IsLoad() && u == def.Dsts[0] {
				e.LoadData = true
			} else if def.Op.IsMem() && u == def.BaseReg() {
				// Post-increment result: produced by the M-unit address
				// adder in one cycle.
				e.FixedLatency = 1
			} else {
				e.FixedLatency = nonLoadLatency(def.Op)
			}
			addEdge(e)
		}
	}

	// In-place registers: a definition that reads its own previous value
	// as a *data* source (post-incremented address bases, accumulators)
	// cannot be renamed by rotation and stays in a static register in the
	// kernel. Any *other* reader of such a register must therefore read
	// before the next update: add an anti-dependence reader -> definer
	// with distance 1. (A self-reference through the qualifying predicate
	// — the while-loop validity chain — is not in-place: it rotates.)
	inPlace := inPlaceRegs(l)
	for i, in := range l.Body {
		for _, u := range in.AllUses() {
			if d, ok := inPlace[u]; ok && d != i {
				addEdge(Edge{From: i, To: d, Distance: 1, Kind: DepFlow, FixedLatency: 0})
			}
		}
	}

	for _, d := range l.MemDeps {
		addEdge(Edge{From: d.From, To: d.To, Distance: d.Distance,
			Kind: DepMem, FixedLatency: d.Latency})
	}
	return g, nil
}

// InPlaceRegs returns the registers updated in place (their definer reads
// their previous value as a data source), mapped to the defining
// instruction. These must be allocated to static registers by the rotating
// allocator. Self-references through the qualifying predicate only (the
// while-loop validity chain) do not count: they rotate.
func (g *Graph) InPlaceRegs() map[ir.Reg]int { return inPlaceRegs(g.Loop) }

func inPlaceRegs(l *ir.Loop) map[ir.Reg]int {
	out := map[ir.Reg]int{}
	for i, in := range l.Body {
		for _, d := range in.AllDefs() {
			for _, u := range in.Srcs {
				if u == d {
					out[d] = i
				}
			}
		}
	}
	return out
}

// Cycle is one elementary recurrence cycle: the edge indices forming it.
type Cycle struct {
	EdgeIdx []int
	// Nodes are the instruction IDs on the cycle, in traversal order.
	Nodes []int
	// DistSum is the total iteration distance around the cycle (>= 1).
	DistSum int

	// Cached decomposition of the cycle's latency sum: fixedSum is the
	// total latency of the non-LoadData edges (independent of any latency
	// policy) and loadNodes lists the producer of each LoadData edge on the
	// cycle, so LatencySum under a new policy is one latf call per load
	// instead of a walk over every edge. Filled by Graph.Cycles; sumsCached
	// distinguishes a real zero from an uncached literal (tests build Cycle
	// values directly).
	fixedSum   int
	loadNodes  []int
	sumsCached bool
}

// cacheSums precomputes the policy-independent part of the latency sum.
func (c *Cycle) cacheSums(g *Graph) {
	c.fixedSum, c.loadNodes = 0, nil
	for _, ei := range c.EdgeIdx {
		e := &g.Edges[ei]
		if e.LoadData {
			c.loadNodes = append(c.loadNodes, e.From)
		} else {
			c.fixedSum += e.FixedLatency
		}
	}
	c.sumsCached = true
}

// LatencySum returns the total latency around the cycle under latf. For
// cycles produced by Graph.Cycles this is O(loads on the cycle): the fixed
// part is precomputed and only the policy-dependent load latencies are
// re-evaluated.
func (c *Cycle) LatencySum(g *Graph, latf LatencyFn) int {
	if c.sumsCached {
		sum := c.fixedSum
		for _, n := range c.loadNodes {
			sum += latf(g.Loop.Body[n])
		}
		return sum
	}
	sum := 0
	for _, ei := range c.EdgeIdx {
		sum += g.Latency(&g.Edges[ei], latf)
	}
	return sum
}

// MinII returns the II lower bound this cycle imposes under latf:
// ceil(latency sum / distance sum).
func (c *Cycle) MinII(g *Graph, latf LatencyFn) int {
	return ceilDiv(c.LatencySum(g, latf), c.DistSum)
}

// Loads returns the load instructions on the cycle.
func (c *Cycle) Loads(g *Graph) []*ir.Instr {
	var out []*ir.Instr
	for _, n := range c.Nodes {
		if in := g.Loop.Body[n]; in.Op.IsLoad() {
			out = append(out, in)
		}
	}
	return out
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// MaxCycles caps recurrence-cycle enumeration; loop bodies are small, so
// hitting the cap indicates a pathological input. Callers can detect
// truncation by comparing len(result) against it.
const MaxCycles = 20000

// Cycles enumerates the elementary cycles of the graph (Johnson's
// algorithm restricted to strongly connected components), up to MaxCycles.
// Every returned cycle has DistSum >= 1: an elementary cycle with zero
// total distance would be an intra-iteration dependence cycle, which Build
// cannot produce from a well-formed loop.
//
// The enumeration runs once per graph; the returned slice is shared and
// must be treated as read-only by callers.
func (g *Graph) Cycles() []Cycle {
	g.cyclesOnce.Do(func() {
		g.cycles = g.enumCycles()
		g.cyclesTruncated = len(g.cycles) >= MaxCycles
		for i := range g.cycles {
			g.cycles[i].cacheSums(g)
		}
		g.cyclesDone.Store(true)
	})
	return g.cycles
}

func (g *Graph) enumCycles() []Cycle {
	n := len(g.Loop.Body)
	var result []Cycle

	blocked := make([]bool, n)
	blockMap := make([][]int, n)
	var stackNodes []int
	var stackEdges []int

	var adj [][]int // edge indices, filtered to current subgraph

	var unblock func(v int)
	unblock = func(v int) {
		blocked[v] = false
		for _, w := range blockMap[v] {
			if blocked[w] {
				unblock(w)
			}
		}
		blockMap[v] = blockMap[v][:0]
	}

	var circuit func(v, s int) bool
	circuit = func(v, s int) bool {
		found := false
		stackNodes = append(stackNodes, v)
		blocked[v] = true
		for _, ei := range adj[v] {
			w := g.Edges[ei].To
			if w < s {
				continue
			}
			if w == s {
				if len(result) < MaxCycles {
					c := Cycle{
						Nodes:   append([]int(nil), stackNodes...),
						EdgeIdx: append(append([]int(nil), stackEdges...), ei),
					}
					for _, e := range c.EdgeIdx {
						c.DistSum += g.Edges[e].Distance
					}
					result = append(result, c)
				}
				found = true
			} else if !blocked[w] {
				stackEdges = append(stackEdges, ei)
				if circuit(w, s) {
					found = true
				}
				stackEdges = stackEdges[:len(stackEdges)-1]
			}
		}
		if found {
			unblock(v)
		} else {
			for _, ei := range adj[v] {
				w := g.Edges[ei].To
				if w < s {
					continue
				}
				already := false
				for _, x := range blockMap[w] {
					if x == v {
						already = true
						break
					}
				}
				if !already {
					blockMap[w] = append(blockMap[w], v)
				}
			}
		}
		stackNodes = stackNodes[:len(stackNodes)-1]
		return found
	}

	adj = make([][]int, n)
	for i := range g.Edges {
		adj[g.Edges[i].From] = append(adj[g.Edges[i].From], i)
	}
	for s := 0; s < n && len(result) < MaxCycles; s++ {
		for i := range blocked {
			blocked[i] = false
			blockMap[i] = blockMap[i][:0]
		}
		circuit(s, s)
	}
	// Deterministic order: by first node, then length.
	sort.SliceStable(result, func(i, j int) bool {
		a, b := result[i], result[j]
		if a.Nodes[0] != b.Nodes[0] {
			return a.Nodes[0] < b.Nodes[0]
		}
		return len(a.Nodes) < len(b.Nodes)
	})
	return result
}

// RecMII computes the Recurrence MII under the given load-latency policy:
// the smallest II such that no dependence cycle has latency sum exceeding
// II times its distance sum. A loop with no recurrence cycles has RecMII 1.
//
// When the memoized cycle enumeration has already run (the latency-
// tolerant classification enumerates once per loop) and is complete, RecMII
// is the maximum of ceil(latency sum / distance sum) over the elementary
// cycles — an O(cycles) re-evaluation per latency policy over the cached
// sums (the maximum cycle ratio is attained on an elementary cycle, and
// ceil is monotone, so elementary cycles suffice). Otherwise it uses the
// exact binary search over II with positive-cycle detection (Bellman-Ford
// on edge weights lat - II*dist), which needs no enumeration — so the
// baseline compiler, which never classifies loads, never pays for an
// enumeration it would not otherwise run. Both paths compute the same
// value (pinned by test).
func (g *Graph) RecMII(latf LatencyFn) int {
	if !g.cyclesDone.Load() || g.cyclesTruncated {
		return g.recMIIBellmanFord(latf)
	}
	best := 1
	for i := range g.cycles {
		if v := g.cycles[i].MinII(g, latf); v > best {
			best = v
		}
	}
	return best
}

// recMIIBellmanFord is the enumeration-free exact fallback (and the oracle
// the tests cross-check the cycle-based fast path against).
func (g *Graph) recMIIBellmanFord(latf LatencyFn) int {
	lo, hi := 1, 1
	for i := range g.Edges {
		l := g.Latency(&g.Edges[i], latf)
		if l > hi {
			hi = l
		}
	}
	// Upper bound: sum of all latencies (a cycle cannot exceed it).
	sum := 0
	for i := range g.Edges {
		sum += g.Latency(&g.Edges[i], latf)
	}
	if sum > hi {
		hi = sum
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if g.hasPositiveCycle(mid, latf) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// hasPositiveCycle reports whether some cycle has sum(lat - II*dist) > 0,
// i.e. the candidate II is infeasible.
func (g *Graph) hasPositiveCycle(ii int, latf LatencyFn) bool {
	n := len(g.Loop.Body)
	dist := make([]float64, n) // longest path estimates; start at 0
	for iter := 0; iter < n; iter++ {
		changed := false
		for i := range g.Edges {
			e := &g.Edges[i]
			w := float64(g.Latency(e, latf) - ii*e.Distance)
			if dist[e.From]+w > dist[e.To] {
				dist[e.To] = dist[e.From] + w
				changed = true
			}
		}
		if !changed {
			return false
		}
	}
	// Still relaxing after n passes: positive cycle exists.
	for i := range g.Edges {
		e := &g.Edges[i]
		w := float64(g.Latency(e, latf) - ii*e.Distance)
		if dist[e.From]+w > dist[e.To] {
			return true
		}
	}
	return false
}

// Heights returns per-node scheduling priorities: the longest latency path
// from each node to any graph sink under latf, counting loop-carried edges
// at lat - II*dist. Higher means more urgent.
func (g *Graph) Heights(ii int, latf LatencyFn) []int {
	n := len(g.Loop.Body)
	h := make([]int, n)
	// Iterate to fixed point; bounded because positive cycles are excluded
	// for feasible II (callers pass II >= RecMII). Guard with a pass cap.
	for pass := 0; pass < n+2; pass++ {
		changed := false
		for i := n - 1; i >= 0; i-- {
			for _, ei := range g.Succ[i] {
				e := &g.Edges[ei]
				v := h[e.To] + g.Latency(e, latf) - ii*e.Distance
				if v > h[i] {
					h[i] = v
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return h
}

// Slack computes, for each node, how many cycles its completion can slip
// without lengthening the critical path at the given II. Nodes on critical
// recurrence cycles get zero slack. This mirrors the paper's notion of
// loads "with sufficient slack in the cyclic data dependence graph".
func (g *Graph) Slack(ii int, latf LatencyFn) []int {
	n := len(g.Loop.Body)
	// Earliest start via longest path from sources.
	early := make([]int, n)
	for pass := 0; pass < n+2; pass++ {
		changed := false
		for i := 0; i < n; i++ {
			for _, ei := range g.Pred[i] {
				e := &g.Edges[ei]
				v := early[e.From] + g.Latency(e, latf) - ii*e.Distance
				if v > early[i] {
					early[i] = v
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	heights := g.Heights(ii, latf)
	maxPath := 0
	for i := 0; i < n; i++ {
		if early[i]+heights[i] > maxPath {
			maxPath = early[i] + heights[i]
		}
	}
	slack := make([]int, n)
	for i := 0; i < n; i++ {
		s := maxPath - early[i] - heights[i]
		if s < 0 {
			s = 0
		}
		if s > math.MaxInt32 {
			s = math.MaxInt32
		}
		slack[i] = s
	}
	return slack
}
