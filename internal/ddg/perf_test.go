package ddg

import (
	"math/rand"
	"testing"

	"ltsp/internal/ir"
)

// benchGraph builds a moderately cyclic random loop graph once per
// benchmark.
func benchGraph(b *testing.B, size int) *Graph {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	l := randomLoop(rng, size)
	g, err := Build(l)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

var benchLat = func(in *ir.Instr) int {
	if in.Op.IsLoad() {
		return 13
	}
	return 1
}

// BenchmarkRecMIICycleCached measures the memoized-cycle fast path: the
// enumeration cost is paid before the timer, so each iteration is one
// per-policy re-evaluation over the cached sums (the II-search hot path).
func BenchmarkRecMIICycleCached(b *testing.B) {
	g := benchGraph(b, 14)
	g.Cycles()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.RecMII(benchLat) < 1 {
			b.Fatal("bad RecMII")
		}
	}
}

// BenchmarkRecMIIBellmanFord measures the enumeration-free fallback the
// fast path replaced on the hot path.
func BenchmarkRecMIIBellmanFord(b *testing.B) {
	g := benchGraph(b, 14)
	for i := 0; i < b.N; i++ {
		if g.recMIIBellmanFord(benchLat) < 1 {
			b.Fatal("bad RecMII")
		}
	}
}

// BenchmarkCyclesFirstEnumeration measures the one-time enumeration cost
// that the memo amortizes across every later policy query.
func BenchmarkCyclesFirstEnumeration(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	l := randomLoop(rng, 14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := Build(l)
		if err != nil {
			b.Fatal(err)
		}
		g.Cycles()
	}
}
