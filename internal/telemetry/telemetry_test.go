package telemetry

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// TestNilSafety: every Trace and Span method is a no-op on nil — the
// untraced request path. A panic here would take down real requests.
func TestNilSafety(t *testing.T) {
	var tr *Trace
	if tr.On() {
		t.Error("nil trace reports On")
	}
	if tr.ID() != "" {
		t.Error("nil trace has an ID")
	}
	s := tr.Start("stage", nil)
	if s != nil {
		t.Fatal("nil trace started a real span")
	}
	s2 := tr.StartRemote("stage", "abc.1")
	if s2 != nil {
		t.Fatal("nil trace started a real remote span")
	}
	s.SetAttr("k", "v")
	s.End()
	s.End()
	if s.ID() != "" {
		t.Error("nil span has an ID")
	}
	tr.Finish("GET /x", 200)
	if tr.Dropped() != 0 {
		t.Error("nil trace dropped spans")
	}
	if got := tr.Snapshot(); got != nil {
		t.Errorf("nil trace snapshot = %v, want nil", got)
	}
	if sum := tr.SummaryOf(); sum != (Summary{}) {
		t.Errorf("nil trace summary = %+v, want zero", sum)
	}
	if tl := tr.Timeline(); tl.Len() != 0 {
		t.Error("nil trace produced timeline events")
	}
}

// TestContextRoundTrip: WithSpan/FromContext carry the pair; a nil trace
// leaves the context untouched (the zero-cost untraced path).
func TestContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if got := WithSpan(ctx, nil, nil); got != ctx {
		t.Error("WithSpan(nil trace) wrapped the context")
	}
	if tr, sp := FromContext(ctx); tr != nil || sp != nil {
		t.Error("empty context yielded a trace")
	}

	tr := New("deadbeef00000000")
	root := tr.Start("root", nil)
	ctx = WithSpan(ctx, tr, root)
	gotTr, gotSp := FromContext(ctx)
	if gotTr != tr || gotSp != root {
		t.Error("context did not round-trip the (trace, span) pair")
	}
}

// TestSpanRecording: spans snapshot with IDs, parents, attrs and
// durations, sorted by start time.
func TestSpanRecording(t *testing.T) {
	tr := New("")
	if tr.ID() == "" || len(tr.ID()) != 16 {
		t.Fatalf("minted trace ID %q, want 16 hex chars", tr.ID())
	}
	root := tr.Start("root", nil)
	if root.ID() == "" {
		t.Fatal("span has no ID")
	}
	child := tr.Start("child", root)
	child.SetAttr("outcome", "hit")
	child.SetAttr("peer", "node-a")
	child.End()
	child.End() // idempotent: keeps the first duration
	root.End()

	spans := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("snapshot has %d spans, want 2", len(spans))
	}
	if spans[0].Name != "root" || spans[1].Name != "child" {
		t.Errorf("snapshot order %q, %q — want root then child", spans[0].Name, spans[1].Name)
	}
	if spans[1].Parent != root.ID() {
		t.Errorf("child parent = %q, want root ID %q", spans[1].Parent, root.ID())
	}
	if spans[0].Parent != "" {
		t.Errorf("root parent = %q, want empty", spans[0].Parent)
	}
	if spans[1].Attrs["outcome"] != "hit" || spans[1].Attrs["peer"] != "node-a" {
		t.Errorf("child attrs = %v", spans[1].Attrs)
	}
	for _, s := range spans {
		if s.DurNs <= 0 {
			t.Errorf("span %s has non-positive duration %d after End", s.Name, s.DurNs)
		}
	}
}

// TestStartRemote: a server hop nests under a span ID minted by another
// process.
func TestStartRemote(t *testing.T) {
	tr := New("cafe0000cafe0000")
	s := tr.StartRemote("server GET /v2/compile", "abc.42")
	s.End()
	spans := tr.Snapshot()
	if len(spans) != 1 {
		t.Fatalf("got %d spans", len(spans))
	}
	if spans[0].Parent != "abc.42" {
		t.Errorf("remote parent = %q, want abc.42", spans[0].Parent)
	}
	// Empty parent ID means a true root.
	tr2 := New("")
	r := tr2.StartRemote("server GET /", "")
	r.End()
	if got := tr2.Snapshot()[0].Parent; got != "" {
		t.Errorf("empty remote parent became %q", got)
	}
}

// TestSpanBudget: a trace stops storing past maxSpans and counts drops,
// and Start returns nil (which all Span methods tolerate).
func TestSpanBudget(t *testing.T) {
	tr := New("")
	for i := 0; i < maxSpans; i++ {
		if s := tr.Start("s", nil); s == nil {
			t.Fatalf("span %d refused under budget", i)
		}
	}
	over := tr.Start("overflow", nil)
	if over != nil {
		t.Fatal("span beyond budget was stored")
	}
	over.SetAttr("k", "v")
	over.End()
	if tr.Dropped() != 1 {
		t.Errorf("dropped = %d, want 1", tr.Dropped())
	}
	if n := len(tr.Snapshot()); n != maxSpans {
		t.Errorf("snapshot has %d spans, want %d", n, maxSpans)
	}
}

// TestFinishSummary: Finish stamps name/status/duration for listings.
func TestFinishSummary(t *testing.T) {
	tr := New("")
	tr.Start("stage", nil).End()
	tr.Finish("POST /v2/compile", 503)
	sum := tr.SummaryOf()
	if sum.Name != "POST /v2/compile" || sum.Status != 503 {
		t.Errorf("summary = %+v", sum)
	}
	if sum.Dur <= 0 {
		t.Error("summary has no duration")
	}
	if sum.Spans != 1 {
		t.Errorf("summary spans = %d, want 1", sum.Spans)
	}
	if sum.TraceID != tr.ID() {
		t.Errorf("summary trace ID = %q, want %q", sum.TraceID, tr.ID())
	}
}

// TestTimeline: the Chrome trace-event export carries every span with
// microsecond timestamps relative to the earliest span.
func TestTimeline(t *testing.T) {
	tr := New("")
	a := tr.Start("first", nil)
	time.Sleep(2 * time.Millisecond)
	b := tr.Start("second", a)
	b.SetAttr("outcome", "hit")
	b.End()
	a.End()

	tl := tr.Timeline()
	evs := tl.Events()
	if len(evs) != 2 {
		t.Fatalf("timeline has %d events, want 2", len(evs))
	}
	if evs[0].Name != "first" || evs[0].TS != 0 {
		t.Errorf("first event = %+v, want ts 0", evs[0])
	}
	if evs[1].TS <= 0 {
		t.Errorf("second event ts = %d, want > 0 (relative microseconds)", evs[1].TS)
	}
	if evs[1].Args["outcome"] != "hit" {
		t.Errorf("second event args = %v", evs[1].Args)
	}
	if evs[1].Args["parent"] != a.ID() {
		t.Errorf("second event parent arg = %v, want %q", evs[1].Args["parent"], a.ID())
	}
	for _, e := range evs {
		if e.Ph != "X" {
			t.Errorf("event %s phase %q, want complete event X", e.Name, e.Ph)
		}
	}
}

// TestRegistryRecentRing: the recent ring cycles; old plain traces fall
// out, new ones are retrievable.
func TestRegistryRecentRing(t *testing.T) {
	r := NewRegistry(4, time.Hour) // slow threshold too high to pin anything
	ids := make([]string, 8)
	for i := range ids {
		tr := New(fmt.Sprintf("ring%012d", i))
		tr.Finish("GET /x", 200)
		r.Record(tr)
		ids[i] = tr.ID()
	}
	for i := 0; i < 4; i++ {
		if tr, _ := r.Get(ids[i]); tr != nil {
			t.Errorf("trace %d survived cycling out of a 4-slot ring", i)
		}
	}
	for i := 4; i < 8; i++ {
		tr, kind := r.Get(ids[i])
		if tr == nil {
			t.Errorf("trace %d missing from recent ring", i)
		}
		if kind != "" {
			t.Errorf("plain trace %d flagged %q", i, kind)
		}
	}
}

// TestRegistryOutliers: error and slow traces are pinned past the recent
// ring; List dedups and flags them.
func TestRegistryOutliers(t *testing.T) {
	r := NewRegistry(4, 1) // 1ns slow threshold: any finished trace is slow

	errTr := New("0000000000000err")
	errTr.Finish("POST /v2/compile", 500)
	r.Record(errTr)

	// Cycle the recent ring completely with fast plain traces. The slow
	// threshold is 1ns, so give these an explicitly unfinished duration 0
	// by not calling Finish — Dur stays 0, below the threshold... but
	// Record reads Dur via SummaryOf, and an unfinished trace has Dur 0,
	// which is < 1ns, so they stay plain.
	for i := 0; i < 8; i++ {
		r.Record(New(fmt.Sprintf("plain%011d", i)))
	}

	tr, kind := r.Get(errTr.ID())
	if tr == nil {
		t.Fatal("error trace cycled out despite outlier pinning")
	}
	if kind != "error" {
		t.Errorf("outlier kind = %q, want error", kind)
	}

	slowTr := New("000000000000slow")
	slowTr.Finish("GET /y", 200) // any positive duration >= 1ns counts as slow
	r.Record(slowTr)
	if _, kind := r.Get(slowTr.ID()); kind != "slow" {
		t.Errorf("slow trace kind = %q, want slow", kind)
	}

	// List: outliers first (newest first), then recent, no duplicates.
	sums := r.List()
	seen := make(map[string]int)
	for _, s := range sums {
		seen[s.TraceID]++
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("trace %s listed %d times", id, n)
		}
	}
	if len(sums) < 2 {
		t.Fatalf("list has %d entries", len(sums))
	}
	if sums[0].TraceID != slowTr.ID() || sums[0].Outlier != "slow" {
		t.Errorf("list head = %+v, want newest outlier (slow)", sums[0])
	}
}

// TestNilRegistry: a nil registry is inert (servers without tracing).
func TestNilRegistry(t *testing.T) {
	var r *Registry
	r.Record(New(""))
	if tr, _ := r.Get("x"); tr != nil {
		t.Error("nil registry returned a trace")
	}
	if r.List() != nil {
		t.Error("nil registry listed traces")
	}
}

// TestSampler: deterministic stride sampling at the three regimes.
func TestSampler(t *testing.T) {
	if NewSampler(0).Sample() || NewSampler(-1).Sample() {
		t.Error("rate <= 0 sampled a request")
	}
	always := NewSampler(1)
	for i := 0; i < 10; i++ {
		if !always.Sample() {
			t.Fatal("rate 1 skipped a request")
		}
	}
	var nilS *Sampler
	if nilS.Sample() {
		t.Error("nil sampler fired")
	}

	s := NewSampler(0.25) // stride 4: exactly 1 in 4 fires
	fired := 0
	for i := 0; i < 400; i++ {
		if s.Sample() {
			fired++
		}
	}
	if fired != 100 {
		t.Errorf("stride-4 sampler fired %d/400, want exactly 100", fired)
	}
}

// TestConcurrentSpans: hammer one trace from many goroutines under the
// race detector — late hedge legs mutate spans while Snapshot reads.
func TestConcurrentSpans(t *testing.T) {
	tr := New("")
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				s := tr.Start("leg", nil)
				s.SetAttr("g", fmt.Sprint(g))
				s.End()
			}
		}(g)
	}
	for i := 0; i < 4; i++ {
		tr.Snapshot()
		tr.SummaryOf()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if got := len(tr.Snapshot()); got != 400 {
		t.Errorf("snapshot has %d spans, want all 400", got)
	}
}
