// Package telemetry is the request-level span layer: where package obs
// explains what the compiler decided inside one compilation, telemetry
// times where a request's wall clock went across the serving stack —
// queue wait, cache tiers, hedged peer legs, compile, verify — and
// across processes, stitched by a propagated trace ID (wire.TraceHeader).
//
// Like obs.Trace, everything is nil-safe: a nil *Trace (an untraced
// request) records nothing, every method is a no-op, and the only cost
// on the untraced path is one context lookup. cmd/benchguard gates that
// cost below 1% of a compile.
package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ltsp/internal/obs"
	"ltsp/internal/wire"
)

// Span IDs are a per-process random prefix plus a sequence number:
// unique across the processes a trace crosses, cheap to mint, and
// greppable. (Same scheme as the server's request IDs.)
var (
	spanIDPrefix = func() string {
		var b [3]byte
		_, _ = rand.Read(b[:])
		return hex.EncodeToString(b[:])
	}()
	spanIDSeq atomic.Int64
)

func nextSpanID() string {
	return fmt.Sprintf("%s.%d", spanIDPrefix, spanIDSeq.Add(1))
}

// NewTraceID mints a fresh 16-hex-character trace ID.
func NewTraceID() string {
	var b [8]byte
	_, _ = rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// maxSpans bounds one trace so a pathological request (a huge batch,
// a retry storm) cannot grow without limit; further spans are counted
// as dropped.
const maxSpans = 512

// Trace collects the spans of one logical request. The zero value is
// not used; create with New. All methods are safe for concurrent use
// and safe on a nil receiver.
type Trace struct {
	id string

	mu      sync.Mutex
	spans   []*Span
	dropped int64

	// Completion metadata, set once by Finish.
	name    string
	status  int
	start   time.Time
	dur     time.Duration
	isError bool
}

// Span is one timed stage of a traced request. Mutations go through the
// owning trace's lock (a trace has at most a few dozen spans; contention
// is not a concern), so a late hedge leg can still end its span after
// the request finished and the trace is being read.
type Span struct {
	tr     *Trace
	id     string
	parent string
	name   string
	start  time.Time
	dur    time.Duration // 0 while open
	attrs  map[string]string
}

// New creates a trace under the given ID ("" mints a fresh one).
func New(id string) *Trace {
	if id == "" {
		id = NewTraceID()
	}
	return &Trace{id: id, start: time.Now()}
}

// On reports whether the trace is recording (non-nil).
func (t *Trace) On() bool { return t != nil }

// ID returns the trace ID ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Start opens a span named name under parent (nil parent = a root-level
// span). It returns nil — which every Span method tolerates — on a nil
// trace or when the trace's span budget is spent.
func (t *Trace) Start(name string, parent *Span) *Span {
	if t == nil {
		return nil
	}
	s := &Span{tr: t, id: nextSpanID(), name: name, start: time.Now()}
	if parent != nil {
		s.parent = parent.id
	}
	t.mu.Lock()
	if len(t.spans) >= maxSpans {
		t.dropped++
		t.mu.Unlock()
		return nil
	}
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// StartRemote opens a root-level span whose parent is a span ID minted
// in another process (wire.ParentSpanHeader), nesting this hop under
// the client attempt that caused it. Empty parentID means no parent.
func (t *Trace) StartRemote(name, parentID string) *Span {
	s := t.Start(name, nil)
	if s != nil && parentID != "" {
		t.mu.Lock()
		s.parent = parentID
		t.mu.Unlock()
	}
	return s
}

// Finish stamps the trace's completion metadata: the request name
// (method + path), its HTTP status, and the total duration since New.
func (t *Trace) Finish(name string, status int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.name = name
	t.status = status
	t.dur = time.Since(t.start)
	t.isError = status >= 500
	t.mu.Unlock()
}

// Dropped returns how many spans were discarded at the budget.
func (t *Trace) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// ID returns the span's ID ("" on nil), for cross-process parenting.
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// SetAttr attaches a key/value annotation (peer ID, hedge index,
// outcome). No-op on nil.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[k] = v
	s.tr.mu.Unlock()
}

// End closes the span. No-op on nil; a second End keeps the first
// duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if s.dur == 0 {
		s.dur = time.Since(s.start)
		if s.dur == 0 {
			s.dur = 1 // a closed span is distinguishable from an open one
		}
	}
	s.tr.mu.Unlock()
}

// Snapshot returns the trace's spans as wire records, sorted by start
// time. Safe to call while late spans are still being written.
func (t *Trace) Snapshot() []wire.SpanJSON {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]wire.SpanJSON, 0, len(t.spans))
	for _, s := range t.spans {
		sj := wire.SpanJSON{
			ID:     s.id,
			Parent: s.parent,
			Name:   s.name,
			Start:  s.start.UnixNano(),
			DurNs:  int64(s.dur),
		}
		if len(s.attrs) > 0 {
			sj.Attrs = make(map[string]string, len(s.attrs))
			for k, v := range s.attrs {
				sj.Attrs[k] = v
			}
		}
		out = append(out, sj)
	}
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Summary describes a finished trace for listings and export headers.
type Summary struct {
	TraceID string
	Name    string
	Status  int
	Start   time.Time
	Dur     time.Duration
	Spans   int
	Outlier string // "slow" | "error" | ""
}

// SummaryOf snapshots the completion metadata (Outlier is filled by the
// registry that retained the trace).
func (t *Trace) SummaryOf() Summary {
	if t == nil {
		return Summary{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return Summary{
		TraceID: t.id,
		Name:    t.name,
		Status:  t.status,
		Start:   t.start,
		Dur:     t.dur,
		Spans:   len(t.spans),
	}
}

// Timeline renders the trace's spans as Chrome trace-events on an
// obs.Timeline — the same catapult form the simulator's timeline export
// uses, loadable in chrome://tracing or Perfetto. ts/dur are
// microseconds relative to the earliest span.
func (t *Trace) Timeline() *obs.Timeline {
	spans := t.Snapshot()
	tl := obs.NewTimeline(maxSpans + 1)
	if len(spans) == 0 {
		return tl
	}
	base := spans[0].Start
	for _, s := range spans {
		args := map[string]any{"id": s.ID}
		if s.Parent != "" {
			args["parent"] = s.Parent
		}
		for k, v := range s.Attrs {
			args[k] = v
		}
		tl.Complete(s.Name, (s.Start-base)/1e3, s.DurNs/1e3, 1, 1, args)
	}
	return tl
}

// ctxKey carries a (trace, current span) pair through a context. One
// value for both keeps the untraced path to a single allocation-free
// lookup.
type ctxKey struct{}

type ctxVal struct {
	tr   *Trace
	span *Span
}

// WithSpan returns a context carrying tr with span as the current
// parent for spans started downstream. A nil tr returns ctx unchanged,
// so untraced requests never pay for a context wrapper.
func WithSpan(ctx context.Context, tr *Trace, span *Span) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, ctxVal{tr, span})
}

// FromContext extracts the trace and current span ((nil, nil) when the
// request is untraced — the zero-cost path).
func FromContext(ctx context.Context) (*Trace, *Span) {
	if v, ok := ctx.Value(ctxKey{}).(ctxVal); ok {
		return v.tr, v.span
	}
	return nil, nil
}
