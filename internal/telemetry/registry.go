package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// DefaultRegistryCapacity is the recent-requests ring size when the
// caller does not choose one.
const DefaultRegistryCapacity = 256

// DefaultSlowThreshold is the duration beyond which a finished request
// counts as a slow outlier and is retained past the recent ring.
const DefaultSlowThreshold = 100 * time.Millisecond

// Registry retains finished request traces for the z-pages endpoints: a
// bounded ring of recent requests, plus a second bounded ring of
// always-retained outliers (errors and slow requests) so the
// interesting traces survive long after ordinary traffic has cycled the
// recent ring. Memory is bounded by capacity + capacity/4 traces of at
// most maxSpans spans each.
type Registry struct {
	mu       sync.Mutex
	recent   []*Trace
	nextR    int
	outliers []*Trace
	nextO    int
	slow     time.Duration
	outlier  map[*Trace]string // retained outlier -> "slow" | "error"
}

// NewRegistry creates a registry holding capacity recent traces
// (<= 0 selects DefaultRegistryCapacity) plus capacity/4 outliers.
// slowThreshold <= 0 selects DefaultSlowThreshold.
func NewRegistry(capacity int, slowThreshold time.Duration) *Registry {
	if capacity <= 0 {
		capacity = DefaultRegistryCapacity
	}
	if slowThreshold <= 0 {
		slowThreshold = DefaultSlowThreshold
	}
	ocap := capacity / 4
	if ocap < 8 {
		ocap = 8
	}
	return &Registry{
		recent:   make([]*Trace, capacity),
		outliers: make([]*Trace, ocap),
		slow:     slowThreshold,
		outlier:  make(map[*Trace]string),
	}
}

// Record retains a finished trace. Errors (status >= 500) and slow
// requests (duration >= the slow threshold) are additionally pinned in
// the outlier ring.
func (r *Registry) Record(t *Trace) {
	if r == nil || t == nil {
		return
	}
	sum := t.SummaryOf()
	kind := ""
	switch {
	case sum.Status >= 500:
		kind = "error"
	case sum.Dur >= r.slow:
		kind = "slow"
	}
	r.mu.Lock()
	r.recent[r.nextR%len(r.recent)] = t
	r.nextR++
	if kind != "" {
		if old := r.outliers[r.nextO%len(r.outliers)]; old != nil {
			delete(r.outlier, old)
		}
		r.outliers[r.nextO%len(r.outliers)] = t
		r.nextO++
		r.outlier[t] = kind
	}
	r.mu.Unlock()
}

// Get returns the retained trace with the given ID and its outlier kind
// ("" for a plain recent trace), or nil when it has cycled out.
func (r *Registry) Get(id string) (*Trace, string) {
	if r == nil {
		return nil, ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	// The outlier ring is authoritative for pinned traces; the recent
	// ring covers everything else. Linear scans are fine — both rings are
	// small and this is a debug surface.
	for _, t := range r.outliers {
		if t != nil && t.ID() == id {
			return t, r.outlier[t]
		}
	}
	for _, t := range r.recent {
		if t != nil && t.ID() == id {
			return t, ""
		}
	}
	return nil, ""
}

// List returns summaries of every retained trace — outliers first, then
// recent requests newest-first — deduplicated (an outlier still in the
// recent ring appears once, flagged).
func (r *Registry) List() []Summary {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	seen := make(map[*Trace]bool, len(r.recent)+len(r.outliers))
	var traces []*Trace
	var kinds []string
	add := func(t *Trace, kind string) {
		if t == nil || seen[t] {
			return
		}
		seen[t] = true
		traces = append(traces, t)
		kinds = append(kinds, kind)
	}
	for i := 0; i < len(r.outliers); i++ {
		// Newest outlier first.
		t := r.outliers[(r.nextO-1-i+2*len(r.outliers))%len(r.outliers)]
		add(t, r.outlier[t])
	}
	for i := 0; i < len(r.recent); i++ {
		t := r.recent[(r.nextR-1-i+2*len(r.recent))%len(r.recent)]
		add(t, r.outlier[t])
	}
	r.mu.Unlock()

	out := make([]Summary, len(traces))
	for i, t := range traces {
		s := t.SummaryOf()
		s.Outlier = kinds[i]
		out[i] = s
	}
	return out
}

// Sampler makes the deterministic 1-in-N tracing decision for requests
// that did not ask to be traced (no trace header). Deterministic stride
// sampling — the same scheme the server's verify sampling uses — keeps
// tests and replays reproducible where random sampling would not be.
type Sampler struct {
	stride uint64
	tick   atomic.Uint64
}

// NewSampler returns a sampler firing on every ~1/rate-th request.
// rate <= 0 never fires; rate >= 1 always fires.
func NewSampler(rate float64) *Sampler {
	s := &Sampler{}
	switch {
	case rate <= 0:
		s.stride = 0
	case rate >= 1:
		s.stride = 1
	default:
		s.stride = uint64(1 / rate)
	}
	return s
}

// Sample reports whether this request should be traced.
func (s *Sampler) Sample() bool {
	if s == nil || s.stride == 0 {
		return false
	}
	if s.stride == 1 {
		return true
	}
	return s.tick.Add(1)%s.stride == 1
}
