package workload

import (
	"sync"
	"testing"

	"ltsp/internal/interp"
	"ltsp/internal/ir"
)

// seededGenerators returns every generator whose layout is randomized,
// with fixed parameters and seeds.
func seededGenerators() map[string]struct {
	gen     func() *ir.Loop
	initMem func(*interp.Memory)
} {
	out := make(map[string]struct {
		gen     func() *ir.Loop
		initMem func(*interp.Memory)
	})
	add := func(name string, gen func() *ir.Loop, initMem func(*interp.Memory)) {
		out[name] = struct {
			gen     func() *ir.Loop
			initMem func(*interp.Memory)
		}{gen, initMem}
	}
	g, m := PointerChase(512, 7)
	add("PointerChase", g, m)
	g, m = WhileChase(512, 100, 7)
	add("WhileChase", g, m)
	g, m = IndirectGather(256, 1024, false, 11)
	add("IndirectGather", g, m)
	g, m = IndirectGather(256, 1024, true, 11)
	add("IndirectGatherFP", g, m)
	g, m = PointerChaseBranchy(512, 7)
	add("PointerChaseBranchy", g, m)
	return out
}

// TestConcurrentGeneratorsReproducible runs every randomized generator
// from many goroutines at once (run under -race in CI) and checks that
// each invocation reproduces the identical loop and memory image: no
// generator may share PRNG state across invocations or touch the global
// math/rand source.
func TestConcurrentGeneratorsReproducible(t *testing.T) {
	for name, g := range seededGenerators() {
		t.Run(name, func(t *testing.T) {
			refLoop := g.gen().String()
			refMem := interp.NewMemory()
			g.initMem(refMem)
			refSnap := refMem.Snapshot()

			const workers = 16
			var wg sync.WaitGroup
			errs := make(chan string, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					if got := g.gen().String(); got != refLoop {
						errs <- "loop differs across invocations"
						return
					}
					m := interp.NewMemory()
					g.initMem(m)
					snap := m.Snapshot()
					if len(snap) != len(refSnap) {
						errs <- "memory page count differs across invocations"
						return
					}
					for addr, page := range snap {
						if page != refSnap[addr] {
							errs <- "memory image differs across invocations"
							return
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			for e := range errs {
				t.Fatal(e)
			}
		})
	}
}
