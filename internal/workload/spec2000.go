package workload

import "ltsp/internal/profile"

// cpu2000 builds the 26 CPU2000 benchmark models. Designed behaviours:
//
//   - 177.mesa: the training/reference divergence the paper dissects — the
//     gl_write_texture_span loop averages 154 iterations on the training
//     input but only 8 on the reference input, so PGO-guided boosting of
//     its cache-hot loads always regresses in the measured runs, at every
//     trip-count threshold. Its loads are plain unit-stride prefetchable
//     references, so HLO-directed hints leave it alone (the loss
//     disappears in Fig. 8).
//   - 179.art: cache-thrashing FP scans (+12% headroom).
//   - 200.sixtrack: symbolic-stride FP (+8..11%).
//   - 181.mcf / 188.ammp / 300.twolf: pointer-heavy, moderate gains.
func cpu2000() []*Benchmark {
	var out []*Benchmark
	add := func(name string, loops ...LoopSpec) {
		out = append(out, &Benchmark{Name: name, Suite: SuiteCPU2000, Loops: loops})
	}

	{
		g, im := IntCopyAdd(1 << 10)
		add("164.gzip", mkLoop("window", 0.085, g, im,
			uni(20, 800), uni(20, 800), profile.StaticFacts{}))
	}
	{
		g, im := FPDaxpy(1 << 15)
		add("168.wupwise", mkCold("zgemm", 0.11, g, im,
			uni(500, 60), uni(500, 60), profile.StaticFacts{}))
	}
	{
		g, im := FPDaxpy(1 << 18)
		add("171.swim", mkCold("calc", 0.21, g, im,
			uni(1300, 40), uni(1300, 40), profile.StaticFacts{}))
	}
	{
		g, im := FPDaxpy(1 << 17)
		add("172.mgrid", mkCold("resid", 0.18, g, im,
			uni(1000, 40), uni(1000, 40), profile.StaticFacts{}))
	}
	{
		g, im := FPDaxpy(1 << 16)
		add("173.applu", mkCold("rhs", 0.15, g, im,
			uni(800, 40), uni(800, 40), profile.StaticFacts{}))
	}
	{
		g, im := IndirectGather(1<<12, 1<<14, false, 67)
		add("175.vpr", mkLoop("netcost", 0.14, g, im,
			uni(80, 300), uni(80, 300), profile.StaticFacts{}))
	}
	{
		g, im := IntCopyAdd(1 << 7)
		add("176.gcc", mkLoop("rtlscan", 0.05, g, im,
			uni(5, 4000), uni(5, 4000), profile.StaticFacts{}))
	}
	{
		g, im := IntCopyAdd(1 << 11)
		add("177.mesa", mkLoop("gl_write_texture_span", 0.20, g, im,
			uni(154, 300), uni(8, 5800), profile.StaticFacts{}))
	}
	{
		g, im := FPDaxpy(1 << 15)
		add("178.galgel", mkCold("sysnsn", 0.09, g, im,
			uni(400, 60), uni(400, 60), profile.StaticFacts{}))
	}
	{
		g1, im1 := SymbolicStrideFP(1<<15, 256)
		g2, im2 := FPReduction(1 << 17)
		add("179.art",
			mkCold("match", 0.15, g1, im1,
				uni(600, 60), uni(600, 60), profile.StaticFacts{}),
			mkCold("train", 0.10, g2, im2,
				uni(1000, 50), uni(1000, 50), profile.StaticFacts{}))
	}
	{
		g1, im1 := IndirectGather(1<<13, 1<<18, false, 13)
		g2, im2 := PointerChase(1<<16, 13)
		add("181.mcf",
			mkCold("arcscan", 0.08, g1, im1,
				uni(400, 60), uni(400, 60), profile.StaticFacts{}),
			mkCold("refresh_potential", 0.05, g2, im2,
				profile.Distribution{{Trip: 2, Count: 1200}, {Trip: 3, Count: 500}},
				profile.Distribution{{Trip: 2, Count: 1200}, {Trip: 3, Count: 500}},
				profile.StaticFacts{}))
	}
	{
		g, im := IndirectGather(1<<12, 1<<17, true, 71)
		add("183.equake", mkCold("smvp", 0.08, g, im,
			uni(40, 400), uni(40, 400), profile.StaticFacts{}))
	}
	add("186.crafty")
	{
		g, im := FPDaxpy(1 << 15)
		add("187.facerec", mkCold("gabor", 0.12, g, im,
			uni(48, 300), uni(48, 300), profile.StaticFacts{}))
	}
	{
		g, im := PointerChase(1<<15, 17)
		add("188.ammp", mkCold("mmfv", 0.08, g, im,
			uni(12, 1000), uni(12, 1000), profile.StaticFacts{}))
	}
	{
		g, im := FPDaxpy(1 << 16)
		add("189.lucas", mkCold("fftsq", 0.11, g, im,
			uni(700, 50), uni(700, 50), profile.StaticFacts{}))
	}
	{
		g, im := FPDaxpy(1 << 15)
		add("191.fma3d", mkCold("forceint", 0.09, g, im,
			uni(350, 60), uni(350, 60), profile.StaticFacts{}))
	}
	{
		g, im := IntCopyAdd(1 << 8)
		add("197.parser", mkLoop("dictwalk", 0.055, g, im,
			uni(4, 5000), uni(4, 5000), profile.StaticFacts{}))
	}
	{
		g, im := SymbolicStrideFP(1<<15, 384)
		add("200.sixtrack", mkCold("track", 0.15, g, im,
			uni(512, 60), uni(512, 60), profile.StaticFacts{}))
	}
	add("252.eon")
	{
		g, im := LowTripSAD(1 << 9)
		add("253.perlbmk", mkLoop("hashscan", 0.06, g, im,
			uni(8, 2000), uni(8, 2000), profile.StaticFacts{}))
	}
	{
		g, im := IndirectGather(1<<11, 1<<13, false, 73)
		add("254.gap", mkLoop("bagscan", 0.10, g, im,
			uni(60, 400), uni(60, 400), profile.StaticFacts{}))
	}
	{
		g, im := IntCopyAdd(1 << 9)
		add("255.vortex", mkLoop("objcopy", 0.07, g, im,
			uni(6, 3000), uni(6, 3000), profile.StaticFacts{}))
	}
	{
		g, im := IndirectGather(1<<12, 1<<15, false, 79)
		add("256.bzip2", mkLoop("blocksort", 0.15, g, im,
			uni(200, 100), uni(200, 100), profile.StaticFacts{}))
	}
	{
		g, im := PointerChase(1<<14, 19)
		add("300.twolf", mkCold("netscan", 0.045, g, im,
			uni(10, 1000), uni(10, 1000), profile.StaticFacts{}))
	}
	{
		g, im := FPDaxpy(1 << 15)
		add("301.apsi", mkCold("dctdxf", 0.09, g, im,
			uni(400, 60), uni(400, 60), profile.StaticFacts{}))
	}
	return out
}
