package workload

import (
	"math/rand"
	"testing"

	"ltsp/internal/core"
	"ltsp/internal/hlo"
	"ltsp/internal/interp"
	"ltsp/internal/machine"
)

func TestBranchyChaseMatchesReference(t *testing.T) {
	// Execute the if-converted loop and compare node potentials against a
	// direct Go re-implementation of the C source.
	const nodes, seed, trip = 128, 9, 60
	gen, initMem := PointerChaseBranchy(nodes, seed)
	l := gen()
	if err := l.Verify(); err != nil {
		t.Fatal(err)
	}
	seq, err := core.GenSequential(machine.Itanium2(), l)
	if err != nil {
		t.Fatal(err)
	}
	mem := interp.NewMemory()
	initMem(mem)
	st, err := interp.Run(seq, trip, mem)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: walk the same chain in Go.
	ref := interp.NewMemory()
	initMem(ref)
	node := int64(arenaB)
	for i := 0; i < trip; i++ {
		arc := ref.Load(node+bOffArc, 8)
		pred := ref.Load(node+bOffPred, 8)
		cost := ref.Load(arc, 8)
		pot := ref.Load(pred+bOffPot, 8)
		var v int64
		if ref.Load(node+bOffOr, 4) == 1 {
			v = cost + pot
		} else {
			v = pot - cost
		}
		ref.Store(node+bOffPot, 8, v)
		node = ref.Load(node, 8)
	}
	walked := int64(arenaB)
	for i := 0; i < trip; i++ {
		want := ref.Load(walked+bOffPot, 8)
		got := st.Mem.Load(walked+bOffPot, 8)
		if got != want {
			t.Fatalf("node %d potential = %d, want %d", i, got, want)
		}
		walked = ref.Load(walked, 8)
	}
}

func TestBranchyChasePipelinedEquivalence(t *testing.T) {
	const nodes, seed = 256, 11
	gen, initMem := PointerChaseBranchy(nodes, seed)
	m := machine.Itanium2()
	for _, trip := range []int64{1, 2, 3, 17, 80} {
		for _, mode := range []hlo.HintMode{hlo.ModeNone, hlo.ModeHLO} {
			seqLoop := gen()
			if _, err := hlo.Apply(seqLoop, hlo.Options{Mode: mode, Prefetch: true, TripEstimate: 2.3}); err != nil {
				t.Fatal(err)
			}
			seq, err := core.GenSequential(m, seqLoop)
			if err != nil {
				t.Fatal(err)
			}
			pipeLoop := gen()
			if _, err := hlo.Apply(pipeLoop, hlo.Options{Mode: mode, Prefetch: true, TripEstimate: 2.3}); err != nil {
				t.Fatal(err)
			}
			c, err := core.Pipeline(pipeLoop, core.Options{LatencyTolerant: true, BoostDelinquent: true})
			if err != nil {
				t.Fatalf("trip=%d mode=%v: %v", trip, mode, err)
			}
			memA, memB := interp.NewMemory(), interp.NewMemory()
			initMem(memA)
			initMem(memB)
			stA, err := interp.Run(seq, trip, memA)
			if err != nil {
				t.Fatal(err)
			}
			stB, err := interp.Run(c.Program, trip, memB)
			if err != nil {
				t.Fatal(err)
			}
			sa, sb := stA.Mem.Snapshot(), stB.Mem.Snapshot()
			if len(sa) != len(sb) {
				t.Fatalf("trip=%d mode=%v: page counts differ", trip, mode)
			}
			for pn, pa := range sa {
				if pb := sb[pn]; pa != pb {
					t.Fatalf("trip=%d mode=%v: page %#x differs (II=%d SC=%d)",
						trip, mode, pn, c.FinalII, c.Stages)
				}
			}
		}
	}
}

func TestBranchyChaseBoostingStillHelps(t *testing.T) {
	// The predicated diamond must not defeat the optimization: HLO hints
	// still speed the loop up on cold caches.
	gen, initMem := PointerChaseBranchy(1<<14, 13)
	m := machine.Itanium2()
	measure := func(mode hlo.HintMode, tolerant bool) int64 {
		l := gen()
		if _, err := hlo.Apply(l, hlo.Options{Mode: mode, Prefetch: true, TripEstimate: 2.3}); err != nil {
			t.Fatal(err)
		}
		c, err := core.Pipeline(l, core.Options{Model: m, LatencyTolerant: tolerant, BoostDelinquent: tolerant})
		if err != nil {
			t.Fatal(err)
		}
		runner := newTestRunner()
		mem := interp.NewMemory()
		initMem(mem)
		var total int64
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 8; i++ {
			runner.DropCaches()
			r, err := runner.Run(c.Program, 2+rng.Int63n(2), mem)
			if err != nil {
				t.Fatal(err)
			}
			total += r.Cycles
		}
		return total
	}
	base := measure(hlo.ModeNone, false)
	boosted := measure(hlo.ModeHLO, true)
	if boosted >= base {
		t.Errorf("boosting did not help the branchy chase: %d vs %d cycles", boosted, base)
	}
}
