package workload

import (
	"math/rand"

	"ltsp/internal/interp"
	"ltsp/internal/ir"
)

// Arena base addresses. Each loop owns its memory image, so overlap across
// loops is impossible; distinct bases just keep dumps readable.
const (
	arenaA = 0x0100_0000
	arenaB = 0x0200_0000
	arenaC = 0x0300_0000
	arenaD = 0x0400_0000
	arenaE = 0x0500_0000
)

// newRNG builds the private PRNG of one generator invocation. Generators
// never touch the global math/rand source: every randomized layout derives
// from an explicit seed through a fresh *rand.Rand constructed inside the
// call, so concurrent Gen/InitMem invocations (the ltspd service compiles
// workload loops from many goroutines) are race-free and a given seed
// always reproduces the same loop and memory image.
func newRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// IntCopyAdd is the paper's running example (Fig. 1): dst[i] = src[i] + K.
// Unit-stride integer load and store; with elems small enough the data is
// L1/L2-resident and latency hints only add pipeline stages (the
// h264ref-style regression); with elems large it streams.
func IntCopyAdd(elems int64) (func() *ir.Loop, func(*interp.Memory)) {
	gen := func() *ir.Loop {
		l := ir.NewLoop("copyadd")
		v, bs, bd, r, k := l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR()
		ld := ir.Ld(v, bs, 4, 4)
		ld.Mem.Stride, ld.Mem.StrideBytes = ir.StrideUnit, 4
		l.Append(ld)
		l.Append(ir.Add(r, v, k))
		st := ir.St(bd, r, 4, 4)
		st.Mem.Stride, st.Mem.StrideBytes = ir.StrideUnit, 4
		l.Append(st)
		l.Init(bs, arenaA)
		l.Init(bd, arenaB)
		l.Init(k, 12345)
		l.LiveOut = []ir.Reg{bs, bd}
		return l
	}
	initMem := func(m *interp.Memory) {
		for i := int64(0); i < elems; i++ {
			m.Store(arenaA+4*i, 4, 7*i+1)
		}
	}
	return gen, initMem
}

// FPDaxpy models dense FP streaming (z[i] = a*x[i] + y[i]): the
// well-prefetchable numeric kernels of benchmarks like 410.bwaves or
// 470.lbm. With FP-L2 default hints the loads are scheduled at nearly
// twice the base latency, covering L2/L3 hits.
func FPDaxpy(elems int64) (func() *ir.Loop, func(*interp.Memory)) {
	gen := func() *ir.Loop {
		l := ir.NewLoop("daxpy")
		x, y, t, a := l.NewFR(), l.NewFR(), l.NewFR(), l.NewFR()
		bx, by, bz := l.NewGR(), l.NewGR(), l.NewGR()
		ldx := ir.LdF(x, bx, 8)
		ldx.Mem.Stride, ldx.Mem.StrideBytes = ir.StrideUnit, 8
		l.Append(ldx)
		ldy := ir.LdF(y, by, 8)
		ldy.Mem.Stride, ldy.Mem.StrideBytes = ir.StrideUnit, 8
		l.Append(ldy)
		l.Append(ir.FMA(t, x, a, y))
		st := ir.StF(bz, t, 8)
		st.Mem.Stride, st.Mem.StrideBytes = ir.StrideUnit, 8
		l.Append(st)
		l.Init(bx, arenaA)
		l.Init(by, arenaB)
		l.Init(bz, arenaC)
		l.InitF(a, 1.5)
		l.LiveOut = []ir.Reg{bx, by, bz}
		return l
	}
	initMem := func(m *interp.Memory) {
		for i := int64(0); i < elems; i++ {
			m.StoreF(arenaA+8*i, float64(i)*0.5)
			m.StoreF(arenaB+8*i, float64(i)*0.25)
		}
	}
	return gen, initMem
}

// FPReduction models a dependence-bound FP sum (acc += x[i]): the fadd
// recurrence fixes the II at the FP latency, and the load — off the
// recurrence — is a classic non-critical boost candidate.
func FPReduction(elems int64) (func() *ir.Loop, func(*interp.Memory)) {
	gen := func() *ir.Loop {
		l := ir.NewLoop("fpsum")
		x, acc := l.NewFR(), l.NewFR()
		bx := l.NewGR()
		ld := ir.LdF(x, bx, 8)
		ld.Mem.Stride, ld.Mem.StrideBytes = ir.StrideUnit, 8
		l.Append(ld)
		l.Append(ir.FAdd(acc, acc, x))
		l.Init(bx, arenaA)
		l.InitF(acc, 0)
		l.LiveOut = []ir.Reg{acc, bx}
		return l
	}
	initMem := func(m *interp.Memory) {
		for i := int64(0); i < elems; i++ {
			m.StoreF(arenaA+8*i, float64(i%97)*0.125)
		}
	}
	return gen, initMem
}

// Node layout of the PointerChase arena (paper Sec. 4.4, the
// refresh_potential() loop of 429.mcf):
//
//	node+0  : child pointer (the pointer-chasing recurrence)
//	node+8  : basic_arc pointer (scattered)
//	node+16 : pred pointer (into a separate, read-only parent region)
//	node+24 : potential (written by the loop)
//
// The delinquent indirect loads (node->basic_arc->cost,
// node->pred->potential) cannot be prefetched — they depend on the chase —
// and are marked by HLO heuristic (1).
const (
	nodeSize  = 32
	offChild  = 0
	offArc    = 8
	offPred   = 16
	offPot    = 24
	arcStride = 64
	parStride = 64
)

// PointerChase models the 429.mcf refresh_potential loop. nodes is the
// arena population (the chain wraps within it); scattered node placement
// defeats spatial locality so the chase and the payload dereferences miss.
func PointerChase(nodes int64, seed int64) (func() *ir.Loop, func(*interp.Memory)) {
	gen := func() *ir.Loop {
		l := ir.NewLoop("refresh_potential")
		pnext, pcur := l.NewGR(), l.NewGR()
		t1, ba, cost := l.NewGR(), l.NewGR(), l.NewGR()
		t2, pd, t3, pot := l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR()
		v, t4 := l.NewGR(), l.NewGR()

		l.Append(ir.Mov(pcur, pnext)) // carried: this iteration's node
		chase := ir.Ld(pnext, pcur, 8, 0)
		chase.Mem.Stride = ir.StridePointerChase
		chase.Comment = "node = node->child"
		l.Append(chase)
		l.Append(ir.AddI(t1, pcur, offArc))
		ldArc := ir.Ld(ba, t1, 8, 0)
		ldArc.Mem.Stride = ir.StridePointerChase
		ldArc.Comment = "node->basic_arc"
		l.Append(ldArc)
		ldCost := ir.Ld(cost, ba, 8, 0)
		ldCost.Mem.Stride = ir.StridePointerChase
		ldCost.Comment = "basic_arc->cost"
		l.Append(ldCost)
		l.Append(ir.AddI(t2, pcur, offPred))
		ldPred := ir.Ld(pd, t2, 8, 0)
		ldPred.Mem.Stride = ir.StridePointerChase
		ldPred.Comment = "node->pred"
		l.Append(ldPred)
		l.Append(ir.AddI(t3, pd, offPot))
		ldPot := ir.Ld(pot, t3, 8, 0)
		ldPot.Mem.Stride = ir.StridePointerChase
		ldPot.Comment = "pred->potential"
		l.Append(ldPot)
		l.Append(ir.Add(v, cost, pot))
		l.Append(ir.AddI(t4, pcur, offPot))
		st := ir.St(t4, v, 8, 0)
		st.Comment = "node->potential ="
		l.Append(st)

		l.Init(pnext, chainHead(nodes, seed))
		// The observable result is the chain of node->potential stores; the
		// final chase pointer lives in a rotating register and is not a
		// live-out.
		return l
	}
	initMem := func(m *interp.Memory) { initChase(m, nodes, newRNG(seed+1)) }
	return gen, initMem
}

func chainHead(nodes, seed int64) int64 { return arenaB }

// initChase lays the node chain out in traversal order — like mcf's
// sequentially allocated node array, so the chase itself streams well —
// while basic_arc and pred targets scatter over large regions and miss.
// This is what lets successive iterations' delinquent loads overlap once
// the pipeliner clusters them (the chase would otherwise serialize the
// loop). The caller passes the invocation's private PRNG.
func initChase(m *interp.Memory, nodes int64, rng *rand.Rand) {
	for i := int64(0); i < nodes; i++ {
		addr := arenaB + i*nodeSize
		next := arenaB + ((i+1)%nodes)*nodeSize
		arc := arenaC + rng.Int63n(nodes)*arcStride
		par := arenaD + rng.Int63n(nodes)*parStride
		m.Store(addr+offChild, 8, next)
		m.Store(addr+offArc, 8, arc)
		m.Store(addr+offPred, 8, par)
	}
	for i := int64(0); i < nodes; i++ {
		m.Store(arenaC+i*arcStride, 8, 100+i%37)    // arc costs
		m.Store(arenaD+i*parStride+offPot, 8, i%53) // parent potentials
	}
}

// WhileChase is the fully faithful refresh_potential: a *data-terminated*
// while loop (`while (node) { ...; node = node->child; }`) pipelined with
// br.wtop. The loop's validity predicate pv is a rotating loop-carried
// predicate computed by the trailing compare (pv' = pv && node != NULL,
// via cmp.unc); every instruction is qualified by pv, so iterations past
// the NULL terminator shut off, and the kernel branches on the validity
// of the oldest in-flight iteration. chainLen is the list length (>= 1).
func WhileChase(nodes, chainLen, seed int64) (func() *ir.Loop, func(*interp.Memory)) {
	gen := func() *ir.Loop {
		l := ir.NewLoop("refresh_potential_while")
		pv := l.NewPR()
		pnext, pcur := l.NewGR(), l.NewGR()
		t1, ba, cost := l.NewGR(), l.NewGR(), l.NewGR()
		t2, pd, t3, pot := l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR()
		v, t4 := l.NewGR(), l.NewGR()

		q := func(in *ir.Instr) *ir.Instr { return ir.Predicated(pv, in) }
		l.Append(q(ir.Mov(pcur, pnext)))
		chase := ir.Ld(pnext, pcur, 8, 0)
		chase.Mem.Stride = ir.StridePointerChase
		chase.Comment = "node = node->child"
		l.Append(q(chase))
		l.Append(q(ir.AddI(t1, pcur, offArc)))
		ldArc := ir.Ld(ba, t1, 8, 0)
		ldArc.Mem.Stride = ir.StridePointerChase
		ldArc.Comment = "node->basic_arc"
		l.Append(q(ldArc))
		ldCost := ir.Ld(cost, ba, 8, 0)
		ldCost.Mem.Stride = ir.StridePointerChase
		ldCost.Comment = "basic_arc->cost"
		l.Append(q(ldCost))
		l.Append(q(ir.AddI(t2, pcur, offPred)))
		ldPred := ir.Ld(pd, t2, 8, 0)
		ldPred.Mem.Stride = ir.StridePointerChase
		ldPred.Comment = "node->pred"
		l.Append(q(ldPred))
		l.Append(q(ir.AddI(t3, pd, offPot)))
		ldPot := ir.Ld(pot, t3, 8, 0)
		ldPot.Mem.Stride = ir.StridePointerChase
		ldPot.Comment = "pred->potential"
		l.Append(q(ldPot))
		l.Append(q(ir.Add(v, cost, pot)))
		l.Append(q(ir.AddI(t4, pcur, offPot)))
		st := ir.St(t4, v, 8, 0)
		st.Comment = "node->potential ="
		l.Append(q(st))
		// pv' = pv && (node->child != NULL): the trailing cmp.unc chain.
		l.Append(q(ir.CmpEqI(ir.None, pv, pnext, 0)))

		l.While = &ir.WhileInfo{Cond: pv}
		l.Init(pv, 1)
		l.Init(pnext, arenaB)
		return l
	}
	initMem := func(m *interp.Memory) {
		initChase(m, nodes, newRNG(seed+1))
		// NULL-terminate the chain after chainLen nodes.
		m.Store(arenaB+(chainLen-1)*nodeSize+offChild, 8, 0)
	}
	return gen, initMem
}

// IndirectGather models a[b[i]] traversals (445.gobmk board lookups,
// 444.namd pair lists when fp is true): a unit-stride index stream and an
// indirect gather that HLO prefetches only at reduced distance (heuristic
// 2b) and therefore marks for longer-latency scheduling.
func IndirectGather(idxElems, tableElems int64, fp bool, seed int64) (func() *ir.Loop, func(*interp.Memory)) {
	gen := func() *ir.Loop {
		l := ir.NewLoop("gather")
		bi, ta, abase := l.NewGR(), l.NewGR(), l.NewGR()
		idx := l.NewGR()
		ldi := ir.Ld(idx, bi, 4, 4)
		ldi.Mem.Stride, ldi.Mem.StrideBytes = ir.StrideUnit, 4
		l.Append(ldi)
		l.Append(ir.Shladd(ta, idx, 3, abase))
		if fp {
			v, acc := l.NewFR(), l.NewFR()
			ldv := ir.LdF(v, ta, 0)
			markIndirect(ldv, abase)
			l.Append(ldv)
			l.Append(ir.FAdd(acc, acc, v))
			l.InitF(acc, 0)
			l.LiveOut = []ir.Reg{acc, bi}
		} else {
			v, acc := l.NewGR(), l.NewGR()
			ldv := ir.Ld(v, ta, 8, 0)
			markIndirect(ldv, abase)
			l.Append(ldv)
			l.Append(ir.Add(acc, acc, v))
			l.Init(acc, 0)
			l.LiveOut = []ir.Reg{acc, bi}
		}
		l.Init(bi, arenaA)
		l.Init(abase, arenaB)
		return l
	}
	initMem := func(m *interp.Memory) {
		rng := newRNG(seed)
		for i := int64(0); i < idxElems; i++ {
			m.Store(arenaA+4*i, 4, rng.Int63n(tableElems))
		}
		for i := int64(0); i < tableElems; i++ {
			if fp {
				m.StoreF(arenaB+8*i, float64(i%101)*0.5)
			} else {
				m.Store(arenaB+8*i, 8, i%103)
			}
		}
	}
	return gen, initMem
}

func markIndirect(ld *ir.Instr, abase ir.Reg) {
	ld.Mem.Stride = ir.StrideIndirect
	ld.Mem.IndexInit = arenaA
	ld.Mem.IndexStride = 4
	ld.Mem.IndexSize = 4
	ld.Mem.ScaleShift = 3
	ld.Mem.ArrayBase = abase
}

// LowTripSAD models the 464.h264ref FastFullPelBlockMotionSearch loop: a
// short (trip ~10) integer difference-accumulation over small, cache-hot
// arrays. Latency hints give nothing here — the loads hit L1 — but each
// added stage costs one kernel iteration per execution, the paper's
// regression case for low trip-count thresholds.
func LowTripSAD(elems int64) (func() *ir.Loop, func(*interp.Memory)) {
	gen := func() *ir.Loop {
		l := ir.NewLoop("sad")
		ba, bb := l.NewGR(), l.NewGR()
		a, b, d, acc := l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR()
		lda := ir.Ld(a, ba, 4, 4)
		lda.Mem.Stride, lda.Mem.StrideBytes = ir.StrideUnit, 4
		l.Append(lda)
		ldb := ir.Ld(b, bb, 4, 4)
		ldb.Mem.Stride, ldb.Mem.StrideBytes = ir.StrideUnit, 4
		l.Append(ldb)
		l.Append(ir.Sub(d, a, b))
		l.Append(ir.Add(acc, acc, d))
		l.Init(ba, arenaA)
		l.Init(bb, arenaB)
		l.Init(acc, 0)
		l.LiveOut = []ir.Reg{acc}
		return l
	}
	initMem := func(m *interp.Memory) {
		for i := int64(0); i < elems; i++ {
			m.Store(arenaA+4*i, 4, 200+i%64)
			m.Store(arenaB+4*i, 4, i%64)
		}
	}
	return gen, initMem
}

// MultiStreamXor models 462.libquantum-style gate application: several
// parallel integer streams (load, transform, store) over 16-byte records
// like libquantum's quantum_reg_node. The many integer reference groups
// trigger HLO heuristic (3): prefetching into L2 only plus an L2 hint, so
// the pipeliner covers the L2 latency every load now pays — and the
// resulting request rate pushes the OzQ towards its capacity (the Fig. 10
// BE_L1D_FPU_BUBBLE increase).
func MultiStreamXor(streams int, elems int64) (func() *ir.Loop, func(*interp.Memory)) {
	const rec = 16 // record stride in bytes
	gen := func() *ir.Loop {
		l := ir.NewLoop("gatexor")
		mask := l.NewGR()
		l.Init(mask, 0x5a5a5a5a)
		outs := []ir.Reg{}
		for s := 0; s < streams; s++ {
			in, out := l.NewGR(), l.NewGR()
			v, w := l.NewGR(), l.NewGR()
			ld := ir.Ld(v, in, 8, rec)
			ld.Mem.Stride, ld.Mem.StrideBytes = ir.StrideConst, rec
			l.Append(ld)
			l.Append(&ir.Instr{Op: ir.OpXor, Dsts: []ir.Reg{w}, Srcs: []ir.Reg{v, mask}})
			st := ir.St(out, w, 8, rec)
			st.Mem.Stride, st.Mem.StrideBytes = ir.StrideConst, rec
			l.Append(st)
			// Stagger stream bases so they do not all map to the same
			// cache sets (0x40_0000 apart would alias in every level).
			l.Init(in, arenaA+int64(s)*0x40_0000+int64(s)*8320)
			l.Init(out, arenaC+int64(s)*0x40_0000+int64(s)*12416)
			outs = append(outs, in, out)
		}
		l.LiveOut = outs
		return l
	}
	initMem := func(m *interp.Memory) {
		for s := 0; s < streams; s++ {
			base := int64(arenaA) + int64(s)*0x40_0000 + int64(s)*8320
			for i := int64(0); i < elems; i++ {
				m.Store(base+16*i, 8, i*31+int64(s))
			}
		}
	}
	return gen, initMem
}

// RegPressureFP models a register-hungry FP kernel: several independent
// FP load -> FMA chains folded into one accumulator at a tight II. With
// every load boosted to the typical L3 latency the blade widths exceed the
// 96 rotating FP registers, forcing the pipeliner's fallback ladder
// (reduce non-critical latencies at the same II, then retry) — the
// register-allocation-failure path of paper Sec. 3.3.
func RegPressureFP(lanes int, elems int64) (func() *ir.Loop, func(*interp.Memory)) {
	gen := func() *ir.Loop {
		l := ir.NewLoop("regpressure")
		var accs []ir.Reg
		for s := 0; s < lanes; s++ {
			b := l.NewGR()
			l.Init(b, arenaA+int64(s)*0x20_0000)
			x, t, c, acc := l.NewFR(), l.NewFR(), l.NewFR(), l.NewFR()
			l.InitF(c, 1.0+float64(s)*0.25)
			l.InitF(acc, 0)
			ld := ir.LdF(x, b, 8)
			// Non-prefetchable so no lfetch competes for M slots and the
			// II stays minimal, maximizing blade widths under boosting.
			ld.Mem.Stride = ir.StrideUnknown
			l.Append(ld)
			l.Append(ir.FMul(t, x, c))
			l.Append(ir.FAdd(acc, acc, t)) // in-place per-lane accumulator
			accs = append(accs, acc)
		}
		l.LiveOut = accs
		return l
	}
	initMem := func(m *interp.Memory) {
		for s := 0; s < lanes; s++ {
			base := int64(arenaA) + int64(s)*0x20_0000
			for i := int64(0); i < elems; i++ {
				m.StoreF(base+8*i, float64(i%61)*0.5)
			}
		}
	}
	return gen, initMem
}

// SymbolicStrideFP models 481.wrf / 200.sixtrack-style strided FP access:
// the stride is constant per execution but unknown at compile time, so the
// prefetcher limits the distance to bound TLB pressure (heuristic 2a) and
// marks the load. A unit-stride FP store accompanies it.
func SymbolicStrideFP(elems, strideBytes int64) (func() *ir.Loop, func(*interp.Memory)) {
	gen := func() *ir.Loop {
		l := ir.NewLoop("strided")
		x, t, c, d := l.NewFR(), l.NewFR(), l.NewFR(), l.NewFR()
		bx, by := l.NewGR(), l.NewGR()
		ld := ir.LdF(x, bx, strideBytes)
		ld.Mem.Stride, ld.Mem.StrideBytes = ir.StrideSymbolic, strideBytes
		l.Append(ld)
		l.Append(ir.FMA(t, x, c, d))
		st := ir.StF(by, t, 8)
		st.Mem.Stride, st.Mem.StrideBytes = ir.StrideUnit, 8
		l.Append(st)
		l.Init(bx, arenaA)
		l.Init(by, arenaC)
		l.InitF(c, 2.0)
		l.InitF(d, 0.5)
		l.LiveOut = []ir.Reg{bx, by}
		return l
	}
	initMem := func(m *interp.Memory) {
		for i := int64(0); i < elems; i++ {
			m.StoreF(arenaA+strideBytes*i, float64(i%89)*0.25)
		}
	}
	return gen, initMem
}
