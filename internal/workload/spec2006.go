package workload

import (
	"ltsp/internal/interp"
	"ltsp/internal/ir"
	"ltsp/internal/profile"
)

// mkLoop assembles a LoopSpec from an archetype pair and distributions.
func mkLoop(name string, weight float64, gen func() *ir.Loop, initMem func(*interp.Memory),
	train, ref profile.Distribution, facts profile.StaticFacts) LoopSpec {
	return LoopSpec{
		Name: name, Weight: weight, Gen: gen, InitMem: initMem,
		Train: train, Ref: ref, Facts: facts,
	}
}

// mkCold is mkLoop for streaming loops whose data is evicted between
// executions.
func mkCold(name string, weight float64, gen func() *ir.Loop, initMem func(*interp.Memory),
	train, ref profile.Distribution, facts profile.StaticFacts) LoopSpec {
	s := mkLoop(name, weight, gen, initMem, train, ref, facts)
	s.Cold = true
	return s
}

// uni is shorthand for a uniform trip distribution.
func uni(trip, count int64) profile.Distribution { return profile.Uniform(trip, count) }

// cpu2006 builds the 29 CPU2006 benchmark models. The designed behaviours
// follow the paper's observations:
//
//   - 429.mcf: the Sec. 4.4 refresh_potential pointer chase, average trip
//     2.3, non-prefetchable delinquent loads (+10..14% expected).
//   - 444.namd: FP gather over a large pair table plus an FP reduction
//     (+10..12%).
//   - 462.libquantum: many parallel integer streams -> OzQ-pressure
//     heuristic (3) (+7..14%).
//   - 481.wrf: symbolic-stride FP with average trip ~48, so the n=64
//     threshold forfeits its gain (+7%).
//   - 464.h264ref: trip-10 L1-resident SAD loop; boosting it only adds
//     stages (the low-threshold regression of Fig. 7).
//   - 445.gobmk: indirect lookups with true trip ~3; PGO refuses to
//     pipeline it, static estimates pipeline and boost it (the Fig. 9
//     "worst case").
//
// Benchmarks the paper shows as flat get either no pipelinable hot loops
// or well-prefetched streams where hints change little.
func cpu2006() []*Benchmark {
	var out []*Benchmark
	add := func(name string, loops ...LoopSpec) {
		out = append(out, &Benchmark{Name: name, Suite: SuiteCPU2006, Loops: loops})
	}

	{
		g, im := LowTripSAD(1 << 10)
		add("400.perlbench", mkLoop("match", 0.08, g, im,
			uni(12, 400), uni(12, 400), profile.StaticFacts{}))
	}
	{
		g, im := IndirectGather(1<<12, 1<<16, false, 41)
		add("401.bzip2", mkLoop("sortgather", 0.10, g, im,
			uni(256, 60), uni(256, 60), profile.StaticFacts{}))
	}
	{
		g, im := IntCopyAdd(1 << 7)
		add("403.gcc", mkLoop("bitcopy", 0.06, g, im,
			uni(6, 3000), uni(6, 3000), profile.StaticFacts{}))
	}
	{
		g, im := FPDaxpy(1 << 18)
		add("410.bwaves", mkCold("flux", 0.24, g, im,
			uni(1024, 40), uni(1024, 40), profile.StaticFacts{}))
	}
	add("416.gamess")
	{
		// Two hot-loop classes, as in the real program: long arc-array
		// scans with indirect misses (the Fig. 7 headroom gain, trip count
		// well above any threshold) and the Sec. 4.4 refresh_potential
		// pointer chase (average trip 2.3, gains only via the
		// delinquent-load override of the HLO hints).
		g1, im1 := IndirectGather(1<<13, 1<<19, false, 7)
		g2, im2 := PointerChase(1<<17, 7)
		add("429.mcf",
			mkCold("arcscan", 0.13, g1, im1,
				uni(600, 60), uni(600, 60), profile.StaticFacts{}),
			mkCold("refresh_potential", 0.08, g2, im2,
				profile.Distribution{{Trip: 2, Count: 1400}, {Trip: 3, Count: 600}},
				profile.Distribution{{Trip: 2, Count: 1400}, {Trip: 3, Count: 600}},
				profile.StaticFacts{}))
	}
	{
		g, im := FPDaxpy(1 << 15)
		add("433.milc", mkCold("su3", 0.20, g, im,
			uni(512, 60), uni(512, 60), profile.StaticFacts{}))
	}
	{
		g, im := SymbolicStrideFP(1<<14, 128)
		add("434.zeusmp", mkCold("sweep", 0.08, g, im,
			uni(256, 60), uni(256, 60), profile.StaticFacts{}))
	}
	{
		g, im := IndirectGather(1<<12, 1<<13, true, 43)
		add("435.gromacs", mkLoop("nblist", 0.10, g, im,
			uni(20, 900), uni(20, 900), profile.StaticFacts{}))
	}
	{
		g, im := FPDaxpy(1 << 16)
		add("436.cactusADM", mkCold("stencil", 0.16, g, im,
			uni(700, 40), uni(700, 40), profile.StaticFacts{}))
	}
	{
		g, im := FPReduction(1 << 16)
		add("437.leslie3d", mkCold("fluxsum", 0.18, g, im,
			uni(600, 50), uni(600, 50), profile.StaticFacts{}))
	}
	{
		g1, im1 := IndirectGather(1<<13, 1<<20, true, 47)
		g2, im2 := FPReduction(1 << 15)
		add("444.namd",
			mkCold("pairlist", 0.20, g1, im1,
				uni(400, 80), uni(400, 80), profile.StaticFacts{}),
			mkCold("forcesum", 0.08, g2, im2,
				uni(500, 60), uni(500, 60), profile.StaticFacts{}))
	}
	{
		// Training sees mostly 1-2 iterations (avg 1.5), so PGO refuses to
		// pipeline; static estimation assumes a high trip count, pipelines
		// and boosts the indirect loads, which actually hit the upper
		// caches — the Fig. 9 "worst case scenario".
		g, im := IndirectGather(1<<10, 1<<9, false, 53)
		add("445.gobmk", mkLoop("boardscan", 0.12, g, im,
			profile.Distribution{{Trip: 1, Count: 3000}, {Trip: 2, Count: 1500}, {Trip: 3, Count: 500}},
			uni(3, 5000), profile.StaticFacts{AssumedTrip: 100}))
	}
	add("447.dealII")
	{
		g, im := SymbolicStrideFP(1<<14, 192)
		add("450.soplex", mkLoop("colscan", 0.08, g, im,
			uni(200, 80), uni(200, 80), profile.StaticFacts{}))
	}
	{
		g, im := LowTripSAD(1 << 9)
		add("453.povray", mkLoop("shade", 0.055, g, im,
			uni(8, 2000), uni(8, 2000), profile.StaticFacts{}))
	}
	{
		g, im := FPDaxpy(1 << 14)
		add("454.calculix", mkLoop("solve", 0.14, g, im,
			uni(400, 60), uni(400, 60), profile.StaticFacts{}))
	}
	{
		g, im := IntCopyAdd(1 << 12)
		add("456.hmmer", mkLoop("viterbi", 0.17, g, im,
			uni(100, 200), uni(100, 200), profile.StaticFacts{ArrayBound: 100}))
	}
	add("458.sjeng")
	{
		g, im := FPDaxpy(1 << 17)
		add("459.GemsFDTD", mkCold("fieldupd", 0.20, g, im,
			uni(900, 40), uni(900, 40), profile.StaticFacts{}))
	}
	{
		g, im := MultiStreamXor(6, 1<<16)
		add("462.libquantum", mkCold("toffoli", 0.40, g, im,
			uni(1024, 40), uni(1024, 40), profile.StaticFacts{}))
	}
	{
		g, im := LowTripSAD(1 << 10)
		add("464.h264ref", mkLoop("blockmotion", 0.30, g, im,
			uni(10, 8000), uni(10, 8000), profile.StaticFacts{}))
	}
	add("465.tonto")
	{
		g, im := FPDaxpy(1 << 18)
		add("470.lbm", mkCold("collide", 0.22, g, im,
			uni(1200, 40), uni(1200, 40), profile.StaticFacts{}))
	}
	{
		g, im := PointerChase(1<<14, 11)
		add("471.omnetpp", mkCold("msgqueue", 0.06, g, im,
			uni(8, 1200), uni(8, 1200), profile.StaticFacts{}))
	}
	{
		g, im := IndirectGather(1<<12, 1<<15, false, 59)
		add("473.astar", mkCold("openlist", 0.08, g, im,
			uni(64, 300), uni(64, 300), profile.StaticFacts{}))
	}
	{
		g, im := SymbolicStrideFP(1<<15, 256)
		add("481.wrf", mkCold("physics", 0.12, g, im,
			uni(48, 400), uni(48, 400), profile.StaticFacts{}))
	}
	{
		g, im := IndirectGather(1<<12, 1<<14, true, 61)
		add("482.sphinx3", mkCold("gauden", 0.09, g, im,
			uni(256, 80), uni(256, 80), profile.StaticFacts{}))
	}
	{
		g, im := LowTripSAD(1 << 8)
		add("483.xalancbmk", mkLoop("tokscan", 0.055, g, im,
			uni(6, 2500), uni(6, 2500), profile.StaticFacts{}))
	}
	return out
}
