// Package workload models the paper's evaluation subjects. SPEC CPU2000
// and CPU2006 sources are not available, so each of the 55 benchmarks in
// the paper's figures is represented by a synthetic model: a set of hot
// pipelinable loops with the memory behaviour the paper attributes to that
// program (pointer chasing in 429.mcf, a low-trip-count motion-search loop
// in 464.h264ref, training/reference trip divergence in 177.mesa, ...),
// plus a fraction of execution time outside pipelined loops that the
// optimization cannot touch.
//
// All data layouts are deterministic (fixed-seed PRNG), so every
// experiment is bit-reproducible. Generators never use the global
// math/rand source: randomness always flows from an explicit seed through
// a *rand.Rand private to the invocation (see newRNG), so concurrent
// Gen/InitMem calls — e.g. parallel compile requests in the ltspd
// service — are race-free and reproducible.
package workload

import (
	"ltsp/internal/interp"
	"ltsp/internal/ir"
	"ltsp/internal/profile"
)

// LoopSpec is one hot loop of a benchmark model.
type LoopSpec struct {
	// Name identifies the loop (e.g. "mcf.refresh_potential").
	Name string
	// Weight is the fraction of the benchmark's *baseline* cycles spent in
	// this loop. The weights of a benchmark's loops sum to its
	// LoopFraction.
	Weight float64
	// Train and Ref are the trip-count distributions on the training and
	// reference inputs. PGO sees Train; measurement runs execute Ref.
	Train, Ref profile.Distribution
	// Facts feed static trip estimation when PGO is off.
	Facts profile.StaticFacts
	// Gen builds a fresh copy of the loop IR (the HLO pass mutates it).
	Gen func() *ir.Loop
	// InitMem lays out the loop's data in a fresh memory image.
	InitMem func(*interp.Memory)
	// Cold marks loops whose data is evicted between executions (large
	// streaming working sets): every simulated execution starts with cold
	// caches. Loops with Cold false are measured warm (after one unmeasured
	// warm-up execution).
	Cold bool
}

// Benchmark models one SPEC program.
type Benchmark struct {
	// Name is the SPEC identifier, e.g. "429.mcf".
	Name string
	// Suite is "CPU2006" or "CPU2000".
	Suite string
	// Loops are the hot pipelinable loops. The remaining fraction
	// 1 - sum(Weight) of baseline time is outside pipelined loops and
	// identical under every compiler configuration.
	Loops []LoopSpec
}

// LoopFraction returns the fraction of baseline time inside the modeled
// loops.
func (b *Benchmark) LoopFraction() float64 {
	f := 0.0
	for i := range b.Loops {
		f += b.Loops[i].Weight
	}
	return f
}

// Suite names.
const (
	SuiteCPU2006 = "CPU2006"
	SuiteCPU2000 = "CPU2000"
)

// CPU2006 returns the 29 CPU2006 benchmark models in the paper's figure
// order.
func CPU2006() []*Benchmark { return cpu2006() }

// CPU2000 returns the 26 CPU2000 benchmark models in the paper's figure
// order.
func CPU2000() []*Benchmark { return cpu2000() }

// All returns both suites.
func All() []*Benchmark {
	return append(CPU2006(), CPU2000()...)
}

// ByName returns the benchmark with the given name, or nil.
func ByName(name string) *Benchmark {
	for _, b := range All() {
		if b.Name == name {
			return b
		}
	}
	return nil
}
