package workload

import (
	"testing"

	"ltsp/internal/core"
	"ltsp/internal/hlo"
	"ltsp/internal/interp"
	"ltsp/internal/machine"
)

func TestWhileChaseShape(t *testing.T) {
	gen, _ := WhileChase(256, 3, 21)
	l := gen()
	if err := l.Verify(); err != nil {
		t.Fatal(err)
	}
	if l.While == nil {
		t.Fatal("not a while loop")
	}
	for i, in := range l.Body {
		if in.Pred != l.While.Cond {
			t.Errorf("body[%d] not guarded by the validity predicate", i)
		}
	}
}

// TestWhileChaseSequential checks the data-terminated loop stops exactly at
// the NULL terminator under sequential execution.
func TestWhileChaseSequential(t *testing.T) {
	for _, chainLen := range []int64{1, 2, 3, 7, 20} {
		gen, initMem := WhileChase(256, chainLen, 23)
		l := gen()
		seq, err := core.GenSequential(machine.Itanium2(), l)
		if err != nil {
			t.Fatal(err)
		}
		if seq.WhileQP.IsNone() {
			t.Fatal("sequential while program has no condition register")
		}
		mem := interp.NewMemory()
		initMem(mem)
		st, err := interp.Run(seq, 1000, mem) // trip is only a cap
		if err != nil {
			t.Fatal(err)
		}
		// Exactly chainLen potentials written; the node after the
		// terminator untouched.
		for i := int64(0); i < chainLen; i++ {
			ref := refPotential(mem, i)
			if got := st.Mem.Load(arenaB+i*nodeSize+offPot, 8); got != ref {
				t.Fatalf("chain %d: node %d potential = %d, want %d", chainLen, i, got, ref)
			}
		}
		if got := st.Mem.Load(arenaB+chainLen*nodeSize+offPot, 8); got != 0 {
			t.Fatalf("chain %d: wrote past the terminator (%d)", chainLen, got)
		}
	}
}

// refPotential recomputes node i's expected potential from the (already
// final) memory: cost and pred-potential come from read-only regions.
func refPotential(m *interp.Memory, i int64) int64 {
	node := arenaB + i*nodeSize
	arc := m.Load(node+offArc, 8)
	pred := m.Load(node+offPred, 8)
	return m.Load(arc, 8) + m.Load(pred+offPot, 8)
}

// TestWhileChasePipelined: the br.wtop kernel computes exactly what the
// sequential while loop computes, for several chain lengths and hint
// modes — the whole-stack check for data-terminated pipelining.
func TestWhileChasePipelined(t *testing.T) {
	m := machine.Itanium2()
	for _, chainLen := range []int64{1, 2, 3, 5, 17, 40} {
		for _, mode := range []hlo.HintMode{hlo.ModeNone, hlo.ModeHLO} {
			gen, initMem := WhileChase(256, chainLen, 29)

			seqLoop := gen()
			if _, err := hlo.Apply(seqLoop, hlo.Options{Mode: mode, Prefetch: true, TripEstimate: 2.3}); err != nil {
				t.Fatal(err)
			}
			seq, err := core.GenSequential(m, seqLoop)
			if err != nil {
				t.Fatal(err)
			}

			pipeLoop := gen()
			if _, err := hlo.Apply(pipeLoop, hlo.Options{Mode: mode, Prefetch: true, TripEstimate: 2.3}); err != nil {
				t.Fatal(err)
			}
			c, err := core.Pipeline(pipeLoop, core.Options{LatencyTolerant: true, BoostDelinquent: true})
			if err != nil {
				t.Fatalf("chain %d mode %v: %v", chainLen, mode, err)
			}
			if c.Program.WhileQP.IsNone() {
				t.Fatal("pipelined while program has no wtop predicate")
			}

			memA, memB := interp.NewMemory(), interp.NewMemory()
			initMem(memA)
			initMem(memB)
			stA, err := interp.Run(seq, 1000, memA)
			if err != nil {
				t.Fatal(err)
			}
			stB, err := interp.Run(c.Program, 1000, memB)
			if err != nil {
				t.Fatal(err)
			}
			sa, sb := stA.Mem.Snapshot(), stB.Mem.Snapshot()
			if len(sa) != len(sb) {
				t.Fatalf("chain %d mode %v: page counts differ (II=%d SC=%d)",
					chainLen, mode, c.FinalII, c.Stages)
			}
			for pn, pa := range sa {
				if pb := sb[pn]; pa != pb {
					t.Fatalf("chain %d mode %v: page %#x differs (II=%d SC=%d)",
						chainLen, mode, pn, c.FinalII, c.Stages)
				}
			}
		}
	}
}

// TestWhileChaseChaseIsCritical: the chase load and the validity chain sit
// on the recurrence, so the classifier must keep them at base latency
// while boosting the payload dereferences.
func TestWhileChaseClassification(t *testing.T) {
	gen, _ := WhileChase(256, 3, 31)
	l := gen()
	if _, err := hlo.Apply(l, hlo.Options{Mode: hlo.ModeHLO, Prefetch: true, TripEstimate: 2.3}); err != nil {
		t.Fatal(err)
	}
	c, err := core.Pipeline(l, core.Options{LatencyTolerant: true, BoostDelinquent: true})
	if err != nil {
		t.Fatal(err)
	}
	boosted := 0
	for _, lr := range c.Loads {
		in := l.Body[lr.ID]
		if in.Comment == "node = node->child" {
			if !lr.Critical {
				t.Error("chase load not critical in the while form")
			}
			continue
		}
		if lr.SchedLat > lr.BaseLat {
			boosted++
		}
	}
	if boosted < 3 {
		t.Errorf("only %d payload loads boosted", boosted)
	}
}

// TestWhileChaseBoostingHelps: latency tolerance must still pay off on the
// data-terminated form (the paper's Sec. 4.4 loop is this loop).
func TestWhileChaseBoostingHelps(t *testing.T) {
	measure := func(mode hlo.HintMode, tolerant bool) int64 {
		gen, initMem := WhileChase(1<<14, 3, 37)
		l := gen()
		if _, err := hlo.Apply(l, hlo.Options{Mode: mode, Prefetch: true, TripEstimate: 2.3}); err != nil {
			t.Fatal(err)
		}
		c, err := core.Pipeline(l, core.Options{LatencyTolerant: tolerant, BoostDelinquent: tolerant})
		if err != nil {
			t.Fatal(err)
		}
		runner := newTestRunner()
		mem := interp.NewMemory()
		initMem(mem)
		var total int64
		for i := 0; i < 6; i++ {
			runner.DropCaches()
			r, err := runner.Run(c.Program, 100, mem)
			if err != nil {
				t.Fatal(err)
			}
			total += r.Cycles
		}
		return total
	}
	base := measure(hlo.ModeNone, false)
	boosted := measure(hlo.ModeHLO, true)
	if boosted >= base {
		t.Errorf("boosting did not help the while chase: %d vs %d", boosted, base)
	}
}
