package workload

import (
	"fmt"
	"testing"

	"ltsp/internal/core"
	"ltsp/internal/hlo"
	"ltsp/internal/interp"
	"ltsp/internal/ir"
	"ltsp/internal/machine"
	"ltsp/internal/sim"
)

func TestSuiteShapes(t *testing.T) {
	b2006, b2000 := CPU2006(), CPU2000()
	if len(b2006) != 29 {
		t.Errorf("CPU2006 has %d benchmarks, want 29", len(b2006))
	}
	if len(b2000) != 26 {
		t.Errorf("CPU2000 has %d benchmarks, want 26", len(b2000))
	}
	if len(All()) != 55 {
		t.Errorf("All() = %d, want 55", len(All()))
	}
	seen := map[string]bool{}
	for _, b := range All() {
		if seen[b.Name] {
			t.Errorf("duplicate benchmark %s", b.Name)
		}
		seen[b.Name] = true
		if b.Suite != SuiteCPU2006 && b.Suite != SuiteCPU2000 {
			t.Errorf("%s: bad suite %q", b.Name, b.Suite)
		}
		if f := b.LoopFraction(); f < 0 || f > 0.95 {
			t.Errorf("%s: loop fraction %.2f out of range", b.Name, f)
		}
	}
}

func TestByName(t *testing.T) {
	if ByName("429.mcf") == nil {
		t.Error("429.mcf missing")
	}
	if ByName("999.nope") != nil {
		t.Error("found a benchmark that does not exist")
	}
}

func TestLoopSpecsWellFormed(t *testing.T) {
	for _, b := range All() {
		for i := range b.Loops {
			spec := &b.Loops[i]
			l := spec.Gen()
			if err := l.Verify(); err != nil {
				t.Errorf("%s/%s: %v", b.Name, spec.Name, err)
			}
			if spec.Weight <= 0 {
				t.Errorf("%s/%s: weight %f", b.Name, spec.Name, spec.Weight)
			}
			if spec.Train.Executions() == 0 || spec.Ref.Executions() == 0 {
				t.Errorf("%s/%s: empty distribution", b.Name, spec.Name)
			}
			if spec.InitMem == nil {
				t.Errorf("%s/%s: no memory initializer", b.Name, spec.Name)
			}
		}
	}
}

func TestGenProducesFreshLoops(t *testing.T) {
	spec := &ByName("429.mcf").Loops[0]
	l1, l2 := spec.Gen(), spec.Gen()
	l1.Body[0].Mem.Hint = ir.HintL3
	if l2.Body[0].Mem.Hint == ir.HintL3 {
		t.Error("Gen returned aliased loops")
	}
}

func TestDesignedBehaviours(t *testing.T) {
	// 177.mesa: the training/reference divergence.
	mesa := ByName("177.mesa").Loops[0]
	if mesa.Train.Avg() < 100 || mesa.Ref.Avg() > 10 {
		t.Errorf("mesa train=%.0f ref=%.0f, want ~154/~8", mesa.Train.Avg(), mesa.Ref.Avg())
	}
	// 429.mcf refresh_potential: average trip 2.3.
	var chase *LoopSpec
	for i := range ByName("429.mcf").Loops {
		if ByName("429.mcf").Loops[i].Name == "refresh_potential" {
			chase = &ByName("429.mcf").Loops[i]
		}
	}
	if chase == nil {
		t.Fatal("no refresh_potential loop")
	}
	if avg := chase.Ref.Avg(); avg < 2.2 || avg > 2.4 {
		t.Errorf("mcf chase trip = %.2f, want 2.3", avg)
	}
	// 445.gobmk: PGO sees a trip below the pipelining gate, static does not.
	gobmk := ByName("445.gobmk").Loops[0]
	if gobmk.Train.Avg() >= 2 {
		t.Errorf("gobmk train avg = %.2f, want < 2 (PGO must refuse to pipeline)", gobmk.Train.Avg())
	}
	if gobmk.Facts.AssumedTrip < 32 {
		t.Error("gobmk static assumption too low to trigger the Fig. 9 case")
	}
	// 481.wrf: trip between 32 and 64 so the n=64 threshold drops it.
	wrf := ByName("481.wrf").Loops[0]
	if avg := wrf.Ref.Avg(); avg < 32 || avg >= 64 {
		t.Errorf("wrf trip = %.0f, want in [32,64)", avg)
	}
	// 464.h264ref: trip ~10, warm (cache-hot) loop.
	h264 := ByName("464.h264ref").Loops[0]
	if h264.Ref.Avg() != 10 || h264.Cold {
		t.Error("h264ref loop must be warm with trip 10")
	}
}

// TestArchetypeEquivalence compiles every benchmark loop under every hint
// mode and checks the pipelined kernel computes the same memory state as
// the sequential loop — the whole-stack correctness check applied to the
// actual evaluation workloads.
func TestArchetypeEquivalence(t *testing.T) {
	modes := []hlo.HintMode{hlo.ModeNone, hlo.ModeAllL3, hlo.ModeAllFPL2, hlo.ModeHLO}
	m := machine.Itanium2()
	for _, b := range All() {
		for i := range b.Loops {
			spec := &b.Loops[i]
			for _, mode := range modes {
				name := fmt.Sprintf("%s/%s/%s", b.Name, spec.Name, mode)
				trip := int64(spec.Ref.Avg())
				if trip < 1 {
					trip = 1
				}
				if trip > 40 {
					trip = 40 // keep the functional runs fast
				}

				seqLoop := spec.Gen()
				if _, err := hlo.Apply(seqLoop, hlo.Options{Mode: mode, Prefetch: true, TripEstimate: 64}); err != nil {
					t.Fatalf("%s: hlo: %v", name, err)
				}
				seq, err := core.GenSequential(m, seqLoop)
				if err != nil {
					t.Fatalf("%s: seq: %v", name, err)
				}

				pipeLoop := spec.Gen()
				if _, err := hlo.Apply(pipeLoop, hlo.Options{Mode: mode, Prefetch: true, TripEstimate: 64}); err != nil {
					t.Fatalf("%s: hlo: %v", name, err)
				}
				c, err := core.Pipeline(pipeLoop, core.Options{LatencyTolerant: true, BoostDelinquent: true})
				if err != nil {
					t.Fatalf("%s: pipeline: %v", name, err)
				}

				memA, memB := interp.NewMemory(), interp.NewMemory()
				spec.InitMem(memA)
				spec.InitMem(memB)
				stA, err := interp.Run(seq, trip, memA)
				if err != nil {
					t.Fatalf("%s: run seq: %v", name, err)
				}
				stB, err := interp.Run(c.Program, trip, memB)
				if err != nil {
					t.Fatalf("%s: run pipelined: %v", name, err)
				}
				snapA, snapB := stA.Mem.Snapshot(), stB.Mem.Snapshot()
				if len(snapA) != len(snapB) {
					t.Fatalf("%s: page counts differ", name)
				}
				for pn, pa := range snapA {
					if pb := snapB[pn]; pa != pb {
						t.Fatalf("%s: memory differs at page %#x (II=%d stages=%d)",
							name, pn, c.FinalII, c.Stages)
					}
				}
				for k := range seq.LiveOut {
					va, vb := stA.ReadReg(seq.LiveOut[k]), stB.ReadReg(c.Program.LiveOut[k])
					if va != vb {
						t.Fatalf("%s: live-out %d differs: %d vs %d", name, k, va, vb)
					}
				}
			}
		}
	}
}

func TestRegPressureArchetype(t *testing.T) {
	gen, initMem := RegPressureFP(4, 64)
	l := gen()
	if err := l.Verify(); err != nil {
		t.Fatal(err)
	}
	mem := interp.NewMemory()
	initMem(mem)
	// On a shrunken FP file the boosted schedule must trip the fallback
	// ladder.
	m := machine.Itanium2()
	m.RotFR = 10
	for _, in := range l.Body {
		if in.Op == ir.OpLdF {
			in.Mem.Hint = ir.HintL3
		}
	}
	c, err := core.Pipeline(l, core.Options{Model: m, LatencyTolerant: true})
	if err != nil {
		t.Fatal(err)
	}
	if !c.LatencyReduced && c.IIBumps == 0 {
		t.Error("register pressure did not force the fallback ladder")
	}
}

func TestPointerChaseLayout(t *testing.T) {
	gen, initMem := PointerChase(64, 5)
	mem := interp.NewMemory()
	initMem(mem)
	l := gen()
	head, _ := l.InitValue(l.Body[0].Srcs[0]) // mov pcur = pnext reads the init
	// Walk the chain: 64 nodes then wrap to the head.
	p := head
	for i := 0; i < 64; i++ {
		next := mem.Load(p+offChild, 8)
		if next == 0 {
			t.Fatalf("chain broken at node %d", i)
		}
		p = next
	}
	if p != head {
		t.Error("chain does not wrap to the head")
	}
}

// newTestRunner builds a default simulator runner for workload tests.
func newTestRunner() *sim.Runner { return sim.NewRunner(sim.DefaultConfig()) }
