package workload

import (
	"math/rand"

	"ltsp/internal/ifconv"
	"ltsp/internal/interp"
	"ltsp/internal/ir"
)

// Branchy node layout (the full refresh_potential shape with the
// orientation test of the paper's Sec. 4.4 source excerpt):
//
//	node+0  : child pointer
//	node+8  : basic_arc pointer
//	node+16 : pred pointer
//	node+24 : potential (written)
//	node+32 : orientation (UP = 1)
const (
	bNodeSize = 40
	bOffArc   = 8
	bOffPred  = 16
	bOffPot   = 24
	bOffOr    = 32
)

// PointerChaseBranchy models refresh_potential() with its orientation
// conditional, built as a structured body and lowered by the if-converter:
//
//	while (node) {
//	    if (node->orientation == UP)
//	        node->potential = node->basic_arc->cost + node->pred->potential;
//	    else
//	        node->potential = node->pred->potential - node->basic_arc->cost;
//	    node = node->child;
//	}
//
// The dereference loads are hoisted above the diamond (they execute on
// both paths); the arms differ only in the combine, merged through a
// single sel.
func PointerChaseBranchy(nodes int64, seed int64) (func() *ir.Loop, func(*interp.Memory)) {
	gen := func() *ir.Loop {
		l := ir.NewLoop("refresh_potential_branchy")
		pnext, pcur := l.NewGR(), l.NewGR()
		tOr, orient := l.NewGR(), l.NewGR()
		t1, ba, cost := l.NewGR(), l.NewGR(), l.NewGR()
		t2, pd, t3, pot := l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR()
		vUp, vDn, v, t4 := l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR()

		chase := ir.Ld(pnext, pcur, 8, 0)
		chase.Mem.Stride = ir.StridePointerChase
		chase.Comment = "node = node->child"
		ldOr := ir.Ld(orient, tOr, 4, 0)
		ldOr.Mem.Stride = ir.StridePointerChase
		ldOr.Comment = "node->orientation"
		ldArc := ir.Ld(ba, t1, 8, 0)
		ldArc.Mem.Stride = ir.StridePointerChase
		ldArc.Comment = "node->basic_arc"
		ldCost := ir.Ld(cost, ba, 8, 0)
		ldCost.Mem.Stride = ir.StridePointerChase
		ldCost.Comment = "basic_arc->cost"
		ldPred := ir.Ld(pd, t2, 8, 0)
		ldPred.Mem.Stride = ir.StridePointerChase
		ldPred.Comment = "node->pred"
		ldPot := ir.Ld(pot, t3, 8, 0)
		ldPot.Mem.Stride = ir.StridePointerChase
		ldPot.Comment = "pred->potential"
		st := ir.St(t4, v, 8, 0)
		st.Comment = "node->potential ="

		body := []ifconv.Stmt{
			ifconv.I(ir.Mov(pcur, pnext)),
			ifconv.I(chase),
			ifconv.I(ir.AddI(tOr, pcur, bOffOr)),
			ifconv.I(ldOr),
			ifconv.I(ir.AddI(t1, pcur, bOffArc)),
			ifconv.I(ldArc),
			ifconv.I(ldCost),
			ifconv.I(ir.AddI(t2, pcur, bOffPred)),
			ifconv.I(ldPred),
			ifconv.I(ir.AddI(t3, pd, bOffPot)),
			ifconv.I(ldPot),
			ifconv.Cond(&ifconv.If{
				Cmp: ir.CmpEqI(ir.None, ir.None, orient, 1),
				Then: []ifconv.Stmt{
					ifconv.I(ir.Add(vUp, cost, pot)),
				},
				Else: []ifconv.Stmt{
					ifconv.I(ir.Sub(vDn, pot, cost)),
				},
				Merges: []ifconv.Merge{{Dst: v, ThenVal: vUp, ElseVal: vDn}},
			}),
			ifconv.I(ir.AddI(t4, pcur, bOffPot)),
			ifconv.I(st),
		}
		if err := ifconv.Convert(l, body); err != nil {
			panic("workload: if-conversion failed: " + err.Error())
		}
		l.Init(pnext, arenaB)
		return l
	}
	initMem := func(m *interp.Memory) { initBranchy(m, nodes, newRNG(seed+1)) }
	return gen, initMem
}

// initBranchy lays out the branchy node arena from the invocation's
// private PRNG (see newRNG: no global math/rand use anywhere in this
// package).
func initBranchy(m *interp.Memory, nodes int64, rng *rand.Rand) {
	for i := int64(0); i < nodes; i++ {
		addr := arenaB + i*bNodeSize
		m.Store(addr+0, 8, arenaB+((i+1)%nodes)*bNodeSize)
		m.Store(addr+bOffArc, 8, arenaC+rng.Int63n(nodes)*arcStride)
		m.Store(addr+bOffPred, 8, arenaD+rng.Int63n(nodes)*parStride)
		m.Store(addr+bOffOr, 4, rng.Int63n(2)) // UP or DOWN
	}
	for i := int64(0); i < nodes; i++ {
		m.Store(arenaC+i*arcStride, 8, 100+i%37)
		m.Store(arenaD+i*parStride+bOffPot, 8, i%53)
	}
}
