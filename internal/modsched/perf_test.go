package modsched

import (
	"math/rand"
	"testing"

	"ltsp/internal/ddg"
	"ltsp/internal/ir"
	"ltsp/internal/machine"
)

// BenchmarkScheduleAtII measures one full modulo-scheduling attempt at
// MinII on a moderately sized random loop — the unit of work the II
// search repeats, and the path the MRT's incremental occupancy counters
// serve.
func BenchmarkScheduleAtII(b *testing.B) {
	m := machine.Itanium2()
	rng := rand.New(rand.NewSource(42))
	l := randomLoop(rng, 14)
	g, err := ddg.Build(l)
	if err != nil {
		b.Fatal(err)
	}
	lat := func(in *ir.Instr) int {
		if in.Op.IsLoad() {
			return 13
		}
		return m.Latency(in.Op)
	}
	ii := ResMII(m, l.Body)
	if r := g.RecMII(lat); r > ii {
		ii = r
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := ScheduleAtII(m, g, ii, lat, Options{}); !ok {
			b.Fatal("no schedule at MinII")
		}
	}
}
