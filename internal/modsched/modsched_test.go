package modsched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ltsp/internal/ddg"
	"ltsp/internal/ir"
	"ltsp/internal/machine"
	"ltsp/internal/obs"
)

func baseLat(m *machine.Model) ddg.LatencyFn {
	return func(in *ir.Instr) int { return m.LoadLatency(in, false) }
}

func runningExample() *ir.Loop {
	l := ir.NewLoop("copyadd")
	r4, r5, r6, r7, r9 := l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR(), l.NewGR()
	l.Append(ir.Ld(r4, r5, 4, 4))
	l.Append(ir.Add(r7, r4, r9))
	l.Append(ir.St(r6, r7, 4, 4))
	l.Init(r5, 0x1000)
	l.Init(r6, 0x2000)
	l.Init(r9, 1)
	return l
}

func TestResMII(t *testing.T) {
	m := machine.Itanium2()
	l := runningExample()
	// 2 memory ops on 4 M units, 1 A-type, 4 total ops incl. branch on
	// width 6 -> ResMII 1.
	if got := ResMII(m, l.Body); got != 1 {
		t.Errorf("ResMII = %d, want 1", got)
	}
}

func TestResMIIMemoryBound(t *testing.T) {
	m := machine.Itanium2()
	l := ir.NewLoop("mem")
	for i := 0; i < 9; i++ {
		b := l.NewGR()
		l.Init(b, int64(0x1000*i))
		l.Append(ir.Ld(l.NewGR(), b, 8, 8))
	}
	// 9 memory ops on 4 M units -> ceil(9/4) = 3.
	if got := ResMII(m, l.Body); got != 3 {
		t.Errorf("ResMII = %d, want 3", got)
	}
}

func TestResMIIFPBound(t *testing.T) {
	m := machine.Itanium2()
	l := ir.NewLoop("fp")
	a := l.NewFR()
	l.InitF(a, 1)
	for i := 0; i < 7; i++ {
		l.Append(ir.FMul(l.NewFR(), a, a))
	}
	// 7 FP ops on 2 F units -> ceil(7/2) = 4.
	if got := ResMII(m, l.Body); got != 4 {
		t.Errorf("ResMII = %d, want 4", got)
	}
}

func TestResMIIIssueWidthBound(t *testing.T) {
	m := machine.Itanium2()
	l := ir.NewLoop("wide")
	a := l.NewGR()
	l.Init(a, 1)
	for i := 0; i < 13; i++ {
		l.Append(ir.AddI(l.NewGR(), a, 1))
	}
	// 14 ops (incl. branch) / width 6 -> 3.
	if got := ResMII(m, l.Body); got != 3 {
		t.Errorf("ResMII = %d, want 3", got)
	}
}

func TestScheduleRunningExampleII1(t *testing.T) {
	m := machine.Itanium2()
	l := runningExample()
	g, err := ddg.Build(l)
	if err != nil {
		t.Fatal(err)
	}
	s, ok := ScheduleAtII(m, g, 1, baseLat(m), Options{})
	if !ok {
		t.Fatal("no schedule at II=1")
	}
	if err := s.Validate(m, g, baseLat(m)); err != nil {
		t.Fatal(err)
	}
	if s.Stages != 3 {
		t.Errorf("stages = %d, want 3 (Fig. 2)", s.Stages)
	}
	// Stage structure of Fig. 3: ld stage 0, add stage 1, st stage 2.
	if s.Stage(0) != 0 || s.Stage(1) != 1 || s.Stage(2) != 2 {
		t.Errorf("stages = %d/%d/%d", s.Stage(0), s.Stage(1), s.Stage(2))
	}
}

func TestScheduleLatencyTolerant(t *testing.T) {
	m := machine.Itanium2()
	l := runningExample()
	g, _ := ddg.Build(l)
	lat := func(in *ir.Instr) int {
		if in.Op.IsLoad() {
			return 21
		}
		return m.Latency(in.Op)
	}
	s, ok := ScheduleAtII(m, g, 1, lat, Options{})
	if !ok {
		t.Fatal("no schedule")
	}
	if err := s.Validate(m, g, lat); err != nil {
		t.Fatal(err)
	}
	// d = 20 buffer stages between load and add (Fig. 4 generalized).
	if got := s.Time[1] - s.Time[0]; got < 21 {
		t.Errorf("load-use distance = %d, want >= 21", got)
	}
	if s.Stages != 23 {
		t.Errorf("stages = %d, want 23", s.Stages)
	}
}

func TestScheduleInfeasibleII(t *testing.T) {
	m := machine.Itanium2()
	l := ir.NewLoop("mem")
	for i := 0; i < 9; i++ {
		b := l.NewGR()
		l.Init(b, int64(0x1000*i))
		l.Append(ir.Ld(l.NewGR(), b, 8, 8))
	}
	g, _ := ddg.Build(l)
	// 9 mem ops cannot fit II=2 (8 M slots).
	if _, ok := ScheduleAtII(m, g, 2, baseLat(m), Options{}); ok {
		t.Error("scheduled 9 memory ops into 8 M slots")
	}
}

func TestScheduleRecurrenceRespected(t *testing.T) {
	m := machine.Itanium2()
	l := ir.NewLoop("chase")
	pnext, pcur := l.NewGR(), l.NewGR()
	l.Append(ir.Mov(pcur, pnext))
	l.Append(ir.Ld(pnext, pcur, 8, 0))
	l.Init(pnext, 0x1000)
	g, _ := ddg.Build(l)
	// RecMII 2: II=1 must fail, II=2 must succeed.
	if _, ok := ScheduleAtII(m, g, 1, baseLat(m), Options{}); ok {
		t.Error("scheduled below RecMII")
	}
	s, ok := ScheduleAtII(m, g, 2, baseLat(m), Options{})
	if !ok {
		t.Fatal("no schedule at RecMII")
	}
	if err := s.Validate(m, g, baseLat(m)); err != nil {
		t.Error(err)
	}
}

func TestValidateCatchesViolation(t *testing.T) {
	m := machine.Itanium2()
	l := runningExample()
	g, _ := ddg.Build(l)
	s, _ := ScheduleAtII(m, g, 1, baseLat(m), Options{})
	s.Time[1] = s.Time[0] // add issued with its input not ready
	if err := s.Validate(m, g, baseLat(m)); err == nil {
		t.Error("Validate accepted a dependence violation")
	}
}

func TestAttemptsCounted(t *testing.T) {
	m := machine.Itanium2()
	l := runningExample()
	g, _ := ddg.Build(l)
	s, _ := ScheduleAtII(m, g, 1, baseLat(m), Options{})
	if s.Attempts < len(l.Body) {
		t.Errorf("attempts = %d, want >= body size", s.Attempts)
	}
}

// TestDefaultBudgetRatio pins the documented default budget multiplier:
// with Options.BudgetRatio unset the scheduler must budget exactly
// DefaultBudgetRatio * len(body) placements (the loop here is large
// enough that the 32-placement floor does not kick in), observable via
// the SchedEvent it emits.
func TestDefaultBudgetRatio(t *testing.T) {
	if DefaultBudgetRatio != 60 {
		t.Fatalf("DefaultBudgetRatio = %d, want 60", DefaultBudgetRatio)
	}
	m := machine.Itanium2()
	l := runningExample()
	g, _ := ddg.Build(l)
	tr := obs.New()
	if _, ok := ScheduleAtII(m, g, 1, baseLat(m), Options{Trace: tr}); !ok {
		t.Fatal("no schedule")
	}
	want := DefaultBudgetRatio * len(l.Body)
	for _, ev := range tr.Events() {
		se, ok := ev.(obs.SchedEvent)
		if !ok {
			continue
		}
		if se.Budget != want {
			t.Errorf("default budget = %d, want DefaultBudgetRatio*len(body) = %d", se.Budget, want)
		}
		return
	}
	t.Fatal("no SchedEvent emitted")
}

// TestMRTIncrementalConsistency cross-checks the incrementally maintained
// per-row occupancy counters against a from-scratch recount after a
// random sequence of place/remove operations.
func TestMRTIncrementalConsistency(t *testing.T) {
	m := machine.Itanium2()
	rng := rand.New(rand.NewSource(7))
	ops := []ir.Op{ir.OpLd, ir.OpAdd, ir.OpMul, ir.OpSt}
	const n = 24
	tab := newMRT(m, 4, n, new(scratch))
	placed := make(map[int]bool)
	for step := 0; step < 400; step++ {
		op := rng.Intn(n)
		if placed[op] {
			tab.remove(op)
			delete(placed, op)
		} else {
			row := rng.Intn(tab.ii)
			if p, ok := tab.fits(row, ops[op%len(ops)]); ok {
				tab.place(row, op, p)
				placed[op] = true
			}
		}
		for r := range tab.rows {
			var perPort [machine.NumPorts]int
			total := 0
			for _, e := range tab.rows[r].entries {
				perPort[e.port]++
				total++
			}
			if perPort != tab.rows[r].perPort || total != tab.rows[r].total {
				t.Fatalf("step %d row %d: counters %v/%d, recount %v/%d",
					step, r, tab.rows[r].perPort, tab.rows[r].total, perPort, total)
			}
		}
	}
}

// randomLoop mirrors the ddg test generator.
func randomLoop(rng *rand.Rand, n int) *ir.Loop {
	l := ir.NewLoop("rand")
	var defined []ir.Reg
	newSrc := func() ir.Reg {
		if len(defined) == 0 || rng.Intn(3) == 0 {
			r := l.NewGR()
			l.Init(r, int64(rng.Intn(1<<16))*8+0x10000)
			defined = append(defined, r)
			return r
		}
		return defined[rng.Intn(len(defined))]
	}
	for i := 0; i < n; i++ {
		switch rng.Intn(5) {
		case 0, 1:
			d := l.NewGR()
			base := l.NewGR()
			l.Init(base, int64(0x100000+i*0x1000))
			l.Append(ir.Ld(d, base, 8, 8))
			defined = append(defined, d)
		case 2:
			d := l.NewGR()
			l.Append(ir.Add(d, newSrc(), newSrc()))
			defined = append(defined, d)
		case 3:
			d := l.NewGR()
			l.Append(ir.Mul(d, newSrc(), newSrc()))
			defined = append(defined, d)
		default:
			base := l.NewGR()
			l.Init(base, int64(0x800000+i*0x1000))
			l.Append(ir.St(base, newSrc(), 8, 8))
		}
	}
	return l
}

// TestQuickScheduleValidates: for random loops, the iterative modulo
// scheduler must find a schedule within a few IIs of MinII, and every
// schedule it returns must pass full dependence and resource validation.
func TestQuickScheduleValidates(t *testing.T) {
	m := machine.Itanium2()
	f := func(seed int64, sz uint8, boost uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		l := randomLoop(rng, int(sz%14)+2)
		g, err := ddg.Build(l)
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		lat := func(in *ir.Instr) int {
			if in.Op.IsLoad() {
				return 1 + int(boost%22)
			}
			return m.Latency(in.Op)
		}
		minII := ResMII(m, l.Body)
		if r := g.RecMII(lat); r > minII {
			minII = r
		}
		for ii := minII; ii < minII+8; ii++ {
			s, ok := ScheduleAtII(m, g, ii, lat, Options{})
			if !ok {
				continue
			}
			if err := s.Validate(m, g, lat); err != nil {
				t.Fatalf("seed %d ii %d: %v", seed, ii, err)
			}
			return true
		}
		t.Logf("seed %d: no schedule within MinII+8", seed)
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickStagesGrowWithLatency: boosting load latencies must never
// change the achieved II at fixed II but increases (or keeps) the stage
// count — the paper's core cost statement.
func TestQuickStagesGrowWithLatency(t *testing.T) {
	m := machine.Itanium2()
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		l := randomLoop(rng, int(sz%10)+2)
		g, err := ddg.Build(l)
		if err != nil {
			return true
		}
		lo := baseLat(m)
		hi := func(in *ir.Instr) int {
			if in.Op.IsLoad() {
				return 21
			}
			return m.Latency(in.Op)
		}
		ii := ResMII(m, l.Body)
		if r := g.RecMII(hi); r > ii {
			return true // latency is on a recurrence; not comparable
		}
		s1, ok1 := ScheduleAtII(m, g, ii, lo, Options{})
		s2, ok2 := ScheduleAtII(m, g, ii, hi, Options{})
		if !ok1 || !ok2 {
			return true // resource-tightness may defeat one; not a property violation
		}
		return s2.Stages >= s1.Stages
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
