package modsched

import (
	"math/rand"
	"testing"

	"ltsp/internal/ddg"
	"ltsp/internal/ir"
	"ltsp/internal/machine"
)

// FuzzScheduleAtII drives the iterative modulo scheduler over random
// loops with fuzzed sizes, load latencies and II offsets. Two properties
// must hold for any input: ScheduleAtII never panics, and every schedule
// it does return passes full dependence/resource/distance validation.
// (This lives in the internal package because verify imports modsched;
// the independent verifier gets its own fuzz target in internal/verify.)
func FuzzScheduleAtII(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(0), uint8(0))
	f.Add(int64(7), uint8(9), uint8(11), uint8(3))
	f.Add(int64(42), uint8(13), uint8(21), uint8(7))
	f.Add(int64(-3), uint8(255), uint8(255), uint8(255))
	m := machine.Itanium2()
	f.Fuzz(func(t *testing.T, seed int64, sz, boost, iiOff uint8) {
		rng := rand.New(rand.NewSource(seed))
		l := randomLoop(rng, int(sz%14)+2)
		g, err := ddg.Build(l)
		if err != nil {
			t.Skip()
		}
		lat := func(in *ir.Instr) int {
			if in.Op.IsLoad() {
				return 1 + int(boost%22)
			}
			return m.Latency(in.Op)
		}
		minII := ResMII(m, l.Body)
		if r := g.RecMII(lat); r > minII {
			minII = r
		}
		ii := minII + int(iiOff%8)
		if ii < 1 {
			ii = 1
		}
		s, ok := ScheduleAtII(m, g, ii, lat, Options{})
		if !ok {
			return
		}
		if err := s.Validate(m, g, lat); err != nil {
			t.Fatalf("seed %d sz %d boost %d ii %d: returned schedule fails validation: %v",
				seed, sz, boost, ii, err)
		}
	})
}
