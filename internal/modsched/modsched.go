// Package modsched implements iterative modulo scheduling (Rau, MICRO
// 1994): height-based priorities, a modulo reservation table over the
// machine model's dispersal ports, eviction-based backtracking with a
// scheduling budget, and the MinII = max(ResMII, RecMII) search performed
// by the caller (package core) so that the latency-reduction fallback
// ladder of the paper can interleave with II exploration.
package modsched

import (
	"fmt"
	"sort"
	"sync"

	"ltsp/internal/ddg"
	"ltsp/internal/ir"
	"ltsp/internal/machine"
	"ltsp/internal/obs"
)

// Schedule is the result of modulo scheduling one loop at a fixed II.
type Schedule struct {
	// II is the initiation interval in cycles.
	II int
	// Time[i] is the absolute schedule time of body instruction i; its
	// kernel slot is Time[i] % II and its stage Time[i] / II.
	Time []int
	// Port[i] is the dispersal port the instruction was assigned.
	Port []machine.Port
	// Stages is the number of pipeline stages (max stage + 1).
	Stages int
	// Attempts counts individual placement operations performed, the
	// compile-time currency of the paper's Sec. 3.3 discussion.
	Attempts int
	// Evictions counts backtracking displacements: placements undone
	// either to force a higher-priority operation into a full row or
	// because a new placement violated an already-scheduled successor.
	Evictions int
}

// Slot returns instruction i's cycle within the kernel.
func (s *Schedule) Slot(i int) int { return s.Time[i] % s.II }

// Stage returns instruction i's pipeline stage.
func (s *Schedule) Stage(i int) int { return s.Time[i] / s.II }

// ResMII computes the resource-constrained lower bound on the II for the
// loop body (plus the implicit loop-closing branch): per-port unit counts,
// A-type integer operations allowed on either I or M units, and total issue
// width.
func ResMII(m *machine.Model, body []*ir.Instr) int {
	var mem, aType, fp, br int
	for _, in := range body {
		port, a := m.PortOf(in.Op)
		switch {
		case a:
			aType++
		case port == machine.PortM:
			mem++
		case port == machine.PortF:
			fp++
		case port == machine.PortB:
			br++
		}
	}
	br++ // the implicit br.ctop/br.cloop
	total := len(body) + 1
	res := ceilDiv(mem, m.Units[machine.PortM])
	if v := ceilDiv(fp, m.Units[machine.PortF]); v > res {
		res = v
	}
	if v := ceilDiv(br, m.Units[machine.PortB]); v > res {
		res = v
	}
	// A-type ops fill I units first, then spill into spare M capacity.
	if v := ceilDiv(mem+aType, m.Units[machine.PortM]+m.Units[machine.PortI]); v > res {
		res = v
	}
	if v := ceilDiv(total, m.IssueWidth); v > res {
		res = v
	}
	if res < 1 {
		res = 1
	}
	return res
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// mrt is the modulo reservation table: per kernel row, which instructions
// occupy which ports. Each row carries its port-occupancy vector (unit
// counts per dispersal port, plus the row's total issue slots) maintained
// incrementally on place/remove, so the hot fits/conflicts checks read the
// counts directly instead of rescanning the row's occupant list — the
// scan the scheduler previously performed once per candidate slot.
type mrt struct {
	m    *machine.Model
	ii   int
	rows []mrtRow
	// rowOf[op] is the kernel row body instruction op currently occupies,
	// -1 when unplaced; it makes eviction O(row occupants) instead of a
	// full-table sweep.
	rowOf []int
}

type mrtRow struct {
	entries []mrtEntry
	perPort [machine.NumPorts]int
	total   int
}

type mrtEntry struct {
	op   int // body index; -1 for the implicit branch
	port machine.Port
}

func newMRT(m *machine.Model, ii, n int, sc *scratch) *mrt {
	t := &sc.table
	t.m, t.ii = m, ii
	t.rows = sc.rows(ii)
	t.rowOf = sc.ints(&sc.rowOfBuf, n, -1)
	// Reserve the loop-closing branch in the last kernel row.
	last := &t.rows[ii-1]
	last.entries = append(last.entries, mrtEntry{op: -1, port: machine.PortB})
	last.perPort[machine.PortB]++
	last.total++
	return t
}

// fits reports whether op could be placed in the row, and which port it
// would take. A-type operations prefer an I unit and fall back to M.
func (t *mrt) fits(row int, op ir.Op) (machine.Port, bool) {
	r := &t.rows[row]
	if r.total >= t.m.IssueWidth {
		return 0, false
	}
	port, aType := t.m.PortOf(op)
	if aType {
		if r.perPort[machine.PortI] < t.m.Units[machine.PortI] {
			return machine.PortI, true
		}
		if r.perPort[machine.PortM] < t.m.Units[machine.PortM] {
			return machine.PortM, true
		}
		return 0, false
	}
	if r.perPort[port] < t.m.Units[port] {
		return port, true
	}
	return 0, false
}

func (t *mrt) place(row int, opIdx int, port machine.Port) {
	r := &t.rows[row]
	r.entries = append(r.entries, mrtEntry{op: opIdx, port: port})
	r.perPort[port]++
	r.total++
	t.rowOf[opIdx] = row
}

func (t *mrt) remove(opIdx int) {
	row := t.rowOf[opIdx]
	if row < 0 {
		return
	}
	r := &t.rows[row]
	for i, e := range r.entries {
		if e.op == opIdx {
			r.entries = append(r.entries[:i], r.entries[i+1:]...)
			r.perPort[e.port]--
			r.total--
			t.rowOf[opIdx] = -1
			return
		}
	}
}

// conflicts returns body indices in the row that must be evicted to make
// space for op: every occupant of the needed port class (or, if the row is
// only issue-width-bound, one arbitrary occupant). The implicit branch is
// never evicted.
func (t *mrt) conflicts(row int, op ir.Op) []int {
	var out []int
	port, aType := t.m.PortOf(op)
	r := &t.rows[row]
	needPortSpace := false
	if aType {
		needPortSpace = r.perPort[machine.PortI] >= t.m.Units[machine.PortI] &&
			r.perPort[machine.PortM] >= t.m.Units[machine.PortM]
	} else {
		needPortSpace = r.perPort[port] >= t.m.Units[port]
	}
	for _, e := range r.entries {
		if e.op < 0 {
			continue
		}
		if needPortSpace {
			if aType && (e.port == machine.PortI || e.port == machine.PortM) {
				out = append(out, e.op)
			}
			if !aType && e.port == port {
				out = append(out, e.op)
			}
		}
	}
	if len(out) == 0 && r.total >= t.m.IssueWidth {
		for _, e := range r.entries {
			if e.op >= 0 {
				out = append(out, e.op)
				break
			}
		}
	}
	return out
}

// scratch bundles the per-ScheduleAtII working state that does not
// escape into the returned Schedule: the scheduled/lastTried/order
// arrays and the modulo reservation table with its rows. Pooled so the
// II search (which calls ScheduleAtII once or twice per candidate II)
// reuses the arenas instead of reallocating them every attempt.
// Time and Port are NOT here — they become Schedule fields and must be
// freshly allocated per call.
type scratch struct {
	scheduledBuf []bool
	lastTriedBuf []int
	orderBuf     []int
	rowOfBuf     []int
	rowsBuf      []mrtRow
	table        mrt
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// bools returns a zeroed n-length bool slice backed by the scratch.
func (sc *scratch) bools(n int) []bool {
	if cap(sc.scheduledBuf) < n {
		sc.scheduledBuf = make([]bool, n)
	}
	s := sc.scheduledBuf[:n]
	for i := range s {
		s[i] = false
	}
	return s
}

// ints returns an n-length int slice backed by *buf, filled with fill.
func (sc *scratch) ints(buf *[]int, n, fill int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	s := (*buf)[:n]
	for i := range s {
		s[i] = fill
	}
	return s
}

// rows returns ii empty MRT rows, reusing each row's entry array.
func (sc *scratch) rows(ii int) []mrtRow {
	if cap(sc.rowsBuf) < ii {
		sc.rowsBuf = append(sc.rowsBuf[:cap(sc.rowsBuf)], make([]mrtRow, ii-cap(sc.rowsBuf))...)
	}
	rows := sc.rowsBuf[:ii]
	for i := range rows {
		rows[i].entries = rows[i].entries[:0]
		rows[i].perPort = [machine.NumPorts]int{}
		rows[i].total = 0
	}
	return rows
}

// DefaultBudgetRatio is the placement budget multiplier used when
// Options.BudgetRatio is zero or negative. The resulting budget is
// DefaultBudgetRatio * len(body), floored at 32 placements.
const DefaultBudgetRatio = 60

// Options tunes the scheduler.
type Options struct {
	// BudgetRatio bounds total placements at BudgetRatio * len(body);
	// exceeding it fails the attempt at this II. Defaults to
	// DefaultBudgetRatio (60) when zero or negative.
	BudgetRatio int
	// Trace, when non-nil, receives one obs.SchedEvent per ScheduleAtII
	// call (success or failure).
	Trace *obs.Trace
}

// ScheduleAtII tries to find a modulo schedule for the loop at the given
// II under the load-latency policy latf. It returns nil, false when the
// budget is exhausted without a complete schedule.
func ScheduleAtII(m *machine.Model, g *ddg.Graph, ii int, latf ddg.LatencyFn, opts Options) (*Schedule, bool) {
	if ii < 1 {
		panic(fmt.Sprintf("modsched: non-positive II %d", ii))
	}
	body := g.Loop.Body
	n := len(body)
	budgetRatio := opts.BudgetRatio
	if budgetRatio <= 0 {
		budgetRatio = DefaultBudgetRatio
	}
	budget := budgetRatio * n
	if budget < 32 {
		budget = 32
	}

	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)

	heights := g.Heights(ii, latf)
	time := make([]int, n)
	scheduled := sc.bools(n)
	port := make([]machine.Port, n)
	// lastTried[i] remembers the last slot at which i was placed, so a
	// re-placement after eviction is forced to move forward (Rau's rule).
	lastTried := sc.ints(&sc.lastTriedBuf, n, -1)
	table := newMRT(m, ii, n, sc)

	// Priority order: height desc, then program order for determinism.
	order := sc.ints(&sc.orderBuf, n, 0)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if heights[order[a]] != heights[order[b]] {
			return heights[order[a]] > heights[order[b]]
		}
		return order[a] < order[b]
	})

	pick := func() int {
		for _, i := range order {
			if !scheduled[i] {
				return i
			}
		}
		return -1
	}

	attempts := 0
	evictions := 0
	emit := func(ok bool, stages int) {
		opts.Trace.Emit(obs.SchedEvent{
			II: ii, OK: ok, Attempts: attempts, Evictions: evictions,
			Budget: budget, Stages: stages,
		})
	}
	for {
		op := pick()
		if op < 0 {
			break
		}
		if attempts >= budget {
			if opts.Trace.On() {
				emit(false, 0)
			}
			return nil, false
		}
		attempts++

		// Earliest start from scheduled predecessors.
		estart := 0
		for _, ei := range g.Pred[op] {
			e := &g.Edges[ei]
			if !scheduled[e.From] {
				continue
			}
			v := time[e.From] + g.Latency(e, latf) - ii*e.Distance
			if v > estart {
				estart = v
			}
		}
		minT := estart
		if lastTried[op] >= 0 && lastTried[op]+1 > minT {
			minT = lastTried[op] + 1
		}

		placedAt, placedPort, found := -1, machine.Port(0), false
		for t := minT; t < estart+ii; t++ {
			if p, ok := table.fits(t%ii, body[op].Op); ok {
				placedAt, placedPort, found = t, p, true
				break
			}
		}
		if !found {
			// Force placement, evicting the lowest-priority conflicting
			// occupants one at a time until the operation fits (Rau's
			// displacement rule).
			placedAt = minT
			placed := false
			for !placed {
				if p, ok := table.fits(placedAt%ii, body[op].Op); ok {
					placedPort, placed = p, true
					break
				}
				cands := table.conflicts(placedAt%ii, body[op].Op)
				if len(cands) == 0 {
					break
				}
				victim := cands[0]
				for _, cand := range cands[1:] {
					if heights[cand] < heights[victim] {
						victim = cand
					}
				}
				scheduled[victim] = false
				table.remove(victim)
				evictions++
			}
			if !placed {
				// Row saturated by the branch reservation or other
				// unevictable pressure; slide forward next time.
				lastTried[op] = placedAt
				continue
			}
		}

		time[op] = placedAt
		port[op] = placedPort
		lastTried[op] = placedAt
		scheduled[op] = true
		table.place(placedAt%ii, op, placedPort)

		// Evict scheduled successors whose dependence is now violated.
		for _, ei := range g.Succ[op] {
			e := &g.Edges[ei]
			if e.To == op || !scheduled[e.To] {
				continue
			}
			if time[e.To] < placedAt+g.Latency(e, latf)-ii*e.Distance {
				scheduled[e.To] = false
				table.remove(e.To)
				evictions++
			}
		}
		// Self-edges (post-increment) are satisfiable at any II >= 1 since
		// their latency is 1; verify to catch malformed graphs.
		for _, ei := range g.Succ[op] {
			e := &g.Edges[ei]
			if e.To == op && g.Latency(e, latf) > ii*e.Distance {
				if opts.Trace.On() {
					emit(false, 0)
				}
				return nil, false // irrecoverable at this II
			}
		}
	}

	s := &Schedule{II: ii, Time: time, Port: port, Attempts: attempts, Evictions: evictions}
	for i := range time {
		if st := time[i]/ii + 1; st > s.Stages {
			s.Stages = st
		}
	}
	if opts.Trace.On() {
		emit(true, s.Stages)
	}
	return s, true
}

// Validate checks that the schedule respects every dependence of the graph
// under latf: Time[to] >= Time[from] + latency - II*distance. It returns a
// descriptive error for the first violation, and also re-checks resource
// legality of each kernel row. Tests use it as the scheduler's oracle.
func (s *Schedule) Validate(m *machine.Model, g *ddg.Graph, latf ddg.LatencyFn) error {
	for i := range g.Edges {
		e := &g.Edges[i]
		need := s.Time[e.From] + g.Latency(e, latf) - s.II*e.Distance
		if s.Time[e.To] < need {
			return fmt.Errorf("modsched: dep %d->%d (%s, dist %d, lat %d) violated: t[%d]=%d < %d",
				e.From, e.To, e.Kind, e.Distance, g.Latency(e, latf), e.To, s.Time[e.To], need)
		}
	}
	// Resource recheck.
	type rowUse struct {
		perPort [machine.NumPorts]int
		total   int
	}
	rows := make([]rowUse, s.II)
	rows[s.II-1].perPort[machine.PortB]++ // implicit branch
	rows[s.II-1].total++
	for i, in := range g.Loop.Body {
		r := s.Time[i] % s.II
		rows[r].perPort[s.Port[i]]++
		rows[r].total++
		wantPort, aType := m.PortOf(in.Op)
		if !aType && s.Port[i] != wantPort {
			return fmt.Errorf("modsched: body[%d] %s on wrong port %s", i, in.Op, s.Port[i])
		}
		if aType && s.Port[i] != machine.PortI && s.Port[i] != machine.PortM {
			return fmt.Errorf("modsched: A-type body[%d] on port %s", i, s.Port[i])
		}
	}
	for r, u := range rows {
		if u.total > m.IssueWidth {
			return fmt.Errorf("modsched: row %d issues %d > width %d", r, u.total, m.IssueWidth)
		}
		for p := machine.Port(0); p < machine.NumPorts; p++ {
			if u.perPort[p] > m.Units[p] {
				return fmt.Errorf("modsched: row %d uses %d %s units > %d", r, u.perPort[p], p, m.Units[p])
			}
		}
	}
	for i := range s.Time {
		if s.Time[i] < 0 {
			return fmt.Errorf("modsched: negative time for body[%d]", i)
		}
	}
	return nil
}
