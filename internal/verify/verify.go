// Package verify is the trust-but-verify layer of the compiler: an
// independent checker that re-derives the structural invariants of a
// modulo schedule from first principles and a semantic differential
// oracle that executes the original loop against the emitted pipelined
// kernel on seeded inputs.
//
// The package deliberately shares no analysis code with the scheduler it
// checks: dependences, latencies, resource usage and register lifetimes
// are all recomputed here from the ir.Loop and the machine model alone
// (in particular it does not call modsched.Schedule.Validate or import
// internal/ddg). A bug in the scheduler's bookkeeping therefore cannot
// hide itself from the verifier — the translation-validation posture of
// production compilers.
package verify

import (
	"fmt"

	"ltsp/internal/ir"
	"ltsp/internal/machine"
	"ltsp/internal/modsched"
	"ltsp/internal/regalloc"
)

// Schedule re-derives every structural invariant of a modulo schedule and
// reports the first violation found. asn may be nil to check a bare
// schedule (no register allocation yet); when non-nil the rotating- and
// static-register invariants are checked as well.
//
// Invariants checked, all recomputed from scratch:
//
//   - shape: II >= 1, one schedule slot per body instruction, no negative
//     issue times, stage count equals floor(max(time)/II)+1;
//   - dependences: for every register flow dependence def->use (including
//     qualifying predicates and post-increment base updates), with
//     iteration distance 1 when the definition does not precede the use
//     in program order, time(use) >= time(def) + latency - II*distance,
//     where load results use the machine's *base* (best-case) latency —
//     the hardware-minimum separation any latency policy must respect;
//   - in-place registers (the definer reads its own previous value, so
//     the value is not renamed by rotation): every other reader must read
//     before the next write lands, time(reader) <= time(def) + II*distance;
//   - memory ordering: declared MemDeps respected at their distance;
//   - resources: per-kernel-row port occupancy within the machine's unit
//     counts and issue width, A-type ops only on I or M ports, all other
//     ops on their dispersal port, the implicit loop-closing branch
//     occupying a B slot in row II-1;
//   - registers (asn != nil): every virtual register allocated; rotating
//     blades wide enough for every use's stage delta and fully inside the
//     rotating regions; blades pairwise disjoint and, for predicates,
//     disjoint from the stage-predicate block; in-place registers static;
//     static registers inside the machine's static ranges.
func Schedule(m *machine.Model, l *ir.Loop, s *modsched.Schedule, asn *regalloc.Assignment) error {
	if s == nil {
		return fmt.Errorf("verify: nil schedule")
	}
	if s.II < 1 {
		return fmt.Errorf("verify: II=%d < 1", s.II)
	}
	n := len(l.Body)
	if n == 0 {
		return fmt.Errorf("verify: empty loop body")
	}
	if len(s.Time) != n || len(s.Port) != n {
		return fmt.Errorf("verify: schedule covers %d times/%d ports for %d instructions",
			len(s.Time), len(s.Port), n)
	}
	maxTime := 0
	for i, t := range s.Time {
		if t < 0 {
			return fmt.Errorf("verify: %v scheduled at negative time %d", l.Body[i], t)
		}
		if t > maxTime {
			maxTime = t
		}
	}
	if want := maxTime/s.II + 1; s.Stages != want {
		return fmt.Errorf("verify: stage count %d, recomputed %d (max time %d, II %d)",
			s.Stages, want, maxTime, s.II)
	}

	defOf, err := singleDefs(l)
	if err != nil {
		return err
	}
	if err := checkDependences(m, l, s, defOf); err != nil {
		return err
	}
	if err := checkInPlace(l, s, defOf); err != nil {
		return err
	}
	if err := checkMemDeps(l, s); err != nil {
		return err
	}
	if err := checkResources(m, l, s); err != nil {
		return err
	}
	if asn != nil {
		if err := checkRegisters(m, l, s, asn, defOf); err != nil {
			return err
		}
	}
	return nil
}

// singleDefs maps each register to its defining instruction, rejecting
// multiple definitions (rotation renaming requires single definitions; the
// scheduler relies on this too, but we re-derive it rather than trust it).
func singleDefs(l *ir.Loop) (map[ir.Reg]int, error) {
	defOf := make(map[ir.Reg]int)
	for i, in := range l.Body {
		for _, d := range in.AllDefs() {
			if d.IsNone() {
				continue
			}
			if prev, ok := defOf[d]; ok {
				return nil, fmt.Errorf("verify: %s defined by both instruction %d and %d", d, prev, i)
			}
			defOf[d] = i
		}
	}
	return defOf, nil
}

// resultLatency is the minimum hardware separation between def's issue and
// a consumer of register r. Loads use the machine's base (best-case)
// latency: any schedule must keep at least that distance regardless of the
// latency policy the scheduler chose. Post-increment address updates are
// available after one cycle.
func resultLatency(m *machine.Model, def *ir.Instr, r ir.Reg) int {
	if def.Op.IsLoad() && r == def.Dsts[0] {
		return m.LoadLatency(def, false)
	}
	if def.Op.IsMem() && r == def.BaseReg() {
		return 1
	}
	return m.Latency(def.Op)
}

// depDistance is the iteration distance of the flow dependence def->use:
// 0 when the definition strictly precedes the use in program order, 1
// otherwise (the use reads the previous iteration's value).
func depDistance(defID, useID int) int {
	if defID >= useID {
		return 1
	}
	return 0
}

func checkDependences(m *machine.Model, l *ir.Loop, s *modsched.Schedule, defOf map[ir.Reg]int) error {
	for useID, in := range l.Body {
		for _, u := range in.AllUses() {
			if u.IsNone() {
				continue
			}
			defID, ok := defOf[u]
			if !ok {
				continue // invariant or initialized-only value
			}
			def := l.Body[defID]
			dist := depDistance(defID, useID)
			lat := resultLatency(m, def, u)
			if s.Time[useID] < s.Time[defID]+lat-s.II*dist {
				return fmt.Errorf(
					"verify: dependence %s: def %v@%d -> use %v@%d violates latency %d distance %d at II=%d",
					u, def, s.Time[defID], in, s.Time[useID], lat, dist, s.II)
			}
		}
	}
	return nil
}

// inPlaceRegs re-derives the set of registers updated in place: their
// defining instruction reads them as a data source, so successive
// iterations reuse one physical register and rotation does not rename the
// value. A self-reference through the qualifying predicate alone (the
// while-loop validity chain) does not make a register in-place — that
// value rotates.
func inPlaceRegs(l *ir.Loop, defOf map[ir.Reg]int) map[ir.Reg]int {
	out := map[ir.Reg]int{}
	for r, d := range defOf {
		for _, u := range l.Body[d].Srcs {
			if u == r {
				out[r] = d
				break
			}
		}
	}
	return out
}

// checkInPlace enforces the anti-dependence side of in-place updates:
// because the register is not renamed, every reader must observe the value
// before the following write lands. Reads precede writes within an issue
// group, so equality is legal.
func checkInPlace(l *ir.Loop, s *modsched.Schedule, defOf map[ir.Reg]int) error {
	inPlace := inPlaceRegs(l, defOf)
	for r, d := range inPlace {
		for j, in := range l.Body {
			if j == d {
				continue
			}
			reads := false
			for _, u := range in.AllUses() {
				if u == r {
					reads = true
					break
				}
			}
			if !reads {
				continue
			}
			// Reader after the def reads this iteration's value and must
			// beat the next iteration's write; a reader before the def
			// reads the previous value and must beat this iteration's.
			dist := 0
			if j > d {
				dist = 1
			}
			if s.Time[j] > s.Time[d]+s.II*dist {
				return fmt.Errorf(
					"verify: in-place %s: reader %v@%d overlaps the next write by %v@%d (II=%d)",
					r, in, s.Time[j], l.Body[d], s.Time[d], s.II)
			}
		}
	}
	return nil
}

func checkMemDeps(l *ir.Loop, s *modsched.Schedule) error {
	for _, dep := range l.MemDeps {
		if dep.From < 0 || dep.From >= len(l.Body) || dep.To < 0 || dep.To >= len(l.Body) {
			return fmt.Errorf("verify: memory dependence %d->%d out of range", dep.From, dep.To)
		}
		if s.Time[dep.To] < s.Time[dep.From]+dep.Latency-s.II*dep.Distance {
			return fmt.Errorf(
				"verify: memory dependence %d@%d -> %d@%d violates latency %d distance %d at II=%d",
				dep.From, s.Time[dep.From], dep.To, s.Time[dep.To], dep.Latency, dep.Distance, s.II)
		}
	}
	return nil
}

func checkResources(m *machine.Model, l *ir.Loop, s *modsched.Schedule) error {
	type rowUse struct {
		perPort [machine.NumPorts]int
		total   int
	}
	rows := make([]rowUse, s.II)
	for i, in := range l.Body {
		want, aType := m.PortOf(in.Op)
		got := s.Port[i]
		if aType {
			if got != machine.PortI && got != machine.PortM {
				return fmt.Errorf("verify: A-type %v assigned port %d (want I or M)", in, got)
			}
		} else if got != want {
			return fmt.Errorf("verify: %v assigned port %d (dispersal requires %d)", in, got, want)
		}
		row := &rows[s.Time[i]%s.II]
		row.perPort[got]++
		row.total++
	}
	// The implicit loop-closing branch issues in the last kernel row.
	rows[s.II-1].perPort[machine.PortB]++
	rows[s.II-1].total++
	for r := range rows {
		row := &rows[r]
		if row.total > m.IssueWidth {
			return fmt.Errorf("verify: kernel row %d issues %d ops, width %d", r, row.total, m.IssueWidth)
		}
		for p := 0; p < int(machine.NumPorts); p++ {
			if row.perPort[p] > m.Units[p] {
				return fmt.Errorf("verify: kernel row %d uses %d units of port %d, machine has %d",
					r, row.perPort[p], p, m.Units[p])
			}
		}
	}
	return nil
}

// regionFor returns the rotating region bounds [lo, hi) for a class. For
// predicates the stage-predicate block [StagePredBase, +Stages) is carved
// out of the front of the region by the allocator; blades must sit above
// it, which the caller checks separately.
func regionFor(m *machine.Model, class ir.RegClass) (lo, hi int) {
	switch class {
	case ir.ClassGR:
		return 32, 32 + m.RotGR
	case ir.ClassFR:
		return 32, 32 + m.RotFR
	default:
		return 16, 16 + m.RotPR
	}
}

func staticRangeFor(m *machine.Model, class ir.RegClass) (lo, hi int) {
	switch class {
	case ir.ClassGR:
		return 1, 1 + m.StaticGR
	case ir.ClassFR:
		return 2, 2 + m.StaticFR
	default:
		return 1, 1 + m.StaticPR
	}
}

func checkRegisters(m *machine.Model, l *ir.Loop, s *modsched.Schedule, asn *regalloc.Assignment, defOf map[ir.Reg]int) error {
	inPlace := inPlaceRegs(l, defOf)

	// Every virtual register touched by the body must have a home.
	for _, in := range l.Body {
		for _, r := range append(in.AllUses(), in.AllDefs()...) {
			if r.IsNone() || !r.Virtual {
				continue
			}
			if _, ok := asn.Phys[r]; !ok {
				return fmt.Errorf("verify: %s used by %v has no allocation", r, in)
			}
		}
	}

	type blade struct {
		r ir.Reg
		a regalloc.Alloc
	}
	blades := map[ir.RegClass][]blade{}
	for r, a := range asn.Phys {
		switch a.Kind {
		case regalloc.KindStatic:
			lo, hi := staticRangeFor(m, r.Class)
			if a.Base < lo || a.Base >= hi {
				return fmt.Errorf("verify: static %s at %s%d outside [%d,%d)", r, r.Class, a.Base, lo, hi)
			}
		case regalloc.KindRotating:
			if _, ip := inPlace[r]; ip {
				return fmt.Errorf("verify: in-place %s allocated rotating (rotation would rename it)", r)
			}
			lo, hi := regionFor(m, r.Class)
			if r.Class == ir.ClassPR {
				// Blades live above the stage-predicate block.
				if a.Base < asn.StagePredBase+s.Stages {
					return fmt.Errorf("verify: predicate blade %s at p%d collides with stage predicates [p%d,p%d)",
						r, a.Base, asn.StagePredBase, asn.StagePredBase+s.Stages)
				}
			}
			if a.Width < 1 || a.Base < lo || a.Base+a.Width > hi {
				return fmt.Errorf("verify: blade %s [%d,%d) outside rotating region [%d,%d)",
					r, a.Base, a.Base+a.Width, lo, hi)
			}
			blades[r.Class] = append(blades[r.Class], blade{r, a})
		default:
			return fmt.Errorf("verify: %s has unknown allocation kind %d", r, a.Kind)
		}
	}

	// Blades of one class must not overlap: two live values sharing a
	// physical register would corrupt each other.
	for class, bs := range blades {
		for i := 0; i < len(bs); i++ {
			for j := i + 1; j < len(bs); j++ {
				a, b := bs[i], bs[j]
				if a.a.Base < b.a.Base+b.a.Width && b.a.Base < a.a.Base+a.a.Width {
					return fmt.Errorf("verify: %s blades %s [%d,%d) and %s [%d,%d) overlap",
						class, a.r, a.a.Base, a.a.Base+a.a.Width, b.r, b.a.Base, b.a.Base+b.a.Width)
				}
			}
		}
	}

	// Every use must land inside its value's blade: the stage distance
	// between def and use (plus one for loop-carried reads) is how far the
	// value has rotated away from its definition slot.
	for useID, in := range l.Body {
		for _, u := range in.AllUses() {
			if u.IsNone() || !u.Virtual {
				continue
			}
			a := asn.Phys[u]
			if a.Kind != regalloc.KindRotating {
				continue
			}
			defID, ok := defOf[u]
			if !ok {
				continue
			}
			delta := s.Stage(useID) + depDistance(defID, useID) - s.Stage(defID)
			if delta < 0 || delta >= a.Width {
				return fmt.Errorf(
					"verify: %s read by %v at stage delta %d outside its blade width %d",
					u, in, delta, a.Width)
			}
		}
	}
	return nil
}
