package verify

import (
	"fmt"
	"math"

	"ltsp/internal/interp"
	"ltsp/internal/ir"
)

// Backends is the cross-backend differential oracle: given two programs
// compiled from the same source loop by different scheduling backends
// (e.g. heuristic and exact), it first validates each against the
// reference semantics (Kernel), then executes both on identical memory
// images across the trip battery and reports the first divergence
// between them — final memory or live-out values. Two correct backends
// may produce different schedules, register assignments, and stage
// counts, but never different observable behavior.
func Backends(l *ir.Loop, a, b *interp.Program, cfg Config) error {
	if a == nil || b == nil {
		return fmt.Errorf("verify: nil program in backend cross-check")
	}
	if err := Kernel(l, a, cfg); err != nil {
		return fmt.Errorf("first backend: %w", err)
	}
	if err := Kernel(l, b, cfg); err != nil {
		return fmt.Errorf("second backend: %w", err)
	}
	trips := cfg.Trips
	if len(trips) == 0 {
		stages := a.Stages
		if b.Stages > stages {
			stages = b.Stages
		}
		trips = defaultTrips(stages)
	}
	for _, trip := range trips {
		if trip < 1 {
			continue
		}
		if err := crossTrip(l, a, b, trip, cfg); err != nil {
			return err
		}
	}
	return nil
}

func crossTrip(l *ir.Loop, a, b *interp.Program, trip int64, cfg Config) error {
	stages := a.Stages
	if b.Stages > stages {
		stages = b.Stages
	}
	memRef, memA, memB := interp.NewMemory(), interp.NewMemory(), interp.NewMemory()
	if cfg.InitMem != nil {
		cfg.InitMem(memRef)
		cfg.InitMem(memA)
		cfg.InitMem(memB)
	} else {
		fillMemories(l, trip, stages, cfg.Seed, memRef, memA, memB)
	}

	// Data-terminated loops whose seeded inputs never reach the exit
	// condition are inconclusive for this trip, exactly as in Kernel.
	if _, err := runReference(l, trip, memRef); err == ErrUnterminated {
		return nil
	} else if err != nil {
		return fmt.Errorf("verify: reference execution failed: %w", err)
	}

	stA, err := interp.Run(a, trip, memA)
	if err != nil {
		return fmt.Errorf("verify: first backend execution failed: %w", err)
	}
	stB, err := interp.Run(b, trip, memB)
	if err != nil {
		return fmt.Errorf("verify: second backend execution failed: %w", err)
	}
	if err := compareMemory(stA.Mem, stB.Mem, trip); err != nil {
		return fmt.Errorf("backend divergence: %w", err)
	}
	for i := range l.LiveOut {
		src := l.LiveOut[i]
		switch src.Class {
		case ir.ClassFR:
			va, vb := stA.ReadRegF(a.LiveOut[i]), stB.ReadRegF(b.LiveOut[i])
			if math.Float64bits(va) != math.Float64bits(vb) {
				return fmt.Errorf("verify: trip %d: live-out %d (%s): backends diverge: %v vs %v",
					trip, i, src, va, vb)
			}
		default:
			va, vb := stA.ReadReg(a.LiveOut[i]), stB.ReadReg(b.LiveOut[i])
			if va != vb {
				return fmt.Errorf("verify: trip %d: live-out %d (%s): backends diverge: %d vs %d",
					trip, i, src, va, vb)
			}
		}
	}
	return nil
}
