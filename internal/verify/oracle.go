package verify

import (
	"fmt"
	"math"

	"ltsp/internal/interp"
	"ltsp/internal/ir"
)

// Config parameterizes the differential oracle.
type Config struct {
	// Seed drives the deterministic memory image when InitMem is nil.
	Seed int64
	// Trips overrides the default trip-count set (which brackets the
	// stage count: 1, 2, S-1, S, S+1, 2S+3 and 17, so the short-trip
	// prolog/epilog-only paths are always exercised).
	Trips []int64
	// InitMem, when set, lays out the loop's data instead of the seeded
	// pseudo-random fill (workload models bring their own layouts).
	InitMem func(*interp.Memory)
}

// Kernel is the semantic differential oracle: it executes the source loop
// on the reference machine and the compiled program through internal/interp
// on identical memory images, for a battery of trip counts, and reports
// the first divergence in final memory or live-out values. It applies to
// pipelined and sequential programs alike.
//
// For data-terminated loops whose seeded inputs never reach the exit
// condition the trip is skipped (the comparison would depend on runaway
// caps, not semantics); if every trip is inconclusive Kernel returns nil,
// so a sampled production verification cannot raise a false alarm.
func Kernel(l *ir.Loop, p *interp.Program, cfg Config) error {
	if p == nil {
		return fmt.Errorf("verify: nil program")
	}
	if len(l.LiveOut) != len(p.LiveOut) {
		return fmt.Errorf("verify: %d live-outs in loop, %d in program", len(l.LiveOut), len(p.LiveOut))
	}
	trips := cfg.Trips
	if len(trips) == 0 {
		trips = defaultTrips(p.Stages)
	}
	for _, trip := range trips {
		if trip < 1 {
			continue
		}
		if err := compareTrip(l, p, trip, cfg); err != nil {
			return err
		}
	}
	return nil
}

func defaultTrips(stages int) []int64 {
	s := int64(stages)
	if s < 1 {
		s = 1
	}
	cand := []int64{1, 2, s - 1, s, s + 1, 2*s + 3, 17}
	seen := map[int64]bool{}
	var out []int64
	for _, t := range cand {
		if t >= 1 && !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

func compareTrip(l *ir.Loop, p *interp.Program, trip int64, cfg Config) error {
	memA, memB := interp.NewMemory(), interp.NewMemory()
	if cfg.InitMem != nil {
		cfg.InitMem(memA)
		cfg.InitMem(memB)
	} else {
		fillMemories(l, trip, p.Stages, cfg.Seed, memA, memB)
	}

	ref, err := runReference(l, trip, memA)
	if err == ErrUnterminated {
		return nil // inconclusive for this trip; semantics not in question
	}
	if err != nil {
		return fmt.Errorf("verify: reference execution failed: %w", err)
	}
	st, err := interp.Run(p, trip, memB)
	if err != nil {
		return fmt.Errorf("verify: compiled execution failed: %w", err)
	}

	if err := compareMemory(ref.mem, st.Mem, trip); err != nil {
		return err
	}
	for i := range l.LiveOut {
		src, dst := l.LiveOut[i], p.LiveOut[i]
		switch src.Class {
		case ir.ClassFR:
			a, b := ref.readFR(src), st.ReadRegF(dst)
			if math.Float64bits(a) != math.Float64bits(b) {
				return fmt.Errorf("verify: trip %d: live-out %d (%s): reference %v, compiled %v",
					trip, i, src, a, b)
			}
		case ir.ClassPR:
			a := int64(0)
			if ref.readPR(src) {
				a = 1
			}
			if b := st.ReadReg(dst); a != b {
				return fmt.Errorf("verify: trip %d: live-out %d (%s): reference %d, compiled %d",
					trip, i, src, a, b)
			}
		default:
			a, b := ref.readGR(src), st.ReadReg(dst)
			if a != b {
				return fmt.Errorf("verify: trip %d: live-out %d (%s): reference %d, compiled %d",
					trip, i, src, a, b)
			}
		}
	}
	return nil
}

func compareMemory(a, b *interp.Memory, trip int64) error {
	snapA, snapB := a.Snapshot(), b.Snapshot()
	for pn, pa := range snapA {
		pb, ok := snapB[pn]
		if !ok {
			return fmt.Errorf("verify: trip %d: page %#x written only by the reference", trip, pn)
		}
		if pa != pb {
			off := 0
			for i := range pa {
				if pa[i] != pb[i] {
					off = i
					break
				}
			}
			return fmt.Errorf("verify: trip %d: memory differs at %#x (reference %#x, compiled %#x)",
				trip, pn+int64(off), pa[off], pb[off])
		}
	}
	for pn := range snapB {
		if _, ok := snapA[pn]; !ok {
			return fmt.Errorf("verify: trip %d: page %#x written only by the compiled program", trip, pn)
		}
	}
	return nil
}

// fillMemories lays out a deterministic pseudo-random image for every
// array the loop walks (any GR setup value that looks like a pointer),
// identically in every given memory. Values are kept small and frequently zero
// so that pointer-chase loads stay near the zero page and data-terminated
// conditions have a real chance to fire; arithmetic over the fill is still
// position-dependent, so schedule bugs that permute or drop accesses
// change the final image.
func fillMemories(l *ir.Loop, trip int64, stages int, seed int64, mems ...*interp.Memory) {
	stride := int64(8)
	down := false
	for _, in := range l.Body {
		if in.Mem == nil {
			continue
		}
		if pi := in.Mem.PostInc; pi != 0 {
			if pi < 0 {
				down = true
				pi = -pi
			}
			if pi > stride {
				stride = pi
			}
		}
	}
	span := (trip + int64(stages) + 16) * stride
	if span > 1<<20 {
		span = 1 << 20
	}
	for _, init := range l.Setup {
		if init.Reg.Class != ir.ClassGR || init.Val < 4096 {
			continue
		}
		start := init.Val
		if down {
			start -= span
		}
		h := uint64(seed)*0x9e3779b97f4a7c15 + uint64(init.Val)
		for off := int64(0); off < 2*span; off += 8 {
			h = splitmix64(h)
			v := int64(h & 0xff)
			if h&0x300 == 0 {
				v = 0
			}
			for _, mem := range mems {
				mem.Store(start+off, 8, v)
			}
		}
	}
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
