package verify

import (
	"errors"
	"fmt"

	"ltsp/internal/interp"
	"ltsp/internal/ir"
)

// ErrUnterminated reports that a data-terminated (while) loop did not
// reach its exit condition within the runaway cap under the seeded inputs,
// so the differential comparison for that trip count is inconclusive.
var ErrUnterminated = errors.New("verify: while loop did not terminate within the runaway cap")

// refState is the oracle's reference machine: virtual registers held
// directly in maps, the body executed strictly in program order one
// instruction at a time. It deliberately has no issue groups, no rotation
// and no renaming — it is the plain reading of the straight-line loop
// body, the semantics every compiled form must preserve.
type refState struct {
	gr  map[ir.Reg]int64
	fr  map[ir.Reg]float64
	pr  map[ir.Reg]bool
	mem *interp.Memory
}

func newRefState(mem *interp.Memory) *refState {
	return &refState{
		gr:  map[ir.Reg]int64{},
		fr:  map[ir.Reg]float64{},
		pr:  map[ir.Reg]bool{},
		mem: mem,
	}
}

// Architectural constants mirror interp: physical r0/f0 read 0, f1 reads
// 1.0, p0 reads true, and writes to them are discarded.
func fixedGR(r ir.Reg) bool { return !r.Virtual && r.N == 0 }
func fixedFR(r ir.Reg) bool { return !r.Virtual && r.N <= 1 }
func fixedPR(r ir.Reg) bool { return !r.Virtual && r.N == 0 }

func (s *refState) readGR(r ir.Reg) int64 {
	if fixedGR(r) {
		return 0
	}
	return s.gr[r]
}

func (s *refState) readFR(r ir.Reg) float64 {
	if fixedFR(r) {
		if r.N == 1 {
			return 1.0
		}
		return 0
	}
	return s.fr[r]
}

func (s *refState) readPR(r ir.Reg) bool {
	if fixedPR(r) {
		return true
	}
	return s.pr[r]
}

func (s *refState) writeGR(r ir.Reg, v int64) {
	if !fixedGR(r) {
		s.gr[r] = v
	}
}

func (s *refState) writeFR(r ir.Reg, v float64) {
	if !fixedFR(r) {
		s.fr[r] = v
	}
}

func (s *refState) writePR(r ir.Reg, v bool) {
	if !fixedPR(r) {
		s.pr[r] = v
	}
}

func (s *refState) predOn(in *ir.Instr) bool {
	return in.Pred.IsNone() || s.readPR(in.Pred)
}

func (s *refState) applySetup(inits []ir.RegInit) {
	for _, init := range inits {
		switch init.Reg.Class {
		case ir.ClassGR:
			s.writeGR(init.Reg, init.Val)
		case ir.ClassFR:
			s.writeFR(init.Reg, init.FVal)
		case ir.ClassPR:
			s.writePR(init.Reg, init.Val != 0)
		}
	}
}

func (s *refState) comparePR(in *ir.Instr, res bool) {
	if !in.Dsts[0].IsNone() {
		s.writePR(in.Dsts[0], res)
	}
	if !in.Dsts[1].IsNone() {
		s.writePR(in.Dsts[1], !res)
	}
}

// exec interprets one instruction. The operation semantics mirror
// internal/interp exactly (including cmp.unc clearing of both destination
// predicates when the qualifying predicate is off); what differs is only
// the register model.
func (s *refState) exec(in *ir.Instr) error {
	if !s.predOn(in) {
		switch in.Op {
		case ir.OpCmpEq, ir.OpCmpLt, ir.OpCmpEqI, ir.OpCmpLtI, ir.OpFCmpLt:
			for _, d := range in.Dsts {
				if !d.IsNone() {
					s.writePR(d, false)
				}
			}
		}
		return nil
	}
	switch in.Op {
	case ir.OpNop:
	case ir.OpMovI:
		s.writeGR(in.Dsts[0], in.Imm)
	case ir.OpMov:
		s.writeGR(in.Dsts[0], s.readGR(in.Srcs[0]))
	case ir.OpAdd:
		s.writeGR(in.Dsts[0], s.readGR(in.Srcs[0])+s.readGR(in.Srcs[1]))
	case ir.OpSub:
		s.writeGR(in.Dsts[0], s.readGR(in.Srcs[0])-s.readGR(in.Srcs[1]))
	case ir.OpAddI:
		s.writeGR(in.Dsts[0], s.readGR(in.Srcs[0])+in.Imm)
	case ir.OpAnd:
		s.writeGR(in.Dsts[0], s.readGR(in.Srcs[0])&s.readGR(in.Srcs[1]))
	case ir.OpOr:
		s.writeGR(in.Dsts[0], s.readGR(in.Srcs[0])|s.readGR(in.Srcs[1]))
	case ir.OpXor:
		s.writeGR(in.Dsts[0], s.readGR(in.Srcs[0])^s.readGR(in.Srcs[1]))
	case ir.OpShlI:
		s.writeGR(in.Dsts[0], s.readGR(in.Srcs[0])<<uint(in.Imm&63))
	case ir.OpShrI:
		s.writeGR(in.Dsts[0], s.readGR(in.Srcs[0])>>uint(in.Imm&63))
	case ir.OpShladd:
		s.writeGR(in.Dsts[0], (s.readGR(in.Srcs[0])<<uint(in.Imm&63))+s.readGR(in.Srcs[1]))
	case ir.OpMul:
		s.writeGR(in.Dsts[0], s.readGR(in.Srcs[0])*s.readGR(in.Srcs[1]))
	case ir.OpCmpEq:
		s.comparePR(in, s.readGR(in.Srcs[0]) == s.readGR(in.Srcs[1]))
	case ir.OpCmpLt:
		s.comparePR(in, s.readGR(in.Srcs[0]) < s.readGR(in.Srcs[1]))
	case ir.OpCmpEqI:
		s.comparePR(in, s.readGR(in.Srcs[0]) == in.Imm)
	case ir.OpCmpLtI:
		s.comparePR(in, s.readGR(in.Srcs[0]) < in.Imm)
	case ir.OpFMovI:
		s.writeFR(in.Dsts[0], in.FImm)
	case ir.OpFMov:
		s.writeFR(in.Dsts[0], s.readFR(in.Srcs[0]))
	case ir.OpFAdd:
		s.writeFR(in.Dsts[0], s.readFR(in.Srcs[0])+s.readFR(in.Srcs[1]))
	case ir.OpFSub:
		s.writeFR(in.Dsts[0], s.readFR(in.Srcs[0])-s.readFR(in.Srcs[1]))
	case ir.OpFMul:
		s.writeFR(in.Dsts[0], s.readFR(in.Srcs[0])*s.readFR(in.Srcs[1]))
	case ir.OpFMA:
		s.writeFR(in.Dsts[0], s.readFR(in.Srcs[0])*s.readFR(in.Srcs[1])+s.readFR(in.Srcs[2]))
	case ir.OpFCmpLt:
		s.comparePR(in, s.readFR(in.Srcs[0]) < s.readFR(in.Srcs[1]))
	case ir.OpGetF:
		s.writeGR(in.Dsts[0], int64(s.readFR(in.Srcs[0])))
	case ir.OpSetF:
		s.writeFR(in.Dsts[0], float64(s.readGR(in.Srcs[0])))
	case ir.OpSel:
		if s.readPR(in.Srcs[0]) {
			s.writeGR(in.Dsts[0], s.readGR(in.Srcs[1]))
		} else {
			s.writeGR(in.Dsts[0], s.readGR(in.Srcs[2]))
		}
	case ir.OpFSel:
		if s.readPR(in.Srcs[0]) {
			s.writeFR(in.Dsts[0], s.readFR(in.Srcs[1]))
		} else {
			s.writeFR(in.Dsts[0], s.readFR(in.Srcs[2]))
		}
	case ir.OpChk:
		// Data speculation always succeeds in this model.
	case ir.OpLd:
		base := in.BaseReg()
		addr := s.readGR(base)
		v := s.mem.Load(addr, in.Mem.Size)
		if in.Mem.PostInc != 0 {
			s.writeGR(base, addr+in.Mem.PostInc)
		}
		s.writeGR(in.Dsts[0], v)
	case ir.OpLdF:
		base := in.BaseReg()
		addr := s.readGR(base)
		v := s.mem.LoadF(addr)
		if in.Mem.PostInc != 0 {
			s.writeGR(base, addr+in.Mem.PostInc)
		}
		s.writeFR(in.Dsts[0], v)
	case ir.OpSt:
		base := in.BaseReg()
		addr := s.readGR(base)
		s.mem.Store(addr, in.Mem.Size, s.readGR(in.Srcs[0]))
		if in.Mem.PostInc != 0 {
			s.writeGR(base, addr+in.Mem.PostInc)
		}
	case ir.OpStF:
		base := in.BaseReg()
		addr := s.readGR(base)
		s.mem.StoreF(addr, s.readFR(in.Srcs[0]))
		if in.Mem.PostInc != 0 {
			s.writeGR(base, addr+in.Mem.PostInc)
		}
	case ir.OpLfetch:
		base := in.BaseReg()
		addr := s.readGR(base)
		_ = addr
		if in.Mem.PostInc != 0 {
			s.writeGR(base, addr+in.Mem.PostInc)
		}
	default:
		return fmt.Errorf("verify: reference interpreter cannot execute %v", in.Op)
	}
	return nil
}

// runReference executes the loop on the reference machine: Setup applied,
// then the body in program order per iteration. Counted loops run exactly
// trip iterations. While loops run until the condition computed by the
// trailing compare goes false, with a runaway cap of trip+4 iterations —
// the same budget interp.Run grants a sequential data-terminated loop —
// returning ErrUnterminated when the cap is hit.
func runReference(l *ir.Loop, trip int64, mem *interp.Memory) (*refState, error) {
	s := newRefState(mem)
	s.applySetup(l.Setup)
	iters := trip
	if l.While != nil {
		iters = trip + 4
	}
	for k := int64(0); k < iters; k++ {
		for _, in := range l.Body {
			if err := s.exec(in); err != nil {
				return nil, err
			}
		}
		if l.While != nil && !s.readPR(l.While.Cond) {
			return s, nil
		}
	}
	if l.While != nil {
		return nil, ErrUnterminated
	}
	return s, nil
}
